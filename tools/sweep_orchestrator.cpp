// sweep_orchestrator: multi-process driver for the bench binaries.
//
// Default mode is the elastic work queue: the virtual cell space is
// carved into many small ranges, M worker loops lease ranges with
// deadlines and run `--cells=LO..HI --json=<shard-dir>/lease_<id>.json`
// children through the runtime::Transport seam; a crashed, hung, or
// straggling worker's lease is split, requeued, and re-leased, and the
// accepted lease documents merge into one --out document bit-identical
// (modulo timing keys) to the unsharded `--json` run. The merged
// document carries the scheduler's accounting under the top-level
// "orchestration" key (a timing key).
//
//   sweep_orchestrator <bench> [--workers=M] [--ranges=R]
//                      [--lease-timeout=SECONDS] [--straggler-factor=F]
//                      [--straggler-min-ms=MS] [--failure-budget=B]
//                      [--backoff-ms=MS] [--backoff-cap-ms=MS]
//                      [--backoff-seed=S] [--chaos-kill-nth=N]
//                      [--chaos-kill-delay-ms=MS] [--out=PATH]
//                      [--shard-dir=DIR] [--keep-shards]
//                      [-- <args forwarded to every worker>]
//
// Giving --shards=N selects the legacy static partition instead: the N
// `--shard=K/N` children with bounded per-shard retries.
//
//   sweep_orchestrator <bench> --shards=N [--workers=M] [--retries=R]
//                      [--timeout=SECONDS] [--out=PATH]
//                      [--shard-dir=DIR] [--keep-shards] [-- args]
//
// The chaos flags wrap the transport in runtime::ChaosKillTransport,
// SIGKILLing the N-th launched child after a delay — the CI fixture
// proving that a murdered worker costs nothing but a reshard.
//
// The merge alone is exposed as
//
//   sweep_orchestrator --merge-only --out=PATH SHARD.json...
//
// which merges already-written shard or lease documents.
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/orchestrator.h"
#include "src/core/report.h"
#include "src/core/sweep_cli.h"
#include "src/runtime/transport.h"
#include "src/util/assert.h"
#include "src/util/json.h"

using namespace setlib;

namespace {

constexpr const char* kUsage = R"(usage:
  sweep_orchestrator <bench> [--workers=M] [--ranges=R]
                     [--lease-timeout=SECONDS] [--straggler-factor=F]
                     [--straggler-min-ms=MS] [--failure-budget=B]
                     [--backoff-ms=MS] [--backoff-cap-ms=MS]
                     [--backoff-seed=S] [--chaos-kill-nth=N]
                     [--chaos-kill-delay-ms=MS] [--out=PATH]
                     [--shard-dir=DIR] [--keep-shards]
                     [-- <args forwarded to workers>]
  sweep_orchestrator <bench> --shards=N [--workers=M] [--retries=R]
                     [--timeout=SECONDS] [--out=PATH] [--shard-dir=DIR]
                     [--keep-shards] [-- <args forwarded to workers>]
  sweep_orchestrator --merge-only [--out=PATH] SHARD.json...

Default: the elastic work queue — M worker loops lease --cells=LO..HI
ranges with deadlines; dead, hung, or straggling workers have their
leases split and re-leased. --shards=N selects the legacy static
--shard=K/N partition with per-shard retries. Either way the merged
--out document (default MERGED.json) is bit-identical, modulo timing
keys, to the unsharded --json run. --merge-only skips the launching
and merges already-written shard documents.
)";

int fail_usage(const std::string& message) {
  std::cerr << "sweep_orchestrator: " << message << "\n" << kUsage;
  return 2;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream file(path);
  if (!file.good()) return false;
  file << text;
  return file.good();
}

int merge_only(const std::string& out_path,
               const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return fail_usage("--merge-only needs at least one shard document");
  }
  std::vector<JsonValue> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file.good()) {
      std::cerr << "sweep_orchestrator: cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
      docs.push_back(JsonValue::parse(buffer.str()));
    } catch (const JsonParseError& e) {
      std::cerr << "sweep_orchestrator: " << path << ": " << e.what()
                << "\n";
      return 1;
    }
  }
  try {
    const JsonValue merged = core::merge_shard_docs(docs);
    if (!write_file(out_path, merged.dump(1))) {
      std::cerr << "sweep_orchestrator: cannot write " << out_path
                << "\n";
      return 1;
    }
    std::cout << "merged " << paths.size() << " shard document"
              << (paths.size() == 1 ? "" : "s") << " -> " << out_path
              << "\n";
    return 0;
  } catch (const core::MergeError& e) {
    std::cerr << "sweep_orchestrator: merge failed: " << e.what()
              << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Both modes' knobs are parsed up front; --shards= decides which set
  // applies.
  core::OrchestratorOptions static_options;
  core::ElasticOrchestratorOptions elastic_options;
  static_options.shards = 0;  // 0 = elastic mode (the default)
  std::string out_path = "MERGED.json";
  bool merge_only_mode = false;
  int chaos_kill_nth = 0;
  int chaos_kill_delay_ms = 0;
  std::vector<std::string> positional;

  try {
    int i = 1;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--") {
        // Everything after -- goes to the workers verbatim.
        for (++i; i < argc; ++i) {
          static_options.bench_args.push_back(argv[i]);
        }
        break;
      }
      if (arg == "--merge-only") {
        merge_only_mode = true;
        continue;
      }
      if (arg == "--keep-shards") {
        static_options.keep_shards = true;
        elastic_options.keep_shards = true;
        continue;
      }
      if (core::consume_int_flag(arg, "--shards=",
                                 &static_options.shards)) {
        continue;
      }
      if (core::consume_int_flag(arg, "--workers=",
                                 &static_options.workers)) {
        elastic_options.workers = static_options.workers;
        continue;
      }
      if (core::consume_int_flag(arg, "--retries=",
                                 &static_options.retries)) {
        continue;
      }
      int timeout_seconds = 0;
      if (core::consume_int_flag(arg, "--timeout=", &timeout_seconds)) {
        if (timeout_seconds < 0) {
          return fail_usage("--timeout= must be >= 0");
        }
        static_options.timeout = std::chrono::seconds(timeout_seconds);
        continue;
      }
      long ranges = 0;
      if (core::consume_long_flag(arg, "--ranges=", &ranges)) {
        if (ranges < 0) return fail_usage("--ranges= must be >= 0");
        elastic_options.ranges = static_cast<std::size_t>(ranges);
        continue;
      }
      int lease_timeout_seconds = 0;
      if (core::consume_int_flag(arg, "--lease-timeout=",
                                 &lease_timeout_seconds)) {
        if (lease_timeout_seconds < 1) {
          return fail_usage("--lease-timeout= must be >= 1 second");
        }
        elastic_options.lease_timeout =
            std::chrono::seconds(lease_timeout_seconds);
        continue;
      }
      if (core::consume_double_flag(arg, "--straggler-factor=",
                                    &elastic_options.straggler_factor)) {
        if (elastic_options.straggler_factor < 0.0) {
          return fail_usage("--straggler-factor= must be >= 0");
        }
        continue;
      }
      int straggler_min_ms = 0;
      if (core::consume_int_flag(arg, "--straggler-min-ms=",
                                 &straggler_min_ms)) {
        if (straggler_min_ms < 0) {
          return fail_usage("--straggler-min-ms= must be >= 0");
        }
        elastic_options.straggler_min =
            std::chrono::milliseconds(straggler_min_ms);
        continue;
      }
      long failure_budget = 0;
      if (core::consume_long_flag(arg, "--failure-budget=",
                                  &failure_budget)) {
        if (failure_budget < 0) {
          return fail_usage("--failure-budget= must be >= 0");
        }
        elastic_options.failure_budget =
            static_cast<std::size_t>(failure_budget);
        continue;
      }
      int backoff_ms = 0;
      if (core::consume_int_flag(arg, "--backoff-ms=", &backoff_ms)) {
        if (backoff_ms < 0) return fail_usage("--backoff-ms= must be >= 0");
        static_options.backoff.base =
            std::chrono::milliseconds(backoff_ms);
        elastic_options.backoff.base = static_options.backoff.base;
        continue;
      }
      int backoff_cap_ms = 0;
      if (core::consume_int_flag(arg, "--backoff-cap-ms=",
                                 &backoff_cap_ms)) {
        if (backoff_cap_ms < 0) {
          return fail_usage("--backoff-cap-ms= must be >= 0");
        }
        static_options.backoff.cap =
            std::chrono::milliseconds(backoff_cap_ms);
        elastic_options.backoff.cap = static_options.backoff.cap;
        continue;
      }
      long backoff_seed = 0;
      if (core::consume_long_flag(arg, "--backoff-seed=",
                                  &backoff_seed)) {
        static_options.backoff.seed =
            static_cast<std::uint64_t>(backoff_seed);
        elastic_options.backoff.seed = static_options.backoff.seed;
        continue;
      }
      if (core::consume_int_flag(arg, "--chaos-kill-nth=",
                                 &chaos_kill_nth)) {
        if (chaos_kill_nth < 1) {
          return fail_usage("--chaos-kill-nth= must be >= 1");
        }
        continue;
      }
      if (core::consume_int_flag(arg, "--chaos-kill-delay-ms=",
                                 &chaos_kill_delay_ms)) {
        if (chaos_kill_delay_ms < 0) {
          return fail_usage("--chaos-kill-delay-ms= must be >= 0");
        }
        continue;
      }
      if (arg.rfind("--out=", 0) == 0) {
        out_path = arg.substr(6);
        if (out_path.empty()) return fail_usage("--out= is empty");
        continue;
      }
      if (arg.rfind("--shard-dir=", 0) == 0) {
        static_options.shard_dir = arg.substr(12);
        if (static_options.shard_dir.empty()) {
          return fail_usage("--shard-dir= is empty");
        }
        elastic_options.shard_dir = static_options.shard_dir;
        continue;
      }
      if (arg.rfind("--", 0) == 0) {
        return fail_usage("unknown flag " + arg);
      }
      positional.push_back(arg);
    }
  } catch (const ContractViolation& e) {
    return fail_usage(e.what());
  }

  if (merge_only_mode) return merge_only(out_path, positional);

  if (positional.size() != 1) {
    return fail_usage("expected exactly one bench binary");
  }
  static_options.bench = positional[0];
  elastic_options.bench = positional[0];
  elastic_options.bench_args = static_options.bench_args;
  if (static_options.shards < 0) {
    return fail_usage("--shards= must be >= 1");
  }
  if (static_options.workers < 0) {
    return fail_usage("--workers= must be >= 0");
  }
  if (static_options.retries < 0) {
    return fail_usage("--retries= must be >= 0");
  }

  // The chaos transport wraps whichever scheduler runs.
  runtime::LocalExecTransport local;
  std::unique_ptr<runtime::ChaosKillTransport> chaos;
  runtime::Transport* transport = &local;
  if (chaos_kill_nth >= 1) {
    chaos = std::make_unique<runtime::ChaosKillTransport>(
        local, chaos_kill_nth,
        std::chrono::milliseconds(chaos_kill_delay_ms));
    transport = chaos.get();
  }

  if (static_options.shards >= 1) {
    // Legacy static partition.
    static_options.transport = transport;
    const core::OrchestrationResult result =
        core::orchestrate(static_options);
    std::cout << result.summary();
    if (!result.ok()) {
      std::cerr << "sweep_orchestrator: incomplete run, not writing "
                << out_path << "\n";
      return 1;
    }
    if (!write_file(out_path, result.merged.dump(1))) {
      std::cerr << "sweep_orchestrator: cannot write " << out_path
                << " (shard documents kept in "
                << static_options.shard_dir << ")\n";
      return 1;
    }
    // Only now are the shard documents redundant.
    if (!static_options.keep_shards) {
      core::remove_shard_documents(static_options, result);
    }
    std::cout << "wrote " << out_path << "\n";
    return 0;
  }

  if (elastic_options.workers == 0) elastic_options.workers = 3;
  elastic_options.transport = transport;
  const core::ElasticResult result =
      core::orchestrate_elastic(elastic_options);
  std::cout << result.summary();
  if (!result.ok()) {
    std::cerr << "sweep_orchestrator: incomplete run, not writing "
              << out_path << "\n";
    return 1;
  }
  if (!write_file(out_path, result.merged.dump(1))) {
    std::cerr << "sweep_orchestrator: cannot write " << out_path
              << " (lease documents kept in "
              << elastic_options.shard_dir << ")\n";
    return 1;
  }
  if (!elastic_options.keep_shards) {
    core::remove_lease_documents(elastic_options, result);
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
