// sweep_orchestrator: multi-process shard driver for the bench
// binaries.
//
//   sweep_orchestrator <bench> [--shards=N] [--workers=M]
//                      [--retries=R] [--timeout=SECONDS] [--out=PATH]
//                      [--shard-dir=DIR] [--keep-shards]
//                      [-- <args forwarded to every worker>]
//
// Launches the N `--shard=K/N --json=<shard-dir>/shard_K.json` child
// processes (at most M concurrently), retries shards that crash, time
// out, or write unparsable JSON, and merges the N shard documents
// into one --out document bit-identical (modulo timing keys) to the
// unsharded `--json` run. A shard that keeps failing is reported with
// its captured stderr and the orchestrator exits nonzero — a merge is
// never silently incomplete.
//
// The merge alone is exposed as
//
//   sweep_orchestrator --merge-only --out=PATH SHARD.json...
//
// which is the promoted form of scripts/check_shard_union.py's old
// row-concatenation logic (the script now just diffs documents).
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/orchestrator.h"
#include "src/core/report.h"
#include "src/core/sweep_cli.h"
#include "src/util/assert.h"
#include "src/util/json.h"

using namespace setlib;

namespace {

constexpr const char* kUsage = R"(usage:
  sweep_orchestrator <bench> [--shards=N] [--workers=M] [--retries=R]
                     [--timeout=SECONDS] [--out=PATH] [--shard-dir=DIR]
                     [--keep-shards] [-- <args forwarded to workers>]
  sweep_orchestrator --merge-only [--out=PATH] SHARD.json...

Runs the N --shard=K/N --json workers of one bench binary (at most M
at a time), retries crashed/timed-out shards, and merges the shard
documents into --out (default MERGED.json) — bit-identical, modulo
timing keys, to the unsharded --json run. --merge-only skips the
launching and merges already-written shard documents.
)";

int fail_usage(const std::string& message) {
  std::cerr << "sweep_orchestrator: " << message << "\n" << kUsage;
  return 2;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream file(path);
  if (!file.good()) return false;
  file << text;
  return file.good();
}

int merge_only(const std::string& out_path,
               const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return fail_usage("--merge-only needs at least one shard document");
  }
  std::vector<JsonValue> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file.good()) {
      std::cerr << "sweep_orchestrator: cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
      docs.push_back(JsonValue::parse(buffer.str()));
    } catch (const JsonParseError& e) {
      std::cerr << "sweep_orchestrator: " << path << ": " << e.what()
                << "\n";
      return 1;
    }
  }
  try {
    const JsonValue merged = core::merge_shard_docs(docs);
    if (!write_file(out_path, merged.dump(1))) {
      std::cerr << "sweep_orchestrator: cannot write " << out_path
                << "\n";
      return 1;
    }
    std::cout << "merged " << paths.size() << " shard document"
              << (paths.size() == 1 ? "" : "s") << " -> " << out_path
              << "\n";
    return 0;
  } catch (const core::MergeError& e) {
    std::cerr << "sweep_orchestrator: merge failed: " << e.what()
              << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::OrchestratorOptions options;
  std::string out_path = "MERGED.json";
  bool merge_only_mode = false;
  std::vector<std::string> positional;

  try {
    int i = 1;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--") {
        // Everything after -- goes to the workers verbatim.
        for (++i; i < argc; ++i) options.bench_args.push_back(argv[i]);
        break;
      }
      if (arg == "--merge-only") {
        merge_only_mode = true;
        continue;
      }
      if (arg == "--keep-shards") {
        options.keep_shards = true;
        continue;
      }
      if (core::consume_int_flag(arg, "--shards=", &options.shards)) continue;
      if (core::consume_int_flag(arg, "--workers=", &options.workers)) {
        continue;
      }
      if (core::consume_int_flag(arg, "--retries=", &options.retries)) {
        continue;
      }
      int timeout_seconds = 0;
      if (core::consume_int_flag(arg, "--timeout=", &timeout_seconds)) {
        if (timeout_seconds < 0) {
          return fail_usage("--timeout= must be >= 0");
        }
        options.timeout = std::chrono::seconds(timeout_seconds);
        continue;
      }
      if (arg.rfind("--out=", 0) == 0) {
        out_path = arg.substr(6);
        if (out_path.empty()) return fail_usage("--out= is empty");
        continue;
      }
      if (arg.rfind("--shard-dir=", 0) == 0) {
        options.shard_dir = arg.substr(12);
        if (options.shard_dir.empty()) {
          return fail_usage("--shard-dir= is empty");
        }
        continue;
      }
      if (arg.rfind("--", 0) == 0) {
        return fail_usage("unknown flag " + arg);
      }
      positional.push_back(arg);
    }
  } catch (const ContractViolation& e) {
    return fail_usage(e.what());
  }

  if (merge_only_mode) return merge_only(out_path, positional);

  if (positional.size() != 1) {
    return fail_usage("expected exactly one bench binary");
  }
  options.bench = positional[0];
  if (options.shards < 1) return fail_usage("--shards= must be >= 1");
  if (options.workers < 0) return fail_usage("--workers= must be >= 0");
  if (options.retries < 0) return fail_usage("--retries= must be >= 0");

  const core::OrchestrationResult result = core::orchestrate(options);
  std::cout << result.summary();
  if (!result.ok()) {
    std::cerr << "sweep_orchestrator: incomplete run, not writing "
              << out_path << "\n";
    return 1;
  }
  if (!write_file(out_path, result.merged.dump(1))) {
    std::cerr << "sweep_orchestrator: cannot write " << out_path
              << " (shard documents kept in " << options.shard_dir
              << ")\n";
    return 1;
  }
  // Only now are the shard documents redundant.
  if (!options.keep_shards) core::remove_shard_documents(options, result);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
