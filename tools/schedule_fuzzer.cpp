// schedule_fuzzer: seeded search for bound-regressing schedules.
//
// Drives core::fuzz_schedules over the (family | reactive, params,
// seed) space, scores every schedule with the packed analyzer's
// best-pair bound per (i, j) cell, and appends minimized, hash-pinned
// regressions to a JSON corpus (one <hash>.json file per entry; the
// checked-in regression suite lives in tests/corpus/).
//
//   schedule_fuzzer [--seed=S] [--budget=B] [--n=N] [--steps=L]
//                   [--threads=T] [--corpus=DIR]
//   schedule_fuzzer --verify --corpus=DIR
//   schedule_fuzzer --replay=HASH --corpus=DIR
//
// Determinism: with a fixed --seed and --budget, two runs emit
// identical corpora at any --threads value (trials are scored in
// parallel but admitted in trial order). --verify replays every corpus
// entry from its recorded step stream, recomputing the hash and the
// bound with both the packed and the reference analyzer; --replay does
// the same for one entry — the one-line repro for any regression the
// fuzzer ever found.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/fuzz.h"
#include "src/core/runner.h"
#include "src/core/sweep_cli.h"
#include "src/util/json.h"

namespace {

namespace fs = std::filesystem;
using setlib::core::CorpusEntry;

/// Corpus file stem: "<hash16>-i<I>j<J>". One schedule can regress
/// several cells (the minimized artifact may coincide), so the cell
/// coordinates join the hash in the name.
std::string corpus_stem(const CorpusEntry& entry) {
  return setlib::sched::hash_hex(entry.hash) + "-i" +
         std::to_string(entry.i) + "j" + std::to_string(entry.j);
}

struct FuzzerCli {
  setlib::core::FuzzOptions fuzz;
  int threads = 1;
  std::string corpus_dir;
  std::string replay_hash;
  bool verify = false;
};

FuzzerCli parse_cli(int argc, char** argv) {
  FuzzerCli cli;
  long seed = 1;
  long budget = 128;
  long steps = 20'000;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (setlib::core::consume_long_flag(arg, "--seed=", &seed)) continue;
    if (setlib::core::consume_long_flag(arg, "--budget=", &budget)) continue;
    if (setlib::core::consume_int_flag(arg, "--n=", &cli.fuzz.n)) continue;
    if (setlib::core::consume_long_flag(arg, "--steps=", &steps)) continue;
    if (setlib::core::consume_int_flag(arg, "--threads=", &cli.threads)) {
      continue;
    }
    if (arg.rfind("--corpus=", 0) == 0) {
      cli.corpus_dir = arg.substr(std::string("--corpus=").size());
      continue;
    }
    if (arg.rfind("--replay=", 0) == 0) {
      cli.replay_hash = arg.substr(std::string("--replay=").size());
      continue;
    }
    if (arg == "--verify") {
      cli.verify = true;
      continue;
    }
    throw std::runtime_error("unknown flag: " + arg);
  }
  cli.fuzz.seed = static_cast<std::uint64_t>(seed);
  cli.fuzz.budget = static_cast<int>(budget);
  cli.fuzz.schedule_len = steps;
  return cli;
}

/// Loads every *.json corpus entry, sorted by file name (= hash) so
/// the load order is stable across filesystems.
std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  if (dir.empty() || !fs::exists(dir)) return entries;
  std::vector<fs::path> files;
  for (const auto& item : fs::directory_iterator(dir)) {
    if (item.path().extension() == ".json") files.push_back(item.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    entries.push_back(setlib::core::parse_corpus_entry(
        setlib::JsonValue::parse(buffer.str())));
    const std::string stem = file.stem().string();
    if (stem != corpus_stem(entries.back())) {
      throw std::runtime_error("corpus file " + file.string() +
                               " is not named after its hash and cell");
    }
  }
  return entries;
}

int verify_entries(const std::vector<CorpusEntry>& entries) {
  int failures = 0;
  for (const CorpusEntry& entry : entries) {
    const auto verdict = setlib::core::verify_corpus_entry(entry);
    std::cout << (verdict.ok ? "PASS" : "FAIL") << " "
              << setlib::sched::hash_hex(entry.hash) << " n=" << entry.n
              << " i=" << entry.i << " j=" << entry.j
              << " bound=" << entry.bound << " (" << entry.adversary
              << ")";
    if (!verdict.ok) std::cout << " -- " << verdict.detail;
    std::cout << "\n";
    if (!verdict.ok) ++failures;
  }
  std::cout << entries.size() << " corpus entries, " << failures
            << " failed\n";
  return failures == 0 ? 0 : 1;
}

int run(int argc, char** argv) {
  const FuzzerCli cli = parse_cli(argc, argv);

  if (!cli.replay_hash.empty()) {
    const auto entries = load_corpus(cli.corpus_dir);
    for (const CorpusEntry& entry : entries) {
      if (setlib::sched::hash_hex(entry.hash) == cli.replay_hash) {
        return verify_entries({entry});
      }
    }
    std::cerr << "no corpus entry with hash " << cli.replay_hash << " in "
              << cli.corpus_dir << "\n";
    return 1;
  }

  if (cli.verify) {
    const auto entries = load_corpus(cli.corpus_dir);
    if (entries.empty()) {
      std::cerr << "no corpus entries under " << cli.corpus_dir << "\n";
      return 1;
    }
    return verify_entries(entries);
  }

  const auto known = load_corpus(cli.corpus_dir);
  setlib::core::RunnerOptions options;
  options.name = "schedule_fuzzer";
  options.threads = cli.threads;
  setlib::core::ExperimentRunner runner(options);
  const auto result =
      setlib::core::fuzz_schedules(runner, cli.fuzz, known);

  std::cout << "fuzz: seed=" << cli.fuzz.seed
            << " budget=" << result.trials << " n=" << cli.fuzz.n
            << " steps=" << cli.fuzz.schedule_len << "\n";
  for (const auto& cell : result.cells) {
    std::cout << "cell i=" << cell.i << " j=" << cell.j
              << " baseline=" << cell.baseline << " best=" << cell.best
              << (cell.best > cell.baseline ? "  (regressed)" : "")
              << "\n";
  }
  for (const CorpusEntry& finding : result.findings) {
    std::cout << "finding " << setlib::sched::hash_hex(finding.hash)
              << " i=" << finding.i << " j=" << finding.j << " bound "
              << finding.baseline_bound << " -> " << finding.bound
              << " len=" << finding.schedule.size() << " ("
              << finding.adversary << ")\n";
  }

  if (!cli.corpus_dir.empty() && !result.findings.empty()) {
    fs::create_directories(cli.corpus_dir);
    for (const CorpusEntry& finding : result.findings) {
      const fs::path file =
          fs::path(cli.corpus_dir) / (corpus_stem(finding) + ".json");
      std::ofstream out(file);
      out << setlib::core::corpus_entry_json(finding);
      std::cout << "wrote " << file.string() << "  (repro: schedule_fuzzer"
                << " --corpus=" << cli.corpus_dir
                << " --replay=" << setlib::sched::hash_hex(finding.hash)
                << ")\n";
    }
  }
  std::cout << result.findings.size() << " new corpus entr"
            << (result.findings.size() == 1 ? "y" : "ies") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "schedule_fuzzer: " << e.what() << "\n";
    return 2;
  }
}
