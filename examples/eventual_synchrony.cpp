// Eventual set timeliness: the DLS "global stabilization time" story
// told in the set-timeliness model.
//
// The schedule starves every k-subset in growing bursts (no k-set is
// timely — the detector cannot settle) until step 60000, then becomes
// a well-behaved S^2_{3,5} schedule. Definition 1's bound for the
// witness pair is finite despite the bad prefix, so the schedule IS in
// S^2_{3,5}, and the paper's machinery must — and does — recover: the
// adaptive timeouts absorb the chaos, the winnerset stabilizes, and
// (2,2,5)-agreement decides.
#include <iostream>
#include <memory>

#include "src/agreement/kset.h"
#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/table.h"

int main() {
  using namespace setlib;
  const int n = 5, k = 2, t = 2;
  const std::int64_t gst = 60'000;

  shm::SimMemory mem;
  fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
  agreement::KSetAgreement kset(
      mem, agreement::KSetAgreement::Params{n, k, t}, &detector);
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
    kset.install(sim.process(p), p, 100 + p);
  }

  auto before = std::make_unique<sched::KSubsetStarverGenerator>(
      n, ProcSet::universe(n), k, 400);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, 11);
  auto after = sched::EnforcedGenerator::single(
      std::move(base),
      sched::TimelinessConstraint(ProcSet::range(0, k),
                                  ProcSet::range(0, t + 1), 3));
  sched::SwitchGenerator gen(std::move(before), std::move(after), gst);

  std::cout << "Chaos until step " << gst
            << " (k-subset starvation), then S^2_{3,5} synchrony.\n\n";
  TextTable trace({"steps", "winnerset changes (total)", "decided procs",
                   "phase"});
  const ProcSet all = ProcSet::universe(n);
  for (int sample = 1; sample <= 10; ++sample) {
    sim.run_until(gen, 12'000, [&] { return false; });
    std::int64_t changes = 0;
    int decided = 0;
    for (Pid p = 0; p < n; ++p) {
      changes += detector.view(p).winnerset_changes;
      if (kset.decided(p)) ++decided;
    }
    trace.row()
        .cell(sim.steps_taken())
        .cell(changes)
        .cell(decided)
        .cell(sim.steps_taken() <= gst ? "chaos" : "synchrony");
  }
  sim.run_until(gen, 2'000'000, [&] { return kset.all_decided(all); });
  trace.print(std::cout);

  const auto check = fd::check_kantiomega(detector, all, 6);
  std::cout << "\nafter recovery: " << check.detail << "\n";
  std::cout << "decisions: ";
  for (Pid p = 0; p < n; ++p) {
    std::cout << "p" << p << "=" << kset.outcome(p).value << " ";
  }
  const auto values = kset.distinct_decisions(all);
  std::cout << "(" << values.size() << " distinct, k=" << k << ")\n";

  // Witness: finite bound over the WHOLE schedule despite the prefix.
  const std::int64_t bound = sched::min_timeliness_bound(
      sim.executed(), ProcSet::range(0, k), ProcSet::range(0, t + 1));
  std::cout << "whole-run witness bound: " << bound
            << " (finite => the schedule is in S^2_{3,5})\n";
  return kset.all_decided(all) && values.size() <= 2 ? 0 : 1;
}
