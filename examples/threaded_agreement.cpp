// The full Theorem 24 stack on real threads.
//
// Each process is a std::jthread multiplexing the Figure 2 detector and
// k Paxos instances; the pacer enforces that the first k processes stay
// timely w.r.t. the first t+1 (a live S^k_{t+1,n} system); two
// processes are crash-injected mid-run.
//
// `--repeat=N` runs N independent instances of the whole stack and
// aggregates; `--threads=M` shards the instances across the
// ExperimentRunner's persistent pool (each instance spawns its own 6
// jthreads, so keep M small).
#include <iostream>

#include "src/core/runner.h"
#include "src/core/sweep_cli.h"
#include "src/runtime/rt_harness.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace setlib;

  const auto options =
      core::parse_runner_options(&argc, argv, "threaded_agreement");
  core::ExperimentRunner runner(options);

  runtime::RtRunConfig cfg;
  cfg.n = 6;
  cfg.k = 2;
  cfg.t = 3;
  cfg.bound = 6;
  cfg.crash_count = 2;
  cfg.crash_ops = 4'000;

  std::cout << "Threaded (t=3, k=2, n=6)-agreement in S^2_{4,6}: 6 "
               "jthreads,\npacer bound 6, processes 4 and 5 crash after "
               "4000 ops each.\n";
  std::cout << "Instances: " << options.repeat
            << " (sweep threads: " << runner.pool().threads() << ")\n\n";

  const std::size_t instances =
      static_cast<std::size_t>(options.repeat);
  const auto reports = runner.map<runtime::RtRunReport>(
      instances,
      [&cfg](std::size_t) { return runtime::run_kset_threaded(cfg); });
  if (reports.empty()) {
    std::cout << "shard " << options.shard.to_string()
              << " holds no instances\n";
    return 0;
  }

  const auto& report = reports.front();
  std::cout << "all done:        " << (report.all_done ? "yes" : "no")
            << "\n";
  std::cout << "faulty:          " << report.faulty << "\n";
  std::cout << "decisions:       ";
  for (int p = 0; p < cfg.n; ++p) {
    const auto& d = report.decisions[static_cast<std::size_t>(p)];
    std::cout << "p" << p << "="
              << (d.has_value() ? std::to_string(*d) : "?") << " ";
  }
  std::cout << "\n";
  std::cout << "distinct values: " << report.distinct_decisions
            << " (k = " << cfg.k << ")\n";
  std::cout << "pacer steps:     " << report.pacer_steps << "\n";
  std::cout << "witness bound:   " << report.witness_bound
            << " (measured on the pacer's serialized schedule)\n";
  std::cout << "elapsed:         " << report.elapsed.count() << " ms\n";
  std::cout << "detector:        "
            << (report.detector_stabilized ? "stabilized" : "oscillating")
            << ", abstract property "
            << (report.detector_abstract_ok ? "holds" : "n/a") << "\n";
  std::cout << "verdict:         " << report.detail << "\n";

  std::size_t successes = 0;
  Summary elapsed_ms;
  for (const auto& r : reports) {
    if (r.success) ++successes;
    elapsed_ms.add(static_cast<double>(r.elapsed.count()));
  }
  if (reports.size() > 1) {
    std::cout << "aggregate:       " << successes << "/" << reports.size()
              << " instances succeeded, mean elapsed "
              << elapsed_ms.mean() << " ms, p90 "
              << elapsed_ms.percentile(90.0) << " ms\n";
  }
  const bool all_success = successes == reports.size();
  std::cout << (all_success ? "SUCCESS" : "FAILURE") << "\n";
  return all_success ? 0 : 1;
}
