// The full Theorem 24 stack on real threads.
//
// Each process is a std::jthread multiplexing the Figure 2 detector and
// k Paxos instances; the pacer enforces that the first k processes stay
// timely w.r.t. the first t+1 (a live S^k_{t+1,n} system); two
// processes are crash-injected mid-run.
#include <iostream>

#include "src/runtime/rt_harness.h"

int main() {
  using namespace setlib;

  runtime::RtRunConfig cfg;
  cfg.n = 6;
  cfg.k = 2;
  cfg.t = 3;
  cfg.bound = 6;
  cfg.crash_count = 2;
  cfg.crash_ops = 4'000;

  std::cout << "Threaded (t=3, k=2, n=6)-agreement in S^2_{4,6}: 6 "
               "jthreads,\npacer bound 6, processes 4 and 5 crash after "
               "4000 ops each.\n\n";
  const auto report = runtime::run_kset_threaded(cfg);

  std::cout << "all done:        " << (report.all_done ? "yes" : "no")
            << "\n";
  std::cout << "faulty:          " << report.faulty << "\n";
  std::cout << "decisions:       ";
  for (int p = 0; p < cfg.n; ++p) {
    const auto& d = report.decisions[static_cast<std::size_t>(p)];
    std::cout << "p" << p << "="
              << (d.has_value() ? std::to_string(*d) : "?") << " ";
  }
  std::cout << "\n";
  std::cout << "distinct values: " << report.distinct_decisions
            << " (k = " << cfg.k << ")\n";
  std::cout << "pacer steps:     " << report.pacer_steps << "\n";
  std::cout << "witness bound:   " << report.witness_bound
            << " (measured on the pacer's serialized schedule)\n";
  std::cout << "elapsed:         " << report.elapsed.count() << " ms\n";
  std::cout << "detector:        "
            << (report.detector_stabilized ? "stabilized" : "oscillating")
            << ", abstract property "
            << (report.detector_abstract_ok ? "holds" : "n/a") << "\n";
  std::cout << "verdict:         " << report.detail << "\n";
  std::cout << (report.success ? "SUCCESS" : "FAILURE") << "\n";
  return report.success ? 0 : 1;
}
