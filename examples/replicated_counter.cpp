// A replicated counter on top of the paper's stack.
//
// Multi-shot consensus (k = 1) over the Figure 2 detector gives a
// replicated command log: each process submits "add x" commands, all
// correct processes decide the same command per slot, and applying the
// log yields the same counter value everywhere — even though two
// replicas crash mid-run. This is the downstream-user view of
// Theorem 24: S^1_{t+1,n} is enough synchrony to replicate state.
#include <iostream>
#include <memory>

#include "src/agreement/multishot.h"
#include "src/fd/kantiomega.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/table.h"

int main() {
  using namespace setlib;
  const int n = 5, k = 1, t = 2, slots = 8;

  shm::SimMemory mem;
  fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
  agreement::MultiShotAgreement log(
      mem, agreement::MultiShotAgreement::Params{n, k, t, slots},
      &detector);
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
    std::vector<std::int64_t> commands;  // "add (p+1)*10^s-ish" amounts
    for (int s = 0; s < slots; ++s) commands.push_back((p + 1) * 10 + s);
    log.install(sim.process(p), p, std::move(commands));
  }

  const auto plan = sched::CrashPlan::at(n, ProcSet::of({3, 4}), 80'000);
  sim.use_crash_plan(plan);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, 4242);
  std::vector<sched::TimelinessConstraint> constraints{
      sched::TimelinessConstraint(ProcSet::of(0), ProcSet::range(0, t + 1),
                                  3)};
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               plan);
  const ProcSet correct = plan.faulty().complement(n);
  sim.run_until(gen, 8'000'000, [&] { return log.all_decided(correct); });

  std::cout << "Replicated counter via multi-shot consensus "
               "(n=5, t=2, 8 slots; replicas 3,4 crash at step 80000)\n\n";
  TextTable table({"slot", "decided command", "proposer", "counter"});
  std::int64_t counter = 0;
  for (int s = 0; s < slots; ++s) {
    const auto values = log.slot_values(s, correct);
    if (values.size() != 1) {
      std::cout << "slot " << s << ": INCONSISTENT\n";
      return 1;
    }
    counter += values[0];
    // Built with += rather than `"lit" + std::to_string(...)`: GCC 12's
    // -Wrestrict misfires on operator+(const char*, string&&) (PR105651)
    // and the build is -Werror.
    std::string command = "add ";
    command += std::to_string(values[0]);
    std::string proposer = "p";
    proposer += std::to_string(values[0] / 10 - 1);
    table.row().cell(s).cell(command).cell(proposer).cell(counter);
  }
  table.print(std::cout);

  std::cout << "\nAll correct replicas apply the same log; final counter "
            << "value everywhere: " << counter << "\n";
  std::cout << "steps executed: " << sim.steps_taken() << "\n";
  return 0;
}
