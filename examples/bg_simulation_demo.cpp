// BG simulation demo (the engine of Theorem 26's impossibility proof).
//
// Three simulators jointly execute five simulated full-information
// threads; one simulator is crash-injected. The demo prints each
// simulator's view of the thread decisions (they must agree — that is
// the safe-agreement discipline), which threads got blocked by the
// crash, and the timeliness shape of the simulated schedule.
#include <iostream>
#include <memory>

#include "src/bg/bg_sim.h"
#include "src/bg/threads.h"
#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/table.h"

int main() {
  using namespace setlib;
  const int m = 3, n = 5;

  shm::SimMemory mem;
  bg::BGSimulation bg_sim(
      mem, bg::BGSimulation::Params{m, n, /*horizon=*/10},
      [](int u) { return std::make_unique<bg::MinInputThread>(100 + u, 6); });
  shm::Simulator sim(mem, m);
  for (Pid i = 0; i < m; ++i) {
    sim.process(i).add_task(bg_sim.run(i), "bg");
  }
  sim.use_crash_plan(sched::CrashPlan::at(m, ProcSet::of(2), 6'000));

  sched::RoundRobinGenerator gen(m);
  sim.run(gen, 2'000'000);

  std::cout << m << " simulators, " << n
            << " simulated threads (inputs 100..104, decide after 6 "
               "rounds); simulator 2 crashes at step 6000\n\n";

  TextTable table({"thread", "steps (sim0)", "decision (sim0)",
                   "decision (sim1)", "blocked"});
  const ProcSet blocked = bg_sim.blocked_threads();
  for (int u = 0; u < n; ++u) {
    auto fmt = [&](int s) {
      const auto d = bg_sim.thread_decision(s, u);
      return d.has_value() ? std::to_string(*d) : std::string("-");
    };
    table.row()
        .cell(u)
        .cell(bg_sim.steps_of(0, u))
        .cell(fmt(0))
        .cell(fmt(1))
        .cell(blocked.contains(u) ? "yes" : "no");
  }
  table.print(std::cout);

  const sched::Schedule& simulated = bg_sim.simulated_schedule();
  std::cout << "\nsimulated schedule: " << simulated.size()
            << " steps; every " << m << "-subset of threads timely "
            << "w.r.t. all " << n << " threads with bound <= ";
  std::int64_t worst = 0;
  for (const ProcSet s : k_subsets(n, m)) {
    worst = std::max(worst, sched::min_timeliness_bound(
                                simulated, s, ProcSet::universe(n)));
  }
  std::cout << worst << " (property (ii) of the Theorem 26 proof).\n";
  std::cout << "A crashed simulator blocks at most one thread — property "
               "(i): blocked = "
            << blocked.to_string() << ".\n";
  return 0;
}
