// Interactive-ish explorer for Theorem 27.
//
// Usage:
//   solvability_explorer                  — print the frontier matrix
//                                           for a few (t, k, n) specs
//   solvability_explorer t k n            — matrix for one spec
//   solvability_explorer t k n i j        — one query, with the
//                                           matching-system hint
//   solvability_explorer scan n i j [cap] — empirical S^i_{j,n}
//                                           membership census at large
//                                           n (up to 24) via the
//                                           batched RankedPairScan, on
//                                           a witness-enforced and an
//                                           i-subset-starver schedule
// `--threads=N` / `--shard=K/N` (stripped before the positional args)
// shard the empirical matrix cells — and the scan's P-rank chunks —
// across the ExperimentRunner's persistent pool.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/runner.h"
#include "src/core/solvability.h"
#include "src/core/sweep_cli.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_predicate_matrix(const core::AgreementSpec& spec) {
  TextTable table({"i \\ j", "1", "2", "3", "4", "5", "6", "7", "8"});
  for (int i = 1; i <= spec.n; ++i) {
    auto& row = table.row().cell(i);
    for (int j = 1; j <= 8; ++j) {
      if (j > spec.n) {
        row.cell("");
      } else if (j < i) {
        row.cell(".");
      } else {
        row.cell(core::solvable(spec, {i, j, spec.n}) ? "S" : "u");
      }
    }
  }
  std::cout << spec.to_string() << " in S^i_{j," << spec.n
            << "}  (S = solvable, u = unsolvable; Thm 27: S iff i <= "
            << spec.k << " and j-i >= " << spec.t + 1 - spec.k << ")\n"
            << table.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setlib;

  const auto options =
      core::parse_runner_options(&argc, argv, "solvability_explorer");

  if (argc >= 2 && std::strcmp(argv[1], "scan") == 0) {
    if (argc < 5) {
      std::cout << "usage: solvability_explorer scan n i j [cap]\n";
      return 1;
    }
    const int n = std::atoi(argv[2]);
    const int i = std::atoi(argv[3]);
    const int j = std::atoi(argv[4]);
    const std::int64_t cap = argc > 5 ? std::atoll(argv[5]) : 3;
    if (n < 2 || n > kMaxProcs || i < 1 || i > n || j < 1 || j > n ||
        cap < 1) {
      std::cout << "usage: solvability_explorer scan n i j [cap]\n"
                   "  with 2 <= n <= " << kMaxProcs
                << ", 1 <= i, j <= n, cap >= 1\n";
      return 1;
    }
    core::ExperimentRunner runner(options);
    std::cout << "S^" << i << "_{" << j << "," << n
              << "} membership census (cap " << cap
              << ", 40k-step prefixes, C(" << n << "," << i << ") x C("
              << n << "," << j << ") pairs)\n\n";
    for (const bool enforced : {true, false}) {
      if (!enforced && i >= n) {
        std::cout << "(skipping the starver schedule: i == n leaves no "
                     "proper subset to starve)\n";
        continue;
      }
      core::PairScanConfig cfg;
      cfg.n = n;
      cfg.i = i;
      cfg.j = j;
      cfg.bound_cap = cap;
      cfg.enforced_bound = enforced ? cap : 0;
      const auto result = core::ranked_pair_scan(cfg, runner);
      std::cout << (enforced ? "enforced witness"
                             : std::to_string(i) + "-subset starver")
                << ": " << result.members << "/" << result.pairs
                << " pairs certify membership";
      if (result.found) {
        std::cout << "; first " << result.first.timely_set.to_string()
                  << " vs " << result.first.observed_set.to_string()
                  << " at bound " << result.first.bound;
      }
      std::cout << "\n";
    }
    return 0;
  }

  if (argc == 6) {
    const core::AgreementSpec spec{std::atoi(argv[1]), std::atoi(argv[2]),
                                   std::atoi(argv[3])};
    const core::SystemSpec sys{std::atoi(argv[4]), std::atoi(argv[5]),
                               spec.n};
    const bool answer = core::solvable(spec, sys);
    std::cout << spec.to_string() << " in " << sys.to_string() << ": "
              << (answer ? "SOLVABLE" : "UNSOLVABLE") << "\n";
    const auto match = core::matching_system(spec);
    std::cout << "matching system (Theorem 24): " << match.to_string()
              << "\n";
    return 0;
  }

  if (argc == 4) {
    const core::AgreementSpec spec{std::atoi(argv[1]), std::atoi(argv[2]),
                                   std::atoi(argv[3])};
    print_predicate_matrix(spec);
    if (spec.k <= spec.t) {
      std::cout << "Running the empirical matrix (detector frontier + "
                   "solver) ...\n\n";
      core::ExperimentRunner runner(options);
      core::MatrixConfig cfg;
      cfg.spec = spec;
      cfg.max_steps = 900'000;
      std::cout << core::render_matrix(spec,
                                       core::thm27_matrix(cfg, runner));
    }
    return 0;
  }

  for (const auto& spec : {core::AgreementSpec{2, 1, 4},
                           core::AgreementSpec{2, 2, 5},
                           core::AgreementSpec{3, 2, 6},
                           core::AgreementSpec{4, 3, 8}}) {
    print_predicate_matrix(spec);
  }
  std::cout << "Run with arguments `t k n` for the empirical matrix, "
               "`t k n i j` for one query, or `scan n i j [cap]` for a "
               "large-n membership census.\n";
  return 0;
}
