// Quickstart: solve t-resilient k-set agreement in the partially
// synchronous system S^k_{t+1,n} of "Partial Synchrony Based on Set
// Timeliness" (Aguilera, Delporte-Gallet, Fauconnier, Toueg, PODC'09).
//
// One call to setlib::core::run_agreement assembles the whole stack:
// a seeded schedule in S^i_{j,n} (uniform asynchrony constrained so one
// i-set stays timely w.r.t. one j-set), the Figure 2 t-resilient
// k-anti-Omega detector, and k Paxos instances led by the detector's
// winnerset members. The report carries the agreement verdict, the
// detector's stabilization telemetry, and the measured timeliness bound
// of the witness pair on the executed schedule.
#include <cstdlib>
#include <iostream>

#include "src/core/engine.h"
#include "src/core/solvability.h"

int main() {
  using namespace setlib;

  core::RunConfig cfg;
  cfg.spec = core::AgreementSpec{/*t=*/2, /*k=*/2, /*n=*/5};
  cfg.system = core::matching_system(cfg.spec);  // S^2_{3,5}
  cfg.seed = 42;

  std::cout << "Solving " << cfg.spec.to_string() << " in "
            << cfg.system.to_string() << "\n";
  std::cout << "Theorem 27 predicts: "
            << (core::solvable(cfg.spec, cfg.system) ? "solvable"
                                                     : "unsolvable")
            << "\n\n";

  const core::RunReport report = core::run_agreement(cfg);

  std::cout << "algorithm:        " << report.algorithm << "\n";
  std::cout << "steps executed:   " << report.steps_executed << "\n";
  std::cout << "witness (P,Q):    " << report.timely_set << " vs "
            << report.observed_set
            << ", measured bound = " << report.witness_bound << "\n";
  if (report.detector.used) {
    std::cout << "detector:         "
              << (report.detector.stabilized ? "stabilized" : "oscillating")
              << ", winnerset = " << report.detector.winnerset
              << ", iterations = " << report.detector.max_iterations << "\n";
  }
  std::cout << "decisions:        ";
  for (int p = 0; p < cfg.spec.n; ++p) {
    if (report.decisions[static_cast<std::size_t>(p)].has_value()) {
      std::cout << "p" << p << "="
                << *report.decisions[static_cast<std::size_t>(p)] << " ";
    } else {
      std::cout << "p" << p << "=? ";
    }
  }
  std::cout << "\n";
  std::cout << "verdict:          " << report.detail << "\n";
  std::cout << (report.success ? "SUCCESS" : "FAILURE") << "\n";
  return report.success ? EXIT_SUCCESS : EXIT_FAILURE;
}
