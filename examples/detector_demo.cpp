// Watch the Figure 2 algorithm converge.
//
// Runs t-resilient k-anti-Omega for (n=5, k=2, t=2) on a schedule of
// S^2_{3,5} with two tail crashes, sampling each process's winnerset as
// the run proceeds, then prints the final accusation evidence: the
// Counter[A, q] matrix rows of the winning set vs. a crashed set.
#include <iostream>
#include <memory>

#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/table.h"

int main() {
  using namespace setlib;
  const int n = 5, k = 2, t = 2;

  shm::SimMemory mem;
  fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "kanti-omega");
  }

  const auto plan = sched::CrashPlan::at(n, ProcSet::of({3, 4}), 15'000);
  sim.use_crash_plan(plan);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, 2026);
  std::vector<sched::TimelinessConstraint> constraints{
      sched::TimelinessConstraint(ProcSet::range(0, k),
                                  ProcSet::range(0, t + 1), 3)};
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               plan);

  std::cout << "t-resilient k-anti-Omega, n=5 k=2 t=2, schedule in "
               "S^2_{3,5}; processes 3,4 crash at step 15000\n\n";
  TextTable trace({"steps", "ws(p0)", "ws(p1)", "ws(p2)", "iter(p0)"});
  for (int sample = 0; sample < 12; ++sample) {
    sim.run(gen, 12'000);
    trace.row()
        .cell(sim.steps_taken())
        .cell(detector.view(0).winnerset.to_string())
        .cell(detector.view(1).winnerset.to_string())
        .cell(detector.view(2).winnerset.to_string())
        .cell(detector.view(0).iterations);
  }
  trace.print(std::cout);

  const ProcSet correct = ProcSet::range(0, 3);
  const auto check = fd::check_kantiomega(detector, correct, 6);
  std::cout << "\nfinal: " << check.detail << "\n\n";

  // Accusation evidence: the winning set's counter row stays frozen at
  // small values; a set containing only crashed processes diverges.
  const auto show_row = [&](ProcSet set) {
    std::cout << "Counter[" << set.to_string() << ", *] = ";
    const auto rank = detector.ranker().rank(set);
    for (Pid qp = 0; qp < n; ++qp) {
      std::cout << mem.peek(detector.counter_reg(rank, qp)).as_int_or(0)
                << ' ';
    }
    std::cout << "\n";
  };
  show_row(check.winnerset);
  show_row(ProcSet::of({3, 4}));
  std::cout << "\nThe (t+1)-st smallest entry is the accusation counter: "
               "frozen for the\nwinnerset, divergent for the crashed "
               "set (Lemmas 11/12 of the paper).\n";
  return check.ok ? 0 : 1;
}
