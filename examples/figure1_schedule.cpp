// Figure 1 walk-through: why *set* timeliness is strictly more
// expressive than per-process timeliness.
//
// Builds the paper's schedule S = [(p1 q)^i (p2 q)^i], prints a prefix,
// and measures minimal timeliness bounds per growing prefix (one
// incremental sched::BoundTracker pass per candidate, via
// core::figure1_rows): {p1} and {p2} diverge (each is starved for i
// consecutive (x q) pairs in phase i), while the virtual process
// {p1, p2} stays timely with bound 2 — the exact phenomenon of the
// paper's Figure 1.
#include <iostream>

#include "src/core/experiments.h"
#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/util/table.h"

int main() {
  using namespace setlib;

  const Pid p1 = 0, p2 = 1, q = 2;
  sched::Figure1Generator gen(3, p1, p2, q);
  const auto schedule =
      sched::generate(gen, sched::Figure1Generator::steps_through_phase(20));

  std::cout << "S = [(p1 q)^i (p2 q)^i] for i = 1, 2, 3, ...\n\nprefix: ";
  const char* names[] = {"p1", "p2", "q "};
  for (std::int64_t idx = 0; idx < 24; ++idx) {
    std::cout << names[schedule[idx]] << ' ';
  }
  std::cout << "...\n\n";

  const auto rows = core::figure1_rows(20);
  TextTable table({"phase i", "prefix", "{p1} vs {q}", "{p2} vs {q}",
                   "{p1,p2} vs {q}"});
  for (const auto& row : rows) {
    if (row.phase % 2 == 0 || row.phase <= 3) {
      table.row()
          .cell(row.phase)
          .cell(row.prefix_len)
          .cell(row.bound_p1)
          .cell(row.bound_p2)
          .cell(row.bound_union);
    }
  }
  table.print(std::cout);

  std::cout << "\nNeither p1 nor p2 alone is timely w.r.t. q (their "
               "bounds grow without\nlimit), but viewed as one virtual "
               "process the set {p1, p2} is timely\nwith bound 2: "
               "every window containing 2 steps of q contains a step\n"
               "of p1 or p2. That is Definition 1 of the paper.\n";
  return 0;
}
