// Checkers for the t-resilient k-anti-Omega abstract property.
//
// Definition (Section 4.1): every process p holds fdOutput_p, a set of
// n-k processes, and if at most t processes are faulty then there is a
// correct process c and a time after which c is not in fdOutput_p for
// any correct p. On a finite run we check the stabilized form the
// Figure 2 proof establishes (Lemma 22): all correct processes report
// the same winnerset, it has not changed for a trailing window, and it
// contains a correct process.
#ifndef SETLIB_FD_PROPERTY_H
#define SETLIB_FD_PROPERTY_H

#include <string>

#include "src/fd/kantiomega.h"
#include "src/util/procset.h"

namespace setlib::fd {

struct PropertyCheck {
  bool output_sizes_ok = false;    // every fdOutput has size n - k
  bool stabilized = false;         // common winnerset, quiescent window
  bool has_correct_winner = false; // winnerset intersects correct set
  bool ok = false;                 // strong (Lemma 22) conjunction
  ProcSet winnerset;

  /// The abstract property (Section 4.1): some correct process is
  /// eventually never excluded by any correct process. Implied by the
  /// strong form; can hold without full stabilization.
  ProcSet trusted;                 // candidates kept by all correct procs
  bool abstract_ok = false;        // trusted intersects correct

  std::string detail;
};

/// Evaluate the detector property over the current views. `correct` is
/// the set of processes that are correct in the run being checked;
/// `window` is the minimum number of trailing quiescent iterations
/// required of every correct process.
PropertyCheck check_kantiomega(const KAntiOmega& detector, ProcSet correct,
                               std::int64_t window);

}  // namespace setlib::fd

#endif  // SETLIB_FD_PROPERTY_H
