// The Figure 2 algorithm: t-resilient k-anti-Omega in S^k_{t+1,n}.
//
// Transcription of the paper's pseudocode (line numbers in run()):
//   shared:  Heartbeat[p] for p in Pi_n; Counter[A, q] for A in Pi_n^k,
//            q in Pi_n (both monotonically nondecreasing, single-writer).
//   loop:    read the whole Counter matrix; accusation[A] := (t+1)-st
//            smallest of cnt[A, *]; winnerset := argmin (accusation[A],
//            A) under a total order on Pi_n^k; fdOutput := Pi_n -
//            winnerset; bump own heartbeat; reset the step-count timer
//            of every set containing a process whose heartbeat
//            advanced; decrement all timers, and on expiry grow that
//            set's timeout (adaptive) and increment own badness entry
//            Counter[A, p].
//
// Guarantee (Theorem 23): in any run of S^k_{t+1,n} with at most t
// crashes, there is a correct process c and a time after which no
// correct process's fdOutput contains c. Our implementation moreover
// exhibits the stronger property the proof establishes (Lemma 22): all
// correct processes eventually output the same stabilized winnerset A0,
// which contains a correct process. The agreement layer builds on that.
#ifndef SETLIB_FD_KANTIOMEGA_H
#define SETLIB_FD_KANTIOMEGA_H

#include <cstdint>
#include <vector>

#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/util/procset.h"

namespace setlib::fd {

class KAntiOmega {
 public:
  struct Params {
    int n = 0;
    int k = 0;
    int t = 0;
    std::int64_t initial_timeout = 1;  // paper: timeout[A] starts at 1

    /// Which order statistic of Counter[A, *] is the accusation counter
    /// (1-based). 0 selects the paper's choice, t+1 — the only value
    /// that tolerates t frozen-at-zero entries from crashed processes
    /// (quantile <= t fails) while needing only the t+1 timely
    /// observers' entries to freeze (quantile >= t+2 fails). The
    /// ablation bench demonstrates both failure modes.
    int accusation_quantile = 0;
  };

  /// Most recent detector output at one process (its local variables
  /// fdOutput / winnerset after line 5), plus stabilization telemetry.
  struct View {
    ProcSet winnerset;
    ProcSet fd_output;
    std::int64_t winner_accusation = -1;
    std::int64_t iterations = 0;          // completed loop iterations
    std::int64_t winnerset_changes = 0;   // times winnerset switched sets
    std::int64_t last_change_iteration = 0;
    /// last_excluded[c]: the latest iteration whose winnerset did NOT
    /// contain c (0 = never excluded so far). Drives the abstract
    /// k-anti-Omega property check: c is "eventually trusted" by this
    /// process if it has not been excluded for a trailing window.
    std::vector<std::int64_t> last_excluded;
  };

  KAntiOmega(shm::IMemory& mem, Params params);

  const Params& params() const noexcept { return params_; }
  const SubsetRanker& ranker() const noexcept { return ranker_; }

  /// The Figure 2 infinite loop for process p; add as a task to p's
  /// ProcessRuntime. The KAntiOmega object must outlive the run.
  shm::Prog run(Pid p);

  const View& view(Pid p) const;

  /// Register ids, exposed so experiments can inspect the shared state
  /// (e.g. verify Lemmas 10-17 on Counter[A, q] trajectories).
  shm::RegisterId heartbeat_reg(Pid q) const;
  shm::RegisterId counter_reg(std::int64_t set_rank, Pid q) const;

  /// True once every process in `alive` reports the same winnerset and
  /// none of them has changed it within their last `window` iterations.
  bool stabilized(ProcSet alive, std::int64_t window) const;

  /// Processes c that every process in `alive` has kept in its
  /// winnerset for its last `window` iterations. The abstract
  /// t-resilient k-anti-Omega property holds on a finite run exactly
  /// when this set intersects the correct set (there is a correct c no
  /// correct process excludes any more). Nonempty under stabilization;
  /// may be nonempty without full stabilization.
  ProcSet trusted_candidates(ProcSet alive, std::int64_t window) const;

  /// The common winnerset (requires stabilized-like agreement among
  /// `alive`; returns the view of the lowest alive pid).
  ProcSet common_winnerset(ProcSet alive) const;

 private:
  shm::Prog run_impl(Pid p);

  Params params_;
  SubsetRanker ranker_;
  std::vector<ProcSet> subsets_;  // Pi_n^k in rank order
  shm::RegisterId heartbeat_base_;
  shm::RegisterId counter_base_;
  std::vector<View> views_;
};

}  // namespace setlib::fd

#endif  // SETLIB_FD_KANTIOMEGA_H
