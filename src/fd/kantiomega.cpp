#include "src/fd/kantiomega.h"

#include <algorithm>

#include "src/util/assert.h"

namespace setlib::fd {

KAntiOmega::KAntiOmega(shm::IMemory& mem, Params params)
    : params_(params),
      ranker_(params.n, params.k),
      subsets_(k_subsets(params.n, params.k)) {
  SETLIB_EXPECTS(params.n >= 2 && params.n <= kMaxProcs);
  SETLIB_EXPECTS(params.k >= 1 && params.k <= params.n - 1);
  SETLIB_EXPECTS(params.t >= 1 && params.t <= params.n - 1);
  SETLIB_EXPECTS(params.initial_timeout >= 1);
  SETLIB_EXPECTS(params.accusation_quantile >= 0 &&
                 params.accusation_quantile <= params.n);
  if (params_.accusation_quantile == 0) {
    params_.accusation_quantile = params.t + 1;  // the paper's choice
  }
  const std::int64_t sets = ranker_.count();
  heartbeat_base_ = mem.alloc_array("Heartbeat", params.n);
  counter_base_ = mem.alloc_array("Counter", sets * params.n);
  views_.assign(static_cast<std::size_t>(params.n), View{});
  // Initial fdOutput: any set of n-k processes (paper's initialisation);
  // use the complement of the rank-0 subset.
  for (auto& v : views_) {
    v.winnerset = subsets_[0];
    v.fd_output = subsets_[0].complement(params.n);
    v.last_excluded.assign(static_cast<std::size_t>(params.n), 0);
  }
}

shm::RegisterId KAntiOmega::heartbeat_reg(Pid q) const {
  SETLIB_EXPECTS(q >= 0 && q < params_.n);
  return heartbeat_base_ + q;
}

shm::RegisterId KAntiOmega::counter_reg(std::int64_t set_rank, Pid q) const {
  SETLIB_EXPECTS(set_rank >= 0 && set_rank < ranker_.count());
  SETLIB_EXPECTS(q >= 0 && q < params_.n);
  return counter_base_ + set_rank * params_.n + q;
}

const KAntiOmega::View& KAntiOmega::view(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < params_.n);
  return views_[static_cast<std::size_t>(p)];
}

shm::Prog KAntiOmega::run(Pid p) {
  // Validate eagerly: a coroutine body only runs at first resume, so
  // contract checks inside it would fire at the first step, not here.
  SETLIB_EXPECTS(p >= 0 && p < params_.n);
  return run_impl(p);
}

shm::Prog KAntiOmega::run_impl(Pid p) {
  const int n = params_.n;
  // Index of the accusation order statistic (0-based); t for the
  // paper's (t+1)-st smallest.
  const int q_idx = params_.accusation_quantile - 1;
  const std::int64_t sets = ranker_.count();
  View& view = views_[static_cast<std::size_t>(p)];

  // Local variables (per the figure's declarations).
  std::int64_t my_hb = 0;
  std::vector<std::int64_t> prev_heartbeat(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> timeout(static_cast<std::size_t>(sets),
                                    params_.initial_timeout);
  std::vector<std::int64_t> timer = timeout;  // timer[A] = timeout[A]
  std::vector<std::int64_t> cnt(static_cast<std::size_t>(sets * n), 0);
  std::vector<std::int64_t> row(static_cast<std::size_t>(n), 0);

  for (;;) {  // line 1: repeat forever
    // line 2: cnt[A, q] <- read(Counter[A, q]) for every (A, q)
    for (std::int64_t a = 0; a < sets; ++a) {
      for (Pid q = 0; q < n; ++q) {
        const shm::Value v = co_await shm::read(counter_reg(a, q));
        cnt[static_cast<std::size_t>(a * n + q)] = v.as_int_or(0);
      }
    }

    // lines 3-4: accusation[A] := (t+1)-st smallest of cnt[A, *];
    // winnerset := argmin over (accusation[A], A).
    std::int64_t best_acc = -1;
    std::int64_t best_rank = -1;
    for (std::int64_t a = 0; a < sets; ++a) {
      for (Pid q = 0; q < n; ++q) {
        row[static_cast<std::size_t>(q)] =
            cnt[static_cast<std::size_t>(a * n + q)];
      }
      std::nth_element(row.begin(), row.begin() + q_idx, row.end());
      const std::int64_t accusation = row[static_cast<std::size_t>(q_idx)];
      if (best_rank < 0 || accusation < best_acc) {
        best_acc = accusation;
        best_rank = a;
      }
      // Ties: subsets_ is iterated in rank order, which is the total
      // order used for the argmin tie-break, so a tie keeps the earlier
      // (smaller) set.
    }
    const ProcSet winner = subsets_[static_cast<std::size_t>(best_rank)];

    // line 5: fdOutput := Pi_n - winnerset (published to the local view).
    if (winner != view.winnerset) {
      ++view.winnerset_changes;
      view.last_change_iteration = view.iterations + 1;
    }
    view.winnerset = winner;
    view.fd_output = winner.complement(n);
    view.winner_accusation = best_acc;
    for (Pid c = 0; c < n; ++c) {
      if (!winner.contains(c)) {
        view.last_excluded[static_cast<std::size_t>(c)] =
            view.iterations + 1;
      }
    }

    // lines 6-7: bump own heartbeat.
    ++my_hb;
    co_await shm::write(heartbeat_reg(p), shm::Value::of(my_hb));

    // lines 8-13: observe heartbeats; reset timers of sets containing a
    // process whose heartbeat advanced.
    for (Pid q = 0; q < n; ++q) {
      const shm::Value v = co_await shm::read(heartbeat_reg(q));
      const std::int64_t hbq = v.as_int_or(0);
      if (hbq > prev_heartbeat[static_cast<std::size_t>(q)]) {
        for (std::int64_t a = 0; a < sets; ++a) {
          if (subsets_[static_cast<std::size_t>(a)].contains(q)) {
            timer[static_cast<std::size_t>(a)] =
                timeout[static_cast<std::size_t>(a)];
          }
        }
        prev_heartbeat[static_cast<std::size_t>(q)] = hbq;
      }
    }

    // lines 14-19: decrement timers; on expiry, grow the timeout and
    // increment own badness entry Counter[A, p] (using the value read
    // in line 2 — p is the only writer of Counter[A, p]).
    for (std::int64_t a = 0; a < sets; ++a) {
      auto& tm = timer[static_cast<std::size_t>(a)];
      tm -= 1;
      if (tm == 0) {
        auto& to = timeout[static_cast<std::size_t>(a)];
        to += 1;
        tm = to;
        const std::int64_t prev = cnt[static_cast<std::size_t>(a * n + p)];
        co_await shm::write(counter_reg(a, p), shm::Value::of(prev + 1));
      }
    }

    ++view.iterations;
  }
}

bool KAntiOmega::stabilized(ProcSet alive, std::int64_t window) const {
  SETLIB_EXPECTS(!alive.empty());
  SETLIB_EXPECTS(window >= 1);
  const auto pids = alive.to_vector();
  const View& first = view(pids.front());
  if (first.iterations < window) return false;
  for (Pid p : pids) {
    const View& v = view(p);
    if (v.iterations < window) return false;
    if (v.winnerset != first.winnerset) return false;
    if (v.iterations - v.last_change_iteration < window) return false;
  }
  return true;
}

ProcSet KAntiOmega::trusted_candidates(ProcSet alive,
                                       std::int64_t window) const {
  SETLIB_EXPECTS(!alive.empty());
  SETLIB_EXPECTS(window >= 1);
  ProcSet out = ProcSet::universe(params_.n);
  for (Pid p : alive.to_vector()) {
    const View& v = view(p);
    if (v.iterations < window) return ProcSet();
    ProcSet kept;
    for (Pid c = 0; c < params_.n; ++c) {
      if (v.last_excluded[static_cast<std::size_t>(c)] <=
          v.iterations - window) {
        kept = kept.with(c);
      }
    }
    out = out & kept;
  }
  return out;
}

ProcSet KAntiOmega::common_winnerset(ProcSet alive) const {
  SETLIB_EXPECTS(!alive.empty());
  return view(alive.min()).winnerset;
}

}  // namespace setlib::fd
