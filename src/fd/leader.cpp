#include "src/fd/leader.h"

#include <sstream>

#include "src/util/assert.h"

namespace setlib::fd {

LeaderView::LeaderView(const KAntiOmega* detector) : detector_(detector) {
  SETLIB_EXPECTS(detector != nullptr);
  SETLIB_EXPECTS(detector->params().k == 1);
}

Pid LeaderView::leader_of(Pid p) const {
  const ProcSet ws = detector_->view(p).winnerset;
  SETLIB_ASSERT(ws.size() == 1);
  return ws.min();
}

bool LeaderView::unanimous(ProcSet who) const {
  SETLIB_EXPECTS(!who.empty());
  const Pid first = leader_of(who.min());
  for (Pid p : who.to_vector()) {
    if (leader_of(p) != first) return false;
  }
  return true;
}

OmegaCheck check_omega(const KAntiOmega& detector, ProcSet correct,
                       std::int64_t window) {
  SETLIB_EXPECTS(detector.params().k == 1);
  OmegaCheck out;
  const ProcSet trusted = detector.trusted_candidates(correct, window);
  const ProcSet good = trusted & correct;
  out.ok = !good.empty();
  if (out.ok) out.leader = good.min();
  out.unanimous = LeaderView(&detector).unanimous(correct);
  std::ostringstream os;
  os << "omega=" << (out.ok ? "ok" : "FAIL");
  if (out.ok) os << " leader=" << out.leader;
  os << " unanimous=" << (out.unanimous ? "yes" : "no");
  out.detail = os.str();
  return out;
}

Pid anti_omega_output(const KAntiOmega& detector, Pid p) {
  SETLIB_EXPECTS(detector.params().k == detector.params().n - 1);
  const ProcSet output = detector.view(p).fd_output;
  SETLIB_ASSERT(output.size() == 1);
  return output.min();
}

}  // namespace setlib::fd
