#include "src/fd/property.h"

#include <sstream>

#include "src/util/assert.h"

namespace setlib::fd {

PropertyCheck check_kantiomega(const KAntiOmega& detector, ProcSet correct,
                               std::int64_t window) {
  SETLIB_EXPECTS(!correct.empty());
  const auto& params = detector.params();
  PropertyCheck out;

  out.output_sizes_ok = true;
  for (Pid p : correct.to_vector()) {
    const auto& v = detector.view(p);
    if (v.fd_output.size() != params.n - params.k ||
        v.winnerset.size() != params.k) {
      out.output_sizes_ok = false;
    }
  }

  out.stabilized = detector.stabilized(correct, window);
  if (out.stabilized) {
    out.winnerset = detector.common_winnerset(correct);
    out.has_correct_winner = out.winnerset.intersects(correct);
  }
  out.ok = out.output_sizes_ok && out.stabilized && out.has_correct_winner;

  out.trusted = detector.trusted_candidates(correct, window);
  out.abstract_ok = out.trusted.intersects(correct);

  std::ostringstream os;
  os << "sizes=" << (out.output_sizes_ok ? "ok" : "BAD")
     << " stabilized=" << (out.stabilized ? "yes" : "no") << " trusted="
     << out.trusted << " abstract=" << (out.abstract_ok ? "ok" : "FAIL");
  if (out.stabilized) {
    os << " winnerset=" << out.winnerset
       << " correct_winner=" << (out.has_correct_winner ? "yes" : "NO");
  }
  out.detail = os.str();
  return out;
}

}  // namespace setlib::fd
