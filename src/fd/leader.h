// Omega-style leader election views over k-anti-Omega.
//
// For k = 1, t = n-1, the paper notes (footnote 2) that t-resilient
// 1-anti-Omega is the classic eventual leader elector Omega [9]: the
// single winnerset member is the trusted leader. LeaderView exposes
// that reading, and check_omega verifies the Omega property on a
// finite run: a correct process that every correct process eventually
// trusts forever.
//
// For k = n-1 the detector is anti-Omega [21]: fdOutput is a single
// process that is eventually never a correct "output" — the complement
// view is exposed as well.
#ifndef SETLIB_FD_LEADER_H
#define SETLIB_FD_LEADER_H

#include <string>

#include "src/fd/kantiomega.h"
#include "src/util/procset.h"

namespace setlib::fd {

/// Omega reading of a k = 1 detector.
class LeaderView {
 public:
  /// Requires detector.params().k == 1.
  explicit LeaderView(const KAntiOmega* detector);

  /// The leader process p currently trusts (its winnerset member).
  Pid leader_of(Pid p) const;

  /// All processes in `who` currently trust the same leader.
  bool unanimous(ProcSet who) const;

 private:
  const KAntiOmega* detector_;
};

struct OmegaCheck {
  bool ok = false;       // a correct, commonly trusted leader exists
  Pid leader = -1;       // that leader (when ok)
  bool unanimous = false;
  std::string detail;
};

/// The Omega property over the trailing `window` iterations.
OmegaCheck check_omega(const KAntiOmega& detector, ProcSet correct,
                       std::int64_t window);

/// Anti-Omega reading of a k = n-1 detector: the single excluded
/// process at p (the paper's "not the leader" output).
Pid anti_omega_output(const KAntiOmega& detector, Pid p);

}  // namespace setlib::fd

#endif  // SETLIB_FD_LEADER_H
