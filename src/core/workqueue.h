// Lease-based cell scheduling: the elastic replacement for static
// --shard=K/N slicing.
//
// The global cell space is virtual here: WorkQueue carves the
// half-open interval [0, span) — span = ShardSpec::kLeaseSpan unless
// overridden — into many small ranges (far more ranges than workers).
// A worker leases a range with a deadline, runs it (the orchestrator
// expresses the lease as the worker's `--cells=LO..HI` flag; every
// sharded cell space of size T maps it to [T*LO/span, T*HI/span), so
// ranges that tile the virtual space tile every real space), and
// heartbeats by completing it. A lease that
//
//   - fails (the worker died: crash, SIGKILL, timeout, bad output) or
//   - expires (its deadline passed with no word from the worker)
//
// is split in two and requeued, so a dead worker's work redistributes
// across the survivors; a lease that visibly lags (a straggler: age
// beyond straggler_factor x the median completed-lease time while an
// idle worker is asking for work) is superseded — split, requeued,
// re-leased — and its own late completion is discarded.
//
// Determinism contract: none of this scheduling is deterministic, and
// none of it needs to be. Per-cell results are pure functions of the
// global flat index, completed leases tile the space exactly once
// (superseded/discarded completions never count), and
// core::merge_shard_docs recomputes every derived fact from the union
// rows — so the merged document is bit-identical to the unsharded run
// no matter which workers died, which ranges were resharded, or in
// what order leases completed. The queue's own accounting (leases
// issued/expired/resharded, straggler events) is reported under
// timing-key rules, excluded from determinism diffs.
#ifndef SETLIB_CORE_WORKQUEUE_H
#define SETLIB_CORE_WORKQUEUE_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/util/json.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace setlib::core {

/// Injectable time source so the lease/expiry/straggler machinery is
/// testable without wall-clock sleeps.
using WorkQueueClock =
    std::function<std::chrono::steady_clock::time_point()>;

struct WorkQueueOptions {
  /// Width of the virtual cell space the queue schedules.
  std::size_t span = ShardSpec::kLeaseSpan;
  /// Initial range count (the queue's scheduling granularity);
  /// 0 = auto: max(8, 8 * workers), capped at span.
  std::size_t ranges = 0;
  /// Hint for the auto range count.
  int workers = 1;
  /// Lease deadline: a lease not completed/failed within this budget
  /// is presumed dead and requeued. The orchestrator mirrors it into
  /// the worker's transport timeout so local children cannot outlive
  /// their lease.
  std::chrono::milliseconds lease_timeout{300'000};
  /// A live lease is a straggler once its age exceeds
  /// max(straggler_min, straggler_factor * median completed-lease
  /// time) while an idle worker has nothing else to lease. 0 disables
  /// straggler resharding.
  double straggler_factor = 4.0;
  std::chrono::milliseconds straggler_min{1'000};
  /// Total failures (failed + expired leases) tolerated before the
  /// queue aborts the run; 0 = auto: 2 * initial ranges + 8.
  std::size_t failure_budget = 0;
  /// Time source; empty = std::chrono::steady_clock::now.
  WorkQueueClock clock;
};

/// One leased virtual range, as handed to a worker.
struct Lease {
  std::uint64_t id = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;  // half-open: [lo, hi)
  std::chrono::steady_clock::time_point deadline;

  std::size_t width() const noexcept { return hi - lo; }
  /// The lease as a worker ShardSpec (--cells=LO..HI[/SPAN]).
  ShardSpec shard(std::size_t span) const;
};

/// One entry in the queue's event log (the orchestration report).
struct LeaseEvent {
  enum class Kind { kFailed, kExpired, kSuperseded };
  Kind kind = Kind::kFailed;
  std::uint64_t lease = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  int worker = -1;
  double age_seconds = 0.0;
  bool split = false;  // the range was split on requeue (a reshard)
  std::string detail;  // e.g. the worker's failure description
};

const char* lease_event_kind_name(LeaseEvent::Kind kind) noexcept;

/// Snapshot of the queue's accounting, for summaries and the merged
/// document's "orchestration" member.
struct WorkQueueReport {
  std::size_t span = 0;
  std::size_t initial_ranges = 0;
  std::size_t leases_issued = 0;
  std::size_t leases_completed = 0;   // accepted completions
  std::size_t leases_failed = 0;      // worker reported failure
  std::size_t leases_expired = 0;     // deadline passed, no word
  std::size_t leases_superseded = 0;  // straggler replaced
  std::size_t leases_resharded = 0;   // ranges split on requeue
  std::size_t completions_discarded = 0;  // late superseded results
  std::size_t failure_budget = 0;
  std::size_t failures_spent = 0;
  std::string abort_reason;  // non-empty when the budget ran out
  std::vector<LeaseEvent> events;

  /// Rendered for the merged document. Every fact in here is a
  /// wall-clock/scheduling fact, so the whole object lives under the
  /// "orchestration" key, which is_timing_key excludes from
  /// determinism diffs by rule.
  JsonValue to_json() const;
};

/// Thread-safe lease scheduler over the virtual cell space. Workers
/// loop acquire -> run -> complete/fail until acquire returns nullopt
/// (all work accepted, or the failure budget is spent).
class WorkQueue {
 public:
  explicit WorkQueue(WorkQueueOptions options);

  /// Blocks until a range can be leased (possibly by expiring or
  /// superseding another lease), all work is done, or the queue
  /// aborted. nullopt = stop; check done()/aborted().
  std::optional<Lease> acquire(int worker);

  /// Reports a finished lease. True = the completion was accepted and
  /// the range is done; false = the lease had been superseded or
  /// expired meanwhile and the worker's document must be discarded.
  bool complete(std::uint64_t lease_id);

  /// Reports a failed lease (dead/crashed/timed-out worker, bad
  /// output). The range is split and requeued; `reason` lands in the
  /// event log. Spends failure budget. Ignored for superseded leases.
  void fail(std::uint64_t lease_id, const std::string& reason);

  /// Every virtual cell has an accepted completion.
  bool done() const;
  /// The failure budget ran out; remaining workers should stop.
  bool aborted() const;

  std::size_t span() const noexcept { return options_.span; }
  WorkQueueReport report() const;

 private:
  struct Range {
    std::size_t lo = 0;
    std::size_t hi = 0;
  };
  struct Active {
    Range range;
    int worker = -1;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point deadline;
  };

  std::chrono::steady_clock::time_point now() const;
  /// Requeues a range, splitting it when it is at least 2 wide.
  /// Returns whether it split. Caller holds mu_.
  bool requeue_split_locked(const Range& range) SETLIB_REQUIRES(mu_);
  void spend_failure_locked(const std::string& reason)
      SETLIB_REQUIRES(mu_);
  /// Moves expired leases back to pending. Caller holds mu_.
  void expire_locked(std::chrono::steady_clock::time_point t)
      SETLIB_REQUIRES(mu_);
  /// Supersedes the oldest straggler when an idle worker needs work.
  /// Returns whether anything was requeued. Caller holds mu_.
  bool reshard_straggler_locked(std::chrono::steady_clock::time_point t)
      SETLIB_REQUIRES(mu_);

  // Finalized by the constructor, immutable afterwards.
  WorkQueueOptions options_;
  std::size_t initial_ranges_ = 0;

  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::vector<Range> pending_ SETLIB_GUARDED_BY(mu_);
  std::map<std::uint64_t, Active> active_ SETLIB_GUARDED_BY(mu_);
  // Virtual cells without an accepted result.
  std::size_t remaining_ SETLIB_GUARDED_BY(mu_) = 0;
  std::uint64_t next_id_ SETLIB_GUARDED_BY(mu_) = 1;
  // Accepted lease durations.
  std::vector<double> completed_seconds_ SETLIB_GUARDED_BY(mu_);
  WorkQueueReport stats_ SETLIB_GUARDED_BY(mu_);
  bool aborted_ SETLIB_GUARDED_BY(mu_) = false;
};

}  // namespace setlib::core

#endif  // SETLIB_CORE_WORKQUEUE_H
