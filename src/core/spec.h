// Problem and system specifications.
//
// AgreementSpec is the (t, k, n)-agreement instance of Section 3;
// SystemSpec is the partially synchronous system S^i_{j,n} of Section
// 2.2 (n processes, at least one set of size i timely w.r.t. at least
// one set of size j).
#ifndef SETLIB_CORE_SPEC_H
#define SETLIB_CORE_SPEC_H

#include <string>

#include "src/util/assert.h"

namespace setlib::core {

struct AgreementSpec {
  int t = 1;  // resilience: tolerated crashes, 1..n-1
  int k = 1;  // agreement degree: max distinct decisions, 1..n
  int n = 2;  // processes

  void validate() const {
    SETLIB_EXPECTS(n >= 2);
    SETLIB_EXPECTS(t >= 1 && t <= n - 1);
    SETLIB_EXPECTS(k >= 1 && k <= n);
  }

  std::string to_string() const {
    // Built by append: the `const char* + std::string&&` chain trips a
    // GCC 12 -Wrestrict false positive (PR105651).
    std::string out;
    out.append("(").append(std::to_string(t)).append(",");
    out.append(std::to_string(k)).append(",");
    out.append(std::to_string(n)).append(")-agreement");
    return out;
  }
};

struct SystemSpec {
  int i = 1;  // size of the timely set, 1..j
  int j = 1;  // size of the observed set, i..n
  int n = 2;  // processes

  void validate() const {
    SETLIB_EXPECTS(n >= 2);
    SETLIB_EXPECTS(i >= 1 && i <= j && j <= n);
  }

  /// Observation 5: S^i_{i,n} is the asynchronous system.
  bool is_asynchronous() const { return i == j; }

  std::string to_string() const {
    std::string out;
    out.append("S^").append(std::to_string(i)).append("_{");
    out.append(std::to_string(j)).append(",");
    out.append(std::to_string(n)).append("}");
    return out;
  }
};

}  // namespace setlib::core

#endif  // SETLIB_CORE_SPEC_H
