// FuzzLoop: seeded search for bound-regressing schedules.
//
// The paper's bounds are adversary-quantified, so the experimental
// question "how bad can a schedule be for cell (n, i, j)?" is a search
// problem. fuzz_schedules drives a seeded sweep over the
// (family | reactive, params, seed) space through an ExperimentRunner,
// scores every generated schedule with the packed analyzer's best-pair
// bound, and keeps the ones that regress (exceed) the best-known bound
// for their (i, j) cell:
//
//   1. baseline: the family registry (sched/families.h) at registry
//      parameters, a few seeds per family — the "best-known bound" a
//      cell starts from (plus any already-known corpus entries);
//   2. trials: `budget` seeded (adversary, params) draws, each scored
//      on every cell at once;
//   3. findings: a trial beating a cell's best-known bound is greedily
//      minimized (shortest-prefix binary search, then block-deletion
//      passes, each re-verified with the packed scan), re-verified
//      against the reference analyzer, replay-hashed
//      (sched::schedule_hash), and recorded as a CorpusEntry.
//
// Everything is a pure function of (options, known corpus): two runs
// with the same seed and budget emit identical corpora at any thread
// count — trials are scored in parallel via runner.map but findings
// are admitted in trial order.
#ifndef SETLIB_CORE_FUZZ_H
#define SETLIB_CORE_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/sched/schedule.h"
#include "src/util/json.h"
#include "src/util/procset.h"

namespace setlib::core {

/// Largest system size the fuzzer (and corpus verification) supports.
/// Every finding is re-verified with the exhaustive reference analyzer
/// over all C(n, i) * C(n, j) pairs, which stays sub-second per
/// schedule up to n = 10 but explodes combinatorially beyond it.
inline constexpr int kMaxFuzzN = 10;

struct FuzzOptions {
  std::uint64_t seed = 1;
  int budget = 128;  // seeded trials
  int n = 5;         // system size, 2..kMaxFuzzN
  std::int64_t schedule_len = 20'000;
  /// Seeds per family used to establish the registry baseline.
  int baseline_seeds = 3;
  /// Packed-scan budget of the greedy minimizer, per finding.
  std::int64_t minimize_evals = 400;
};

/// One corpus record: a minimized, hash-pinned, bound-regressing
/// schedule for cell (n, i, j).
struct CorpusEntry {
  std::uint64_t hash = 0;  // sched::schedule_hash(schedule)
  int n = 0;
  int i = 0;
  int j = 0;
  std::int64_t bound = 0;           // best-pair bound, re-verified
  std::int64_t baseline_bound = 0;  // cell's best-known before this
  std::string adversary;            // family/reactive registry token
  std::uint64_t trial_seed = 0;     // the trial's derived seed
  std::int64_t raw_len = 0;         // schedule length before minimizing
  ProcSet timely_set;               // the packed scan's argmin pair
  ProcSet observed_set;
  sched::Schedule schedule{1};      // minimized step stream
};

/// Final best-known bound per (i, j) cell.
struct FuzzCell {
  int i = 0;
  int j = 0;
  std::int64_t baseline = 0;  // family-registry (+ known corpus) bound
  std::int64_t best = 0;      // after the fuzz run
};

struct FuzzResult {
  int trials = 0;
  std::vector<CorpusEntry> findings;  // discovery (trial) order
  std::vector<FuzzCell> cells;        // all 1 <= i < j <= n cells
};

/// Runs the seeded search. `known` (e.g. the checked-in corpus) raises
/// the starting best-known bounds so already-recorded regressions are
/// not rediscovered. Deterministic for fixed (options, known) at any
/// thread count.
FuzzResult fuzz_schedules(ExperimentRunner& runner,
                          const FuzzOptions& options,
                          const std::vector<CorpusEntry>& known = {});

// --- Corpus serialization (tests/corpus/<hash>.json) ---

/// Renders an entry as a self-contained JSON document (schema 1).
/// 64-bit values (hash, trial_seed) travel as strings: JSON numbers
/// are doubles and would corrupt them.
std::string corpus_entry_json(const CorpusEntry& entry);

/// Parses a schema-1 corpus document. Throws JsonParseError on
/// malformed JSON and std::runtime_error on schema violations.
CorpusEntry parse_corpus_entry(const JsonValue& doc);

struct CorpusVerdict {
  bool ok = false;
  std::string detail;  // human-readable failure reason
};

/// Replays an entry: recomputes the schedule hash, the packed
/// best-pair bound, and the exhaustive reference-analyzer bound, and
/// checks all three against the recorded values. This is the drift
/// detector the corpus test and `schedule_fuzzer --verify` run.
CorpusVerdict verify_corpus_entry(const CorpusEntry& entry);

}  // namespace setlib::core

#endif  // SETLIB_CORE_FUZZ_H
