#include "src/core/report.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "src/sched/schedule.h"
#include "src/util/assert.h"
#include "src/util/table.h"

namespace setlib::core {

std::string ShardSpec::to_string() const {
  if (leased) {
    return std::to_string(lo) + ".." + std::to_string(hi) + "/" +
           std::to_string(span);
  }
  return std::to_string(k) + "/" + std::to_string(n);
}

std::pair<std::size_t, std::size_t> ShardSpec::range(
    std::size_t total) const {
  if (leased) {
    SETLIB_EXPECTS(span >= 1 && lo <= hi && hi <= span);
    return {total * lo / span, total * hi / span};
  }
  SETLIB_EXPECTS(n >= 1 && k < n);
  return {total * k / n, total * (k + 1) / n};
}

void ReportSink::begin_section(const std::string&, std::size_t,
                               const ShardSpec&) {}
void ReportSink::cell(const SweepCell&, const RunReport&, double) {}
void ReportSink::end_section(const SectionStats&) {}

void AggregateSink::cell(const SweepCell&, const RunReport& report,
                         double) {
  ++agg_.cells;
  if (report.success) ++agg_.successes;
  if (report.detector.abstract_ok) ++agg_.detector_ok;
  agg_.steps.add(static_cast<double>(report.steps_executed));
  agg_.witness_bound.add(static_cast<double>(report.witness_bound));
  agg_.distinct_decisions.add(
      static_cast<double>(report.distinct_decisions));
}

void AggregateSink::end_section(const SectionStats& stats) {
  agg_.wall_seconds += stats.wall_seconds;
  agg_.runs_per_second =
      agg_.wall_seconds > 0.0
          ? static_cast<double>(agg_.cells) / agg_.wall_seconds
          : 0.0;
}

void CollectSink::cell(const SweepCell& cell, const RunReport& report,
                       double) {
  cells_.push_back(cell);
  reports_.push_back(report);
}

void TableSink::cell(const SweepCell& cell, const RunReport& report,
                     double) {
  const RunConfig& config = cell.config;
  std::string key = config.spec.to_string();
  key.append(" / ").append(family_name(config.family));
  auto [it, inserted] = index_of_.try_emplace(key, groups_.size());
  if (inserted) groups_.emplace_back(key, Group{});
  Group& g = groups_[it->second].second;
  ++g.cells;
  if (report.success) ++g.successes;
  if (report.detector.abstract_ok) ++g.detector_ok;
  g.steps.add(static_cast<double>(report.steps_executed));
}

std::string TableSink::render() const {
  TextTable table({"spec / family", "cells", "success rate",
                   "detector ok", "mean steps", "p90 steps"});
  for (const auto& [key, g] : groups_) {
    const double rate =
        g.cells == 0 ? 0.0
                     : static_cast<double>(g.successes) /
                           static_cast<double>(g.cells);
    table.row()
        .cell(key)
        .cell(g.cells)
        .cell(rate)
        .cell(g.detector_ok)
        .cell(g.steps.empty() ? 0.0 : g.steps.mean())
        .cell(g.steps.empty() ? 0.0 : g.steps.percentile(90.0));
  }
  return table.render();
}

namespace {

/// The multi-seed dispersion facts over one group of rows — a whole
/// section, or one grid point's `--repeat` rows: mean / sample-based
/// stddev surrogate (Summary::stddev), 95% Student-t CI of the mean,
/// and the success rate with its proportion CI. Returned as
/// (key, value) pairs in emission order; NaN (rendered null) when the
/// group is empty. Shared by JsonSink emission and merge_section
/// recomputation, so the two cannot drift apart — that textual
/// identity is what keeps orchestrated merges bit-identical to
/// unsharded runs.
std::vector<std::pair<std::string, double>> dispersion_stats(
    const Summary& steps, const Summary& witness, std::size_t successes,
    std::size_t rows) {
  const double empty = std::numeric_limits<double>::quiet_NaN();
  auto mean_of = [&empty](const Summary& s) {
    return s.empty() ? empty : s.mean();
  };
  auto stddev_of = [&empty](const Summary& s) {
    return s.empty() ? empty : s.stddev();
  };
  auto ci_lo = [&empty](const Summary& s) {
    return s.empty() ? empty : s.mean() - ci95_halfwidth(s);
  };
  auto ci_hi = [&empty](const Summary& s) {
    return s.empty() ? empty : s.mean() + ci95_halfwidth(s);
  };
  const double rate = rows == 0 ? empty
                                : static_cast<double>(successes) /
                                      static_cast<double>(rows);
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("steps_mean", mean_of(steps));
  out.emplace_back("steps_stddev", stddev_of(steps));
  out.emplace_back("ci_steps_low", ci_lo(steps));
  out.emplace_back("ci_steps_high", ci_hi(steps));
  out.emplace_back("witness_bound_mean", mean_of(witness));
  out.emplace_back("witness_bound_stddev", stddev_of(witness));
  out.emplace_back("ci_witness_bound_low", ci_lo(witness));
  out.emplace_back("ci_witness_bound_high", ci_hi(witness));
  out.emplace_back("success_rate", rate);
  out.emplace_back("ci_success_low",
                   rows == 0 ? empty
                             : rate - ci95_proportion_halfwidth(rate, rows));
  out.emplace_back("ci_success_high",
                   rows == 0 ? empty
                             : rate + ci95_proportion_halfwidth(rate, rows));
  return out;
}

/// One grid point's rows: global cell index / repeat factor.
struct PointGroup {
  std::int64_t point = 0;
  std::size_t cells = 0;
  std::size_t successes = 0;
  Summary steps;
  Summary witness;
};

}  // namespace

JsonSink::JsonSink(Config config) : config_(std::move(config)) {}

void JsonSink::begin_section(const std::string& name, std::size_t,
                             const ShardSpec&) {
  SETLIB_EXPECTS(!streaming_);  // runner sections never nest
  streaming_ = true;
  pending_ = Section{};
  pending_.name = name;
  pending_.from_grid = true;
}

void JsonSink::cell(const SweepCell& cell, const RunReport& report,
                    double) {
  SETLIB_EXPECTS(streaming_);
  CellRow row;
  row.index = cell.index;
  row.success = report.success;
  row.detector_ok = report.detector.abstract_ok;
  row.distinct_decisions = report.distinct_decisions;
  row.steps = report.steps_executed;
  row.witness_bound = report.witness_bound;
  row.schedule_hash = report.schedule_hash;
  row.allocs_per_op = report.allocs_per_op;
  row.bytes_per_op = report.bytes_per_op;
  pending_.rows.push_back(row);
}

void JsonSink::end_section(const SectionStats& stats) {
  SETLIB_EXPECTS(streaming_);
  streaming_ = false;
  pending_.cells = stats.cells;
  pending_.wall_seconds = stats.wall_seconds;
  std::size_t successes = 0;
  std::size_t detector_ok = 0;
  Summary witness;
  Summary allocs;
  Summary bytes;
  for (const CellRow& row : pending_.rows) {
    if (row.success) ++successes;
    if (row.detector_ok) ++detector_ok;
    witness.add(static_cast<double>(row.witness_bound));
    allocs.add(static_cast<double>(row.allocs_per_op));
    bytes.add(static_cast<double>(row.bytes_per_op));
  }
  // Percentile keys are emitted unconditionally — an empty shard's
  // section must be schema-identical to a populated one, or naive
  // document merging produces asymmetric sections. json_number turns
  // the NaN placeholder into null on render.
  const double empty = std::numeric_limits<double>::quiet_NaN();
  auto pct = [&empty](const Summary& s, double q) {
    return s.empty() ? empty : s.percentile(q);
  };
  auto& extra = pending_.extra;
  extra.emplace_back("grid_cells",
                     static_cast<double>(stats.grid_cells));
  extra.emplace_back("successes", static_cast<double>(successes));
  extra.emplace_back("detector_ok", static_cast<double>(detector_ok));
  extra.emplace_back("steps_p50", pct(stats.steps, 50.0));
  extra.emplace_back("steps_p90", pct(stats.steps, 90.0));
  extra.emplace_back("steps_p99", pct(stats.steps, 99.0));
  extra.emplace_back("witness_bound_p90", pct(witness, 90.0));
  // Worst-case allocation account over the section's rows: 0 here is
  // the "steady-state cells allocate nothing" claim, checkable per
  // artifact. Deterministic (pure function of the rows), recomputed
  // from union rows on merge like the percentiles.
  extra.emplace_back("allocs_per_op_max", allocs.empty() ? empty : allocs.max());
  extra.emplace_back("bytes_per_op_max", bytes.empty() ? empty : bytes.max());
  // Multi-seed dispersion pooled across the section's rows; the
  // per-point breakdown (one group per grid point, across its
  // --repeat seeds) is rendered as the point_stats array. Both are
  // pure functions of the rows, so merge_shard_docs recomputes them
  // from the union rows with the same dispersion_stats arithmetic and
  // merged documents stay bit-identical to unsharded ones.
  for (const auto& fact : dispersion_stats(
           stats.steps, witness, successes, pending_.rows.size())) {
    extra.push_back(fact);
  }
  SETLIB_EXPECTS(stats.repeats >= 1);
  pending_.repeat_factor = stats.repeats;
  // Per-cell wall latency percentiles: the only non-deterministic
  // section facts besides wall_seconds/runs_per_sec (keys prefixed
  // cell_seconds_ so determinism diffs can strip them).
  extra.emplace_back("cell_seconds_p50", pct(stats.cell_seconds, 50.0));
  extra.emplace_back("cell_seconds_p90", pct(stats.cell_seconds, 90.0));
  extra.emplace_back("cell_seconds_p99", pct(stats.cell_seconds, 99.0));
  sections_.push_back(std::move(pending_));
  pending_ = Section{};
}

void JsonSink::section(
    const std::string& name, std::size_t cells, double wall_seconds,
    std::vector<std::pair<std::string, double>> extra) {
  Section s;
  s.name = name;
  s.cells = cells;
  s.wall_seconds = wall_seconds;
  s.extra = std::move(extra);
  sections_.push_back(std::move(s));
}

void JsonSink::annotate(const std::string& key, double value,
                        MergeRule rule) {
  SETLIB_EXPECTS(!sections_.empty());
  sections_.back().extra.emplace_back(key, value);
  if (rule == MergeRule::kSame) {
    sections_.back().same_keys.push_back(key);
  }
}

std::string JsonSink::render() const {
  std::size_t total_cells = 0;
  double total_wall = 0.0;
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": " << json_quote(config_.name) << ",\n";
  os << "  \"threads\": " << config_.threads << ",\n";
  os << "  \"repeat\": " << config_.repeat << ",\n";
  os << "  \"shard\": " << json_quote(config_.shard.to_string())
     << ",\n";
  os << "  \"sections\": [\n";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    const Section& sec = sections_[s];
    total_cells += sec.cells;
    total_wall += sec.wall_seconds;
    const double rate =
        sec.wall_seconds > 0.0
            ? static_cast<double>(sec.cells) / sec.wall_seconds
            : 0.0;
    os << "    {\"name\": " << json_quote(sec.name)
       << ", \"cells\": " << sec.cells
       << ", \"wall_seconds\": " << json_number(sec.wall_seconds)
       << ", \"runs_per_sec\": " << json_number(rate);
    if (!sec.same_keys.empty()) {
      os << ", \"same_keys\": [";
      for (std::size_t k = 0; k < sec.same_keys.size(); ++k) {
        os << (k == 0 ? "" : ", ") << json_quote(sec.same_keys[k]);
      }
      os << "]";
    }
    for (const auto& [key, value] : sec.extra) {
      os << ", " << json_quote(key) << ": " << json_number(value);
    }
    if (sec.from_grid) {
      // Per-point multi-seed statistics: rows grouped by grid point
      // (global index / repeat_factor), each group carrying the same
      // dispersion keys as the pooled section scalars. Rows within a
      // shard are contiguous ascending indices, so one linear pass
      // groups them.
      os << ", \"repeat_factor\": " << sec.repeat_factor;
      os << ", \"point_stats\": [";
      std::size_t r = 0;
      bool first_group = true;
      while (r < sec.rows.size()) {
        PointGroup group;
        group.point = static_cast<std::int64_t>(sec.rows[r].index) /
                      sec.repeat_factor;
        while (r < sec.rows.size() &&
               static_cast<std::int64_t>(sec.rows[r].index) /
                       sec.repeat_factor ==
                   group.point) {
          const CellRow& row = sec.rows[r];
          ++group.cells;
          if (row.success) ++group.successes;
          group.steps.add(static_cast<double>(row.steps));
          group.witness.add(static_cast<double>(row.witness_bound));
          ++r;
        }
        os << (first_group ? "" : ", ") << "{\"point\": " << group.point
           << ", \"cells\": " << group.cells;
        for (const auto& [key, value] :
             dispersion_stats(group.steps, group.witness,
                              group.successes, group.cells)) {
          os << ", " << json_quote(key) << ": " << json_number(value);
        }
        os << "}";
        first_group = false;
      }
      os << "]";
      os << ", \"rows\": [";
      for (std::size_t row_idx = 0; row_idx < sec.rows.size();
           ++row_idx) {
        const CellRow& row = sec.rows[row_idx];
        os << (row_idx == 0 ? "" : ", ") << "{\"index\": " << row.index
           << ", \"success\": " << (row.success ? 1 : 0)
           << ", \"detector_ok\": " << (row.detector_ok ? 1 : 0)
           << ", \"distinct\": " << row.distinct_decisions
           << ", \"steps\": " << row.steps
           << ", \"witness_bound\": " << row.witness_bound
           << ", \"schedule_hash\": "
           << json_quote(sched::hash_hex(row.schedule_hash))
           << ", \"allocs_per_op\": " << row.allocs_per_op
           << ", \"bytes_per_op\": " << row.bytes_per_op << "}";
      }
      os << "]";
    }
    os << "}" << (s + 1 < sections_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  const double total_rate =
      total_wall > 0.0 ? static_cast<double>(total_cells) / total_wall
                       : 0.0;
  os << "  \"total_cells\": " << total_cells << ",\n";
  os << "  \"total_wall_seconds\": " << json_number(total_wall) << ",\n";
  os << "  \"runs_per_sec\": " << json_number(total_rate) << "\n";
  os << "}\n";
  return os.str();
}

void JsonSink::write_if_requested() const {
  if (!config_.enabled) return;
  std::ofstream file(config_.path);
  SETLIB_EXPECTS(file.good());
  file << render();
  std::cout << "wrote " << config_.path << "\n";
}

// ---------------------------------------------------------------------
// Shard-document merging.

bool is_timing_key(const std::string& key) {
  return key == "runs_per_sec" || key == "orchestration" ||
         key.find("wall") != std::string::npos ||
         key.find("seconds") != std::string::npos ||
         key.find("speedup") != std::string::npos;
}

JsonValue strip_timing_keys(const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kObject: {
      JsonValue out = JsonValue::object();
      for (const auto& [key, member] : value.members()) {
        if (is_timing_key(key)) continue;
        out.set(key, strip_timing_keys(member));
      }
      return out;
    }
    case JsonValue::Kind::kArray: {
      std::vector<JsonValue> items;
      items.reserve(value.items().size());
      for (const JsonValue& item : value.items()) {
        items.push_back(strip_timing_keys(item));
      }
      return JsonValue::array(std::move(items));
    }
    default:
      return value;
  }
}

namespace {

JsonValue sort_keys(const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kObject: {
      std::vector<JsonValue::Member> members;
      members.reserve(value.members().size());
      for (const auto& [key, member] : value.members()) {
        members.emplace_back(key, sort_keys(member));
      }
      std::sort(members.begin(), members.end(),
                [](const JsonValue::Member& a, const JsonValue::Member& b) {
                  return a.first < b.first;
                });
      return JsonValue::object(std::move(members));
    }
    case JsonValue::Kind::kArray: {
      std::vector<JsonValue> items;
      items.reserve(value.items().size());
      for (const JsonValue& item : value.items()) {
        items.push_back(sort_keys(item));
      }
      return JsonValue::array(std::move(items));
    }
    default:
      return value;
  }
}

bool is_cell_seconds_key(const std::string& key) {
  return key.rfind("cell_seconds_", 0) == 0;
}

/// Keys a grid section derives from its rows; recomputed on merge.
/// The ci_* / *_mean / *_stddev / success_rate dispersion keys are in
/// this set on purpose: none of them contains a timing substring, but
/// even one that did would be recomputed here before is_timing_key is
/// ever consulted (grid stats are checked first in merge_section).
bool is_grid_stat_key(const std::string& key) {
  return key == "grid_cells" || key == "successes" ||
         key == "detector_ok" || key == "steps_p50" ||
         key == "steps_p90" || key == "steps_p99" ||
         key == "witness_bound_p90" || key == "allocs_per_op_max" ||
         key == "bytes_per_op_max" || key == "steps_mean" ||
         key == "steps_stddev" || key == "witness_bound_mean" ||
         key == "witness_bound_stddev" || key == "success_rate" ||
         key == "repeat_factor" || key == "point_stats" ||
         key.rfind("ci_", 0) == 0 || is_cell_seconds_key(key);
}

/// The section skeleton every JsonSink section shares.
bool is_section_frame_key(const std::string& key) {
  return key == "name" || key == "cells" || key == "wall_seconds" ||
         key == "runs_per_sec" || key == "same_keys" || key == "rows";
}

/// Strict digits-only parse for the "k/n" halves of a shard field —
/// std::stoul would accept trailing garbage, signs, and whitespace,
/// defeating the duplicate/missing-shard detection.
bool parse_shard_index(const std::string& text, std::size_t* out) {
  if (text.empty() || text.size() > 9) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

std::size_t require_count(const JsonValue& section,
                          const std::string& name,
                          const std::string& key) {
  const std::int64_t value = section.at(key).as_int();
  if (value < 0) {
    throw MergeError("section \"" + name + "\": negative " + key);
  }
  return static_cast<std::size_t>(value);
}

JsonValue merge_section(const std::vector<const JsonValue*>& parts) {
  const std::string& name = parts[0]->at("name").as_string();
  const bool grid = parts[0]->find("rows") != nullptr;
  for (const JsonValue* part : parts) {
    if (part->at("name").as_string() != name) {
      throw MergeError("shard documents disagree on the section "
                       "sequence: \"" +
                       name + "\" vs \"" + part->at("name").as_string() +
                       "\"");
    }
    if ((part->find("rows") != nullptr) != grid) {
      throw MergeError("section \"" + name +
                       "\": grid in some shards, hand-fed in others");
    }
  }

  std::size_t cells = 0;
  double wall = 0.0;
  for (const JsonValue* part : parts) {
    cells += require_count(*part, name, "cells");
    const JsonValue& w = part->at("wall_seconds");
    if (w.is_number()) wall += w.as_double();
  }

  JsonValue out = JsonValue::object();
  out.set("name", JsonValue::of(name));
  out.set("cells", JsonValue::of(cells));
  out.set("wall_seconds", JsonValue::of(wall));
  out.set("runs_per_sec",
          JsonValue::of(wall > 0.0 ? static_cast<double>(cells) / wall
                                   : 0.0));

  // same_keys is part of the schema: every shard must carry the same
  // list, and it travels into the merged document.
  const JsonValue* same_list = parts[0]->find("same_keys");
  for (const JsonValue* part : parts) {
    const JsonValue* other = part->find("same_keys");
    const bool equal = (same_list == nullptr && other == nullptr) ||
                       (same_list != nullptr && other != nullptr &&
                        *same_list == *other);
    if (!equal) {
      throw MergeError("section \"" + name +
                       "\": shards disagree on same_keys");
    }
  }
  std::vector<std::string> same_keys;
  if (same_list != nullptr) {
    out.set("same_keys", *same_list);
    for (const JsonValue& key : same_list->items()) {
      same_keys.push_back(key.as_string());
    }
  }

  std::vector<JsonValue> rows;
  if (grid) {
    const JsonValue& grid_cells = parts[0]->at("grid_cells");
    std::int64_t last_index = -1;
    for (const JsonValue* part : parts) {
      if (!(part->at("grid_cells") == grid_cells)) {
        throw MergeError("section \"" + name +
                         "\": shards disagree on grid_cells");
      }
      const auto& part_rows = part->at("rows").items();
      if (part_rows.size() != require_count(*part, name, "cells")) {
        throw MergeError("section \"" + name +
                         "\": cells does not match the rows array");
      }
      for (const JsonValue& row : part_rows) {
        const std::int64_t index = row.at("index").as_int();
        if (index <= last_index) {
          throw MergeError(
              "section \"" + name +
              "\": global row indices are not strictly increasing "
              "across shards (shards missing, duplicated, or out of "
              "order)");
        }
        last_index = index;
        rows.push_back(row);
      }
    }

    // Recompute every rows-derived fact with the same arithmetic the
    // unsharded run uses; per-cell latency percentiles are wall-clock
    // facts of runs that no longer exist, so they merge to null.
    std::size_t successes = 0;
    std::size_t detector_ok = 0;
    Summary steps;
    Summary witness;
    Summary allocs;
    Summary bytes;
    for (const JsonValue& row : rows) {
      if (row.at("success").as_int() != 0) ++successes;
      if (row.at("detector_ok").as_int() != 0) ++detector_ok;
      steps.add(row.at("steps").as_double());
      witness.add(row.at("witness_bound").as_double());
      allocs.add(row.at("allocs_per_op").as_double());
      bytes.add(row.at("bytes_per_op").as_double());
    }
    const double empty = std::numeric_limits<double>::quiet_NaN();
    auto pct = [&empty](const Summary& s, double q) {
      return s.empty() ? empty : s.percentile(q);
    };
    out.set("grid_cells", grid_cells);
    out.set("successes", JsonValue::of(static_cast<double>(successes)));
    out.set("detector_ok",
            JsonValue::of(static_cast<double>(detector_ok)));
    out.set("steps_p50", JsonValue::of(pct(steps, 50.0)));
    out.set("steps_p90", JsonValue::of(pct(steps, 90.0)));
    out.set("steps_p99", JsonValue::of(pct(steps, 99.0)));
    out.set("witness_bound_p90", JsonValue::of(pct(witness, 90.0)));
    out.set("allocs_per_op_max",
            JsonValue::of(allocs.empty() ? empty : allocs.max()));
    out.set("bytes_per_op_max",
            JsonValue::of(bytes.empty() ? empty : bytes.max()));
    // The multi-seed dispersion keys — pooled scalars and the
    // per-point breakdown — recomputed from the union rows in shard
    // (= cell) order through the same dispersion_stats helper the
    // JsonSink emits with, so the merged values are bit-identical to
    // the unsharded run's.
    for (const auto& [key, value] :
         dispersion_stats(steps, witness, successes, rows.size())) {
      out.set(key, JsonValue::of(value));
    }
    const JsonValue& repeat_factor = parts[0]->at("repeat_factor");
    for (const JsonValue* part : parts) {
      if (!(part->at("repeat_factor") == repeat_factor)) {
        throw MergeError("section \"" + name +
                         "\": shards disagree on repeat_factor");
      }
    }
    out.set("repeat_factor", repeat_factor);
    const std::int64_t rf = std::max<std::int64_t>(
        1, repeat_factor.as_int());
    std::vector<JsonValue> points;
    std::size_t r = 0;
    while (r < rows.size()) {
      PointGroup group;
      group.point = rows[r].at("index").as_int() / rf;
      while (r < rows.size() &&
             rows[r].at("index").as_int() / rf == group.point) {
        const JsonValue& row = rows[r];
        ++group.cells;
        if (row.at("success").as_int() != 0) ++group.successes;
        group.steps.add(row.at("steps").as_double());
        group.witness.add(row.at("witness_bound").as_double());
        ++r;
      }
      JsonValue obj = JsonValue::object();
      obj.set("point", JsonValue::of(group.point));
      obj.set("cells", JsonValue::of(group.cells));
      for (const auto& [key, value] :
           dispersion_stats(group.steps, group.witness, group.successes,
                            group.cells)) {
        obj.set(key, JsonValue::of(value));
      }
      points.push_back(std::move(obj));
    }
    out.set("point_stats", JsonValue::array(std::move(points)));
    out.set("cell_seconds_p50", JsonValue::null());
    out.set("cell_seconds_p90", JsonValue::null());
    out.set("cell_seconds_p99", JsonValue::null());
  }

  // Hand annotations: the union of extra keys across shards, in first
  // appearance order. Timing keys never merge; same_keys facts must
  // agree; everything else is a shard-local count and sums.
  std::vector<std::string> extra_keys;
  for (const JsonValue* part : parts) {
    for (const auto& [key, member] : part->members()) {
      if (is_section_frame_key(key)) continue;
      if (grid && is_grid_stat_key(key)) continue;
      if (std::find(extra_keys.begin(), extra_keys.end(), key) ==
          extra_keys.end()) {
        extra_keys.push_back(key);
      }
    }
  }
  for (const std::string& key : extra_keys) {
    if (is_timing_key(key)) continue;
    if (std::find(same_keys.begin(), same_keys.end(), key) !=
        same_keys.end()) {
      const JsonValue* agreed = nullptr;
      for (const JsonValue* part : parts) {
        const JsonValue* value = part->find(key);
        if (value == nullptr) continue;
        if (agreed == nullptr) {
          agreed = value;
        } else if (!(*agreed == *value)) {
          // Name the key and render both literals: a kSame mismatch
          // is a determinism bug somewhere upstream, and "a key
          // disagreed" is not actionable without the values.
          throw MergeError("section \"" + name + "\": shards disagree "
                           "on invariant key \"" +
                           key + "\": " + agreed->dump() + " vs " +
                           value->dump());
        }
      }
      out.set(key, *agreed);
    } else {
      double sum = 0.0;
      for (const JsonValue* part : parts) {
        const JsonValue* value = part->find(key);
        if (value == nullptr) continue;
        if (!value->is_number()) {
          throw MergeError("section \"" + name + "\": cannot sum "
                           "non-numeric key \"" +
                           key + "\" (annotate it MergeRule::kSame?)");
        }
        sum += value->as_double();
      }
      out.set(key, JsonValue::of(sum));
    }
  }

  if (grid) out.set("rows", JsonValue::array(std::move(rows)));
  return out;
}

/// Parses the "LO..HI/SPAN" shard field of a lease document.
bool parse_lease_field(const std::string& text, std::size_t* lo,
                       std::size_t* hi, std::size_t* span) {
  const std::size_t dots = text.find("..");
  if (dots == std::string::npos) return false;
  const std::size_t slash = text.find('/', dots + 2);
  if (slash == std::string::npos) return false;
  return parse_shard_index(text.substr(0, dots), lo) &&
         parse_shard_index(text.substr(dots + 2, slash - dots - 2),
                           hi) &&
         parse_shard_index(text.substr(slash + 1), span);
}

JsonValue merge_shard_docs_impl(const std::vector<JsonValue>& docs) {
  if (docs.empty()) {
    throw MergeError("merge_shard_docs: no shard documents given");
  }
  const std::size_t n = docs.size();
  std::vector<const JsonValue*> by_k;
  // Static shards carry "K/N"; lease documents (the elastic work
  // queue's workers) carry "LO..HI/SPAN". A merge is one mode or the
  // other — the first document decides, stragglers of the other kind
  // fail their parse below.
  if (docs[0].at("shard").as_string().find("..") != std::string::npos) {
    // Lease mode: any document count is legal, in any completion
    // order and with any split history, as long as the ranges tile
    // the virtual span exactly once — a gap means a lost lease, an
    // overlap a double-counted one, and both must fail loudly.
    struct LeasePart {
      const JsonValue* doc;
      std::size_t lo, hi, span;
    };
    std::vector<LeasePart> parts;
    parts.reserve(n);
    std::size_t span = 0;
    for (const JsonValue& doc : docs) {
      const std::string& shard = doc.at("shard").as_string();
      LeasePart part{&doc, 0, 0, 0};
      if (!parse_lease_field(shard, &part.lo, &part.hi, &part.span)) {
        throw MergeError("malformed lease shard field \"" + shard +
                         "\"");
      }
      if (part.span < 1 || part.lo >= part.hi ||
          part.hi > part.span) {
        throw MergeError("lease shard \"" + shard +
                         "\" violates 0 <= LO < HI <= SPAN");
      }
      if (span == 0) {
        span = part.span;
      } else if (part.span != span) {
        throw MergeError("lease documents disagree on the span: " +
                         std::to_string(span) + " vs " +
                         std::to_string(part.span));
      }
      parts.push_back(part);
    }
    std::sort(parts.begin(), parts.end(),
              [](const LeasePart& a, const LeasePart& b) {
                return a.lo < b.lo;
              });
    std::size_t expect = 0;
    for (const LeasePart& part : parts) {
      if (part.lo > expect) {
        throw MergeError("lease documents leave a gap: virtual cells " +
                         std::to_string(expect) + ".." +
                         std::to_string(part.lo) + " are uncovered");
      }
      if (part.lo < expect) {
        throw MergeError("lease documents overlap at virtual cell " +
                         std::to_string(part.lo));
      }
      expect = part.hi;
      by_k.push_back(part.doc);
    }
    if (expect != span) {
      throw MergeError("lease documents leave a gap: virtual cells " +
                       std::to_string(expect) + ".." +
                       std::to_string(span) + " are uncovered");
    }
  } else {
    by_k.assign(n, nullptr);
    for (const JsonValue& doc : docs) {
      const std::string& shard = doc.at("shard").as_string();
      const std::size_t slash = shard.find('/');
      std::size_t k = 0;
      std::size_t shard_n = 0;
      if (slash == std::string::npos ||
          !parse_shard_index(shard.substr(0, slash), &k) ||
          !parse_shard_index(shard.substr(slash + 1), &shard_n)) {
        throw MergeError("malformed shard field \"" + shard + "\"");
      }
      if (shard_n != n) {
        throw MergeError("document claims shard " + shard + " but " +
                         std::to_string(n) + " documents were given");
      }
      if (k >= n) {
        throw MergeError("shard index out of range in \"" + shard +
                         "\"");
      }
      if (by_k[k] != nullptr) {
        throw MergeError("duplicate shard " + shard);
      }
      by_k[k] = &doc;
    }
    // n documents, n distinct indices < n: every slot is filled.
  }

  const JsonValue& first = *by_k[0];
  for (const char* key : {"bench", "threads", "repeat"}) {
    for (const JsonValue* doc : by_k) {
      if (!(doc->at(key) == first.at(key))) {
        throw MergeError(std::string("shard documents disagree on \"") +
                         key + "\"");
      }
    }
  }

  const std::size_t section_count = first.at("sections").items().size();
  for (const JsonValue* doc : by_k) {
    if (doc->at("sections").items().size() != section_count) {
      throw MergeError("shard documents have different section counts");
    }
  }

  JsonValue merged = JsonValue::object();
  merged.set("bench", first.at("bench"));
  merged.set("threads", first.at("threads"));
  merged.set("repeat", first.at("repeat"));
  merged.set("shard", JsonValue::of("0/1"));

  std::vector<JsonValue> sections;
  std::size_t total_cells = 0;
  double total_wall = 0.0;
  for (std::size_t s = 0; s < section_count; ++s) {
    std::vector<const JsonValue*> parts;
    parts.reserve(n);
    for (const JsonValue* doc : by_k) {
      parts.push_back(&doc->at("sections").items()[s]);
    }
    JsonValue section = merge_section(parts);
    total_cells += static_cast<std::size_t>(section.at("cells").as_int());
    total_wall += section.at("wall_seconds").as_double();
    sections.push_back(std::move(section));
  }
  merged.set("sections", JsonValue::array(std::move(sections)));
  merged.set("total_cells", JsonValue::of(total_cells));
  merged.set("total_wall_seconds", JsonValue::of(total_wall));
  merged.set("runs_per_sec",
             JsonValue::of(total_wall > 0.0
                               ? static_cast<double>(total_cells) /
                                     total_wall
                               : 0.0));
  return merged;
}

}  // namespace

std::string canonical_json(const JsonValue& value) {
  return sort_keys(value).dump();
}

JsonValue merge_shard_docs(const std::vector<JsonValue>& docs) {
  try {
    return merge_shard_docs_impl(docs);
  } catch (const JsonParseError& e) {
    // A structurally broken document (missing key, wrong type) is a
    // merge failure, not a parse failure of this layer's making.
    throw MergeError(std::string("malformed shard document: ") +
                     e.what());
  }
}

}  // namespace setlib::core
