#include "src/core/report.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/util/assert.h"
#include "src/util/table.h"

namespace setlib::core {

std::string ShardSpec::to_string() const {
  return std::to_string(k) + "/" + std::to_string(n);
}

std::pair<std::size_t, std::size_t> ShardSpec::range(
    std::size_t total) const {
  SETLIB_EXPECTS(n >= 1 && k < n);
  return {total * k / n, total * (k + 1) / n};
}

void ReportSink::begin_section(const std::string&, std::size_t,
                               const ShardSpec&) {}
void ReportSink::cell(const SweepCell&, const RunReport&, double) {}
void ReportSink::end_section(const SectionStats&) {}

void AggregateSink::cell(const SweepCell&, const RunReport& report,
                         double) {
  ++agg_.cells;
  if (report.success) ++agg_.successes;
  if (report.detector.abstract_ok) ++agg_.detector_ok;
  agg_.steps.add(static_cast<double>(report.steps_executed));
  agg_.witness_bound.add(static_cast<double>(report.witness_bound));
  agg_.distinct_decisions.add(
      static_cast<double>(report.distinct_decisions));
}

void AggregateSink::end_section(const SectionStats& stats) {
  agg_.wall_seconds += stats.wall_seconds;
  agg_.runs_per_second =
      agg_.wall_seconds > 0.0
          ? static_cast<double>(agg_.cells) / agg_.wall_seconds
          : 0.0;
}

void CollectSink::cell(const SweepCell& cell, const RunReport& report,
                       double) {
  cells_.push_back(cell);
  reports_.push_back(report);
}

void TableSink::cell(const SweepCell& cell, const RunReport& report,
                     double) {
  const RunConfig& config = cell.config;
  std::string key = config.spec.to_string();
  key.append(" / ").append(family_name(config.family));
  auto [it, inserted] = index_of_.try_emplace(key, groups_.size());
  if (inserted) groups_.emplace_back(key, Group{});
  Group& g = groups_[it->second].second;
  ++g.cells;
  if (report.success) ++g.successes;
  if (report.detector.abstract_ok) ++g.detector_ok;
  g.steps.add(static_cast<double>(report.steps_executed));
}

std::string TableSink::render() const {
  TextTable table({"spec / family", "cells", "success rate",
                   "detector ok", "mean steps", "p90 steps"});
  for (const auto& [key, g] : groups_) {
    const double rate =
        g.cells == 0 ? 0.0
                     : static_cast<double>(g.successes) /
                           static_cast<double>(g.cells);
    table.row()
        .cell(key)
        .cell(g.cells)
        .cell(rate)
        .cell(g.detector_ok)
        .cell(g.steps.empty() ? 0.0 : g.steps.mean())
        .cell(g.steps.empty() ? 0.0 : g.steps.percentile(90.0));
  }
  return table.render();
}

JsonSink::JsonSink(Config config) : config_(std::move(config)) {}

void JsonSink::begin_section(const std::string& name, std::size_t,
                             const ShardSpec&) {
  SETLIB_EXPECTS(!streaming_);  // runner sections never nest
  streaming_ = true;
  pending_ = Section{};
  pending_.name = name;
  pending_.from_grid = true;
}

void JsonSink::cell(const SweepCell& cell, const RunReport& report,
                    double) {
  SETLIB_EXPECTS(streaming_);
  CellRow row;
  row.index = cell.index;
  row.success = report.success;
  row.detector_ok = report.detector.abstract_ok;
  row.distinct_decisions = report.distinct_decisions;
  row.steps = report.steps_executed;
  row.witness_bound = report.witness_bound;
  pending_.rows.push_back(row);
}

void JsonSink::end_section(const SectionStats& stats) {
  SETLIB_EXPECTS(streaming_);
  streaming_ = false;
  pending_.cells = stats.cells;
  pending_.wall_seconds = stats.wall_seconds;
  std::size_t successes = 0;
  std::size_t detector_ok = 0;
  Summary witness;
  for (const CellRow& row : pending_.rows) {
    if (row.success) ++successes;
    if (row.detector_ok) ++detector_ok;
    witness.add(static_cast<double>(row.witness_bound));
  }
  auto& extra = pending_.extra;
  extra.emplace_back("grid_cells",
                     static_cast<double>(stats.grid_cells));
  extra.emplace_back("successes", static_cast<double>(successes));
  extra.emplace_back("detector_ok", static_cast<double>(detector_ok));
  if (!stats.steps.empty()) {
    extra.emplace_back("steps_p50", stats.steps.percentile(50.0));
    extra.emplace_back("steps_p90", stats.steps.percentile(90.0));
    extra.emplace_back("steps_p99", stats.steps.percentile(99.0));
  }
  if (!witness.empty()) {
    extra.emplace_back("witness_bound_p90", witness.percentile(90.0));
  }
  // Per-cell wall latency percentiles: the only non-deterministic
  // section facts besides wall_seconds/runs_per_sec (keys prefixed
  // cell_seconds_ so determinism diffs can strip them).
  if (!stats.cell_seconds.empty()) {
    extra.emplace_back("cell_seconds_p50",
                       stats.cell_seconds.percentile(50.0));
    extra.emplace_back("cell_seconds_p90",
                       stats.cell_seconds.percentile(90.0));
    extra.emplace_back("cell_seconds_p99",
                       stats.cell_seconds.percentile(99.0));
  }
  sections_.push_back(std::move(pending_));
  pending_ = Section{};
}

void JsonSink::section(
    const std::string& name, std::size_t cells, double wall_seconds,
    std::vector<std::pair<std::string, double>> extra) {
  Section s;
  s.name = name;
  s.cells = cells;
  s.wall_seconds = wall_seconds;
  s.extra = std::move(extra);
  sections_.push_back(std::move(s));
}

void JsonSink::annotate(const std::string& key, double value) {
  SETLIB_EXPECTS(!sections_.empty());
  sections_.back().extra.emplace_back(key, value);
}

std::string JsonSink::render() const {
  std::size_t total_cells = 0;
  double total_wall = 0.0;
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"" << config_.name << "\",\n";
  os << "  \"threads\": " << config_.threads << ",\n";
  os << "  \"repeat\": " << config_.repeat << ",\n";
  os << "  \"shard\": \"" << config_.shard.to_string() << "\",\n";
  os << "  \"sections\": [\n";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    const Section& sec = sections_[s];
    total_cells += sec.cells;
    total_wall += sec.wall_seconds;
    const double rate =
        sec.wall_seconds > 0.0
            ? static_cast<double>(sec.cells) / sec.wall_seconds
            : 0.0;
    os << "    {\"name\": \"" << sec.name << "\", \"cells\": " << sec.cells
       << ", \"wall_seconds\": " << sec.wall_seconds
       << ", \"runs_per_sec\": " << rate;
    for (const auto& [key, value] : sec.extra) {
      os << ", \"" << key << "\": " << value;
    }
    if (sec.from_grid) {
      os << ", \"rows\": [";
      for (std::size_t r = 0; r < sec.rows.size(); ++r) {
        const CellRow& row = sec.rows[r];
        os << (r == 0 ? "" : ", ") << "{\"index\": " << row.index
           << ", \"success\": " << (row.success ? 1 : 0)
           << ", \"detector_ok\": " << (row.detector_ok ? 1 : 0)
           << ", \"distinct\": " << row.distinct_decisions
           << ", \"steps\": " << row.steps
           << ", \"witness_bound\": " << row.witness_bound << "}";
      }
      os << "]";
    }
    os << "}" << (s + 1 < sections_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  const double total_rate =
      total_wall > 0.0 ? static_cast<double>(total_cells) / total_wall
                       : 0.0;
  os << "  \"total_cells\": " << total_cells << ",\n";
  os << "  \"total_wall_seconds\": " << total_wall << ",\n";
  os << "  \"runs_per_sec\": " << total_rate << "\n";
  os << "}\n";
  return os.str();
}

void JsonSink::write_if_requested() const {
  if (!config_.enabled) return;
  std::ofstream file(config_.path);
  SETLIB_EXPECTS(file.good());
  file << render();
  std::cout << "wrote " << config_.path << "\n";
}

}  // namespace setlib::core
