// Report sinks: the result pipeline of the experiment surface.
//
// The ExperimentRunner executes a sweep section and streams its
// per-cell (SweepCell, RunReport, wall seconds) triples — in cell
// order, after the parallel phase has drained — into any number of
// ReportSinks. Sinks replace the ad-hoc per-bench output glue:
//
//   - AggregateSink folds the order-deterministic SweepAggregate
//     (success counts, step/bound summaries).
//   - TableSink renders the success-rate matrix grouped by
//     (spec, family) — the table every sweep bench prints.
//   - CollectSink keeps the raw cells + reports for callers that
//     post-process (the Theorem 27 matrix).
//   - JsonSink accumulates BENCH_<name>.json sections: cell counts,
//     wall/throughput, per-cell latency percentiles (util::Summary),
//     and a per-cell row array of the deterministic fields so shard
//     unions can be diffed cell-for-cell against unsharded runs.
//
// Because cells stream in cell order within a shard, and shards are
// contiguous slices of the flat index space, concatenating the sink
// output of shards 0..n-1 reproduces the unsharded output exactly
// (modulo wall-clock fields).
#ifndef SETLIB_CORE_REPORT_H
#define SETLIB_CORE_REPORT_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/sweep.h"
#include "src/util/json.h"
#include "src/util/stats.h"

namespace setlib::core {

/// A half-open shard {k, n} over a flat cell index space: shard k of n
/// covers [total*k/n, total*(k+1)/n). Shards are contiguous and in
/// index order, so the union of shards 0..n-1 is bit-identical to the
/// unsharded run.
///
/// Lease mode (`--cells=LO..HI[/SPAN]`, the elastic work queue's
/// worker flag) generalizes the fraction: instead of the k-th of n
/// equal slices, the shard covers the [lo, hi) sub-range of a
/// span-wide virtual cell space, i.e. [total*lo/span, total*hi/span)
/// of every real space of size total. `--shard=K/N` is exactly
/// lease {lo=K, hi=K+1, span=N}; the separate encoding exists so a
/// work queue can carve, split, and re-lease ranges of the virtual
/// space without knowing any section's cell count — ranges that tile
/// [0, span) tile every section, whatever its size (floor arithmetic
/// maps shared boundaries to shared boundaries).
struct ShardSpec {
  /// Default virtual-space width for lease mode; wide enough that
  /// splitting halves stays meaningful far past any real worker count.
  static constexpr std::size_t kLeaseSpan = std::size_t{1} << 20;

  std::size_t k = 0;  // shard index
  std::size_t n = 1;  // shard count
  // Lease mode (used instead of k/n when `leased` is set).
  bool leased = false;
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t span = kLeaseSpan;

  bool whole() const noexcept {
    return leased ? (lo == 0 && hi == span) : n == 1;
  }
  std::string to_string() const;  // "k/n" or "lo..hi/span"
  /// This shard's slice of [0, total), as {begin, end}.
  std::pair<std::size_t, std::size_t> range(std::size_t total) const;
};

/// Facts about one executed sweep section (one runner.run call).
struct SectionStats {
  std::string name;
  std::size_t grid_cells = 0;  // size of the full (unsharded) space
  std::size_t cells = 0;       // cells actually run (this shard)
  /// The grid's repeat factor (1 for generic loops): global cell
  /// index / repeats is the grid-point id the per-point multi-seed
  /// statistics group by.
  int repeats = 1;
  ShardSpec shard;
  Summary steps;         // per-cell steps_executed (deterministic)
  Summary cell_seconds;  // per-cell wall latency (thread-count dependent)
  // Wall-clock facts (the only thread-count-dependent scalars).
  double wall_seconds = 0.0;
  double runs_per_second = 0.0;
};

/// Streaming consumer of a sweep section. All hooks default to no-ops;
/// cell() is invoked in cell order after the parallel phase drains.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void begin_section(const std::string& name,
                             std::size_t grid_cells,
                             const ShardSpec& shard);
  virtual void cell(const SweepCell& cell, const RunReport& report,
                    double seconds);
  virtual void end_section(const SectionStats& stats);
};

/// Order-deterministic fold of the per-cell reports.
struct SweepAggregate {
  std::size_t cells = 0;
  std::size_t successes = 0;
  std::size_t detector_ok = 0;  // abstract k-anti-Omega held
  Summary steps;                // steps_executed per cell
  Summary witness_bound;        // measured (P, Q) bound per cell
  Summary distinct_decisions;
  // Wall-clock facts (the only thread-count-dependent fields).
  double wall_seconds = 0.0;
  double runs_per_second = 0.0;
};

class AggregateSink : public ReportSink {
 public:
  void cell(const SweepCell& cell, const RunReport& report,
            double seconds) override;
  void end_section(const SectionStats& stats) override;

  const SweepAggregate& aggregate() const noexcept { return agg_; }

 private:
  SweepAggregate agg_;
};

/// Raw cells + reports in cell order, for callers that post-process.
class CollectSink : public ReportSink {
 public:
  void cell(const SweepCell& cell, const RunReport& report,
            double seconds) override;

  const std::vector<SweepCell>& cells() const noexcept { return cells_; }
  const std::vector<RunReport>& reports() const noexcept {
    return reports_;
  }

 private:
  std::vector<SweepCell> cells_;
  std::vector<RunReport> reports_;
};

/// Success-rate matrix, one row per (spec, family) group in
/// first-appearance (cell) order. Deterministic at any thread count.
class TableSink : public ReportSink {
 public:
  void cell(const SweepCell& cell, const RunReport& report,
            double seconds) override;

  std::string render() const;

 private:
  struct Group {
    std::size_t cells = 0;
    std::size_t successes = 0;
    std::size_t detector_ok = 0;
    Summary steps;
  };
  std::vector<std::pair<std::string, Group>> groups_;
  std::map<std::string, std::size_t> index_of_;
};

/// How merge_shard_docs recombines a hand-recorded section fact
/// across shards. Counts over a shard's slice (successes, mismatches,
/// census members) sum; facts that are invariants of the run
/// (series_phases, n_max, a cross-check verdict) must agree and are
/// kept verbatim. Timing facts (see is_timing_key) are never merged.
enum class MergeRule {
  kSum,   // shard-local count: shards add up to the unsharded value
  kSame,  // run invariant: every shard (and the full run) agrees
};

/// Accumulates sweep sections and writes BENCH_<name>.json. Grid
/// sections (streamed through the ReportSink hooks) record successes,
/// per-cell latency percentiles, and a per-cell row array of the
/// deterministic fields; hand-fed section() calls cover loops whose
/// results are not RunReports.
///
/// Emission contract (the merge path depends on it): the document
/// always round-trips through a strict JSON parser — strings are
/// escaped, non-finite doubles render as null — and a grid section
/// emits its percentile and dispersion keys (steps_p50/p90/p99,
/// witness_bound_p90, cell_seconds_p50/p90/p99, plus the multi-seed
/// statistics: steps_mean/steps_stddev,
/// witness_bound_mean/witness_bound_stddev, success_rate and the 95%
/// confidence intervals ci_steps_low/high, ci_witness_bound_low/high,
/// ci_success_low/high — Student-t for means, normal approximation
/// for the success proportion) whether or not the shard ran any cells
/// (null when empty), so shard documents are schema-identical. The
/// scalars pool the whole section; the "point_stats" array repeats
/// the same keys per grid point (rows grouped by global index /
/// "repeat_factor"), i.e. per point across its --repeat seeds. All of
/// them are pure functions of the rows; merge_shard_docs recomputes
/// them from the union rows with the same arithmetic
/// (dispersion_stats in report.cpp is the single shared
/// implementation).
class JsonSink : public ReportSink {
 public:
  struct Config {
    std::string name;       // bench name ("thm24_agreement")
    std::string path;       // output path (BENCH_<name>.json)
    bool enabled = false;   // --json given
    int threads = 1;
    int repeat = 1;
    ShardSpec shard;
  };
  explicit JsonSink(Config config);

  void begin_section(const std::string& name, std::size_t grid_cells,
                     const ShardSpec& shard) override;
  void cell(const SweepCell& cell, const RunReport& report,
            double seconds) override;
  void end_section(const SectionStats& stats) override;

  /// Hand-recorded section for sharded loops whose per-index results
  /// are not RunReports (detector rows, ablation scenarios, ...).
  void section(const std::string& name, std::size_t cells,
               double wall_seconds,
               std::vector<std::pair<std::string, double>> extra = {});

  /// Attaches an extra numeric fact to the most recent section. The
  /// MergeRule tells merge_shard_docs how to recombine the fact; keys
  /// annotated kSame are listed in the section's "same_keys" array so
  /// the rule travels with the document.
  void annotate(const std::string& key, double value,
                MergeRule rule = MergeRule::kSum);

  /// The JSON document (also what write_if_requested persists).
  std::string render() const;

  /// Writes the JSON file when --json was requested; prints the path.
  void write_if_requested() const;

 private:
  struct CellRow {
    std::size_t index = 0;  // global (unsharded) cell index
    bool success = false;
    bool detector_ok = false;
    int distinct_decisions = 0;
    std::int64_t steps = 0;
    std::int64_t witness_bound = 0;
    // Replay hash of the executed schedule, rendered as a 16-hex-digit
    // string (JSON numbers are doubles and would corrupt it). Not a
    // timing key: rows concatenate verbatim in shard merges, so the
    // hash is pinned kSame-by-construction across merges and thread
    // counts.
    std::uint64_t schedule_hash = 0;
    // Arena counter deltas of the cell's analysis phase (see
    // RunReport). Deterministic facts, not timing keys: zero rows are
    // the pack-once pipeline's no-heap-traffic evidence.
    std::int64_t allocs_per_op = 0;
    std::int64_t bytes_per_op = 0;
  };
  struct Section {
    std::string name;
    std::size_t cells = 0;
    double wall_seconds = 0.0;
    std::vector<std::pair<std::string, double>> extra;
    std::vector<std::string> same_keys;  // extras annotated kSame
    bool from_grid = false;
    int repeat_factor = 1;      // grid sections: --repeat group width
    std::vector<CellRow> rows;  // grid sections only
  };

  Config config_;
  std::vector<Section> sections_;
  Section pending_;  // grid section currently streaming
  bool streaming_ = false;
};

// ---------------------------------------------------------------------
// Shard-document merging: the recombination rule behind the
// multi-process orchestrator. Given the N parsed --shard=K/N --json
// documents of one bench — or any set of --cells=LO..HI lease
// documents whose ranges tile the virtual span exactly once (any
// count, any split history, any completion order) — merge_shard_docs
// produces the document the unsharded run would have written,
// bit-identical modulo timing keys:
//
//   - grid sections: the per-cell "rows" arrays concatenate in shard
//     order (global indices must stay strictly increasing), and every
//     derived fact (successes, detector_ok, steps percentiles,
//     witness_bound_p90) is recomputed from the union rows with the
//     same Summary arithmetic the unsharded run uses;
//   - hand-fed sections: cells sum; extras sum (kSum) or must agree
//     (kSame, per the section's same_keys list);
//   - timing keys (is_timing_key) are wall-clock facts: wall_seconds
//     sums and runs_per_sec is recomputed, every other timing fact is
//     dropped — they are excluded from determinism diffs by rule.
//
// Inconsistent inputs (missing/duplicate shards, diverging configs,
// mismatched section sequences) throw MergeError rather than
// producing a silently incomplete document.

class MergeError : public std::runtime_error {
 public:
  explicit MergeError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// True for wall-clock-derived keys, which no determinism diff may
/// compare: "runs_per_sec", any key containing "wall", "seconds", or
/// "speedup", and "orchestration" (the elastic orchestrator's
/// lease/straggler report — pure scheduling facts). Mirrored by
/// scripts/check_shard_union.py.
bool is_timing_key(const std::string& key);

/// Deep-copies `value` with every is_timing_key object member removed.
JsonValue strip_timing_keys(const JsonValue& value);

/// Serializes with object keys sorted recursively (compact form), so
/// two documents compare bytewise regardless of emission order.
std::string canonical_json(const JsonValue& value);

/// Merges the N shard documents of one bench run (any input order)
/// into the unsharded document. Throws MergeError on inconsistency.
JsonValue merge_shard_docs(const std::vector<JsonValue>& docs);

}  // namespace setlib::core

#endif  // SETLIB_CORE_REPORT_H
