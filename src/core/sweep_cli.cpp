#include "src/core/sweep_cli.h"

#include <cstdlib>

#include "src/util/assert.h"

namespace setlib::core {

namespace {

bool consume_long_flag(const std::string& arg, const std::string& prefix,
                       long* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  SETLIB_EXPECTS(!value.empty());
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  // Reject trailing garbage ("--threads=8x") instead of truncating.
  SETLIB_EXPECTS(end != nullptr && *end == '\0');
  *out = parsed;
  return true;
}

bool consume_int_flag(const std::string& arg, const std::string& prefix,
                      int* out) {
  long value = 0;
  if (!consume_long_flag(arg, prefix, &value)) return false;
  *out = static_cast<int>(value);
  return true;
}

bool consume_shard_flag(const std::string& arg, ShardSpec* out) {
  const std::string prefix = "--shard=";
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  const std::size_t slash = value.find('/');
  SETLIB_EXPECTS(slash != std::string::npos && slash > 0 &&
                 slash + 1 < value.size());
  // Named locals: *end is inspected after the full expression, so the
  // strtol buffers must outlive the statement.
  const std::string k_text = value.substr(0, slash);
  const std::string n_text = value.substr(slash + 1);
  char* end = nullptr;
  const long k = std::strtol(k_text.c_str(), &end, 10);
  SETLIB_EXPECTS(end != nullptr && *end == '\0');
  const long n = std::strtol(n_text.c_str(), &end, 10);
  SETLIB_EXPECTS(end != nullptr && *end == '\0');
  SETLIB_EXPECTS(n >= 1 && k >= 0 && k < n);
  out->k = static_cast<std::size_t>(k);
  out->n = static_cast<std::size_t>(n);
  return true;
}

}  // namespace

RunnerOptions parse_runner_options(int* argc, char** argv,
                                   const std::string& name) {
  RunnerOptions options;
  options.name = name;
  // json_path left empty unless --json=path overrides it; the
  // ExperimentRunner constructor fills in the BENCH_<name>.json
  // default (single source of truth for the naming scheme).

  int kept = 1;  // argv[0] always stays
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (consume_int_flag(arg, "--threads=", &options.threads)) {
      SETLIB_EXPECTS(options.threads >= 0);
      continue;
    }
    if (consume_int_flag(arg, "--repeat=", &options.repeat)) {
      SETLIB_EXPECTS(options.repeat >= 1);
      continue;
    }
    long grain = 0;
    if (consume_long_flag(arg, "--grain=", &grain)) {
      SETLIB_EXPECTS(grain >= 0);
      options.grain = static_cast<std::size_t>(grain);
      continue;
    }
    if (consume_shard_flag(arg, &options.shard)) continue;
    if (arg == "--json") {
      options.json = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      options.json = true;
      options.json_path = arg.substr(7);
      SETLIB_EXPECTS(!options.json_path.empty());
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return options;
}

}  // namespace setlib::core
