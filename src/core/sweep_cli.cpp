#include "src/core/sweep_cli.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/util/assert.h"

namespace setlib::core {

namespace {

bool consume_int_flag(const std::string& arg, const std::string& prefix,
                      int* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  SETLIB_EXPECTS(!value.empty());
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  // Reject trailing garbage ("--threads=8x") instead of truncating.
  SETLIB_EXPECTS(end != nullptr && *end == '\0');
  *out = static_cast<int>(parsed);
  return true;
}

}  // namespace

BenchOptions parse_bench_options(int* argc, char** argv,
                                 const std::string& bench_name) {
  BenchOptions options;
  options.bench_name = bench_name;
  options.json_path = "BENCH_" + bench_name + ".json";

  int kept = 1;  // argv[0] always stays
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (consume_int_flag(arg, "--threads=", &options.threads)) {
      SETLIB_EXPECTS(options.threads >= 0);
      continue;
    }
    if (consume_int_flag(arg, "--repeat=", &options.repeat)) {
      SETLIB_EXPECTS(options.repeat >= 1);
      continue;
    }
    if (arg == "--json") {
      options.json = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      options.json = true;
      options.json_path = arg.substr(7);
      SETLIB_EXPECTS(!options.json_path.empty());
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return options;
}

BenchJson::BenchJson(BenchOptions options) : options_(std::move(options)) {}

void BenchJson::section(
    const std::string& name, std::size_t cells, double wall_seconds,
    std::vector<std::pair<std::string, double>> extra) {
  sections_.push_back({name, cells, wall_seconds, std::move(extra)});
}

void BenchJson::write_if_requested() const {
  if (!options_.json) return;

  std::size_t total_cells = 0;
  double total_wall = 0.0;
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"" << options_.bench_name << "\",\n";
  os << "  \"threads\": " << options_.threads << ",\n";
  os << "  \"repeat\": " << options_.repeat << ",\n";
  os << "  \"sections\": [\n";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    const Section& sec = sections_[s];
    total_cells += sec.cells;
    total_wall += sec.wall_seconds;
    const double rate =
        sec.wall_seconds > 0.0
            ? static_cast<double>(sec.cells) / sec.wall_seconds
            : 0.0;
    os << "    {\"name\": \"" << sec.name << "\", \"cells\": " << sec.cells
       << ", \"wall_seconds\": " << sec.wall_seconds
       << ", \"runs_per_sec\": " << rate;
    for (const auto& [key, value] : sec.extra) {
      os << ", \"" << key << "\": " << value;
    }
    os << "}" << (s + 1 < sections_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  const double total_rate =
      total_wall > 0.0 ? static_cast<double>(total_cells) / total_wall
                       : 0.0;
  os << "  \"total_cells\": " << total_cells << ",\n";
  os << "  \"total_wall_seconds\": " << total_wall << ",\n";
  os << "  \"runs_per_sec\": " << total_rate << "\n";
  os << "}\n";

  std::ofstream file(options_.json_path);
  SETLIB_EXPECTS(file.good());
  file << os.str();
  std::cout << "wrote " << options_.json_path << "\n";
}

}  // namespace setlib::core
