#include "src/core/sweep_cli.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "src/util/assert.h"

namespace setlib::core {

long parse_long_value(const std::string& text, const std::string& flag) {
  if (text.empty()) {
    throw ContractViolation(flag + ": empty value");
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  // Reject trailing garbage ("--threads=8x") instead of truncating,
  // and a no-digit parse ("--threads=x") instead of defaulting to 0.
  if (end == text.c_str() || end == nullptr || *end != '\0') {
    throw ContractViolation(flag + ": expected a base-10 integer, got '" +
                            text + "'");
  }
  // strtol saturates to LONG_MIN/LONG_MAX on overflow and only tells
  // us via errno — "--grain=99999999999999999999" must be an error,
  // not LONG_MAX.
  if (errno == ERANGE) {
    throw ContractViolation(flag + ": value '" + text +
                            "' is out of range");
  }
  return parsed;
}

int parse_int_value(const std::string& text, const std::string& flag) {
  const long parsed = parse_long_value(text, flag);
  if (parsed < INT_MIN || parsed > INT_MAX) {
    throw ContractViolation(flag + ": value '" + text +
                            "' does not fit in an int");
  }
  return static_cast<int>(parsed);
}

bool consume_long_flag(const std::string& arg, const std::string& prefix,
                       long* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = parse_long_value(arg.substr(prefix.size()), prefix);
  return true;
}

bool consume_int_flag(const std::string& arg, const std::string& prefix,
                      int* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = parse_int_value(arg.substr(prefix.size()), prefix);
  return true;
}

double parse_double_value(const std::string& text,
                          const std::string& flag) {
  if (text.empty()) {
    throw ContractViolation(flag + ": empty value");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || end == nullptr || *end != '\0') {
    throw ContractViolation(flag + ": expected a number, got '" + text +
                            "'");
  }
  if (errno == ERANGE || !std::isfinite(parsed)) {
    throw ContractViolation(flag + ": value '" + text +
                            "' is out of range");
  }
  return parsed;
}

bool consume_double_flag(const std::string& arg,
                         const std::string& prefix, double* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = parse_double_value(arg.substr(prefix.size()), prefix);
  return true;
}

namespace {

bool consume_shard_flag(const std::string& arg, ShardSpec* out) {
  const std::string prefix = "--shard=";
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos) {
    throw ContractViolation(prefix + ": expected K/N, got '" + value +
                            "'");
  }
  const long k = parse_long_value(value.substr(0, slash), prefix);
  const long n = parse_long_value(value.substr(slash + 1), prefix);
  if (n < 1 || k < 0 || k >= n) {
    throw ContractViolation(prefix + ": shard '" + value +
                            "' violates 0 <= K < N");
  }
  out->k = static_cast<std::size_t>(k);
  out->n = static_cast<std::size_t>(n);
  return true;
}

bool consume_cells_flag(const std::string& arg, ShardSpec* out) {
  const std::string prefix = "--cells=";
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  const std::size_t dots = value.find("..");
  if (dots == std::string::npos) {
    throw ContractViolation(prefix + ": expected LO..HI[/SPAN], got '" +
                            value + "'");
  }
  const std::size_t slash = value.find('/', dots + 2);
  const long lo = parse_long_value(value.substr(0, dots), prefix);
  const long hi = parse_long_value(
      slash == std::string::npos
          ? value.substr(dots + 2)
          : value.substr(dots + 2, slash - dots - 2),
      prefix);
  long span = static_cast<long>(ShardSpec::kLeaseSpan);
  if (slash != std::string::npos) {
    span = parse_long_value(value.substr(slash + 1), prefix);
  }
  if (span < 1 || lo < 0 || lo > hi || hi > span) {
    throw ContractViolation(prefix + ": lease '" + value +
                            "' violates 0 <= LO <= HI <= SPAN");
  }
  out->leased = true;
  out->lo = static_cast<std::size_t>(lo);
  out->hi = static_cast<std::size_t>(hi);
  out->span = static_cast<std::size_t>(span);
  return true;
}

}  // namespace

RunnerOptions parse_runner_options(int* argc, char** argv,
                                   const std::string& name) {
  RunnerOptions options;
  options.name = name;
  // json_path left empty unless --json=path overrides it; the
  // ExperimentRunner constructor fills in the BENCH_<name>.json
  // default (single source of truth for the naming scheme).

  int kept = 1;  // argv[0] always stays
  bool shard_given = false;
  bool cells_given = false;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (consume_int_flag(arg, "--threads=", &options.threads)) {
      SETLIB_EXPECTS(options.threads >= 0);
      continue;
    }
    if (consume_int_flag(arg, "--repeat=", &options.repeat)) {
      SETLIB_EXPECTS(options.repeat >= 1);
      continue;
    }
    long grain = 0;
    if (consume_long_flag(arg, "--grain=", &grain)) {
      SETLIB_EXPECTS(grain >= 0);
      options.grain = static_cast<std::size_t>(grain);
      continue;
    }
    if (consume_shard_flag(arg, &options.shard)) {
      shard_given = true;
      continue;
    }
    if (consume_cells_flag(arg, &options.shard)) {
      cells_given = true;
      continue;
    }
    if (arg == "--json") {
      options.json = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      options.json = true;
      options.json_path = arg.substr(7);
      SETLIB_EXPECTS(!options.json_path.empty());
      continue;
    }
    argv[kept++] = argv[i];
  }
  if (shard_given && cells_given) {
    throw ContractViolation(
        "--shard= and --cells= are mutually exclusive: a worker is "
        "either a static shard or a leased range, not both");
  }
  *argc = kept;
  return options;
}

}  // namespace setlib::core
