// Thin command-line surface for the bench binaries and heavier
// examples: parses the shared flags into a core::RunnerOptions that
// constructs the binary's ExperimentRunner.
//
// Every bench accepts, before its Google Benchmark arguments:
//   --threads=N    sweep parallelism (0 = hardware concurrency)
//   --repeat=N     repeat factor for grid sweeps (seeds per cell point)
//   --shard=K/N    run the K-th of N contiguous slices of every cell
//                  space; the union of all N shards is bit-identical
//                  to the unsharded run (modulo wall-clock fields)
//   --cells=LO..HI[/SPAN]
//                  lease form of --shard (the elastic orchestrator's
//                  worker flag): run the [LO, HI) slice of a SPAN-wide
//                  virtual cell space (default ShardSpec::kLeaseSpan);
//                  documents of leases tiling [0, SPAN) merge to the
//                  unsharded document. Mutually exclusive with --shard.
//   --grain=N      indices per work-stealing pop (0 = auto)
//   --json[=path]  write BENCH_<name>.json (sections, throughput,
//                  per-cell latency percentiles and rows)
// Recognized flags are stripped from argv so the remainder can go to
// benchmark::Initialize unchanged.
#ifndef SETLIB_CORE_SWEEP_CLI_H
#define SETLIB_CORE_SWEEP_CLI_H

#include <string>

#include "src/core/runner.h"

namespace setlib::core {

/// Parses and strips the shared flags from (argc, argv).
RunnerOptions parse_runner_options(int* argc, char** argv,
                                   const std::string& name);

/// Strict base-10 parse of a flag value. Rejects empty values,
/// trailing garbage ("8x"), and out-of-range magnitudes (strtol's
/// ERANGE saturation is an error here, not a value) with a
/// ContractViolation naming the flag. Shared by every CLI in the repo
/// so no surface silently truncates or wraps.
long parse_long_value(const std::string& text, const std::string& flag);

/// parse_long_value narrowed to int, rejecting values outside
/// [INT_MIN, INT_MAX] instead of wrapping.
int parse_int_value(const std::string& text, const std::string& flag);

/// Strict parse of a floating-point flag value (strtod, whole-string,
/// finite). Same error discipline as parse_long_value.
double parse_double_value(const std::string& text,
                          const std::string& flag);

/// If arg starts with prefix ("--threads="), parses the remainder into
/// *out and returns true; returns false when the prefix does not
/// match. Parse failures throw (see parse_long_value).
bool consume_long_flag(const std::string& arg, const std::string& prefix,
                       long* out);
bool consume_int_flag(const std::string& arg, const std::string& prefix,
                      int* out);
bool consume_double_flag(const std::string& arg,
                         const std::string& prefix, double* out);

}  // namespace setlib::core

#endif  // SETLIB_CORE_SWEEP_CLI_H
