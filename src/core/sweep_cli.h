// Thin command-line surface for the bench binaries and heavier
// examples: parses the shared flags into a core::RunnerOptions that
// constructs the binary's ExperimentRunner.
//
// Every bench accepts, before its Google Benchmark arguments:
//   --threads=N    sweep parallelism (0 = hardware concurrency)
//   --repeat=N     repeat factor for grid sweeps (seeds per cell point)
//   --shard=K/N    run the K-th of N contiguous slices of every cell
//                  space; the union of all N shards is bit-identical
//                  to the unsharded run (modulo wall-clock fields)
//   --grain=N      indices per work-stealing pop (0 = auto)
//   --json[=path]  write BENCH_<name>.json (sections, throughput,
//                  per-cell latency percentiles and rows)
// Recognized flags are stripped from argv so the remainder can go to
// benchmark::Initialize unchanged.
#ifndef SETLIB_CORE_SWEEP_CLI_H
#define SETLIB_CORE_SWEEP_CLI_H

#include <string>

#include "src/core/runner.h"

namespace setlib::core {

/// Parses and strips the shared flags from (argc, argv).
RunnerOptions parse_runner_options(int* argc, char** argv,
                                   const std::string& name);

}  // namespace setlib::core

#endif  // SETLIB_CORE_SWEEP_CLI_H
