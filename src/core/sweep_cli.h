// Shared command-line surface and machine-readable output for the
// bench binaries and heavier examples.
//
// Every bench accepts, before its Google Benchmark arguments:
//   --threads=N    sweep parallelism (0 = hardware concurrency)
//   --repeat=N     repeat factor for grid sweeps (seeds per cell point)
//   --json[=path]  write BENCH_<name>.json (per-section cell counts,
//                  wall seconds, throughput in runs/sec)
// Recognized flags are stripped from argv so the remainder can go to
// benchmark::Initialize unchanged.
#ifndef SETLIB_CORE_SWEEP_CLI_H
#define SETLIB_CORE_SWEEP_CLI_H

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace setlib::core {

struct BenchOptions {
  std::string bench_name;
  int threads = 1;
  int repeat = 1;
  bool json = false;
  std::string json_path;  // defaults to BENCH_<bench_name>.json
};

/// Parses and strips the shared flags from (argc, argv).
BenchOptions parse_bench_options(int* argc, char** argv,
                                 const std::string& bench_name);

/// Wall-clock stopwatch for sweep sections.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start_;
    return d.count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates per-section sweep metrics and writes BENCH_<name>.json.
class BenchJson {
 public:
  explicit BenchJson(BenchOptions options);

  /// Records one sweep section (cells run, wall seconds, plus optional
  /// extra numeric facts such as success counts).
  void section(
      const std::string& name, std::size_t cells, double wall_seconds,
      std::vector<std::pair<std::string, double>> extra = {});

  /// Writes the JSON file when --json was requested; prints the path.
  void write_if_requested() const;

 private:
  struct Section {
    std::string name;
    std::size_t cells = 0;
    double wall_seconds = 0.0;
    std::vector<std::pair<std::string, double>> extra;
  };

  BenchOptions options_;
  std::vector<Section> sections_;
};

}  // namespace setlib::core

#endif  // SETLIB_CORE_SWEEP_CLI_H
