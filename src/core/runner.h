// The unified experiment surface: one session-style object that owns
// the executor, the cell space, and the result pipeline.
//
// ExperimentRunner holds a persistent runtime::WorkStealingPool that is
// reused across every sweep section of a binary (worker threads spawn
// once, at construction). A single run() entry point executes either a
// SweepGrid (streaming per-cell RunReports into ReportSinks, in cell
// order) or a generic indexed loop; map() is the typed convenience for
// loops that collect results.
//
// Sharding: RunnerOptions::shard = {k, n} restricts every cell space
// to its k-th contiguous n-th — cell configs are pure functions of the
// global index, so the union of the n shard runs is bit-identical to
// the unsharded run (modulo wall-clock fields). `--shard=K/N` on any
// bench falls out of this.
//
// Batching: RunnerOptions::grain chunks the work-stealing index pops;
// 0 picks an automatic grain (1 for the usual milliseconds-heavy
// cells, larger on huge cheap-cell spaces) to cut steal overhead.
#ifndef SETLIB_CORE_RUNNER_H
#define SETLIB_CORE_RUNNER_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/runtime/executor.h"
#include "src/util/arena.h"

namespace setlib::core {

struct RunnerOptions {
  std::string name;       // experiment name (JSON default path stem)
  int threads = 1;        // pool width; 0 = hardware concurrency
  int repeat = 1;         // repeat factor benches feed into grids
  ShardSpec shard;        // {k, n} slice of every cell space
  std::size_t grain = 0;  // indices per steal chunk; 0 = auto
  bool json = false;
  std::string json_path;  // defaults to BENCH_<name>.json
};

/// Wall-clock stopwatch for sweep sections.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start_;
    return d.count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions options = {});

  const RunnerOptions& options() const noexcept { return options_; }

  /// The persistent pool — one set of worker threads for the runner's
  /// whole lifetime, reused by every run()/map() call.
  runtime::WorkStealingPool& pool() noexcept { return pool_; }

  /// The calling thread's per-worker-slot arena. Inside a run()/map()
  /// callback each participating thread gets its own arena (indexed by
  /// the pool's worker slot), so callbacks may use it without locking.
  /// Grid runs reset the arena before each cell — the determinism
  /// contract in src/util/arena.h makes the per-cell counter deltas
  /// independent of thread count and cell order.
  util::ArenaAllocator& worker_arena() noexcept {
    return *arenas_[pool_.current_slot()];
  }

  /// A JsonSink wired to this runner's options (name, path, shard).
  JsonSink json_sink() const;

  /// This runner's half-open slice of a flat index space [0, total).
  std::pair<std::size_t, std::size_t> shard_range(
      std::size_t total) const {
    return options_.shard.range(total);
  }

  /// Grid entry point: materializes this shard's cells, runs
  /// run_agreement on each through the pool, then streams
  /// (cell, report, seconds) to every sink in cell order.
  SectionStats run(const SweepGrid& grid, const std::string& name,
                   const std::vector<ReportSink*>& sinks = {});

  /// Generic indexed loop over this shard of [0, n); fn receives
  /// global indices, each exactly once.
  SectionStats run(std::size_t n, const std::string& name,
                   const std::function<void(std::size_t)>& fn);

  /// Generic map over this shard of [0, n): out[i] holds the result
  /// of global index shard_range(n).first + i, in index order — so
  /// concatenating the shards' vectors reproduces the unsharded map.
  template <typename T>
  std::vector<T> map(std::size_t n,
                     const std::function<T(std::size_t)>& fn) {
    const auto [begin, end] = shard_range(n);
    std::vector<T> out(end - begin);
    if (!out.empty()) {
      pool_.for_each(
          out.size(), [&](std::size_t i) { out[i] = fn(begin + i); },
          grain_for(out.size()));
    }
    return out;
  }

 private:
  std::size_t grain_for(std::size_t count) const;

  RunnerOptions options_;
  runtime::WorkStealingPool pool_;
  // One arena per pool worker slot (slot 0 doubles as the submitting
  // thread). unique_ptrs: arenas are non-movable and the vector is
  // sized once at construction.
  std::vector<std::unique_ptr<util::ArenaAllocator>> arenas_;
};

}  // namespace setlib::core

#endif  // SETLIB_CORE_RUNNER_H
