// Theorem 27 (the paper's main result) as an executable predicate, plus
// the structural observations around it.
#ifndef SETLIB_CORE_SOLVABILITY_H
#define SETLIB_CORE_SOLVABILITY_H

#include "src/core/spec.h"

namespace setlib::core {

/// Is (t, k, n)-agreement solvable in S^i_{j,n}?
///
/// - k > t: solvable everywhere, including the asynchronous system
///   (the trivial algorithm behind Corollary 25's extension).
/// - 1 <= k <= t <= n-1 (Theorem 27): solvable iff
///       i <= k  and  j - i >= (t + 1) - k.
bool solvable(const AgreementSpec& spec, const SystemSpec& sys);

/// The weakest system of the S family that Theorem 24 proves sufficient
/// for (t, k, n)-agreement: S^k_{t+1,n} (clamped to j <= n).
SystemSpec matching_system(const AgreementSpec& spec);

/// Observation 4: S^{i'}_{j',n} is contained in S^i_{j,n} iff the
/// primed system's guarantee is at least as strong (i' <= i, j <= j').
bool contained_in(const SystemSpec& stronger, const SystemSpec& weaker);

/// The two incrementally stronger problems of the separation result:
/// (t+1, k, n)- and (t, k-1, n)-agreement (validity-checked by caller).
AgreementSpec stronger_resilience(const AgreementSpec& spec);
AgreementSpec stronger_agreement(const AgreementSpec& spec);

}  // namespace setlib::core

#endif  // SETLIB_CORE_SOLVABILITY_H
