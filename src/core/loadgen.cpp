#include "src/core/loadgen.h"

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace setlib::core {

LoadGen::LoadGen(LoadGenConfig config) : config_(config) {
  SETLIB_EXPECTS(config_.requests >= 0);
  SETLIB_EXPECTS(config_.mean_interarrival_ticks >= 0);
}

std::int64_t LoadGen::command(std::int64_t id) const noexcept {
  // Stateless mix so command(id) needs no generator state: fold the id
  // into the seed with the splitmix64 increment, then hash. The top
  // bits keep the value in [0, 2^31).
  std::uint64_t state =
      config_.seed + 0x9e3779b97f4a7c15ULL *
                         (static_cast<std::uint64_t>(id) + 1);
  return static_cast<std::int64_t>(splitmix64(state) >> 33);
}

std::vector<Request> LoadGen::arrivals() const {
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(config_.requests));
  Rng rng(config_.seed);
  std::int64_t tick = 0;
  for (std::int64_t id = 0; id < config_.requests; ++id) {
    tick += config_.mean_interarrival_ticks == 0
                ? 0
                : rng.next_in(0, 2 * config_.mean_interarrival_ticks);
    Request r;
    r.id = id;
    r.command = command(id);
    r.arrival_tick = tick;
    out.push_back(r);
  }
  return out;
}

}  // namespace setlib::core
