#include "src/core/solvability.h"

#include <algorithm>

namespace setlib::core {

bool solvable(const AgreementSpec& spec, const SystemSpec& sys) {
  spec.validate();
  sys.validate();
  SETLIB_EXPECTS(spec.n == sys.n);
  if (spec.k > spec.t) return true;  // trivial even in S_n (async)
  return sys.i <= spec.k && (sys.j - sys.i) >= (spec.t + 1) - spec.k;
}

SystemSpec matching_system(const AgreementSpec& spec) {
  spec.validate();
  SystemSpec sys;
  sys.n = spec.n;
  sys.i = std::min(spec.k, spec.n);
  sys.j = std::min(spec.t + 1, spec.n);
  sys.i = std::min(sys.i, sys.j);
  return sys;
}

bool contained_in(const SystemSpec& stronger, const SystemSpec& weaker) {
  stronger.validate();
  weaker.validate();
  SETLIB_EXPECTS(stronger.n == weaker.n);
  return stronger.i <= weaker.i && weaker.j <= stronger.j;
}

AgreementSpec stronger_resilience(const AgreementSpec& spec) {
  AgreementSpec out = spec;
  out.t = spec.t + 1;
  return out;
}

AgreementSpec stronger_agreement(const AgreementSpec& spec) {
  AgreementSpec out = spec;
  out.k = spec.k - 1;
  return out;
}

}  // namespace setlib::core
