#include "src/core/experiments.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/core/solvability.h"
#include "src/core/sweep.h"
#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/assert.h"
#include "src/util/table.h"

namespace setlib::core {

std::vector<Figure1Row> figure1_rows(std::int64_t max_phase,
                                     ExperimentRunner& runner) {
  SETLIB_EXPECTS(max_phase >= 1);
  const int n = 3;
  const Pid p1 = 0, p2 = 1, q = 2;
  sched::Figure1Generator gen(n, p1, p2, q);
  const std::int64_t total =
      sched::Figure1Generator::steps_through_phase(max_phase);
  const sched::Schedule s = sched::generate(gen, total);

  // One incremental pass per candidate pair: each BoundTracker extends
  // to the next phase boundary in O(Δ), so the whole growing-prefix
  // series costs O(total) instead of the O(total^2) of rescanning
  // every cut. Rows are pure functions of the phase index, so slicing
  // the series preserves the runner's shard-union invariant.
  sched::BoundTracker tracker_p1(ProcSet::of(p1), ProcSet::of(q));
  sched::BoundTracker tracker_p2(ProcSet::of(p2), ProcSet::of(q));
  sched::BoundTracker tracker_union(ProcSet::of({p1, p2}), ProcSet::of(q));
  std::vector<Figure1Row> all;
  all.reserve(static_cast<std::size_t>(max_phase));
  for (std::int64_t phase = 1; phase <= max_phase; ++phase) {
    const std::int64_t cut =
        sched::Figure1Generator::steps_through_phase(phase);
    tracker_p1.extend(s, cut);
    tracker_p2.extend(s, cut);
    tracker_union.extend(s, cut);
    Figure1Row row;
    row.phase = phase;
    row.prefix_len = cut;
    row.bound_p1 = tracker_p1.bound();
    row.bound_p2 = tracker_p2.bound();
    row.bound_union = tracker_union.bound();
    all.push_back(row);
  }
  const auto [begin, end] =
      runner.shard_range(static_cast<std::size_t>(max_phase));
  return std::vector<Figure1Row>(
      all.begin() + static_cast<std::ptrdiff_t>(begin),
      all.begin() + static_cast<std::ptrdiff_t>(end));
}

std::vector<Figure1Row> figure1_rows(std::int64_t max_phase) {
  ExperimentRunner serial;
  return figure1_rows(max_phase, serial);
}

PairScanResult ranked_pair_scan(const PairScanConfig& cfg,
                                ExperimentRunner& runner) {
  SETLIB_EXPECTS(2 <= cfg.n && cfg.n <= kMaxProcs);
  SETLIB_EXPECTS(1 <= cfg.i && cfg.i <= cfg.n);
  SETLIB_EXPECTS(1 <= cfg.j && cfg.j <= cfg.n);
  SETLIB_EXPECTS(cfg.len >= 0);
  SETLIB_EXPECTS(cfg.bound_cap >= 1);
  // The starver family rotates proper i-subsets; i == n has nothing
  // to rotate (the universe cannot be starved against itself).
  SETLIB_EXPECTS(cfg.enforced_bound > 0 || cfg.i < cfg.n);

  std::unique_ptr<sched::ScheduleGenerator> gen;
  if (cfg.enforced_bound > 0) {
    gen = sched::EnforcedGenerator::single(
        std::make_unique<sched::UniformRandomGenerator>(cfg.n, cfg.seed),
        sched::TimelinessConstraint(ProcSet::range(0, cfg.i),
                                    ProcSet::range(0, cfg.j),
                                    cfg.enforced_bound));
  } else {
    gen = std::make_unique<sched::KSubsetStarverGenerator>(
        cfg.n, ProcSet::universe(cfg.n), cfg.i, 64);
  }
  const sched::Schedule s = sched::generate(*gen, cfg.len);
  // Pack-once: the shared packed prefix is built on the submitting
  // thread and borrowed read-only by every worker's scan.
  const sched::PackedSchedule packed(s);
  const std::int64_t p_count = SubsetRanker(cfg.n, cfg.i).count();

  // Fixed-size P-rank chunks: the chunk space (not the thread count)
  // defines the work decomposition, so counts are bit-identical at any
  // pool width and shards slice the chunk space contiguously. Each
  // chunk scans through an arena-backed RankedPairScan on its worker's
  // arena — the scan scratch never hits the heap, and the arena use is
  // race-free because a worker slot runs one chunk at a time.
  constexpr std::int64_t kChunk = 8;
  const std::int64_t chunks = (p_count + kChunk - 1) / kChunk;
  using Chunk = sched::RankedPairScan::MemberCount;
  const std::vector<Chunk> parts = runner.map<Chunk>(
      static_cast<std::size_t>(chunks), [&](std::size_t c) {
        const std::int64_t begin = static_cast<std::int64_t>(c) * kChunk;
        const std::int64_t end = std::min(begin + kChunk, p_count);
        const sched::RankedPairScan scan(packed, cfg.i, cfg.j,
                                         &runner.worker_arena());
        return scan.count_members(cfg.bound_cap, begin, end);
      });

  PairScanResult out;
  for (const Chunk& part : parts) {  // rank order: first = earliest
    out.pairs += part.pairs;
    out.members += part.members;
    if (!out.found && part.first) {
      out.found = true;
      out.first = *part.first;
    }
  }
  return out;
}

DetectorRunResult run_detector_convergence(const DetectorRunConfig& cfg) {
  SETLIB_EXPECTS(cfg.n >= 2);
  SETLIB_EXPECTS(cfg.k >= 1 && cfg.k <= cfg.n - 1);
  SETLIB_EXPECTS(cfg.t >= 1 && cfg.t <= cfg.n - 1);
  SETLIB_EXPECTS(cfg.crash_count >= 0 && cfg.crash_count <= cfg.t);

  const int n = cfg.n;
  sched::CrashPlan plan = sched::CrashPlan::none(n);
  if (cfg.crash_count > 0) {
    plan = sched::CrashPlan::at(n, ProcSet::range(n - cfg.crash_count, n),
                                cfg.crash_step);
  }
  // Witness pair: P = first k pids, Q = first t+1 pids (all alive, since
  // crashes hit the tail and crash_count <= t < t+1 <= n ... Q may
  // include crashed pids when t + 1 > n - crash_count; that only makes
  // the constraint easier, and P stays alive).
  const ProcSet p = ProcSet::range(0, cfg.k);
  const ProcSet q = ProcSet::range(0, std::min(cfg.t + 1, n));
  std::unique_ptr<sched::ScheduleGenerator> base;
  if (cfg.timely_weight == 1.0) {
    base = std::make_unique<sched::UniformRandomGenerator>(n, cfg.seed);
  } else {
    SETLIB_EXPECTS(cfg.timely_weight >= 0.0);
    std::vector<double> weights(static_cast<std::size_t>(n), 1.0);
    for (Pid member : p.to_vector()) {
      weights[static_cast<std::size_t>(member)] = cfg.timely_weight;
    }
    base = std::make_unique<sched::WeightedRandomGenerator>(
        std::move(weights), cfg.seed);
  }
  std::vector<sched::TimelinessConstraint> constraints;
  constraints.emplace_back(p, q, cfg.bound);
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               plan);

  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  sim.use_crash_plan(plan);
  fd::KAntiOmega detector(mem,
                          fd::KAntiOmega::Params{n, cfg.k, cfg.t, 1});
  for (Pid pid = 0; pid < n; ++pid) {
    sim.process(pid).add_task(detector.run(pid), "kanti-omega");
  }

  const ProcSet correct = plan.faulty().complement(n);
  auto stop = [&] {
    return detector.stabilized(correct, cfg.stabilization_window);
  };
  const std::int64_t steps = sim.run_until(gen, cfg.max_steps, stop);

  DetectorRunResult out;
  out.steps = steps;
  const auto prop = fd::check_kantiomega(detector, correct,
                                         cfg.stabilization_window);
  out.stabilized = prop.stabilized;
  out.property_ok = prop.ok;
  out.winnerset = prop.winnerset;
  for (Pid pid : correct.to_vector()) {
    const auto& v = detector.view(pid);
    out.max_iterations = std::max(out.max_iterations, v.iterations);
    out.winnerset_changes += v.winnerset_changes;
  }
  // Cost model: per loop iteration, Figure 2 performs |Pi_n^k| * n
  // counter reads + 1 heartbeat write + n heartbeat reads + at most
  // |Pi_n^k| counter writes.
  const std::int64_t sets = detector.ranker().count();
  out.ops_per_iteration = sets * n + 1 + n + sets;
  return out;
}

std::vector<MatrixCell> thm27_matrix(
    const MatrixConfig& cfg, ExperimentRunner& runner,
    const std::vector<ReportSink*>& extra_sinks) {
  cfg.spec.validate();
  SETLIB_EXPECTS(cfg.spec.k <= cfg.spec.t);  // the Theorem 27 regime

  RunConfig proto;
  proto.spec = cfg.spec;
  proto.max_steps = cfg.max_steps;
  proto.rotisserie_growth = cfg.rotisserie_growth;
  proto.timeliness_bound = cfg.friendly_bound;
  proto.stabilization_window = cfg.stabilization_window;
  proto.run_full_budget = true;

  SweepGrid grid;
  grid.add_spec(cfg.spec)
      .system_axis(SystemAxis::kFullMatrix)
      .prototype(proto)
      .per_cell([&cfg](SweepCell& cell) {
        // The matrix keeps one seed across cells (the classic EXP-T27
        // semantics); the adversarial family is a function of where
        // (i, j) sits relative to the Theorem 27 frontier.
        cell.config.seed = cfg.seed;
        const int i = cell.config.system.i;
        const int j = cell.config.system.j;
        if (i > cfg.spec.k) {
          cell.config.family = ScheduleFamily::kKSubsetStarver;
        } else if (j - i <= cfg.spec.t) {
          cell.config.family = ScheduleFamily::kRotisserie;
        } else {
          cell.config.family = ScheduleFamily::kEnforcedRandom;
        }
      });

  CollectSink collected;
  std::vector<ReportSink*> sinks;
  sinks.push_back(&collected);
  sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());
  runner.run(grid, "matrix_" + cfg.spec.to_string(), sinks);

  std::vector<MatrixCell> cells;
  cells.reserve(collected.cells().size());
  for (std::size_t idx = 0; idx < collected.cells().size(); ++idx) {
    const RunConfig& rc = collected.cells()[idx].config;
    const RunReport& report = collected.reports()[idx];
    MatrixCell cell;
    cell.i = rc.system.i;
    cell.j = rc.system.j;
    cell.predicted_solvable = solvable(cfg.spec, rc.system);
    cell.family = family_name(rc.family);
    cell.detector_property = report.detector.abstract_ok;
    cell.solver_success = report.success;
    // Frontier check: on solvable cells the detector property and
    // the solver must both come through; on unsolvable cells the
    // adversary must defeat the detector property (a lucky solver
    // decision on an oblivious schedule is possible and allowed).
    cell.matches = cell.predicted_solvable
                       ? (cell.detector_property && cell.solver_success)
                       : !cell.detector_property;
    cell.detail = report.detail;
    cells.push_back(cell);
  }
  return cells;
}

std::vector<MatrixCell> thm27_matrix(const MatrixConfig& cfg) {
  ExperimentRunner serial;
  return thm27_matrix(cfg, serial);
}

std::string render_matrix(const AgreementSpec& spec,
                          const std::vector<MatrixCell>& cells) {
  TextTable table({"i", "j", "predicted (Thm 27)", "k-anti-Omega property",
                   "solver", "family", "frontier check"});
  for (const auto& c : cells) {
    table.row()
        .cell(c.i)
        .cell(c.j)
        .cell(c.predicted_solvable ? "solvable" : "unsolvable")
        .cell(c.detector_property ? "holds" : "defeated")
        .cell(c.solver_success ? "decided" : "no decision")
        .cell(c.family)
        .cell(c.matches ? "MATCH" : "MISMATCH");
  }
  std::ostringstream os;
  os << "Theorem 27 frontier for " << spec.to_string()
     << ": solvable iff i <= " << spec.k
     << " and j - i >= " << (spec.t + 1 - spec.k) << "\n"
     << table.render();
  return os.str();
}

}  // namespace setlib::core
