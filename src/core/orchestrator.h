// The multi-process orchestrators: launch workers of one bench binary
// and merge their JSON documents into the document the unsharded run
// would have written.
//
// Two schedulers share the seam:
//
//   - orchestrate(): the static partition — N --shard=K/N workers,
//     bounded per-shard retries (with deterministic exponential
//     backoff), a shard that keeps failing is reported with its
//     captured stderr, never silently dropped.
//   - orchestrate_elastic(): the lease-based work queue
//     (core::WorkQueue) — the virtual cell space is carved into many
//     small ranges, workers lease ranges with deadlines
//     (--cells=LO..HI), expired or straggling leases are split and
//     re-leased, so a dead or slow worker's work redistributes across
//     the survivors.
//
// Neither touches runtime::Subprocess directly: every worker launch
// goes through runtime::Transport, so an ssh-style remote transport is
// a drop-in (see docs/ORCHESTRATION.md).
//
// The contract tested in CI: for a deterministic bench,
//   orchestrate(bench, N).merged          ==  unsharded --json document
//   orchestrate_elastic(bench, ...).merged ==  unsharded --json document
// bit-identical modulo timing keys (is_timing_key) — for the elastic
// path, regardless of which workers died, which ranges were
// resharded, or in what order leases completed.
#ifndef SETLIB_CORE_ORCHESTRATOR_H
#define SETLIB_CORE_ORCHESTRATOR_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/workqueue.h"
#include "src/runtime/subprocess.h"
#include "src/runtime/transport.h"
#include "src/util/json.h"

namespace setlib::core {

/// Bounded exponential backoff between retry attempts, with
/// deterministic seeded jitter: attempt a (1-based) sleeps
/// jitter * min(cap, base * 2^(a-1)), jitter in [0.5, 1.0] drawn by
/// splitmix64 from (seed, stream, attempt) — so a given (seed, shard,
/// attempt) always backs off the same amount, and concurrent retries
/// of different shards de-synchronize instead of stampeding.
struct BackoffOptions {
  std::chrono::milliseconds base{200};
  std::chrono::milliseconds cap{5'000};
  std::uint64_t seed = 0x5e7b0ff5u;
};

/// The delay before retry `attempt` (1-based; attempt 0 = first try,
/// never delayed) of retry stream `stream` (the shard index or worker
/// id). Pure function of its arguments — exported so tests can pin it.
std::chrono::milliseconds backoff_delay(const BackoffOptions& options,
                                        std::uint64_t stream,
                                        int attempt);

struct OrchestratorOptions {
  std::string bench;                    // worker binary path
  std::vector<std::string> bench_args;  // forwarded to every worker
  int shards = 3;                       // N in --shard=K/N
  int workers = 0;   // concurrent children; 0 = min(shards, hardware)
  int retries = 1;   // extra attempts per shard after the first
  /// Per-attempt wall budget; zero disables the timeout.
  std::chrono::milliseconds timeout{300'000};
  std::string shard_dir = "orchestrator_shards";  // shard JSONs land here
  /// Keep the per-shard JSONs after a successful merge was persisted
  /// (cleanup is the caller's remove_shard_documents call — never
  /// orchestrate()'s, so the shard documents survive until the merged
  /// document is safely on disk).
  bool keep_shards = false;
  /// Worker launch seam; null = a process-local LocalExecTransport.
  runtime::Transport* transport = nullptr;
  BackoffOptions backoff;
};

/// Outcome of one shard (all its attempts).
struct ShardRun {
  int shard = 0;
  int attempts = 0;
  bool ok = false;
  std::string json_path;
  std::string error;  // why the shard ultimately failed ("" when ok)
  runtime::SubprocessResult last;  // last attempt's process outcome
};

struct OrchestrationResult {
  std::vector<ShardRun> shards;   // indexed by shard number
  std::string merge_error;        // non-empty when merging failed
  JsonValue merged;               // valid iff ok()

  bool ok() const;
  /// Human report: one line per shard, plus the stderr of failures.
  std::string summary() const;
};

/// Runs the N shard workers (at most `workers` concurrently), retries
/// failed/timed-out/unparsable shards up to `retries` extra times,
/// and merges the shard documents. Never throws on worker failure —
/// inspect ok()/summary(); throws ContractViolation only on misuse
/// (no bench, shards < 1).
OrchestrationResult orchestrate(const OrchestratorOptions& options);

/// Removes the per-shard JSON documents (and the shard directory, if
/// it is empty afterwards). Call only once the merged document has
/// been persisted — the shard files are the run's only output until
/// then.
void remove_shard_documents(const OrchestratorOptions& options,
                            const OrchestrationResult& result);

// ---------------------------------------------------------------------
// The elastic work-queue orchestrator.

struct ElasticOrchestratorOptions {
  std::string bench;                    // worker binary path
  std::vector<std::string> bench_args;  // forwarded to every worker
  int workers = 3;                      // concurrent worker loops
  /// Width of the virtual cell space; leave at the default so workers
  /// get the bare --cells=LO..HI form.
  std::size_t span = ShardSpec::kLeaseSpan;
  /// Initial lease-range count; 0 = auto (max(8, 8 * workers)).
  std::size_t ranges = 0;
  /// Lease deadline, mirrored into the worker's transport timeout so a
  /// local child cannot outlive its lease. Zero is invalid.
  std::chrono::milliseconds lease_timeout{300'000};
  /// Straggler policy (see WorkQueueOptions).
  double straggler_factor = 4.0;
  std::chrono::milliseconds straggler_min{1'000};
  /// Failures tolerated before aborting; 0 = auto (2 * ranges + 8).
  std::size_t failure_budget = 0;
  std::string shard_dir = "orchestrator_shards";  // lease JSONs land here
  bool keep_shards = false;
  /// Worker launch seam; null = a process-local LocalExecTransport.
  runtime::Transport* transport = nullptr;
  /// Backoff between a worker's consecutive lease failures.
  BackoffOptions backoff;
  /// Injectable time source for the queue (tests); empty = steady_clock.
  WorkQueueClock clock;
};

/// Outcome of one lease attempt (one worker child).
struct LeaseRun {
  std::uint64_t lease = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;  // virtual range, half-open
  int worker = -1;
  bool ok = false;        // child succeeded and wrote a parsable doc
  bool accepted = false;  // the queue counted the completion
  std::string json_path;
  std::string error;  // why the lease failed ("" when ok)
  runtime::SubprocessResult last;
};

struct ElasticResult {
  std::vector<LeaseRun> leases;  // every lease attempt, in finish order
  WorkQueueReport queue;         // the scheduler's accounting
  std::string merge_error;       // non-empty when merging failed
  /// The merged document, with the orchestration report attached under
  /// the top-level "orchestration" key (a timing key: excluded from
  /// determinism diffs). Valid iff ok().
  JsonValue merged;

  bool ok() const;
  /// Human report: per-worker totals, lease events, failures.
  std::string summary() const;
};

/// Runs the elastic schedule: `workers` concurrent loops lease ranges
/// off a WorkQueue, run `bench --cells=LO..HI --json=...` through the
/// transport, and complete or fail the lease; expired and straggling
/// leases are split and re-leased. Never throws on worker failure —
/// inspect ok()/summary(); throws ContractViolation only on misuse.
ElasticResult orchestrate_elastic(const ElasticOrchestratorOptions& options);

/// Removes the per-lease JSON documents (and the shard directory, if
/// it is empty afterwards). Call only once the merged document has
/// been persisted.
void remove_lease_documents(const ElasticOrchestratorOptions& options,
                            const ElasticResult& result);

}  // namespace setlib::core

#endif  // SETLIB_CORE_ORCHESTRATOR_H
