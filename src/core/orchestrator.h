// The multi-process shard orchestrator: launches the N --shard=K/N
// workers of one bench binary and merges their JSON documents into the
// document the unsharded run would have written.
//
// check_shard_union.py proved that shard unions are bit-identical;
// orchestrate() is the driver that was missing — it partitions (the
// shard flag), dispatches (runtime::Subprocess workers under a
// parallelism cap), survives a dying child (bounded retries; a shard
// that keeps failing is reported with its captured stderr, never
// silently dropped), and recombines (core::merge_shard_docs).
//
// The contract tested in CI: for a deterministic bench,
//   orchestrate(bench, N).merged  ==  unsharded --json document
// bit-identical modulo timing keys (is_timing_key).
#ifndef SETLIB_CORE_ORCHESTRATOR_H
#define SETLIB_CORE_ORCHESTRATOR_H

#include <chrono>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/runtime/subprocess.h"
#include "src/util/json.h"

namespace setlib::core {

struct OrchestratorOptions {
  std::string bench;                    // worker binary path
  std::vector<std::string> bench_args;  // forwarded to every worker
  int shards = 3;                       // N in --shard=K/N
  int workers = 0;   // concurrent children; 0 = min(shards, hardware)
  int retries = 1;   // extra attempts per shard after the first
  /// Per-attempt wall budget; zero disables the timeout.
  std::chrono::milliseconds timeout{300'000};
  std::string shard_dir = "orchestrator_shards";  // shard JSONs land here
  /// Keep the per-shard JSONs after a successful merge was persisted
  /// (cleanup is the caller's remove_shard_documents call — never
  /// orchestrate()'s, so the shard documents survive until the merged
  /// document is safely on disk).
  bool keep_shards = false;
};

/// Outcome of one shard (all its attempts).
struct ShardRun {
  int shard = 0;
  int attempts = 0;
  bool ok = false;
  std::string json_path;
  std::string error;  // why the shard ultimately failed ("" when ok)
  runtime::SubprocessResult last;  // last attempt's process outcome
};

struct OrchestrationResult {
  std::vector<ShardRun> shards;   // indexed by shard number
  std::string merge_error;        // non-empty when merging failed
  JsonValue merged;               // valid iff ok()

  bool ok() const;
  /// Human report: one line per shard, plus the stderr of failures.
  std::string summary() const;
};

/// Runs the N shard workers (at most `workers` concurrently), retries
/// failed/timed-out/unparsable shards up to `retries` extra times,
/// and merges the shard documents. Never throws on worker failure —
/// inspect ok()/summary(); throws ContractViolation only on misuse
/// (no bench, shards < 1).
OrchestrationResult orchestrate(const OrchestratorOptions& options);

/// Removes the per-shard JSON documents (and the shard directory, if
/// it is empty afterwards). Call only once the merged document has
/// been persisted — the shard files are the run's only output until
/// then.
void remove_shard_documents(const OrchestratorOptions& options,
                            const OrchestrationResult& result);

}  // namespace setlib::core

#endif  // SETLIB_CORE_ORCHESTRATOR_H
