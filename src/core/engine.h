// The run engine: one call assembles schedule family + simulator +
// detector + agreement stack, executes, validates, and cross-checks the
// executed schedule's timeliness with the analyzer.
//
// Two schedule families cover both sides of the Theorem 27 frontier:
//
// - kEnforcedRandom ("friendly"): seeded uniform asynchrony constrained
//   so the designated (P, Q) pair stays timely at the configured bound
//   — the constructive witness that the schedule lies in S^i_{j,n}.
//
// - kRotisserie ("adversarial"): min(j-i, t) processes crash at step 0
//   (the proof of Theorem 27 case 2b's fictitious processes) and the
//   remaining live processes take turns stepping solo in growing
//   bursts (the generalized Figure 1 starver). The schedule is still in
//   S^i_{j,n} — any i live processes are timely w.r.t. themselves plus
//   the crashed set, with bound 1 — but no individual k-subset of the
//   live processes is timely, so exactly the runs the theorem declares
//   solvable can stabilize the detector: accusation[A] freezes iff A
//   has >= t+1 frozen Counter entries = (j-i crashed zeros) + (k own
//   members), i.e. iff j-i >= t+1-k. The solvability frontier is thus
//   *observable* in this single family.
#ifndef SETLIB_CORE_ENGINE_H
#define SETLIB_CORE_ENGINE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/spec.h"
#include "src/sched/generators.h"
#include "src/util/arena.h"
#include "src/util/procset.h"

namespace setlib::core {

enum class ScheduleFamily {
  kEnforcedRandom,
  kRotisserie,
  /// Rotating k-subset starvation over all live processes (no crashes):
  /// in S^i_{j,n} for every i > k, yet no k-set is timely w.r.t.
  /// anything — the adversary for the i > k side of Theorem 27.
  kKSubsetStarver,
  // Randomized adversary families (src/sched/families.h), seeded per
  // cell. Unlike the constructions above, these make no S^i_{j,n}
  // membership promise: the witness pair is the canonical
  // (range(0,i), range(0,j)) and the measured witness_bound reports
  // what the adversary actually allowed — the frontier bench maps
  // which families keep which (i, j) bounds.
  kBursty,      // long seeded solo runs per process
  kStarvation,  // seeded victim silenced for geometric stretches
  kCrashProne,  // tail processes permanently silenced at seeded steps
  kGst,         // chaotic seeded prefix, then round-robin
  // Execution-reactive adversaries (src/sched/reactive.h): the
  // simulator publishes an ObservationFeed each step and the generator
  // reacts to it. Same canonical witness pair as the randomized
  // families; reactions are a pure function of (observations, seed),
  // so runs stay bit-identical across threads and shards.
  kWindowStretcher,  // feed-scaled silencing epochs, growing stretches
  kDecisionChaser,   // silences whoever is nearest to deciding
  kBudgetCrasher,    // spends the t crash budget at observed worst moments
};

struct RunConfig {
  AgreementSpec spec;
  SystemSpec system;
  ScheduleFamily family = ScheduleFamily::kEnforcedRandom;

  std::uint64_t seed = 1;
  std::int64_t max_steps = 1'500'000;
  std::int64_t timeliness_bound = 3;  // enforced bound (friendly family)
  std::int64_t rotisserie_growth = 512;  // steps added per phase
  /// Burst / starvation-stretch scale of the randomized adversary
  /// families (sched::FamilyParams::scale).
  std::int64_t adversary_scale = 64;
  std::int64_t stabilization_window = 6;  // detector quiescence (iterations)

  /// Extra crashes (friendly family only; the rotisserie derives its own
  /// crash set). Must leave the timely set P alive to keep the schedule
  /// in-system.
  std::optional<sched::CrashPlan> crashes;

  /// Initial values; default proposals[p] = 100 + p.
  std::vector<std::int64_t> proposals;

  /// Run the full step budget even after every correct process decided
  /// (so detector telemetry reflects the long-run behaviour; used by
  /// the Theorem 27 matrix, where early lucky decisions must not
  /// truncate the oscillation evidence).
  bool run_full_budget = false;
};

struct DetectorReport {
  bool used = false;  // false for the trivial (k > t) algorithm
  bool stabilized = false;
  ProcSet winnerset;
  bool winnerset_has_correct = false;
  /// Abstract k-anti-Omega property on this run: processes that every
  /// correct process kept trusting over the trailing window, and
  /// whether a correct one is among them.
  ProcSet trusted;
  bool abstract_ok = false;
  std::int64_t min_iterations = 0;
  std::int64_t max_iterations = 0;
  std::int64_t total_winnerset_changes = 0;
};

struct RunReport {
  // Outcome per the Section 3 properties.
  bool terminated = false;   // all correct processes decided
  bool agreement_ok = false; // <= k distinct decisions
  bool validity_ok = false;
  bool success = false;      // conjunction
  int distinct_decisions = 0;
  std::vector<std::optional<std::int64_t>> decisions;

  // Run facts.
  std::int64_t steps_executed = 0;
  ProcSet faulty;
  std::string algorithm;  // "trivial" or "kanti-omega+paxos"

  // Witness cross-check: measured min bound of (P, Q) on the executed
  // schedule (the ground-truth S^i_{j,n} membership evidence).
  ProcSet timely_set;
  ProcSet observed_set;
  std::int64_t witness_bound = 0;

  /// Replay hash of the executed schedule (sched::schedule_hash):
  /// pins the exact execution across reruns, thread counts, and shard
  /// merges. Rendered as a 16-hex-digit string in JSON rows.
  std::uint64_t schedule_hash = 0;

  // Allocation accounting of the analysis phase (packing + witness
  // bound), measured as the run's delta on its cell arena: upstream
  // blocks acquired beyond the arena reserve, and their bytes. Zero is
  // the steady state — the pack-once pipeline's no-heap-traffic claim,
  // pinned per row in the BENCH_*.json artifacts. Deterministic facts
  // (pure function of config + reserve size), merged as kSame.
  std::int64_t allocs_per_op = 0;
  std::int64_t bytes_per_op = 0;

  DetectorReport detector;
  std::string detail;
};

RunReport run_agreement(const RunConfig& config);
/// Same run, with the analysis phase's packed schedule and scan
/// scratch placed on `arena` (inside a FrameScope; the arena's frame
/// position is restored before returning). The report's
/// allocs_per_op / bytes_per_op are the arena's counter deltas across
/// the analysis. The no-arena overload uses a run-local arena.
RunReport run_agreement(const RunConfig& config, util::ArenaAllocator& arena);

}  // namespace setlib::core

#endif  // SETLIB_CORE_ENGINE_H
