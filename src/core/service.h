// Agreement-as-a-service: the long-lived serving harness.
//
// ServiceHarness turns the one-shot experiment stack into a traffic
// server: a LoadGen request stream is admitted through a bounded FIFO
// queue (overflow is shed, never silently dropped from the accounting),
// admitted requests are grouped into batches of up to B, and each batch
// is decided by ONE schedule-enforcer pass — a MultiShotAgreement log
// with B slots (detector + k Paxos instances per slot) run under an
// S^k_{t+1,n}-enforced schedule — so the detector-stabilization cost is
// amortized over the whole batch instead of paid per request.
//
// Two serving modes share that batch engine:
//
// - Closed loop (the determinism mode): arrivals, admission, batching,
//   and per-request latency all live in *virtual ticks*. The admission
//   plan — a single-server discrete-event pass over the seeded arrival
//   stream with a deterministic batch service-time model — is a pure
//   function of the ServiceConfig, cheap enough (O(requests) integer
//   arithmetic) that every shard computes the full global plan
//   identically. The expensive agreement batches then fan out across
//   the ExperimentRunner's persistent pool, restricted to the runner's
//   shard slice, and stream into ReportSinks as an ordinary grid
//   section (one row per batch). Aggregate stats are therefore
//   bit-identical at any thread count, and the N-shard JSON documents
//   merge through core::merge_shard_docs unchanged: row-derived facts
//   are recomputed from the union rows, admission/SLO facts are global
//   plan invariants annotated MergeRule::kSame, and per-shard request
//   counters are annotated kSum.
//
// - Open loop (the throughput mode): arrivals are paced on the wall
//   clock at a target QPS, the queue is drained in rounds, and
//   latency is measured in real microseconds. Every fact it emits is
//   named as a timing key (contains "wall"/"seconds"), so the
//   existing is_timing_key rule excludes it from determinism diffs
//   and shard merges by construction.
//
// Threading model: ServiceHarness owns no mutex. The admission plan is
// computed single-threaded; batch execution parallelizes only through
// ExperimentRunner::run(), whose pool synchronizes internally
// (runtime/executor.h), and per-batch results are thread-owned until
// the runner's ordered collection phase.
#ifndef SETLIB_CORE_SERVICE_H
#define SETLIB_CORE_SERVICE_H

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/loadgen.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/spec.h"

namespace setlib::core {

struct ServiceConfig {
  /// The agreement instance every slot solves. k <= t is required (the
  /// serving stack always runs the detector + Paxos path; the trivial
  /// k > t algorithm has no leader to amortize).
  AgreementSpec spec{1, 1, 4};

  std::int64_t requests = 1'000'000;  // closed-loop stream length
  int batch = 64;                     // B: max slots per agreement pass
  std::int64_t queue_cap = 8192;      // bounded admission queue
  std::uint64_t seed = 1;
  std::int64_t mean_interarrival_ticks = 8;

  /// Virtual service-time model of the closed-loop admission plan:
  /// serving a batch of b requests occupies the server for
  ///   base + per_request * b + jitter  ticks,
  /// jitter drawn deterministically from the batch index in
  /// [0, jitter_ticks). The model is what keeps the plan a pure
  /// function of the config (computable on every shard without running
  /// any agreement); the *measured* cost of each batch — executed
  /// simulator steps — is reported separately through the grid rows.
  std::int64_t service_base_ticks = 96;
  std::int64_t service_ticks_per_request = 4;
  std::int64_t service_jitter_ticks = 32;

  /// Latency SLO over the closed-loop virtual-tick latencies: the
  /// target fraction of admitted requests that must complete within
  /// slo_latency_ticks. Error-budget burn is
  /// violation_rate / (1 - slo_target): 1.0 = the budget is exactly
  /// spent, above 1.0 the SLO is blown.
  std::int64_t slo_latency_ticks = 2000;
  double slo_target = 0.999;

  /// Open-loop SLO threshold (wall microseconds).
  std::int64_t open_slo_latency_us = 50'000;

  /// Enforced (P, Q) = (first k, first t+1) timeliness bound of each
  /// batch's schedule.
  std::int64_t timeliness_bound = 3;
  /// Per-slot step budget; a batch of b slots may execute at most
  /// max_steps_per_slot * max(b, 1) simulator steps.
  std::int64_t max_steps_per_slot = 6000;
  std::int64_t stabilization_window = 6;  // detector quiescence check

  void validate() const;
};

/// Latency SLO summary over a latency sample set (virtual ticks or
/// wall microseconds — the math is unit-agnostic). Percentiles are
/// nearest-rank; NaN when there are no samples.
struct SloReport {
  std::int64_t samples = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
  std::int64_t violations = 0;   // samples above the threshold
  double violation_rate = 0.0;   // violations / samples
  double error_budget_burn = 0.0;  // violation_rate / (1 - target)
};

/// Nearest-rank percentile of `latencies` at q in [0, 100]: the
/// ceil(q/100 * n)-th smallest sample (1-based), NaN on empty input.
double latency_percentile(const std::vector<std::int64_t>& latencies,
                          double q);

SloReport compute_slo(const std::vector<std::int64_t>& latencies,
                      std::int64_t slo_latency, double slo_target);

/// The closed-loop admission plan: the deterministic discrete-event
/// pass over the arrival stream. Pure function of the ServiceConfig —
/// every shard computes the identical plan.
struct AdmissionPlan {
  /// One batch = the admitted-stream slice
  /// [first_admitted, first_admitted + size).
  struct Batch {
    std::size_t first_admitted = 0;
    int size = 0;
  };

  std::vector<Request> admitted;  // in arrival (= admission) order
  std::vector<std::int64_t> latency_ticks;  // per admitted request
  std::vector<Batch> batches;

  std::int64_t offered = 0;
  std::int64_t accepted = 0;
  std::int64_t shed = 0;
  std::int64_t queue_depth_max = 0;
  double queue_depth_mean = 0.0;  // depth observed at each arrival
  SloReport slo;                  // over latency_ticks
};

/// Measured outcome of one executed batch (one enforcer pass).
struct BatchOutcome {
  std::int64_t steps = 0;
  bool success = false;  // every slot decided the client command
  int distinct_decisions = 0;  // max distinct values over the slots
  std::int64_t decided_ok = 0;  // slots decided with the command
  bool detector_ok = false;
  std::int64_t witness_bound = 0;
  std::vector<std::int64_t> decisions;  // per slot (-1 = undecided)
  double seconds = 0.0;  // wall time of this batch (timing fact)
};

struct ClosedLoopReport {
  AdmissionPlan plan;   // global: identical on every shard
  SectionStats section;  // this shard's batch grid section
  std::size_t batches_run = 0;      // this shard
  std::int64_t shard_requests = 0;  // requests in this shard's batches
  std::int64_t shard_decided_ok = 0;
  /// (request id, decided value) per request in this shard's batches,
  /// in admitted order — the batching-equivalence observable.
  std::vector<std::pair<std::int64_t, std::int64_t>> decisions;
};

struct OpenLoopReport {
  std::int64_t offered = 0;
  std::int64_t served = 0;
  std::int64_t shed = 0;
  std::int64_t unserved = 0;  // still queued when the clock ran out
  double wall_seconds = 0.0;
  double qps_target = 0.0;
  double qps_achieved = 0.0;
  SloReport slo;  // over wall microseconds
};

class ServiceHarness {
 public:
  explicit ServiceHarness(ServiceConfig config);

  const ServiceConfig& config() const noexcept { return config_; }

  /// The deterministic admission/batching plan (closed loop).
  AdmissionPlan plan() const;

  /// Executes batch `index` of `plan`: one MultiShotAgreement log with
  /// batch-size slots under the enforced schedule seeded from
  /// derive_cell_seed(config.seed, index). Pure function of
  /// (config, plan, index) — safe to fan out across pool workers.
  BatchOutcome run_batch(const AdmissionPlan& plan,
                         std::size_t index) const;

  /// Closed-loop serving: computes the global plan, executes this
  /// runner-shard's slice of the batches on the persistent pool, and
  /// streams one grid-section row per batch into `sinks` (cell order,
  /// exactly like ExperimentRunner::run over a SweepGrid). When `json`
  /// is given, the section is annotated with the admission/SLO facts
  /// (kSame: global plan invariants) and the per-shard request
  /// counters (kSum), so orchestrated N-shard documents merge
  /// bit-identically to the unsharded run.
  ClosedLoopReport run_closed_loop(
      ExperimentRunner& runner,
      const std::vector<ReportSink*>& sinks = {},
      JsonSink* json = nullptr) const;

  /// Open-loop serving: wall-clock arrivals at `target_qps` for
  /// `duration`, bounded-queue backpressure, batches drained in rounds
  /// through the runner's pool. Emits a hand-fed "open_loop" JSON
  /// section whose keys are all timing keys.
  OpenLoopReport run_open_loop(ExperimentRunner& runner,
                               std::int64_t target_qps,
                               std::chrono::seconds duration,
                               JsonSink* json = nullptr) const;

 private:
  /// The shared batch engine: decides `commands` (one slot each) with
  /// one detector + MultiShotAgreement stack under an enforced schedule
  /// drawn from `seed`. Both serving modes funnel through this.
  BatchOutcome run_commands(const std::vector<std::int64_t>& commands,
                            std::uint64_t seed) const;

  std::int64_t service_ticks(std::size_t batch_index,
                             int batch_size) const;

  ServiceConfig config_;
};

}  // namespace setlib::core

#endif  // SETLIB_CORE_SERVICE_H
