#include "src/core/service.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <thread>

#include "src/agreement/multishot.h"
#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/assert.h"

namespace setlib::core {

namespace {

/// Seed-space salts so the admission plan's service-time jitter and the
/// open-loop batch seeds never collide with the closed-loop batch
/// seeds, which use the unsalted (config seed, batch index) stream.
constexpr std::uint64_t kJitterSalt = 0x73657276696365ULL;   // "service"
constexpr std::uint64_t kOpenLoopSalt = 0x6f70656e6c6fULL;   // "openlo"

/// Nearest-rank pick from an already-sorted sample set.
double sorted_percentile(const std::vector<std::int64_t>& sorted,
                         double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 100.0);
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return static_cast<double>(sorted[rank - 1]);
}

}  // namespace

void ServiceConfig::validate() const {
  spec.validate();
  // The serving stack always runs the detector + Paxos path; the
  // trivial k > t algorithm has no leader for batching to amortize.
  SETLIB_EXPECTS(spec.k <= spec.t);
  SETLIB_EXPECTS(requests >= 0);
  SETLIB_EXPECTS(batch >= 1);
  SETLIB_EXPECTS(queue_cap >= 1);
  SETLIB_EXPECTS(mean_interarrival_ticks >= 0);
  SETLIB_EXPECTS(service_base_ticks >= 0);
  SETLIB_EXPECTS(service_ticks_per_request >= 0);
  SETLIB_EXPECTS(service_jitter_ticks >= 0);
  SETLIB_EXPECTS(slo_latency_ticks >= 0);
  SETLIB_EXPECTS(slo_target > 0.0 && slo_target < 1.0);
  SETLIB_EXPECTS(open_slo_latency_us >= 0);
  SETLIB_EXPECTS(timeliness_bound >= 1);
  SETLIB_EXPECTS(max_steps_per_slot >= 1);
  SETLIB_EXPECTS(stabilization_window >= 0);
}

double latency_percentile(const std::vector<std::int64_t>& latencies,
                          double q) {
  std::vector<std::int64_t> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  return sorted_percentile(sorted, q);
}

SloReport compute_slo(const std::vector<std::int64_t>& latencies,
                      std::int64_t slo_latency, double slo_target) {
  std::vector<std::int64_t> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  SloReport slo;
  slo.samples = static_cast<std::int64_t>(sorted.size());
  slo.p50 = sorted_percentile(sorted, 50.0);
  slo.p99 = sorted_percentile(sorted, 99.0);
  slo.p999 = sorted_percentile(sorted, 99.9);
  slo.max = sorted.empty() ? std::numeric_limits<double>::quiet_NaN()
                           : static_cast<double>(sorted.back());
  for (const std::int64_t latency : sorted) {
    if (latency > slo_latency) ++slo.violations;
  }
  slo.violation_rate =
      slo.samples > 0 ? static_cast<double>(slo.violations) /
                            static_cast<double>(slo.samples)
                      : 0.0;
  const double budget = 1.0 - slo_target;
  slo.error_budget_burn = budget > 0.0 ? slo.violation_rate / budget : 0.0;
  return slo;
}

ServiceHarness::ServiceHarness(ServiceConfig config) : config_(config) {
  config_.validate();
}

std::int64_t ServiceHarness::service_ticks(std::size_t batch_index,
                                           int batch_size) const {
  std::int64_t ticks =
      config_.service_base_ticks +
      config_.service_ticks_per_request * batch_size;
  if (config_.service_jitter_ticks > 0) {
    const std::uint64_t mix =
        derive_cell_seed(config_.seed ^ kJitterSalt, batch_index);
    ticks += static_cast<std::int64_t>(
        mix % static_cast<std::uint64_t>(config_.service_jitter_ticks));
  }
  return ticks;
}

AdmissionPlan ServiceHarness::plan() const {
  LoadGen gen(LoadGenConfig{config_.requests, config_.seed,
                            config_.mean_interarrival_ticks});
  const std::vector<Request> arrivals = gen.arrivals();

  AdmissionPlan plan;
  plan.offered = config_.requests;
  plan.admitted.reserve(arrivals.size());
  plan.latency_ticks.reserve(arrivals.size());

  // Single-server discrete-event walk. The queue is the
  // admitted-but-unserved suffix admitted[served..]; the server packs
  // the longest causal batch (members must have arrived by the batch's
  // start tick) up to the configured width.
  std::size_t served = 0;
  std::int64_t server_free = 0;
  std::int64_t depth_sum = 0;

  const auto serve_front = [&](std::int64_t horizon, bool drain) {
    if (served == plan.admitted.size()) return false;
    const std::int64_t start =
        std::max(server_free, plan.admitted[served].arrival_tick);
    if (!drain && start >= horizon) return false;
    int size = 0;
    while (size < config_.batch &&
           served + static_cast<std::size_t>(size) < plan.admitted.size() &&
           plan.admitted[served + static_cast<std::size_t>(size)]
                   .arrival_tick <= start) {
      ++size;
    }
    const std::int64_t completion =
        start + service_ticks(plan.batches.size(), size);
    for (int s = 0; s < size; ++s) {
      plan.latency_ticks.push_back(
          completion -
          plan.admitted[served + static_cast<std::size_t>(s)].arrival_tick);
    }
    plan.batches.push_back(AdmissionPlan::Batch{served, size});
    served += static_cast<std::size_t>(size);
    server_free = completion;
    return true;
  };

  for (const Request& request : arrivals) {
    // Let the server catch up to this arrival before the admission
    // decision, so the observed queue depth is the depth at the
    // arrival instant.
    while (serve_front(request.arrival_tick, /*drain=*/false)) {
    }
    const auto depth =
        static_cast<std::int64_t>(plan.admitted.size() - served);
    if (depth >= config_.queue_cap) {
      ++plan.shed;
    } else {
      plan.admitted.push_back(request);
    }
    const auto observed =
        static_cast<std::int64_t>(plan.admitted.size() - served);
    plan.queue_depth_max = std::max(plan.queue_depth_max, observed);
    depth_sum += observed;
  }
  while (serve_front(0, /*drain=*/true)) {
  }
  SETLIB_ASSERT(served == plan.admitted.size());
  SETLIB_ASSERT(plan.latency_ticks.size() == plan.admitted.size());

  plan.accepted = static_cast<std::int64_t>(plan.admitted.size());
  SETLIB_ASSERT(plan.accepted + plan.shed == plan.offered);
  plan.queue_depth_mean =
      plan.offered > 0 ? static_cast<double>(depth_sum) /
                             static_cast<double>(plan.offered)
                       : 0.0;
  plan.slo = compute_slo(plan.latency_ticks, config_.slo_latency_ticks,
                         config_.slo_target);
  return plan;
}

BatchOutcome ServiceHarness::run_commands(
    const std::vector<std::int64_t>& commands, std::uint64_t seed) const {
  const int n = config_.spec.n;
  const int k = config_.spec.k;
  const int t = config_.spec.t;
  const int slots = static_cast<int>(commands.size());
  SETLIB_EXPECTS(slots >= 1);

  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
  agreement::MultiShotAgreement log(
      mem, agreement::MultiShotAgreement::Params{n, k, t, slots},
      &detector);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "kanti-omega");
    // Every replica proposes the client's command for each slot, so
    // Paxos validity pins the decision to the command itself — which
    // is what makes B=1 and B=64 decide identically.
    log.install(sim.process(p), p, commands);
  }

  const ProcSet timely = ProcSet::range(0, k);
  const ProcSet observed = ProcSet::range(0, t + 1);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, seed);
  std::vector<sched::TimelinessConstraint> constraints;
  constraints.emplace_back(timely, observed, config_.timeliness_bound);
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               sched::CrashPlan::none(n));

  const ProcSet everyone = ProcSet::universe(n);
  const std::int64_t budget =
      config_.max_steps_per_slot * static_cast<std::int64_t>(slots);
  BatchOutcome out;
  out.steps = sim.run_until(gen, budget,
                            [&] { return log.all_decided(everyone); });

  out.decisions.assign(static_cast<std::size_t>(slots), -1);
  int max_distinct = 0;
  for (int s = 0; s < slots; ++s) {
    const std::vector<std::int64_t> values = log.slot_values(s, everyone);
    max_distinct = std::max(max_distinct, static_cast<int>(values.size()));
    bool slot_ok = !values.empty();
    for (const std::int64_t value : values) {
      if (value != commands[static_cast<std::size_t>(s)]) slot_ok = false;
    }
    if (!values.empty()) {
      out.decisions[static_cast<std::size_t>(s)] = values.front();
    }
    if (slot_ok) ++out.decided_ok;
  }
  out.distinct_decisions = max_distinct;
  out.success = log.all_decided(everyone) &&
                out.decided_ok == static_cast<std::int64_t>(slots);

  // Detector quiescence over the trailing window — the engine's
  // "eventually forever on a finite run" check.
  std::int64_t min_it = -1;
  for (Pid p = 0; p < n; ++p) {
    const std::int64_t it = detector.view(p).iterations;
    min_it = min_it < 0 ? it : std::min(min_it, it);
  }
  const std::int64_t window =
      std::max(config_.stabilization_window,
               std::max<std::int64_t>(min_it, 0) / 3);
  const auto prop = fd::check_kantiomega(detector, everyone, window);
  out.detector_ok = prop.abstract_ok;

  out.witness_bound =
      sched::min_timeliness_bound(sim.executed(), timely, observed);
  return out;
}

BatchOutcome ServiceHarness::run_batch(const AdmissionPlan& plan,
                                       std::size_t index) const {
  SETLIB_EXPECTS(index < plan.batches.size());
  const AdmissionPlan::Batch& batch = plan.batches[index];
  std::vector<std::int64_t> commands;
  commands.reserve(static_cast<std::size_t>(batch.size));
  for (int s = 0; s < batch.size; ++s) {
    commands.push_back(
        plan.admitted[batch.first_admitted + static_cast<std::size_t>(s)]
            .command);
  }
  return run_commands(commands, derive_cell_seed(config_.seed, index));
}

ClosedLoopReport ServiceHarness::run_closed_loop(
    ExperimentRunner& runner, const std::vector<ReportSink*>& sinks,
    JsonSink* json) const {
  ClosedLoopReport out;
  out.plan = plan();
  const AdmissionPlan& admission = out.plan;
  const std::size_t total = admission.batches.size();

  std::vector<ReportSink*> all_sinks = sinks;
  if (json != nullptr) all_sinks.push_back(json);

  for (ReportSink* sink : all_sinks) {
    sink->begin_section("closed_loop", total, runner.options().shard);
  }

  const auto [begin, end] = runner.shard_range(total);
  std::vector<BatchOutcome> outcomes(end - begin);
  const WallTimer timer;
  if (!outcomes.empty()) {
    const std::size_t grain =
        runner.options().grain != 0 ? runner.options().grain : 1;
    runner.pool().for_each(
        outcomes.size(),
        [&](std::size_t i) {
          const WallTimer batch_timer;
          outcomes[i] = run_batch(admission, begin + i);
          outcomes[i].seconds = batch_timer.seconds();
        },
        grain);
  }

  SectionStats stats;
  stats.name = "closed_loop";
  stats.grid_cells = total;
  stats.cells = outcomes.size();
  stats.repeats = 1;
  stats.shard = runner.options().shard;
  stats.wall_seconds = timer.seconds();
  stats.runs_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.cells) / stats.wall_seconds
          : 0.0;

  for (std::size_t i = 0; i < outcomes.size(); ++i) {  // batch order
    const std::size_t global = begin + i;
    const BatchOutcome& outcome = outcomes[i];
    const AdmissionPlan::Batch& batch = admission.batches[global];
    stats.steps.add(static_cast<double>(outcome.steps));
    stats.cell_seconds.add(outcome.seconds);

    // One synthesized grid cell per batch, so the existing sinks (and
    // the shard-merge path behind them) see a normal sweep section.
    SweepCell cell;
    cell.index = global;
    cell.repeat = 0;
    cell.config.spec = config_.spec;
    cell.config.system =
        SystemSpec{config_.spec.k, config_.spec.t + 1, config_.spec.n};
    cell.config.family = ScheduleFamily::kEnforcedRandom;
    cell.config.seed = derive_cell_seed(config_.seed, global);
    cell.config.timeliness_bound = config_.timeliness_bound;
    cell.config.max_steps =
        config_.max_steps_per_slot *
        static_cast<std::int64_t>(std::max(batch.size, 1));
    cell.config.stabilization_window = config_.stabilization_window;

    RunReport report;
    report.success = outcome.success;
    report.terminated = outcome.success;
    report.agreement_ok = outcome.success;
    report.validity_ok = outcome.success;
    report.distinct_decisions = outcome.distinct_decisions;
    report.steps_executed = outcome.steps;
    report.witness_bound = outcome.witness_bound;
    report.algorithm = "kanti-omega+multishot";
    report.detector.used = true;
    report.detector.abstract_ok = outcome.detector_ok;
    report.detector.stabilized = outcome.detector_ok;

    for (ReportSink* sink : all_sinks) {
      sink->cell(cell, report, outcome.seconds);
    }

    for (int s = 0; s < batch.size; ++s) {
      const Request& request =
          admission
              .admitted[batch.first_admitted + static_cast<std::size_t>(s)];
      out.decisions.emplace_back(
          request.id, outcome.decisions[static_cast<std::size_t>(s)]);
    }
    out.shard_requests += batch.size;
    out.shard_decided_ok += outcome.decided_ok;
  }
  for (ReportSink* sink : all_sinks) sink->end_section(stats);

  if (json != nullptr) {
    // Global plan invariants: every shard computes the identical
    // admission plan, so these must agree across shards (kSame). The
    // request counters below them cover only this shard's batches and
    // sum (kSum).
    json->annotate("requests_offered",
                   static_cast<double>(admission.offered),
                   MergeRule::kSame);
    json->annotate("requests_accepted",
                   static_cast<double>(admission.accepted),
                   MergeRule::kSame);
    json->annotate("requests_shed", static_cast<double>(admission.shed),
                   MergeRule::kSame);
    json->annotate("queue_cap", static_cast<double>(config_.queue_cap),
                   MergeRule::kSame);
    json->annotate("batch_max", static_cast<double>(config_.batch),
                   MergeRule::kSame);
    json->annotate("queue_depth_max",
                   static_cast<double>(admission.queue_depth_max),
                   MergeRule::kSame);
    json->annotate("queue_depth_mean", admission.queue_depth_mean,
                   MergeRule::kSame);
    json->annotate("latency_p50_ticks", admission.slo.p50,
                   MergeRule::kSame);
    json->annotate("latency_p99_ticks", admission.slo.p99,
                   MergeRule::kSame);
    json->annotate("latency_p999_ticks", admission.slo.p999,
                   MergeRule::kSame);
    json->annotate("latency_max_ticks", admission.slo.max,
                   MergeRule::kSame);
    json->annotate("slo_latency_ticks",
                   static_cast<double>(config_.slo_latency_ticks),
                   MergeRule::kSame);
    json->annotate("slo_target", config_.slo_target, MergeRule::kSame);
    json->annotate("slo_violations",
                   static_cast<double>(admission.slo.violations),
                   MergeRule::kSame);
    json->annotate("error_budget_burn", admission.slo.error_budget_burn,
                   MergeRule::kSame);
    json->annotate("batch_requests",
                   static_cast<double>(out.shard_requests),
                   MergeRule::kSum);
    json->annotate("decided_ok",
                   static_cast<double>(out.shard_decided_ok),
                   MergeRule::kSum);
  }

  out.section = stats;
  out.batches_run = outcomes.size();
  return out;
}

OpenLoopReport ServiceHarness::run_open_loop(ExperimentRunner& runner,
                                             std::int64_t target_qps,
                                             std::chrono::seconds duration,
                                             JsonSink* json) const {
  SETLIB_EXPECTS(target_qps > 0);
  SETLIB_EXPECTS(duration.count() >= 0);

  // Only the stateless command derivation is reused here; arrival
  // pacing comes from the wall clock.
  LoadGen gen(LoadGenConfig{0, config_.seed,
                            config_.mean_interarrival_ticks});

  using Clock = std::chrono::steady_clock;
  struct Pending {
    std::int64_t id = 0;
    Clock::time_point enqueued;
  };

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline = start + duration;
  std::deque<Pending> queue;
  std::vector<std::int64_t> latency_us;
  OpenLoopReport out;
  out.qps_target = static_cast<double>(target_qps);
  std::int64_t next_id = 0;
  std::size_t open_batches = 0;
  const int lanes = std::max(1, runner.pool().threads());

  for (Clock::time_point now = Clock::now(); now < deadline;
       now = Clock::now()) {
    // Admit everything the pacing says should have arrived by `now`;
    // the queue cap sheds the overflow, never blocks the generator.
    const std::chrono::duration<double> elapsed = now - start;
    const auto due = static_cast<std::int64_t>(
        elapsed.count() * static_cast<double>(target_qps));
    while (next_id < due) {
      ++out.offered;
      if (static_cast<std::int64_t>(queue.size()) >= config_.queue_cap) {
        ++out.shed;
      } else {
        queue.push_back(Pending{next_id, now});
      }
      ++next_id;
    }
    if (queue.empty()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }

    // Drain one round: up to one batch per pool lane, fanned out
    // through the persistent workers.
    std::vector<std::vector<Pending>> batches;
    while (!queue.empty() &&
           static_cast<int>(batches.size()) < lanes) {
      std::vector<Pending> members;
      while (!queue.empty() &&
             static_cast<int>(members.size()) < config_.batch) {
        members.push_back(queue.front());
        queue.pop_front();
      }
      batches.push_back(std::move(members));
    }
    std::vector<std::uint64_t> seeds(batches.size());
    std::vector<Clock::time_point> completed(batches.size());
    for (std::size_t i = 0; i < batches.size(); ++i) {
      seeds[i] = derive_cell_seed(config_.seed ^ kOpenLoopSalt,
                                  open_batches + i);
    }
    open_batches += batches.size();
    runner.pool().for_each(
        batches.size(),
        [&](std::size_t i) {
          std::vector<std::int64_t> commands;
          commands.reserve(batches[i].size());
          for (const Pending& pending : batches[i]) {
            commands.push_back(gen.command(pending.id));
          }
          run_commands(commands, seeds[i]);
          completed[i] = Clock::now();
        },
        1);
    for (std::size_t i = 0; i < batches.size(); ++i) {
      for (const Pending& pending : batches[i]) {
        latency_us.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                completed[i] - pending.enqueued)
                .count());
      }
      out.served += static_cast<std::int64_t>(batches[i].size());
    }
  }

  out.unserved = static_cast<std::int64_t>(queue.size());
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.qps_achieved = out.wall_seconds > 0.0
                         ? static_cast<double>(out.served) /
                               out.wall_seconds
                         : 0.0;
  out.slo = compute_slo(latency_us, config_.open_slo_latency_us,
                        config_.slo_target);

  if (json != nullptr) {
    // Every key carries a "wall"/"seconds" substring on purpose: open
    // loop is wall-clock territory, so the is_timing_key rule excludes
    // all of it from determinism diffs and shard merges.
    json->section(
        "open_loop", static_cast<std::size_t>(out.served),
        out.wall_seconds,
        {{"offered_wall", static_cast<double>(out.offered)},
         {"served_wall", static_cast<double>(out.served)},
         {"shed_wall", static_cast<double>(out.shed)},
         {"unserved_wall", static_cast<double>(out.unserved)},
         {"qps_target_wall", out.qps_target},
         {"qps_achieved_wall", out.qps_achieved},
         {"latency_p50_seconds", out.slo.p50 * 1e-6},
         {"latency_p99_seconds", out.slo.p99 * 1e-6},
         {"latency_p999_seconds", out.slo.p999 * 1e-6},
         {"latency_max_seconds", out.slo.max * 1e-6},
         {"slo_violations_wall",
          static_cast<double>(out.slo.violations)},
         {"error_budget_burn_wall", out.slo.error_budget_burn}});
  }
  return out;
}

}  // namespace setlib::core
