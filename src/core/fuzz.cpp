#include "src/core/fuzz.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/sweep.h"
#include "src/sched/analyzer.h"
#include "src/sched/families.h"
#include "src/sched/reactive.h"
#include "src/util/assert.h"
#include "src/util/rng.h"

namespace setlib::core {

namespace {

/// The search's adversary axis: every registry family, then every
/// reactive kind — a fixed order so trial -> adversary is index-pure.
struct AdversarySpec {
  bool reactive = false;
  sched::FamilyKind family = sched::FamilyKind::kUniform;
  sched::ReactiveKind rkind = sched::ReactiveKind::kWindowStretcher;
  const char* name = "";
};

const std::vector<AdversarySpec>& adversary_space() {
  static const std::vector<AdversarySpec> space = [] {
    std::vector<AdversarySpec> out;
    for (const sched::FamilyInfo& info : sched::schedule_families()) {
      AdversarySpec spec;
      spec.reactive = false;
      spec.family = info.kind;
      spec.name = info.name;
      out.push_back(spec);
    }
    for (const sched::ReactiveInfo& info : sched::reactive_adversaries()) {
      AdversarySpec spec;
      spec.reactive = true;
      spec.rkind = info.kind;
      spec.name = info.name;
      out.push_back(spec);
    }
    return out;
  }();
  return space;
}

/// All scored cells: 1 <= i < j <= n. (i == j is the asynchronous
/// system: the P == Q pair always has bound 1, so nothing can regress.)
std::vector<std::pair<int, int>> cell_space(int n) {
  std::vector<std::pair<int, int>> cells;
  for (int i = 1; i < n; ++i) {
    for (int j = i + 1; j <= n; ++j) cells.emplace_back(i, j);
  }
  return cells;
}

sched::FamilyParams baseline_params(int n, std::int64_t len) {
  sched::FamilyParams params;
  params.n = n;
  params.crash_count = std::min(1, n - 1);
  params.crash_horizon = std::max<std::int64_t>(1, len / 2);
  params.gst = std::max<std::int64_t>(1, len / 4);
  return params;
}

/// Deterministic trial schedule: a pure function of (adversary, n,
/// len, trial_seed). Parameters jitter from a seed-derived stream so
/// the search actually explores the params axis.
sched::Schedule generate_trial(const AdversarySpec& adv, int n,
                               std::int64_t len, std::uint64_t trial_seed) {
  Rng jitter(derive_cell_seed(trial_seed, 0));
  const std::uint64_t gen_seed = derive_cell_seed(trial_seed, 1);
  if (!adv.reactive) {
    sched::FamilyParams params = baseline_params(n, len);
    params.scale = std::int64_t{1} << jitter.next_in(3, 9);  // 8..512
    params.crash_count =
        n >= 2 ? static_cast<int>(jitter.next_in(1, n - 1)) : 0;
    auto gen = sched::make_family(adv.family, params, gen_seed);
    return sched::generate(*gen, len);
  }
  sched::ReactiveParams params;
  params.n = n;
  params.stretch = std::int64_t{1} << jitter.next_in(3, 9);
  params.victims = static_cast<int>(jitter.next_in(0, n - 1));  // 0 = auto
  params.crash_budget =
      n >= 2 ? static_cast<int>(jitter.next_in(1, n - 1)) : 0;
  auto gen = sched::make_reactive(adv.rkind, params, gen_seed);
  return sched::generate_observed(*gen, len);
}

/// Best-pair verdicts for every cell of one schedule.
std::vector<sched::TimelyPair> score_all_cells(
    const sched::Schedule& s, const std::vector<std::pair<int, int>>& cells) {
  const sched::PackedSchedule packed(s);
  std::vector<sched::TimelyPair> out;
  out.reserve(cells.size());
  for (const auto& [i, j] : cells) {
    out.push_back(sched::RankedPairScan(packed, i, j).best_pair());
  }
  return out;
}

/// Best-pair bound of one schedule, re-packing into `scratch`: the
/// minimization loop evaluates hundreds of candidate schedules per
/// finding, and repack() recycles the packed word storage across all
/// of them instead of allocating a fresh PackedSchedule per eval.
std::int64_t packed_best_bound(sched::PackedSchedule& scratch,
                               const sched::Schedule& s, int i, int j) {
  if (s.empty()) return 1;
  scratch.repack(s);
  return sched::RankedPairScan(scratch, i, j).best_pair().bound;
}

std::int64_t packed_best_bound(const sched::Schedule& s, int i, int j) {
  sched::PackedSchedule scratch;
  return packed_best_bound(scratch, s, i, j);
}

/// Greedy minimization: the smallest schedule this eval budget finds
/// whose (i, j) best-pair bound still reaches `target`. Phase 1 binary
/// searches the shortest prefix (the bound is nondecreasing in prefix
/// length: longer prefixes only add windows). Phase 2 deletes blocks,
/// halving the block size; every candidate is re-verified with the
/// packed scan before it is accepted.
sched::Schedule minimize_schedule(sched::PackedSchedule& scratch,
                                  const sched::Schedule& s, int i, int j,
                                  std::int64_t target,
                                  std::int64_t max_evals) {
  std::int64_t evals = 0;
  std::int64_t lo = 1;
  std::int64_t hi = s.size();
  while (lo < hi && evals < max_evals) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    ++evals;
    if (packed_best_bound(scratch, s.slice(0, mid), i, j) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  sched::Schedule best = s.slice(0, hi);
  for (std::int64_t block = best.size() / 2; block >= 1 && evals < max_evals;
       block /= 2) {
    std::int64_t pos = 0;
    while (pos < best.size() && evals < max_evals) {
      const std::int64_t cut = std::min(pos + block, best.size());
      if (cut <= pos || best.size() - (cut - pos) < 1) break;
      const sched::Schedule cand =
          best.slice(0, pos).concat(best.slice(cut, best.size()));
      ++evals;
      if (packed_best_bound(scratch, cand, i, j) >= target) {
        best = cand;  // keep pos: the next block slides into place
      } else {
        pos += block;
      }
    }
  }
  return best;
}

/// Enumerates every n-bit mask with exactly k bits set (k >= 1), in
/// increasing numeric order, via Gosper's hack.
template <typename Fn>
void for_each_popcount_mask(int n, int k, Fn&& fn) {
  SETLIB_EXPECTS(k >= 1 && k <= n);
  const std::uint64_t limit = std::uint64_t{1} << n;
  std::uint64_t mask = (std::uint64_t{1} << k) - 1;
  while (mask < limit) {
    fn(mask);
    const std::uint64_t c = mask & (0 - mask);
    const std::uint64_t r = mask + c;
    mask = (((r ^ mask) >> 2) / c) | r;
  }
}

/// Exhaustive reference best-pair bound: the executable-spec analyzer
/// over every (|P| = i, |Q| = j) pair. Mirrors RankedPairScan's pair
/// space exactly; kept independent of the packed word tricks so corpus
/// verification catches drift in either implementation. The pair space
/// is C(n, i) * C(n, j) reference scans, so the supported n is capped
/// at kMaxFuzzN — the worst n = 10 cell is ~63k scans, still fast on
/// minimized schedules, where n = 16 would be billions.
std::int64_t reference_best_bound(const sched::Schedule& s, int i, int j) {
  const int n = s.n();
  SETLIB_EXPECTS(n <= kMaxFuzzN);
  std::int64_t best = -1;
  for_each_popcount_mask(n, i, [&](std::uint64_t p_mask) {
    const ProcSet p(p_mask);
    for_each_popcount_mask(n, j, [&](std::uint64_t q_mask) {
      const std::int64_t bound =
          sched::min_timeliness_bound_reference(s, p, ProcSet(q_mask));
      if (best < 0 || bound < best) best = bound;
    });
  });
  SETLIB_ASSERT(best >= 1);
  return best;
}

std::uint64_t parse_hash_hex(const std::string& text) {
  if (text.size() != 16 ||
      text.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw std::runtime_error("corpus: malformed hash \"" + text + "\"");
  }
  return std::strtoull(text.c_str(), nullptr, 16);
}

std::vector<Pid> parse_pid_array(const JsonValue& value) {
  std::vector<Pid> out;
  out.reserve(value.items().size());
  for (const JsonValue& item : value.items()) {
    out.push_back(static_cast<Pid>(item.as_int()));
  }
  return out;
}

}  // namespace

FuzzResult fuzz_schedules(ExperimentRunner& runner,
                          const FuzzOptions& options,
                          const std::vector<CorpusEntry>& known) {
  SETLIB_EXPECTS(options.n >= 2 && options.n <= kMaxFuzzN);
  SETLIB_EXPECTS(options.budget >= 0);
  SETLIB_EXPECTS(options.schedule_len >= 1);
  SETLIB_EXPECTS(options.baseline_seeds >= 1);
  const int n = options.n;
  const std::int64_t len = options.schedule_len;
  const auto cells = cell_space(n);
  const auto& advs = adversary_space();
  const std::size_t family_count = sched::schedule_families().size();

  // Phase 1 — registry baselines: every oblivious family at registry
  // parameters, `baseline_seeds` seeds each; a cell's best-known bound
  // starts at the max over them (the strongest schedule any registered
  // family is known to produce), raised further by known corpus
  // entries for this (n, len)-independent cell space.
  const std::size_t baseline_tasks =
      family_count * static_cast<std::size_t>(options.baseline_seeds);
  const auto baseline_scores = runner.map<std::vector<sched::TimelyPair>>(
      baseline_tasks, [&](std::size_t task) {
        const auto& info = sched::schedule_families()[task % family_count];
        const std::uint64_t seed = derive_cell_seed(
            options.seed, 0x10000 + static_cast<std::uint64_t>(task));
        auto gen =
            sched::make_family(info.kind, baseline_params(n, len), seed);
        return score_all_cells(sched::generate(*gen, len), cells);
      });

  std::vector<std::int64_t> best_known(cells.size(), 1);
  std::vector<std::int64_t> baseline(cells.size(), 1);
  for (const auto& scores : baseline_scores) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      baseline[c] = std::max(baseline[c], scores[c].bound);
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    best_known[c] = baseline[c];
  }
  for (const CorpusEntry& entry : known) {
    if (entry.n != n) continue;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].first == entry.i && cells[c].second == entry.j) {
        best_known[c] = std::max(best_known[c], entry.bound);
      }
    }
  }

  // Phase 2 — trials, scored in parallel. A trial's schedule is a pure
  // function of its global index, so the map is deterministic at any
  // thread count.
  const auto trial_scores = runner.map<std::vector<sched::TimelyPair>>(
      static_cast<std::size_t>(options.budget), [&](std::size_t trial) {
        const auto& adv = advs[trial % advs.size()];
        const std::uint64_t trial_seed =
            derive_cell_seed(options.seed, static_cast<std::uint64_t>(trial));
        return score_all_cells(generate_trial(adv, n, len, trial_seed),
                               cells);
      });

  // Phase 3 — admit findings sequentially, in trial order, so the
  // best-known frontier (and therefore the emitted corpus) does not
  // depend on completion order.
  FuzzResult result;
  result.trials = options.budget;
  // One packed instance for the whole admission phase: minimization
  // evals and the final verification all repack into it, so a finding
  // costs zero packed-storage churn after the first.
  sched::PackedSchedule scratch;
  for (std::size_t trial = 0; trial < trial_scores.size(); ++trial) {
    const auto& adv = advs[trial % advs.size()];
    const std::uint64_t trial_seed =
        derive_cell_seed(options.seed, static_cast<std::uint64_t>(trial));
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const sched::TimelyPair& scored = trial_scores[trial][c];
      if (scored.bound <= best_known[c]) continue;
      // Regression: rebuild the schedule (cheap, deterministic),
      // minimize it against the observed bound, then re-verify the
      // minimized artifact end to end.
      const sched::Schedule full = generate_trial(adv, n, len, trial_seed);
      const auto [i, j] = cells[c];
      sched::Schedule minimized = minimize_schedule(
          scratch, full, i, j, scored.bound, options.minimize_evals);
      scratch.repack(minimized);
      const sched::TimelyPair final_pair =
          sched::RankedPairScan(scratch, i, j).best_pair();
      SETLIB_ASSERT(final_pair.bound >= scored.bound);
      SETLIB_ASSERT(reference_best_bound(minimized, i, j) ==
                    final_pair.bound);
      CorpusEntry entry;
      entry.hash = sched::schedule_hash(minimized);
      entry.n = n;
      entry.i = i;
      entry.j = j;
      entry.bound = final_pair.bound;
      entry.baseline_bound = best_known[c];
      entry.adversary = adv.name;
      entry.trial_seed = trial_seed;
      entry.raw_len = len;
      entry.timely_set = final_pair.timely_set;
      entry.observed_set = final_pair.observed_set;
      entry.schedule = std::move(minimized);
      best_known[c] = entry.bound;
      result.findings.push_back(std::move(entry));
    }
  }

  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    FuzzCell cell;
    cell.i = cells[c].first;
    cell.j = cells[c].second;
    cell.baseline = baseline[c];
    cell.best = best_known[c];
    result.cells.push_back(cell);
  }
  return result;
}

std::string corpus_entry_json(const CorpusEntry& entry) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": 1,\n";
  os << "  \"hash\": \"" << sched::hash_hex(entry.hash) << "\",\n";
  os << "  \"n\": " << entry.n << ",\n";
  os << "  \"i\": " << entry.i << ",\n";
  os << "  \"j\": " << entry.j << ",\n";
  os << "  \"bound\": " << entry.bound << ",\n";
  os << "  \"baseline_bound\": " << entry.baseline_bound << ",\n";
  os << "  \"adversary\": \"" << entry.adversary << "\",\n";
  os << "  \"trial_seed\": \"" << entry.trial_seed << "\",\n";
  os << "  \"raw_len\": " << entry.raw_len << ",\n";
  auto emit_set = [&os](const char* key, ProcSet s) {
    os << "  \"" << key << "\": [";
    bool first = true;
    s.for_each([&](Pid p) {
      os << (first ? "" : ", ") << p;
      first = false;
    });
    os << "],\n";
  };
  emit_set("timely_set", entry.timely_set);
  emit_set("observed_set", entry.observed_set);
  os << "  \"steps\": [";
  for (std::int64_t s = 0; s < entry.schedule.size(); ++s) {
    os << (s == 0 ? "" : ",") << entry.schedule[s];
  }
  os << "]\n";
  os << "}\n";
  return os.str();
}

CorpusEntry parse_corpus_entry(const JsonValue& doc) {
  if (doc.at("schema").as_int() != 1) {
    throw std::runtime_error("corpus: unsupported schema");
  }
  CorpusEntry entry;
  entry.hash = parse_hash_hex(doc.at("hash").as_string());
  entry.n = static_cast<int>(doc.at("n").as_int());
  entry.i = static_cast<int>(doc.at("i").as_int());
  entry.j = static_cast<int>(doc.at("j").as_int());
  entry.bound = doc.at("bound").as_int();
  entry.baseline_bound = doc.at("baseline_bound").as_int();
  entry.adversary = doc.at("adversary").as_string();
  entry.trial_seed =
      std::strtoull(doc.at("trial_seed").as_string().c_str(), nullptr, 10);
  entry.raw_len = doc.at("raw_len").as_int();
  entry.timely_set = ProcSet::from(parse_pid_array(doc.at("timely_set")));
  entry.observed_set =
      ProcSet::from(parse_pid_array(doc.at("observed_set")));
  entry.schedule =
      sched::Schedule(entry.n, parse_pid_array(doc.at("steps")));
  return entry;
}

CorpusVerdict verify_corpus_entry(const CorpusEntry& entry) {
  CorpusVerdict verdict;
  // Strictly i < j: the fuzzer's cell space never emits i == j (that
  // pair is trivially bound 1), so such an entry is hand-edited or
  // corrupted, not a replayable finding.
  if (entry.n < 2 || entry.n > kMaxFuzzN || entry.i < 1 ||
      entry.i >= entry.j || entry.j > entry.n) {
    verdict.detail = "malformed cell coordinates";
    return verdict;
  }
  const std::uint64_t hash = sched::schedule_hash(entry.schedule);
  if (hash != entry.hash) {
    verdict.detail = "replay hash drifted: recorded " +
                     sched::hash_hex(entry.hash) + ", recomputed " +
                     sched::hash_hex(hash);
    return verdict;
  }
  const std::int64_t packed_bound =
      packed_best_bound(entry.schedule, entry.i, entry.j);
  if (packed_bound != entry.bound) {
    verdict.detail =
        "packed analyzer bound drifted: recorded " +
        std::to_string(entry.bound) + ", recomputed " +
        std::to_string(packed_bound);
    return verdict;
  }
  const std::int64_t pair_bound = sched::min_timeliness_bound_reference(
      entry.schedule, entry.timely_set, entry.observed_set);
  if (pair_bound != entry.bound) {
    verdict.detail =
        "recorded witness pair no longer attains the bound: reference "
        "says " +
        std::to_string(pair_bound);
    return verdict;
  }
  const std::int64_t reference_bound =
      reference_best_bound(entry.schedule, entry.i, entry.j);
  if (reference_bound != entry.bound) {
    verdict.detail =
        "reference analyzer bound drifted: recorded " +
        std::to_string(entry.bound) + ", recomputed " +
        std::to_string(reference_bound);
    return verdict;
  }
  verdict.ok = true;
  verdict.detail = "ok";
  return verdict;
}

}  // namespace setlib::core
