// Shared experiment drivers: every bench binary and several examples
// print rows produced here, so the paper-artifact reproductions have a
// single implementation.
#ifndef SETLIB_CORE_EXPERIMENTS_H
#define SETLIB_CORE_EXPERIMENTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/runner.h"
#include "src/core/spec.h"
#include "src/sched/analyzer.h"
#include "src/util/procset.h"

namespace setlib::core {

// ---------------------------------------------------------------------
// EXP-F1: Figure 1. Per growing prefix of S = [(p1 q)^i (p2 q)^i], the
// minimal timeliness bounds of {p1} vs {q}, {p2} vs {q}, {p1,p2} vs {q}.
// The paper's claim: the first two diverge, the third is constant 2.
struct Figure1Row {
  std::int64_t phase = 0;       // i
  std::int64_t prefix_len = 0;  // steps through phase i
  std::int64_t bound_p1 = 0;
  std::int64_t bound_p2 = 0;
  std::int64_t bound_union = 0;
};

/// Rows for phases 1..max_phase, computed by one incremental
/// sched::BoundTracker pass per candidate pair (O(total steps) for the
/// whole series) and sliced to the runner's shard (results are
/// thread-count independent; each row carries its own phase label).
std::vector<Figure1Row> figure1_rows(std::int64_t max_phase,
                                     ExperimentRunner& runner);
/// Serial, unsharded convenience overload.
std::vector<Figure1Row> figure1_rows(std::int64_t max_phase);

// ---------------------------------------------------------------------
// EXP-SCAN: large-n system membership via the batched pair scan. One
// schedule, all C(n,i) x C(n,j) pairs: the sched::RankedPairScan
// P-rank space is chunked and driven through the runner's pool (and
// shard), so an n = 24 membership census parallelizes without losing
// the bit-identical-at-any-thread-count contract.
struct PairScanConfig {
  int n = 24;
  int i = 2;                         // |P|
  int j = 23;                        // |Q|
  std::int64_t len = 40'000;         // schedule prefix length
  std::uint64_t seed = 11;
  std::int64_t bound_cap = 3;        // membership cap for the census
  /// Schedule family: an enforced witness (range(0,i) timely w.r.t.
  /// range(0,j) at `enforced_bound`) over uniform noise, or — with
  /// enforced_bound = 0 — a rotating i-subset starver, which keeps
  /// every i-set starved for growing stretches (no witness expected).
  /// The starver family requires i < n (proper subsets rotate).
  std::int64_t enforced_bound = 3;
};

struct PairScanResult {
  std::int64_t pairs = 0;    // (P, Q) pairs scanned on this shard
  std::int64_t members = 0;  // pairs with bound <= bound_cap
  bool found = false;        // some member exists on this shard
  sched::TimelyPair first;   // earliest member in rank order, if found
};

/// Runs the census through the runner: the P-rank space is split into
/// fixed-size chunks (independent of thread count), runner.map scans
/// this shard's chunks on the pool, and the per-chunk counts fold in
/// rank order. Shard unions sum to the unsharded census.
PairScanResult ranked_pair_scan(const PairScanConfig& cfg,
                                ExperimentRunner& runner);

// ---------------------------------------------------------------------
// EXP-F2: Figure 2 detector convergence under the friendly family.
struct DetectorRunResult {
  bool stabilized = false;
  bool property_ok = false;  // stabilized + winnerset has a correct proc
  ProcSet winnerset;
  std::int64_t steps = 0;            // total schedule steps executed
  std::int64_t max_iterations = 0;   // detector loop iterations (max proc)
  std::int64_t winnerset_changes = 0;
  std::int64_t ops_per_iteration = 0;  // cost model: register ops/loop
};

struct DetectorRunConfig {
  int n = 4;
  int k = 1;
  int t = 1;
  std::uint64_t seed = 1;
  std::int64_t bound = 3;            // enforced (P, Q) bound
  std::int64_t max_steps = 400'000;
  std::int64_t stabilization_window = 6;
  int crash_count = 0;               // crash the last `crash_count` pids
  std::int64_t crash_step = 0;
  /// Scheduling weight of the timely set's members relative to 1.0 for
  /// everyone else. With a small weight the witness processes step only
  /// when the enforcer injects them — i.e. once per `bound` observer
  /// steps — so the schedule's synchrony quality is exactly the bound,
  /// and detector convergence cost becomes a function of it (the
  /// EXP-F2b sensitivity series).
  double timely_weight = 1.0;
};

DetectorRunResult run_detector_convergence(const DetectorRunConfig& cfg);

// ---------------------------------------------------------------------
// EXP-T27: the solvability matrix. For fixed (t, k, n) with k <= t,
// sweep all 1 <= i <= j <= n. Each cell runs an adversary that is
// provably *in* S^i_{j,n} (witness cross-checked with the analyzer):
//   - i > k:               rotating k-subset starvation (no crashes);
//   - i <= k, j-i <= t:    rotisserie with j-i initial crashes;
//   - i <= k, j-i >  t:    friendly enforced-random (always solvable).
// The observable frontier is the detector: the abstract t-resilient
// k-anti-Omega property (a correct process everyone eventually trusts)
// holds on the adversarial schedule iff Theorem 27 says the cell is
// solvable. The solver outcome is reported alongside; on unsolvable
// cells an oblivious schedule may still let the solver decide (the
// impossibility quantifies over adaptive adversaries — see
// EXPERIMENTS.md), which does not count against the frontier check.
struct MatrixCell {
  int i = 0;
  int j = 0;
  bool predicted_solvable = false;
  bool detector_property = false;  // abstract k-anti-Omega held
  bool solver_success = false;     // full stack decided correctly
  bool matches = false;            // frontier check (see above)
  std::string family;
  std::string detail;
};

struct MatrixConfig {
  AgreementSpec spec;
  std::uint64_t seed = 1;
  std::int64_t max_steps = 1'200'000;
  std::int64_t rotisserie_growth = 512;
  std::int64_t friendly_bound = 3;
  std::int64_t stabilization_window = 4;
};

/// Runs the (i, j) cells through the runner (its pool width, shard,
/// and grain apply; cell results are identical at any thread count and
/// the shard union equals the unsharded matrix). `extra_sinks` stream
/// the raw per-cell reports — e.g. a JsonSink recording the section
/// named "matrix_<spec>".
std::vector<MatrixCell> thm27_matrix(
    const MatrixConfig& cfg, ExperimentRunner& runner,
    const std::vector<ReportSink*>& extra_sinks = {});
/// Serial, unsharded convenience overload.
std::vector<MatrixCell> thm27_matrix(const MatrixConfig& cfg);

/// Render any matrix as the frontier table the bench prints.
std::string render_matrix(const AgreementSpec& spec,
                          const std::vector<MatrixCell>& cells);

}  // namespace setlib::core

#endif  // SETLIB_CORE_EXPERIMENTS_H
