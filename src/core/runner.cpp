#include "src/core/runner.h"

#include <algorithm>

#include "src/util/assert.h"

namespace setlib::core {

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(std::move(options)), pool_(options_.threads) {
  if (options_.shard.leased) {
    SETLIB_EXPECTS(options_.shard.span >= 1 &&
                   options_.shard.lo <= options_.shard.hi &&
                   options_.shard.hi <= options_.shard.span);
  } else {
    SETLIB_EXPECTS(options_.shard.n >= 1 &&
                   options_.shard.k < options_.shard.n);
  }
  if (options_.json_path.empty()) {
    options_.json_path = "BENCH_" + options_.name + ".json";
  }
  arenas_.reserve(static_cast<std::size_t>(pool_.threads()));
  for (int w = 0; w < pool_.threads(); ++w) {
    arenas_.push_back(std::make_unique<util::ArenaAllocator>());
  }
}

JsonSink ExperimentRunner::json_sink() const {
  JsonSink::Config config;
  config.name = options_.name;
  config.path = options_.json_path;
  config.enabled = options_.json;
  config.threads = pool_.threads();
  config.repeat = options_.repeat;
  config.shard = options_.shard;
  return JsonSink(config);
}

std::size_t ExperimentRunner::grain_for(std::size_t count) const {
  if (options_.grain != 0) return options_.grain;
  // Auto for generic loops: chunk so each worker sees ~16 pops on
  // huge index spaces, cutting steal/lock overhead on cheap cells.
  // (Grid runs of heavy run_agreement cells pin grain to 1 instead —
  // see run(grid, ...).)
  const std::size_t workers =
      static_cast<std::size_t>(std::max(1, pool_.threads()));
  return std::max<std::size_t>(1, count / (workers * 16));
}

SectionStats ExperimentRunner::run(const SweepGrid& grid,
                                   const std::string& name,
                                   const std::vector<ReportSink*>& sinks) {
  const std::size_t total = grid.size();
  const auto [begin, end] = shard_range(total);

  // Materialize this shard's cells on the submitting thread: cell
  // configs are pure functions of the global index, and the memoized
  // point cache is not written to concurrently this way.
  std::vector<SweepCell> cells;
  cells.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) cells.push_back(grid.cell(i));

  for (ReportSink* sink : sinks) {
    sink->begin_section(name, total, options_.shard);
  }

  std::vector<RunReport> reports(cells.size());
  std::vector<double> seconds(cells.size());
  const WallTimer timer;
  if (!cells.empty()) {
    try {
      // Grid cells are milliseconds-heavy run_agreement calls: unless
      // the caller asked for an explicit grain, single-index pops give
      // the best load balance (auto chunking is for cheap map loops).
      const std::size_t grain =
          options_.grain != 0 ? options_.grain : 1;
      pool_.for_each(
          cells.size(),
          [&](std::size_t i) {
            const WallTimer cell_timer;
            // Fresh arena state per cell: reset trims overflow blocks
            // back to the reserve, so the cell's counter deltas are a
            // pure function of its config (not of which worker ran it
            // or what ran before).
            util::ArenaAllocator& arena = worker_arena();
            arena.reset();
            reports[i] = run_agreement(cells[i].config, arena);
            seconds[i] = cell_timer.seconds();
          },
          grain);
    } catch (...) {
      // A throwing cell propagates, but sinks must not stay wedged in
      // a half-open section: close the section empty (no rows from a
      // failed sweep) before rethrowing.
      SectionStats stats;
      stats.name = name;
      stats.grid_cells = total;
      stats.cells = 0;
      stats.repeats = grid.repeats();
      stats.shard = options_.shard;
      stats.wall_seconds = timer.seconds();
      for (ReportSink* sink : sinks) sink->end_section(stats);
      throw;
    }
  }

  SectionStats stats;
  stats.name = name;
  stats.grid_cells = total;
  stats.cells = cells.size();
  stats.repeats = grid.repeats();
  stats.shard = options_.shard;
  stats.wall_seconds = timer.seconds();
  stats.runs_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.cells) / stats.wall_seconds
          : 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {  // cell order
    stats.steps.add(static_cast<double>(reports[i].steps_executed));
    stats.cell_seconds.add(seconds[i]);
    for (ReportSink* sink : sinks) {
      sink->cell(cells[i], reports[i], seconds[i]);
    }
  }
  for (ReportSink* sink : sinks) sink->end_section(stats);
  return stats;
}

SectionStats ExperimentRunner::run(
    std::size_t n, const std::string& name,
    const std::function<void(std::size_t)>& fn) {
  const auto [begin, end] = shard_range(n);
  const std::size_t count = end - begin;
  const WallTimer timer;
  if (count > 0) {
    pool_.for_each(
        count, [&](std::size_t i) { fn(begin + i); }, grain_for(count));
  }
  SectionStats stats;
  stats.name = name;
  stats.grid_cells = n;
  stats.cells = count;
  stats.shard = options_.shard;
  stats.wall_seconds = timer.seconds();
  stats.runs_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(count) / stats.wall_seconds
          : 0.0;
  return stats;
}

}  // namespace setlib::core
