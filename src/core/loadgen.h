// Seeded load generation for the serving harness.
//
// LoadGen turns (request count, seed, mean inter-arrival gap) into the
// deterministic request stream the closed-loop serving mode consumes:
// request r's command payload and virtual arrival tick are pure
// functions of (config, r), so every shard and every thread count sees
// exactly the same traffic — the serving-side analogue of the sweep
// engine's index-derived cell seeds. The open-loop mode reuses the same
// stateless command derivation and replaces only the clock (wall-time
// pacing at a target QPS instead of virtual ticks).
#ifndef SETLIB_CORE_LOADGEN_H
#define SETLIB_CORE_LOADGEN_H

#include <cstdint>
#include <vector>

namespace setlib::core {

/// One client request: a command to be appended to the replicated
/// agreement log. `arrival_tick` is virtual time (closed loop only).
struct Request {
  std::int64_t id = 0;
  std::int64_t command = 0;
  std::int64_t arrival_tick = 0;
};

struct LoadGenConfig {
  std::int64_t requests = 0;  // stream length
  std::uint64_t seed = 1;
  /// Mean virtual-tick gap between consecutive arrivals; gaps are
  /// drawn uniformly from [0, 2 * mean], so 0 allows back-to-back
  /// (same-tick) arrivals — the case batching exists for.
  std::int64_t mean_interarrival_ticks = 8;
};

/// Deterministic request stream generator.
class LoadGen {
 public:
  explicit LoadGen(LoadGenConfig config);

  const LoadGenConfig& config() const noexcept { return config_; }

  /// Command payload of request `id` — a stateless splitmix64 hash of
  /// (seed, id), so open-loop arrivals can derive commands without
  /// materializing the stream. Always in [0, 2^31).
  std::int64_t command(std::int64_t id) const noexcept;

  /// The full closed-loop arrival stream: `requests` entries with ids
  /// 0..requests-1 and nondecreasing arrival ticks starting at the
  /// first drawn gap.
  std::vector<Request> arrivals() const;

 private:
  LoadGenConfig config_;
};

}  // namespace setlib::core

#endif  // SETLIB_CORE_LOADGEN_H
