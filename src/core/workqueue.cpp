#include "src/core/workqueue.h"

#include <algorithm>

#include "src/util/assert.h"

namespace setlib::core {

ShardSpec Lease::shard(std::size_t span) const {
  ShardSpec spec;
  spec.leased = true;
  spec.lo = lo;
  spec.hi = hi;
  spec.span = span;
  return spec;
}

const char* lease_event_kind_name(LeaseEvent::Kind kind) noexcept {
  switch (kind) {
    case LeaseEvent::Kind::kFailed:
      return "failed";
    case LeaseEvent::Kind::kExpired:
      return "expired";
    case LeaseEvent::Kind::kSuperseded:
      return "superseded";
  }
  return "unknown";
}

JsonValue WorkQueueReport::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("span", JsonValue::of(span));
  out.set("initial_ranges", JsonValue::of(initial_ranges));
  out.set("leases_issued", JsonValue::of(leases_issued));
  out.set("leases_completed", JsonValue::of(leases_completed));
  out.set("leases_failed", JsonValue::of(leases_failed));
  out.set("leases_expired", JsonValue::of(leases_expired));
  out.set("leases_superseded", JsonValue::of(leases_superseded));
  out.set("leases_resharded", JsonValue::of(leases_resharded));
  out.set("completions_discarded",
          JsonValue::of(completions_discarded));
  out.set("failure_budget", JsonValue::of(failure_budget));
  out.set("failures_spent", JsonValue::of(failures_spent));
  if (!abort_reason.empty()) {
    out.set("abort_reason", JsonValue::of(abort_reason));
  }
  std::vector<JsonValue> items;
  items.reserve(events.size());
  for (const LeaseEvent& event : events) {
    JsonValue e = JsonValue::object();
    e.set("kind", JsonValue::of(lease_event_kind_name(event.kind)));
    e.set("lease", JsonValue::of(event.lease));
    e.set("range", JsonValue::of(std::to_string(event.lo) + ".." +
                                 std::to_string(event.hi)));
    e.set("worker", JsonValue::of(static_cast<std::int64_t>(event.worker)));
    e.set("age_seconds", JsonValue::of(event.age_seconds));
    e.set("split", JsonValue::of(static_cast<std::int64_t>(
                       event.split ? 1 : 0)));
    if (!event.detail.empty()) {
      e.set("detail", JsonValue::of(event.detail));
    }
    items.push_back(std::move(e));
  }
  out.set("events", JsonValue::array(std::move(items)));
  return out;
}

WorkQueue::WorkQueue(WorkQueueOptions options)
    : options_(std::move(options)) {
  SETLIB_EXPECTS(options_.span >= 1);
  SETLIB_EXPECTS(options_.workers >= 1);
  SETLIB_EXPECTS(options_.ranges <= options_.span);
  SETLIB_EXPECTS(options_.lease_timeout.count() > 0);
  SETLIB_EXPECTS(options_.straggler_factor >= 0.0);

  initial_ranges_ = options_.ranges;
  if (initial_ranges_ == 0) {
    initial_ranges_ = std::min<std::size_t>(
        options_.span,
        std::max<std::size_t>(
            8, 8 * static_cast<std::size_t>(options_.workers)));
  }
  if (options_.failure_budget == 0) {
    options_.failure_budget = 2 * initial_ranges_ + 8;
  }

  // Carve [0, span) into initial_ranges_ contiguous slices with the
  // same floor arithmetic ShardSpec::range uses, so the tiling is
  // exact whatever the division remainder.
  pending_.reserve(initial_ranges_);
  for (std::size_t r = 0; r < initial_ranges_; ++r) {
    Range range;
    range.lo = options_.span * r / initial_ranges_;
    range.hi = options_.span * (r + 1) / initial_ranges_;
    if (range.lo < range.hi) pending_.push_back(range);
  }
  // Workers lease low ranges first (pop from the back).
  std::reverse(pending_.begin(), pending_.end());
  remaining_ = options_.span;

  stats_.span = options_.span;
  stats_.initial_ranges = initial_ranges_;
  stats_.failure_budget = options_.failure_budget;
}

std::chrono::steady_clock::time_point WorkQueue::now() const {
  return options_.clock ? options_.clock()
                        : std::chrono::steady_clock::now();
}

bool WorkQueue::requeue_split_locked(const Range& range) {
  if (range.hi - range.lo >= 2) {
    const std::size_t mid = range.lo + (range.hi - range.lo) / 2;
    pending_.push_back({mid, range.hi});
    pending_.push_back({range.lo, mid});
    ++stats_.leases_resharded;
    return true;
  }
  pending_.push_back(range);
  return false;
}

void WorkQueue::spend_failure_locked(const std::string& reason) {
  ++stats_.failures_spent;
  if (stats_.failures_spent > options_.failure_budget && !aborted_) {
    aborted_ = true;
    stats_.abort_reason = "failure budget (" +
                          std::to_string(options_.failure_budget) +
                          ") exhausted; last failure: " + reason;
  }
}

void WorkQueue::expire_locked(
    std::chrono::steady_clock::time_point t) {
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.deadline > t) {
      ++it;
      continue;
    }
    LeaseEvent event;
    event.kind = LeaseEvent::Kind::kExpired;
    event.lease = it->first;
    event.lo = it->second.range.lo;
    event.hi = it->second.range.hi;
    event.worker = it->second.worker;
    event.age_seconds =
        std::chrono::duration<double>(t - it->second.start).count();
    event.detail = "lease deadline passed with no completion";
    ++stats_.leases_expired;
    spend_failure_locked(event.detail);
    event.split = requeue_split_locked(it->second.range);
    stats_.events.push_back(std::move(event));
    it = active_.erase(it);
  }
}

bool WorkQueue::reshard_straggler_locked(
    std::chrono::steady_clock::time_point t) {
  if (options_.straggler_factor <= 0.0) return false;
  if (!pending_.empty() || active_.empty()) return false;
  // No baseline yet: with nothing completed, "visibly lags" has no
  // meaning — expiry is the only recourse.
  if (completed_seconds_.empty()) return false;
  std::vector<double> sorted = completed_seconds_;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double threshold = std::max(
      std::chrono::duration<double>(options_.straggler_min).count(),
      options_.straggler_factor * median);

  auto oldest = active_.end();
  double oldest_age = 0.0;
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->second.range.hi - it->second.range.lo < 2) continue;
    const double age =
        std::chrono::duration<double>(t - it->second.start).count();
    if (age > threshold && age > oldest_age) {
      oldest = it;
      oldest_age = age;
    }
  }
  if (oldest == active_.end()) return false;

  LeaseEvent event;
  event.kind = LeaseEvent::Kind::kSuperseded;
  event.lease = oldest->first;
  event.lo = oldest->second.range.lo;
  event.hi = oldest->second.range.hi;
  event.worker = oldest->second.worker;
  event.age_seconds = oldest_age;
  event.detail = "straggler: age beyond " + std::to_string(threshold) +
                 " s, resharded to an idle worker";
  ++stats_.leases_superseded;
  // Supersession spends no failure budget: the straggler is slow, not
  // broken, and its eventual completion is merely discarded.
  event.split = requeue_split_locked(oldest->second.range);
  stats_.events.push_back(std::move(event));
  active_.erase(oldest);
  return true;
}

std::optional<Lease> WorkQueue::acquire(int worker) {
  const util::MutexLock lock(mu_);
  for (;;) {
    if (aborted_ || remaining_ == 0) return std::nullopt;
    const auto t = now();
    expire_locked(t);
    if (aborted_) return std::nullopt;
    if (pending_.empty()) reshard_straggler_locked(t);
    if (!pending_.empty()) {
      const Range range = pending_.back();
      pending_.pop_back();
      Lease lease;
      lease.id = next_id_++;
      lease.lo = range.lo;
      lease.hi = range.hi;
      lease.deadline = t + options_.lease_timeout;
      Active active;
      active.range = range;
      active.worker = worker;
      active.start = t;
      active.deadline = lease.deadline;
      active_.emplace(lease.id, active);
      ++stats_.leases_issued;
      return lease;
    }
    // Nothing to lease but the run is not over: wait for a
    // completion/failure, or for time to pass so expiry/straggler
    // checks can fire.
    cv_.wait_for(mu_, std::chrono::milliseconds(50));
  }
}

bool WorkQueue::complete(std::uint64_t lease_id) {
  const util::MutexLock lock(mu_);
  const auto it = active_.find(lease_id);
  if (it == active_.end()) {
    // Superseded or expired while the worker was still running: the
    // range was re-leased elsewhere, so this result must not count —
    // double-counting a range would corrupt the merge.
    ++stats_.completions_discarded;
    cv_.notify_all();
    return false;
  }
  const std::size_t width = it->second.range.hi - it->second.range.lo;
  SETLIB_ASSERT(remaining_ >= width);
  remaining_ -= width;
  completed_seconds_.push_back(
      std::chrono::duration<double>(now() - it->second.start).count());
  ++stats_.leases_completed;
  active_.erase(it);
  cv_.notify_all();
  return true;
}

void WorkQueue::fail(std::uint64_t lease_id, const std::string& reason) {
  const util::MutexLock lock(mu_);
  const auto it = active_.find(lease_id);
  if (it == active_.end()) {
    // Already superseded/expired — the requeue happened then.
    cv_.notify_all();
    return;
  }
  LeaseEvent event;
  event.kind = LeaseEvent::Kind::kFailed;
  event.lease = lease_id;
  event.lo = it->second.range.lo;
  event.hi = it->second.range.hi;
  event.worker = it->second.worker;
  event.age_seconds =
      std::chrono::duration<double>(now() - it->second.start).count();
  event.detail = reason;
  ++stats_.leases_failed;
  spend_failure_locked(reason);
  event.split = requeue_split_locked(it->second.range);
  stats_.events.push_back(std::move(event));
  active_.erase(it);
  cv_.notify_all();
}

bool WorkQueue::done() const {
  const util::MutexLock lock(mu_);
  return remaining_ == 0 && !aborted_;
}

bool WorkQueue::aborted() const {
  const util::MutexLock lock(mu_);
  return aborted_;
}

WorkQueueReport WorkQueue::report() const {
  const util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace setlib::core
