// Parallel sweep engine for experiment grids.
//
// SweepGrid enumerates the cartesian product of the experiment axes —
// agreement specs, a system axis, schedule families, timeliness bounds,
// and repeat indices — as a flat, indexable cell space. ParallelSweep
// shards that space across a runtime::WorkStealingPool and folds the
// per-cell RunReports into streaming statistics (util/stats) and
// success-rate matrices (util/table).
//
// Determinism contract: a cell's RunConfig — including its seed, which
// is derived from (base seed, flat cell index) through splitmix64 — is
// a pure function of the grid, never of the worker that happens to run
// it. Reports land in a slot per cell and aggregation walks them in
// cell order after the parallel phase, so aggregated results are
// bit-identical at any thread count (only wall-time fields differ).
#ifndef SETLIB_CORE_SWEEP_H
#define SETLIB_CORE_SWEEP_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/spec.h"
#include "src/util/stats.h"

namespace setlib::core {

/// Deterministic per-cell seed derivation (splitmix64 over the base
/// seed advanced by the flat cell index).
std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index) noexcept;

/// Short display name of a schedule family ("friendly", "rotisserie",
/// "k-subset starver").
const char* family_name(ScheduleFamily family) noexcept;

/// How the grid derives the system S^i_{j,n} for each spec.
enum class SystemAxis {
  /// Theorem 24's matching system S^k_{t+1,n} — one system per spec.
  kMatching,
  /// Every 1 <= i <= j <= n — the Theorem 27 matrix sweep.
  kFullMatrix,
  /// The systems(...) list, crossed with every spec.
  kExplicit,
};

/// One materialized grid cell: a ready-to-run RunConfig plus its
/// coordinates in the grid.
struct SweepCell {
  std::size_t index = 0;  // flat index in grid order
  int repeat = 0;         // innermost axis coordinate
  RunConfig config;       // seed already derived from (base_seed, index)
};

/// Cartesian product over the experiment axes. Axes left empty fall
/// back to singletons taken from the prototype RunConfig; a grid with
/// no specs is the legal empty grid (size() == 0).
class SweepGrid {
 public:
  SweepGrid& add_spec(const AgreementSpec& spec);
  SweepGrid& add_family(ScheduleFamily family);
  SweepGrid& add_bound(std::int64_t timeliness_bound);
  /// Adds an explicit system and switches the axis to kExplicit.
  SweepGrid& add_system(const SystemSpec& system);
  SweepGrid& system_axis(SystemAxis axis);
  /// Number of seeds per point; cell seeds stay index-derived.
  SweepGrid& repeats(int repeats);
  SweepGrid& base_seed(std::uint64_t seed);
  /// Template for every cell's RunConfig (max_steps, windows, ...).
  SweepGrid& prototype(const RunConfig& config);
  /// Last-mile hook applied to each materialized cell — the escape
  /// hatch for per-cell policy (e.g. the Theorem 27 family choice as a
  /// function of (i, j)). Must be a pure function of the cell.
  SweepGrid& per_cell(std::function<void(SweepCell&)> hook);

  std::size_t size() const;
  /// Materializes the cell at `index` (grid order: spec/system point,
  /// then family, then bound, then repeat innermost).
  SweepCell cell(std::size_t index) const;
  std::vector<SweepCell> cells() const;

 private:
  struct Point {
    AgreementSpec spec;
    SystemSpec system;
  };
  std::vector<Point> points() const;
  SweepCell cell_at(std::size_t index,
                    const std::vector<Point>& pts) const;

  std::vector<AgreementSpec> specs_;
  std::vector<SystemSpec> systems_;
  std::vector<ScheduleFamily> families_;
  std::vector<std::int64_t> bounds_;
  SystemAxis axis_ = SystemAxis::kMatching;
  int repeats_ = 1;
  std::uint64_t base_seed_ = 1;
  RunConfig prototype_;
  std::function<void(SweepCell&)> per_cell_;
};

struct SweepOptions {
  /// Worker threads for the sweep; 0 = hardware concurrency.
  int threads = 1;
};

/// Order-deterministic fold of the per-cell reports.
struct SweepAggregate {
  std::size_t cells = 0;
  std::size_t successes = 0;
  std::size_t detector_ok = 0;  // abstract k-anti-Omega held
  Summary steps;                // steps_executed per cell
  Summary witness_bound;        // measured (P, Q) bound per cell
  Summary distinct_decisions;
  // Wall-clock facts (the only thread-count-dependent fields).
  double wall_seconds = 0.0;
  double runs_per_second = 0.0;
};

struct SweepResult {
  std::vector<SweepCell> cells;     // grid order
  std::vector<RunReport> reports;   // reports[i] belongs to cells[i]
  SweepAggregate aggregate;

  /// Success-rate matrix, one row per (spec, family) group, rendered
  /// with util/table. Deterministic at any thread count.
  std::string render_success_matrix() const;
};

class ParallelSweep {
 public:
  explicit ParallelSweep(SweepOptions options = {});

  /// Runs run_agreement on every cell of the grid. A throwing cell
  /// does not abort in-flight siblings; after the sweep drains, the
  /// exception of the lowest-index failing cell is rethrown.
  SweepResult run(const SweepGrid& grid) const;

  /// Generic sharded loop for grids whose cells are not RunConfigs
  /// (detector convergence rows, ablation scenarios, ...). Same
  /// work-stealing pool, same deterministic exception contract.
  static void for_each(std::size_t n, int threads,
                       const std::function<void(std::size_t)>& fn);

 private:
  SweepOptions options_;
};

/// for_each that collects results into a vector indexed by cell — the
/// common shape of the refactored bench tables.
template <typename T>
std::vector<T> parallel_map(std::size_t n, int threads,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(n);
  ParallelSweep::for_each(n, threads,
                          [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace setlib::core

#endif  // SETLIB_CORE_SWEEP_H
