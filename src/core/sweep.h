// Experiment grids as flat, indexable cell spaces.
//
// SweepGrid enumerates the cartesian product of the experiment axes —
// agreement specs, a system axis, schedule families, timeliness bounds,
// and repeat indices. Execution lives in core::ExperimentRunner
// (src/core/runner.h), which shards the flat index space across a
// persistent runtime::WorkStealingPool and streams per-cell RunReports
// into ReportSinks (src/core/report.h).
//
// Determinism contract: a cell's RunConfig — including its seed, which
// is derived from (base seed, flat cell index) through splitmix64 — is
// a pure function of the grid, never of the worker, shard, or thread
// count that happens to run it. Aggregation walks cells in index
// order, so results are bit-identical at any thread count and the
// concatenation of shards reproduces the unsharded run.
#ifndef SETLIB_CORE_SWEEP_H
#define SETLIB_CORE_SWEEP_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/spec.h"

namespace setlib::core {

/// Deterministic per-cell seed derivation (splitmix64 over the base
/// seed advanced by the flat cell index).
std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index) noexcept;

/// Short display name of a schedule family ("friendly", "rotisserie",
/// "k-subset starver", "bursty", ...).
const char* family_name(ScheduleFamily family) noexcept;

/// The randomized adversary families (src/sched/families.h) as grid
/// axis values, in registry order — the list benches iterate to sweep
/// the family axis.
const std::vector<ScheduleFamily>& randomized_families();

/// The execution-reactive adversaries (src/sched/reactive.h) as grid
/// axis values, in registry order.
const std::vector<ScheduleFamily>& reactive_families();

/// How the grid derives the system S^i_{j,n} for each spec.
enum class SystemAxis {
  /// Theorem 24's matching system S^k_{t+1,n} — one system per spec.
  kMatching,
  /// Every 1 <= i <= j <= n — the Theorem 27 matrix sweep.
  kFullMatrix,
  /// The systems(...) list, crossed with every spec.
  kExplicit,
};

/// One materialized grid cell: a ready-to-run RunConfig plus its
/// coordinates in the grid.
struct SweepCell {
  std::size_t index = 0;  // flat index in grid order
  int repeat = 0;         // innermost axis coordinate
  RunConfig config;       // seed already derived from (base_seed, index)
};

/// Cartesian product over the experiment axes. Axes left empty fall
/// back to singletons taken from the prototype RunConfig; a grid with
/// no specs is the legal empty grid (size() == 0).
///
/// The (spec, system) points are materialized lazily and memoized, so
/// repeated cell() calls cost O(1) lookups instead of re-enumerating
/// the axis product — required for 10^5-cell grids. The cache makes
/// cell()/size() non-reentrant with the builder methods; materialize
/// cells on one thread (the ExperimentRunner does) before fanning out.
class SweepGrid {
 public:
  SweepGrid& add_spec(const AgreementSpec& spec);
  SweepGrid& add_family(ScheduleFamily family);
  SweepGrid& add_bound(std::int64_t timeliness_bound);
  /// Adds an explicit system and switches the axis to kExplicit.
  SweepGrid& add_system(const SystemSpec& system);
  SweepGrid& system_axis(SystemAxis axis);
  /// Number of seeds per point; cell seeds stay index-derived.
  SweepGrid& repeats(int repeats);
  /// The repeat factor (innermost axis width): cell index / repeats()
  /// is the cell's grid-point id — the grouping the per-point
  /// multi-seed statistics are computed over.
  int repeats() const noexcept { return repeats_; }
  SweepGrid& base_seed(std::uint64_t seed);
  /// Template for every cell's RunConfig (max_steps, windows, ...).
  SweepGrid& prototype(const RunConfig& config);
  /// Last-mile hook applied to each materialized cell — the escape
  /// hatch for per-cell policy (e.g. the Theorem 27 family choice as a
  /// function of (i, j)). Must be a pure function of the cell.
  SweepGrid& per_cell(std::function<void(SweepCell&)> hook);

  std::size_t size() const;
  /// Materializes the cell at `index` (grid order: spec/system point,
  /// then family, then bound, then repeat innermost).
  SweepCell cell(std::size_t index) const;
  std::vector<SweepCell> cells() const;

 private:
  struct Point {
    AgreementSpec spec;
    SystemSpec system;
  };
  const std::vector<Point>& points() const;  // memoized

  std::vector<AgreementSpec> specs_;
  std::vector<SystemSpec> systems_;
  std::vector<ScheduleFamily> families_;
  std::vector<std::int64_t> bounds_;
  SystemAxis axis_ = SystemAxis::kMatching;
  int repeats_ = 1;
  std::uint64_t base_seed_ = 1;
  RunConfig prototype_;
  std::function<void(SweepCell&)> per_cell_;

  mutable std::vector<Point> points_cache_;
  mutable bool points_valid_ = false;
};

}  // namespace setlib::core

#endif  // SETLIB_CORE_SWEEP_H
