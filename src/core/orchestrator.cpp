#include "src/core/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "src/util/assert.h"
#include "src/util/rng.h"
#include "src/util/sync.h"

namespace setlib::core {

namespace {

/// Reads a whole file; false when it cannot be opened.
bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

/// Trims a stderr capture for the failure report: last `limit` bytes,
/// whole lines.
std::string stderr_excerpt(const std::string& err,
                           std::size_t limit = 2000) {
  if (err.empty()) return "(empty)";
  std::string text = err;
  if (text.size() > limit) {
    text = text.substr(text.size() - limit);
    const std::size_t nl = text.find('\n');
    if (nl != std::string::npos && nl + 1 < text.size()) {
      text = text.substr(nl + 1);
    }
    text.insert(0, "[...]\n");
  }
  return text;
}

/// "attempt 2/3: exit 1" — every failure report names its attempt.
std::string attempt_tag(int attempt, int total) {
  return "attempt " + std::to_string(attempt) + "/" +
         std::to_string(total) + ": ";
}

}  // namespace

std::chrono::milliseconds backoff_delay(const BackoffOptions& options,
                                        std::uint64_t stream,
                                        int attempt) {
  if (attempt < 1 || options.base.count() <= 0) {
    return std::chrono::milliseconds{0};
  }
  // base * 2^(attempt-1), saturated at cap (the shift is clamped well
  // below the doubling count that could overflow).
  const int exponent = std::min(attempt - 1, 30);
  double nominal = static_cast<double>(options.base.count()) *
                   static_cast<double>(std::uint64_t{1} << exponent);
  nominal = std::min(nominal, static_cast<double>(options.cap.count()));
  // Deterministic jitter in [0.5, 1.0]: splitmix64 over (seed, stream,
  // attempt). splitmix64 is a bijective scrambler, so nearby streams
  // and attempts land on unrelated fractions.
  std::uint64_t state = options.seed +
                        stream * 0x9E3779B97F4A7C15ull +
                        static_cast<std::uint64_t>(attempt);
  const std::uint64_t bits = splitmix64(state);
  const double unit =
      static_cast<double>(bits >> 11) / 9007199254740992.0;  // [0, 1)
  const double jittered = nominal * (0.5 + 0.5 * unit);
  return std::chrono::milliseconds{
      static_cast<std::int64_t>(jittered)};
}

bool OrchestrationResult::ok() const {
  if (!merge_error.empty()) return false;
  if (shards.empty()) return false;
  for (const ShardRun& shard : shards) {
    if (!shard.ok) return false;
  }
  return true;
}

std::string OrchestrationResult::summary() const {
  std::ostringstream os;
  for (const ShardRun& shard : shards) {
    os << "shard " << shard.shard << "/" << shards.size() << ": ";
    if (shard.ok) {
      os << "ok (" << shard.attempts << " attempt"
         << (shard.attempts == 1 ? "" : "s") << ", "
         << shard.last.wall_seconds << " s)\n";
    } else {
      os << "FAILED after " << shard.attempts << " attempt"
         << (shard.attempts == 1 ? "" : "s") << ": " << shard.error
         << "\n  last stderr: "
         << stderr_excerpt(shard.last.err) << "\n";
    }
  }
  if (!merge_error.empty()) {
    os << "merge: FAILED: " << merge_error << "\n";
  }
  return os.str();
}

OrchestrationResult orchestrate(const OrchestratorOptions& options) {
  SETLIB_EXPECTS(!options.bench.empty());
  SETLIB_EXPECTS(options.shards >= 1);
  SETLIB_EXPECTS(options.workers >= 0);
  SETLIB_EXPECTS(options.retries >= 0);
  SETLIB_EXPECTS(!options.shard_dir.empty());

  std::filesystem::create_directories(options.shard_dir);

  runtime::LocalExecTransport local;
  runtime::Transport* transport =
      options.transport ? options.transport : &local;

  const int n = options.shards;
  OrchestrationResult result;
  result.shards.resize(static_cast<std::size_t>(n));
  std::vector<JsonValue> docs(static_cast<std::size_t>(n));

  int workers = options.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers = std::min(workers, n);

  // Each worker thread claims shard indices off the shared counter and
  // drives one child at a time: launch, wait, verify, retry.
  std::atomic<int> next{0};
  auto run_shards = [&] {
    for (;;) {
      const int k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= n) return;
      ShardRun& run = result.shards[static_cast<std::size_t>(k)];
      run.shard = k;
      run.json_path = options.shard_dir + "/shard_" +
                      std::to_string(k) + ".json";

      runtime::TransportCommand command;
      command.argv.reserve(options.bench_args.size() + 3);
      command.argv.push_back(options.bench);
      command.argv.insert(command.argv.end(),
                          options.bench_args.begin(),
                          options.bench_args.end());
      command.argv.push_back("--shard=" + std::to_string(k) + "/" +
                             std::to_string(n));
      command.argv.push_back("--json=" + run.json_path);
      command.timeout = options.timeout;

      const int total_attempts = options.retries + 1;
      for (int attempt = 0; attempt <= options.retries; ++attempt) {
        if (attempt > 0) {
          std::this_thread::sleep_for(backoff_delay(
              options.backoff, static_cast<std::uint64_t>(k), attempt));
        }
        ++run.attempts;
        // A stale or truncated document from a previous attempt (or
        // run) must never be mistaken for this attempt's output.
        std::error_code ignored;
        std::filesystem::remove(run.json_path, ignored);

        run.last = transport->run(command);
        if (!run.last.ok()) {
          run.error = attempt_tag(attempt + 1, total_attempts) +
                      run.last.describe();
          continue;
        }
        std::string text;
        if (!read_file(run.json_path, text)) {
          run.error = attempt_tag(attempt + 1, total_attempts) +
                      "worker exited 0 but wrote no " + run.json_path;
          continue;
        }
        try {
          docs[static_cast<std::size_t>(k)] = JsonValue::parse(text);
        } catch (const JsonParseError& e) {
          run.error = attempt_tag(attempt + 1, total_attempts) +
                      "worker wrote unparsable JSON: " + e.what();
          continue;
        }
        run.ok = true;
        run.error.clear();
        break;
      }
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(run_shards);
  }

  bool all_ok = true;
  for (const ShardRun& run : result.shards) all_ok &= run.ok;
  if (all_ok) {
    try {
      result.merged = merge_shard_docs(docs);
    } catch (const MergeError& e) {
      result.merge_error = e.what();
    }
  }

  return result;
}

void remove_shard_documents(const OrchestratorOptions& options,
                            const OrchestrationResult& result) {
  for (const ShardRun& run : result.shards) {
    std::error_code ignored;
    std::filesystem::remove(run.json_path, ignored);
  }
  std::error_code ignored;
  std::filesystem::remove(options.shard_dir, ignored);  // if now empty
}

// ---------------------------------------------------------------------
// The elastic work-queue orchestrator.

bool ElasticResult::ok() const {
  return merge_error.empty() && queue.abort_reason.empty() &&
         queue.leases_completed > 0;
}

std::string ElasticResult::summary() const {
  std::ostringstream os;
  os << "elastic: " << queue.leases_issued << " leases over "
     << queue.initial_ranges << " initial ranges (span " << queue.span
     << "): " << queue.leases_completed << " completed, "
     << queue.leases_failed << " failed, " << queue.leases_expired
     << " expired, " << queue.leases_superseded << " superseded, "
     << queue.leases_resharded << " resharded, "
     << queue.completions_discarded << " completions discarded\n";

  // Per-worker totals over accepted leases.
  std::map<int, std::pair<std::size_t, double>> per_worker;
  for (const LeaseRun& run : leases) {
    if (!run.accepted) continue;
    auto& [cells, wall] = per_worker[run.worker];
    cells += run.hi - run.lo;
    wall += run.last.wall_seconds;
  }
  for (const auto& [worker, totals] : per_worker) {
    os << "  worker " << worker << ": " << totals.first
       << " virtual cells in " << totals.second << " s\n";
  }
  for (const LeaseEvent& event : queue.events) {
    os << "  " << lease_event_kind_name(event.kind) << " lease "
       << event.lease << " [" << event.lo << ".." << event.hi
       << ") worker " << event.worker
       << (event.split ? " (resharded)" : "") << ": " << event.detail
       << "\n";
  }
  for (const LeaseRun& run : leases) {
    if (run.ok || run.error.empty()) continue;
    os << "  lease " << run.lease << " [" << run.lo << ".." << run.hi
       << ") worker " << run.worker << " FAILED: " << run.error
       << "\n    stderr: " << stderr_excerpt(run.last.err) << "\n";
  }
  if (!queue.abort_reason.empty()) {
    os << "ABORTED: " << queue.abort_reason << "\n";
  }
  if (!merge_error.empty()) {
    os << "merge: FAILED: " << merge_error << "\n";
  }
  return os.str();
}

ElasticResult orchestrate_elastic(
    const ElasticOrchestratorOptions& options) {
  SETLIB_EXPECTS(!options.bench.empty());
  SETLIB_EXPECTS(options.workers >= 1);
  SETLIB_EXPECTS(options.span >= 1);
  SETLIB_EXPECTS(options.lease_timeout.count() > 0);
  SETLIB_EXPECTS(!options.shard_dir.empty());

  std::filesystem::create_directories(options.shard_dir);

  runtime::LocalExecTransport local;
  runtime::Transport* transport =
      options.transport ? options.transport : &local;

  WorkQueueOptions queue_options;
  queue_options.span = options.span;
  queue_options.ranges = options.ranges;
  queue_options.workers = options.workers;
  queue_options.lease_timeout = options.lease_timeout;
  queue_options.straggler_factor = options.straggler_factor;
  queue_options.straggler_min = options.straggler_min;
  queue_options.failure_budget = options.failure_budget;
  queue_options.clock = options.clock;
  WorkQueue queue(queue_options);

  ElasticResult result;
  util::Mutex mu;  // guards result.leases and accepted docs
  // Accepted documents with their virtual lo, for the merge ordering.
  std::vector<std::pair<std::size_t, JsonValue>> accepted;

  auto run_worker = [&](int worker) {
    int failure_streak = 0;
    for (;;) {
      std::optional<Lease> lease = queue.acquire(worker);
      if (!lease) return;

      LeaseRun run;
      run.lease = lease->id;
      run.lo = lease->lo;
      run.hi = lease->hi;
      run.worker = worker;
      run.json_path = options.shard_dir + "/lease_" +
                      std::to_string(lease->id) + ".json";

      runtime::TransportCommand command;
      command.argv.reserve(options.bench_args.size() + 3);
      command.argv.push_back(options.bench);
      command.argv.insert(command.argv.end(),
                          options.bench_args.begin(),
                          options.bench_args.end());
      // The issue's worker flag: bare LO..HI rides on the default
      // span; a non-default span travels explicitly.
      std::string cells = "--cells=" + std::to_string(lease->lo) +
                          ".." + std::to_string(lease->hi);
      if (options.span != ShardSpec::kLeaseSpan) {
        cells += "/" + std::to_string(options.span);
      }
      command.argv.push_back(cells);
      command.argv.push_back("--json=" + run.json_path);
      // A local child cannot outlive its lease.
      command.timeout = options.lease_timeout;

      std::error_code ignored;
      std::filesystem::remove(run.json_path, ignored);

      run.last = transport->run(command);
      std::string text;
      JsonValue doc;
      if (!run.last.ok()) {
        run.error = run.last.describe();
      } else if (!read_file(run.json_path, text)) {
        run.error = "worker exited 0 but wrote no " + run.json_path;
      } else {
        try {
          doc = JsonValue::parse(text);
        } catch (const JsonParseError& e) {
          run.error =
              std::string("worker wrote unparsable JSON: ") + e.what();
        }
      }

      if (run.error.empty()) {
        run.ok = true;
        run.accepted = queue.complete(lease->id);
        failure_streak = 0;
        const util::MutexLock lock(mu);
        if (run.accepted) {
          accepted.emplace_back(run.lo, std::move(doc));
        }
        result.leases.push_back(std::move(run));
      } else {
        queue.fail(lease->id, run.error);
        ++failure_streak;
        {
          const util::MutexLock lock(mu);
          result.leases.push_back(std::move(run));
        }
        // A worker whose children keep dying backs off before leasing
        // again, so a poisoned environment cannot spin through the
        // failure budget at full speed.
        std::this_thread::sleep_for(backoff_delay(
            options.backoff, static_cast<std::uint64_t>(worker),
            failure_streak));
      }
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(options.workers));
    for (int w = 0; w < options.workers; ++w) {
      threads.emplace_back(run_worker, w);
    }
  }

  result.queue = queue.report();

  if (result.queue.abort_reason.empty() && !accepted.empty()) {
    std::sort(accepted.begin(), accepted.end(),
              [](const auto& a, const auto& b) {
                return a.first < b.first;
              });
    std::vector<JsonValue> docs;
    docs.reserve(accepted.size());
    for (auto& [lo, doc] : accepted) docs.push_back(std::move(doc));
    try {
      result.merged = merge_shard_docs(docs);
      // The scheduler's accounting rides along under a timing key:
      // pure wall-clock/scheduling facts, excluded from determinism
      // diffs by is_timing_key("orchestration").
      JsonValue orchestration = result.queue.to_json();
      orchestration.set("transport",
                        JsonValue::of(transport->describe()));
      orchestration.set(
          "workers",
          JsonValue::of(static_cast<std::int64_t>(options.workers)));
      result.merged.set("orchestration", std::move(orchestration));
    } catch (const MergeError& e) {
      result.merge_error = e.what();
    }
  }

  return result;
}

void remove_lease_documents(const ElasticOrchestratorOptions& options,
                            const ElasticResult& result) {
  for (const LeaseRun& run : result.leases) {
    std::error_code ignored;
    std::filesystem::remove(run.json_path, ignored);
  }
  std::error_code ignored;
  std::filesystem::remove(options.shard_dir, ignored);  // if now empty
}

}  // namespace setlib::core
