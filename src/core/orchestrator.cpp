#include "src/core/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/util/assert.h"

namespace setlib::core {

namespace {

/// Reads a whole file; false when it cannot be opened.
bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

/// Trims a stderr capture for the failure report: last `limit` bytes,
/// whole lines.
std::string stderr_excerpt(const std::string& err,
                           std::size_t limit = 2000) {
  if (err.empty()) return "(empty)";
  std::string text = err;
  if (text.size() > limit) {
    text = text.substr(text.size() - limit);
    const std::size_t nl = text.find('\n');
    if (nl != std::string::npos && nl + 1 < text.size()) {
      text = text.substr(nl + 1);
    }
    text.insert(0, "[...]\n");
  }
  return text;
}

}  // namespace

bool OrchestrationResult::ok() const {
  if (!merge_error.empty()) return false;
  if (shards.empty()) return false;
  for (const ShardRun& shard : shards) {
    if (!shard.ok) return false;
  }
  return true;
}

std::string OrchestrationResult::summary() const {
  std::ostringstream os;
  for (const ShardRun& shard : shards) {
    os << "shard " << shard.shard << "/" << shards.size() << ": ";
    if (shard.ok) {
      os << "ok (" << shard.attempts << " attempt"
         << (shard.attempts == 1 ? "" : "s") << ", "
         << shard.last.wall_seconds << " s)\n";
    } else {
      os << "FAILED after " << shard.attempts << " attempt"
         << (shard.attempts == 1 ? "" : "s") << ": " << shard.error
         << "\n  last stderr: "
         << stderr_excerpt(shard.last.err) << "\n";
    }
  }
  if (!merge_error.empty()) {
    os << "merge: FAILED: " << merge_error << "\n";
  }
  return os.str();
}

OrchestrationResult orchestrate(const OrchestratorOptions& options) {
  SETLIB_EXPECTS(!options.bench.empty());
  SETLIB_EXPECTS(options.shards >= 1);
  SETLIB_EXPECTS(options.workers >= 0);
  SETLIB_EXPECTS(options.retries >= 0);
  SETLIB_EXPECTS(!options.shard_dir.empty());

  std::filesystem::create_directories(options.shard_dir);

  const int n = options.shards;
  OrchestrationResult result;
  result.shards.resize(static_cast<std::size_t>(n));
  std::vector<JsonValue> docs(static_cast<std::size_t>(n));

  int workers = options.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers = std::min(workers, n);

  // Each worker thread claims shard indices off the shared counter and
  // drives one child at a time: launch, wait, verify, retry.
  std::atomic<int> next{0};
  auto run_shards = [&] {
    for (;;) {
      const int k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= n) return;
      ShardRun& run = result.shards[static_cast<std::size_t>(k)];
      run.shard = k;
      run.json_path = options.shard_dir + "/shard_" +
                      std::to_string(k) + ".json";

      std::vector<std::string> argv;
      argv.reserve(options.bench_args.size() + 3);
      argv.push_back(options.bench);
      argv.insert(argv.end(), options.bench_args.begin(),
                  options.bench_args.end());
      argv.push_back("--shard=" + std::to_string(k) + "/" +
                     std::to_string(n));
      argv.push_back("--json=" + run.json_path);

      runtime::Subprocess::Options sub_options;
      sub_options.timeout = options.timeout;

      for (int attempt = 0; attempt <= options.retries; ++attempt) {
        ++run.attempts;
        // A stale or truncated document from a previous attempt (or
        // run) must never be mistaken for this attempt's output.
        std::error_code ignored;
        std::filesystem::remove(run.json_path, ignored);

        run.last = runtime::Subprocess::run(argv, sub_options);
        if (!run.last.ok()) {
          run.error = run.last.describe();
          continue;
        }
        std::string text;
        if (!read_file(run.json_path, text)) {
          run.error = "worker exited 0 but wrote no " + run.json_path;
          continue;
        }
        try {
          docs[static_cast<std::size_t>(k)] = JsonValue::parse(text);
        } catch (const JsonParseError& e) {
          run.error = std::string("worker wrote unparsable JSON: ") +
                      e.what();
          continue;
        }
        run.ok = true;
        run.error.clear();
        break;
      }
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(run_shards);
  }

  bool all_ok = true;
  for (const ShardRun& run : result.shards) all_ok &= run.ok;
  if (all_ok) {
    try {
      result.merged = merge_shard_docs(docs);
    } catch (const MergeError& e) {
      result.merge_error = e.what();
    }
  }

  return result;
}

void remove_shard_documents(const OrchestratorOptions& options,
                            const OrchestrationResult& result) {
  for (const ShardRun& run : result.shards) {
    std::error_code ignored;
    std::filesystem::remove(run.json_path, ignored);
  }
  std::error_code ignored;
  std::filesystem::remove(options.shard_dir, ignored);  // if now empty
}

}  // namespace setlib::core
