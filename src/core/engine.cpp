#include "src/core/engine.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/agreement/kset.h"
#include "src/agreement/trivial.h"
#include "src/agreement/validator.h"
#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/sched/families.h"
#include "src/sched/reactive.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/assert.h"

namespace setlib::core {

namespace {

struct FamilySetup {
  std::unique_ptr<sched::ScheduleGenerator> generator;
  sched::CrashPlan plan;
  ProcSet timely_set;
  ProcSet observed_set;
  // Reactive families only: the feed the simulator publishes into and
  // the generator (owned by `generator`) whose crash decisions the
  // simulator mirrors.
  std::shared_ptr<sched::ObservationFeed> feed;
  sched::ReactiveGenerator* reactive = nullptr;

  explicit FamilySetup(int n) : plan(n) {}
};

FamilySetup make_friendly(const RunConfig& cfg) {
  const int n = cfg.spec.n;
  FamilySetup setup(n);
  setup.timely_set = ProcSet::range(0, cfg.system.i);
  setup.observed_set = ProcSet::range(0, cfg.system.j);
  setup.plan = cfg.crashes.value_or(sched::CrashPlan::none(n));
  SETLIB_EXPECTS(setup.plan.n() == n);
  auto base =
      std::make_unique<sched::UniformRandomGenerator>(n, cfg.seed);
  std::vector<sched::TimelinessConstraint> constraints;
  constraints.emplace_back(setup.timely_set, setup.observed_set,
                           cfg.timeliness_bound);
  setup.generator = std::make_unique<sched::EnforcedGenerator>(
      std::move(base), std::move(constraints), setup.plan);
  return setup;
}

FamilySetup make_rotisserie(const RunConfig& cfg) {
  const int n = cfg.spec.n;
  FamilySetup setup(n);
  const int gap = cfg.system.j - cfg.system.i;
  const int crash_count = std::min(gap, cfg.spec.t);
  SETLIB_EXPECTS(crash_count == gap);  // j - i > t cells use the
                                       // friendly family instead
  const ProcSet crashed = ProcSet::range(n - crash_count, n);
  const ProcSet live = crashed.complement(n);
  SETLIB_ASSERT(live.size() >= cfg.system.i);
  setup.plan = sched::CrashPlan::at(n, crashed, 0);
  // P = first i live processes; Q = P plus the crashed processes. The
  // only Q members that ever step are P members, so P is timely w.r.t.
  // Q with bound 1: the schedule is in S^i_{j,n} by construction.
  ProcSet p;
  for (Pid x : live.to_vector()) {
    if (p.size() < cfg.system.i) p = p.with(x);
  }
  setup.timely_set = p;
  setup.observed_set = p | crashed;
  SETLIB_ASSERT(setup.observed_set.size() == cfg.system.j);
  setup.generator = std::make_unique<sched::RotatingStarverGenerator>(
      n, live, ProcSet(), cfg.rotisserie_growth);
  return setup;
}

FamilySetup make_starver(const RunConfig& cfg) {
  const int n = cfg.spec.n;
  FamilySetup setup(n);
  // All processes stay correct; starvation rotates over k-subsets. The
  // witness pair: any i > k processes always include an active one, so
  // P = first i pids is timely w.r.t. anything, in particular the first
  // j pids.
  setup.timely_set = ProcSet::range(0, cfg.system.i);
  setup.observed_set = ProcSet::range(0, cfg.system.j);
  setup.generator = std::make_unique<sched::KSubsetStarverGenerator>(
      n, ProcSet::universe(n), cfg.spec.k, cfg.rotisserie_growth);
  return setup;
}

sched::FamilyParams randomized_params(const RunConfig& cfg) {
  sched::FamilyParams params;
  params.n = cfg.spec.n;
  params.scale = cfg.adversary_scale;
  // Crash-prone stays inside the spec's resilience budget, so the
  // validator's termination clause still quantifies over a legal
  // faulty set; crash steps and the GST switch scale with the run so
  // both eras are actually exercised.
  params.crash_count = std::min(cfg.spec.t, cfg.spec.n - 1);
  params.crash_horizon = std::max<std::int64_t>(1, cfg.max_steps / 2);
  params.gst = std::max<std::int64_t>(1, cfg.max_steps / 8);
  return params;
}

FamilySetup make_randomized(const RunConfig& cfg) {
  const int n = cfg.spec.n;
  FamilySetup setup(n);
  // The canonical witness pair: these families promise nothing about
  // S^i_{j,n} membership, so the measured witness_bound on
  // (range(0,i), range(0,j)) is the observable — the frontier bench
  // maps it per family.
  setup.timely_set = ProcSet::range(0, cfg.system.i);
  setup.observed_set = ProcSet::range(0, cfg.system.j);
  const sched::FamilyParams params = randomized_params(cfg);
  switch (cfg.family) {
    case ScheduleFamily::kBursty:
      setup.generator = sched::make_family(sched::FamilyKind::kBursty,
                                           params, cfg.seed);
      break;
    case ScheduleFamily::kStarvation:
      setup.generator = sched::make_family(sched::FamilyKind::kStarvation,
                                           params, cfg.seed);
      break;
    case ScheduleFamily::kCrashProne:
      // The simulator must mirror the generator's crashes so the
      // validator sees the same faulty set; crash_prone_plan is
      // exactly the plan make_family embeds.
      setup.plan = sched::crash_prone_plan(params, cfg.seed);
      setup.generator = sched::make_family(sched::FamilyKind::kCrashProne,
                                           params, cfg.seed);
      break;
    case ScheduleFamily::kGst:
      setup.generator =
          sched::make_family(sched::FamilyKind::kGst, params, cfg.seed);
      break;
    default:
      SETLIB_ASSERT(false);
  }
  return setup;
}

FamilySetup make_reactive_setup(const RunConfig& cfg) {
  const int n = cfg.spec.n;
  FamilySetup setup(n);
  // Same canonical witness pair as the randomized families: reactive
  // adversaries promise nothing about S^i_{j,n} membership, the
  // measured witness_bound is the observable.
  setup.timely_set = ProcSet::range(0, cfg.system.i);
  setup.observed_set = ProcSet::range(0, cfg.system.j);
  sched::ReactiveParams params;
  params.n = n;
  params.stretch = cfg.adversary_scale;
  params.victims = 0;  // auto per kind
  // The budget-crasher may spend exactly the spec's resilience budget,
  // so the validator's termination clause still quantifies over a
  // legal faulty set.
  params.crash_budget = std::min(cfg.spec.t, n - 1);
  params.decide_threshold = cfg.stabilization_window;
  const sched::ReactiveKind kind = [&] {
    switch (cfg.family) {
      case ScheduleFamily::kWindowStretcher:
        return sched::ReactiveKind::kWindowStretcher;
      case ScheduleFamily::kDecisionChaser:
        return sched::ReactiveKind::kDecisionChaser;
      case ScheduleFamily::kBudgetCrasher:
        return sched::ReactiveKind::kBudgetCrasher;
      default:
        SETLIB_ASSERT(false);
        return sched::ReactiveKind::kWindowStretcher;
    }
  }();
  auto gen = sched::make_reactive(kind, params, cfg.seed);
  setup.reactive = gen.get();
  setup.feed = gen->feed_ptr();
  setup.generator = std::move(gen);
  return setup;
}

}  // namespace

RunReport run_agreement(const RunConfig& cfg) {
  // One-off convenience path (tests, tools): a run-local arena with
  // the standard reserve, so the counters mean the same thing as on
  // the runner's per-worker arenas.
  util::ArenaAllocator arena;
  return run_agreement(cfg, arena);
}

RunReport run_agreement(const RunConfig& cfg, util::ArenaAllocator& arena) {
  cfg.spec.validate();
  cfg.system.validate();
  SETLIB_EXPECTS(cfg.spec.n == cfg.system.n);
  SETLIB_EXPECTS(cfg.max_steps > 0);
  const int n = cfg.spec.n;
  const int k = cfg.spec.k;
  const int t = cfg.spec.t;

  std::vector<std::int64_t> proposals = cfg.proposals;
  if (proposals.empty()) {
    for (Pid p = 0; p < n; ++p) proposals.push_back(100 + p);
  }
  SETLIB_EXPECTS(proposals.size() == static_cast<std::size_t>(n));

  FamilySetup setup = [&] {
    switch (cfg.family) {
      case ScheduleFamily::kEnforcedRandom:
        return make_friendly(cfg);
      case ScheduleFamily::kRotisserie:
        return make_rotisserie(cfg);
      case ScheduleFamily::kKSubsetStarver:
        return make_starver(cfg);
      case ScheduleFamily::kBursty:
      case ScheduleFamily::kStarvation:
      case ScheduleFamily::kCrashProne:
      case ScheduleFamily::kGst:
        return make_randomized(cfg);
      case ScheduleFamily::kWindowStretcher:
      case ScheduleFamily::kDecisionChaser:
      case ScheduleFamily::kBudgetCrasher:
        return make_reactive_setup(cfg);
    }
    SETLIB_ASSERT(false);
    return make_friendly(cfg);
  }();

  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  sim.use_crash_plan(setup.plan);
  if (setup.feed != nullptr) sim.publish_observations(setup.feed.get());
  if (setup.reactive != nullptr) {
    // Mirror the adversary's budget spending into the simulator so the
    // crashed processes actually stop and the validator's faulty set
    // matches crashes_requested().
    sim.use_crash_source(
        [r = setup.reactive] { return r->crashes_requested(); });
  }

  RunReport report;
  report.timely_set = setup.timely_set;
  report.observed_set = setup.observed_set;
  report.decisions.assign(static_cast<std::size_t>(n), std::nullopt);

  const ProcSet planned_correct = setup.plan.faulty().complement(n);

  if (k > t) {
    // Corollary 25's trivial regime: solvable under full asynchrony.
    report.algorithm = "trivial";
    agreement::TrivialAgreement algo(mem, n, t);
    std::vector<agreement::TrivialAgreement::Outcome> outs(
        static_cast<std::size_t>(n));
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(
          algo.run(p, proposals[static_cast<std::size_t>(p)],
                   &outs[static_cast<std::size_t>(p)]),
          "trivial");
    }
    auto all_correct_decided = [&] {
      if (setup.feed != nullptr) {
        for (Pid p = 0; p < n; ++p) {
          if (outs[static_cast<std::size_t>(p)].decided) {
            setup.feed->publish_decided(p);
          }
        }
      }
      if (cfg.run_full_budget) return false;
      const ProcSet correct = sim.crashed_set().complement(n);
      for (Pid p : correct.to_vector()) {
        if (!outs[static_cast<std::size_t>(p)].decided) return false;
      }
      return true;
    };
    report.steps_executed =
        sim.run_until(*setup.generator, cfg.max_steps, all_correct_decided);
    for (Pid p = 0; p < n; ++p) {
      if (outs[static_cast<std::size_t>(p)].decided) {
        report.decisions[static_cast<std::size_t>(p)] =
            outs[static_cast<std::size_t>(p)].value;
      }
    }
  } else {
    report.algorithm = "kanti-omega+paxos";
    fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
    agreement::KSetAgreement kset(mem,
                                  agreement::KSetAgreement::Params{n, k, t},
                                  &detector);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(detector.run(p), "kanti-omega");
      kset.install(sim.process(p), p,
                   proposals[static_cast<std::size_t>(p)]);
    }
    auto all_correct_decided = [&] {
      if (setup.feed != nullptr) {
        // Decision proximity for reactive adversaries: detector
        // iterations plus decided flags, straight from deterministic
        // protocol state (published every stop-check, i.e. every 64
        // executed steps).
        for (Pid p = 0; p < n; ++p) {
          setup.feed->publish_progress(p, detector.view(p).iterations);
          if (kset.decided(p)) setup.feed->publish_decided(p);
        }
      }
      if (cfg.run_full_budget) return false;
      return kset.all_decided(sim.crashed_set().complement(n));
    };
    report.steps_executed =
        sim.run_until(*setup.generator, cfg.max_steps, all_correct_decided);
    for (Pid p = 0; p < n; ++p) {
      if (kset.decided(p)) {
        report.decisions[static_cast<std::size_t>(p)] =
            kset.outcome(p).value;
      }
    }
    report.detector.used = true;
    const ProcSet correct = sim.crashed_set().complement(n);
    // "Eventually forever" on a finite run: require quiescence over the
    // trailing third of the slowest correct process's iterations (with
    // the configured window as a floor), so slow oscillation on long
    // runs is not mistaken for convergence.
    std::int64_t min_it = -1;
    for (Pid p : correct.to_vector()) {
      const auto it = detector.view(p).iterations;
      min_it = min_it < 0 ? it : std::min(min_it, it);
    }
    const std::int64_t window =
        std::max(cfg.stabilization_window, std::max<std::int64_t>(min_it, 0) / 3);
    const auto prop = fd::check_kantiomega(detector, correct, window);
    report.detector.stabilized = prop.stabilized;
    report.detector.winnerset = prop.winnerset;
    report.detector.winnerset_has_correct = prop.has_correct_winner;
    report.detector.trusted = prop.trusted;
    report.detector.abstract_ok = prop.abstract_ok;
    std::int64_t max_it = 0;
    for (Pid p : correct.to_vector()) {
      const auto& v = detector.view(p);
      max_it = std::max(max_it, v.iterations);
      report.detector.total_winnerset_changes += v.winnerset_changes;
    }
    report.detector.min_iterations = std::max<std::int64_t>(min_it, 0);
    report.detector.max_iterations = max_it;
  }

  report.faulty = sim.crashed_set();
  const ProcSet allowed_faulty =
      planned_correct.complement(n) |
      (setup.reactive != nullptr ? setup.reactive->crashes_requested()
                                 : ProcSet());
  SETLIB_ASSERT(report.faulty.subset_of(allowed_faulty));

  const auto verdict = agreement::validate_agreement(
      t, k, n, proposals, report.decisions, report.faulty);
  report.terminated = verdict.termination_ok;
  report.agreement_ok = verdict.agreement_ok;
  report.validity_ok = verdict.validity_ok;
  report.distinct_decisions = verdict.distinct_values;
  report.success = verdict.ok;

  {
    // Analysis phase: pack the executed schedule once on the cell
    // arena and run the witness check on the packed form. The counter
    // deltas across this frame are the run's allocation account —
    // zero when the packed words + scan scratch fit the reserve.
    const std::int64_t allocs_before = arena.allocs();
    const std::int64_t bytes_before = arena.bytes();
    const util::FrameScope frame(arena);
    const sched::PackedSchedule packed(sim.executed(), arena);
    report.witness_bound =
        packed.bound_for(setup.timely_set, setup.observed_set);
    report.schedule_hash = sched::schedule_hash(sim.executed());
    report.allocs_per_op = arena.allocs() - allocs_before;
    report.bytes_per_op = arena.bytes() - bytes_before;
  }

  std::ostringstream os;
  os << verdict.detail << " steps=" << report.steps_executed
     << " witness_bound=" << report.witness_bound;
  if (report.detector.used) {
    os << " detector="
       << (report.detector.stabilized ? "stable" : "oscillating");
    if (report.detector.stabilized) {
      os << " winnerset=" << report.detector.winnerset;
    }
  }
  report.detail = os.str();
  return report;
}

}  // namespace setlib::core
