#include "src/core/sweep.h"

#include <chrono>
#include <map>
#include <utility>

#include "src/core/solvability.h"
#include "src/runtime/executor.h"
#include "src/util/assert.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace setlib::core {

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index) noexcept {
  // Advance a splitmix64 stream to the cell's slot: the golden-ratio
  // increment is exactly splitmix64's internal stride, so cells get
  // distinct, well-mixed, index-pure seeds.
  std::uint64_t state =
      base_seed + 0x9E3779B97F4A7C15ull * (cell_index + 1);
  return splitmix64(state);
}

const char* family_name(ScheduleFamily family) noexcept {
  switch (family) {
    case ScheduleFamily::kEnforcedRandom:
      return "friendly";
    case ScheduleFamily::kRotisserie:
      return "rotisserie";
    case ScheduleFamily::kKSubsetStarver:
      return "k-subset starver";
  }
  return "unknown";
}

SweepGrid& SweepGrid::add_spec(const AgreementSpec& spec) {
  spec.validate();
  specs_.push_back(spec);
  return *this;
}

SweepGrid& SweepGrid::add_family(ScheduleFamily family) {
  families_.push_back(family);
  return *this;
}

SweepGrid& SweepGrid::add_bound(std::int64_t timeliness_bound) {
  SETLIB_EXPECTS(timeliness_bound >= 1);
  bounds_.push_back(timeliness_bound);
  return *this;
}

SweepGrid& SweepGrid::add_system(const SystemSpec& system) {
  system.validate();
  axis_ = SystemAxis::kExplicit;
  systems_.push_back(system);
  return *this;
}

SweepGrid& SweepGrid::system_axis(SystemAxis axis) {
  axis_ = axis;
  return *this;
}

SweepGrid& SweepGrid::repeats(int repeats) {
  SETLIB_EXPECTS(repeats >= 1);
  repeats_ = repeats;
  return *this;
}

SweepGrid& SweepGrid::base_seed(std::uint64_t seed) {
  base_seed_ = seed;
  return *this;
}

SweepGrid& SweepGrid::prototype(const RunConfig& config) {
  prototype_ = config;
  return *this;
}

SweepGrid& SweepGrid::per_cell(std::function<void(SweepCell&)> hook) {
  per_cell_ = std::move(hook);
  return *this;
}

std::vector<SweepGrid::Point> SweepGrid::points() const {
  std::vector<Point> out;
  for (const AgreementSpec& spec : specs_) {
    switch (axis_) {
      case SystemAxis::kMatching:
        out.push_back({spec, matching_system(spec)});
        break;
      case SystemAxis::kFullMatrix:
        for (int i = 1; i <= spec.n; ++i) {
          for (int j = i; j <= spec.n; ++j) {
            out.push_back({spec, SystemSpec{i, j, spec.n}});
          }
        }
        break;
      case SystemAxis::kExplicit:
        for (const SystemSpec& system : systems_) {
          out.push_back({spec, system});
        }
        break;
    }
  }
  return out;
}

std::size_t SweepGrid::size() const {
  const std::size_t families = families_.empty() ? 1 : families_.size();
  const std::size_t bounds = bounds_.empty() ? 1 : bounds_.size();
  return points().size() * families * bounds *
         static_cast<std::size_t>(repeats_);
}

SweepCell SweepGrid::cell(std::size_t index) const {
  return cell_at(index, points());
}

SweepCell SweepGrid::cell_at(std::size_t index,
                             const std::vector<Point>& pts) const {
  const std::size_t families = families_.empty() ? 1 : families_.size();
  const std::size_t bounds = bounds_.empty() ? 1 : bounds_.size();
  const std::size_t repeats = static_cast<std::size_t>(repeats_);
  SETLIB_EXPECTS(index < pts.size() * families * bounds * repeats);

  std::size_t rest = index;
  const std::size_t repeat = rest % repeats;
  rest /= repeats;
  const std::size_t bound = rest % bounds;
  rest /= bounds;
  const std::size_t family = rest % families;
  rest /= families;
  const Point& point = pts[rest];

  SweepCell cell;
  cell.index = index;
  cell.repeat = static_cast<int>(repeat);
  cell.config = prototype_;
  cell.config.spec = point.spec;
  cell.config.system = point.system;
  if (!families_.empty()) cell.config.family = families_[family];
  if (!bounds_.empty()) cell.config.timeliness_bound = bounds_[bound];
  cell.config.seed = derive_cell_seed(base_seed_, index);
  if (per_cell_) per_cell_(cell);
  return cell;
}

std::vector<SweepCell> SweepGrid::cells() const {
  // Materialize the (spec, system) points once for the whole grid:
  // cell() would rebuild them per call, which is quadratic on
  // full-matrix grids.
  const std::vector<Point> pts = points();
  const std::size_t families = families_.empty() ? 1 : families_.size();
  const std::size_t bounds = bounds_.empty() ? 1 : bounds_.size();
  const std::size_t n =
      pts.size() * families * bounds * static_cast<std::size_t>(repeats_);
  std::vector<SweepCell> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(cell_at(i, pts));
  return out;
}

ParallelSweep::ParallelSweep(SweepOptions options) : options_(options) {}

void ParallelSweep::for_each(std::size_t n, int threads,
                             const std::function<void(std::size_t)>& fn) {
  runtime::WorkStealingPool pool(threads);
  pool.for_each(n, fn);
}

SweepResult ParallelSweep::run(const SweepGrid& grid) const {
  SweepResult result;
  result.cells = grid.cells();
  result.reports.resize(result.cells.size());

  const auto start = std::chrono::steady_clock::now();
  for_each(result.cells.size(), options_.threads, [&](std::size_t i) {
    result.reports[i] = run_agreement(result.cells[i].config);
  });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  SweepAggregate& agg = result.aggregate;
  agg.cells = result.reports.size();
  for (const RunReport& report : result.reports) {  // cell order
    if (report.success) ++agg.successes;
    if (report.detector.abstract_ok) ++agg.detector_ok;
    agg.steps.add(static_cast<double>(report.steps_executed));
    agg.witness_bound.add(static_cast<double>(report.witness_bound));
    agg.distinct_decisions.add(
        static_cast<double>(report.distinct_decisions));
  }
  agg.wall_seconds = wall.count();
  agg.runs_per_second =
      agg.wall_seconds > 0.0
          ? static_cast<double>(agg.cells) / agg.wall_seconds
          : 0.0;
  return result;
}

std::string SweepResult::render_success_matrix() const {
  // Group cells by (spec, family) in first-appearance order.
  struct Group {
    std::size_t cells = 0;
    std::size_t successes = 0;
    std::size_t detector_ok = 0;
    Summary steps;
  };
  std::vector<std::pair<std::string, Group>> groups;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const RunConfig& config = cells[i].config;
    std::string key = config.spec.to_string();
    key.append(" / ").append(family_name(config.family));
    auto [it, inserted] = index_of.try_emplace(key, groups.size());
    if (inserted) groups.emplace_back(key, Group{});
    Group& g = groups[it->second].second;
    ++g.cells;
    if (reports[i].success) ++g.successes;
    if (reports[i].detector.abstract_ok) ++g.detector_ok;
    g.steps.add(static_cast<double>(reports[i].steps_executed));
  }

  TextTable table({"spec / family", "cells", "success rate",
                   "detector ok", "mean steps", "p90 steps"});
  for (const auto& [key, g] : groups) {
    const double rate =
        g.cells == 0 ? 0.0
                     : static_cast<double>(g.successes) /
                           static_cast<double>(g.cells);
    table.row()
        .cell(key)
        .cell(g.cells)
        .cell(rate)
        .cell(g.detector_ok)
        .cell(g.steps.empty() ? 0.0 : g.steps.mean())
        .cell(g.steps.empty() ? 0.0 : g.steps.percentile(90.0));
  }
  return table.render();
}

}  // namespace setlib::core
