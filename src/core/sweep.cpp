#include "src/core/sweep.h"

#include <utility>

#include "src/core/solvability.h"
#include "src/util/assert.h"
#include "src/util/rng.h"

namespace setlib::core {

std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                               std::uint64_t cell_index) noexcept {
  // Advance a splitmix64 stream to the cell's slot: the golden-ratio
  // increment is exactly splitmix64's internal stride, so cells get
  // distinct, well-mixed, index-pure seeds.
  std::uint64_t state =
      base_seed + 0x9E3779B97F4A7C15ull * (cell_index + 1);
  return splitmix64(state);
}

const char* family_name(ScheduleFamily family) noexcept {
  switch (family) {
    case ScheduleFamily::kEnforcedRandom:
      return "friendly";
    case ScheduleFamily::kRotisserie:
      return "rotisserie";
    case ScheduleFamily::kKSubsetStarver:
      return "k-subset starver";
    case ScheduleFamily::kBursty:
      return "bursty";
    case ScheduleFamily::kStarvation:
      return "starvation";
    case ScheduleFamily::kCrashProne:
      return "crash-prone";
    case ScheduleFamily::kGst:
      return "gst";
    case ScheduleFamily::kWindowStretcher:
      return "window-stretcher";
    case ScheduleFamily::kDecisionChaser:
      return "decision-chaser";
    case ScheduleFamily::kBudgetCrasher:
      return "budget-crasher";
  }
  return "unknown";
}

const std::vector<ScheduleFamily>& randomized_families() {
  static const std::vector<ScheduleFamily> families = {
      ScheduleFamily::kBursty,
      ScheduleFamily::kStarvation,
      ScheduleFamily::kCrashProne,
      ScheduleFamily::kGst,
  };
  return families;
}

const std::vector<ScheduleFamily>& reactive_families() {
  static const std::vector<ScheduleFamily> families = {
      ScheduleFamily::kWindowStretcher,
      ScheduleFamily::kDecisionChaser,
      ScheduleFamily::kBudgetCrasher,
  };
  return families;
}

SweepGrid& SweepGrid::add_spec(const AgreementSpec& spec) {
  spec.validate();
  specs_.push_back(spec);
  points_valid_ = false;
  return *this;
}

SweepGrid& SweepGrid::add_family(ScheduleFamily family) {
  families_.push_back(family);
  return *this;
}

SweepGrid& SweepGrid::add_bound(std::int64_t timeliness_bound) {
  SETLIB_EXPECTS(timeliness_bound >= 1);
  bounds_.push_back(timeliness_bound);
  return *this;
}

SweepGrid& SweepGrid::add_system(const SystemSpec& system) {
  system.validate();
  axis_ = SystemAxis::kExplicit;
  systems_.push_back(system);
  points_valid_ = false;
  return *this;
}

SweepGrid& SweepGrid::system_axis(SystemAxis axis) {
  axis_ = axis;
  points_valid_ = false;
  return *this;
}

SweepGrid& SweepGrid::repeats(int repeats) {
  SETLIB_EXPECTS(repeats >= 1);
  repeats_ = repeats;
  return *this;
}

SweepGrid& SweepGrid::base_seed(std::uint64_t seed) {
  base_seed_ = seed;
  return *this;
}

SweepGrid& SweepGrid::prototype(const RunConfig& config) {
  prototype_ = config;
  return *this;
}

SweepGrid& SweepGrid::per_cell(std::function<void(SweepCell&)> hook) {
  per_cell_ = std::move(hook);
  return *this;
}

const std::vector<SweepGrid::Point>& SweepGrid::points() const {
  // Memoized: recomputing the axis product per cell() call is
  // quadratic on full-matrix grids and dominates on 10^5-cell grids.
  if (!points_valid_) {
    points_cache_.clear();
    for (const AgreementSpec& spec : specs_) {
      switch (axis_) {
        case SystemAxis::kMatching:
          points_cache_.push_back({spec, matching_system(spec)});
          break;
        case SystemAxis::kFullMatrix:
          for (int i = 1; i <= spec.n; ++i) {
            for (int j = i; j <= spec.n; ++j) {
              points_cache_.push_back({spec, SystemSpec{i, j, spec.n}});
            }
          }
          break;
        case SystemAxis::kExplicit:
          for (const SystemSpec& system : systems_) {
            points_cache_.push_back({spec, system});
          }
          break;
      }
    }
    points_valid_ = true;
  }
  return points_cache_;
}

std::size_t SweepGrid::size() const {
  const std::size_t families = families_.empty() ? 1 : families_.size();
  const std::size_t bounds = bounds_.empty() ? 1 : bounds_.size();
  return points().size() * families * bounds *
         static_cast<std::size_t>(repeats_);
}

SweepCell SweepGrid::cell(std::size_t index) const {
  const std::vector<Point>& pts = points();
  const std::size_t families = families_.empty() ? 1 : families_.size();
  const std::size_t bounds = bounds_.empty() ? 1 : bounds_.size();
  const std::size_t repeats = static_cast<std::size_t>(repeats_);
  SETLIB_EXPECTS(index < pts.size() * families * bounds * repeats);

  std::size_t rest = index;
  const std::size_t repeat = rest % repeats;
  rest /= repeats;
  const std::size_t bound = rest % bounds;
  rest /= bounds;
  const std::size_t family = rest % families;
  rest /= families;
  const Point& point = pts[rest];

  SweepCell cell;
  cell.index = index;
  cell.repeat = static_cast<int>(repeat);
  cell.config = prototype_;
  cell.config.spec = point.spec;
  cell.config.system = point.system;
  if (!families_.empty()) cell.config.family = families_[family];
  if (!bounds_.empty()) cell.config.timeliness_bound = bounds_[bound];
  cell.config.seed = derive_cell_seed(base_seed_, index);
  if (per_cell_) per_cell_(cell);
  return cell;
}

std::vector<SweepCell> SweepGrid::cells() const {
  const std::size_t n = size();
  std::vector<SweepCell> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(cell(i));
  return out;
}

}  // namespace setlib::core
