#include "src/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace setlib {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os << value;
  return os.str();
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::of(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::of(double value) {
  if (!std::isfinite(value)) return null();
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  v.text_ = json_number(value);
  return v;
}

JsonValue JsonValue::of(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(value);
  v.text_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::of(std::size_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(value);
  v.text_ = std::to_string(value);
  return v;
}

JsonValue JsonValue::of(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(value);
  return v;
}

JsonValue JsonValue::of(const char* value) {
  return of(std::string(value));
}

JsonValue JsonValue::number_literal(std::string literal, double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  v.text_ = std::move(literal);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  for (auto& [key, value] : members) v.set(key, std::move(value));
  return v;
}

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw JsonParseError("json parse error at byte " + std::to_string(at) +
                       ": " + what);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing content");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::of(parse_string());
      case 't':
        if (!consume_word("true")) fail(pos_, "bad literal");
        return JsonValue::of(true);
      case 'f':
        if (!consume_word("false")) fail(pos_, "bad literal");
        return JsonValue::of(false);
      case 'n':
        if (!consume_word("null")) fail(pos_, "bad literal");
        return JsonValue::null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(key, parse_value());
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return out;
      if (next != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return JsonValue::array(std::move(items));
      if (next != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are passed through as two
          // separate code points; the repo's documents are ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_start = pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) fail(pos_, "expected a number");
    // No leading zeros ("0" alone is fine).
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail(start, "leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail(pos_, "expected digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail(pos_, "expected exponent digits");
    }
    const std::string literal = text_.substr(start, pos_ - start);
    return JsonValue::number_literal(literal,
                                     std::strtod(literal.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonParseError("not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw JsonParseError("not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double d = as_double();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw JsonParseError("number " + text_ + " is not integral");
  }
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonParseError("not a string");
  return text_;
}

const std::string& JsonValue::number_text() const {
  if (kind_ != Kind::kNumber) throw JsonParseError("not a number");
  return text_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw JsonParseError("not an array");
  return items_;
}

std::vector<JsonValue>& JsonValue::items() {
  if (kind_ != Kind::kArray) throw JsonParseError("not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) throw JsonParseError("not an object");
  return members_;
}

std::vector<JsonValue::Member>& JsonValue::members() {
  if (kind_ != Kind::kObject) throw JsonParseError("not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw JsonParseError("missing key \"" + key + "\"");
  }
  return *found;
}

void JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ == Kind::kNull && members_.empty() && items_.empty()) {
    kind_ = Kind::kObject;  // building from a default-constructed value
  }
  if (kind_ != Kind::kObject) throw JsonParseError("not an object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);  // keep-last, at the original position
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

namespace {

void dump_to(const JsonValue& value, std::string& out, int indent,
             int depth) {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out.append("null");
      break;
    case JsonValue::Kind::kBool:
      out.append(value.as_bool() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      out.append(value.number_text());
      break;
    case JsonValue::Kind::kString:
      out.append(json_quote(value.as_string()));
      break;
    case JsonValue::Kind::kArray: {
      const auto& items = value.items();
      if (items.empty()) {
        out.append("[]");
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out.append(pretty ? "," : ", ");
        newline(depth + 1);
        dump_to(items[i], out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = value.members();
      if (members.empty()) {
        out.append("{}");
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out.append(pretty ? "," : ", ");
        newline(depth + 1);
        out.append(json_quote(members[i].first));
        out.append(": ");
        dump_to(members[i].second, out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      // Literal text equality: "1e3" != "1000" on purpose — merged
      // documents must reproduce the source rendering exactly.
      return text_ == other.text_;
    case Kind::kString:
      return text_ == other.text_;
    case Kind::kArray:
      return items_ == other.items_;
    case Kind::kObject:
      return members_ == other.members_;
  }
  return false;
}

}  // namespace setlib
