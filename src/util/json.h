// A minimal JSON document model for the report pipeline.
//
// The repo both emits JSON (JsonSink's BENCH_<name>.json documents)
// and, since the multi-process orchestrator, consumes it again: the
// shard merger parses the N shard documents and recombines them into
// one. JsonValue is the shared model. Two properties matter more than
// generality:
//
//   - Numbers remember their source text. A parsed document re-emits
//     every number literal byte-for-byte, so parse -> merge -> dump
//     never perturbs a deterministic fact through a double round-trip.
//     Numbers built programmatically are formatted by json_number,
//     the same formatter JsonSink uses — one rendering everywhere.
//   - Emission is always strict-parser-safe: json_quote escapes, and
//     json_number maps non-finite doubles to null, so every document
//     the repo writes round-trips through Python's json.load.
//
// The parser is strict recursive descent (no comments, no trailing
// commas, objects/arrays/strings/numbers/true/false/null). Duplicate
// object keys keep the last value at the first key's position —
// mirroring what json.load does, so the two sides agree on pathological
// documents too.
#ifndef SETLIB_UTIL_JSON_H
#define SETLIB_UTIL_JSON_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace setlib {

/// Thrown by JsonValue::parse on malformed input; what() carries the
/// byte offset and a short description.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Renders a double the way every JSON emitter in this repo does:
/// default ostream formatting, with non-finite values rendered as
/// "null" so strict parsers always accept the document.
std::string json_number(double value);

/// Escapes and quotes a string for embedding in a JSON document.
std::string json_quote(const std::string& text);

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  static JsonValue null();
  static JsonValue of(bool value);
  /// Non-finite doubles become null (matching json_number).
  static JsonValue of(double value);
  static JsonValue of(std::int64_t value);
  static JsonValue of(std::size_t value);
  static JsonValue of(std::string value);
  static JsonValue of(const char* value);
  /// A number carrying an explicit source literal (must already be a
  /// valid JSON number rendering of `value`).
  static JsonValue number_literal(std::string literal, double value);
  static JsonValue array(std::vector<JsonValue> items = {});
  static JsonValue object(std::vector<Member> members = {});

  /// Strict parse of a complete document (trailing whitespace only).
  static JsonValue parse(const std::string& text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  // requires an integral number
  const std::string& as_string() const;
  /// The number's source literal (parse keeps it verbatim).
  const std::string& number_text() const;

  const std::vector<JsonValue>& items() const;
  std::vector<JsonValue>& items();
  const std::vector<Member>& members() const;
  std::vector<Member>& members();

  /// Object lookup; null when absent (or when not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object lookup that throws JsonParseError when the key is absent.
  const JsonValue& at(const std::string& key) const;
  /// Inserts or overwrites (keeping the original position) a member.
  void set(const std::string& key, JsonValue value);

  /// Serializes; indent < 0 emits the compact single-line form,
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  bool operator==(const JsonValue& other) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_;  // number literal or string value
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace setlib

#endif  // SETLIB_UTIL_JSON_H
