// Contract checking for the settimeliness library.
//
// The library is a correctness harness for a theory paper, so contract
// checks stay on in every build type (the top-level CMakeLists strips
// -DNDEBUG). Violations throw ContractViolation so tests can assert on
// misuse, and so a violation inside a coroutine surfaces at the driver.
#ifndef SETLIB_UTIL_ASSERT_H
#define SETLIB_UTIL_ASSERT_H

#include <stdexcept>
#include <string>

namespace setlib {

/// Thrown when a SETLIB_EXPECTS / SETLIB_ENSURES / SETLIB_ASSERT check
/// fails. Carries the failed expression and source location in what().
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_failed(const char* kind, const char* expr,
                                  const char* file, int line);
}  // namespace detail

}  // namespace setlib

/// Precondition check (gsl::Expects-style).
#define SETLIB_EXPECTS(expr)                                            \
  do {                                                                  \
    if (!(expr))                                                        \
      ::setlib::detail::contract_failed("precondition", #expr,         \
                                        __FILE__, __LINE__);            \
  } while (false)

/// Postcondition check (gsl::Ensures-style).
#define SETLIB_ENSURES(expr)                                            \
  do {                                                                  \
    if (!(expr))                                                        \
      ::setlib::detail::contract_failed("postcondition", #expr,        \
                                        __FILE__, __LINE__);            \
  } while (false)

/// Internal invariant check.
#define SETLIB_ASSERT(expr)                                             \
  do {                                                                  \
    if (!(expr))                                                        \
      ::setlib::detail::contract_failed("invariant", #expr,            \
                                        __FILE__, __LINE__);            \
  } while (false)

#endif  // SETLIB_UTIL_ASSERT_H
