#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace setlib {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double Summary::mean() const {
  SETLIB_EXPECTS(!empty());
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Summary::min() const {
  SETLIB_EXPECTS(!empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  SETLIB_EXPECTS(!empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  SETLIB_EXPECTS(!empty());
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double ci95_halfwidth(const Summary& s) {
  SETLIB_EXPECTS(!s.empty());
  const std::size_t n = s.count();
  if (n < 2) return 0.0;
  // Two-tailed 95% Student-t quantiles for df = 1..30; the normal
  // quantile beyond. With --repeat in the single digits the t
  // correction is the difference between a ~95% interval and a ~68%
  // one (df = 2: 4.303 vs 1.96).
  static constexpr double kT975[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
      2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
      2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t df = n - 1;
  const double t = df <= 30 ? kT975[df - 1] : 1.96;
  // Summary::stddev is the population form (divides by n); rescale to
  // the n-1 sample standard deviation the t interval is defined over.
  const double sample_sd =
      s.stddev() * std::sqrt(static_cast<double>(n) /
                             static_cast<double>(n - 1));
  return t * sample_sd / std::sqrt(static_cast<double>(n));
}

double ci95_proportion_halfwidth(double p, std::size_t count) {
  SETLIB_EXPECTS(count >= 1);
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(count));
}

double Summary::percentile(double q) const {
  SETLIB_EXPECTS(!empty());
  SETLIB_EXPECTS(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  const auto n = sorted_.size();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  return sorted_[idx == 0 ? 0 : idx - 1];
}

}  // namespace setlib
