#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace setlib {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double Summary::mean() const {
  SETLIB_EXPECTS(!empty());
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Summary::min() const {
  SETLIB_EXPECTS(!empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  SETLIB_EXPECTS(!empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  SETLIB_EXPECTS(!empty());
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::percentile(double q) const {
  SETLIB_EXPECTS(!empty());
  SETLIB_EXPECTS(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  const auto n = sorted_.size();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  return sorted_[idx == 0 ? 0 : idx - 1];
}

}  // namespace setlib
