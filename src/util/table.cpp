#include "src/util/table.h"

#include <algorithm>
#include <ostream>

#include "src/util/assert.h"

namespace setlib {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SETLIB_EXPECTS(!header_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& s) {
  SETLIB_EXPECTS(!rows_.empty());
  SETLIB_EXPECTS(rows_.back().size() < header_.size());
  rows_.back().push_back(s);
  return *this;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string();
      os << (c == 0 ? "| " : " | ") << s
         << std::string(width[c] - s.size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

}  // namespace setlib
