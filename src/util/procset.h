// Process identifiers and process sets.
//
// The paper works over Pi_n = {1, ..., n}; we use 0-based ids Pid in
// [0, n). A ProcSet is a bitmask over at most kMaxProcs processes, which
// makes the set algebra of Definition 1 and Observations 2-3 (union,
// subset, complement) O(1), and gives a cheap total order for the
// paper's argmin tie-break over Pi_n^k ("break ties using a total order
// on Pi_n^k", Figure 2 line 4).
//
// SubsetRanker provides the combinatorial number system bijection
// between k-subsets of {0..n-1} and dense indices [0, C(n,k)), used to
// lay out the Counter[A, q] register matrix of Figure 2.
#ifndef SETLIB_UTIL_PROCSET_H
#define SETLIB_UTIL_PROCSET_H

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/assert.h"

namespace setlib {

// -------------------------------------------------------------------
// Word-block helpers. The analyzer (sched/analyzer.h) packs schedule
// timelines 64 steps per word; these are the shared primitives for
// iterating such blocks. They also back ProcSet's own bit iteration.

/// Steps (bits) per packed timeline word.
inline constexpr int kBitsPerWord = 64;

/// Mask with the low `bits` bits set; `bits` in [0, 64].
constexpr std::uint64_t low_word_mask(int bits) noexcept {
  return bits >= kBitsPerWord ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << bits) - 1;
}

/// Mask selecting bits [lo, hi) of a word; 0 <= lo <= hi <= 64.
constexpr std::uint64_t word_range_mask(int lo, int hi) noexcept {
  return low_word_mask(hi) & ~low_word_mask(lo);
}

/// Visit the set bit positions of `word` in increasing order.
template <typename Fn>
void for_each_set_bit(std::uint64_t word, Fn&& fn) {
  while (word != 0) {
    fn(std::countr_zero(word));
    word &= word - 1;
  }
}

/// Process identifier, 0-based. The paper's process i is Pid i-1.
using Pid = int;

/// Maximum number of processes supported by the bitmask representation.
inline constexpr int kMaxProcs = 63;

/// An immutable-ish set of processes represented as a bitmask.
class ProcSet {
 public:
  constexpr ProcSet() noexcept : mask_(0) {}
  constexpr explicit ProcSet(std::uint64_t mask) noexcept : mask_(mask) {}

  /// The set {0, 1, ..., n-1} (the paper's Pi_n).
  static ProcSet universe(int n);

  /// Singleton {p}.
  static ProcSet of(Pid p);

  /// Build from an explicit list of pids (duplicates allowed).
  static ProcSet of(std::initializer_list<Pid> pids);
  static ProcSet from(const std::vector<Pid>& pids);

  /// The set {lo, lo+1, ..., hi-1}.
  static ProcSet range(Pid lo, Pid hi);

  constexpr std::uint64_t mask() const noexcept { return mask_; }
  bool contains(Pid p) const;
  int size() const noexcept;
  bool empty() const noexcept { return mask_ == 0; }

  ProcSet with(Pid p) const;
  ProcSet without(Pid p) const;

  /// Smallest element; requires non-empty.
  Pid min() const;
  /// Largest element; requires non-empty.
  Pid max() const;
  /// The m-th smallest element (0-based); requires m < size().
  Pid nth(int m) const;

  /// Elements in increasing order.
  std::vector<Pid> to_vector() const;

  /// Visit the elements in increasing order without materializing a
  /// vector (the hot path of the analyzer's column ORs).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_set_bit(mask_, fn);
  }

  friend constexpr ProcSet operator|(ProcSet a, ProcSet b) noexcept {
    return ProcSet(a.mask_ | b.mask_);
  }
  friend constexpr ProcSet operator&(ProcSet a, ProcSet b) noexcept {
    return ProcSet(a.mask_ & b.mask_);
  }
  /// Set difference a \ b.
  friend constexpr ProcSet operator-(ProcSet a, ProcSet b) noexcept {
    return ProcSet(a.mask_ & ~b.mask_);
  }
  friend constexpr bool operator==(ProcSet a, ProcSet b) noexcept {
    return a.mask_ == b.mask_;
  }
  friend constexpr bool operator!=(ProcSet a, ProcSet b) noexcept {
    return a.mask_ != b.mask_;
  }
  /// Total order on sets (by mask value); used for argmin tie-breaks.
  friend constexpr bool operator<(ProcSet a, ProcSet b) noexcept {
    return a.mask_ < b.mask_;
  }

  bool subset_of(ProcSet other) const noexcept {
    return (mask_ & ~other.mask_) == 0;
  }
  bool intersects(ProcSet other) const noexcept {
    return (mask_ & other.mask_) != 0;
  }

  /// Complement within {0..n-1}.
  ProcSet complement(int n) const;

  std::string to_string() const;

 private:
  std::uint64_t mask_;
};

std::ostream& operator<<(std::ostream& os, ProcSet s);

/// n choose k with overflow guard (result must fit in int64).
std::int64_t binomial(int n, int k);

/// Enumerate all k-subsets of {0..n-1} in combinadic (rank) order.
std::vector<ProcSet> k_subsets(int n, int k);

/// Bijection between k-subsets of {0..n-1} and [0, C(n,k)), via the
/// combinatorial number system. rank(unrank(r)) == r for all r.
class SubsetRanker {
 public:
  SubsetRanker(int n, int k);

  int n() const noexcept { return n_; }
  int k() const noexcept { return k_; }
  std::int64_t count() const noexcept { return count_; }

  std::int64_t rank(ProcSet s) const;
  ProcSet unrank(std::int64_t r) const;

 private:
  int n_;
  int k_;
  std::int64_t count_;
  // choose_[i][j] = C(i, j) for i <= n, j <= k.
  std::vector<std::vector<std::int64_t>> choose_;
};

}  // namespace setlib

#endif  // SETLIB_UTIL_PROCSET_H
