// Clang thread-safety annotation macros (no-op on other compilers).
//
// These wrap Clang's -Wthread-safety attribute set so the lock
// discipline of every mutex-guarded class is checked at compile time:
// which mutex guards which member (SETLIB_GUARDED_BY), which private
// helpers assume the lock is already held (SETLIB_REQUIRES), and which
// RAII types acquire/release a capability (SETLIB_SCOPED_CAPABILITY).
// CMake turns the analysis on as an error (-Wthread-safety -Werror)
// for every Clang build; GCC builds see empty macros and compile the
// exact same code. See docs/STATIC_ANALYSIS.md for the conventions.
//
// The macro set mirrors the one from the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
// SETLIB_ so nothing collides with third-party headers.
#ifndef SETLIB_UTIL_THREAD_ANNOTATIONS_H
#define SETLIB_UTIL_THREAD_ANNOTATIONS_H

#if defined(__clang__) && (!defined(SWIG))
#define SETLIB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SETLIB_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex", "shard", ...).
#define SETLIB_CAPABILITY(x) SETLIB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime holds a capability.
#define SETLIB_SCOPED_CAPABILITY SETLIB_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be touched while holding `x`.
#define SETLIB_GUARDED_BY(x) SETLIB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SETLIB_PT_GUARDED_BY(x) SETLIB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the given capabilities held.
#define SETLIB_REQUIRES(...) \
  SETLIB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the capabilities held shared.
#define SETLIB_REQUIRES_SHARED(...) \
  SETLIB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability and does not release it.
#define SETLIB_ACQUIRE(...) \
  SETLIB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define SETLIB_ACQUIRE_SHARED(...) \
  SETLIB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define SETLIB_RELEASE(...) \
  SETLIB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define SETLIB_RELEASE_SHARED(...) \
  SETLIB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `r`.
#define SETLIB_TRY_ACQUIRE(r, ...) \
  SETLIB_THREAD_ANNOTATION(try_acquire_capability(r, __VA_ARGS__))

/// Function that must NOT be called with the capability held
/// (non-reentrant public entry points of a locked class).
#define SETLIB_EXCLUDES(...) \
  SETLIB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define SETLIB_RETURN_CAPABILITY(x) \
  SETLIB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct for a reason the
/// intra-procedural analysis cannot see. Every use carries a comment
/// saying why (policy in docs/STATIC_ANALYSIS.md).
#define SETLIB_NO_THREAD_SAFETY_ANALYSIS \
  SETLIB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SETLIB_UTIL_THREAD_ANNOTATIONS_H
