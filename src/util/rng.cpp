#include "src/util/rng.h"

#include <cmath>

namespace setlib {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SETLIB_EXPECTS(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  SETLIB_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SETLIB_EXPECTS(w >= 0.0);
    total += w;
  }
  SETLIB_EXPECTS(total > 0.0);
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fall into the last bucket
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace setlib
