// Bump-region allocation for the analysis hot paths, with exact
// accounting.
//
// ArenaAllocator owns a fixed reserve block (allocated eagerly, once,
// at construction) plus any overflow blocks a burst of requests forced
// it to acquire from the upstream heap. allocate() bumps a pointer;
// reset() rewinds to empty AND returns every overflow block to the
// heap, so after a reset the arena is bytewise in its
// just-constructed shape. That trim-on-reset rule is what makes the
// counters deterministic: the upstream traffic of a request sequence
// that starts from a reset arena is a pure function of (sequence,
// reserve size) — independent of which worker thread ran the previous
// cell, how many cells it ran, or what they allocated. The per-cell
// counter deltas the engine reports (RunReport::allocs_per_op /
// bytes_per_op) are therefore bit-identical at any thread count and
// across shard merges, like every other deterministic row fact.
//
// Counters: allocs() and bytes() count upstream acquisitions only —
// overflow blocks grabbed beyond the reserve — and are cumulative and
// monotone (rewinds free memory but never un-count it), so callers
// measure a scope by delta. A steady-state cell whose peak footprint
// fits the reserve reports a zero delta: that is the "allocates
// nothing" claim the BENCH_*.json artifacts pin. high_water() is the
// peak in_use() observed, the number that says how big the reserve
// must be for a workload to stay steady-state.
//
// FrameScope is the per-cell frame: it captures the arena position on
// entry and rewinds (freeing overflow blocks acquired inside the
// frame) on destruction, so nested analysis scopes stack naturally.
//
// Ownership/threading: an arena is single-owner — one thread at a
// time, no internal locking. The ExperimentRunner keeps one arena per
// pool worker slot and resets it between cells; nothing here is
// shared, so there are no thread-safety annotations to carry (the
// cross-thread hand-off, if any, is the pool's job-completion edge).
#ifndef SETLIB_UTIL_ARENA_H
#define SETLIB_UTIL_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace setlib::util {

class ArenaAllocator {
 public:
  /// Default reserve: comfortably holds a packed 1.5M-step schedule
  /// for the grid sizes the sweeps run (n * len / 8 bytes) plus scan
  /// scratch, so steady-state sweep cells never touch the heap.
  static constexpr std::size_t kDefaultReserve = std::size_t{8} << 20;

  /// Largest supported alignment. Every block's base is pre-aligned to
  /// this (cache-line), so aligning the bump *offset* aligns the
  /// returned address too — without address-dependent padding, which
  /// would make the counters nondeterministic.
  static constexpr std::size_t kMaxAlign = 64;

  explicit ArenaAllocator(std::size_t reserve_bytes = kDefaultReserve);

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  /// Bump-allocates `size` bytes at the given power-of-two alignment.
  /// Never returns nullptr; size 0 yields a unique valid pointer.
  void* allocate(std::size_t size,
                 std::size_t align = alignof(std::max_align_t));

  /// Typed helper: `count` default-uninitialized T slots. T must be
  /// trivially destructible — nothing ever runs destructors on arena
  /// memory.
  template <typename T>
  T* alloc_array(std::int64_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(
        allocate(static_cast<std::size_t>(count) * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty and frees every overflow block, restoring the
  /// just-constructed shape (the determinism contract above).
  void reset() noexcept;

  /// A rewindable position; see FrameScope.
  struct Marker {
    std::size_t block = 0;   // index into the block chain
    std::size_t offset = 0;  // bump offset within that block
    std::size_t in_use = 0;  // total bytes live at the mark
  };
  Marker mark() const noexcept;
  /// Rewinds to `m`, freeing overflow blocks acquired after it. `m`
  /// must come from this arena and still be on the current chain
  /// (markers rewind LIFO).
  void rewind(const Marker& m) noexcept;

  std::size_t reserve_size() const noexcept { return reserve_size_; }
  /// Upstream overflow blocks acquired since construction (monotone).
  std::int64_t allocs() const noexcept { return upstream_allocs_; }
  /// Upstream bytes acquired in those blocks (monotone).
  std::int64_t bytes() const noexcept { return upstream_bytes_; }
  /// Bytes currently bumped (aligned request footprint).
  std::size_t in_use() const noexcept { return in_use_; }
  /// Peak in_use() observed since construction.
  std::size_t high_water() const noexcept { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;  // raw storage, size + kMaxAlign
    std::byte* base = nullptr;          // data aligned up to kMaxAlign
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  // Builds a block whose base is kMaxAlign-aligned.
  static Block make_block(std::size_t size);

  // Acquires an overflow block big enough for `size` at `align`.
  void grow(std::size_t size, std::size_t align);

  std::size_t reserve_size_;
  std::vector<Block> blocks_;  // blocks_[0] is the reserve, never freed
  std::size_t current_ = 0;    // block being bumped
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::int64_t upstream_allocs_ = 0;
  std::int64_t upstream_bytes_ = 0;
};

/// RAII frame: rewinds the arena to its entry position on destruction.
/// One per analysis cell; nests LIFO.
class FrameScope {
 public:
  explicit FrameScope(ArenaAllocator& arena) noexcept
      : arena_(arena), marker_(arena.mark()) {}
  ~FrameScope() { arena_.rewind(marker_); }

  FrameScope(const FrameScope&) = delete;
  FrameScope& operator=(const FrameScope&) = delete;

 private:
  ArenaAllocator& arena_;
  ArenaAllocator::Marker marker_;
};

}  // namespace setlib::util

#endif  // SETLIB_UTIL_ARENA_H
