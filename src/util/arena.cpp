#include "src/util/arena.h"

#include <algorithm>

#include "src/util/assert.h"

namespace setlib::util {

namespace {

std::size_t align_up(std::size_t value, std::size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

ArenaAllocator::Block ArenaAllocator::make_block(std::size_t size) {
  Block block;
  block.data = std::make_unique<std::byte[]>(size + kMaxAlign);
  // The address feeds only this block's private base adjustment; no
  // ordering, hashing, or counter ever sees it, so ASLR cannot leak
  // into any reported fact.
  // clang-format off
  const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(block.data.get());  // determinism: allow(alignment-only use)
  // clang-format on
  block.base = block.data.get() +
               (align_up(raw, kMaxAlign) - raw);  // constant per block
  block.size = size;
  return block;
}

ArenaAllocator::ArenaAllocator(std::size_t reserve_bytes)
    : reserve_size_(std::max<std::size_t>(reserve_bytes, 64)) {
  // The reserve is acquired here, eagerly, and is never part of the
  // allocs()/bytes() traffic: lazy acquisition would charge it to
  // whichever cell happened to run first on this arena, making the
  // per-cell deltas depend on scheduling history.
  blocks_.push_back(make_block(reserve_size_));
}

void* ArenaAllocator::allocate(std::size_t size, std::size_t align) {
  SETLIB_EXPECTS(align != 0 && (align & (align - 1)) == 0 &&
                 align <= kMaxAlign);
  Block* block = &blocks_[current_];
  std::size_t offset = align_up(block->offset, align);
  if (offset + size > block->size || offset + size < offset) {
    grow(size, align);
    block = &blocks_[current_];
    offset = align_up(block->offset, align);
  }
  const std::size_t consumed = (offset - block->offset) + size;
  block->offset = offset + size;
  in_use_ += consumed;
  if (in_use_ > high_water_) high_water_ = in_use_;
  return block->base + offset;
}

void ArenaAllocator::grow(std::size_t size, std::size_t align) {
  // Overflow block size is a pure function of the single request (and
  // the fixed reserve size), never of the chain length, so the
  // upstream byte count of a request sequence is reproducible.
  const std::size_t need = align_up(size, align) + align;
  const std::size_t block_size = std::max(need, reserve_size_);
  // Drop any chain tail a previous rewind left behind: markers rewind
  // LIFO, so a rewound-past block can never be bumped again.
  blocks_.resize(current_ + 1);
  blocks_.push_back(make_block(block_size));
  ++current_;
  ++upstream_allocs_;
  upstream_bytes_ += static_cast<std::int64_t>(block_size);
}

void ArenaAllocator::reset() noexcept {
  blocks_.resize(1);  // trim every overflow block back to the reserve
  blocks_[0].offset = 0;
  current_ = 0;
  in_use_ = 0;
}

ArenaAllocator::Marker ArenaAllocator::mark() const noexcept {
  return Marker{current_, blocks_[current_].offset, in_use_};
}

void ArenaAllocator::rewind(const Marker& m) noexcept {
  SETLIB_ASSERT(m.block <= current_ && m.in_use <= in_use_);
  // Free overflow blocks acquired inside the frame (never the
  // reserve), so repeated frames re-acquire identically and the
  // counter deltas of a frame are reproducible.
  blocks_.resize(std::max<std::size_t>(m.block + 1, 1));
  current_ = m.block;
  blocks_[current_].offset = m.offset;
  in_use_ = m.in_use;
}

}  // namespace setlib::util
