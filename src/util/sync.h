// Annotated synchronization primitives.
//
// Clang's thread-safety analysis only follows lock/unlock calls that
// carry capability attributes, and libstdc++'s std::mutex carries
// none — so every mutex-guarded class in this library uses these thin
// wrappers instead of the std types directly. Mutex is an annotated
// std::mutex; MutexLock is the scoped guard the analysis understands;
// CondVar wraps std::condition_variable so waits keep the native
// futex path while the analysis sees the lock as continuously held
// across the wait (which is exactly the invariant predicate waits
// rely on). GCC builds compile the same code with the annotations
// erased — the wrappers add no state and no extra locking.
#ifndef SETLIB_UTIL_SYNC_H
#define SETLIB_UTIL_SYNC_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "src/util/thread_annotations.h"

namespace setlib::util {

/// std::mutex with capability annotations. BasicLockable, so it also
/// works with std::scoped_lock/std::unique_lock where a non-annotated
/// context needs one (prefer MutexLock: the analysis tracks it).
class SETLIB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SETLIB_ACQUIRE() { mu_.lock(); }
  void unlock() SETLIB_RELEASE() { mu_.unlock(); }
  bool try_lock() SETLIB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop (CondVar's adopted waits).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard: acquires `mu` for its whole scope. The annotated
/// equivalent of std::scoped_lock/std::lock_guard.
class SETLIB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SETLIB_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() SETLIB_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// std::condition_variable over an annotated Mutex. Waits are
/// deliberately unpredicated: callers loop on their own condition
/// (`while (!ready_) cv_.wait(mu_);`), so every guarded-member read
/// stays inside the caller's annotated function body where the
/// analysis can see the lock. wait() takes the Mutex itself (caller
/// must hold it — SETLIB_REQUIRES), adopts it into a std::unique_lock
/// for the native wait, and releases the adoption on return, so
/// ownership stays with the caller's MutexLock throughout.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified (or spuriously woken — loop on the
  /// condition).
  void wait(Mutex& mu) SETLIB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership returns to the caller's guard
  }

  /// Blocks until notified or `timeout` elapsed.
  template <typename Rep, typename Period>
  void wait_for(Mutex& mu,
                const std::chrono::duration<Rep, Period>& timeout)
      SETLIB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace setlib::util

#endif  // SETLIB_UTIL_SYNC_H
