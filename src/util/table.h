// Plain-text table rendering for the experiment harnesses.
//
// Every bench binary prints the rows the paper's corresponding
// theorem/figure would contain; TextTable keeps that output aligned and
// machine-grep-able without pulling in a formatting dependency.
#ifndef SETLIB_UTIL_TABLE_H
#define SETLIB_UTIL_TABLE_H

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace setlib {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  TextTable& row();

  TextTable& cell(const std::string& s);
  template <typename T>
  TextTable& cell(const T& v) {
    std::ostringstream os;
    os << v;
    return cell(os.str());
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with a header rule and column alignment.
  std::string render() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace setlib

#endif  // SETLIB_UTIL_TABLE_H
