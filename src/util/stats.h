// Small statistics helpers for the benchmark harnesses.
#ifndef SETLIB_UTIL_STATS_H
#define SETLIB_UTIL_STATS_H

#include <cstdint>
#include <vector>

#include "src/util/assert.h"

namespace setlib {

/// Accumulates samples; exposes count/mean/min/max/stddev/percentiles.
class Summary {
 public:
  void add(double x);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// Nearest-rank percentile, q in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace setlib

#endif  // SETLIB_UTIL_STATS_H
