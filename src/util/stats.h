// Small statistics helpers for the benchmark harnesses.
#ifndef SETLIB_UTIL_STATS_H
#define SETLIB_UTIL_STATS_H

#include <cstdint>
#include <vector>

#include "src/util/assert.h"

namespace setlib {

/// Accumulates samples; exposes count/mean/min/max/stddev/percentiles.
class Summary {
 public:
  void add(double x);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// Nearest-rank percentile, q in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Half-width of the 95% confidence interval of the mean:
/// t_{0.975, n-1} * sample_stddev / sqrt(n), using the Student-t
/// quantile (tabulated to df = 30, 1.96 beyond) and the n-1 sample
/// standard deviation — at the small `--repeat` counts the sweeps
/// actually use, the naive 1.96 * sigma_pop / sqrt(n) would understate
/// the interval several-fold. 0 for a single sample (no dispersion
/// information). The interval is [mean - hw, mean + hw].
double ci95_halfwidth(const Summary& s);

/// Normal-approximation 95% CI half-width of a proportion:
/// 1.96 * sqrt(p * (1 - p) / count). Requires count >= 1.
double ci95_proportion_halfwidth(double p, std::size_t count);

}  // namespace setlib

#endif  // SETLIB_UTIL_STATS_H
