#include "src/util/procset.h"

#include <bit>
#include <ostream>
#include <sstream>

namespace setlib {

ProcSet ProcSet::universe(int n) {
  SETLIB_EXPECTS(n >= 0 && n <= kMaxProcs);
  if (n == 0) return ProcSet();
  return ProcSet((std::uint64_t{1} << n) - 1);
}

ProcSet ProcSet::of(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < kMaxProcs);
  return ProcSet(std::uint64_t{1} << p);
}

ProcSet ProcSet::of(std::initializer_list<Pid> pids) {
  ProcSet s;
  for (Pid p : pids) s = s.with(p);
  return s;
}

ProcSet ProcSet::from(const std::vector<Pid>& pids) {
  ProcSet s;
  for (Pid p : pids) s = s.with(p);
  return s;
}

ProcSet ProcSet::range(Pid lo, Pid hi) {
  SETLIB_EXPECTS(0 <= lo && lo <= hi && hi <= kMaxProcs);
  ProcSet s;
  for (Pid p = lo; p < hi; ++p) s = s.with(p);
  return s;
}

bool ProcSet::contains(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < kMaxProcs);
  return (mask_ >> p) & 1;
}

int ProcSet::size() const noexcept { return std::popcount(mask_); }

ProcSet ProcSet::with(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < kMaxProcs);
  return ProcSet(mask_ | (std::uint64_t{1} << p));
}

ProcSet ProcSet::without(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < kMaxProcs);
  return ProcSet(mask_ & ~(std::uint64_t{1} << p));
}

Pid ProcSet::min() const {
  SETLIB_EXPECTS(!empty());
  return std::countr_zero(mask_);
}

Pid ProcSet::max() const {
  SETLIB_EXPECTS(!empty());
  return 63 - std::countl_zero(mask_);
}

Pid ProcSet::nth(int m) const {
  SETLIB_EXPECTS(m >= 0 && m < size());
  std::uint64_t mask = mask_;
  for (int i = 0; i < m; ++i) mask &= mask - 1;  // clear lowest set bit
  return std::countr_zero(mask);
}

std::vector<Pid> ProcSet::to_vector() const {
  std::vector<Pid> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (std::uint64_t m = mask_; m != 0; m &= m - 1) {
    out.push_back(std::countr_zero(m));
  }
  return out;
}

ProcSet ProcSet::complement(int n) const {
  return ProcSet::universe(n) - *this;
}

std::string ProcSet::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, ProcSet s) {
  os << '{';
  bool first = true;
  for (Pid p : s.to_vector()) {
    if (!first) os << ',';
    os << p;
    first = false;
  }
  return os << '}';
}

std::int64_t binomial(int n, int k) {
  SETLIB_EXPECTS(n >= 0 && k >= 0);
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // Exact at every step: result * (n-k+i) is divisible by i here.
    SETLIB_ASSERT(result <= (std::int64_t{1} << 62) / (n - k + i));
    result = result * (n - k + i) / i;
  }
  return result;
}

std::vector<ProcSet> k_subsets(int n, int k) {
  SETLIB_EXPECTS(n >= 0 && n <= kMaxProcs);
  SETLIB_EXPECTS(k >= 0 && k <= n);
  SubsetRanker ranker(n, k);
  std::vector<ProcSet> out;
  out.reserve(static_cast<std::size_t>(ranker.count()));
  for (std::int64_t r = 0; r < ranker.count(); ++r) {
    out.push_back(ranker.unrank(r));
  }
  return out;
}

SubsetRanker::SubsetRanker(int n, int k) : n_(n), k_(k) {
  SETLIB_EXPECTS(n >= 0 && n <= kMaxProcs);
  SETLIB_EXPECTS(k >= 0 && k <= n);
  choose_.assign(static_cast<std::size_t>(n + 1),
                 std::vector<std::int64_t>(static_cast<std::size_t>(k + 1), 0));
  for (int i = 0; i <= n; ++i) {
    choose_[i][0] = 1;
    for (int j = 1; j <= k && j <= i; ++j) {
      choose_[i][j] = choose_[i - 1][j - 1] +
                      (j <= i - 1 ? choose_[i - 1][j] : 0);
    }
  }
  count_ = choose_[n][k];
}

std::int64_t SubsetRanker::rank(ProcSet s) const {
  SETLIB_EXPECTS(s.size() == k_);
  SETLIB_EXPECTS(s.subset_of(ProcSet::universe(n_)));
  // Combinatorial number system: rank = sum over elements c_1<...<c_k of
  // C(c_i, i).
  std::int64_t r = 0;
  int i = 1;
  for (Pid p : s.to_vector()) {
    r += choose_[p][i];
    ++i;
  }
  return r;
}

ProcSet SubsetRanker::unrank(std::int64_t r) const {
  SETLIB_EXPECTS(r >= 0 && r < count_);
  ProcSet s;
  std::int64_t rem = r;
  for (int i = k_; i >= 1; --i) {
    // Largest c with C(c, i) <= rem.
    int c = i - 1;
    while (c + 1 <= n_ - 1 && choose_[c + 1][i] <= rem) ++c;
    s = s.with(c);
    rem -= choose_[c][i];
  }
  SETLIB_ENSURES(s.size() == k_);
  return s;
}

}  // namespace setlib
