// Deterministic, seedable pseudo-random number generation.
//
// All stochastic schedule generators in the library draw from Rng so that
// every experiment is reproducible from (parameters, seed). The generator
// is xoshiro256**, seeded through SplitMix64 per the reference
// recommendation; both are tiny, fast, and dependency-free.
#ifndef SETLIB_UTIL_RNG_H
#define SETLIB_UTIL_RNG_H

#include <cstdint>
#include <vector>

#include "src/util/assert.h"

namespace setlib {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound). Requires bound > 0 (throws otherwise). Uses
  /// rejection sampling, so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform int in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Pick an index according to non-negative weights (at least one > 0).
  std::size_t next_weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Derive an independent child generator (for per-process streams).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace setlib

#endif  // SETLIB_UTIL_RNG_H
