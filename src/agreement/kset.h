// (t, k, n)-agreement from the stabilized k-anti-Omega winnerset
// (Theorem 24's algorithmic content, with the reduction of [21]
// instantiated by an Omega_k-style construction — see DESIGN.md).
//
// Every process runs k Paxos instances; the leader oracle of instance m
// is "the m-th smallest member of my detector's current winnerset".
// Once the detector stabilizes (Lemma 22), instance m has the same
// stable leader everywhere, and at least one winnerset member is
// correct (Lemma 20), so at least one instance decides; its decision
// register propagates to every correct process. At most k instances
// exist and each decides at most one value, hence at most k distinct
// decisions; Paxos validity gives validity.
#ifndef SETLIB_AGREEMENT_KSET_H
#define SETLIB_AGREEMENT_KSET_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/agreement/paxos.h"
#include "src/fd/kantiomega.h"
#include "src/shm/memory.h"
#include "src/shm/process.h"
#include "src/util/procset.h"

namespace setlib::agreement {

class KSetAgreement {
 public:
  struct Params {
    int n = 0;
    int k = 0;
    int t = 0;
  };

  struct Outcome {
    bool decided = false;
    std::int64_t value = 0;
    int via_instance = -1;
  };

  /// `detector` must outlive this object and be driven by tasks
  /// installed alongside (Engine wires both).
  KSetAgreement(shm::IMemory& mem, Params params,
                const fd::KAntiOmega* detector);

  /// Adds the k Paxos instance tasks for process p (proposal = p's
  /// initial value) to p's runtime. The detector task itself must also
  /// be installed by the caller.
  void install(shm::ProcessRuntime& proc, Pid p, std::int64_t proposal);

  const Outcome& outcome(Pid p) const;
  bool decided(Pid p) const { return outcome(p).decided; }

  /// All processes in `who` have decided.
  bool all_decided(ProcSet who) const;

  /// Distinct decision values among deciders in `who`.
  std::vector<std::int64_t> distinct_decisions(ProcSet who) const;

  const Params& params() const noexcept { return params_; }
  const PaxosConsensus& instance(int m) const;

 private:
  Params params_;
  const fd::KAntiOmega* detector_;
  std::vector<std::unique_ptr<PaxosConsensus>> instances_;
  // statuses_[m * n + p]: status of instance m at process p.
  std::vector<std::unique_ptr<PaxosConsensus::Status>> statuses_;
  std::vector<Outcome> outcomes_;
};

}  // namespace setlib::agreement

#endif  // SETLIB_AGREEMENT_KSET_H
