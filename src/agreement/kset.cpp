#include "src/agreement/kset.h"

#include <algorithm>
#include <string>

#include "src/util/assert.h"

namespace setlib::agreement {

KSetAgreement::KSetAgreement(shm::IMemory& mem, Params params,
                             const fd::KAntiOmega* detector)
    : params_(params), detector_(detector) {
  SETLIB_EXPECTS(params.n >= 2 && params.n <= kMaxProcs);
  SETLIB_EXPECTS(params.k >= 1 && params.k <= params.n - 1);
  SETLIB_EXPECTS(params.t >= 1 && params.t <= params.n - 1);
  SETLIB_EXPECTS(detector != nullptr);
  SETLIB_EXPECTS(detector->params().n == params.n);
  SETLIB_EXPECTS(detector->params().k == params.k);
  instances_.reserve(static_cast<std::size_t>(params.k));
  for (int m = 0; m < params.k; ++m) {
    instances_.push_back(std::make_unique<PaxosConsensus>(
        mem, params.n, "kset.inst" + std::to_string(m)));
  }
  statuses_.resize(static_cast<std::size_t>(params.k) *
                   static_cast<std::size_t>(params.n));
  for (auto& s : statuses_) s = std::make_unique<PaxosConsensus::Status>();
  outcomes_.assign(static_cast<std::size_t>(params.n), Outcome{});
}

void KSetAgreement::install(shm::ProcessRuntime& proc, Pid p,
                            std::int64_t proposal) {
  SETLIB_EXPECTS(p >= 0 && p < params_.n);
  SETLIB_EXPECTS(proc.pid() == p);
  for (int m = 0; m < params_.k; ++m) {
    auto* status =
        statuses_[static_cast<std::size_t>(m) *
                      static_cast<std::size_t>(params_.n) +
                  static_cast<std::size_t>(p)]
            .get();
    // Instance m trusts the m-th smallest member of the local winnerset
    // (the winnerset always has exactly k members, Figure 2 line 4).
    auto leader = [this, m](Pid self) -> Pid {
      const ProcSet ws = detector_->view(self).winnerset;
      SETLIB_ASSERT(ws.size() == params_.k);
      return ws.nth(m);
    };
    auto on_decide = [this, m, p](std::int64_t value) {
      Outcome& o = outcomes_[static_cast<std::size_t>(p)];
      if (!o.decided) {
        o.decided = true;
        o.value = value;
        o.via_instance = m;
      }
    };
    proc.add_task(
        instances_[static_cast<std::size_t>(m)]->run(p, proposal, leader,
                                                     status, on_decide),
        "kset.inst" + std::to_string(m));
  }
}

const KSetAgreement::Outcome& KSetAgreement::outcome(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < params_.n);
  return outcomes_[static_cast<std::size_t>(p)];
}

bool KSetAgreement::all_decided(ProcSet who) const {
  for (Pid p : who.to_vector()) {
    if (!decided(p)) return false;
  }
  return true;
}

std::vector<std::int64_t> KSetAgreement::distinct_decisions(
    ProcSet who) const {
  std::vector<std::int64_t> vals;
  for (Pid p : who.to_vector()) {
    if (decided(p)) vals.push_back(outcome(p).value);
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

const PaxosConsensus& KSetAgreement::instance(int m) const {
  SETLIB_EXPECTS(m >= 0 && m < params_.k);
  return *instances_[static_cast<std::size_t>(m)];
}

}  // namespace setlib::agreement
