// The trivial algorithm for (t, k, n)-agreement when k > t (the "it is
// trivial to solve ... in the asynchronous system" step of Corollary
// 25): each process writes its value, collects until at least n - t
// values are visible, and decides the value of the smallest-id writer
// it saw. Because at most t of the first t+1 processes can be missing
// from a collect of >= n - t values, the decided smallest-id writer is
// always among processes 0..t, so there are at most t + 1 <= k distinct
// decisions; validity and (<= t crash) termination are immediate.
#ifndef SETLIB_AGREEMENT_TRIVIAL_H
#define SETLIB_AGREEMENT_TRIVIAL_H

#include <cstdint>
#include <vector>

#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/util/procset.h"

namespace setlib::agreement {

class TrivialAgreement {
 public:
  struct Outcome {
    bool decided = false;
    std::int64_t value = 0;
    Pid from = -1;  // the writer whose value was adopted
  };

  TrivialAgreement(shm::IMemory& mem, int n, int t);

  /// Task for process p. Terminates once p decides.
  shm::Prog run(Pid p, std::int64_t proposal, Outcome* out);

  int n() const noexcept { return n_; }
  int t() const noexcept { return t_; }

 private:
  shm::Prog run_impl(Pid p, std::int64_t proposal, Outcome* out);

  int n_;
  int t_;
  shm::RegisterId values_base_;
};

}  // namespace setlib::agreement

#endif  // SETLIB_AGREEMENT_TRIVIAL_H
