#include "src/agreement/commit_adopt.h"

#include "src/util/assert.h"

namespace setlib::agreement {

CommitAdopt::CommitAdopt(shm::IMemory& mem, int n, const std::string& name)
    : n_(n) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  phase1_base_ = mem.alloc_array(name + ".A", n);
  phase2_base_ = mem.alloc_array(name + ".B", n);
}

shm::Prog CommitAdopt::propose(Pid p, std::int64_t v, Outcome* out) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(out != nullptr);
  return propose_impl(p, v, out);
}

shm::Prog CommitAdopt::propose_impl(Pid p, std::int64_t v, Outcome* out) {

  // Phase 1: publish the proposal, then collect.
  co_await shm::write(phase1_base_ + p, shm::Value::of(v));
  bool all_same = true;
  std::int64_t common = v;
  bool saw_any = false;
  for (Pid q = 0; q < n_; ++q) {
    const shm::Value a = co_await shm::read(phase1_base_ + q);
    if (a.is_nil()) continue;
    if (!saw_any) {
      saw_any = true;
      common = a.at(0);
    } else if (a.at(0) != common) {
      all_same = false;
    }
  }
  SETLIB_ASSERT(saw_any);  // at least our own phase-1 write is visible

  // Phase 2: publish (flag, value), then collect.
  const std::int64_t flag = all_same ? 1 : 0;
  const std::int64_t mine = all_same ? common : v;
  co_await shm::write(phase2_base_ + p, shm::Value::of(flag, mine));

  bool all_flagged = true;
  bool any_flagged = false;
  std::int64_t flagged_value = 0;
  for (Pid q = 0; q < n_; ++q) {
    const shm::Value b = co_await shm::read(phase2_base_ + q);
    if (b.is_nil()) continue;
    if (b.at(0) == 1) {
      any_flagged = true;
      flagged_value = b.at(1);
    } else {
      all_flagged = false;
    }
  }

  if (any_flagged) {
    out->committed = all_flagged;
    out->value = flagged_value;
  } else {
    out->committed = false;
    out->value = mine;
  }
  out->done = true;
}

}  // namespace setlib::agreement
