// Outcome validation for (t, k, n)-agreement runs (Section 3):
//   - uniform k-agreement: at most k distinct decided values;
//   - uniform validity: every decision is some process's initial value;
//   - termination: if at most t processes are faulty, every correct
//     process decided (within the run's step budget).
#ifndef SETLIB_AGREEMENT_VALIDATOR_H
#define SETLIB_AGREEMENT_VALIDATOR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/procset.h"

namespace setlib::agreement {

struct AgreementVerdict {
  bool agreement_ok = false;
  bool validity_ok = false;
  bool termination_ok = false;
  bool ok = false;
  int distinct_values = 0;
  std::string detail;
};

/// `decisions[p]` is p's decision (nullopt = undecided). `faulty` is the
/// run's faulty set. Termination is evaluated only if |faulty| <= t (the
/// problem's precondition); otherwise it passes vacuously.
AgreementVerdict validate_agreement(
    int t, int k, int n, const std::vector<std::int64_t>& proposals,
    const std::vector<std::optional<std::int64_t>>& decisions,
    ProcSet faulty);

}  // namespace setlib::agreement

#endif  // SETLIB_AGREEMENT_VALIDATOR_H
