// Wait-free commit-adopt from read/write registers.
//
// Commit-adopt (graded agreement) is the classic two-collect building
// block: propose(v) returns (commit|adopt, w) such that
//   - validity: w is some process's proposal;
//   - convergence: if all participants propose the same v, every
//     returner commits v;
//   - agreement: if anyone commits w, every returner's value is w.
// It is wait-free (2 writes + 2n reads) and works for any number of
// participants. We use it as an independently tested substrate and in
// the safe-agreement/BG layer's tests; the consensus used by the k-set
// solver is the Paxos in paxos.h.
#ifndef SETLIB_AGREEMENT_COMMIT_ADOPT_H
#define SETLIB_AGREEMENT_COMMIT_ADOPT_H

#include <cstdint>
#include <string>

#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/util/procset.h"

namespace setlib::agreement {

class CommitAdopt {
 public:
  struct Outcome {
    bool done = false;      // set when propose() returns
    bool committed = false;
    std::int64_t value = 0;
  };

  /// One-shot object for up to n participants.
  CommitAdopt(shm::IMemory& mem, int n, const std::string& name);

  /// Process p proposes v; the result is deposited in *out (owned by
  /// the caller, must outlive the task).
  shm::Prog propose(Pid p, std::int64_t v, Outcome* out);

  int n() const noexcept { return n_; }

 private:
  shm::Prog propose_impl(Pid p, std::int64_t v, Outcome* out);

  int n_;
  shm::RegisterId phase1_base_;  // A[q]: {v} once proposed
  shm::RegisterId phase2_base_;  // B[q]: {flag, v}
};

}  // namespace setlib::agreement

#endif  // SETLIB_AGREEMENT_COMMIT_ADOPT_H
