#include "src/agreement/trivial.h"

#include "src/util/assert.h"

namespace setlib::agreement {

TrivialAgreement::TrivialAgreement(shm::IMemory& mem, int n, int t)
    : n_(n), t_(t) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  SETLIB_EXPECTS(t >= 0 && t <= n - 1);
  values_base_ = mem.alloc_array("trivial.V", n);
}

shm::Prog TrivialAgreement::run(Pid p, std::int64_t proposal,
                                Outcome* out) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(out != nullptr);
  return run_impl(p, proposal, out);
}

shm::Prog TrivialAgreement::run_impl(Pid p, std::int64_t proposal,
                                     Outcome* out) {

  co_await shm::write(values_base_ + p, shm::Value::of(proposal));

  for (;;) {
    int seen = 0;
    Pid smallest = -1;
    std::int64_t smallest_value = 0;
    for (Pid q = 0; q < n_; ++q) {
      const shm::Value v = co_await shm::read(values_base_ + q);
      if (v.is_nil()) continue;
      ++seen;
      if (smallest < 0) {  // q ascends, so the first hit is smallest
        smallest = q;
        smallest_value = v.at(0);
      }
    }
    if (seen >= n_ - t_) {
      SETLIB_ASSERT(smallest >= 0);
      out->decided = true;
      out->value = smallest_value;
      out->from = smallest;
      co_return;
    }
  }
}

}  // namespace setlib::agreement
