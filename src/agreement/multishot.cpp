#include "src/agreement/multishot.h"

#include <algorithm>
#include <string>

#include "src/util/assert.h"

namespace setlib::agreement {

MultiShotAgreement::MultiShotAgreement(shm::IMemory& mem, Params params,
                                       const fd::KAntiOmega* detector)
    : params_(params), detector_(detector) {
  SETLIB_EXPECTS(params.n >= 2 && params.n <= kMaxProcs);
  SETLIB_EXPECTS(params.k >= 1 && params.k <= params.n - 1);
  SETLIB_EXPECTS(params.t >= 1 && params.t <= params.n - 1);
  SETLIB_EXPECTS(params.slots >= 1);
  SETLIB_EXPECTS(detector != nullptr);
  SETLIB_EXPECTS(detector->params().n == params.n);
  SETLIB_EXPECTS(detector->params().k == params.k);
  instances_.reserve(static_cast<std::size_t>(params.slots) *
                     static_cast<std::size_t>(params.k));
  for (int s = 0; s < params.slots; ++s) {
    for (int m = 0; m < params.k; ++m) {
      instances_.push_back(std::make_unique<PaxosConsensus>(
          mem, params.n,
          "ms.slot" + std::to_string(s) + ".inst" + std::to_string(m)));
    }
  }
  log_.assign(static_cast<std::size_t>(params.n) *
                  static_cast<std::size_t>(params.slots),
              std::nullopt);
}

PaxosConsensus& MultiShotAgreement::instance(int slot, int m) {
  SETLIB_EXPECTS(slot >= 0 && slot < params_.slots);
  SETLIB_EXPECTS(m >= 0 && m < params_.k);
  return *instances_[static_cast<std::size_t>(slot) *
                         static_cast<std::size_t>(params_.k) +
                     static_cast<std::size_t>(m)];
}

void MultiShotAgreement::install(shm::ProcessRuntime& proc, Pid p,
                                 std::vector<std::int64_t> commands) {
  SETLIB_EXPECTS(p >= 0 && p < params_.n);
  SETLIB_EXPECTS(proc.pid() == p);
  SETLIB_EXPECTS(commands.size() ==
                 static_cast<std::size_t>(params_.slots));
  proc.add_task(driver(p, std::move(commands)), "multishot");
}

shm::Prog MultiShotAgreement::driver(Pid p,
                                     std::vector<std::int64_t> commands) {
  const int k = params_.k;
  for (int slot = 0; slot < params_.slots; ++slot) {
    // The slot's k instance programs, pumped round-robin: each pass
    // forwards one register operation of each live instance, so a
    // stalled instance (crashed leader) cannot block the others.
    std::vector<PaxosConsensus::Status> statuses(
        static_cast<std::size_t>(k));
    std::vector<shm::Prog> kids;
    std::vector<bool> started(static_cast<std::size_t>(k), false);
    kids.reserve(static_cast<std::size_t>(k));
    for (int m = 0; m < k; ++m) {
      auto leader = [this, m](Pid self) -> Pid {
        const ProcSet ws = detector_->view(self).winnerset;
        SETLIB_ASSERT(ws.size() == params_.k);
        return ws.nth(m);
      };
      kids.push_back(instance(slot, m).run(
          p, commands[static_cast<std::size_t>(slot)], leader,
          &statuses[static_cast<std::size_t>(m)]));
    }

    std::optional<std::int64_t> decision;
    while (!decision.has_value()) {
      for (int m = 0; m < k && !decision.has_value(); ++m) {
        auto& kid = kids[static_cast<std::size_t>(m)];
        if (!started[static_cast<std::size_t>(m)]) {
          kid.resume();  // run to the first operation request
          started[static_cast<std::size_t>(m)] = true;
        }
        if (kid.done()) continue;
        // Forward exactly one of the child's operations as our own.
        shm::OpRequest& req = kid.pending();
        if (req.kind == shm::OpRequest::Kind::kRead) {
          *req.read_sink = co_await shm::read(req.reg);
        } else {
          co_await shm::write(req.reg, std::move(req.to_write));
        }
        req = shm::OpRequest{};
        kid.resume();
        if (statuses[static_cast<std::size_t>(m)].decided) {
          decision = statuses[static_cast<std::size_t>(m)].value;
        }
      }
    }
    log_[static_cast<std::size_t>(p) *
             static_cast<std::size_t>(params_.slots) +
         static_cast<std::size_t>(slot)] = *decision;
  }
}

std::optional<std::int64_t> MultiShotAgreement::log_at(Pid p,
                                                       int slot) const {
  SETLIB_EXPECTS(p >= 0 && p < params_.n);
  SETLIB_EXPECTS(slot >= 0 && slot < params_.slots);
  return log_[static_cast<std::size_t>(p) *
                  static_cast<std::size_t>(params_.slots) +
              static_cast<std::size_t>(slot)];
}

int MultiShotAgreement::decided_prefix(Pid p) const {
  int count = 0;
  while (count < params_.slots && log_at(p, count).has_value()) ++count;
  return count;
}

bool MultiShotAgreement::all_decided(ProcSet who) const {
  for (Pid p : who.to_vector()) {
    if (decided_prefix(p) < params_.slots) return false;
  }
  return true;
}

std::vector<std::int64_t> MultiShotAgreement::slot_values(
    int slot, ProcSet who) const {
  std::vector<std::int64_t> values;
  for (Pid p : who.to_vector()) {
    const auto v = log_at(p, slot);
    if (v.has_value()) values.push_back(*v);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace setlib::agreement
