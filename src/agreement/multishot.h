// Multi-shot (t, k, n)-agreement: a sequence of independent agreement
// slots sharing one Figure 2 detector — the "state machine
// replication" shape of the paper's stack. For k = 1 this is a
// replicated log (all correct processes decide the same command per
// slot); for k > 1 each slot tolerates up to k concurrent branches, a
// "k-forking" log.
//
// Per process there is a single driver task that works through the
// slots in order. Within a slot it multiplexes the slot's k Paxos
// instance programs (instance m led by the m-th member of the
// detector's current winnerset) until one of them decides locally,
// then advances. Slots are independent Paxos instances, so per-slot
// safety is unconditional, and liveness per slot follows from detector
// stabilization exactly as in the single-shot case.
#ifndef SETLIB_AGREEMENT_MULTISHOT_H
#define SETLIB_AGREEMENT_MULTISHOT_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/agreement/paxos.h"
#include "src/fd/kantiomega.h"
#include "src/shm/memory.h"
#include "src/shm/process.h"
#include "src/util/procset.h"

namespace setlib::agreement {

class MultiShotAgreement {
 public:
  struct Params {
    int n = 0;
    int k = 0;
    int t = 0;
    int slots = 0;
  };

  MultiShotAgreement(shm::IMemory& mem, Params params,
                     const fd::KAntiOmega* detector);

  /// Install the driver task for process p. `commands[s]` is p's
  /// proposal for slot s (commands.size() == slots).
  void install(shm::ProcessRuntime& proc, Pid p,
               std::vector<std::int64_t> commands);

  /// p's decided value for slot s (nullopt = not yet decided locally).
  std::optional<std::int64_t> log_at(Pid p, int slot) const;

  /// Number of consecutive decided slots starting at 0.
  int decided_prefix(Pid p) const;

  bool all_decided(ProcSet who) const;

  /// Distinct values decided for `slot` across deciders in `who`
  /// (k-agreement requires <= k of them).
  std::vector<std::int64_t> slot_values(int slot, ProcSet who) const;

  const Params& params() const noexcept { return params_; }

 private:
  shm::Prog driver(Pid p, std::vector<std::int64_t> commands);
  PaxosConsensus& instance(int slot, int m);

  Params params_;
  const fd::KAntiOmega* detector_;
  std::vector<std::unique_ptr<PaxosConsensus>> instances_;  // [slot*k + m]
  // log_[p * slots + s]: p's decision for slot s.
  std::vector<std::optional<std::int64_t>> log_;
};

}  // namespace setlib::agreement

#endif  // SETLIB_AGREEMENT_MULTISHOT_H
