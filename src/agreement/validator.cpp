#include "src/agreement/validator.h"

#include <algorithm>
#include <sstream>

#include "src/util/assert.h"

namespace setlib::agreement {

AgreementVerdict validate_agreement(
    int t, int k, int n, const std::vector<std::int64_t>& proposals,
    const std::vector<std::optional<std::int64_t>>& decisions,
    ProcSet faulty) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  SETLIB_EXPECTS(t >= 0 && t <= n - 1);
  SETLIB_EXPECTS(k >= 1);
  SETLIB_EXPECTS(proposals.size() == static_cast<std::size_t>(n));
  SETLIB_EXPECTS(decisions.size() == static_cast<std::size_t>(n));

  AgreementVerdict out;

  std::vector<std::int64_t> decided_values;
  for (Pid p = 0; p < n; ++p) {
    if (decisions[static_cast<std::size_t>(p)].has_value()) {
      decided_values.push_back(*decisions[static_cast<std::size_t>(p)]);
    }
  }
  std::sort(decided_values.begin(), decided_values.end());
  decided_values.erase(
      std::unique(decided_values.begin(), decided_values.end()),
      decided_values.end());
  out.distinct_values = static_cast<int>(decided_values.size());
  out.agreement_ok = out.distinct_values <= k;

  out.validity_ok = true;
  for (std::int64_t v : decided_values) {
    if (std::find(proposals.begin(), proposals.end(), v) == proposals.end()) {
      out.validity_ok = false;
    }
  }

  out.termination_ok = true;
  if (faulty.size() <= t) {
    for (Pid p : faulty.complement(n).to_vector()) {
      if (!decisions[static_cast<std::size_t>(p)].has_value()) {
        out.termination_ok = false;
      }
    }
  }

  out.ok = out.agreement_ok && out.validity_ok && out.termination_ok;

  std::ostringstream os;
  os << "distinct=" << out.distinct_values << "/" << k
     << " agreement=" << (out.agreement_ok ? "ok" : "VIOLATED")
     << " validity=" << (out.validity_ok ? "ok" : "VIOLATED")
     << " termination="
     << (faulty.size() > t ? "vacuous"
                           : (out.termination_ok ? "ok" : "incomplete"));
  out.detail = os.str();
  return out;
}

}  // namespace setlib::agreement
