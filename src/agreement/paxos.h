// Shared-memory Paxos (Disk Paxos with one block per process).
//
// Safety (agreement + validity) holds under full asynchrony and any
// number of crashes; termination holds once the leader oracle is stable
// at a unique correct leader — which is exactly what the stabilized
// winnerset of the Figure 2 detector supplies per instance (kset.h).
//
// Layout: each process q owns a single-writer register block
//   R[q] = {mbal, bal, val, has}
// (the model's registers hold arbitrary values, so the block is one
// atomic register), plus a multi-writer decision register D. A leader at
// ballot b (b == self mod n, strictly increasing):
//   phase 1: write own block with mbal=b; collect; abort on any
//            mbal' > b; pick the value of the highest bal' seen (or its
//            own proposal if none);
//   phase 2: write own block with bal=b and the picked value; collect;
//            abort on any mbal' > b; otherwise decide (write D).
// Non-leaders spin on D (one read per loop iteration, so every loop
// path performs a register operation and the task stays step-driven).
//
// Threading model: no locks here — safety is the ballot protocol over
// single-writer register blocks, executed through IMemory. Each
// PaxosProcess instance is owned by one (simulated or real) process;
// concurrency control lives in the memory implementation.
#ifndef SETLIB_AGREEMENT_PAXOS_H
#define SETLIB_AGREEMENT_PAXOS_H

#include <cstdint>
#include <functional>
#include <string>

#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/util/procset.h"

namespace setlib::agreement {

class PaxosConsensus {
 public:
  /// Leader oracle: given the querying process, the pid it currently
  /// trusts as leader. May change over time (detector-driven).
  using LeaderFn = std::function<Pid(Pid self)>;

  struct Status {
    bool decided = false;
    std::int64_t value = 0;
    std::int64_t ballots_started = 0;  // telemetry
  };

  PaxosConsensus(shm::IMemory& mem, int n, const std::string& name);

  /// The per-process task. Terminates (task completes) once p observes
  /// a decision; on_decide (optional) fires at that local moment.
  shm::Prog run(Pid p, std::int64_t proposal, LeaderFn leader,
                Status* status,
                std::function<void(std::int64_t)> on_decide = nullptr);

  int n() const noexcept { return n_; }
  shm::RegisterId block_reg(Pid q) const;
  shm::RegisterId decision_reg() const noexcept { return decision_; }

 private:
  shm::Prog run_impl(Pid p, std::int64_t proposal, LeaderFn leader,
                     Status* status,
                     std::function<void(std::int64_t)> on_decide);

  int n_;
  shm::RegisterId blocks_base_;
  shm::RegisterId decision_;
};

}  // namespace setlib::agreement

#endif  // SETLIB_AGREEMENT_PAXOS_H
