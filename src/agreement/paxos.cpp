#include "src/agreement/paxos.h"

#include <algorithm>

#include "src/util/assert.h"

namespace setlib::agreement {

namespace {
// Block field indices within the register tuple.
constexpr std::size_t kMbal = 0;
constexpr std::size_t kBal = 1;
constexpr std::size_t kVal = 2;
constexpr std::size_t kHas = 3;
}  // namespace

PaxosConsensus::PaxosConsensus(shm::IMemory& mem, int n,
                               const std::string& name)
    : n_(n) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  blocks_base_ = mem.alloc_array(name + ".R", n);
  decision_ = mem.alloc(name + ".D");
}

shm::RegisterId PaxosConsensus::block_reg(Pid q) const {
  SETLIB_EXPECTS(q >= 0 && q < n_);
  return blocks_base_ + q;
}

shm::Prog PaxosConsensus::run(Pid p, std::int64_t proposal, LeaderFn leader,
                              Status* status,
                              std::function<void(std::int64_t)> on_decide) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(status != nullptr);
  SETLIB_EXPECTS(leader != nullptr);
  return run_impl(p, proposal, std::move(leader), status,
                  std::move(on_decide));
}

shm::Prog PaxosConsensus::run_impl(
    Pid p, std::int64_t proposal, LeaderFn leader, Status* status,
    std::function<void(std::int64_t)> on_decide) {

  // Own block (p is its only writer, so the local copy is exact).
  std::int64_t my_mbal = 0;
  std::int64_t my_bal = 0;
  std::int64_t my_val = 0;
  std::int64_t my_has = 0;
  std::int64_t max_seen = 0;  // highest mbal observed anywhere

  auto write_own_block = [&]() {
    return shm::write(blocks_base_ + p,
                      shm::Value::of(my_mbal, my_bal, my_val, my_has));
  };

  for (;;) {
    // Check for a decision every iteration (also the non-leader path's
    // one register operation per loop).
    const shm::Value d = co_await shm::read(decision_);
    if (!d.is_nil()) {
      status->decided = true;
      status->value = d.at(0);
      if (on_decide) on_decide(d.at(0));
      co_return;
    }

    if (leader(p) != p) continue;

    // --- Leader path: one ballot attempt. ---
    // Pick the smallest ballot > max_seen congruent to p (mod n).
    std::int64_t b = (max_seen / n_ + 1) * n_ + p;
    if (b <= max_seen) b += n_;
    SETLIB_ASSERT(b > max_seen && b % n_ == p);
    my_mbal = b;
    max_seen = b;
    ++status->ballots_started;

    // Phase 1: announce the ballot, then collect.
    co_await write_own_block();
    bool aborted = false;
    std::int64_t best_bal = my_has ? my_bal : 0;
    std::int64_t best_val = my_has ? my_val : proposal;
    bool any_val = my_has != 0;
    for (Pid q = 0; q < n_ && !aborted; ++q) {
      if (q == p) continue;
      const shm::Value blk = co_await shm::read(blocks_base_ + q);
      if (blk.is_nil()) continue;
      if (blk.at(kMbal) > b) {
        max_seen = std::max(max_seen, blk.at(kMbal));
        aborted = true;
        break;
      }
      if (blk.at(kHas) != 0 && (!any_val || blk.at(kBal) > best_bal)) {
        any_val = true;
        best_bal = blk.at(kBal);
        best_val = blk.at(kVal);
      }
    }
    if (aborted) continue;

    // Phase 2: write the chosen value at this ballot, then collect.
    my_bal = b;
    my_val = best_val;
    my_has = 1;
    co_await write_own_block();
    for (Pid q = 0; q < n_ && !aborted; ++q) {
      if (q == p) continue;
      const shm::Value blk = co_await shm::read(blocks_base_ + q);
      if (blk.is_nil()) continue;
      if (blk.at(kMbal) > b) {
        max_seen = std::max(max_seen, blk.at(kMbal));
        aborted = true;
      }
    }
    if (aborted) continue;

    // Both phases passed unobstructed: decide.
    co_await shm::write(decision_, shm::Value::of(best_val));
    status->decided = true;
    status->value = best_val;
    if (on_decide) on_decide(best_val);
    co_return;
  }
}

}  // namespace setlib::agreement
