// Safe agreement from read/write registers (the BG simulation's core
// synchronization object [6]).
//
// Properties:
//   - validity: any decided value was proposed;
//   - agreement: all decided values are equal;
//   - safe termination: resolve() succeeds once every proposer that
//     entered the "unsafe zone" has left it. A process that crashes
//     inside its unsafe zone can block the object forever — that is the
//     defining trade-off BG exploits (one blocked object per crashed
//     simulator).
//
// Construction ("levels"): each participant i owns a single-writer cell
// {level, payload}. propose: write level 1 (enter unsafe zone); take an
// atomic snapshot of the cells (double-collect until stable — levels
// change at most twice per participant, so this is wait-free here); if
// any level-2 cell is visible, retreat to level 0, else advance to
// level 2 (leave unsafe zone). resolve: snapshot; blocked while any
// level-1 cell exists; otherwise decide the payload of the
// smallest-index level-2 cell. With atomic snapshots the level-2 set is
// frozen once any clean snapshot exists, so deciders agree.
//
// Threading model: lock-free by design — the levels protocol above IS
// the synchronization, carried by single-writer registers through
// IMemory. The class itself holds only thread-owned state and needs no
// mutex or thread-safety annotations.
#ifndef SETLIB_BG_SAFE_AGREEMENT_H
#define SETLIB_BG_SAFE_AGREEMENT_H

#include <cstdint>
#include <string>

#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/shm/value.h"
#include "src/util/procset.h"

namespace setlib::bg {

class SafeAgreement {
 public:
  struct Outcome {
    bool decided = false;
    shm::Value value;
  };

  SafeAgreement(shm::IMemory& mem, int participants,
                const std::string& name);

  /// Enter and (unless crashed mid-way) leave the unsafe zone with
  /// payload v. Run inline via SETLIB_CO_RUN from a simulator program,
  /// or as a standalone task in unit tests.
  shm::Prog propose(Pid i, shm::Value v);

  /// One resolution attempt: *blocked = true if some participant is in
  /// its unsafe zone or nothing was proposed yet; otherwise decides.
  shm::Prog try_resolve(Pid i, Outcome* out, bool* blocked);

  int participants() const noexcept { return m_; }
  shm::RegisterId cell_reg(Pid i) const;

 private:
  shm::Prog propose_impl(Pid i, shm::Value v);
  shm::Prog try_resolve_impl(Pid i, Outcome* out, bool* blocked);

  int m_;
  shm::RegisterId cells_base_;
};

}  // namespace setlib::bg

#endif  // SETLIB_BG_SAFE_AGREEMENT_H
