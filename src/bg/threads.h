// Stock simulated-thread programs for BG experiments and tests.
#ifndef SETLIB_BG_THREADS_H
#define SETLIB_BG_THREADS_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/bg/bg_sim.h"

namespace setlib::bg {

/// Writes its input, runs `rounds` collect steps, then halts deciding
/// the minimum input visible in its final collect. Terminating and
/// deterministic — the workhorse for simulation-correctness tests (all
/// simulators must compute identical decisions), and a stand-in for a
/// full-information agreement protocol: decisions are valid (some
/// thread's input) and converge as rounds grow.
class MinInputThread final : public SimThreadProgram {
 public:
  MinInputThread(std::int64_t input, std::int64_t rounds)
      : input_(input), rounds_(rounds) {}

  std::int64_t initial_write() override { return input_; }

  Action on_snapshot(std::int64_t s,
                     const std::vector<CellView>& collect) override {
    if (s >= rounds_) {
      std::int64_t best = input_;
      for (const auto& c : collect) {
        if (c.step > 0) best = std::min(best, c.value);
      }
      return Action{true, best, 0};
    }
    return Action{false, 0, input_};
  }

 private:
  std::int64_t input_;
  std::int64_t rounds_;
};

/// Never halts; writes the step number. Used for long-run simulated-
/// schedule property experiments (timeliness of the simulated run).
class ForeverThread final : public SimThreadProgram {
 public:
  explicit ForeverThread(std::int64_t input) : input_(input) {}

  std::int64_t initial_write() override { return input_; }

  Action on_snapshot(std::int64_t s,
                     const std::vector<CellView>& collect) override {
    (void)collect;
    return Action{false, 0, input_ + s};
  }

 private:
  std::int64_t input_;
};

}  // namespace setlib::bg

#endif  // SETLIB_BG_THREADS_H
