// The BG simulation substrate (Borowsky-Gafni [6], as used in the proof
// of Theorem 26 case 2b).
//
// m simulator processes jointly execute n >= m simulated threads of a
// deterministic full-information protocol in the write/collect model:
// thread u alternates "write own cell" and "collect all cells", and the
// only nondeterminism — what a collect returns — is settled with one
// safe-agreement object per (thread, step). Each simulator enters at
// most one unsafe zone at a time, so a simulator crash blocks at most
// one thread: at most m - 1 simulated crashes (the paper's property
// (i)). Live threads are advanced round-robin, so the simulated
// schedule keeps every non-blocked thread timely — each set of m
// processes is timely w.r.t. the set of all n simulated processes (the
// paper's property (ii): the simulated schedule lies in S^m_{n,n});
// experiments verify both properties with the analyzer.
//
// Substitution note (see DESIGN.md): proposals are built from plain
// collects (a sequence of reads), i.e. the simulated model is
// write/collect rather than atomic-snapshot; agreement across
// simulators comes entirely from the safe-agreement objects, which is
// what properties (i)/(ii) and decision determinism need.
//
// Threading model: the simulation is a protocol expressed as register
// steps; it owns no locks. All cross-simulator synchronization is the
// safe-agreement objects' register protocol, executed through IMemory
// (serialized by the Simulator, or mutex-per-cell in RtMemory).
#ifndef SETLIB_BG_BG_SIM_H
#define SETLIB_BG_BG_SIM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/bg/safe_agreement.h"
#include "src/sched/schedule.h"
#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/util/procset.h"

namespace setlib::bg {

/// A deterministic simulated thread in the write/collect model.
class SimThreadProgram {
 public:
  virtual ~SimThreadProgram() = default;

  struct CellView {
    std::int64_t step = 0;  // 0 = unwritten
    std::int64_t value = 0;
  };

  struct Action {
    bool halt = false;
    std::int64_t decision = 0;     // meaningful when halt
    std::int64_t write_value = 0;  // next cell value otherwise
  };

  /// The value written before the first collect (the thread's input).
  virtual std::int64_t initial_write() = 0;

  /// React to the agreed collect for step s (s = 1, 2, ...). The
  /// automaton may keep internal state; all simulators feed their own
  /// instance the identical agreed sequence, so states coincide.
  virtual Action on_snapshot(std::int64_t s,
                             const std::vector<CellView>& collect) = 0;
};

using ThreadFactory =
    std::function<std::unique_ptr<SimThreadProgram>(int thread_idx)>;

class BGSimulation {
 public:
  struct Params {
    int simulators = 0;  // m
    int threads = 0;     // n
    int horizon = 64;    // max simulated steps per thread
  };

  BGSimulation(shm::IMemory& mem, Params params, ThreadFactory factory);

  /// Simulator i's main loop; install as the (single) task of process i.
  shm::Prog run(Pid sim);

  const Params& params() const noexcept { return params_; }

  /// Simulated steps completed for thread u from simulator sim's view.
  std::int64_t steps_of(int sim, int u) const;

  /// Decision of simulated thread u as computed by simulator sim
  /// (nullopt: not halted from that simulator's view).
  std::optional<std::int64_t> thread_decision(int sim, int u) const;

  /// Threads that some simulator observed blocked at its last attempt
  /// (safe agreement unresolved). Recomputed lazily by callers via
  /// steps_of stagnation; this set reflects the final loop pass.
  ProcSet blocked_threads() const;

  /// The simulated schedule: thread indices in the global order in
  /// which (thread, step) pairs were first applied by any simulator.
  const sched::Schedule& simulated_schedule() const noexcept {
    return sim_schedule_;
  }

 private:
  struct PerThreadState {
    std::unique_ptr<SimThreadProgram> program;
    std::int64_t next_step = 0;  // 0 = initial write pending
    bool halted = false;
    std::int64_t decision = 0;
    std::vector<bool> proposed;  // per step index
  };

  shm::Prog run_impl(Pid sim);
  shm::RegisterId sim_cell(int u, int sim) const;
  SafeAgreement& sa(int u, std::int64_t s);
  void note_applied(int u, std::int64_t s);

  Params params_;
  shm::RegisterId cells_base_;   // [u * m + sim] = {step, value}
  shm::RegisterId idle_reg_;
  std::vector<std::unique_ptr<SafeAgreement>> sa_;  // [u * horizon + (s-1)]
  // per-simulator simulated state: state_[sim][u]
  std::vector<std::vector<PerThreadState>> state_;
  std::vector<std::vector<bool>> last_blocked_;  // [sim][u]
  std::vector<std::vector<bool>> applied_;       // [u][s] (0 = initial)
  sched::Schedule sim_schedule_;
};

}  // namespace setlib::bg

#endif  // SETLIB_BG_BG_SIM_H
