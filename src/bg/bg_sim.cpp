#include "src/bg/bg_sim.h"

#include <string>

#include "src/util/assert.h"

namespace setlib::bg {

BGSimulation::BGSimulation(shm::IMemory& mem, Params params,
                           ThreadFactory factory)
    : params_(params), sim_schedule_(params.threads) {
  SETLIB_EXPECTS(params.simulators >= 1 &&
                 params.simulators <= kMaxProcs);
  SETLIB_EXPECTS(params.threads >= 1 && params.threads <= kMaxProcs);
  SETLIB_EXPECTS(params.horizon >= 1);
  SETLIB_EXPECTS(factory != nullptr);

  cells_base_ = mem.alloc_array(
      "bg.cell", static_cast<std::int64_t>(params.threads) *
                     static_cast<std::int64_t>(params.simulators));
  idle_reg_ = mem.alloc("bg.idle");

  sa_.reserve(static_cast<std::size_t>(params.threads) *
              static_cast<std::size_t>(params.horizon));
  for (int u = 0; u < params.threads; ++u) {
    for (int s = 0; s < params.horizon; ++s) {
      sa_.push_back(std::make_unique<SafeAgreement>(
          mem, params.simulators,
          "bg.sa." + std::to_string(u) + "." + std::to_string(s)));
    }
  }

  state_.resize(static_cast<std::size_t>(params.simulators));
  last_blocked_.assign(
      static_cast<std::size_t>(params.simulators),
      std::vector<bool>(static_cast<std::size_t>(params.threads), false));
  for (int sim = 0; sim < params.simulators; ++sim) {
    auto& row = state_[static_cast<std::size_t>(sim)];
    row.resize(static_cast<std::size_t>(params.threads));
    for (int u = 0; u < params.threads; ++u) {
      auto& st = row[static_cast<std::size_t>(u)];
      st.program = factory(u);
      SETLIB_ASSERT(st.program != nullptr);
      st.proposed.assign(static_cast<std::size_t>(params.horizon), false);
    }
  }
  applied_.assign(
      static_cast<std::size_t>(params.threads),
      std::vector<bool>(static_cast<std::size_t>(params.horizon) + 1,
                        false));
}

shm::RegisterId BGSimulation::sim_cell(int u, int sim) const {
  SETLIB_EXPECTS(u >= 0 && u < params_.threads);
  SETLIB_EXPECTS(sim >= 0 && sim < params_.simulators);
  return cells_base_ + static_cast<std::int64_t>(u) * params_.simulators +
         sim;
}

SafeAgreement& BGSimulation::sa(int u, std::int64_t s) {
  SETLIB_EXPECTS(u >= 0 && u < params_.threads);
  SETLIB_EXPECTS(s >= 1 && s <= params_.horizon);
  return *sa_[static_cast<std::size_t>(u) *
                  static_cast<std::size_t>(params_.horizon) +
              static_cast<std::size_t>(s - 1)];
}

void BGSimulation::note_applied(int u, std::int64_t s) {
  auto flag = applied_[static_cast<std::size_t>(u)].begin() + s;
  if (!*flag) {
    *flag = true;
    sim_schedule_.append(u);
  }
}

shm::Prog BGSimulation::run(Pid sim) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(sim >= 0 && sim < params_.simulators);
  return run_impl(sim);
}

shm::Prog BGSimulation::run_impl(Pid sim) {
  const int n = params_.threads;
  const int m = params_.simulators;
  auto& threads = state_[static_cast<std::size_t>(sim)];
  auto& blocked_row = last_blocked_[static_cast<std::size_t>(sim)];
  int rr = sim % n;  // stagger starting threads across simulators

  for (;;) {
    bool progressed = false;
    for (int off = 0; off < n; ++off) {
      const int u = (rr + off) % n;
      auto& st = threads[static_cast<std::size_t>(u)];
      if (st.halted || st.next_step > params_.horizon) continue;

      if (st.next_step == 0) {
        // Initial write: deterministic, no agreement needed.
        const std::int64_t w = st.program->initial_write();
        co_await shm::write(sim_cell(u, sim), shm::Value::of(1, w));
        st.next_step = 1;
        note_applied(u, 0);
        progressed = true;
        continue;
      }

      const std::int64_t s = st.next_step;
      SafeAgreement& agreement = sa(u, s);
      SafeAgreement::Outcome outcome;
      bool blocked = false;
      SETLIB_CO_RUN(agreement.try_resolve(sim, &outcome, &blocked));

      if (!outcome.decided &&
          !st.proposed[static_cast<std::size_t>(s - 1)]) {
        // Build a proposal: collect the whole cell matrix; each
        // simulated cell's current value is the entry with the highest
        // simulated step among the simulators' copies.
        std::vector<std::int64_t> flat;
        flat.reserve(static_cast<std::size_t>(2 * n));
        for (int v = 0; v < n; ++v) {
          std::int64_t best_step = 0;
          std::int64_t best_val = 0;
          for (int i = 0; i < m; ++i) {
            const shm::Value cell = co_await shm::read(sim_cell(v, i));
            if (!cell.is_nil() && cell.at(0) > best_step) {
              best_step = cell.at(0);
              best_val = cell.at(1);
            }
          }
          flat.push_back(best_step);
          flat.push_back(best_val);
        }
        st.proposed[static_cast<std::size_t>(s - 1)] = true;
        SETLIB_CO_RUN(
            agreement.propose(sim, shm::Value(std::move(flat))));
        SETLIB_CO_RUN(agreement.try_resolve(sim, &outcome, &blocked));
      }

      if (!outcome.decided) {
        blocked_row[static_cast<std::size_t>(u)] = true;
        continue;  // unresolved (someone mid-unsafe-zone); revisit later
      }
      blocked_row[static_cast<std::size_t>(u)] = false;

      // Apply the agreed collect to the local automaton instance.
      const shm::Value& agreed = outcome.value;
      SETLIB_ASSERT(agreed.size() ==
                    static_cast<std::size_t>(2 * n));
      std::vector<SimThreadProgram::CellView> views(
          static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v) {
        views[static_cast<std::size_t>(v)].step =
            agreed.at(static_cast<std::size_t>(2 * v));
        views[static_cast<std::size_t>(v)].value =
            agreed.at(static_cast<std::size_t>(2 * v + 1));
      }
      const auto action = st.program->on_snapshot(s, views);
      note_applied(u, s);
      if (action.halt) {
        st.halted = true;
        st.decision = action.decision;
      } else {
        co_await shm::write(sim_cell(u, sim),
                            shm::Value::of(s + 1, action.write_value));
      }
      st.next_step = s + 1;
      progressed = true;
    }
    rr = (rr + 1) % n;
    if (!progressed) {
      // Every thread is blocked, halted, or beyond the horizon from this
      // simulator's view; keep taking (idle) steps so the simulator
      // remains correct in the schedule.
      co_await shm::read(idle_reg_);
    }
  }
}

std::int64_t BGSimulation::steps_of(int sim, int u) const {
  SETLIB_EXPECTS(sim >= 0 && sim < params_.simulators);
  SETLIB_EXPECTS(u >= 0 && u < params_.threads);
  return state_[static_cast<std::size_t>(sim)][static_cast<std::size_t>(u)]
      .next_step;
}

std::optional<std::int64_t> BGSimulation::thread_decision(int sim,
                                                          int u) const {
  SETLIB_EXPECTS(sim >= 0 && sim < params_.simulators);
  SETLIB_EXPECTS(u >= 0 && u < params_.threads);
  const auto& st =
      state_[static_cast<std::size_t>(sim)][static_cast<std::size_t>(u)];
  if (!st.halted) return std::nullopt;
  return st.decision;
}

ProcSet BGSimulation::blocked_threads() const {
  // A thread counts as blocked if every simulator's last attempt on it
  // found its safe agreement unresolved.
  ProcSet out;
  for (int u = 0; u < params_.threads; ++u) {
    bool all_blocked = true;
    for (int sim = 0; sim < params_.simulators; ++sim) {
      if (!last_blocked_[static_cast<std::size_t>(sim)]
                        [static_cast<std::size_t>(u)]) {
        all_blocked = false;
        break;
      }
    }
    if (all_blocked) out = out.with(u);
  }
  return out;
}

}  // namespace setlib::bg
