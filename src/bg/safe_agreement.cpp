#include "src/bg/safe_agreement.h"

#include <vector>

#include "src/util/assert.h"

namespace setlib::bg {

namespace {
// Cell encoding: word 0 = level (0, 1, 2); words 1.. = payload.
constexpr std::int64_t kLevelIdle = 0;
constexpr std::int64_t kLevelUnsafe = 1;
constexpr std::int64_t kLevelDone = 2;

shm::Value encode_cell(std::int64_t level, const shm::Value& payload) {
  std::vector<std::int64_t> w;
  w.reserve(1 + payload.size());
  w.push_back(level);
  for (std::size_t i = 0; i < payload.size(); ++i) w.push_back(payload.at(i));
  return shm::Value(std::move(w));
}

shm::Value decode_payload(const shm::Value& cell) {
  std::vector<std::int64_t> w;
  for (std::size_t i = 1; i < cell.size(); ++i) w.push_back(cell.at(i));
  return shm::Value(std::move(w));
}

std::int64_t level_of(const shm::Value& cell) {
  return cell.is_nil() ? kLevelIdle : cell.at(0);
}
}  // namespace

SafeAgreement::SafeAgreement(shm::IMemory& mem, int participants,
                             const std::string& name)
    : m_(participants) {
  SETLIB_EXPECTS(participants >= 1 && participants <= kMaxProcs);
  cells_base_ = mem.alloc_array(name + ".cell", participants);
}

shm::RegisterId SafeAgreement::cell_reg(Pid i) const {
  SETLIB_EXPECTS(i >= 0 && i < m_);
  return cells_base_ + i;
}

shm::Prog SafeAgreement::propose(Pid i, shm::Value v) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(i >= 0 && i < m_);
  return propose_impl(i, std::move(v));
}

shm::Prog SafeAgreement::propose_impl(Pid i, shm::Value v) {

  // Enter the unsafe zone.
  co_await shm::write(cells_base_ + i, encode_cell(kLevelUnsafe, v));

  // Atomic snapshot by double collect. Each participant's cell changes
  // at most twice (idle->unsafe->done/idle), so two equal consecutive
  // collects are reached after at most O(m) retries.
  std::vector<shm::Value> snap(static_cast<std::size_t>(m_));
  std::vector<shm::Value> again(static_cast<std::size_t>(m_));
  for (Pid q = 0; q < m_; ++q) {
    snap[static_cast<std::size_t>(q)] = co_await shm::read(cells_base_ + q);
  }
  for (;;) {
    bool stable = true;
    for (Pid q = 0; q < m_; ++q) {
      again[static_cast<std::size_t>(q)] =
          co_await shm::read(cells_base_ + q);
      if (again[static_cast<std::size_t>(q)] !=
          snap[static_cast<std::size_t>(q)]) {
        stable = false;
      }
    }
    if (stable) break;
    snap.swap(again);
  }

  bool saw_done = false;
  for (Pid q = 0; q < m_; ++q) {
    if (level_of(snap[static_cast<std::size_t>(q)]) == kLevelDone) {
      saw_done = true;
    }
  }

  // Leave the unsafe zone: retreat if someone already advanced.
  const std::int64_t level = saw_done ? kLevelIdle : kLevelDone;
  co_await shm::write(cells_base_ + i, encode_cell(level, v));
}

shm::Prog SafeAgreement::try_resolve(Pid i, Outcome* out, bool* blocked) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(i >= 0 && i < m_);
  SETLIB_EXPECTS(out != nullptr && blocked != nullptr);
  return try_resolve_impl(i, out, blocked);
}

shm::Prog SafeAgreement::try_resolve_impl(Pid /*i*/, Outcome* out,
                                          bool* blocked) {
  *blocked = false;

  std::vector<shm::Value> snap(static_cast<std::size_t>(m_));
  std::vector<shm::Value> again(static_cast<std::size_t>(m_));
  for (Pid q = 0; q < m_; ++q) {
    snap[static_cast<std::size_t>(q)] = co_await shm::read(cells_base_ + q);
  }
  for (;;) {
    bool stable = true;
    for (Pid q = 0; q < m_; ++q) {
      again[static_cast<std::size_t>(q)] =
          co_await shm::read(cells_base_ + q);
      if (again[static_cast<std::size_t>(q)] !=
          snap[static_cast<std::size_t>(q)]) {
        stable = false;
      }
    }
    if (stable) break;
    snap.swap(again);
  }

  Pid winner = -1;
  for (Pid q = 0; q < m_; ++q) {
    const std::int64_t level = level_of(snap[static_cast<std::size_t>(q)]);
    if (level == kLevelUnsafe) {
      *blocked = true;
      co_return;
    }
    if (level == kLevelDone && winner < 0) winner = q;
  }
  if (winner < 0) {
    *blocked = true;  // nothing proposed yet
    co_return;
  }
  out->decided = true;
  out->value = decode_payload(snap[static_cast<std::size_t>(winner)]);
}

}  // namespace setlib::bg
