#include "src/sched/generators.h"

#include "src/util/assert.h"

namespace setlib::sched {

Schedule generate(ScheduleGenerator& gen, std::int64_t steps) {
  SETLIB_EXPECTS(steps >= 0);
  Schedule s(gen.n());
  for (std::int64_t i = 0; i < steps; ++i) s.append(gen.next());
  return s;
}

RoundRobinGenerator::RoundRobinGenerator(int n) : n_(n) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
}

Pid RoundRobinGenerator::next() {
  const Pid p = next_;
  next_ = (next_ + 1) % n_;
  return p;
}

UniformRandomGenerator::UniformRandomGenerator(int n, std::uint64_t seed)
    : n_(n), rng_(seed) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
}

Pid UniformRandomGenerator::next() {
  return static_cast<Pid>(rng_.next_below(static_cast<std::uint64_t>(n_)));
}

WeightedRandomGenerator::WeightedRandomGenerator(std::vector<double> weights,
                                                 std::uint64_t seed)
    : weights_(std::move(weights)), rng_(seed) {
  SETLIB_EXPECTS(!weights_.empty() &&
                 weights_.size() <= static_cast<std::size_t>(kMaxProcs));
}

Pid WeightedRandomGenerator::next() {
  return static_cast<Pid>(rng_.next_weighted(weights_));
}

Figure1Generator::Figure1Generator(int n, Pid p1, Pid p2, Pid q)
    : n_(n), p1_(p1), p2_(p2), q_(q) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  SETLIB_EXPECTS(p1 >= 0 && p1 < n && p2 >= 0 && p2 < n && q >= 0 && q < n);
  SETLIB_EXPECTS(p1 != p2 && p1 != q && p2 != q);
}

Pid Figure1Generator::next() {
  if (emit_q_) {
    emit_q_ = false;
    ++pair_in_half_;
    if (pair_in_half_ == phase_) {
      pair_in_half_ = 0;
      if (second_half_) {
        second_half_ = false;
        ++phase_;
      } else {
        second_half_ = true;
      }
    }
    return q_;
  }
  emit_q_ = true;
  return second_half_ ? p2_ : p1_;
}

std::int64_t Figure1Generator::steps_through_phase(std::int64_t i) {
  SETLIB_EXPECTS(i >= 0);
  // Phase i contributes i pairs of (p1 q) plus i pairs of (p2 q) = 4i.
  return 2 * i * (i + 1);
}

RotatingStarverGenerator::RotatingStarverGenerator(int n, ProcSet rotors,
                                                   ProcSet background,
                                                   std::int64_t growth)
    : n_(n),
      rotors_(rotors.to_vector()),
      background_((background - rotors).to_vector()),
      growth_(growth) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  SETLIB_EXPECTS(!rotors_.empty());
  SETLIB_EXPECTS(growth >= 1);
  SETLIB_EXPECTS(rotors.subset_of(ProcSet::universe(n)));
  SETLIB_EXPECTS(background.subset_of(ProcSet::universe(n)));
}

void RotatingStarverGenerator::advance_block() {
  pos_in_block_ = 0;
  ++block_in_phase_;
  if (block_in_phase_ >= growth_ * phase_) {
    block_in_phase_ = 0;
    ++phase_;
    rotor_idx_ = (rotor_idx_ + 1) % rotors_.size();
  }
}

Pid RotatingStarverGenerator::next() {
  if (pos_in_block_ == 0) {
    const Pid r = rotors_[rotor_idx_];
    if (background_.empty()) {
      advance_block();
    } else {
      pos_in_block_ = 1;
    }
    return r;
  }
  const Pid b = background_[pos_in_block_ - 1];
  if (pos_in_block_ == background_.size()) {
    advance_block();
  } else {
    ++pos_in_block_;
  }
  return b;
}

KSubsetStarverGenerator::KSubsetStarverGenerator(int n, ProcSet live, int k,
                                                 std::int64_t growth)
    : n_(n),
      live_(live),
      ranker_(live.size(), k),
      live_members_(live.to_vector()),
      growth_(growth) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  SETLIB_EXPECTS(live.subset_of(ProcSet::universe(n)));
  SETLIB_EXPECTS(k >= 1 && k < live.size());  // someone must stay active
  SETLIB_EXPECTS(growth >= 1);
  enter_phase();
}

void KSubsetStarverGenerator::enter_phase() {
  ++phase_;
  step_in_phase_ = 0;
  // The starved subset: rank cycles through all C(|live|, k) subsets of
  // live-member *indices*; map indices back to pids.
  const std::int64_t rank = (phase_ - 1) % ranker_.count();
  const ProcSet starved_idx = ranker_.unrank(rank);
  active_.clear();
  for (std::size_t idx = 0; idx < live_members_.size(); ++idx) {
    if (!starved_idx.contains(static_cast<Pid>(idx))) {
      active_.push_back(live_members_[idx]);
    }
  }
  SETLIB_ASSERT(!active_.empty());
  rr_ = 0;
}

Pid KSubsetStarverGenerator::next() {
  if (step_in_phase_ >= growth_ * phase_) enter_phase();
  ++step_in_phase_;
  const Pid p = active_[rr_];
  rr_ = (rr_ + 1) % active_.size();
  return p;
}

SwitchGenerator::SwitchGenerator(std::unique_ptr<ScheduleGenerator> before,
                                 std::unique_ptr<ScheduleGenerator> after,
                                 std::int64_t switch_at)
    : before_(std::move(before)),
      after_(std::move(after)),
      switch_at_(switch_at) {
  SETLIB_EXPECTS(before_ != nullptr && after_ != nullptr);
  SETLIB_EXPECTS(before_->n() == after_->n());
  SETLIB_EXPECTS(switch_at >= 0);
}

int SwitchGenerator::n() const { return before_->n(); }

Pid SwitchGenerator::next() {
  const Pid p =
      emitted_ < switch_at_ ? before_->next() : after_->next();
  ++emitted_;
  return p;
}

ReplayGenerator::ReplayGenerator(Schedule schedule)
    : schedule_(std::move(schedule)) {}

Pid ReplayGenerator::next() {
  if (pos_ < schedule_.size()) {
    return schedule_[pos_++];
  }
  const Pid p = fallback_;
  fallback_ = (fallback_ + 1) % schedule_.n();
  return p;
}

CrashPlan::CrashPlan(int n)
    : n_(n), crash_step_(static_cast<std::size_t>(n), kNever) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
}

CrashPlan CrashPlan::none(int n) { return CrashPlan(n); }

CrashPlan CrashPlan::at(int n, ProcSet who, std::int64_t when) {
  CrashPlan plan(n);
  for (Pid p : who.to_vector()) plan.set_crash(p, when);
  return plan;
}

void CrashPlan::set_crash(Pid p, std::int64_t step) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(step >= 0);
  crash_step_[static_cast<std::size_t>(p)] = step;
}

std::int64_t CrashPlan::crash_step(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return crash_step_[static_cast<std::size_t>(p)];
}

bool CrashPlan::crashed_by(Pid p, std::int64_t step) const {
  return crash_step(p) <= step;
}

ProcSet CrashPlan::faulty() const {
  ProcSet s;
  for (Pid p = 0; p < n_; ++p) {
    if (crash_step_[static_cast<std::size_t>(p)] != kNever) s = s.with(p);
  }
  return s;
}

ProcSet CrashPlan::alive_at(std::int64_t step) const {
  ProcSet s;
  for (Pid p = 0; p < n_; ++p) {
    if (!crashed_by(p, step)) s = s.with(p);
  }
  return s;
}

CrashFilterGenerator::CrashFilterGenerator(
    std::unique_ptr<ScheduleGenerator> base, CrashPlan plan)
    : base_(std::move(base)), plan_(std::move(plan)) {
  SETLIB_EXPECTS(base_ != nullptr);
  SETLIB_EXPECTS(plan_.n() == base_->n());
  SETLIB_EXPECTS(!plan_.alive_at(CrashPlan::kNever - 1).empty());
}

Pid CrashFilterGenerator::next() {
  // Pull until the base yields an alive process. Fair bases revisit every
  // process, so this loop terminates; cap pulls defensively regardless.
  for (std::int64_t attempts = 0; attempts < 1'000'000; ++attempts) {
    const Pid p = base_->next();
    if (!plan_.crashed_by(p, emitted_)) {
      ++emitted_;
      return p;
    }
  }
  // The base starved all alive processes; fall back to the smallest
  // alive pid to preserve progress (recorded like any other step).
  const ProcSet alive = plan_.alive_at(emitted_);
  SETLIB_ASSERT(!alive.empty());
  ++emitted_;
  return alive.min();
}

}  // namespace setlib::sched
