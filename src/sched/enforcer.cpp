#include "src/sched/enforcer.h"

#include "src/util/assert.h"

namespace setlib::sched {

EnforcedGenerator::EnforcedGenerator(
    std::unique_ptr<ScheduleGenerator> base,
    std::vector<TimelinessConstraint> constraints, CrashPlan plan)
    : base_(std::move(base)), plan_(std::move(plan)) {
  SETLIB_EXPECTS(base_ != nullptr);
  SETLIB_EXPECTS(plan_.n() == base_->n());
  const ProcSet universe = ProcSet::universe(base_->n());
  for (const auto& c : constraints) {
    SETLIB_EXPECTS(c.bound >= 1);
    SETLIB_EXPECTS(!c.timely_set.empty());
    SETLIB_EXPECTS(c.timely_set.subset_of(universe));
    SETLIB_EXPECTS(c.observed_set.subset_of(universe));
    states_.push_back(State{c});
  }
}

std::unique_ptr<EnforcedGenerator> EnforcedGenerator::single(
    std::unique_ptr<ScheduleGenerator> base, TimelinessConstraint constraint) {
  SETLIB_EXPECTS(base != nullptr);
  const int n = base->n();
  return std::make_unique<EnforcedGenerator>(
      std::move(base), std::vector<TimelinessConstraint>{constraint},
      CrashPlan::none(n));
}

Pid EnforcedGenerator::pick_substitute(State& st, ProcSet alive) {
  const ProcSet candidates = st.c.timely_set & alive;
  SETLIB_EXPECTS(!candidates.empty());
  const int sz = candidates.size();
  const Pid p = candidates.nth(st.rotate % sz);
  ++st.rotate;
  return p;
}

Pid EnforcedGenerator::next() {
  const ProcSet alive = plan_.alive_at(emitted_);
  SETLIB_ASSERT(!alive.empty());

  // Base proposal, already crash-filtered.
  Pid candidate = -1;
  for (std::int64_t attempts = 0; attempts < 1'000'000; ++attempts) {
    const Pid p = base_->next();
    if (alive.contains(p)) {
      candidate = p;
      break;
    }
  }
  if (candidate < 0) candidate = alive.min();

  // Apply constraints in order; a substitution restarts the scan so the
  // final choice is re-checked against every constraint.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < 8) {
    changed = false;
    ++rounds;
    for (auto& st : states_) {
      const bool in_q = st.c.observed_set.contains(candidate);
      const bool in_p = st.c.timely_set.contains(candidate);
      if (in_q && !in_p && st.q_steps_since_p >= st.c.bound - 1) {
        const ProcSet avail = st.c.timely_set & alive;
        if (avail.empty()) {
          ++dropped_;
          continue;  // constraint no longer enforceable
        }
        candidate = pick_substitute(st, alive);
        ++substitutions_;
        changed = true;
        break;
      }
    }
  }

  // Update window counters with the emitted step.
  for (auto& st : states_) {
    if (st.c.timely_set.contains(candidate)) {
      st.q_steps_since_p = 0;
    } else if (st.c.observed_set.contains(candidate)) {
      ++st.q_steps_since_p;
    }
  }
  ++emitted_;
  return candidate;
}

}  // namespace setlib::sched
