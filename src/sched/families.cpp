#include "src/sched/families.h"

#include <utility>

#include "src/util/assert.h"

namespace setlib::sched {

namespace {

/// Independent per-role seed streams, so a family that composes
/// several seeded parts (crash plan + base noise, prefix + suffix)
/// never reuses one Rng stream for two roles. Same derivation shape as
/// core::derive_cell_seed.
std::uint64_t family_seed(std::uint64_t seed, std::uint64_t role) noexcept {
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ull * (role + 1);
  return splitmix64(state);
}

}  // namespace

BurstyGenerator::BurstyGenerator(int n, std::int64_t scale,
                                 std::uint64_t seed)
    : n_(n), scale_(scale), rng_(seed) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  SETLIB_EXPECTS(scale >= 1);
}

Pid BurstyGenerator::next() {
  if (remaining_ == 0) {
    current_ =
        static_cast<Pid>(rng_.next_below(static_cast<std::uint64_t>(n_)));
    remaining_ = rng_.next_in(1, 2 * scale_);
  }
  --remaining_;
  return current_;
}

StarvationGenerator::StarvationGenerator(int n, std::int64_t scale,
                                         std::uint64_t seed)
    : n_(n), scale_(scale), rng_(seed) {
  SETLIB_EXPECTS(n >= 2 && n <= kMaxProcs);  // someone must starve
  SETLIB_EXPECTS(scale >= 1);
}

std::int64_t StarvationGenerator::geometric_stretch() {
  // Geometric(1/scale), capped so one draw can never dominate a run:
  // mean ~scale, unbounded tail in distribution but not in code.
  std::int64_t len = 1;
  const double p = 1.0 / static_cast<double>(scale_);
  while (len < 64 * scale_ && !rng_.next_bool(p)) ++len;
  return len;
}

Pid StarvationGenerator::next() {
  if (starved_left_ == 0 && recover_left_ == 0) {
    victim_ =
        static_cast<Pid>(rng_.next_below(static_cast<std::uint64_t>(n_)));
    starved_left_ = geometric_stretch();
    recover_left_ = n_;
    rr_ = 0;
  }
  if (starved_left_ > 0) {
    --starved_left_;
    Pid p = static_cast<Pid>(
        rng_.next_below(static_cast<std::uint64_t>(n_ - 1)));
    if (p >= victim_) ++p;  // uniform over the non-victims
    return p;
  }
  --recover_left_;
  const Pid p = rr_;
  rr_ = (rr_ + 1) % n_;
  return p;
}

const std::vector<FamilyInfo>& schedule_families() {
  static const std::vector<FamilyInfo> families = {
      {FamilyKind::kUniform, "uniform", "seeded fair asynchrony"},
      {FamilyKind::kWeighted, "weighted",
       "seeded biased asynchrony (per-process weights from the seed)"},
      {FamilyKind::kBursty, "bursty",
       "long seeded solo runs per process (mean `scale` steps)"},
      {FamilyKind::kStarvation, "starvation",
       "seeded victim silenced for geometric stretches"},
      {FamilyKind::kCrashProne, "crash-prone",
       "tail processes permanently silenced at seeded steps"},
      {FamilyKind::kGst, "gst",
       "chaotic bursty prefix, then round-robin"},
  };
  return families;
}

const FamilyInfo* find_family(std::string_view name) {
  for (const FamilyInfo& info : schedule_families()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

CrashPlan crash_prone_plan(const FamilyParams& params, std::uint64_t seed) {
  SETLIB_EXPECTS(params.n >= 1 && params.n <= kMaxProcs);
  SETLIB_EXPECTS(params.crash_count >= 0 && params.crash_count < params.n);
  SETLIB_EXPECTS(params.crash_horizon >= 1);
  Rng rng(family_seed(seed, 0));
  CrashPlan plan(params.n);
  for (int c = 0; c < params.crash_count; ++c) {
    plan.set_crash(params.n - 1 - c,
                   static_cast<std::int64_t>(rng.next_below(
                       static_cast<std::uint64_t>(params.crash_horizon))));
  }
  return plan;
}

std::unique_ptr<ScheduleGenerator> make_family(FamilyKind kind,
                                               const FamilyParams& params,
                                               std::uint64_t seed) {
  SETLIB_EXPECTS(params.n >= 1 && params.n <= kMaxProcs);
  switch (kind) {
    case FamilyKind::kUniform:
      return std::make_unique<UniformRandomGenerator>(
          params.n, family_seed(seed, 1));
    case FamilyKind::kWeighted: {
      // Seeded skew: ~30% of processes are nearly silent; process 0
      // keeps full weight so the weights are never all ~0.
      Rng rng(family_seed(seed, 2));
      std::vector<double> weights;
      weights.reserve(static_cast<std::size_t>(params.n));
      for (int p = 0; p < params.n; ++p) {
        weights.push_back(rng.next_bool(0.3) ? 0.05 : 1.0);
      }
      weights[0] = 1.0;
      return std::make_unique<WeightedRandomGenerator>(
          std::move(weights), family_seed(seed, 3));
    }
    case FamilyKind::kBursty:
      return std::make_unique<BurstyGenerator>(params.n, params.scale,
                                               family_seed(seed, 4));
    case FamilyKind::kStarvation:
      return std::make_unique<StarvationGenerator>(params.n, params.scale,
                                                   family_seed(seed, 5));
    case FamilyKind::kCrashProne:
      return std::make_unique<CrashFilterGenerator>(
          std::make_unique<UniformRandomGenerator>(params.n,
                                                   family_seed(seed, 6)),
          crash_prone_plan(params, seed));
    case FamilyKind::kGst:
      SETLIB_EXPECTS(params.gst >= 0);
      return std::make_unique<SwitchGenerator>(
          std::make_unique<BurstyGenerator>(params.n, params.scale,
                                            family_seed(seed, 7)),
          std::make_unique<RoundRobinGenerator>(params.n), params.gst);
  }
  SETLIB_ASSERT(false);
  return nullptr;
}

}  // namespace setlib::sched
