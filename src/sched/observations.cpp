#include "src/sched/observations.h"

#include "src/util/assert.h"

namespace setlib::sched {

ObservationFeed::ObservationFeed(int n)
    : n_(n),
      steps_(static_cast<std::size_t>(n), 0),
      last_(static_cast<std::size_t>(n), -1),
      progress_(static_cast<std::size_t>(n), -1) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
}

std::int64_t ObservationFeed::steps_of(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return steps_[static_cast<std::size_t>(p)];
}

std::int64_t ObservationFeed::last_step_of(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return last_[static_cast<std::size_t>(p)];
}

std::int64_t ObservationFeed::silence_of(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  const std::int64_t last = last_[static_cast<std::size_t>(p)];
  return last < 0 ? total_ : total_ - 1 - last;
}

std::int64_t ObservationFeed::window_age(ProcSet s) const {
  std::int64_t age = total_;
  (s & ProcSet::universe(n_)).for_each([&](Pid p) {
    const std::int64_t silent = silence_of(p);
    if (silent < age) age = silent;
  });
  return age;
}

std::int64_t ObservationFeed::max_silence() const {
  std::int64_t worst = 0;
  for (Pid p = 0; p < n_; ++p) {
    const std::int64_t silent = silence_of(p);
    if (silent > worst) worst = silent;
  }
  return worst;
}

bool ObservationFeed::decided(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return decided_.contains(p);
}

std::int64_t ObservationFeed::progress_of(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  const std::int64_t published = progress_[static_cast<std::size_t>(p)];
  return published >= 0 ? published : steps_of(p);
}

bool ObservationFeed::has_progress(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return progress_[static_cast<std::size_t>(p)] >= 0;
}

void ObservationFeed::record_step(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  last_[static_cast<std::size_t>(p)] = total_;
  ++steps_[static_cast<std::size_t>(p)];
  ++total_;
}

void ObservationFeed::record_crash(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  crashed_ = crashed_.with(p);
}

void ObservationFeed::publish_progress(Pid p, std::int64_t progress) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(progress >= 0);
  progress_[static_cast<std::size_t>(p)] = progress;
}

void ObservationFeed::publish_decided(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  decided_ = decided_.with(p);
}

void ObservationFeed::publish_constraint_state(std::int64_t substitutions,
                                               std::int64_t drops) {
  SETLIB_EXPECTS(substitutions >= 0 && drops >= 0);
  subs_ = substitutions;
  drops_ = drops;
}

}  // namespace setlib::sched
