#include "src/sched/analyzer.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "src/util/assert.h"

namespace setlib::sched {

namespace {

// Shared window-walk state: P-bits delimit windows, Q-bits count inside
// them. A step whose pid is in both P and Q is a window boundary (the
// P-reset wins, matching the reference scan), which falls out of the
// mask arithmetic: boundary positions are excluded from every counted
// span.
struct WindowScan {
  std::int64_t current = 0;  // Q-steps since the last P-step
  std::int64_t max_q = 0;    // largest P-free-window Q-count seen

  // Consume one packed word (pw: P-bits, qw: Q-bits).
  void word(std::uint64_t pw, std::uint64_t qw) noexcept {
    if (pw == 0) {
      current += std::popcount(qw);
      if (current > max_q) max_q = current;
      return;
    }
    int prev = 0;
    do {
      const int b = std::countr_zero(pw);
      current += std::popcount(qw & word_range_mask(prev, b));
      if (current > max_q) max_q = current;
      current = 0;
      prev = b + 1;
      pw &= pw - 1;
    } while (pw != 0);
    current = std::popcount(qw & ~low_word_mask(prev));
    if (current > max_q) max_q = current;
  }
};

// Packs steps [from, to) of `steps` into (P, Q) words on the fly and
// feeds them to the window walk, continuing whatever state `scan`
// carries. Branch-free packing: each step contributes one mask-test
// bit per side.
void scan_step_range(const std::vector<Pid>& steps, std::uint64_t pmask,
                     std::uint64_t qmask, std::int64_t from,
                     std::int64_t to, WindowScan& scan) {
  std::int64_t idx = from;
  while (idx < to) {
    const std::int64_t block_end = std::min(to, idx + kBitsPerWord);
    std::uint64_t pw = 0;
    std::uint64_t qw = 0;
    for (std::int64_t t = idx; t < block_end; ++t) {
      const int pid = steps[static_cast<std::size_t>(t)];
      const std::uint64_t bit = std::uint64_t{1} << (t - idx);
      pw |= ((pmask >> pid) & 1u) * bit;
      qw |= ((qmask >> pid) & 1u) * bit;
    }
    scan.word(pw, qw);
    idx = block_end;
  }
}

}  // namespace

std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q,
                                  std::int64_t from, std::int64_t to) {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= s.size());
  WindowScan scan;
  scan_step_range(s.steps(), p.mask(), q.mask(), from, to, scan);
  return scan.max_q + 1;
}

std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q) {
  return min_timeliness_bound(s, p, q, 0, s.size());
}

std::int64_t min_timeliness_bound_reference(const Schedule& s, ProcSet p,
                                            ProcSet q, std::int64_t from,
                                            std::int64_t to) {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= s.size());
  // Scan windows delimited by P-steps; the largest Q-count in a P-free
  // window w satisfies: every window with count(w)+1 Q-steps must span a
  // P-step.
  std::int64_t max_q_in_window = 0;
  std::int64_t current = 0;
  for (std::int64_t idx = from; idx < to; ++idx) {
    const Pid step = s[idx];
    if (p.contains(step)) {
      current = 0;
    } else if (q.contains(step)) {
      ++current;
      max_q_in_window = std::max(max_q_in_window, current);
    }
  }
  return max_q_in_window + 1;
}

std::int64_t min_timeliness_bound_reference(const Schedule& s, ProcSet p,
                                            ProcSet q) {
  return min_timeliness_bound_reference(s, p, q, 0, s.size());
}

bool is_timely(const Schedule& s, ProcSet p, ProcSet q, std::int64_t bound) {
  SETLIB_EXPECTS(bound >= 1);
  return min_timeliness_bound(s, p, q) <= bound;
}

std::vector<std::int64_t> bound_series(const Schedule& s, ProcSet p, ProcSet q,
                                       const std::vector<std::int64_t>& cuts) {
  std::vector<std::int64_t> out;
  out.reserve(cuts.size());
  const bool sorted = std::is_sorted(cuts.begin(), cuts.end());
  if (sorted) {
    BoundTracker tracker(p, q);
    for (std::int64_t cut : cuts) {
      SETLIB_EXPECTS(cut >= 0 && cut <= s.size());
      tracker.extend(s, cut);
      out.push_back(tracker.bound());
    }
  } else {
    for (std::int64_t cut : cuts) {
      SETLIB_EXPECTS(cut >= 0 && cut <= s.size());
      out.push_back(min_timeliness_bound(s, p, q, 0, cut));
    }
  }
  return out;
}

BoundTracker::BoundTracker(ProcSet p, ProcSet q) noexcept : p_(p), q_(q) {}

void BoundTracker::step(Pid pid) noexcept {
  if (p_.mask() >> pid & 1u) {
    current_ = 0;
  } else if (q_.mask() >> pid & 1u) {
    ++current_;
    if (current_ > max_q_) max_q_ = current_;
  }
  ++position_;
}

void BoundTracker::extend(const Schedule& s, std::int64_t upto) {
  SETLIB_EXPECTS(position_ <= upto && upto <= s.size());
  WindowScan scan{current_, max_q_};
  scan_step_range(s.steps(), p_.mask(), q_.mask(), position_, upto, scan);
  current_ = scan.current;
  max_q_ = scan.max_q;
  position_ = upto;
}

PackedSchedule::PackedSchedule(const Schedule& s)
    : n_(s.n()),
      len_(s.size()),
      words_((len_ + kBitsPerWord - 1) / kBitsPerWord) {
  bits_.assign(static_cast<std::size_t>(n_) *
                   static_cast<std::size_t>(words_),
               0);
  const std::vector<Pid>& steps = s.steps();
  for (std::int64_t t = 0; t < len_; ++t) {
    const Pid p = steps[static_cast<std::size_t>(t)];
    bits_[static_cast<std::size_t>(p) * static_cast<std::size_t>(words_) +
          static_cast<std::size_t>(t / kBitsPerWord)] |=
        std::uint64_t{1} << (t % kBitsPerWord);
  }
}

const std::uint64_t* PackedSchedule::column(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return bits_.data() +
         static_cast<std::size_t>(p) * static_cast<std::size_t>(words_);
}

void PackedSchedule::or_columns(ProcSet s,
                                std::vector<std::uint64_t>& out) const {
  out.assign(static_cast<std::size_t>(words_), 0);
  (s & ProcSet::universe(n_)).for_each([&](Pid p) {
    const std::uint64_t* col = column(p);
    for (std::int64_t w = 0; w < words_; ++w) {
      out[static_cast<std::size_t>(w)] |= col[static_cast<std::size_t>(w)];
    }
  });
}

std::int64_t PackedSchedule::bound_for(ProcSet p, ProcSet q) const {
  const ProcSet pu = p & ProcSet::universe(n_);
  const ProcSet qu = q & ProcSet::universe(n_);
  WindowScan scan;
  for (std::int64_t w = 0; w < words_; ++w) {
    std::uint64_t pw = 0;
    std::uint64_t qw = 0;
    pu.for_each(
        [&](Pid x) { pw |= column(x)[static_cast<std::size_t>(w)]; });
    qu.for_each(
        [&](Pid x) { qw |= column(x)[static_cast<std::size_t>(w)]; });
    scan.word(pw, qw);
  }
  return scan.max_q + 1;
}

RankedPairScan::RankedPairScan(const PackedSchedule& packed, int i, int j)
    : packed_(&packed),
      i_(i),
      j_(j),
      p_ranker_(packed.n(), i),
      q_ranker_(packed.n(), j) {
  SETLIB_EXPECTS(1 <= i && i <= packed.n());
  SETLIB_EXPECTS(1 <= j && j <= packed.n());
}

std::int64_t RankedPairScan::p_count() const noexcept {
  return p_ranker_.count();
}

std::int64_t RankedPairScan::q_count() const noexcept {
  return q_ranker_.count();
}

RankedPairScan::ScanOutcome RankedPairScan::scan(std::int64_t p_begin,
                                                 std::int64_t p_end,
                                                 std::int64_t bound_cap,
                                                 Mode mode) const {
  SETLIB_EXPECTS(0 <= p_begin && p_begin <= p_end &&
                 p_end <= p_ranker_.count());
  const std::int64_t words = packed_->words();
  ScanOutcome out;
  // Q-counts at or above prune_q cannot improve the outcome, so an
  // observer scan aborts the moment one P-free window reaches it. For
  // the exhaustive best-pair mode the cap tightens as the best bound
  // drops.
  std::int64_t prune_q = mode == Mode::kBest
                             ? std::numeric_limits<std::int64_t>::max()
                             : bound_cap;
  std::vector<std::uint64_t> pwords;
  for (std::int64_t pr = p_begin; pr < p_end; ++pr) {
    const ProcSet p = p_ranker_.unrank(pr);
    packed_->or_columns(p, pwords);  // shared by every observer below
    const std::int64_t q_total = q_ranker_.count();
    for (std::int64_t qr = 0; qr < q_total; ++qr) {
      const ProcSet q = q_ranker_.unrank(qr);
      ++out.pairs;
      // Fused Q-column OR + window walk, aborted at the prune cap.
      WindowScan window;
      bool pruned = false;
      for (std::int64_t w = 0; w < words && !pruned; ++w) {
        std::uint64_t qw = 0;
        q.for_each([&](Pid x) {
          qw |= packed_->column(x)[static_cast<std::size_t>(w)];
        });
        window.word(pwords[static_cast<std::size_t>(w)], qw);
        pruned = window.max_q >= prune_q;
      }
      if (pruned) continue;
      const std::int64_t bound = window.max_q + 1;
      switch (mode) {
        case Mode::kBest:
          if (!out.best || bound < out.best->bound) {
            out.best = TimelyPair{p, q, bound};
            // Only strictly smaller bounds matter from here on.
            prune_q = bound - 1;
          }
          break;
        case Mode::kWitness:
          out.best = TimelyPair{p, q, bound};
          out.members = 1;
          return out;
        case Mode::kCount:
          ++out.members;
          if (!out.best) out.best = TimelyPair{p, q, bound};
          break;
      }
    }
  }
  return out;
}

TimelyPair RankedPairScan::best_pair(std::int64_t p_begin,
                                     std::int64_t p_end) const {
  const ScanOutcome out = scan(p_begin, p_end, 0, Mode::kBest);
  if (out.best) return *out.best;
  return TimelyPair{ProcSet(), ProcSet(),
                    std::numeric_limits<std::int64_t>::max()};
}

std::optional<TimelyPair> RankedPairScan::find_witness(
    std::int64_t bound_cap, std::int64_t p_begin, std::int64_t p_end) const {
  SETLIB_EXPECTS(bound_cap >= 1);
  // A pair is a witness iff its worst window stays below the cap:
  // max_q <= cap - 1, i.e. the scan finishes without reaching prune_q
  // = cap.
  return scan(p_begin, p_end, bound_cap, Mode::kWitness).best;
}

RankedPairScan::MemberCount RankedPairScan::count_members(
    std::int64_t bound_cap, std::int64_t p_begin, std::int64_t p_end) const {
  SETLIB_EXPECTS(bound_cap >= 1);
  const ScanOutcome out = scan(p_begin, p_end, bound_cap, Mode::kCount);
  return MemberCount{out.pairs, out.members, out.best};
}

SystemMembership::SystemMembership(const Schedule& s)
    : n_(s.n()), len_(s.size()), packed_(s) {}

std::int64_t SystemMembership::bound_for(ProcSet p, ProcSet q) const {
  return packed_.bound_for(p, q);
}

TimelyPair SystemMembership::best_pair(int i, int j) const {
  SETLIB_EXPECTS(1 <= i && i <= n_);
  SETLIB_EXPECTS(1 <= j && j <= n_);
  return RankedPairScan(packed_, i, j).best_pair();
}

std::optional<TimelyPair> SystemMembership::find_witness(
    int i, int j, std::int64_t bound_cap) const {
  SETLIB_EXPECTS(1 <= i && i <= n_);
  SETLIB_EXPECTS(1 <= j && j <= n_);
  SETLIB_EXPECTS(bound_cap >= 1);
  return RankedPairScan(packed_, i, j).find_witness(bound_cap);
}

}  // namespace setlib::sched
