#include "src/sched/analyzer.h"

#include <algorithm>
#include <limits>

#include "src/util/assert.h"

namespace setlib::sched {

std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q,
                                  std::int64_t from, std::int64_t to) {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= s.size());
  // Scan windows delimited by P-steps; the largest Q-count in a P-free
  // window w satisfies: every window with count(w)+1 Q-steps must span a
  // P-step.
  std::int64_t max_q_in_window = 0;
  std::int64_t current = 0;
  for (std::int64_t idx = from; idx < to; ++idx) {
    const Pid step = s[idx];
    if (p.contains(step)) {
      current = 0;
    } else if (q.contains(step)) {
      ++current;
      max_q_in_window = std::max(max_q_in_window, current);
    }
  }
  return max_q_in_window + 1;
}

std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q) {
  return min_timeliness_bound(s, p, q, 0, s.size());
}

bool is_timely(const Schedule& s, ProcSet p, ProcSet q, std::int64_t bound) {
  SETLIB_EXPECTS(bound >= 1);
  return min_timeliness_bound(s, p, q) <= bound;
}

std::vector<std::int64_t> bound_series(const Schedule& s, ProcSet p, ProcSet q,
                                       const std::vector<std::int64_t>& cuts) {
  std::vector<std::int64_t> out;
  out.reserve(cuts.size());
  for (std::int64_t cut : cuts) {
    SETLIB_EXPECTS(cut >= 0 && cut <= s.size());
    out.push_back(min_timeliness_bound(s, p, q, 0, cut));
  }
  return out;
}

SystemMembership::SystemMembership(const Schedule& s)
    : n_(s.n()), len_(s.size()), steps_(s.steps()) {
  prefix_.assign(static_cast<std::size_t>(n_),
                 std::vector<std::int64_t>(static_cast<std::size_t>(len_) + 1,
                                           0));
  for (std::int64_t t = 0; t < len_; ++t) {
    for (Pid p = 0; p < n_; ++p) {
      prefix_[static_cast<std::size_t>(p)][static_cast<std::size_t>(t) + 1] =
          prefix_[static_cast<std::size_t>(p)][static_cast<std::size_t>(t)] +
          (steps_[static_cast<std::size_t>(t)] == p ? 1 : 0);
    }
  }
}

std::int64_t SystemMembership::bound_for(ProcSet p, ProcSet q) const {
  std::int64_t max_q = 0;
  std::int64_t window_start = 0;
  auto q_count = [&](std::int64_t a, std::int64_t b) {
    std::int64_t c = 0;
    for (Pid x : q.to_vector()) {
      c += prefix_[static_cast<std::size_t>(x)][static_cast<std::size_t>(b)] -
           prefix_[static_cast<std::size_t>(x)][static_cast<std::size_t>(a)];
    }
    return c;
  };
  for (std::int64_t t = 0; t < len_; ++t) {
    if (p.contains(steps_[static_cast<std::size_t>(t)])) {
      max_q = std::max(max_q, q_count(window_start, t));
      window_start = t + 1;
    }
  }
  max_q = std::max(max_q, q_count(window_start, len_));
  return max_q + 1;
}

TimelyPair SystemMembership::best_pair(int i, int j) const {
  SETLIB_EXPECTS(1 <= i && i <= n_);
  SETLIB_EXPECTS(1 <= j && j <= n_);
  TimelyPair best{ProcSet(), ProcSet(),
                  std::numeric_limits<std::int64_t>::max()};
  for (ProcSet p : k_subsets(n_, i)) {
    for (ProcSet q : k_subsets(n_, j)) {
      const std::int64_t b = bound_for(p, q);
      if (b < best.bound) best = TimelyPair{p, q, b};
    }
  }
  return best;
}

std::optional<TimelyPair> SystemMembership::find_witness(
    int i, int j, std::int64_t bound_cap) const {
  SETLIB_EXPECTS(1 <= i && i <= n_);
  SETLIB_EXPECTS(1 <= j && j <= n_);
  SETLIB_EXPECTS(bound_cap >= 1);
  for (ProcSet p : k_subsets(n_, i)) {
    for (ProcSet q : k_subsets(n_, j)) {
      const std::int64_t b = bound_for(p, q);
      if (b <= bound_cap) return TimelyPair{p, q, b};
    }
  }
  return std::nullopt;
}

}  // namespace setlib::sched
