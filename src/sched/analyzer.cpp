#include "src/sched/analyzer.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <optional>

#include "src/sched/simd.h"
#include "src/util/assert.h"

namespace setlib::sched {

namespace {

// The per-word window walk (P-bits delimit windows, Q-bits count
// inside them) lives in src/sched/simd.h as walk_word/WalkState so the
// vector kernels and this on-the-fly packer share one definition.

// Packs steps [from, to) of `steps` into (P, Q) words on the fly and
// feeds them to the window walk, continuing whatever state `scan`
// carries. Branch-free packing: each step contributes one mask-test
// bit per side.
void scan_step_range(const std::vector<Pid>& steps, std::uint64_t pmask,
                     std::uint64_t qmask, std::int64_t from,
                     std::int64_t to, simd::WalkState& scan) {
  std::int64_t idx = from;
  while (idx < to) {
    const std::int64_t block_end = std::min(to, idx + kBitsPerWord);
    std::uint64_t pw = 0;
    std::uint64_t qw = 0;
    for (std::int64_t t = idx; t < block_end; ++t) {
      const int pid = steps[static_cast<std::size_t>(t)];
      const std::uint64_t bit = std::uint64_t{1} << (t - idx);
      pw |= ((pmask >> pid) & 1u) * bit;
      qw |= ((qmask >> pid) & 1u) * bit;
    }
    simd::walk_word(pw, qw, scan);
    idx = block_end;
  }
}

}  // namespace

std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q,
                                  std::int64_t from, std::int64_t to) {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= s.size());
  simd::WalkState scan;
  scan_step_range(s.steps(), p.mask(), q.mask(), from, to, scan);
  return scan.max_q + 1;
}

std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q) {
  return min_timeliness_bound(s, p, q, 0, s.size());
}

std::int64_t min_timeliness_bound_reference(const Schedule& s, ProcSet p,
                                            ProcSet q, std::int64_t from,
                                            std::int64_t to) {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= s.size());
  // Scan windows delimited by P-steps; the largest Q-count in a P-free
  // window w satisfies: every window with count(w)+1 Q-steps must span a
  // P-step.
  std::int64_t max_q_in_window = 0;
  std::int64_t current = 0;
  for (std::int64_t idx = from; idx < to; ++idx) {
    const Pid step = s[idx];
    if (p.contains(step)) {
      current = 0;
    } else if (q.contains(step)) {
      ++current;
      max_q_in_window = std::max(max_q_in_window, current);
    }
  }
  return max_q_in_window + 1;
}

std::int64_t min_timeliness_bound_reference(const Schedule& s, ProcSet p,
                                            ProcSet q) {
  return min_timeliness_bound_reference(s, p, q, 0, s.size());
}

bool is_timely(const Schedule& s, ProcSet p, ProcSet q, std::int64_t bound) {
  SETLIB_EXPECTS(bound >= 1);
  return min_timeliness_bound(s, p, q) <= bound;
}

std::vector<std::int64_t> bound_series(const Schedule& s, ProcSet p, ProcSet q,
                                       const std::vector<std::int64_t>& cuts) {
  for (std::int64_t cut : cuts) {
    SETLIB_EXPECTS(cut >= 0 && cut <= s.size());
  }
  std::vector<std::int64_t> out(cuts.size());
  if (std::is_sorted(cuts.begin(), cuts.end())) {
    BoundTracker tracker(p, q);
    for (std::size_t c = 0; c < cuts.size(); ++c) {
      tracker.extend(s, cuts[c]);
      out[c] = tracker.bound();
    }
    return out;
  }
  // Out-of-order cuts: sort an index map once and serve every cut from
  // the same single incremental pass (a per-cut full rescan would be
  // O(len) each, O(len * cuts) total), scattering each bound back to
  // its request slot.
  std::vector<std::size_t> order(cuts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&cuts](std::size_t a, std::size_t b) {
                     return cuts[a] < cuts[b];
                   });
  BoundTracker tracker(p, q);
  for (const std::size_t c : order) {
    tracker.extend(s, cuts[c]);
    out[c] = tracker.bound();
  }
  return out;
}

BoundTracker::BoundTracker(ProcSet p, ProcSet q) noexcept : p_(p), q_(q) {}

void BoundTracker::step(Pid pid) noexcept {
  if (p_.mask() >> pid & 1u) {
    current_ = 0;
  } else if (q_.mask() >> pid & 1u) {
    ++current_;
    if (current_ > max_q_) max_q_ = current_;
  }
  ++position_;
}

void BoundTracker::extend(const Schedule& s, std::int64_t upto) {
  SETLIB_EXPECTS(position_ <= upto && upto <= s.size());
  simd::WalkState scan{current_, max_q_};
  scan_step_range(s.steps(), p_.mask(), q_.mask(), position_, upto, scan);
  current_ = scan.current;
  max_q_ = scan.max_q;
  position_ = upto;
}

PackedSchedule::PackedSchedule(const Schedule& s) { repack(s); }

PackedSchedule::PackedSchedule(const Schedule& s,
                               util::ArenaAllocator& arena)
    : arena_(&arena) {
  repack(s);
}

void PackedSchedule::repack(const Schedule& s) {
  n_ = s.n();
  len_ = s.size();
  words_ = (len_ + kBitsPerWord - 1) / kBitsPerWord;
  const std::size_t total =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(words_);
  if (arena_ != nullptr) {
    data_ = arena_->alloc_array<std::uint64_t>(
        static_cast<std::int64_t>(total));
    std::fill_n(data_, total, std::uint64_t{0});
  } else {
    owned_.assign(total, 0);  // grow-only: capacity is recycled
    data_ = owned_.data();
  }
  const std::vector<Pid>& steps = s.steps();
  for (std::int64_t t = 0; t < len_; ++t) {
    const Pid p = steps[static_cast<std::size_t>(t)];
    data_[static_cast<std::size_t>(p) * static_cast<std::size_t>(words_) +
          static_cast<std::size_t>(t / kBitsPerWord)] |=
        std::uint64_t{1} << (t % kBitsPerWord);
  }
}

const std::uint64_t* PackedSchedule::column(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return data_ +
         static_cast<std::size_t>(p) * static_cast<std::size_t>(words_);
}

void PackedSchedule::or_columns(ProcSet s,
                                std::vector<std::uint64_t>& out) const {
  out.assign(static_cast<std::size_t>(words_), 0);
  or_columns(s, out.data());
}

void PackedSchedule::or_columns(ProcSet s, std::uint64_t* out) const {
  std::fill_n(out, static_cast<std::size_t>(words_), std::uint64_t{0});
  const simd::Kernels& kernels = simd::active_kernels();
  (s & ProcSet::universe(n_)).for_each([&](Pid p) {
    kernels.or_into(out, column(p), words_);
  });
}

std::int64_t PackedSchedule::bound_for(ProcSet p, ProcSet q) const {
  const ProcSet pu = p & ProcSet::universe(n_);
  const ProcSet qu = q & ProcSet::universe(n_);
  simd::WalkState scan;
  for (std::int64_t w = 0; w < words_; ++w) {
    std::uint64_t pw = 0;
    std::uint64_t qw = 0;
    pu.for_each(
        [&](Pid x) { pw |= column(x)[static_cast<std::size_t>(w)]; });
    qu.for_each(
        [&](Pid x) { qw |= column(x)[static_cast<std::size_t>(w)]; });
    simd::walk_word(pw, qw, scan);
  }
  return scan.max_q + 1;
}

RankedPairScan::RankedPairScan(const PackedSchedule& packed, int i, int j,
                               util::ArenaAllocator* arena)
    : packed_(&packed),
      i_(i),
      j_(j),
      arena_(arena),
      p_ranker_(packed.n(), i),
      q_ranker_(packed.n(), j) {
  SETLIB_EXPECTS(1 <= i && i <= packed.n());
  SETLIB_EXPECTS(1 <= j && j <= packed.n());
}

std::int64_t RankedPairScan::p_count() const noexcept {
  return p_ranker_.count();
}

std::int64_t RankedPairScan::q_count() const noexcept {
  return q_ranker_.count();
}

RankedPairScan::ScanOutcome RankedPairScan::scan(std::int64_t p_begin,
                                                 std::int64_t p_end,
                                                 std::int64_t bound_cap,
                                                 Mode mode) const {
  SETLIB_EXPECTS(0 <= p_begin && p_begin <= p_end &&
                 p_end <= p_ranker_.count());
  const std::int64_t words = packed_->words();
  ScanOutcome out;
  // Q-counts at or above prune_q cannot improve the outcome, so an
  // observer scan aborts the moment one P-free window reaches it. For
  // the exhaustive best-pair mode the cap tightens as the best bound
  // drops.
  std::int64_t prune_q = mode == Mode::kBest
                             ? std::numeric_limits<std::int64_t>::max()
                             : bound_cap;
  const simd::Kernels& kernels = simd::active_kernels();
  // Scratch: the shared per-P OR buffer (words) plus one Q chunk. The
  // Q side is accumulated chunk-by-chunk so the walk can still abort
  // early on pruned pairs without paying a full-length Q OR first.
  constexpr std::int64_t kQChunk = 64;
  std::optional<util::FrameScope> frame;
  std::vector<std::uint64_t> fallback;
  std::uint64_t* pwords = nullptr;
  if (arena_ != nullptr) {
    frame.emplace(*arena_);
    pwords = arena_->alloc_array<std::uint64_t>(words + kQChunk);
  } else {
    fallback.resize(static_cast<std::size_t>(words + kQChunk));
    pwords = fallback.data();
  }
  std::uint64_t* const qbuf = pwords + words;
  for (std::int64_t pr = p_begin; pr < p_end; ++pr) {
    const ProcSet p = p_ranker_.unrank(pr);
    packed_->or_columns(p, pwords);  // shared by every observer below
    const std::int64_t q_total = q_ranker_.count();
    for (std::int64_t qr = 0; qr < q_total; ++qr) {
      const ProcSet q = q_ranker_.unrank(qr);
      ++out.pairs;
      // Chunked Q-column OR + window walk, aborted at the prune cap.
      simd::WalkState window;
      bool pruned = false;
      for (std::int64_t w = 0; w < words && !pruned; w += kQChunk) {
        const std::int64_t c = std::min<std::int64_t>(kQChunk, words - w);
        std::fill_n(qbuf, static_cast<std::size_t>(c), std::uint64_t{0});
        q.for_each([&](Pid x) {
          kernels.or_into(qbuf, packed_->column(x) + w, c);
        });
        pruned = kernels.window_walk(pwords + w, qbuf, c, prune_q, &window);
      }
      if (pruned) continue;
      const std::int64_t bound = window.max_q + 1;
      switch (mode) {
        case Mode::kBest:
          if (!out.best || bound < out.best->bound) {
            out.best = TimelyPair{p, q, bound};
            // Only strictly smaller bounds matter from here on.
            prune_q = bound - 1;
          }
          break;
        case Mode::kWitness:
          out.best = TimelyPair{p, q, bound};
          out.members = 1;
          return out;
        case Mode::kCount:
          ++out.members;
          if (!out.best) out.best = TimelyPair{p, q, bound};
          break;
      }
    }
  }
  return out;
}

TimelyPair RankedPairScan::best_pair(std::int64_t p_begin,
                                     std::int64_t p_end) const {
  const ScanOutcome out = scan(p_begin, p_end, 0, Mode::kBest);
  if (out.best) return *out.best;
  return TimelyPair{ProcSet(), ProcSet(),
                    std::numeric_limits<std::int64_t>::max()};
}

std::optional<TimelyPair> RankedPairScan::find_witness(
    std::int64_t bound_cap, std::int64_t p_begin, std::int64_t p_end) const {
  SETLIB_EXPECTS(bound_cap >= 1);
  // A pair is a witness iff its worst window stays below the cap:
  // max_q <= cap - 1, i.e. the scan finishes without reaching prune_q
  // = cap.
  return scan(p_begin, p_end, bound_cap, Mode::kWitness).best;
}

RankedPairScan::MemberCount RankedPairScan::count_members(
    std::int64_t bound_cap, std::int64_t p_begin, std::int64_t p_end) const {
  SETLIB_EXPECTS(bound_cap >= 1);
  const ScanOutcome out = scan(p_begin, p_end, bound_cap, Mode::kCount);
  return MemberCount{out.pairs, out.members, out.best};
}

SystemMembership::SystemMembership(const Schedule& s)
    : n_(s.n()), len_(s.size()), packed_(s) {}

std::int64_t SystemMembership::bound_for(ProcSet p, ProcSet q) const {
  return packed_.bound_for(p, q);
}

TimelyPair SystemMembership::best_pair(int i, int j) const {
  SETLIB_EXPECTS(1 <= i && i <= n_);
  SETLIB_EXPECTS(1 <= j && j <= n_);
  return RankedPairScan(packed_, i, j).best_pair();
}

std::optional<TimelyPair> SystemMembership::find_witness(
    int i, int j, std::int64_t bound_cap) const {
  SETLIB_EXPECTS(1 <= i && i <= n_);
  SETLIB_EXPECTS(1 <= j && j <= n_);
  SETLIB_EXPECTS(bound_cap >= 1);
  return RankedPairScan(packed_, i, j).find_witness(bound_cap);
}

}  // namespace setlib::sched
