#include "src/sched/schedule.h"

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace setlib::sched {

Schedule::Schedule(int n) : n_(n) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
}

Schedule::Schedule(int n, std::vector<Pid> steps)
    : n_(n), steps_(std::move(steps)) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  for (Pid p : steps_) SETLIB_EXPECTS(p >= 0 && p < n_);
}

Pid Schedule::operator[](std::int64_t i) const {
  SETLIB_EXPECTS(i >= 0 && i < size());
  return steps_[static_cast<std::size_t>(i)];
}

void Schedule::append(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  steps_.push_back(p);
}

std::int64_t Schedule::count(Pid p, std::int64_t from, std::int64_t to) const {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= size());
  std::int64_t c = 0;
  for (std::int64_t i = from; i < to; ++i) {
    if (steps_[static_cast<std::size_t>(i)] == p) ++c;
  }
  return c;
}

std::int64_t Schedule::count_set(ProcSet s, std::int64_t from,
                                 std::int64_t to) const {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= size());
  std::int64_t c = 0;
  for (std::int64_t i = from; i < to; ++i) {
    if (s.contains(steps_[static_cast<std::size_t>(i)])) ++c;
  }
  return c;
}

ProcSet Schedule::appearing_from(std::int64_t from) const {
  SETLIB_EXPECTS(from >= 0 && from <= size());
  ProcSet s;
  for (std::int64_t i = from; i < size(); ++i) {
    s = s.with(steps_[static_cast<std::size_t>(i)]);
  }
  return s;
}

Schedule Schedule::concat(const Schedule& other) const {
  SETLIB_EXPECTS(other.n_ == n_);
  std::vector<Pid> steps = steps_;
  steps.insert(steps.end(), other.steps_.begin(), other.steps_.end());
  return Schedule(n_, std::move(steps));
}

Schedule Schedule::slice(std::int64_t from, std::int64_t to) const {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= size());
  return Schedule(n_,
                  std::vector<Pid>(steps_.begin() + from, steps_.begin() + to));
}

std::uint64_t schedule_hash(const Schedule& s) noexcept {
  // Chain the stream through splitmix64's mixer, feeding each mixed
  // output back into the state: the next fold is added to a value that
  // already depends nonlinearly on everything before it, so step ORDER
  // (not just the multiset of pids) shapes the hash. Folding in n and
  // the length first keeps e.g. (n=2, "010") distinct from (n=3, "010").
  std::uint64_t state = 0x5e741a11u;  // arbitrary fixed chain seed
  state += static_cast<std::uint64_t>(s.n());
  state = splitmix64(state);
  state += static_cast<std::uint64_t>(s.size());
  state = splitmix64(state);
  for (Pid p : s.steps()) {
    state += static_cast<std::uint64_t>(p) + 1;
    state = splitmix64(state);
  }
  return state;
}

std::string hash_hex(std::uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace setlib::sched
