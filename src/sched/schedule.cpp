#include "src/sched/schedule.h"

#include "src/util/assert.h"

namespace setlib::sched {

Schedule::Schedule(int n) : n_(n) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
}

Schedule::Schedule(int n, std::vector<Pid> steps)
    : n_(n), steps_(std::move(steps)) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  for (Pid p : steps_) SETLIB_EXPECTS(p >= 0 && p < n_);
}

Pid Schedule::operator[](std::int64_t i) const {
  SETLIB_EXPECTS(i >= 0 && i < size());
  return steps_[static_cast<std::size_t>(i)];
}

void Schedule::append(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  steps_.push_back(p);
}

std::int64_t Schedule::count(Pid p, std::int64_t from, std::int64_t to) const {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= size());
  std::int64_t c = 0;
  for (std::int64_t i = from; i < to; ++i) {
    if (steps_[static_cast<std::size_t>(i)] == p) ++c;
  }
  return c;
}

std::int64_t Schedule::count_set(ProcSet s, std::int64_t from,
                                 std::int64_t to) const {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= size());
  std::int64_t c = 0;
  for (std::int64_t i = from; i < to; ++i) {
    if (s.contains(steps_[static_cast<std::size_t>(i)])) ++c;
  }
  return c;
}

ProcSet Schedule::appearing_from(std::int64_t from) const {
  SETLIB_EXPECTS(from >= 0 && from <= size());
  ProcSet s;
  for (std::int64_t i = from; i < size(); ++i) {
    s = s.with(steps_[static_cast<std::size_t>(i)]);
  }
  return s;
}

Schedule Schedule::concat(const Schedule& other) const {
  SETLIB_EXPECTS(other.n_ == n_);
  std::vector<Pid> steps = steps_;
  steps.insert(steps.end(), other.steps_.begin(), other.steps_.end());
  return Schedule(n_, std::move(steps));
}

Schedule Schedule::slice(std::int64_t from, std::int64_t to) const {
  SETLIB_EXPECTS(0 <= from && from <= to && to <= size());
  return Schedule(n_,
                  std::vector<Pid>(steps_.begin() + from, steps_.begin() + to));
}

}  // namespace setlib::sched
