// Set-timeliness enforcement (the constructive side of S^i_{j,n}).
//
// TimelinessConstraint says: set P must be timely with respect to set Q
// with bound b, i.e. no window of the emitted schedule may contain b
// steps of Q without a step of P (Definition 1). EnforcedGenerator wraps
// a base generator and substitutes a step of P (rotating through P's
// alive members) whenever emitting the base's choice would complete a
// P-free window with b steps of Q.
//
// With several overlapping constraints the enforcer is best-effort
// (constraints are applied in order, and a substitution for one may feed
// another); experiments therefore always cross-check the *executed*
// schedule with the analyzer, which is the ground truth.
#ifndef SETLIB_SCHED_ENFORCER_H
#define SETLIB_SCHED_ENFORCER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sched/generator.h"
#include "src/sched/generators.h"
#include "src/util/procset.h"

namespace setlib::sched {

struct TimelinessConstraint {
  ProcSet timely_set;   // P
  ProcSet observed_set; // Q
  std::int64_t bound;   // b >= 1

  TimelinessConstraint(ProcSet p, ProcSet q, std::int64_t b)
      : timely_set(p), observed_set(q), bound(b) {}
};

class EnforcedGenerator final : public ScheduleGenerator {
 public:
  /// `plan` marks which processes crash when; a constraint whose timely
  /// set has fully crashed is dropped from that point on (and counted in
  /// dropped_constraints()).
  EnforcedGenerator(std::unique_ptr<ScheduleGenerator> base,
                    std::vector<TimelinessConstraint> constraints,
                    CrashPlan plan);

  /// Convenience factory: single constraint, no crashes.
  static std::unique_ptr<EnforcedGenerator> single(
      std::unique_ptr<ScheduleGenerator> base,
      TimelinessConstraint constraint);

  int n() const override { return base_->n(); }
  Pid next() override;

  /// Number of substituted steps so far (how often the enforcer had to
  /// override the base generator).
  std::int64_t substitutions() const noexcept { return substitutions_; }

  /// How many times a constraint could not be maintained because its
  /// timely set had fully crashed.
  std::int64_t dropped_constraints() const noexcept { return dropped_; }

  const CrashPlan& plan() const noexcept { return plan_; }

 private:
  struct State {
    TimelinessConstraint c;
    std::int64_t q_steps_since_p = 0;
    int rotate = 0;  // round-robin cursor into P's members
  };

  Pid pick_substitute(State& st, ProcSet alive);

  std::unique_ptr<ScheduleGenerator> base_;
  std::vector<State> states_;
  CrashPlan plan_;
  std::int64_t emitted_ = 0;
  std::int64_t substitutions_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_ENFORCER_H
