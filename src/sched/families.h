// Randomized adversary families: a registry of seeded schedule
// generators beyond the uniform/weighted baselines.
//
// The paper's timeliness bounds are adversary-quantified — a system is
// timely only if the Definition 1 bound holds against *every* schedule
// the adversary can produce — so the experiment surface needs a
// catalogue of qualitatively different adversaries, each a
// deterministic function of (params, seed):
//
//   - uniform:     seeded fair asynchrony (UniformRandomGenerator);
//   - weighted:    seeded biased asynchrony, weights drawn per process
//                  from the seed (some processes nearly silent);
//   - bursty:      one process at a time runs solo for seeded bursts
//                  of mean `scale` steps — long P-free windows for any
//                  P that misses the bursting process;
//   - starvation:  a seeded victim is silenced for geometric stretches
//                  (mean `scale`) while the others step uniformly, then
//                  one round-robin recovery pass; the victim rotates
//                  per stretch;
//   - crash-prone: the `crash_count` tail processes are permanently
//                  silenced at seeded steps below `crash_horizon` (the
//                  model's crashes: finitely many steps), uniform
//                  asynchrony otherwise;
//   - gst:         a chaotic (bursty) prefix up to step `gst`, then
//                  round-robin — the Dwork-Lynch-Stockmeyer global
//                  stabilization shape.
//
// Determinism contract: make_family(kind, params, seed) consumes only
// its own Rng streams derived from `seed`, so the emitted schedule is
// bit-identical across processes, threads, and shards — the per-cell
// seeds of core::SweepGrid carry through unchanged.
#ifndef SETLIB_SCHED_FAMILIES_H
#define SETLIB_SCHED_FAMILIES_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/sched/generators.h"
#include "src/util/rng.h"

namespace setlib::sched {

/// Shared parameter block for the registry's factories. Every family
/// reads `n`; the rest have per-family meaning (documented above) and
/// sensible defaults so callers set only what they sweep.
struct FamilyParams {
  int n = 2;
  /// Bursty solo-run / starvation-stretch scale (mean length, >= 1).
  std::int64_t scale = 64;
  /// Crash-prone: tail processes silenced (0 <= crash_count < n).
  int crash_count = 1;
  /// Crash-prone: crash steps drawn uniformly from [0, crash_horizon).
  std::int64_t crash_horizon = 100'000;
  /// GST: steps of chaotic prefix before the round-robin era.
  std::int64_t gst = 4'096;
};

/// Long seeded solo runs: pick a process uniformly, emit it for a
/// burst drawn uniformly from [1, 2 * scale], repeat.
class BurstyGenerator final : public ScheduleGenerator {
 public:
  BurstyGenerator(int n, std::int64_t scale, std::uint64_t seed);

  int n() const override { return n_; }
  Pid next() override;

 private:
  int n_;
  std::int64_t scale_;
  Rng rng_;
  Pid current_ = 0;
  std::int64_t remaining_ = 0;
};

/// One process silenced for geometric stretches: each phase picks a
/// seeded victim, silences it for a Geometric(1/scale) stretch (the
/// others step uniformly), then runs one full round-robin recovery
/// pass so every process keeps taking infinitely many steps.
class StarvationGenerator final : public ScheduleGenerator {
 public:
  StarvationGenerator(int n, std::int64_t scale, std::uint64_t seed);

  int n() const override { return n_; }
  Pid next() override;

 private:
  std::int64_t geometric_stretch();

  int n_;
  std::int64_t scale_;
  Rng rng_;
  Pid victim_ = 0;
  std::int64_t starved_left_ = 0;
  std::int64_t recover_left_ = 0;
  Pid rr_ = 0;
};

/// The registered adversary families, in registry order.
enum class FamilyKind {
  kUniform,
  kWeighted,
  kBursty,
  kStarvation,
  kCrashProne,
  kGst,
};

struct FamilyInfo {
  FamilyKind kind;
  const char* name;         // CLI/JSON token ("crash-prone")
  const char* description;  // one-liner for tables and docs
};

/// All registered families, in a fixed order (stable across runs; the
/// frontier bench's cell space indexes into it).
const std::vector<FamilyInfo>& schedule_families();

/// Registry lookup by name; nullptr when unknown.
const FamilyInfo* find_family(std::string_view name);

/// The crash-prone family's seeded plan: the `crash_count` tail
/// processes, each silenced at a seeded step in [0, crash_horizon).
/// make_family(kCrashProne, ...) uses exactly this plan, so engines
/// that must mirror the crashes (simulator faulty sets) can rebuild it
/// from the same (params, seed).
CrashPlan crash_prone_plan(const FamilyParams& params, std::uint64_t seed);

/// Instantiates a family generator. Deterministic: the same
/// (kind, params, seed) always produces the same schedule.
std::unique_ptr<ScheduleGenerator> make_family(FamilyKind kind,
                                               const FamilyParams& params,
                                               std::uint64_t seed);

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_FAMILIES_H
