// Execution-reactive adversaries: generators that watch the run.
//
// The oblivious families (families.h) are pure functions of
// (params, seed). The generators here additionally consume the
// ObservationFeed (observations.h) that the executor publishes each
// step, so they can aim their silencing and crashes at whatever the
// run actually did:
//
//   - window-stretcher: silences the processes that have been stepping
//     (the ones whose next step would close the currently-aging P-free
//     windows) for whole epochs, then releases each victim for one
//     step. Epoch length tracks the oldest observed window, so the
//     silent stretches grow as the run ages — the bound-regressing
//     shape no fixed-scale oblivious family produces.
//   - decision-chaser: retargets silencing at the alive, undecided
//     processes nearest to deciding (engine-published progress, or
//     step counts as a proxy), with a round-robin release every
//     `stretch` steps for liveness.
//   - budget-crasher: spends the t-crash budget at observed worst
//     moments — when a process's published progress crosses
//     `decide_threshold`, or at seeded checkpoints — always on the
//     most-advanced alive process.
//
// Determinism contract: reactions are a pure function of
// (observations, seed). The feed itself is derived only from the
// executed step stream and deterministic protocol state, so the same
// (kind, params, seed) replays bit-identically across threads and
// shards, exactly like the oblivious families.
#ifndef SETLIB_SCHED_REACTIVE_H
#define SETLIB_SCHED_REACTIVE_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/sched/generator.h"
#include "src/sched/observations.h"
#include "src/util/rng.h"

namespace setlib::sched {

/// Shared parameter block for the reactive adversaries. Every kind
/// reads `n`; the rest have per-kind meaning (documented above).
struct ReactiveParams {
  int n = 2;
  /// Processes silenced simultaneously; 0 = auto (window-stretcher:
  /// n-1 so one process runs solo, decision-chaser: 1). Clamped to
  /// [1, alive-1] so somebody always steps.
  int victims = 0;
  /// Base epoch length (window-stretcher) / release cadence
  /// (decision-chaser) / checkpoint spacing scale (budget-crasher).
  std::int64_t stretch = 64;
  /// Budget-crasher: crashes it may spend (clamped to n-1).
  int crash_budget = 1;
  /// Budget-crasher: published progress at which a process is "about
  /// to decide" and worth a crash.
  std::int64_t decide_threshold = 8;
};

/// Base: a ScheduleGenerator bound to an ObservationFeed. The feed is
/// shared: the executor publishes into it, the generator reads it.
class ReactiveGenerator : public ScheduleGenerator {
 public:
  int n() const override { return feed_->n(); }

  const ObservationFeed& feed() const noexcept { return *feed_; }
  const std::shared_ptr<ObservationFeed>& feed_ptr() const noexcept {
    return feed_;
  }

  /// Crashes this adversary has decided so far (monotone). Executors
  /// mirror these into their faulty set (Simulator::use_crash_source)
  /// so the validator's crash accounting stays honest.
  virtual ProcSet crashes_requested() const noexcept { return ProcSet(); }

 protected:
  explicit ReactiveGenerator(std::shared_ptr<ObservationFeed> feed);

  /// Processes not crashed yet (never empty: budgets are < n).
  ProcSet alive() const;

  std::shared_ptr<ObservationFeed> feed_;
};

class WindowStretcherGenerator final : public ReactiveGenerator {
 public:
  WindowStretcherGenerator(const ReactiveParams& params, std::uint64_t seed,
                           std::shared_ptr<ObservationFeed> feed);
  Pid next() override;

 private:
  void begin_epoch();

  ReactiveParams params_;
  Rng rng_;
  std::vector<Pid> active_;   // epoch's steppers (fewest-stepped alive)
  std::vector<Pid> release_;  // victims owed one step, drained LIFO
  std::int64_t epoch_left_ = 0;
  /// Largest silence ever observed (max_silence() is sampled every
  /// step: at epoch boundaries everyone was just released, so the
  /// instantaneous value would collapse back to ~n).
  std::int64_t peak_silence_ = 0;
};

class DecisionChaserGenerator final : public ReactiveGenerator {
 public:
  DecisionChaserGenerator(const ReactiveParams& params, std::uint64_t seed,
                          std::shared_ptr<ObservationFeed> feed);
  Pid next() override;

 private:
  ReactiveParams params_;
  Rng rng_;
  std::int64_t emitted_ = 0;
  int rr_ = 0;  // release rotation cursor
};

class BudgetCrasherGenerator final : public ReactiveGenerator {
 public:
  BudgetCrasherGenerator(const ReactiveParams& params, std::uint64_t seed,
                         std::shared_ptr<ObservationFeed> feed);
  Pid next() override;
  ProcSet crashes_requested() const noexcept override { return requested_; }

 private:
  void maybe_spend_budget();

  ReactiveParams params_;
  Rng rng_;
  int budget_left_;
  std::vector<std::int64_t> checkpoints_;  // seeded, increasing
  std::size_t checkpoint_idx_ = 0;
  ProcSet requested_;
};

/// The registered reactive adversaries, in a fixed order (stable across
/// runs; the frontier bench and fuzzer cell spaces index into it).
enum class ReactiveKind { kWindowStretcher, kDecisionChaser, kBudgetCrasher };

struct ReactiveInfo {
  ReactiveKind kind;
  const char* name;         // CLI/JSON token ("window-stretcher")
  const char* description;  // one-liner for tables and docs
};

const std::vector<ReactiveInfo>& reactive_adversaries();

/// Registry lookup by name; nullptr when unknown.
const ReactiveInfo* find_reactive(std::string_view name);

/// Instantiates a reactive adversary. Pass a feed shared with the
/// executor, or nullptr to let the generator own a private one (the
/// pure-generation mode generate_observed drives). Deterministic: the
/// same (kind, params, seed) against the same observation stream
/// always produces the same schedule.
std::unique_ptr<ReactiveGenerator> make_reactive(
    ReactiveKind kind, const ReactiveParams& params, std::uint64_t seed,
    std::shared_ptr<ObservationFeed> feed = nullptr);

/// Pure-generation driver: materializes `steps` steps, publishing each
/// emitted step back into the generator's feed — the closed loop the
/// fuzzer and frontier map run without a Simulator. (The Simulator
/// publishes the same stream itself via publish_observations.)
Schedule generate_observed(ReactiveGenerator& gen, std::int64_t steps);

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_REACTIVE_H
