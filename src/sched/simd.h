// SIMD kernels for the word-packed timeliness analysis.
//
// Two kernels cover the pair-scan hot loop: or_into (multi-word OR,
// the Q-column accumulation) and window_walk (the fused P-free-window
// popcount walk with prune abort). Three implementations share one
// table layout: AVX2 (x86-64, runtime-detected), NEON (aarch64
// baseline), and a portable scalar fallback. All of them compute on
// 64-bit integers only, so they are bit-identical by construction —
// the vector paths merely batch the all-P-bits-zero fast case that
// dominates real schedules (a window boundary appears once per ~bound
// Q-steps, so most words of most columns are P-free).
//
// Dispatch: active_kernels() picks the best table for the host once
// (AVX2 when __builtin_cpu_supports says so, NEON on aarch64, scalar
// otherwise). Setting SETLIB_FORCE_SCALAR in the environment pins the
// scalar table — the differential CI job runs the whole suite under
// it and diffs against the vector run. set_kernels_for_testing()
// overrides the choice programmatically for in-process differential
// tests and the scalar-baseline benches.
//
// Prune contract: window_walk returns true as soon as state->max_q
// reaches prune_q. Implementations may check at chunk granularity, so
// a pruned return's state is unspecified beyond max_q >= prune_q —
// callers must treat pruned walks as "bound exceeds cap" and discard
// the state (RankedPairScan does). Completed walks (false) leave
// identical state in every implementation: max_q is monotone, so a
// walk that never reaches prune_q runs every word in all of them.
#ifndef SETLIB_SCHED_SIMD_H
#define SETLIB_SCHED_SIMD_H

#include <bit>
#include <cstdint>

#include "src/util/procset.h"

namespace setlib::sched::simd {

/// Window-walk accumulator: Q-steps since the last P-step, and the
/// largest P-free-window Q-count seen. Same arithmetic as
/// BoundTracker; bound = max_q + 1.
struct WalkState {
  std::int64_t current = 0;
  std::int64_t max_q = 0;
};

/// One packed word of the walk (pw: P-bits, qw: Q-bits). A step in
/// both P and Q is a window boundary (the P-reset wins, matching the
/// reference scan): boundary positions are excluded from every counted
/// span by the mask arithmetic. Shared by every kernel implementation
/// and by the analyzer's on-the-fly packer.
inline void walk_word(std::uint64_t pw, std::uint64_t qw,
                      WalkState& state) noexcept {
  if (pw == 0) {
    state.current += std::popcount(qw);
    if (state.current > state.max_q) state.max_q = state.current;
    return;
  }
  int prev = 0;
  do {
    const int b = std::countr_zero(pw);
    state.current += std::popcount(qw & word_range_mask(prev, b));
    if (state.current > state.max_q) state.max_q = state.current;
    state.current = 0;
    prev = b + 1;
    pw &= pw - 1;
  } while (pw != 0);
  state.current = std::popcount(qw & ~low_word_mask(prev));
  if (state.current > state.max_q) state.max_q = state.current;
}

/// A dispatchable kernel table.
struct Kernels {
  const char* name;  // "avx2", "neon", "scalar"
  /// out[w] |= src[w] for w in [0, words).
  void (*or_into)(std::uint64_t* out, const std::uint64_t* src,
                  std::int64_t words);
  /// Walks words [0, words) of (p, q); returns true when the walk
  /// aborted because state->max_q reached prune_q (see the prune
  /// contract above). prune_q == INT64_MAX never aborts.
  bool (*window_walk)(const std::uint64_t* p, const std::uint64_t* q,
                      std::int64_t words, std::int64_t prune_q,
                      WalkState* state);
};

/// The portable table — also the forced-scalar differential baseline.
const Kernels& scalar_kernels() noexcept;

/// The table scans run on: best-for-host, scalar when
/// SETLIB_FORCE_SCALAR is set in the environment (checked once), or
/// whatever set_kernels_for_testing installed.
const Kernels& active_kernels() noexcept;

/// Installs `k` as the active table (nullptr restores the dispatched
/// default). For differential tests and scalar-baseline benches; not
/// for concurrent use with running scans.
void set_kernels_for_testing(const Kernels* k) noexcept;

}  // namespace setlib::sched::simd

#endif  // SETLIB_SCHED_SIMD_H
