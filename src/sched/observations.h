// ObservationFeed: the execution state an adaptive adversary may see.
//
// The paper quantifies Definition 1 over *every* schedule the model
// permits, so the strongest adversaries are not oblivious: they watch
// the run and react. This header is the narrow, read-only window the
// Simulator and engine publish into each step — per-process step
// counts, window ages for candidate P-sets, crash/decision status,
// decision proximity, and pacer (enforcer) constraint state — and that
// ReactiveGenerators (reactive.h) consume.
//
// Determinism contract: everything published here is derived from the
// executed step stream and the engine's deterministic protocol state,
// never from wall-clock time or thread interleaving. A reactive
// adversary's choices are therefore a pure function of (observations,
// seed), and identical runs replay bit-identically at any thread count.
#ifndef SETLIB_SCHED_OBSERVATIONS_H
#define SETLIB_SCHED_OBSERVATIONS_H

#include <cstdint>
#include <vector>

#include "src/util/procset.h"

namespace setlib::sched {

class ObservationFeed {
 public:
  explicit ObservationFeed(int n);

  int n() const noexcept { return n_; }

  // --- Step facts (published by the executor per executed step) ---

  /// Total executed steps observed so far.
  std::int64_t total_steps() const noexcept { return total_; }

  /// Executed steps by p so far.
  std::int64_t steps_of(Pid p) const;

  /// Index (0-based, in the executed stream) of p's last step; -1 if p
  /// has not stepped yet.
  std::int64_t last_step_of(Pid p) const;

  /// Steps executed since p last stepped (total_steps() if never).
  std::int64_t silence_of(Pid p) const;

  /// Age of the current s-free window: steps executed since any member
  /// of s stepped. This is the quantity Definition 1 bounds — an
  /// adversary stretching it for every candidate P-set is pushing the
  /// timeliness bound up. Empty sets age forever (total_steps()).
  std::int64_t window_age(ProcSet s) const;

  /// Largest single-process silence right now (the oldest {p}-free
  /// window). Upper-bounds window_age over every non-empty set.
  std::int64_t max_silence() const;

  /// Processes the executor has crashed (or the adversary has spent
  /// crash budget on).
  ProcSet crashed() const noexcept { return crashed_; }

  // --- Decision facts (published by the engine) ---

  /// True if the engine reported p decided.
  bool decided(Pid p) const;
  ProcSet decided_set() const noexcept { return decided_; }

  /// Decision proximity for p. When the engine publishes protocol
  /// progress (detector iterations), that value is returned; otherwise
  /// steps_of(p) serves as a proxy so pure-generation runs (fuzzer,
  /// frontier map) still rank processes by how far along they are.
  std::int64_t progress_of(Pid p) const;

  /// True once publish_progress has been called for p (distinguishes
  /// engine-published progress from the steps_of proxy).
  bool has_progress(Pid p) const;

  // --- Pacer constraint facts (published by the enforcer) ---

  /// Substitutions the schedule pacer (EnforcedGenerator) performed to
  /// keep the run inside its system spec, and constraints it dropped as
  /// unsatisfiable. Zero unless an enforcer publishes into this feed.
  std::int64_t constraint_substitutions() const noexcept { return subs_; }
  std::int64_t constraint_drops() const noexcept { return drops_; }

  // --- Publishers (executor / engine side) ---

  void record_step(Pid p);
  /// Idempotent: re-crashing a crashed process is a no-op.
  void record_crash(Pid p);
  void publish_progress(Pid p, std::int64_t progress);
  void publish_decided(Pid p);
  void publish_constraint_state(std::int64_t substitutions,
                                std::int64_t drops);

 private:
  int n_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> steps_;
  std::vector<std::int64_t> last_;
  std::vector<std::int64_t> progress_;  // -1 = not published
  ProcSet crashed_;
  ProcSet decided_;
  std::int64_t subs_ = 0;
  std::int64_t drops_ = 0;
};

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_OBSERVATIONS_H
