// Schedules (Section 2 of the paper).
//
// A schedule is a finite or infinite sequence of process ids; a step is
// one element. We materialize finite prefixes of the paper's infinite
// schedules: generators (generators.h) extend a prefix on demand, and
// eventual properties are checked over suffixes (analyzer.h).
#ifndef SETLIB_SCHED_SCHEDULE_H
#define SETLIB_SCHED_SCHEDULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/procset.h"

namespace setlib::sched {

/// A finite schedule prefix over processes {0..n-1}.
class Schedule {
 public:
  explicit Schedule(int n);
  Schedule(int n, std::vector<Pid> steps);

  int n() const noexcept { return n_; }
  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(steps_.size());
  }
  bool empty() const noexcept { return steps_.empty(); }

  Pid operator[](std::int64_t i) const;

  void append(Pid p);

  const std::vector<Pid>& steps() const noexcept { return steps_; }

  /// Number of occurrences of p in [from, to).
  std::int64_t count(Pid p, std::int64_t from, std::int64_t to) const;
  std::int64_t count(Pid p) const { return count(p, 0, size()); }

  /// Number of steps by members of s in [from, to).
  std::int64_t count_set(ProcSet s, std::int64_t from, std::int64_t to) const;
  std::int64_t count_set(ProcSet s) const { return count_set(s, 0, size()); }

  /// Set of processes taking at least one step in [from, size()).
  /// With from = 0 this is the complement of the processes that never
  /// step; a process "correct in S" (infinitely many steps) corresponds,
  /// on a finite prefix, to appearing in the chosen suffix.
  ProcSet appearing_from(std::int64_t from) const;
  ProcSet appearing() const { return appearing_from(0); }

  /// Concatenation (paper's S . S').
  Schedule concat(const Schedule& other) const;

  /// The sub-schedule [from, to) as a new Schedule.
  Schedule slice(std::int64_t from, std::int64_t to) const;

 private:
  int n_;
  std::vector<Pid> steps_;
};

/// Replay hash: a splitmix64 chain over (n, length, step stream). Two
/// schedules collide only if the hash does; equal hashes over the same
/// generator version mean bit-identical executions, which is what the
/// fuzzer corpus and the merged bench rows pin across reruns and shards.
std::uint64_t schedule_hash(const Schedule& s) noexcept;

/// Canonical 16-hex-digit rendering of a schedule hash. JSON numbers are
/// doubles, which lose 64-bit integers past 2^53, so hashes always travel
/// as strings.
std::string hash_hex(std::uint64_t hash);

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_SCHEDULE_H
