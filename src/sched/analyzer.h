// Timeliness analysis: the executable form of Definition 1.
//
// For a finite schedule prefix S and sets P, Q, min_timeliness_bound
// computes the least b such that every window of S containing b steps of
// Q contains a step of P. Equivalently, b = 1 + the maximum number of
// Q-steps in any P-free window of S. On an infinite schedule, "P timely
// w.r.t. Q" (Definition 1) means these per-prefix bounds stay bounded as
// the prefix grows; experiments therefore either
//   (a) track the bound across growing prefixes (Figure 1 harness), or
//   (b) check the bound over a suffix, after stabilization.
//
// SystemMembership implements "S in S^i_{j,n}" on a prefix: does some
// (P, Q) pair with |P| = i, |Q| = j satisfy the bound? (Observation 5's
// degenerate case P = Q makes any schedule a member when i == j, which
// the paper uses to identify S^i_{i,n} with the asynchronous system.)
#ifndef SETLIB_SCHED_ANALYZER_H
#define SETLIB_SCHED_ANALYZER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sched/schedule.h"
#include "src/util/procset.h"

namespace setlib::sched {

/// Least b such that every window of `s` (restricted to [from, to)) with
/// b Q-steps contains a P-step. Returns 1 if Q takes < 1 steps in any
/// P-free window (in particular if P == Q, or Q never steps).
std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q,
                                  std::int64_t from, std::int64_t to);
std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q);

/// Definition 1 on the prefix: is P timely w.r.t. Q with the given bound?
bool is_timely(const Schedule& s, ProcSet p, ProcSet q, std::int64_t bound);

/// Per-phase bound series: bounds of growing prefixes cut at the given
/// offsets. Used by the Figure 1 harness to show divergence vs.
/// boundedness.
std::vector<std::int64_t> bound_series(const Schedule& s, ProcSet p, ProcSet q,
                                       const std::vector<std::int64_t>& cuts);

struct TimelyPair {
  ProcSet timely_set;   // P, |P| = i
  ProcSet observed_set; // Q, |Q| = j
  std::int64_t bound;   // minimal bound for this pair on the prefix
};

class SystemMembership {
 public:
  /// Prepares prefix sums for O(1) per-window set counts.
  explicit SystemMembership(const Schedule& s);

  int n() const noexcept { return n_; }

  /// Minimal bound for a specific pair (same value as
  /// min_timeliness_bound, but O(windows * |Q|) after preparation).
  std::int64_t bound_for(ProcSet p, ProcSet q) const;

  /// The pair of sizes (i, j) with the smallest bound over the prefix;
  /// exhaustive over C(n,i) * C(n,j) pairs.
  TimelyPair best_pair(int i, int j) const;

  /// Membership in S^i_{j,n} at the given bound cap: exists (P, Q) with
  /// |P| = i, |Q| = j and bound <= cap. Early-exits on first witness.
  std::optional<TimelyPair> find_witness(int i, int j,
                                         std::int64_t bound_cap) const;

 private:
  std::vector<std::int64_t> p_free_window_counts(ProcSet p, ProcSet q) const;

  int n_;
  std::int64_t len_;
  // prefix_[p][t] = #steps of process p in [0, t).
  std::vector<std::vector<std::int64_t>> prefix_;
  std::vector<Pid> steps_;
};

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_ANALYZER_H
