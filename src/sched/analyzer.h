// Timeliness analysis: the executable form of Definition 1.
//
// For a finite schedule prefix S and sets P, Q, min_timeliness_bound
// computes the least b such that every window of S containing b steps of
// Q contains a step of P. Equivalently, b = 1 + the maximum number of
// Q-steps in any P-free window of S. On an infinite schedule, "P timely
// w.r.t. Q" (Definition 1) means these per-prefix bounds stay bounded as
// the prefix grows; experiments therefore either
//   (a) track the bound across growing prefixes (Figure 1 harness), or
//   (b) check the bound over a suffix, after stabilization.
//
// The analysis core is word-packed: PackedSchedule encodes each step's
// Pid as a bit column (64 steps per word, one timeline per process), so
// a P-free-window scan is branch-free word operations — OR the columns
// of P and Q, then split each word at its P-bits with mask/popcount.
// The batched pair scan runs its OR+walk inner loop through the
// runtime-dispatched SIMD kernel layer (src/sched/simd.h: AVX2 / NEON /
// portable scalar, bit-identical by construction, forced-scalar via
// SETLIB_FORCE_SCALAR for differential runs) and keeps its scratch on
// a caller-supplied arena (src/util/arena.h) so steady-state scans
// allocate nothing.
// Three surfaces build on it:
//   - min_timeliness_bound / bound_series: one-shot and per-prefix
//     bounds. BoundTracker extends a bound incrementally by ΔS steps in
//     O(Δ), so a growing-prefix series costs O(len) total instead of
//     the O(len^2) of recomputing each cut from scratch.
//   - SystemMembership implements "S in S^i_{j,n}" on a prefix: does
//     some (P, Q) pair with |P| = i, |Q| = j satisfy the bound?
//     (Observation 5's degenerate case P = Q makes any schedule a
//     member when i == j, which the paper uses to identify S^i_{i,n}
//     with the asynchronous system.)
//   - RankedPairScan batches all C(n,i) x C(n,j) pairs through a
//     shared scan: each P's packed timeline is OR'd once and reused by
//     every observer set, a bound cap aborts an observer as soon as
//     one window already exceeds it, and enumeration follows
//     SubsetRanker (combinadic) order so results — including argmin
//     tie-breaks — are identical to the exhaustive nested loops.
//
// min_timeliness_bound_reference is the original per-step scan, kept
// as the executable specification: the randomized equivalence tests
// (and the bench speedup sections) diff the packed paths against it.
#ifndef SETLIB_SCHED_ANALYZER_H
#define SETLIB_SCHED_ANALYZER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sched/schedule.h"
#include "src/util/arena.h"
#include "src/util/procset.h"

namespace setlib::sched {

/// Least b such that every window of `s` (restricted to [from, to)) with
/// b Q-steps contains a P-step. Returns 1 if Q takes < 1 steps in any
/// P-free window (in particular if P == Q, or Q never steps).
std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q,
                                  std::int64_t from, std::int64_t to);
std::int64_t min_timeliness_bound(const Schedule& s, ProcSet p, ProcSet q);

/// The pre-word-packed implementation (one branchy pass per step),
/// retained as the executable spec for differential testing and the
/// speedup baselines. Bit-identical to min_timeliness_bound.
std::int64_t min_timeliness_bound_reference(const Schedule& s, ProcSet p,
                                            ProcSet q, std::int64_t from,
                                            std::int64_t to);
std::int64_t min_timeliness_bound_reference(const Schedule& s, ProcSet p,
                                            ProcSet q);

/// Definition 1 on the prefix: is P timely w.r.t. Q with the given bound?
bool is_timely(const Schedule& s, ProcSet p, ProcSet q, std::int64_t bound);

/// Per-phase bound series: bounds of growing prefixes cut at the given
/// offsets. Used by the Figure 1 harness to show divergence vs.
/// boundedness. Every cut order costs one incremental BoundTracker
/// pass — O(len + cuts log cuts) total: out-of-order cuts are sorted
/// with an index map once and served from the same single pass, then
/// scattered back to request order.
std::vector<std::int64_t> bound_series(const Schedule& s, ProcSet p, ProcSet q,
                                       const std::vector<std::int64_t>& cuts);

/// Incremental Definition 1 state for one (P, Q) pair: feed schedule
/// steps as they are produced and read the minimal bound of the prefix
/// consumed so far at any moment. extend() by ΔS steps costs O(Δ) —
/// the bound of every growing prefix of a length-L schedule costs O(L)
/// total, where recomputation costs O(L^2).
class BoundTracker {
 public:
  BoundTracker(ProcSet p, ProcSet q) noexcept;

  ProcSet timely_set() const noexcept { return p_; }
  ProcSet observed_set() const noexcept { return q_; }

  /// Steps consumed so far.
  std::int64_t position() const noexcept { return position_; }

  /// Minimal timeliness bound of the consumed prefix; equals
  /// min_timeliness_bound(s, p, q, 0, position()).
  std::int64_t bound() const noexcept { return max_q_ + 1; }

  /// Feed one step.
  void step(Pid pid) noexcept;

  /// Consume s's steps [position(), upto) — requires position() <= upto
  /// <= s.size() and that the already-consumed prefix came from the
  /// same step sequence. The overload without `upto` consumes to the
  /// end.
  void extend(const Schedule& s, std::int64_t upto);
  void extend(const Schedule& s) { extend(s, s.size()); }

 private:
  ProcSet p_;
  ProcSet q_;
  std::int64_t position_ = 0;
  std::int64_t current_ = 0;  // Q-steps since the last P-step
  std::int64_t max_q_ = 0;    // largest P-free-window Q-count seen
};

/// Word-packed step representation: one bit timeline per process, 64
/// steps per word. Column p has bit t set iff step t is taken by p.
/// Built once, a PackedSchedule serves every pair scan over the same
/// prefix (SystemMembership, RankedPairScan) with pure word ops.
///
/// Pack-once ownership contract (docs/MEMORY.md): whoever executes a
/// schedule packs it exactly once — on its per-cell arena when it has
/// one — and every downstream consumer (engine report, pair scans,
/// frontier checks) borrows that instance read-only. repack() recycles
/// the word storage across schedules, so a loop that analyzes many
/// schedules (the fuzzer's minimization evals, the frontier's cell
/// loop) allocates its words once.
class PackedSchedule {
 public:
  /// Empty (n = 0, size = 0): a repack target for reuse loops.
  PackedSchedule() noexcept = default;
  explicit PackedSchedule(const Schedule& s);
  /// Words live on `arena` (no heap traffic when the arena's reserve
  /// covers them). The arena must outlive the object, and the caller's
  /// frame discipline governs the storage — repack() on an
  /// arena-backed instance bumps fresh words from the arena.
  PackedSchedule(const Schedule& s, util::ArenaAllocator& arena);

  // The word storage is borrowed by reference everywhere (column()
  // pointers); copying would silently fork it.
  PackedSchedule(const PackedSchedule&) = delete;
  PackedSchedule& operator=(const PackedSchedule&) = delete;

  /// Re-packs `s` into this instance, recycling the word storage:
  /// heap-backed instances reuse their vector capacity (grow-only),
  /// arena-backed ones bump a fresh span. Invalidates column()
  /// pointers.
  void repack(const Schedule& s);

  int n() const noexcept { return n_; }
  std::int64_t size() const noexcept { return len_; }
  /// Words per column: ceil(size() / 64).
  std::int64_t words() const noexcept { return words_; }

  /// Process p's packed timeline (words() words; bits past size() are
  /// zero).
  const std::uint64_t* column(Pid p) const;

  /// OR of the member columns of `s` (members >= n() are ignored) into
  /// `out`, resized to words(). The packed form of "a step of the set".
  void or_columns(ProcSet s, std::vector<std::uint64_t>& out) const;
  /// Same, into a caller-owned buffer of words() words (overwritten).
  void or_columns(ProcSet s, std::uint64_t* out) const;

  /// min_timeliness_bound(s, p, q) over the packed prefix.
  std::int64_t bound_for(ProcSet p, ProcSet q) const;

 private:
  int n_ = 0;
  std::int64_t len_ = 0;
  std::int64_t words_ = 0;
  // Column-major words: [p * words_ + w]. data_ points into owned_
  // (heap-backed) or into arena_ storage (arena-backed).
  std::vector<std::uint64_t> owned_;
  util::ArenaAllocator* arena_ = nullptr;
  std::uint64_t* data_ = nullptr;
};

struct TimelyPair {
  ProcSet timely_set;   // P, |P| = i
  ProcSet observed_set; // Q, |Q| = j
  std::int64_t bound;   // minimal bound for this pair on the prefix
};

/// Batched scan of every (P, Q) pair with |P| = i, |Q| = j over one
/// packed prefix. P-subsets enumerate in SubsetRanker (combinadic)
/// order; each P's OR'd timeline is computed once and shared by all
/// C(n,j) observer sets; observer scans fuse the Q-column OR with the
/// window walk and abort as soon as one P-free window reaches the
/// bound cap. The [p_begin, p_end) rank ranges let callers shard the
/// P-space (e.g. across an ExperimentRunner pool): results over a
/// partition of [0, p_count()) compose to the full-range result.
class RankedPairScan {
 public:
  /// With an arena, per-call scratch (the shared P OR-buffer and the
  /// chunked Q OR-buffer) is bump-allocated inside a FrameScope per
  /// scan call instead of hitting the heap. The arena is mutated by
  /// the (const) scan calls, so a scan object with an arena belongs to
  /// one thread — pool consumers build one RankedPairScan per worker
  /// over the shared PackedSchedule.
  RankedPairScan(const PackedSchedule& packed, int i, int j,
                 util::ArenaAllocator* arena = nullptr);

  int i() const noexcept { return i_; }
  int j() const noexcept { return j_; }
  /// C(n, i): the P-rank space scans shard over.
  std::int64_t p_count() const noexcept;
  /// C(n, j) observer sets per P.
  std::int64_t q_count() const noexcept;

  /// The pair with the smallest bound among P-ranks [p_begin, p_end)
  /// (ties: first in enumeration order) — exhaustive, with the running
  /// best bound as the prune cap.
  TimelyPair best_pair(std::int64_t p_begin, std::int64_t p_end) const;
  TimelyPair best_pair() const { return best_pair(0, p_count()); }

  /// First pair in enumeration order with bound <= bound_cap among
  /// P-ranks [p_begin, p_end), if any.
  std::optional<TimelyPair> find_witness(std::int64_t bound_cap,
                                         std::int64_t p_begin,
                                         std::int64_t p_end) const;
  std::optional<TimelyPair> find_witness(std::int64_t bound_cap) const {
    return find_witness(bound_cap, 0, p_count());
  }

  struct MemberCount {
    std::int64_t pairs = 0;    // pairs scanned
    std::int64_t members = 0;  // pairs with bound <= cap
    std::optional<TimelyPair> first;  // earliest member, if any
  };

  /// Count of pairs with bound <= bound_cap among P-ranks
  /// [p_begin, p_end) — the exhaustive membership census behind the
  /// large-n detector sweeps.
  MemberCount count_members(std::int64_t bound_cap, std::int64_t p_begin,
                            std::int64_t p_end) const;
  MemberCount count_members(std::int64_t bound_cap) const {
    return count_members(bound_cap, 0, p_count());
  }

 private:
  enum class Mode { kBest, kWitness, kCount };

  struct ScanOutcome {
    std::optional<TimelyPair> best;
    std::int64_t pairs = 0;
    std::int64_t members = 0;
  };

  ScanOutcome scan(std::int64_t p_begin, std::int64_t p_end,
                   std::int64_t bound_cap, Mode mode) const;

  const PackedSchedule* packed_;
  int i_;
  int j_;
  util::ArenaAllocator* arena_;  // scratch home; nullptr = heap
  SubsetRanker p_ranker_;
  SubsetRanker q_ranker_;
};

class SystemMembership {
 public:
  /// Packs the prefix once (O(len) time, n * len / 64 words of space);
  /// every per-pair query afterwards runs on word operations.
  explicit SystemMembership(const Schedule& s);

  int n() const noexcept { return n_; }

  const PackedSchedule& packed() const noexcept { return packed_; }

  /// Minimal bound for a specific pair (same value as
  /// min_timeliness_bound, but O(words * (|P| + |Q|)) word ops on the
  /// shared packed prefix).
  std::int64_t bound_for(ProcSet p, ProcSet q) const;

  /// The pair of sizes (i, j) with the smallest bound over the prefix;
  /// exhaustive over C(n,i) * C(n,j) pairs via RankedPairScan (shared
  /// per-P timelines + best-bound pruning).
  TimelyPair best_pair(int i, int j) const;

  /// Membership in S^i_{j,n} at the given bound cap: exists (P, Q) with
  /// |P| = i, |Q| = j and bound <= cap. Early-exits on first witness.
  std::optional<TimelyPair> find_witness(int i, int j,
                                         std::int64_t bound_cap) const;

 private:
  int n_;
  std::int64_t len_;
  PackedSchedule packed_;
};

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_ANALYZER_H
