#include "src/sched/simd.h"

#include <cstdlib>

#if defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace setlib::sched::simd {

namespace {

// ------------------------------------------------------------------
// Portable scalar table.

void scalar_or_into(std::uint64_t* out, const std::uint64_t* src,
                    std::int64_t words) {
  for (std::int64_t w = 0; w < words; ++w) out[w] |= src[w];
}

bool scalar_window_walk(const std::uint64_t* p, const std::uint64_t* q,
                        std::int64_t words, std::int64_t prune_q,
                        WalkState* state) {
  for (std::int64_t w = 0; w < words; ++w) {
    walk_word(p[w], q[w], *state);
    if (state->max_q >= prune_q) return true;
  }
  return false;
}

constexpr Kernels kScalar{"scalar", scalar_or_into, scalar_window_walk};

#if defined(__x86_64__)
// ------------------------------------------------------------------
// AVX2: 4 words per vector op. Compiled with a per-function target
// attribute so the translation unit stays portable; only dispatched
// when __builtin_cpu_supports("avx2") says the host has it.

__attribute__((target("avx2"))) void avx2_or_into(std::uint64_t* out,
                                                  const std::uint64_t* src,
                                                  std::int64_t words) {
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w),
                        _mm256_or_si256(a, b));
  }
  for (; w < words; ++w) out[w] |= src[w];
}

__attribute__((target("avx2"))) bool avx2_window_walk(
    const std::uint64_t* p, const std::uint64_t* q, std::int64_t words,
    std::int64_t prune_q, WalkState* state) {
  // 4-word chunks: one vector test finds the no-P-boundary fast case,
  // where the walk degenerates to a popcount sum (popcnt on the
  // extracted words — the scalar popcount instruction is already one
  // op per word; the win is skipping the per-word branch cascade).
  // The prune check runs per chunk: max_q is monotone, so the walk
  // aborts at chunk granularity iff the scalar walk aborts at word
  // granularity (see the prune contract in the header).
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i pv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w));
    if (_mm256_testz_si256(pv, pv)) {
      state->current += std::popcount(q[w]) + std::popcount(q[w + 1]) +
                        std::popcount(q[w + 2]) + std::popcount(q[w + 3]);
      if (state->current > state->max_q) state->max_q = state->current;
    } else {
      walk_word(p[w], q[w], *state);
      walk_word(p[w + 1], q[w + 1], *state);
      walk_word(p[w + 2], q[w + 2], *state);
      walk_word(p[w + 3], q[w + 3], *state);
    }
    if (state->max_q >= prune_q) return true;
  }
  for (; w < words; ++w) {
    walk_word(p[w], q[w], *state);
    if (state->max_q >= prune_q) return true;
  }
  return false;
}

constexpr Kernels kAvx2{"avx2", avx2_or_into, avx2_window_walk};
#endif  // __x86_64__

#if defined(__aarch64__)
// ------------------------------------------------------------------
// NEON: 2 words per vector op; baseline on every aarch64.

void neon_or_into(std::uint64_t* out, const std::uint64_t* src,
                  std::int64_t words) {
  std::int64_t w = 0;
  for (; w + 2 <= words; w += 2) {
    vst1q_u64(out + w, vorrq_u64(vld1q_u64(out + w), vld1q_u64(src + w)));
  }
  for (; w < words; ++w) out[w] |= src[w];
}

bool neon_window_walk(const std::uint64_t* p, const std::uint64_t* q,
                      std::int64_t words, std::int64_t prune_q,
                      WalkState* state) {
  std::int64_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint64x2_t pv = vld1q_u64(p + w);
    if (vmaxvq_u32(vreinterpretq_u32_u64(pv)) == 0) {
      state->current += std::popcount(q[w]) + std::popcount(q[w + 1]);
      if (state->current > state->max_q) state->max_q = state->current;
    } else {
      walk_word(p[w], q[w], *state);
      walk_word(p[w + 1], q[w + 1], *state);
    }
    if (state->max_q >= prune_q) return true;
  }
  for (; w < words; ++w) {
    walk_word(p[w], q[w], *state);
    if (state->max_q >= prune_q) return true;
  }
  return false;
}

constexpr Kernels kNeon{"neon", neon_or_into, neon_window_walk};
#endif  // __aarch64__

const Kernels& dispatch() noexcept {
  // The env check happens once (function-local static below): the
  // kernel choice is process-wide and integer-exact, so it is not a
  // determinism input — forced-scalar runs exist to prove exactly
  // that, bit for bit.
  if (std::getenv("SETLIB_FORCE_SCALAR") != nullptr) return kScalar;
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return kAvx2;
#elif defined(__aarch64__)
  return kNeon;
#endif
  return kScalar;
}

const Kernels* g_override = nullptr;

}  // namespace

const Kernels& scalar_kernels() noexcept { return kScalar; }

const Kernels& active_kernels() noexcept {
  if (g_override != nullptr) return *g_override;
  static const Kernels& chosen = dispatch();
  return chosen;
}

void set_kernels_for_testing(const Kernels* k) noexcept { g_override = k; }

}  // namespace setlib::sched::simd
