#include "src/sched/reactive.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"

namespace setlib::sched {

namespace {

/// Independent per-role seed streams (same derivation shape as
/// sched::families.cpp and core::derive_cell_seed).
std::uint64_t reactive_seed(std::uint64_t seed, std::uint64_t role) noexcept {
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ull * (role + 1);
  return splitmix64(state);
}

void validate(const ReactiveParams& params) {
  SETLIB_EXPECTS(params.n >= 1 && params.n <= kMaxProcs);
  SETLIB_EXPECTS(params.victims >= 0);
  SETLIB_EXPECTS(params.stretch >= 1);
  SETLIB_EXPECTS(params.crash_budget >= 0);
  SETLIB_EXPECTS(params.decide_threshold >= 0);
}

}  // namespace

ReactiveGenerator::ReactiveGenerator(std::shared_ptr<ObservationFeed> feed)
    : feed_(std::move(feed)) {
  SETLIB_EXPECTS(feed_ != nullptr);
}

ProcSet ReactiveGenerator::alive() const {
  const ProcSet live = ProcSet::universe(n()) - feed_->crashed();
  SETLIB_ASSERT(!live.empty());  // crash budgets are < n
  return live;
}

WindowStretcherGenerator::WindowStretcherGenerator(
    const ReactiveParams& params, std::uint64_t seed,
    std::shared_ptr<ObservationFeed> feed)
    : ReactiveGenerator(std::move(feed)),
      params_(params),
      rng_(reactive_seed(seed, 0)) {
  validate(params);
  SETLIB_EXPECTS(params.n == n());
}

void WindowStretcherGenerator::begin_epoch() {
  // Victims = the most-stepped alive processes: silencing the recent
  // steppers is what keeps every currently-aging P-free window open.
  // Equivalently the epoch's actives are the fewest-stepped, so the
  // solo/active role rotates through all processes as counts balance —
  // over time every candidate P-set gets fully-silenced epochs.
  std::vector<Pid> pids = alive().to_vector();
  std::stable_sort(pids.begin(), pids.end(), [this](Pid a, Pid b) {
    return feed_->steps_of(a) < feed_->steps_of(b);
  });
  const int alive_count = static_cast<int>(pids.size());
  int vcount = params_.victims == 0 ? alive_count - 1 : params_.victims;
  vcount = std::clamp(vcount, 0, alive_count - 1);
  const auto split = pids.begin() + (alive_count - vcount);
  active_.assign(pids.begin(), split);
  release_.assign(split, pids.end());
  // Reactive growth: the epoch lasts as long as the oldest window the
  // run has produced so far (the peak silence, sampled step by step in
  // next()), plus the base stretch — so silent stretches keep getting
  // longer, which no fixed-scale oblivious family does.
  epoch_left_ = params_.stretch + peak_silence_;
}

Pid WindowStretcherGenerator::next() {
  peak_silence_ = std::max(peak_silence_, feed_->max_silence());
  if (epoch_left_ == 0) {
    if (!release_.empty()) {
      // One step per victim between epochs: everybody keeps taking
      // infinitely many steps, as the model's correctness requires.
      const Pid p = release_.back();
      release_.pop_back();
      return p;
    }
    begin_epoch();
  }
  --epoch_left_;
  return active_[static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(active_.size())))];
}

DecisionChaserGenerator::DecisionChaserGenerator(
    const ReactiveParams& params, std::uint64_t seed,
    std::shared_ptr<ObservationFeed> feed)
    : ReactiveGenerator(std::move(feed)),
      params_(params),
      rng_(reactive_seed(seed, 1)) {
  validate(params);
  SETLIB_EXPECTS(params.n == n());
}

Pid DecisionChaserGenerator::next() {
  const ProcSet alive_set = alive();
  ++emitted_;
  if (emitted_ % params_.stretch == 0) {
    // Liveness release: round-robin over the alive set, so even the
    // chased processes step infinitely often.
    const std::vector<Pid> pids = alive_set.to_vector();
    const Pid p = pids[static_cast<std::size_t>(rr_) % pids.size()];
    rr_ = (rr_ + 1) % static_cast<int>(pids.size());
    return p;
  }
  // Victims = the alive, undecided processes nearest to deciding
  // (published progress, or step counts as the proxy), re-targeted
  // every step as the frontier moves.
  int vcount = params_.victims == 0 ? 1 : params_.victims;
  vcount = std::clamp(vcount, 0, alive_set.size() - 1);
  ProcSet victims;
  if (vcount > 0) {
    std::vector<Pid> chased = (alive_set - feed_->decided_set()).to_vector();
    std::stable_sort(chased.begin(), chased.end(), [this](Pid a, Pid b) {
      return feed_->progress_of(a) > feed_->progress_of(b);
    });
    const int take = std::min<int>(vcount, static_cast<int>(chased.size()));
    for (int v = 0; v < take; ++v) victims = victims.with(chased[v]);
  }
  ProcSet pool = alive_set - victims;
  if (pool.empty()) pool = alive_set;
  const std::vector<Pid> pids = pool.to_vector();
  return pids[static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(pids.size())))];
}

BudgetCrasherGenerator::BudgetCrasherGenerator(
    const ReactiveParams& params, std::uint64_t seed,
    std::shared_ptr<ObservationFeed> feed)
    : ReactiveGenerator(std::move(feed)),
      params_(params),
      rng_(reactive_seed(seed, 2)),
      budget_left_(std::min(params.crash_budget, params.n - 1)) {
  validate(params);
  SETLIB_EXPECTS(params.n == n());
  // Seeded fallback checkpoints: when no published progress crosses
  // the threshold, the budget is still spent, at these steps.
  Rng plan(reactive_seed(seed, 3));
  std::int64_t at = 0;
  for (int c = 0; c < budget_left_; ++c) {
    at += plan.next_in(params_.stretch, 8 * params_.stretch);
    checkpoints_.push_back(at);
  }
}

void BudgetCrasherGenerator::maybe_spend_budget() {
  if (budget_left_ <= 0) return;
  const ProcSet alive_set = alive();
  if (alive_set.size() <= 1) return;  // somebody must keep stepping
  // Worst moment #1: a process is about to decide (published progress
  // crossed the threshold). Crash the most advanced such process.
  Pid target = -1;
  std::int64_t best = -1;
  alive_set.for_each([&](Pid p) {
    if (!feed_->has_progress(p) || feed_->decided(p)) return;
    const std::int64_t progress = feed_->progress_of(p);
    if (progress >= params_.decide_threshold && progress > best) {
      best = progress;
      target = p;
    }
  });
  // Worst moment #2 (fallback): a seeded checkpoint came due. Crash
  // the most advanced alive process.
  if (target < 0 && checkpoint_idx_ < checkpoints_.size() &&
      feed_->total_steps() >= checkpoints_[checkpoint_idx_]) {
    ++checkpoint_idx_;
    best = -1;
    alive_set.for_each([&](Pid p) {
      const std::int64_t progress = feed_->progress_of(p);
      if (progress > best) {
        best = progress;
        target = p;
      }
    });
  }
  if (target >= 0) {
    requested_ = requested_.with(target);
    feed_->record_crash(target);
    --budget_left_;
  }
}

Pid BudgetCrasherGenerator::next() {
  maybe_spend_budget();
  const std::vector<Pid> pids = alive().to_vector();
  return pids[static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(pids.size())))];
}

const std::vector<ReactiveInfo>& reactive_adversaries() {
  static const std::vector<ReactiveInfo> kinds = {
      {ReactiveKind::kWindowStretcher, "window-stretcher",
       "feed-scaled silencing epochs; stretches grow with the oldest "
       "observed window"},
      {ReactiveKind::kDecisionChaser, "decision-chaser",
       "silences the alive undecided processes nearest to deciding"},
      {ReactiveKind::kBudgetCrasher, "budget-crasher",
       "spends the t crash budget at observed worst moments"},
  };
  return kinds;
}

const ReactiveInfo* find_reactive(std::string_view name) {
  for (const ReactiveInfo& info : reactive_adversaries()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

std::unique_ptr<ReactiveGenerator> make_reactive(
    ReactiveKind kind, const ReactiveParams& params, std::uint64_t seed,
    std::shared_ptr<ObservationFeed> feed) {
  validate(params);
  if (feed == nullptr) feed = std::make_shared<ObservationFeed>(params.n);
  SETLIB_EXPECTS(feed->n() == params.n);
  switch (kind) {
    case ReactiveKind::kWindowStretcher:
      return std::make_unique<WindowStretcherGenerator>(params, seed,
                                                        std::move(feed));
    case ReactiveKind::kDecisionChaser:
      return std::make_unique<DecisionChaserGenerator>(params, seed,
                                                       std::move(feed));
    case ReactiveKind::kBudgetCrasher:
      return std::make_unique<BudgetCrasherGenerator>(params, seed,
                                                      std::move(feed));
  }
  SETLIB_ASSERT(false);
  return nullptr;
}

Schedule generate_observed(ReactiveGenerator& gen, std::int64_t steps) {
  SETLIB_EXPECTS(steps >= 0);
  Schedule out(gen.n());
  for (std::int64_t i = 0; i < steps; ++i) {
    const Pid p = gen.next();
    out.append(p);
    gen.feed_ptr()->record_step(p);
  }
  return out;
}

}  // namespace setlib::sched
