// Schedule generator interface.
//
// A generator models an infinite schedule: each next() call yields the
// pid of the next step. Deterministic generators (round-robin, Figure 1)
// reproduce the paper's constructions exactly; stochastic ones are
// seeded. The Simulator pulls from a generator one step at a time, so
// adversaries can react to execution state: the generators in
// generators.h and families.h are oblivious (pure functions of params
// and seed), while the ReactiveGenerators in reactive.h consume the
// ObservationFeed (observations.h) the executor publishes each step.
#ifndef SETLIB_SCHED_GENERATOR_H
#define SETLIB_SCHED_GENERATOR_H

#include <memory>

#include "src/sched/schedule.h"
#include "src/util/procset.h"

namespace setlib::sched {

class ScheduleGenerator {
 public:
  virtual ~ScheduleGenerator() = default;

  /// Number of processes in the system the schedule ranges over.
  virtual int n() const = 0;

  /// The pid taking the next step.
  virtual Pid next() = 0;
};

/// Materialize the next `steps` steps of `gen` as a Schedule.
Schedule generate(ScheduleGenerator& gen, std::int64_t steps);

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_GENERATOR_H
