// Concrete schedule generators.
//
// - RoundRobinGenerator: the fully synchronous baseline.
// - UniformRandomGenerator / WeightedRandomGenerator: seeded fair and
//   biased asynchrony.
// - Figure1Generator: the paper's Figure 1 schedule
//   S = [(p1 q)^i (p2 q)^i] for i = 1, 2, 3, ...: neither {p1} nor {p2}
//   is timely w.r.t. {q}, but {p1, p2} is (bound 2).
// - RotatingStarverGenerator: generalization of Figure 1. Rotors take
//   turns (in growing bursts) being the only rotor that steps, each
//   interleaved with the background set. The rotor set as a whole is
//   timely w.r.t. the background, but every proper subset of the rotors
//   is starved for unboundedly long stretches. Used as the adversary for
//   the i > k impossibility experiments.
// - CrashPlan + apply_crashes: stop scheduling a process from a given
//   global step on (the model's notion of a crash: finitely many steps).
#ifndef SETLIB_SCHED_GENERATORS_H
#define SETLIB_SCHED_GENERATORS_H

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/sched/generator.h"
#include "src/util/procset.h"
#include "src/util/rng.h"

namespace setlib::sched {

class RoundRobinGenerator final : public ScheduleGenerator {
 public:
  explicit RoundRobinGenerator(int n);

  int n() const override { return n_; }
  Pid next() override;

 private:
  int n_;
  Pid next_ = 0;
};

class UniformRandomGenerator final : public ScheduleGenerator {
 public:
  UniformRandomGenerator(int n, std::uint64_t seed);

  int n() const override { return n_; }
  Pid next() override;

 private:
  int n_;
  Rng rng_;
};

class WeightedRandomGenerator final : public ScheduleGenerator {
 public:
  /// weights.size() == n; weights need not sum to 1 (>= 0, not all 0).
  WeightedRandomGenerator(std::vector<double> weights, std::uint64_t seed);

  int n() const override { return static_cast<int>(weights_.size()); }
  Pid next() override;

 private:
  std::vector<double> weights_;
  Rng rng_;
};

/// The schedule of the paper's Figure 1: [(p1 q)^i (p2 q)^i]_{i=1..inf}.
class Figure1Generator final : public ScheduleGenerator {
 public:
  Figure1Generator(int n, Pid p1, Pid p2, Pid q);

  int n() const override { return n_; }
  Pid next() override;

  /// Total steps in phases 1..i (each phase i has 4i steps); useful for
  /// cutting prefixes exactly at phase boundaries in experiments.
  static std::int64_t steps_through_phase(std::int64_t i);

 private:
  int n_;
  Pid p1_, p2_, q_;
  std::int64_t phase_ = 1;      // current i
  std::int64_t pair_in_half_ = 0;
  bool second_half_ = false;    // false: (p1 q)^i, true: (p2 q)^i
  bool emit_q_ = false;         // within a pair: rotor first, then q
};

/// Growing-burst rotation over `rotors`, interleaved with `background`.
///
/// Phase m (m = 1, 2, ...) repeats `growth * m` times the block
///   [ r, b_1, b_2, ..., b_B ]
/// where r is rotor number (m-1) mod |rotors| and b_* enumerate the
/// background. Guarantees (see analyzer tests):
///   - rotors (as one set) timely w.r.t. background with bound |B| + 1;
///   - every proper rotor subset misses unboundedly long stretches.
/// Processes outside rotors + background never step.
class RotatingStarverGenerator final : public ScheduleGenerator {
 public:
  RotatingStarverGenerator(int n, ProcSet rotors, ProcSet background,
                           std::int64_t growth = 1);

  int n() const override { return n_; }
  Pid next() override;

 private:
  void advance_block();

  int n_;
  std::vector<Pid> rotors_;
  std::vector<Pid> background_;
  std::int64_t growth_;
  std::int64_t phase_ = 1;
  std::int64_t block_in_phase_ = 0;
  std::size_t rotor_idx_ = 0;
  std::size_t pos_in_block_ = 0;  // 0 = rotor, 1.. = background
};

/// Rotating k-subset starvation (the schedule shape behind Theorem 26's
/// separation and the i > k side of Theorem 27). Phase m (of growing
/// length growth * m) starves the k-subset of `live` with combinadic
/// rank (m-1) mod C(|live|, k); all other live processes round-robin.
/// Consequences (verified by the analyzer in tests):
///   - every (k+1)-subset of `live` is timely w.r.t. the whole universe
///     (at most k processes are starved at any moment, so any k+1
///     processes always include an active one);
///   - no k-subset of `live` is timely w.r.t. anything that keeps
///     stepping: each is starved for unboundedly long stretches.
class KSubsetStarverGenerator final : public ScheduleGenerator {
 public:
  KSubsetStarverGenerator(int n, ProcSet live, int k,
                          std::int64_t growth = 1);

  int n() const override { return n_; }
  Pid next() override;

 private:
  void enter_phase();

  int n_;
  ProcSet live_;
  SubsetRanker ranker_;  // over |live| indices into live_members_
  std::vector<Pid> live_members_;
  std::int64_t growth_;
  std::int64_t phase_ = 0;
  std::int64_t step_in_phase_ = 0;
  std::vector<Pid> active_;  // live minus the starved subset
  std::size_t rr_ = 0;
};

/// Switch from one generator to another at a fixed step index — the
/// classic "global stabilization time" (GST) shape of Dwork-Lynch-
/// Stockmeyer partial synchrony, expressed in the set-timeliness
/// model: a schedule that is adversarial before the switch and timely
/// after still has a *finite* Definition 1 bound (the finite prefix
/// contributes a finite worst window), so it belongs to S^i_{j,n} and
/// the paper's algorithms must cope with it.
class SwitchGenerator final : public ScheduleGenerator {
 public:
  SwitchGenerator(std::unique_ptr<ScheduleGenerator> before,
                  std::unique_ptr<ScheduleGenerator> after,
                  std::int64_t switch_at);

  int n() const override;
  Pid next() override;

 private:
  std::unique_ptr<ScheduleGenerator> before_;
  std::unique_ptr<ScheduleGenerator> after_;
  std::int64_t switch_at_;
  std::int64_t emitted_ = 0;
};

/// Replay a recorded (finite) schedule; afterwards falls back to
/// round-robin over the same process set. Enables deterministic
/// regression replay of any executed run.
class ReplayGenerator final : public ScheduleGenerator {
 public:
  explicit ReplayGenerator(Schedule schedule);

  int n() const override { return schedule_.n(); }
  Pid next() override;

  std::int64_t replayed() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ >= schedule_.size(); }

 private:
  Schedule schedule_;
  std::int64_t pos_ = 0;
  Pid fallback_ = 0;
};

/// Per-process crash times: process p takes no step at global index
/// >= crash_step[p]. kNever means correct.
class CrashPlan {
 public:
  static constexpr std::int64_t kNever =
      std::numeric_limits<std::int64_t>::max();

  explicit CrashPlan(int n);

  /// No crashes.
  static CrashPlan none(int n);

  /// Crash every process in `who` at step `when`.
  static CrashPlan at(int n, ProcSet who, std::int64_t when);

  int n() const noexcept { return n_; }
  void set_crash(Pid p, std::int64_t step);
  std::int64_t crash_step(Pid p) const;
  bool crashed_by(Pid p, std::int64_t step) const;

  /// Processes with a finite crash step.
  ProcSet faulty() const;
  ProcSet correct() const { return faulty().complement(n_); }

  /// Processes alive at global step index `step`.
  ProcSet alive_at(std::int64_t step) const;

 private:
  int n_;
  std::vector<std::int64_t> crash_step_;
};

/// Wraps a base generator, suppressing steps of crashed processes.
/// Pulls from the base until it yields an alive pid (the base generators
/// above are fair, so this terminates as long as one process is alive).
class CrashFilterGenerator final : public ScheduleGenerator {
 public:
  CrashFilterGenerator(std::unique_ptr<ScheduleGenerator> base,
                       CrashPlan plan);

  int n() const override { return base_->n(); }
  Pid next() override;

  const CrashPlan& plan() const noexcept { return plan_; }

 private:
  std::unique_ptr<ScheduleGenerator> base_;
  CrashPlan plan_;
  std::int64_t emitted_ = 0;
};

}  // namespace setlib::sched

#endif  // SETLIB_SCHED_GENERATORS_H
