#include "src/runtime/executor.h"

#include <algorithm>
#include <exception>

#include "src/util/assert.h"

namespace setlib::runtime {

ThreadedExecutor::ThreadedExecutor(RtMemory& mem, int n)
    : mem_(mem),
      n_(n),
      crash_after_(static_cast<std::size_t>(n),
                   std::numeric_limits<std::int64_t>::max()),
      done_(static_cast<std::size_t>(n)) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  procs_.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) procs_.emplace_back(p);
  for (auto& d : done_) d.store(false, std::memory_order_relaxed);
}

shm::ProcessRuntime& ThreadedExecutor::process(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return procs_[static_cast<std::size_t>(p)];
}

void ThreadedExecutor::crash_after(Pid p, std::int64_t ops) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(ops >= 0);
  crash_after_[static_cast<std::size_t>(p)] = ops;
}

ProcSet ThreadedExecutor::crashed() const {
  return ProcSet(crashed_mask_.load(std::memory_order_acquire));
}

void ThreadedExecutor::thread_main(Pid p, Pacer& pacer,
                                   const Options& options) {
  auto& proc = procs_[static_cast<std::size_t>(p)];
  const std::int64_t crash_at = crash_after_[static_cast<std::size_t>(p)];
  std::int64_t ops = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ops >= crash_at) {
      crashed_mask_.fetch_or(std::uint64_t{1} << p,
                             std::memory_order_acq_rel);
      break;
    }
    if (ops >= options.max_ops_per_process) break;
    if (!pacer.step(p)) break;
    proc.step(mem_);
    ++ops;
    total_ops_.fetch_add(1, std::memory_order_relaxed);
    if (options.local_done && ops % options.poll_every == 0 &&
        !done_[static_cast<std::size_t>(p)].load(
            std::memory_order_relaxed) &&
        options.local_done(p)) {
      done_[static_cast<std::size_t>(p)].store(true,
                                               std::memory_order_release);
    }
    if (proc.halted()) {
      done_[static_cast<std::size_t>(p)].store(true,
                                               std::memory_order_release);
      break;
    }
  }
  // Whether crashed, done, or stopped: this thread takes no more steps.
  pacer.deactivate(p);
}

ThreadedExecutor::RunStats ThreadedExecutor::run(Pacer& pacer,
                                                 const Options& options) {
  mem_.freeze();
  const auto start = std::chrono::steady_clock::now();

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(n_));
    for (Pid p = 0; p < n_; ++p) {
      threads.emplace_back([this, p, &pacer, &options] {
        thread_main(p, pacer, options);
      });
    }

    // Monitor: end the run when every non-crashed process is done, or
    // on wall-clock expiry. (Threads park in pacer waits or loop; the
    // stop flag plus pacer stop release everyone.)
    for (;;) {
      bool all_done = true;
      const ProcSet crashed_now = crashed();
      for (Pid p = 0; p < n_; ++p) {
        if (crashed_now.contains(p)) continue;
        if (!done_[static_cast<std::size_t>(p)].load(
                std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (all_done || elapsed >= options.max_wall) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop_.store(true, std::memory_order_release);
    pacer.request_stop();
    // jthread joins on scope exit (CP.25).
  }

  RunStats stats;
  stats.total_ops = total_ops_.load(std::memory_order_relaxed);
  stats.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  stats.wall_expired = stats.elapsed >= options.max_wall;
  stats.all_done = true;
  const ProcSet crashed_final = crashed();
  for (Pid p = 0; p < n_; ++p) {
    if (crashed_final.contains(p)) continue;
    if (!done_[static_cast<std::size_t>(p)].load(
            std::memory_order_acquire)) {
      stats.all_done = false;
    }
  }
  return stats;
}

WorkStealingPool::WorkStealingPool(int threads) {
  SETLIB_EXPECTS(threads >= 0);
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads_ = threads;
}

void WorkStealingPool::worker_loop(
    std::vector<Shard>& shards, std::size_t self,
    const std::function<void(std::size_t)>& fn,
    std::vector<std::exception_ptr>& errors) {
  auto run_guarded = [&](std::int64_t idx) {
    try {
      fn(static_cast<std::size_t>(idx));
    } catch (...) {
      errors[static_cast<std::size_t>(idx)] = std::current_exception();
    }
  };
  for (;;) {
    std::int64_t idx = -1;
    {
      Shard& own = shards[self];
      std::scoped_lock lock(own.m);
      if (own.head < own.tail) idx = own.head++;
    }
    if (idx < 0) {
      // Steal from the back of the victim with the most work left.
      std::size_t victim = shards.size();
      std::int64_t victim_remaining = 0;
      for (std::size_t v = 0; v < shards.size(); ++v) {
        if (v == self) continue;
        std::scoped_lock lock(shards[v].m);
        const std::int64_t remaining = shards[v].tail - shards[v].head;
        if (remaining > victim_remaining) {
          victim = v;
          victim_remaining = remaining;
        }
      }
      if (victim < shards.size()) {
        Shard& s = shards[victim];
        std::scoped_lock lock(s.m);
        if (s.head < s.tail) idx = --s.tail;
      }
    }
    if (idx < 0) return;  // every shard drained
    run_guarded(idx);
  }
}

void WorkStealingPool::for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(threads_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::vector<Shard> shards(workers);
    const std::size_t base = n / workers;
    const std::size_t extra = n % workers;
    std::size_t begin = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t len = base + (w < extra ? 1 : 0);
      shards[w].head = static_cast<std::int64_t>(begin);
      shards[w].tail = static_cast<std::int64_t>(begin + len);
      begin += len;
    }
    {
      std::vector<std::jthread> pool;
      pool.reserve(workers - 1);
      for (std::size_t w = 1; w < workers; ++w) {
        pool.emplace_back([&shards, w, &fn, &errors] {
          worker_loop(shards, w, fn, errors);
        });
      }
      worker_loop(shards, 0, fn, errors);
      // jthread joins on scope exit.
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace setlib::runtime
