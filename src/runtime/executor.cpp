#include "src/runtime/executor.h"

#include "src/util/assert.h"

namespace setlib::runtime {

ThreadedExecutor::ThreadedExecutor(RtMemory& mem, int n)
    : mem_(mem),
      n_(n),
      crash_after_(static_cast<std::size_t>(n),
                   std::numeric_limits<std::int64_t>::max()),
      done_(static_cast<std::size_t>(n)) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  procs_.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) procs_.emplace_back(p);
  for (auto& d : done_) d.store(false, std::memory_order_relaxed);
}

shm::ProcessRuntime& ThreadedExecutor::process(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return procs_[static_cast<std::size_t>(p)];
}

void ThreadedExecutor::crash_after(Pid p, std::int64_t ops) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(ops >= 0);
  crash_after_[static_cast<std::size_t>(p)] = ops;
}

ProcSet ThreadedExecutor::crashed() const {
  return ProcSet(crashed_mask_.load(std::memory_order_acquire));
}

void ThreadedExecutor::thread_main(Pid p, Pacer& pacer,
                                   const Options& options) {
  auto& proc = procs_[static_cast<std::size_t>(p)];
  const std::int64_t crash_at = crash_after_[static_cast<std::size_t>(p)];
  std::int64_t ops = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ops >= crash_at) {
      crashed_mask_.fetch_or(std::uint64_t{1} << p,
                             std::memory_order_acq_rel);
      break;
    }
    if (ops >= options.max_ops_per_process) break;
    if (!pacer.step(p)) break;
    proc.step(mem_);
    ++ops;
    total_ops_.fetch_add(1, std::memory_order_relaxed);
    if (options.local_done && ops % options.poll_every == 0 &&
        !done_[static_cast<std::size_t>(p)].load(
            std::memory_order_relaxed) &&
        options.local_done(p)) {
      done_[static_cast<std::size_t>(p)].store(true,
                                               std::memory_order_release);
    }
    if (proc.halted()) {
      done_[static_cast<std::size_t>(p)].store(true,
                                               std::memory_order_release);
      break;
    }
  }
  // Whether crashed, done, or stopped: this thread takes no more steps.
  pacer.deactivate(p);
}

ThreadedExecutor::RunStats ThreadedExecutor::run(Pacer& pacer,
                                                 const Options& options) {
  mem_.freeze();
  const auto start = std::chrono::steady_clock::now();

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(n_));
    for (Pid p = 0; p < n_; ++p) {
      threads.emplace_back([this, p, &pacer, &options] {
        thread_main(p, pacer, options);
      });
    }

    // Monitor: end the run when every non-crashed process is done, or
    // on wall-clock expiry. (Threads park in pacer waits or loop; the
    // stop flag plus pacer stop release everyone.)
    for (;;) {
      bool all_done = true;
      const ProcSet crashed_now = crashed();
      for (Pid p = 0; p < n_; ++p) {
        if (crashed_now.contains(p)) continue;
        if (!done_[static_cast<std::size_t>(p)].load(
                std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (all_done || elapsed >= options.max_wall) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop_.store(true, std::memory_order_release);
    pacer.request_stop();
    // jthread joins on scope exit (CP.25).
  }

  RunStats stats;
  stats.total_ops = total_ops_.load(std::memory_order_relaxed);
  stats.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  stats.wall_expired = stats.elapsed >= options.max_wall;
  stats.all_done = true;
  const ProcSet crashed_final = crashed();
  for (Pid p = 0; p < n_; ++p) {
    if (crashed_final.contains(p)) continue;
    if (!done_[static_cast<std::size_t>(p)].load(
            std::memory_order_acquire)) {
      stats.all_done = false;
    }
  }
  return stats;
}

}  // namespace setlib::runtime
