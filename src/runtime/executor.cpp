#include "src/runtime/executor.h"

#include <algorithm>
#include <exception>

#include "src/util/assert.h"

namespace setlib::runtime {

ThreadedExecutor::ThreadedExecutor(RtMemory& mem, int n)
    : mem_(mem),
      n_(n),
      crash_after_(static_cast<std::size_t>(n),
                   std::numeric_limits<std::int64_t>::max()),
      done_(static_cast<std::size_t>(n)),
      exited_(static_cast<std::size_t>(n)) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  procs_.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) procs_.emplace_back(p);
  for (auto& d : done_) d.store(false, std::memory_order_relaxed);
  for (auto& e : exited_) e.store(false, std::memory_order_relaxed);
}

shm::ProcessRuntime& ThreadedExecutor::process(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return procs_[static_cast<std::size_t>(p)];
}

void ThreadedExecutor::crash_after(Pid p, std::int64_t ops) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(ops >= 0);
  crash_after_[static_cast<std::size_t>(p)] = ops;
}

ProcSet ThreadedExecutor::crashed() const {
  return ProcSet(crashed_mask_.load(std::memory_order_acquire));
}

void ThreadedExecutor::thread_main(Pid p, Pacer& pacer,
                                   const Options& options) {
  auto& proc = procs_[static_cast<std::size_t>(p)];
  const std::int64_t crash_at = crash_after_[static_cast<std::size_t>(p)];
  std::int64_t ops = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ops >= crash_at) {
      crashed_mask_.fetch_or(std::uint64_t{1} << p,
                             std::memory_order_acq_rel);
      break;
    }
    if (ops >= options.max_ops_per_process) break;
    if (!pacer.step(p)) break;
    proc.step(mem_);
    ++ops;
    total_ops_.fetch_add(1, std::memory_order_relaxed);
    if (options.local_done && ops % options.poll_every == 0 &&
        !done_[static_cast<std::size_t>(p)].load(
            std::memory_order_relaxed) &&
        options.local_done(p)) {
      done_[static_cast<std::size_t>(p)].store(true,
                                               std::memory_order_release);
    }
    if (proc.halted()) {
      done_[static_cast<std::size_t>(p)].store(true,
                                               std::memory_order_release);
      break;
    }
  }
  // Whether crashed, done, stopped, or out of budget: this thread
  // takes no more steps. Publishing exited_ lets the monitor end the
  // run instead of waiting out max_wall for a process that left its
  // loop without being done (op budget, pacer refusal).
  exited_[static_cast<std::size_t>(p)].store(true,
                                             std::memory_order_release);
  pacer.deactivate(p);
}

ThreadedExecutor::RunStats ThreadedExecutor::run(Pacer& pacer,
                                                 const Options& options) {
  mem_.freeze();
  const auto start = std::chrono::steady_clock::now();

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(n_));
    for (Pid p = 0; p < n_; ++p) {
      threads.emplace_back([this, p, &pacer, &options] {
        thread_main(p, pacer, options);
      });
    }

    // Monitor: end the run when no runnable process remains — every
    // process is done, crashed, or has exited its loop (op budget,
    // pacer refusal) — or on wall-clock expiry. (Threads park in
    // pacer waits or loop; the stop flag plus pacer stop release
    // everyone.)
    for (;;) {
      bool all_settled = true;
      const ProcSet crashed_now = crashed();
      for (Pid p = 0; p < n_; ++p) {
        if (crashed_now.contains(p)) continue;
        if (exited_[static_cast<std::size_t>(p)].load(
                std::memory_order_acquire)) {
          continue;
        }
        // A process with a crash still pending is not settled even
        // once its local_done predicate fires: ending the run at
        // first-decision would race the crash injection, making the
        // faulty set depend on how far the OS let this thread run
        // (the KSetWithCrashes flake). Its thread keeps stepping and
        // crashes after exactly crash_after_ ops — deterministic in
        // its own execution — so waiting here is bounded.
        if (crash_after_[static_cast<std::size_t>(p)] !=
            std::numeric_limits<std::int64_t>::max()) {
          all_settled = false;
          break;
        }
        if (done_[static_cast<std::size_t>(p)].load(
                std::memory_order_acquire)) {
          continue;
        }
        all_settled = false;
        break;
      }
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (all_settled || elapsed >= options.max_wall) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Stop the pacer before publishing the executor stop flag: a
    // worker that observes stop_ exits its loop and deactivates its
    // pid, and the pacer counts a deactivation that kills a
    // constraint's timely set as a real mid-run drop unless its own
    // stop flag is already up. With the old order (executor flag
    // first) a fast-exiting worker could deactivate during the gap
    // and a clean run would report dropped_constraints == 1 — a
    // teardown artifact, not a violation.
    pacer.request_stop();
    stop_.store(true, std::memory_order_release);
    // jthread joins on scope exit (CP.25).
  }

  RunStats stats;
  stats.total_ops = total_ops_.load(std::memory_order_relaxed);
  stats.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  stats.wall_expired = stats.elapsed >= options.max_wall;
  stats.all_done = true;
  const ProcSet crashed_final = crashed();
  for (Pid p = 0; p < n_; ++p) {
    if (crashed_final.contains(p)) continue;
    if (!done_[static_cast<std::size_t>(p)].load(
            std::memory_order_acquire)) {
      stats.all_done = false;
    }
  }
  return stats;
}

thread_local const WorkStealingPool* WorkStealingPool::tl_pool_ = nullptr;
thread_local std::size_t WorkStealingPool::tl_slot_ = 0;

std::size_t WorkStealingPool::current_slot() const noexcept {
  return tl_pool_ == this ? tl_slot_ : 0;
}

WorkStealingPool::WorkStealingPool(int threads) {
  SETLIB_EXPECTS(threads >= 0);
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads_ = threads;
  // Persistent workers: the submitting thread is participant 0, so a
  // pool of T threads needs T - 1 parked workers. They spawn exactly
  // once, here, and every subsequent job reuses them.
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] {
      worker_main(static_cast<std::size_t>(w));
    });
    threads_spawned_.fetch_add(1, std::memory_order_acq_rel);
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    const util::MutexLock lock(m_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // jthreads join on destruction of workers_.
}

void WorkStealingPool::worker_main(std::size_t self) {
  // A spawned worker belongs to this pool for its whole lifetime.
  tl_pool_ = this;
  tl_slot_ = self;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      const util::MutexLock lock(m_);
      while (!stopping_ && job_seq_ == seen) work_cv_.wait(m_);
      if (job_seq_ == seen) return;  // stopping and nothing new
      seen = job_seq_;
      job = job_;
    }
    // Workers beyond the job's shard count own no range and go
    // straight to stealing; work() handles that uniformly.
    if (job) work(*job, self);
  }
}

void WorkStealingPool::work(Job& job, std::size_t self) {
  auto& shards = job.shards;
  auto run_chunk = [&](std::int64_t begin, std::int64_t len) {
    for (std::int64_t i = begin; i < begin + len; ++i) {
      try {
        (*job.fn)(static_cast<std::size_t>(i));
      } catch (...) {
        (*job.errors)[static_cast<std::size_t>(i)] =
            std::current_exception();
      }
    }
    // The thread retiring the job's last index wakes the submitter.
    if (job.remaining.fetch_sub(len, std::memory_order_acq_rel) == len) {
      const util::MutexLock lock(m_);
      done_cv_.notify_all();
    }
  };

  for (;;) {
    std::int64_t begin = -1;
    std::int64_t len = 0;
    if (self < shards.size()) {
      Shard& own = shards[self];
      const util::MutexLock lock(own.m);
      if (own.head < own.tail) {
        begin = own.head;
        len = std::min(job.grain, own.tail - own.head);
        own.head += len;
      }
    }
    if (begin < 0) {
      // Steal a chunk from the back of the victim with the most work.
      std::size_t victim = shards.size();
      std::int64_t victim_remaining = 0;
      for (std::size_t v = 0; v < shards.size(); ++v) {
        if (v == self) continue;
        Shard& s = shards[v];
        const util::MutexLock lock(s.m);
        const std::int64_t remaining = s.tail - s.head;
        if (remaining > victim_remaining) {
          victim = v;
          victim_remaining = remaining;
        }
      }
      if (victim < shards.size()) {
        Shard& s = shards[victim];
        const util::MutexLock lock(s.m);
        if (s.head < s.tail) {
          len = std::min(job.grain, s.tail - s.head);
          s.tail -= len;
          begin = s.tail;
        }
      }
    }
    if (begin < 0) return;  // every shard drained
    run_chunk(begin, len);
  }
}

void WorkStealingPool::for_each(std::size_t n,
                                const std::function<void(std::size_t)>& fn,
                                std::size_t grain) {
  SETLIB_EXPECTS(grain >= 1);
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t participants =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), chunks);
  if (participants <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->errors = &errors;
    job->grain = static_cast<std::int64_t>(grain);
    job->shards = std::vector<Shard>(participants);
    const std::size_t base = n / participants;
    const std::size_t extra = n % participants;
    std::size_t begin = 0;
    for (std::size_t w = 0; w < participants; ++w) {
      const std::size_t len = base + (w < extra ? 1 : 0);
      Shard& shard = job->shards[w];
      // Uncontended: the job is not published yet. Locking anyway
      // keeps the write sites of head/tail uniform for the analysis.
      const util::MutexLock lock(shard.m);
      shard.head = static_cast<std::int64_t>(begin);
      shard.tail = static_cast<std::int64_t>(begin + len);
      begin += len;
    }
    job->remaining.store(static_cast<std::int64_t>(n),
                         std::memory_order_release);
    {
      const util::MutexLock lock(m_);
      SETLIB_EXPECTS(!busy_);  // one parallel submission at a time
      busy_ = true;
      job_ = job;
      ++job_seq_;
    }
    work_cv_.notify_all();
    // The submitter is participant 0 for the duration of the job; its
    // previous identity (it may be a worker of another pool) is
    // restored on the way out.
    const WorkStealingPool* const prev_pool = tl_pool_;
    const std::size_t prev_slot = tl_slot_;
    tl_pool_ = this;
    tl_slot_ = 0;
    work(*job, 0);
    tl_pool_ = prev_pool;
    tl_slot_ = prev_slot;
    {
      const util::MutexLock lock(m_);
      while (job->remaining.load(std::memory_order_acquire) > 0) {
        done_cv_.wait(m_);
      }
      job_ = nullptr;
      busy_ = false;
    }
  }
  jobs_completed_.fetch_add(1, std::memory_order_acq_rel);
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace setlib::runtime
