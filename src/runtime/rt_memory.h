// Thread-safe shared memory for the real-time runtime.
//
// Same IMemory interface the simulator uses, so the coroutine algorithm
// code is executor-agnostic: one mutex per register provides
// linearizable (atomic MWMR register) semantics. Registers must be
// allocated during the single-threaded setup phase; freeze() is called
// by the executor before spawning threads and further alloc() calls
// throw.
#ifndef SETLIB_RUNTIME_RT_MEMORY_H
#define SETLIB_RUNTIME_RT_MEMORY_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/shm/memory.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace setlib::runtime {

class RtMemory final : public shm::IMemory {
 public:
  RtMemory() = default;

  shm::RegisterId alloc(std::string name) override;
  shm::Value read(shm::RegisterId reg) override;
  void write(shm::RegisterId reg, shm::Value v) override;
  std::int64_t register_count() const override;
  const std::string& name(shm::RegisterId reg) const override;
  std::int64_t read_count() const override {
    return reads_.load(std::memory_order_relaxed);
  }
  std::int64_t write_count() const override {
    return writes_.load(std::memory_order_relaxed);
  }

  /// Forbid further allocation (executor calls this before threads
  /// start; allocation would reallocate the cell vector under readers).
  void freeze() noexcept { frozen_.store(true, std::memory_order_release); }
  bool frozen() const noexcept {
    return frozen_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    mutable util::Mutex mu;
    shm::Value value SETLIB_GUARDED_BY(mu);
  };

  // The cell vector itself is setup-phase-only: alloc() appends until
  // freeze(), and the executor freezes before any reader thread
  // exists, so only each cell's payload needs a guard.
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<std::string> names_;
  std::atomic<bool> frozen_{false};
  std::atomic<std::int64_t> reads_{0};
  std::atomic<std::int64_t> writes_{0};
};

}  // namespace setlib::runtime

#endif  // SETLIB_RUNTIME_RT_MEMORY_H
