// The threaded executor: the same coroutine algorithms the simulator
// runs, driven by real std::jthreads.
//
// Each process thread loops: gate one step through the Pacer, then
// execute one pending register operation of the process's next task
// against the (thread-safe) RtMemory. Crash injection stops a thread
// after a configured number of operations. Thread-owned state keeps the
// algorithm objects race-free: a process's tasks run only on its own
// thread; cross-thread coordination goes through RtMemory registers,
// the Pacer, and the executor's atomics.
#ifndef SETLIB_RUNTIME_EXECUTOR_H
#define SETLIB_RUNTIME_EXECUTOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "src/runtime/pacer.h"
#include "src/runtime/rt_memory.h"
#include "src/shm/process.h"
#include "src/util/procset.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace setlib::runtime {

class ThreadedExecutor {
 public:
  struct Options {
    /// Per-thread operation budget (safety net against livelock).
    std::int64_t max_ops_per_process = 2'000'000;
    /// Wall-clock cap for the whole run.
    std::chrono::milliseconds max_wall{10'000};
    /// Evaluated by each process's own thread every `poll_every` ops;
    /// when it returns true the process counts as locally done. The
    /// run ends when every non-crashed process is done (or budgets
    /// expire). Must only touch state owned by that process.
    std::function<bool(Pid)> local_done;
    std::int64_t poll_every = 32;
  };

  struct RunStats {
    bool all_done = false;        // every non-crashed process reported done
    bool wall_expired = false;
    std::int64_t total_ops = 0;
    std::chrono::milliseconds elapsed{0};
  };

  ThreadedExecutor(RtMemory& mem, int n);

  shm::ProcessRuntime& process(Pid p);

  /// Crash pid after it has executed exactly `ops` operations (checked
  /// before each op by the process's own thread). Deterministic: the
  /// run monitor never ends a run while a crash is still pending, so
  /// an early all-decided cannot race the injection out of existence —
  /// the crash fires unless the thread leaves its loop first via op
  /// budget or pacer refusal.
  void crash_after(Pid p, std::int64_t ops);

  ProcSet crashed() const;

  /// Blocking: spawns one jthread per process, waits for completion.
  RunStats run(Pacer& pacer, const Options& options);

 private:
  void thread_main(Pid p, Pacer& pacer, const Options& options);

  RtMemory& mem_;
  int n_;
  std::vector<shm::ProcessRuntime> procs_;
  std::vector<std::int64_t> crash_after_;
  std::vector<std::atomic<bool>> done_;
  // Set when a process thread returns from its loop for any reason
  // (op budget, pacer refusal, halt, crash). The monitor treats an
  // exited process as settled, so a run whose threads have all
  // returned ends immediately instead of spinning until max_wall.
  std::vector<std::atomic<bool>> exited_;
  std::atomic<std::uint64_t> crashed_mask_{0};
  std::atomic<std::int64_t> total_ops_{0};
  std::atomic<bool> stop_{false};
};

// ---------------------------------------------------------------------
// WorkStealingPool: the generic task-parallel counterpart of the
// ThreadedExecutor. Where the executor drives one algorithm run across
// process threads, the pool shards an index space of *independent*
// heavy tasks (sweep cells, experiment grid rows) across worker
// threads. [0, n) is split into contiguous per-worker ranges; an owner
// consumes its range from the front, and a worker whose range runs dry
// steals from the back of the victim with the most work left.
//
// The pool is persistent: worker threads spawn once in the constructor
// and park on a condition variable between jobs, so sequential
// for_each calls (the ExperimentRunner's sweep sections) reuse the
// same threads instead of respawning. threads_spawned() exposes the
// lifetime spawn count, jobs_completed() the number of drained jobs —
// together they make the reuse observable in tests.
//
// Chunking: both owners and thieves pop up to `grain` consecutive
// indices per lock acquisition. Heavy cells want grain == 1 (best
// balance); 10^5-cell grids of microsecond cells want larger grains to
// cut steal/lock overhead. Chunking never affects results: every index
// runs exactly once and lands in its own slot.
class WorkStealingPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();
  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int threads() const noexcept { return threads_; }

  /// Worker threads spawned over the pool's lifetime. Constant from
  /// construction on — a persistent pool never respawns.
  std::int64_t threads_spawned() const noexcept {
    return threads_spawned_.load(std::memory_order_acquire);
  }

  /// for_each jobs drained so far.
  std::int64_t jobs_completed() const noexcept {
    return jobs_completed_.load(std::memory_order_acquire);
  }

  /// The calling thread's worker slot in THIS pool, in [0, threads()):
  /// a pool worker reads its spawn index, the submitting thread reads
  /// 0 while it participates in a for_each, and any foreign thread
  /// reads 0. Stable across jobs, so it can index per-worker state
  /// (the ExperimentRunner's per-worker arenas) — two indices running
  /// concurrently in one for_each never observe the same slot.
  std::size_t current_slot() const noexcept;

  /// Runs fn(i) exactly once for every i in [0, n); blocks until all
  /// indices completed. Exceptions thrown by fn are captured per index
  /// and the one with the smallest index is rethrown after every
  /// worker has drained — so propagation is deterministic at any
  /// thread count and no index is silently skipped. `grain` is the
  /// maximum number of consecutive indices claimed per pop (>= 1).
  ///
  /// One parallel submission at a time: the pool has a single job
  /// slot, so concurrent (or nested, from inside fn) parallel
  /// for_each calls on the same pool are a contract violation —
  /// asserted, not silently serialized. Serial fallbacks (one
  /// participant) are reentrancy-safe.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn,
                std::size_t grain = 1);

 private:
  struct Shard {
    util::Mutex m;
    std::int64_t head SETLIB_GUARDED_BY(m) = 0;  // owner pops here
    // Thieves pop here; range is [head, tail).
    std::int64_t tail SETLIB_GUARDED_BY(m) = 0;
  };

  struct Job {
    // fn/errors/grain are written once before the job is published
    // under m_ and read-only afterwards; remaining is the atomic
    // completion count.
    const std::function<void(std::size_t)>* fn = nullptr;
    std::vector<Shard> shards;
    std::vector<std::exception_ptr>* errors = nullptr;
    std::int64_t grain = 1;
    std::atomic<std::int64_t> remaining{0};  // indices not yet executed
  };

  void worker_main(std::size_t self);
  void work(Job& job, std::size_t self);

  // Pool-scoped worker identity: the pool this thread last worked for
  // and its slot there. Scoped to a (pool, slot) pair — not a bare
  // slot — so a worker of pool A that drives a serial for_each on an
  // unrelated pool B still reads slot 0 *for B* instead of smuggling
  // its A-slot out of range.
  static thread_local const WorkStealingPool* tl_pool_;
  static thread_local std::size_t tl_slot_;

  int threads_;
  std::atomic<std::int64_t> threads_spawned_{0};
  std::atomic<std::int64_t> jobs_completed_{0};

  util::Mutex m_;
  util::CondVar work_cv_;  // workers park here between jobs
  util::CondVar done_cv_;  // the submitter waits here
  // Current job (null when idle).
  std::shared_ptr<Job> job_ SETLIB_GUARDED_BY(m_);
  // Bumped per submitted job.
  std::uint64_t job_seq_ SETLIB_GUARDED_BY(m_) = 0;
  // A parallel job is in flight.
  bool busy_ SETLIB_GUARDED_BY(m_) = false;
  bool stopping_ SETLIB_GUARDED_BY(m_) = false;

  std::vector<std::jthread> workers_;  // last: joins before members die
};

}  // namespace setlib::runtime

#endif  // SETLIB_RUNTIME_EXECUTOR_H
