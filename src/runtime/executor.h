// The threaded executor: the same coroutine algorithms the simulator
// runs, driven by real std::jthreads.
//
// Each process thread loops: gate one step through the Pacer, then
// execute one pending register operation of the process's next task
// against the (thread-safe) RtMemory. Crash injection stops a thread
// after a configured number of operations. Thread-owned state keeps the
// algorithm objects race-free: a process's tasks run only on its own
// thread; cross-thread coordination goes through RtMemory registers,
// the Pacer, and the executor's atomics.
#ifndef SETLIB_RUNTIME_EXECUTOR_H
#define SETLIB_RUNTIME_EXECUTOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/pacer.h"
#include "src/runtime/rt_memory.h"
#include "src/shm/process.h"
#include "src/util/procset.h"

namespace setlib::runtime {

class ThreadedExecutor {
 public:
  struct Options {
    /// Per-thread operation budget (safety net against livelock).
    std::int64_t max_ops_per_process = 2'000'000;
    /// Wall-clock cap for the whole run.
    std::chrono::milliseconds max_wall{10'000};
    /// Evaluated by each process's own thread every `poll_every` ops;
    /// when it returns true the process counts as locally done. The
    /// run ends when every non-crashed process is done (or budgets
    /// expire). Must only touch state owned by that process.
    std::function<bool(Pid)> local_done;
    std::int64_t poll_every = 32;
  };

  struct RunStats {
    bool all_done = false;        // every non-crashed process reported done
    bool wall_expired = false;
    std::int64_t total_ops = 0;
    std::chrono::milliseconds elapsed{0};
  };

  ThreadedExecutor(RtMemory& mem, int n);

  shm::ProcessRuntime& process(Pid p);

  /// Crash pid after it has executed `ops` operations.
  void crash_after(Pid p, std::int64_t ops);

  ProcSet crashed() const;

  /// Blocking: spawns one jthread per process, waits for completion.
  RunStats run(Pacer& pacer, const Options& options);

 private:
  void thread_main(Pid p, Pacer& pacer, const Options& options);

  RtMemory& mem_;
  int n_;
  std::vector<shm::ProcessRuntime> procs_;
  std::vector<std::int64_t> crash_after_;
  std::vector<std::atomic<bool>> done_;
  std::atomic<std::uint64_t> crashed_mask_{0};
  std::atomic<std::int64_t> total_ops_{0};
  std::atomic<bool> stop_{false};
};

// ---------------------------------------------------------------------
// WorkStealingPool: the generic task-parallel counterpart of the
// ThreadedExecutor. Where the executor drives one algorithm run across
// process threads, the pool shards an index space of *independent*
// heavy tasks (sweep cells, experiment grid rows) across worker
// threads. [0, n) is split into contiguous per-worker ranges; an owner
// consumes its range from the front, and a worker whose range runs dry
// steals single indices from the back of the victim with the most work
// left. Cells are milliseconds-heavy, so per-shard mutexes are
// uncontended in practice and one-at-a-time stealing balances fine.
class WorkStealingPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit WorkStealingPool(int threads);

  int threads() const noexcept { return threads_; }

  /// Runs fn(i) exactly once for every i in [0, n); blocks until all
  /// indices completed. Exceptions thrown by fn are captured per index
  /// and the one with the smallest index is rethrown after every
  /// worker has drained — so propagation is deterministic at any
  /// thread count and no index is silently skipped.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

 private:
  struct Shard {
    std::mutex m;
    std::int64_t head = 0;  // owner pops here
    std::int64_t tail = 0;  // thieves pop here; range is [head, tail)
  };

  static void worker_loop(std::vector<Shard>& shards, std::size_t self,
                          const std::function<void(std::size_t)>& fn,
                          std::vector<std::exception_ptr>& errors);

  int threads_;
};

}  // namespace setlib::runtime

#endif  // SETLIB_RUNTIME_EXECUTOR_H
