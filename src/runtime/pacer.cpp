#include "src/runtime/pacer.h"

#include "src/util/assert.h"

namespace setlib::runtime {

Pacer::Pacer(int n, std::vector<sched::TimelinessConstraint> constraints,
             bool record_schedule)
    : n_(n), active_(ProcSet::universe(n)), record_(record_schedule) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  const ProcSet universe = ProcSet::universe(n);
  for (const auto& c : constraints) {
    SETLIB_EXPECTS(c.bound >= 1);
    SETLIB_EXPECTS(!c.timely_set.empty());
    SETLIB_EXPECTS(c.timely_set.subset_of(universe));
    SETLIB_EXPECTS(c.observed_set.subset_of(universe));
    states_.push_back(State{c, 0, false});
  }
}

bool Pacer::allowed_locked(Pid pid) const {
  for (const auto& st : states_) {
    if (st.dropped) continue;
    const bool in_q = st.c.observed_set.contains(pid);
    const bool in_p = st.c.timely_set.contains(pid);
    if (in_q && !in_p && st.q_steps_since_p >= st.c.bound - 1) {
      return false;
    }
  }
  return true;
}

void Pacer::apply_locked(Pid pid) {
  for (auto& st : states_) {
    if (st.dropped) continue;
    if (st.c.timely_set.contains(pid)) {
      st.q_steps_since_p = 0;
    } else if (st.c.observed_set.contains(pid)) {
      ++st.q_steps_since_p;
    }
  }
  ++steps_;
  if (record_) log_.push_back(pid);
}

bool Pacer::step(Pid pid) {
  SETLIB_EXPECTS(pid >= 0 && pid < n_);
  const util::MutexLock lock(mu_);
  while (!stop_ && !allowed_locked(pid)) cv_.wait(mu_);
  if (stop_) return false;
  apply_locked(pid);
  // A step by a P member unblocks Q waiters; wake them.
  cv_.notify_all();
  return true;
}

void Pacer::deactivate(Pid pid) {
  SETLIB_EXPECTS(pid >= 0 && pid < n_);
  const util::MutexLock lock(mu_);
  active_ = active_.without(pid);
  // Constraints whose timely set has fully deactivated can never be
  // satisfied again; drop them so waiters are not stranded. Teardown
  // deactivations (after request_stop) are not counted: at that point
  // the run is over and the drop is bookkeeping, not a violation.
  for (auto& st : states_) {
    if (st.dropped || !(st.c.timely_set & active_).empty()) continue;
    st.dropped = true;
    if (!stop_) {
      ++dropped_;
      if (!first_drop_step_) first_drop_step_ = steps_;
    }
  }
  cv_.notify_all();
}

void Pacer::request_stop() {
  const util::MutexLock lock(mu_);
  stop_ = true;
  cv_.notify_all();
}

bool Pacer::stopped() const {
  const util::MutexLock lock(mu_);
  return stop_;
}

std::int64_t Pacer::steps_taken() const {
  const util::MutexLock lock(mu_);
  return steps_;
}

std::int64_t Pacer::dropped_constraints() const {
  const util::MutexLock lock(mu_);
  return dropped_;
}

std::optional<std::int64_t> Pacer::first_drop_step() const {
  const util::MutexLock lock(mu_);
  return first_drop_step_;
}

sched::Schedule Pacer::recorded_schedule() const {
  const util::MutexLock lock(mu_);
  return sched::Schedule(n_, log_);
}

}  // namespace setlib::runtime
