#include "src/runtime/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/util/assert.h"

extern char** environ;  // POSIX: may not be declared by any header

namespace setlib::runtime {

namespace {

/// Closes fd if it is still open and marks it closed.
void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Drains whatever is ready on fd into out; returns false on EOF.
bool drain(int fd, std::string& out) {
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got > 0) {
      out.append(buf, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // read error: treat as EOF
  }
}

}  // namespace

std::string SubprocessResult::describe() const {
  char buf[64];
  if (!started) return "failed to start";
  if (timed_out) {
    std::snprintf(buf, sizeof buf, "timed out after %.2f s",
                  wall_seconds);
    return buf;
  }
  if (term_signal != 0) {
    std::snprintf(buf, sizeof buf, "killed by signal %d", term_signal);
    return buf;
  }
  if (exited) {
    std::snprintf(buf, sizeof buf, "exit %d", exit_code);
    return buf;
  }
  return "unknown outcome";
}

SubprocessResult Subprocess::run(const std::vector<std::string>& argv,
                                 const Options& options) {
  SETLIB_EXPECTS(!argv.empty());
  SubprocessResult result;
  const auto start = std::chrono::steady_clock::now();

  // O_CLOEXEC atomically: the orchestrator forks from several worker
  // threads concurrently, and a sibling's child exec'ing between our
  // pipe() and the parent-side closes would otherwise inherit our
  // write ends and hold off EOF for its whole lifetime. The child's
  // dup2 copies onto stdout/stderr drop the flag, which is exactly
  // what exec should inherit.
  int out_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  if (::pipe2(out_pipe, O_CLOEXEC) != 0) return result;
  if (::pipe2(err_pipe, O_CLOEXEC) != 0) {
    close_fd(out_pipe[0]);
    close_fd(out_pipe[1]);
    return result;
  }

  // Built before fork: the parent is multithreaded (the orchestrator
  // forks from several worker jthreads), so the child may only make
  // async-signal-safe calls — no allocation, no strerror.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);
  // Likewise the environment: inherited block first, extras appended
  // (the strings outlive the child's exec window — argv/options are
  // the caller's, environ is the process's).
  std::vector<char*> cenvp;
  if (!options.env.empty()) {
    for (char** e = ::environ; *e != nullptr; ++e) cenvp.push_back(*e);
    for (const std::string& entry : options.env) {
      cenvp.push_back(const_cast<char*>(entry.c_str()));
    }
    cenvp.push_back(nullptr);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    close_fd(out_pipe[0]);
    close_fd(out_pipe[1]);
    close_fd(err_pipe[0]);
    close_fd(err_pipe[1]);
    return result;
  }

  if (pid == 0) {
    // Child: own process group (so a timeout can kill the whole tree,
    // not just the immediate child), pipes to stdout/stderr, exec.
    // Only async-signal-safe calls from here to exec.
    ::setpgid(0, 0);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    if (cenvp.empty()) {
      ::execvp(cargv[0], cargv.data());
    } else {
      ::execvpe(cargv[0], cargv.data(), cenvp.data());
    }
    const char* prefix = "exec failed: errno ";
    char digits[16];  // decimal errno, least-significant first
    int len = 0;
    int e = errno;
    if (e <= 0) digits[len++] = '0';
    while (e > 0 && len < 15) {
      digits[len++] = static_cast<char>('0' + e % 10);
      e /= 10;
    }
    (void)!::write(STDERR_FILENO, prefix, ::strlen(prefix));
    for (int d = len - 1; d >= 0; --d) {
      (void)!::write(STDERR_FILENO, &digits[d], 1);
    }
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  // Parent. The mirrored setpgid closes the fork/exec race: whichever
  // side runs first, the group exists before any kill.
  ::setpgid(pid, pid);
  result.started = true;
  close_fd(out_pipe[1]);
  close_fd(err_pipe[1]);
  ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(err_pipe[0], F_SETFL, O_NONBLOCK);

  const bool limited = options.timeout.count() > 0;
  const auto deadline = start + options.timeout;
  // Pipe EOF alone cannot terminate the loop: a grandchild that
  // inherited the write ends (and escaped a group kill, or simply
  // outlives a worker that forked it) would hold them open forever.
  // Once the direct child is reaped — or killed — draining gets a
  // short grace deadline instead of trusting EOF.
  auto drain_deadline = std::chrono::steady_clock::time_point::max();
  const auto grace = std::chrono::milliseconds(2'000);
  bool killed = false;
  bool reaped = false;
  int status = 0;
  int open_ends = 2;
  while (open_ends > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    struct pollfd fds[2];
    nfds_t nfds = 0;
    for (const int fd : {out_pipe[0], err_pipe[0]}) {
      if (fd >= 0) {
        fds[nfds].fd = fd;
        fds[nfds].events = POLLIN;
        fds[nfds].revents = 0;
        ++nfds;
      }
    }
    int wait_ms = 200;  // re-check the deadline periodically
    if (limited && !killed && !reaped) {
      // Only while the deadline can still fire — after a reap the
      // remaining drain is bounded by drain_deadline, and clamping a
      // negative "time left" to 0 would busy-poll it.
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      wait_ms = std::clamp<int>(static_cast<int>(left.count()), 0, 200);
    }
    const int ready = ::poll(fds, nfds, wait_ms);
    if (ready < 0 && errno != EINTR) break;
    if (out_pipe[0] >= 0 && !drain(out_pipe[0], result.out)) {
      close_fd(out_pipe[0]);
      --open_ends;
    }
    if (err_pipe[0] >= 0 && !drain(err_pipe[0], result.err)) {
      close_fd(err_pipe[0]);
      --open_ends;
    }
    // The timeout targets the direct child; once it has been reaped
    // its (group) id may be recycled, so never signal it then — the
    // reap already bounded the remaining drain time.
    if (limited && !killed && !reaped &&
        std::chrono::steady_clock::now() >= deadline) {
      // The whole process group: `sh -c "..."` children spawn their
      // own subprocesses, and those inherit the pipes — killing only
      // the shell would leave the orchestrated bench running and the
      // pipes open.
      if (::kill(-pid, SIGKILL) != 0) ::kill(pid, SIGKILL);
      killed = true;
      result.timed_out = true;
      // Keep draining briefly: the pipes reach EOF once the group is
      // gone.
      drain_deadline = std::chrono::steady_clock::now() + grace;
    }
    if (!reaped && ::waitpid(pid, &status, WNOHANG) == pid) {
      reaped = true;
      const auto cutoff = std::chrono::steady_clock::now() + grace;
      if (cutoff < drain_deadline) drain_deadline = cutoff;
    }
  }
  close_fd(out_pipe[0]);
  close_fd(err_pipe[0]);

  if (!reaped && limited && !killed) {
    // Pipe EOF can precede child exit (the child closed or redirected
    // its std fds and kept running): the deadline must keep applying
    // while reaping, or --timeout would never fire for such a child.
    for (;;) {
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        reaped = true;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        if (::kill(-pid, SIGKILL) != 0) ::kill(pid, SIGKILL);
        killed = true;
        result.timed_out = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  if (!reaped) {
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.wall_seconds = elapsed.count();
  return result;
}

}  // namespace setlib::runtime
