// High-level threaded harness: the full Theorem 24 stack (Figure 2
// detector + k Paxos instances) on real threads, mirroring
// core::run_agreement for the real-time runtime.
#ifndef SETLIB_RUNTIME_RT_HARNESS_H
#define SETLIB_RUNTIME_RT_HARNESS_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/util/procset.h"

namespace setlib::runtime {

struct RtRunConfig {
  int n = 4;
  int k = 1;
  int t = 1;

  /// Pacer constraint: first k pids timely w.r.t. first t+1 pids.
  std::int64_t bound = 4;

  /// Crash the last crash_count pids after each has executed crash_ops
  /// operations (0 = crash immediately). Crashes are deterministic:
  /// the executor never ends a run while one is still pending.
  int crash_count = 0;
  std::int64_t crash_ops = 0;

  /// Explicit (pid, after-ops) crash injections; when non-empty this
  /// overrides crash_count/crash_ops and may crash any pid — including
  /// pacer timely-set members, which drops the constraint mid-run (see
  /// RtRunReport::pacer_steps for how the stats respond).
  std::vector<std::pair<Pid, std::int64_t>> crashes;

  std::int64_t max_ops_per_process = 500'000;
  std::chrono::milliseconds max_wall{5000};
  std::vector<std::int64_t> proposals;  // default 100 + p
};

struct RtRunReport {
  bool all_done = false;
  bool success = false;  // agreement + validity + termination
  int distinct_decisions = 0;
  std::vector<std::optional<std::int64_t>> decisions;
  ProcSet faulty;

  /// Paced steps: the serialized step count of the era in which every
  /// constraint was still enforced. When a crash kills a constraint's
  /// whole timely set (possibly before the crashed thread ever reached
  /// the pacer), later steps run unpaced, so pacer_steps — and the
  /// witness_bound measured below — cover only the pre-crash prefix
  /// instead of passing off an unpaced run as a paced one.
  std::int64_t pacer_steps = 0;
  std::int64_t dropped_constraints = 0;
  std::int64_t witness_bound = 0;  // measured on the paced prefix
  std::chrono::milliseconds elapsed{0};
  bool detector_stabilized = false;
  bool detector_abstract_ok = false;
  std::string detail;
};

RtRunReport run_kset_threaded(const RtRunConfig& cfg);

}  // namespace setlib::runtime

#endif  // SETLIB_RUNTIME_RT_HARNESS_H
