#include "src/runtime/transport.h"

#include <cstdio>

#include "src/util/assert.h"

namespace setlib::runtime {

SubprocessResult LocalExecTransport::run(
    const TransportCommand& command) {
  SETLIB_EXPECTS(!command.argv.empty());
  Subprocess::Options options;
  options.timeout = command.timeout;
  options.env = command.env;
  return Subprocess::run(command.argv, options);
}

ChaosKillTransport::ChaosKillTransport(Transport& inner, int kill_nth,
                                       std::chrono::milliseconds delay)
    : inner_(inner), kill_nth_(kill_nth), delay_(delay) {
  SETLIB_EXPECTS(kill_nth >= 0);
  SETLIB_EXPECTS(delay.count() >= 0);
}

SubprocessResult ChaosKillTransport::run(
    const TransportCommand& command) {
  const int launch = launches_.fetch_add(1) + 1;
  if (kill_nth_ == 0 || launch != kill_nth_) {
    return inner_.run(command);
  }
  kills_.fetch_add(1);
  // Re-shape the command so the worker runs under a killer shell: the
  // worker starts normally, and `delay` later the shell SIGKILLs it.
  // Expressing the sabotage as an argv rewrite keeps the decorator
  // transport-agnostic — the same wrapper would kill a worker started
  // over ssh. (If the worker finishes before the kill fires, the
  // launch simply succeeds; chaos tests that must observe a death use
  // delay 0, which kills the worker as it starts.)
  char delay_text[32];
  std::snprintf(delay_text, sizeof delay_text, "%.3f",
                static_cast<double>(delay_.count()) / 1000.0);
  TransportCommand sabotaged = command;
  sabotaged.argv = {"/bin/sh", "-c",
                    "\"$@\" & c=$!; sleep " + std::string(delay_text) +
                        "; kill -9 $c 2>/dev/null; wait $c",
                    "chaos"};
  sabotaged.argv.insert(sabotaged.argv.end(), command.argv.begin(),
                        command.argv.end());
  return inner_.run(sabotaged);
}

std::string ChaosKillTransport::describe() const {
  return inner_.describe() + "+chaos-kill";
}

}  // namespace setlib::runtime
