// The pacer: set-timeliness enforcement on live threads.
//
// The threaded runtime cannot choose the schedule — the OS does — so
// timeliness is enforced with a gate instead: every process thread
// calls step(pid) before each register operation. For each configured
// constraint (P timely w.r.t. Q, bound b), a thread in Q \ P is blocked
// (condition-variable wait with predicate, CP.42) whenever b - 1 steps
// of Q have already passed since the last P step; it resumes once a P
// member steps. The pacer's serialization order (its internal step
// log, optional) is the schedule the analyzer checks.
//
// Liveness guards: if every member of some constraint's P has
// deactivated (crashed/finished), the constraint is dropped (counted),
// and request_stop() releases all waiters.
#ifndef SETLIB_RUNTIME_PACER_H
#define SETLIB_RUNTIME_PACER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sched/enforcer.h"
#include "src/sched/schedule.h"
#include "src/util/procset.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace setlib::runtime {

class Pacer {
 public:
  /// `record_schedule`: keep the serialized step log (costs memory
  /// proportional to the run; on for experiments, off for benches).
  Pacer(int n, std::vector<sched::TimelinessConstraint> constraints,
        bool record_schedule = true);

  /// Gate one step of `pid`. Blocks while any constraint forbids it.
  /// Returns false if the pacer was stopped while waiting.
  bool step(Pid pid);

  /// The thread of `pid` will take no further steps (crash or finish);
  /// waiting threads blocked on pid's set are re-evaluated.
  void deactivate(Pid pid);

  /// Release all waiters and make further step() calls return false.
  void request_stop();
  bool stopped() const;

  std::int64_t steps_taken() const;
  std::int64_t dropped_constraints() const;

  /// Serialized step index at which the first constraint was dropped
  /// (its timely set fully deactivated mid-run). Steps at or past this
  /// index are unpaced — no timeliness is being enforced for that
  /// constraint — so paced-run statistics must cut here. Teardown
  /// drops (after request_stop) are not recorded, matching
  /// dropped_constraints. nullopt while every constraint is live.
  std::optional<std::int64_t> first_drop_step() const;

  /// The serialized schedule (requires record_schedule; empty
  /// otherwise). Call after threads have quiesced.
  sched::Schedule recorded_schedule() const;

 private:
  bool allowed_locked(Pid pid) const SETLIB_REQUIRES(mu_);
  void apply_locked(Pid pid) SETLIB_REQUIRES(mu_);

  struct State {
    sched::TimelinessConstraint c;
    std::int64_t q_steps_since_p = 0;
    bool dropped = false;
  };

  const int n_;
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::vector<State> states_ SETLIB_GUARDED_BY(mu_);
  ProcSet active_ SETLIB_GUARDED_BY(mu_);
  bool stop_ SETLIB_GUARDED_BY(mu_) = false;
  std::int64_t steps_ SETLIB_GUARDED_BY(mu_) = 0;
  std::int64_t dropped_ SETLIB_GUARDED_BY(mu_) = 0;
  std::optional<std::int64_t> first_drop_step_ SETLIB_GUARDED_BY(mu_);
  const bool record_;  // set at construction, immutable afterwards
  std::vector<Pid> log_ SETLIB_GUARDED_BY(mu_);
};

}  // namespace setlib::runtime

#endif  // SETLIB_RUNTIME_PACER_H
