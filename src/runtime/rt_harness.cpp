#include "src/runtime/rt_harness.h"

#include <algorithm>
#include <sstream>

#include "src/agreement/kset.h"
#include "src/agreement/validator.h"
#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/runtime/executor.h"
#include "src/runtime/pacer.h"
#include "src/runtime/rt_memory.h"
#include "src/sched/analyzer.h"
#include "src/util/assert.h"

namespace setlib::runtime {

RtRunReport run_kset_threaded(const RtRunConfig& cfg) {
  SETLIB_EXPECTS(cfg.n >= 2 && cfg.n <= kMaxProcs);
  SETLIB_EXPECTS(cfg.k >= 1 && cfg.k <= cfg.n - 1);
  SETLIB_EXPECTS(cfg.t >= 1 && cfg.t <= cfg.n - 1);
  SETLIB_EXPECTS(cfg.k <= cfg.t);
  SETLIB_EXPECTS(cfg.crash_count >= 0 && cfg.crash_count <= cfg.t);
  // The pacer's timely set (first k pids) must stay alive under the
  // tail-crash pattern; explicit injections may crash anyone but must
  // leave at least one process running.
  SETLIB_EXPECTS(cfg.crash_count <= cfg.n - cfg.k);
  SETLIB_EXPECTS(cfg.crashes.size() < static_cast<std::size_t>(cfg.n));

  const int n = cfg.n;
  std::vector<std::int64_t> proposals = cfg.proposals;
  if (proposals.empty()) {
    for (Pid p = 0; p < n; ++p) proposals.push_back(100 + p);
  }
  SETLIB_EXPECTS(proposals.size() == static_cast<std::size_t>(n));

  RtMemory mem;
  fd::KAntiOmega detector(mem,
                          fd::KAntiOmega::Params{n, cfg.k, cfg.t, 1});
  agreement::KSetAgreement kset(
      mem, agreement::KSetAgreement::Params{n, cfg.k, cfg.t}, &detector);

  ThreadedExecutor executor(mem, n);
  for (Pid p = 0; p < n; ++p) {
    executor.process(p).add_task(detector.run(p), "kanti-omega");
    kset.install(executor.process(p), p,
                 proposals[static_cast<std::size_t>(p)]);
  }
  if (!cfg.crashes.empty()) {
    for (const auto& [pid, ops] : cfg.crashes) {
      executor.crash_after(pid, ops);
    }
  } else {
    for (int c = 0; c < cfg.crash_count; ++c) {
      executor.crash_after(n - 1 - c, cfg.crash_ops);
    }
  }

  const ProcSet p_set = ProcSet::range(0, cfg.k);
  const ProcSet q_set = ProcSet::range(0, std::min(cfg.t + 1, n));
  std::vector<sched::TimelinessConstraint> constraints;
  constraints.emplace_back(p_set, q_set, cfg.bound);
  Pacer pacer(n, std::move(constraints), /*record_schedule=*/true);

  ThreadedExecutor::Options options;
  options.max_ops_per_process = cfg.max_ops_per_process;
  options.max_wall = cfg.max_wall;
  options.local_done = [&kset](Pid p) { return kset.decided(p); };
  const auto stats = executor.run(pacer, options);

  RtRunReport report;
  report.all_done = stats.all_done;
  report.elapsed = stats.elapsed;
  report.faulty = executor.crashed();
  report.dropped_constraints = pacer.dropped_constraints();
  // A dropped constraint means its whole timely set crashed (possibly
  // before ever reaching the pacer): from that serialized step on, no
  // timeliness was enforced, so the paced-run stats cut at the drop —
  // otherwise a run whose pacing died at step 0 would report the
  // entire unpaced tail as pacer_steps and measure a meaningless
  // (divergent) witness bound on it.
  const std::optional<std::int64_t> drop = pacer.first_drop_step();
  report.pacer_steps = drop.value_or(pacer.steps_taken());

  report.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  for (Pid p = 0; p < n; ++p) {
    if (kset.decided(p)) {
      report.decisions[static_cast<std::size_t>(p)] = kset.outcome(p).value;
    }
  }
  const auto verdict = agreement::validate_agreement(
      cfg.t, cfg.k, n, proposals, report.decisions, report.faulty);
  report.success = verdict.ok;
  report.distinct_decisions = verdict.distinct_values;

  const ProcSet correct = report.faulty.complement(n);
  const auto prop = fd::check_kantiomega(detector, correct, /*window=*/4);
  report.detector_stabilized = prop.stabilized;
  report.detector_abstract_ok = prop.abstract_ok;

  const sched::Schedule schedule = pacer.recorded_schedule();
  const std::int64_t paced =
      std::min<std::int64_t>(report.pacer_steps, schedule.size());
  report.witness_bound =
      paced == 0 ? 0
                 : sched::min_timeliness_bound(schedule, p_set, q_set, 0,
                                               paced);
  std::ostringstream os;
  os << verdict.detail << " pacer_steps=" << report.pacer_steps
     << " witness_bound=" << report.witness_bound
     << " elapsed_ms=" << report.elapsed.count();
  report.detail = os.str();
  return report;
}

}  // namespace setlib::runtime
