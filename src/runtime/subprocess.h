// A small POSIX subprocess wrapper for the shard orchestrator.
//
// run() forks, execs argv, and captures the child's stdout and stderr
// through pipes while enforcing an optional wall-clock timeout. A
// child that outlives the timeout is killed (SIGKILL) and reported as
// timed out; a child that dies on a signal reports the signal. The
// wrapper is deliberately synchronous — the orchestrator runs one
// blocking run() per worker thread, which is exactly the concurrency
// model a process-per-shard driver wants.
#ifndef SETLIB_RUNTIME_SUBPROCESS_H
#define SETLIB_RUNTIME_SUBPROCESS_H

#include <chrono>
#include <string>
#include <vector>

namespace setlib::runtime {

struct SubprocessResult {
  bool started = false;    // fork/pipe succeeded and the child ran
  bool exited = false;     // child exited normally
  int exit_code = -1;      // valid when exited
  int term_signal = 0;     // nonzero when the child died on a signal
  bool timed_out = false;  // killed by the timeout
  std::string out;         // captured stdout
  std::string err;         // captured stderr
  double wall_seconds = 0.0;

  /// The child ran to completion and reported success.
  bool ok() const noexcept {
    return started && exited && exit_code == 0 && !timed_out;
  }

  /// One-line human description: "exit 0", "exit 3",
  /// "killed by signal 9", "timed out after 1.50 s", ...
  std::string describe() const;
};

struct SubprocessOptions {
  /// Wall-clock budget for the child; zero means no limit.
  std::chrono::milliseconds timeout = std::chrono::milliseconds(0);
  /// Extra KEY=VALUE entries appended to the inherited environment
  /// (later entries win over inherited ones, per execvpe semantics of
  /// duplicate keys: the first match in the array is what getenv
  /// sees — extras are appended after the inherited block, so an
  /// inherited key shadows a same-named extra; pass unique keys).
  std::vector<std::string> env;
};

class Subprocess {
 public:
  using Options = SubprocessOptions;

  /// Runs argv[0] with arguments argv[1..] (PATH-resolved), blocking
  /// until the child exits or the timeout kills it. argv must be
  /// non-empty. An exec failure surfaces as exit code 127 with the
  /// reason on captured stderr.
  static SubprocessResult run(
      const std::vector<std::string>& argv,
      const SubprocessOptions& options = SubprocessOptions());
};

}  // namespace setlib::runtime

#endif  // SETLIB_RUNTIME_SUBPROCESS_H
