#include "src/runtime/rt_memory.h"

#include "src/util/assert.h"

namespace setlib::runtime {

shm::RegisterId RtMemory::alloc(std::string name) {
  SETLIB_EXPECTS(!frozen());
  cells_.push_back(std::make_unique<Cell>());
  names_.push_back(std::move(name));
  return static_cast<shm::RegisterId>(cells_.size()) - 1;
}

shm::Value RtMemory::read(shm::RegisterId reg) {
  SETLIB_EXPECTS(reg >= 0 && reg < register_count());
  Cell& cell = *cells_[static_cast<std::size_t>(reg)];
  reads_.fetch_add(1, std::memory_order_relaxed);
  const util::MutexLock lock(cell.mu);
  return cell.value;
}

void RtMemory::write(shm::RegisterId reg, shm::Value v) {
  SETLIB_EXPECTS(reg >= 0 && reg < register_count());
  Cell& cell = *cells_[static_cast<std::size_t>(reg)];
  writes_.fetch_add(1, std::memory_order_relaxed);
  const util::MutexLock lock(cell.mu);
  cell.value = std::move(v);
}

std::int64_t RtMemory::register_count() const {
  return static_cast<std::int64_t>(cells_.size());
}

const std::string& RtMemory::name(shm::RegisterId reg) const {
  SETLIB_EXPECTS(reg >= 0 && reg < register_count());
  return names_[static_cast<std::size_t>(reg)];
}

}  // namespace setlib::runtime
