// The transport seam of the orchestration subsystem: how an
// orchestrator launches a worker command somewhere and gets its
// stdout/stderr/exit status back.
//
// Orchestrator code (core::orchestrate, core::orchestrate_elastic,
// tools/sweep_orchestrator) never touches runtime::Subprocess — or
// fork — directly; it hands a TransportCommand (argv + extra env +
// wall budget) to a Transport and receives a SubprocessResult. Today
// the only production transport is LocalExecTransport, a thin wrapper
// over runtime::Subprocess, but the interface is shaped so an
// ssh-style remote transport is a drop-in: everything a worker needs
// travels in the command (the bench path, the `--cells=LO..HI` lease,
// the `--json=` output path), and everything the orchestrator needs
// comes back in the result. A remote transport would run the same
// argv on another host and ship the JSON document home; nothing above
// this seam would change (see docs/ORCHESTRATION.md for the sketch).
//
// ChaosKillTransport is the fault-injection decorator used by the
// chaos tests and the CI elastic-orchestration job: it forwards to an
// inner transport but SIGKILLs selected launches mid-run, simulating
// the dead worker the lease protocol must survive.
#ifndef SETLIB_RUNTIME_TRANSPORT_H
#define SETLIB_RUNTIME_TRANSPORT_H

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "src/runtime/subprocess.h"

namespace setlib::runtime {

/// Everything needed to run one worker, transport-agnostic.
struct TransportCommand {
  /// argv[0] is the worker binary (PATH-resolved by the transport).
  std::vector<std::string> argv;
  /// Extra KEY=VALUE environment entries appended to the transport's
  /// inherited environment (e.g. SETLIB_LEASE=<id> so a worker can
  /// label its logs).
  std::vector<std::string> env;
  /// Wall-clock budget; zero means no limit. A worker that outlives
  /// it is killed and reported timed_out.
  std::chrono::milliseconds timeout{0};
};

/// Launches worker commands and collects their outcome. Thread-safe:
/// the orchestrator calls run() concurrently from its worker threads,
/// one blocking call per in-flight worker.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Runs the command to completion (or timeout). Never throws on
  /// worker failure — the result carries the outcome.
  virtual SubprocessResult run(const TransportCommand& command) = 0;

  /// Short human label ("local", "ssh host", ...) for reports.
  virtual std::string describe() const = 0;
};

/// The production transport: fork/exec on this host via
/// runtime::Subprocess.
class LocalExecTransport final : public Transport {
 public:
  SubprocessResult run(const TransportCommand& command) override;
  std::string describe() const override { return "local"; }
};

/// Fault-injection decorator: forwards every launch to the inner
/// transport, but the kill_nth-th launch (1-based; 0 disables) is
/// wrapped so the worker is SIGKILLed `delay` after it starts —
/// a worker dying mid-run, as seen from the orchestrator. Subsequent
/// launches pass through untouched.
class ChaosKillTransport final : public Transport {
 public:
  ChaosKillTransport(Transport& inner, int kill_nth,
                     std::chrono::milliseconds delay);

  SubprocessResult run(const TransportCommand& command) override;
  std::string describe() const override;

  /// How many launches were sabotaged so far (0 or 1).
  int kills() const noexcept { return kills_.load(); }

 private:
  Transport& inner_;
  const int kill_nth_;
  const std::chrono::milliseconds delay_;
  std::atomic<int> launches_{0};
  std::atomic<int> kills_{0};
};

}  // namespace setlib::runtime

#endif  // SETLIB_RUNTIME_TRANSPORT_H
