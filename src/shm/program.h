// Process programs as C++20 coroutines.
//
// An algorithm's per-process code is written as a coroutine returning
// Prog. Each `co_await shm::read(reg)` / `co_await shm::write(reg, v)`
// suspends the coroutine with a pending operation request; an executor
// (the deterministic Simulator or the threaded runtime) performs the
// request against an IMemory and resumes. One scheduled step = exactly
// one register operation plus the local computation up to the next
// request — matching the model, where a step is a read or write plus a
// state transition, and local computation is free.
//
// Algorithms therefore read like the paper's pseudocode:
//
//   shm::Prog heartbeat_loop(shm::RegisterId hb) {
//     for (std::int64_t v = 1;; ++v) {
//       co_await shm::write(hb, shm::Value::of(v));
//     }
//   }
#ifndef SETLIB_SHM_PROGRAM_H
#define SETLIB_SHM_PROGRAM_H

#include <coroutine>
#include <exception>
#include <utility>

#include "src/shm/memory.h"
#include "src/shm/value.h"
#include "src/util/assert.h"

namespace setlib::shm {

/// A pending register operation posted by a suspended program.
struct OpRequest {
  enum class Kind { kNone, kRead, kWrite };

  Kind kind = Kind::kNone;
  RegisterId reg = -1;
  Value to_write;        // kWrite payload
  Value* read_sink = nullptr;  // kRead destination (inside the awaiter)
};

/// Owning handle to a per-process program coroutine.
class Prog {
 public:
  struct promise_type {
    Prog get_return_object() {
      return Prog(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }

    OpRequest pending;
    std::exception_ptr exception;
  };

  using Handle = std::coroutine_handle<promise_type>;

  Prog() noexcept = default;
  explicit Prog(Handle h) noexcept : h_(h) {}
  Prog(Prog&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Prog& operator=(Prog&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Prog(const Prog&) = delete;
  Prog& operator=(const Prog&) = delete;
  ~Prog() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const {
    SETLIB_EXPECTS(valid());
    return h_.done();
  }

  /// Resume until the next suspension point; rethrows any exception the
  /// program body raised.
  void resume() {
    SETLIB_EXPECTS(valid() && !h_.done());
    h_.resume();
    if (h_.promise().exception) {
      std::rethrow_exception(std::exchange(h_.promise().exception, nullptr));
    }
  }

  OpRequest& pending() {
    SETLIB_EXPECTS(valid());
    return h_.promise().pending;
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  Handle h_;
};

/// Awaitable returned by shm::read().
struct ReadOp {
  RegisterId reg;
  Value result;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Prog::promise_type> h) noexcept {
    h.promise().pending =
        OpRequest{OpRequest::Kind::kRead, reg, Value(), &result};
  }
  Value await_resume() noexcept { return std::move(result); }
};

/// Awaitable returned by shm::write().
struct WriteOp {
  RegisterId reg;
  Value value;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Prog::promise_type> h) noexcept {
    h.promise().pending = OpRequest{OpRequest::Kind::kWrite, reg,
                                    std::move(value), nullptr};
  }
  void await_resume() const noexcept {}
};

/// One read step: `Value v = co_await shm::read(reg);`
inline ReadOp read(RegisterId reg) { return ReadOp{reg, Value()}; }

/// One write step: `co_await shm::write(reg, v);`
inline WriteOp write(RegisterId reg, Value v) {
  return WriteOp{reg, std::move(v)};
}

}  // namespace setlib::shm

/// Run a child Prog to completion inside an enclosing Prog coroutine,
/// forwarding each of the child's register operations as one of the
/// parent's own steps (so step accounting is 1:1 with the model). Usage,
/// inside a coroutine body only:
///
///   SETLIB_CO_RUN(safe_agreement.propose(me, value));
///
/// This is a macro because the forwarding loop must `co_await` in the
/// parent's context, which a function cannot do on the parent's behalf.
#define SETLIB_CO_RUN(prog_expr)                                             \
  do {                                                                       \
    ::setlib::shm::Prog setlib_co_child = (prog_expr);                       \
    setlib_co_child.resume();                                                \
    while (!setlib_co_child.done()) {                                        \
      ::setlib::shm::OpRequest& setlib_co_req = setlib_co_child.pending();   \
      if (setlib_co_req.kind == ::setlib::shm::OpRequest::Kind::kRead) {     \
        *setlib_co_req.read_sink =                                           \
            co_await ::setlib::shm::read(setlib_co_req.reg);                 \
      } else {                                                               \
        co_await ::setlib::shm::write(setlib_co_req.reg,                     \
                                      std::move(setlib_co_req.to_write));    \
      }                                                                      \
      setlib_co_req = ::setlib::shm::OpRequest{};                            \
      setlib_co_child.resume();                                              \
    }                                                                        \
  } while (false)

#endif  // SETLIB_SHM_PROGRAM_H
