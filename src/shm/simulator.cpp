#include "src/shm/simulator.h"

#include "src/util/assert.h"

namespace setlib::shm {

Simulator::Simulator(IMemory& mem, int n)
    : mem_(mem), n_(n), executed_(n) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  procs_.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) procs_.emplace_back(p);
  plan_crash_steps_.assign(static_cast<std::size_t>(n),
                           sched::CrashPlan::kNever);
}

ProcessRuntime& Simulator::process(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return procs_[static_cast<std::size_t>(p)];
}

void Simulator::crash(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  crashed_ = crashed_.with(p);
  if (feed_ != nullptr) feed_->record_crash(p);
}

bool Simulator::crashed(Pid p) const {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return crashed_.contains(p);
}

void Simulator::use_crash_plan(const sched::CrashPlan& plan) {
  SETLIB_EXPECTS(plan.n() == n_);
  for (Pid p = 0; p < n_; ++p) {
    plan_crash_steps_[static_cast<std::size_t>(p)] = plan.crash_step(p);
  }
}

void Simulator::use_crash_source(std::function<ProcSet()> source) {
  crash_source_ = std::move(source);
}

void Simulator::publish_observations(sched::ObservationFeed* feed) {
  SETLIB_EXPECTS(feed == nullptr || feed->n() == n_);
  feed_ = feed;
}

void Simulator::maybe_crash_per_source() {
  if (!crash_source_) return;
  const ProcSet requested = crash_source_() - crashed_;
  requested.for_each([this](Pid p) { crash(p); });
}

bool Simulator::maybe_crash_per_plan() {
  bool any = false;
  const std::int64_t now = steps_taken();
  for (Pid p = 0; p < n_; ++p) {
    if (!crashed_.contains(p) &&
        plan_crash_steps_[static_cast<std::size_t>(p)] <= now) {
      crash(p);
      any = true;
    }
  }
  return any;
}

bool Simulator::execute(Pid p) {
  SETLIB_EXPECTS(p >= 0 && p < n_);
  if (crashed_.contains(p)) return false;
  procs_[static_cast<std::size_t>(p)].step(mem_);
  executed_.append(p);
  if (feed_ != nullptr) feed_->record_step(p);
  return true;
}

void Simulator::step_once(Pid p) {
  maybe_crash_per_plan();
  execute(p);
}

std::int64_t Simulator::run(sched::ScheduleGenerator& gen,
                            std::int64_t steps) {
  return run_until(gen, steps, [] { return false; });
}

std::int64_t Simulator::run_until(sched::ScheduleGenerator& gen,
                                  std::int64_t max_steps,
                                  const std::function<bool()>& stop,
                                  std::int64_t check_every) {
  SETLIB_EXPECTS(gen.n() == n_);
  SETLIB_EXPECTS(max_steps >= 0);
  SETLIB_EXPECTS(check_every >= 1);
  std::int64_t executed = 0;
  // A pull landing on a crashed process is skipped without executing;
  // cap total pulls so a generator that only schedules crashed pids
  // cannot livelock the run.
  std::int64_t pulls = 0;
  const std::int64_t max_pulls = 16 * max_steps + 1024;
  while (executed < max_steps && pulls < max_pulls) {
    maybe_crash_per_plan();
    maybe_crash_per_source();
    if (crashed_.size() == n_) break;
    const Pid p = gen.next();
    ++pulls;
    if (!execute(p)) continue;
    ++executed;
    if (executed % check_every == 0 && stop()) break;
  }
  return executed;
}

}  // namespace setlib::shm
