#include "src/shm/process.h"

#include "src/util/assert.h"

namespace setlib::shm {

ProcessRuntime::ProcessRuntime(Pid pid) : pid_(pid) {
  SETLIB_EXPECTS(pid >= 0 && pid < kMaxProcs);
}

void ProcessRuntime::add_task(Prog prog, std::string name) {
  SETLIB_EXPECTS(prog.valid());
  tasks_.push_back(TaskCb{std::move(prog), std::move(name)});
}

bool ProcessRuntime::halted() const {
  for (const auto& t : tasks_) {
    if (!t.started || !t.prog.done()) return false;
  }
  return true;
}

ProcessRuntime::TaskCb* ProcessRuntime::next_live_task() {
  const std::size_t count = tasks_.size();
  for (std::size_t i = 0; i < count; ++i) {
    TaskCb& t = tasks_[(rr_cursor_ + i) % count];
    if (!t.started || !t.prog.done()) {
      rr_cursor_ = (rr_cursor_ + i + 1) % count;
      return &t;
    }
  }
  return nullptr;
}

bool ProcessRuntime::step(IMemory& mem) {
  TaskCb* t = tasks_.empty() ? nullptr : next_live_task();
  if (t == nullptr) return false;  // halted process: a scheduled no-op step

  if (!t->started) {
    t->started = true;
    t->prog.resume();  // run to the first operation request (or completion)
    if (t->prog.done()) return false;  // purely local task
  }

  OpRequest& req = t->prog.pending();
  SETLIB_ASSERT(req.kind != OpRequest::Kind::kNone);
  switch (req.kind) {
    case OpRequest::Kind::kRead:
      SETLIB_ASSERT(req.read_sink != nullptr);
      *req.read_sink = mem.read(req.reg);
      break;
    case OpRequest::Kind::kWrite:
      mem.write(req.reg, std::move(req.to_write));
      break;
    case OpRequest::Kind::kNone:
      break;
  }
  req = OpRequest{};
  ++ops_;
  t->prog.resume();  // run to the next request or completion
  return true;
}

}  // namespace setlib::shm
