// Wait-free atomic snapshot from single-writer registers (Afek,
// Attiya, Dolev, Gafni, Merritt, Shavit 1993, embedded-scan variant).
//
// One segment register per process holds {seq, value, embedded view}.
// scan(): repeat double collects; a clean double collect (no seq
// changed) is an atomic snapshot; otherwise, a process observed moving
// TWICE has completed a whole update() inside the scan, and its
// embedded view (the snapshot its update took) is a valid snapshot
// within the scan's interval — borrow it. At most n+1 double collects,
// so both operations are wait-free.
//
// update(p, v): take an embedded scan, then write {seq+1, v, scan}.
//
// The model's registers hold arbitrary tuples, so a segment (size
// O(n)) is one atomic register. Values are int64 (the common case for
// the protocols in this library); the initial value of every segment
// is configurable.
//
// Threading model: this class holds no locks — its atomicity argument
// is the protocol above, executed as register steps through IMemory.
// Under the Simulator those steps are serialized on one thread; under
// the threaded executor each wrapper instance is thread-owned and the
// registers themselves synchronize via runtime::RtMemory.
#ifndef SETLIB_SHM_SNAPSHOT_H
#define SETLIB_SHM_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/util/procset.h"

namespace setlib::shm {

class AtomicSnapshot {
 public:
  AtomicSnapshot(IMemory& mem, int n, const std::string& name,
                 std::int64_t initial = 0);

  /// One-shot scan task: deposits an atomic snapshot (n values) in
  /// *out. Also usable inline from another program via SETLIB_CO_RUN.
  Prog scan(Pid p, std::vector<std::int64_t>* out);

  /// Update p's component to v (includes the embedded scan).
  Prog update(Pid p, std::int64_t v);

  int n() const noexcept { return n_; }
  RegisterId segment_reg(Pid q) const;

 private:
  Prog scan_impl(Pid p, std::vector<std::int64_t>* out);
  Prog update_impl(Pid p, std::int64_t v);

  // Segment layout: [seq, value, view_0, ..., view_{n-1}].
  std::int64_t seq_of(const Value& segment) const;
  std::int64_t value_of(const Value& segment) const;
  std::vector<std::int64_t> view_of(const Value& segment) const;

  int n_;
  std::int64_t initial_;
  RegisterId segments_base_;
};

}  // namespace setlib::shm

#endif  // SETLIB_SHM_SNAPSHOT_H
