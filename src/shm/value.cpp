#include "src/shm/value.h"

#include <ostream>
#include <sstream>

namespace setlib::shm {

std::string Value::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  if (v.is_nil()) return os << "_|_";
  os << '(';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v.at(i);
  }
  return os << ')';
}

}  // namespace setlib::shm
