// Register values.
//
// The paper's register set Xi carries arbitrary values; we model a value
// as a short tuple of 64-bit integers so that multi-field records (e.g.
// a Paxos block {mbal, bal, val}) occupy a single atomic register, as
// the model permits. A default-constructed Value is the unwritten
// "bottom"; readers use at_or() to treat bottom fields as defaults (the
// paper initializes its registers to 0).
//
// Threading model: Value is a plain value type with no shared state;
// concurrent use is governed entirely by the memory that stores it
// (SimMemory: single-threaded; runtime::RtMemory: per-cell mutex).
#ifndef SETLIB_SHM_VALUE_H
#define SETLIB_SHM_VALUE_H

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/assert.h"

namespace setlib::shm {

class Value {
 public:
  Value() = default;
  Value(std::initializer_list<std::int64_t> words) : words_(words) {}
  explicit Value(std::vector<std::int64_t> words)
      : words_(std::move(words)) {}

  // Explicit tuple factories. Prefer these inside coroutine bodies:
  // braced initializer_list temporaries in coroutines trip GCC 12
  // (PR102217, "array used as initializer").
  static Value of(std::int64_t x) {
    return Value(std::vector<std::int64_t>(1, x));
  }
  static Value of(std::int64_t a, std::int64_t b) {
    std::vector<std::int64_t> w;
    w.reserve(2);
    w.push_back(a);
    w.push_back(b);
    return Value(std::move(w));
  }
  static Value of(std::int64_t a, std::int64_t b, std::int64_t c) {
    std::vector<std::int64_t> w;
    w.reserve(3);
    w.push_back(a);
    w.push_back(b);
    w.push_back(c);
    return Value(std::move(w));
  }
  static Value of(std::int64_t a, std::int64_t b, std::int64_t c,
                  std::int64_t d) {
    std::vector<std::int64_t> w;
    w.reserve(4);
    w.push_back(a);
    w.push_back(b);
    w.push_back(c);
    w.push_back(d);
    return Value(std::move(w));
  }

  bool is_nil() const noexcept { return words_.empty(); }
  std::size_t size() const noexcept { return words_.size(); }

  std::int64_t at(std::size_t i) const {
    SETLIB_EXPECTS(i < words_.size());
    return words_[i];
  }

  /// Field i, or `def` when the value is bottom / too short.
  std::int64_t at_or(std::size_t i, std::int64_t def) const noexcept {
    return i < words_.size() ? words_[i] : def;
  }

  /// Whole-value convenience for single-word registers.
  std::int64_t as_int_or(std::int64_t def) const noexcept {
    return at_or(0, def);
  }

  const std::vector<std::int64_t>& words() const noexcept { return words_; }

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.words_ == b.words_;
  }
  friend bool operator!=(const Value& a, const Value& b) noexcept {
    return !(a == b);
  }

  std::string to_string() const;

 private:
  std::vector<std::int64_t> words_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace setlib::shm

#endif  // SETLIB_SHM_VALUE_H
