// Process runtimes: one model process running one or more program tasks.
//
// A deployed process runs several protocol layers at once (the Figure 2
// detector loop plus k agreement instances plus a decision watcher).
// The model has a single automaton per process, so ProcessRuntime
// multiplexes its tasks round-robin: each scheduled step of the process
// executes exactly one pending register operation of the next live task.
// Round-robin multiplexing preserves set timeliness up to the constant
// factor #tasks — the same "bounded steps per loop iteration" argument
// the paper uses in Lemma 9.
#ifndef SETLIB_SHM_PROCESS_H
#define SETLIB_SHM_PROCESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/shm/memory.h"
#include "src/shm/program.h"
#include "src/util/procset.h"

namespace setlib::shm {

class ProcessRuntime {
 public:
  explicit ProcessRuntime(Pid pid);

  // Movable (lives in the Simulator's vector), not copyable.
  ProcessRuntime(ProcessRuntime&&) noexcept = default;
  ProcessRuntime& operator=(ProcessRuntime&&) noexcept = default;
  ProcessRuntime(const ProcessRuntime&) = delete;
  ProcessRuntime& operator=(const ProcessRuntime&) = delete;

  Pid pid() const noexcept { return pid_; }

  void add_task(Prog prog, std::string name);
  std::size_t task_count() const noexcept { return tasks_.size(); }

  /// All tasks ran to completion (a halted process; crashes are a
  /// scheduling notion and are handled by the Simulator instead).
  bool halted() const;

  /// Execute one step: one register operation of the next live task (or
  /// nothing if halted). Returns true iff an operation was performed.
  bool step(IMemory& mem);

  /// Total operations executed by this process.
  std::int64_t ops_executed() const noexcept { return ops_; }

 private:
  struct TaskCb {
    Prog prog;
    std::string name;
    bool started = false;
  };

  TaskCb* next_live_task();

  Pid pid_;
  std::vector<TaskCb> tasks_;
  std::size_t rr_cursor_ = 0;
  std::int64_t ops_ = 0;
};

}  // namespace setlib::shm

#endif  // SETLIB_SHM_PROCESS_H
