#include "src/shm/memory.h"

#include "src/util/assert.h"

namespace setlib::shm {

RegisterId IMemory::alloc_array(const std::string& name, std::int64_t count) {
  SETLIB_EXPECTS(count >= 1);
  const RegisterId base = alloc(name + "[0]");
  for (std::int64_t i = 1; i < count; ++i) {
    const RegisterId r = alloc(name + "[" + std::to_string(i) + "]");
    SETLIB_ENSURES(r == base + i);
  }
  return base;
}

RegisterId SimMemory::alloc(std::string name) {
  cells_.emplace_back();
  names_.push_back(std::move(name));
  return static_cast<RegisterId>(cells_.size()) - 1;
}

Value SimMemory::read(RegisterId reg) {
  SETLIB_EXPECTS(reg >= 0 && reg < register_count());
  ++reads_;
  return cells_[static_cast<std::size_t>(reg)];
}

void SimMemory::write(RegisterId reg, Value v) {
  SETLIB_EXPECTS(reg >= 0 && reg < register_count());
  ++writes_;
  cells_[static_cast<std::size_t>(reg)] = std::move(v);
}

std::int64_t SimMemory::register_count() const {
  return static_cast<std::int64_t>(cells_.size());
}

const std::string& SimMemory::name(RegisterId reg) const {
  SETLIB_EXPECTS(reg >= 0 && reg < register_count());
  return names_[static_cast<std::size_t>(reg)];
}

const Value& SimMemory::peek(RegisterId reg) const {
  SETLIB_EXPECTS(reg >= 0 && reg < register_count());
  return cells_[static_cast<std::size_t>(reg)];
}

}  // namespace setlib::shm
