// Shared memory: the register set Xi.
//
// IMemory is the single algorithm-facing interface; SimMemory is the
// deterministic single-threaded implementation used by the Simulator,
// and runtime/rt_memory.h provides the mutex-protected implementation
// used by the threaded executor. Registers are allocated by name during
// a setup phase (before any step executes); reads of never-written
// registers return the bottom Value.
//
// Threading model: SimMemory is single-threaded by construction — it
// only ever runs inside the Simulator's step loop, which serializes
// every process step on one thread. It therefore owns no locks and no
// thread-safety annotations; concurrent access goes through
// runtime::RtMemory instead.
#ifndef SETLIB_SHM_MEMORY_H
#define SETLIB_SHM_MEMORY_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/shm/value.h"

namespace setlib::shm {

using RegisterId = std::int64_t;

class IMemory {
 public:
  virtual ~IMemory() = default;

  /// Allocate one register. Setup-phase only for threaded memories.
  virtual RegisterId alloc(std::string name) = 0;

  /// Allocate `count` registers with contiguous ids; returns the base id.
  RegisterId alloc_array(const std::string& name, std::int64_t count);

  virtual Value read(RegisterId reg) = 0;
  virtual void write(RegisterId reg, Value v) = 0;

  virtual std::int64_t register_count() const = 0;
  virtual const std::string& name(RegisterId reg) const = 0;

  /// Total reads/writes performed (for benchmarks and step accounting).
  virtual std::int64_t read_count() const = 0;
  virtual std::int64_t write_count() const = 0;
};

/// Deterministic single-threaded memory.
class SimMemory final : public IMemory {
 public:
  SimMemory() = default;

  RegisterId alloc(std::string name) override;
  Value read(RegisterId reg) override;
  void write(RegisterId reg, Value v) override;
  std::int64_t register_count() const override;
  const std::string& name(RegisterId reg) const override;
  std::int64_t read_count() const override { return reads_; }
  std::int64_t write_count() const override { return writes_; }

  /// Direct (non-step) inspection for tests/validators.
  const Value& peek(RegisterId reg) const;

 private:
  std::vector<Value> cells_;
  std::vector<std::string> names_;
  std::int64_t reads_ = 0;
  std::int64_t writes_ = 0;
};

}  // namespace setlib::shm

#endif  // SETLIB_SHM_MEMORY_H
