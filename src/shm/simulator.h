// The deterministic step-driven simulator.
//
// Pulls pids from a ScheduleGenerator and executes one step of the
// corresponding ProcessRuntime per pull, recording the *executed*
// schedule (which experiments cross-check with the timeliness analyzer —
// the executed schedule, not the generator's intent, is what Definition
// 1 is evaluated on). Crashed processes take no further steps; pulls
// that land on a crashed process are skipped without being recorded.
#ifndef SETLIB_SHM_SIMULATOR_H
#define SETLIB_SHM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sched/generator.h"
#include "src/sched/generators.h"
#include "src/sched/observations.h"
#include "src/sched/schedule.h"
#include "src/shm/memory.h"
#include "src/shm/process.h"
#include "src/util/procset.h"

namespace setlib::shm {

class Simulator {
 public:
  Simulator(IMemory& mem, int n);

  int n() const noexcept { return n_; }
  ProcessRuntime& process(Pid p);

  /// Mark p crashed from now on (takes no further steps).
  void crash(Pid p);
  bool crashed(Pid p) const;
  ProcSet crashed_set() const noexcept { return crashed_; }

  /// Apply a CrashPlan: processes crash when the executed step count
  /// reaches their crash step (checked as the run proceeds).
  void use_crash_plan(const sched::CrashPlan& plan);

  /// Mirror an adversary's crash decisions (ReactiveGenerator::
  /// crashes_requested): the source is polled once per pull, and any
  /// newly requested process is crashed before the next step executes,
  /// so the validator's faulty accounting matches the adversary's
  /// budget spending.
  void use_crash_source(std::function<ProcSet()> source);

  /// Publish every executed step (and every crash) into `feed`, the
  /// read-only view reactive adversaries consume. The feed must
  /// outlive the simulator; pass nullptr to detach. Publication is
  /// part of the deterministic step loop — no wall-clock, no thread
  /// state — so the ObservationFeed determinism contract holds.
  void publish_observations(sched::ObservationFeed* feed);

  /// Execute exactly one step of process p (test hook).
  void step_once(Pid p);

  /// Run `steps` scheduled steps. Returns the number actually executed
  /// (= steps unless every process crashed/halted and pulls were
  /// exhausted).
  std::int64_t run(sched::ScheduleGenerator& gen, std::int64_t steps);

  /// Run until stop() returns true (checked every `check_every` steps)
  /// or max_steps executed. Returns executed steps.
  std::int64_t run_until(sched::ScheduleGenerator& gen,
                         std::int64_t max_steps,
                         const std::function<bool()>& stop,
                         std::int64_t check_every = 64);

  const sched::Schedule& executed() const noexcept { return executed_; }
  std::int64_t steps_taken() const noexcept { return executed_.size(); }

 private:
  bool maybe_crash_per_plan();
  void maybe_crash_per_source();
  bool execute(Pid p);

  IMemory& mem_;
  int n_;
  std::vector<ProcessRuntime> procs_;
  ProcSet crashed_;
  sched::Schedule executed_;
  std::vector<std::int64_t> plan_crash_steps_;
  std::function<ProcSet()> crash_source_;
  sched::ObservationFeed* feed_ = nullptr;
};

}  // namespace setlib::shm

#endif  // SETLIB_SHM_SIMULATOR_H
