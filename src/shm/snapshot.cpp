#include "src/shm/snapshot.h"

#include "src/util/assert.h"

namespace setlib::shm {

AtomicSnapshot::AtomicSnapshot(IMemory& mem, int n, const std::string& name,
                               std::int64_t initial)
    : n_(n), initial_(initial) {
  SETLIB_EXPECTS(n >= 1 && n <= kMaxProcs);
  segments_base_ = mem.alloc_array(name + ".seg", n);
}

RegisterId AtomicSnapshot::segment_reg(Pid q) const {
  SETLIB_EXPECTS(q >= 0 && q < n_);
  return segments_base_ + q;
}

std::int64_t AtomicSnapshot::seq_of(const Value& segment) const {
  return segment.at_or(0, 0);
}

std::int64_t AtomicSnapshot::value_of(const Value& segment) const {
  return segment.at_or(1, initial_);
}

std::vector<std::int64_t> AtomicSnapshot::view_of(
    const Value& segment) const {
  std::vector<std::int64_t> view(static_cast<std::size_t>(n_), initial_);
  for (int q = 0; q < n_; ++q) {
    view[static_cast<std::size_t>(q)] =
        segment.at_or(static_cast<std::size_t>(2 + q), initial_);
  }
  return view;
}

Prog AtomicSnapshot::scan(Pid p, std::vector<std::int64_t>* out) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(p >= 0 && p < n_);
  SETLIB_EXPECTS(out != nullptr);
  return scan_impl(p, out);
}

Prog AtomicSnapshot::scan_impl(Pid /*p*/, std::vector<std::int64_t>* out) {

  std::vector<Value> first(static_cast<std::size_t>(n_));
  std::vector<Value> second(static_cast<std::size_t>(n_));
  std::vector<int> moved(static_cast<std::size_t>(n_), 0);

  for (Pid q = 0; q < n_; ++q) {
    first[static_cast<std::size_t>(q)] =
        co_await read(segments_base_ + q);
  }
  for (;;) {
    for (Pid q = 0; q < n_; ++q) {
      second[static_cast<std::size_t>(q)] =
          co_await read(segments_base_ + q);
    }
    bool clean = true;
    for (Pid q = 0; q < n_; ++q) {
      const auto s1 = seq_of(first[static_cast<std::size_t>(q)]);
      const auto s2 = seq_of(second[static_cast<std::size_t>(q)]);
      if (s1 != s2) {
        clean = false;
        if (moved[static_cast<std::size_t>(q)] != 0) {
          // q completed a full update inside our scan: its embedded
          // view is an atomic snapshot within our interval.
          *out = view_of(second[static_cast<std::size_t>(q)]);
          co_return;
        }
        moved[static_cast<std::size_t>(q)] = 1;
      }
    }
    if (clean) {
      out->assign(static_cast<std::size_t>(n_), initial_);
      for (Pid q = 0; q < n_; ++q) {
        (*out)[static_cast<std::size_t>(q)] =
            value_of(second[static_cast<std::size_t>(q)]);
      }
      co_return;
    }
    first.swap(second);
  }
}

Prog AtomicSnapshot::update(Pid p, std::int64_t v) {
  // Eager validation; see KAntiOmega::run for why.
  SETLIB_EXPECTS(p >= 0 && p < n_);
  return update_impl(p, v);
}

Prog AtomicSnapshot::update_impl(Pid p, std::int64_t v) {

  // Embedded scan (pumped inline: its reads are our steps 1:1).
  std::vector<std::int64_t> view;
  SETLIB_CO_RUN(scan(p, &view));

  // Read own segment for the sequence number (p is its only writer, so
  // this is exact; a local cache would also do).
  const Value own = co_await read(segments_base_ + p);
  std::vector<std::int64_t> words;
  words.reserve(static_cast<std::size_t>(2 + n_));
  words.push_back(seq_of(own) + 1);
  words.push_back(v);
  for (int q = 0; q < n_; ++q) {
    words.push_back(view[static_cast<std::size_t>(q)]);
  }
  co_await write(segments_base_ + p, Value(std::move(words)));
}

}  // namespace setlib::shm
