// EXP-RT — the threaded runtime: end-to-end (t, k, n)-agreement latency
// on real std::jthreads under the set-timeliness pacer, vs thread count
// and pacer bound, plus pacer gate overhead.
//
// Each table row spawns its own n jthreads, so the default sweep width
// is 1; `--threads=N` runs N rows' jthread groups concurrently
// (oversubscription is safe — the pacer serializes inside a row).
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/runner.h"
#include "src/core/sweep_cli.h"
#include "src/runtime/pacer.h"
#include "src/runtime/rt_harness.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_rt_table(core::ExperimentRunner& runner,
                    core::JsonSink& json) {
  struct Row {
    int t, k, n, crashes;
  };
  const Row rows[] = {{1, 1, 3, 0}, {2, 1, 4, 1}, {2, 2, 5, 2},
                      {3, 2, 6, 2}, {3, 3, 6, 3}, {4, 2, 8, 3}};
  const std::size_t count = std::size(rows);
  const std::size_t first = runner.shard_range(count).first;

  core::WallTimer timer;
  const auto reports = runner.map<runtime::RtRunReport>(
      count, [&](std::size_t idx) {
        const Row& row = rows[idx];
        runtime::RtRunConfig cfg;
        cfg.n = row.n;
        cfg.k = row.k;
        cfg.t = row.t;
        cfg.crash_count = row.crashes;
        cfg.crash_ops = 2'000;
        return runtime::run_kset_threaded(cfg);
      });
  const double wall = timer.seconds();

  TextTable table({"(t,k,n)", "crashes", "success", "distinct",
                   "pacer steps", "elapsed ms", "witness bound"});
  for (std::size_t idx = 0; idx < reports.size(); ++idx) {
    const Row& row = rows[first + idx];
    const auto& report = reports[idx];
    std::string spec("(");
    spec.append(std::to_string(row.t)).append(",");
    spec.append(std::to_string(row.k)).append(",");
    spec.append(std::to_string(row.n)).append(")");
    table.row()
        .cell(spec)
        .cell(row.crashes)
        .cell(report.success ? "yes" : "NO")
        .cell(report.distinct_decisions)
        .cell(report.pacer_steps)
        .cell(report.elapsed.count())
        .cell(report.witness_bound);
  }
  std::cout << "EXP-RT: threaded Theorem 24 stack (jthreads + pacer)\n"
            << table.render() << "\n";
  json.section("rt_table", reports.size(), wall);
}

void BM_ThreadedAgreement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::RtRunConfig cfg;
    cfg.n = n;
    cfg.k = std::max(1, n / 3);
    cfg.t = std::max(1, n / 2);
    const auto report = runtime::run_kset_threaded(cfg);
    benchmark::DoNotOptimize(report.success);
  }
}
BENCHMARK(BM_ThreadedAgreement)->Arg(3)->Arg(5)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_ThreadedAgreementVsBound(benchmark::State& state) {
  const std::int64_t bound = state.range(0);
  for (auto _ : state) {
    runtime::RtRunConfig cfg;
    cfg.n = 4;
    cfg.k = 1;
    cfg.t = 2;
    cfg.bound = bound;
    const auto report = runtime::run_kset_threaded(cfg);
    benchmark::DoNotOptimize(report.success);
  }
}
BENCHMARK(BM_ThreadedAgreementVsBound)->Arg(2)->Arg(8)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_PacerGate(benchmark::State& state) {
  runtime::Pacer pacer(
      2, {sched::TimelinessConstraint(ProcSet::of(0), ProcSet::of(1), 1000)},
      /*record_schedule=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pacer.step(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacerGate);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "runtime_threads");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_rt_table(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
