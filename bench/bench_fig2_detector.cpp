// EXP-F2 — Figure 2 reproduction: the t-resilient k-anti-Omega
// detector in S^k_{t+1,n}.
//
// Series: steps and loop iterations to stabilization across (n, k, t),
// with and without crashes, plus the per-iteration register-operation
// cost model |Pi_n^k| * n + n + 1 + |Pi_n^k|. Every series' rows are
// independent simulator runs, so they shard across the persistent
// ExperimentRunner pool (--threads / --shard); the microbenchmarks
// time raw simulator throughput while the detector runs.
//
// EXP-F2d sweeps system membership at detector-infeasible sizes: for
// n up to 28, the batched sched::RankedPairScan censuses every
// C(n,2) x C(n,n-1) pair on witness-enforced vs i-subset-starver
// schedules, with the P-rank chunks driven through the runner pool.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "src/core/experiments.h"
#include "src/core/runner.h"
#include "src/core/sweep_cli.h"
#include "src/fd/kantiomega.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_convergence_table(core::ExperimentRunner& runner,
                             core::JsonSink& json) {
  struct Row {
    int n, k, t, crashes;
  };
  const Row rows[] = {{3, 1, 1, 0}, {3, 1, 1, 1}, {4, 1, 2, 0},
                      {4, 1, 2, 2}, {4, 2, 2, 1}, {5, 2, 2, 0},
                      {5, 2, 3, 3}, {6, 2, 3, 2}, {6, 3, 3, 0},
                      {7, 3, 4, 2}, {8, 2, 4, 3}};
  const std::size_t count = std::size(rows);
  const std::size_t first = runner.shard_range(count).first;

  core::WallTimer timer;
  const auto results = runner.map<core::DetectorRunResult>(
      count, [&](std::size_t idx) {
        const Row& row = rows[idx];
        core::DetectorRunConfig cfg;
        cfg.n = row.n;
        cfg.k = row.k;
        cfg.t = row.t;
        cfg.crash_count = row.crashes;
        cfg.crash_step = 20'000;
        cfg.seed = 7;
        cfg.max_steps = 3'000'000;
        return core::run_detector_convergence(cfg);
      });
  const double wall = timer.seconds();

  TextTable table({"n", "k", "t", "crashes", "stabilized", "property",
                   "winnerset", "steps", "iterations", "ops/iteration"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Row& row = rows[first + i];
    const auto& result = results[i];
    table.row()
        .cell(row.n)
        .cell(row.k)
        .cell(row.t)
        .cell(row.crashes)
        .cell(result.stabilized ? "yes" : "NO")
        .cell(result.property_ok ? "ok" : "FAIL")
        .cell(result.winnerset.to_string())
        .cell(result.steps)
        .cell(result.max_iterations)
        .cell(result.ops_per_iteration);
  }
  std::cout << "EXP-F2: Figure 2 detector convergence in S^k_{t+1,n}\n"
            << "(enforced witness bound 3 over seeded asynchrony; "
               "crashes at step 20000)\n"
            << table.render() << "\n";
  json.section("convergence", results.size(), wall);
}

void print_bound_sensitivity(core::ExperimentRunner& runner,
                             core::JsonSink& json) {
  // EXP-F2b: the timely set steps only when the enforcer injects it
  // (weight ~0), so the schedule's synchrony quality IS the bound;
  // detector convergence cost grows with it.
  const std::int64_t bounds[] = {2, 4, 8, 16, 32, 64, 128};
  const std::size_t count = std::size(bounds);
  const std::size_t first = runner.shard_range(count).first;

  core::WallTimer timer;
  const auto results = runner.map<core::DetectorRunResult>(
      count, [&](std::size_t idx) {
        core::DetectorRunConfig cfg;
        cfg.n = 5;
        cfg.k = 2;
        cfg.t = 2;
        cfg.bound = bounds[idx];
        cfg.timely_weight = 0.001;
        cfg.seed = 3;
        cfg.max_steps = 6'000'000;
        return core::run_detector_convergence(cfg);
      });
  const double wall = timer.seconds();

  TextTable table({"enforced bound", "stabilized", "steps",
                   "iterations (slowest correct)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.row()
        .cell(bounds[first + i])
        .cell(results[i].stabilized ? "yes" : "NO")
        .cell(results[i].steps)
        .cell(results[i].max_iterations);
  }
  std::cout << "EXP-F2b: detector convergence vs synchrony quality "
               "(n=5, k=2, t=2; witness set scheduled once per `bound` "
               "observer steps)\n"
            << table.render() << "\n";
  json.section("bound_sensitivity", results.size(), wall);
}

void print_gst_series(core::ExperimentRunner& runner,
                      core::JsonSink& json) {
  // EXP-F2c: eventual set timeliness. The schedule is a k-subset
  // starver (no k-set timely) until GST, then an enforced witness at
  // bound 3. Reported: steps AFTER GST until the detector stabilizes —
  // the recovery cost is roughly GST-independent (timeouts adapt).
  const int n = 5, k = 2, t = 2;
  const std::int64_t gsts[] = {0, 20'000, 100'000, 400'000, 1'000'000};
  const std::size_t count = std::size(gsts);
  const std::size_t first = runner.shard_range(count).first;

  struct GstResult {
    bool stabilized = false;
    std::int64_t steps_after_gst = 0;
    std::int64_t min_iterations = 0;
  };

  core::WallTimer timer;
  const auto results = runner.map<GstResult>(
      count, [&](std::size_t idx) {
        const std::int64_t gst = gsts[idx];
        shm::SimMemory mem;
        fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
        shm::Simulator sim(mem, n);
        for (Pid p = 0; p < n; ++p) {
          sim.process(p).add_task(detector.run(p), "fd");
        }
        auto before = std::make_unique<sched::KSubsetStarverGenerator>(
            n, ProcSet::universe(n), k, 400);
        auto base = std::make_unique<sched::UniformRandomGenerator>(n, 7);
        auto after = sched::EnforcedGenerator::single(
            std::move(base),
            sched::TimelinessConstraint(ProcSet::range(0, k),
                                        ProcSet::range(0, t + 1), 3));
        sched::SwitchGenerator gen(std::move(before), std::move(after),
                                   gst);
        const ProcSet all = ProcSet::universe(n);
        // Only accept stabilization reached after GST: transient quiet
        // stretches inside the chaos phase can look stable for a small
        // window.
        const std::int64_t steps =
            sim.run_until(gen, gst + 3'000'000, [&] {
              return sim.steps_taken() > gst &&
                     detector.stabilized(all, 12);
            });
        GstResult out;
        out.stabilized = detector.stabilized(all, 6);
        out.steps_after_gst = steps > gst ? steps - gst : 0;
        std::int64_t min_it = -1;
        for (Pid p = 0; p < n; ++p) {
          const auto it = detector.view(p).iterations;
          min_it = min_it < 0 ? it : std::min(min_it, it);
        }
        out.min_iterations = min_it;
        return out;
      });
  const double wall = timer.seconds();

  TextTable table({"GST step", "stabilized", "steps after GST",
                   "iterations (slowest)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.row()
        .cell(gsts[first + i])
        .cell(results[i].stabilized ? "yes" : "NO")
        .cell(results[i].steps_after_gst)
        .cell(results[i].min_iterations);
  }
  std::cout << "EXP-F2c: recovery after eventual synchrony (GST) — "
               "adversarial k-subset starvation before GST, enforced "
               "witness after (n=5, k=2, t=2)\n"
            << table.render() << "\n";
  json.section("gst_series", results.size(), wall);
}

void print_largen_membership(core::ExperimentRunner& runner,
                             core::JsonSink& json) {
  // EXP-F2d: the large-n detector sweep. Running Figure 2 itself at
  // n = 24 is infeasible for k > 2 (|Pi_n^k| registers), but system
  // membership — is the schedule in S^2_{n-1,n}, and how many (P, Q)
  // pairs certify it? — is exactly what the batched pair scan answers.
  // n = 28 (C(28,2) x 28 = 10584 pairs per census) rides on the SIMD
  // pair-scan kernels; each worker's scan scratch lives on its pool
  // arena, so the census itself is allocation-free at steady state.
  struct Row {
    int n;
    bool enforced;  // witness-enforced vs 2-subset starver
  };
  const Row rows[] = {{16, true},  {16, false}, {20, true},
                      {20, false}, {24, true},  {24, false},
                      {28, true},  {28, false}};
  const std::size_t count = std::size(rows);

  core::WallTimer timer;
  std::vector<core::PairScanResult> results;
  results.reserve(count);
  for (const Row& row : rows) {
    // Each census internally maps its P-rank chunks through the
    // runner's pool and shard; the row loop stays serial so the table
    // is a pure function of the row index.
    core::PairScanConfig cfg;
    cfg.n = row.n;
    cfg.i = 2;
    cfg.j = row.n - 1;
    cfg.len = 40'000;
    cfg.seed = 11;
    cfg.bound_cap = 3;
    cfg.enforced_bound = row.enforced ? 3 : 0;
    results.push_back(core::ranked_pair_scan(cfg, runner));
  }
  const double wall = timer.seconds();

  TextTable table({"n", "schedule", "pairs scanned", "members (cap 3)",
                   "first witness", "bound"});
  for (std::size_t r = 0; r < count; ++r) {
    const auto& result = results[r];
    table.row()
        .cell(rows[r].n)
        .cell(rows[r].enforced ? "enforced witness" : "2-subset starver")
        .cell(result.pairs)
        .cell(result.members)
        .cell(result.found ? result.first.timely_set.to_string() +
                                 " vs " +
                                 result.first.observed_set.to_string()
                           : "none")
        .cell(result.found ? result.first.bound : 0);
  }
  std::cout << "EXP-F2d: S^2_{n-1,n} membership census at large n "
               "(RankedPairScan, cap 3, 40k-step prefixes)\n"
            << table.render() << "\n";
  // Every shard walks all eight census rows (each census shards its
  // pair chunks internally), so the section's "cells" must be this
  // shard's slice of the row space — like every other hand-fed
  // section — or the shard merge would sum the full count N times.
  const auto [cells_begin, cells_end] = runner.shard_range(count);
  json.section("largen_membership", cells_end - cells_begin, wall);
  // n_max is a run invariant (kSame); the census member counts below
  // come out of the runner's shard slice, so shards sum to the
  // unsharded counts (the default rule).
  json.annotate("n_max", 28.0, core::MergeRule::kSame);
  for (std::size_t r = 0; r < count; ++r) {
    if (rows[r].n == 24) {
      json.annotate(rows[r].enforced ? "members_n24_enforced"
                                     : "members_n24_starver",
                    static_cast<double>(results[r].members));
    } else if (rows[r].n == 28) {
      json.annotate(rows[r].enforced ? "members_n28_enforced"
                                     : "members_n28_starver",
                    static_cast<double>(results[r].members));
    }
  }
}

void BM_DetectorSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    shm::SimMemory mem;
    fd::KAntiOmega detector(mem, {n, k, std::max(k, n / 2), 1});
    shm::Simulator sim(mem, n);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(detector.run(p), "fd");
    }
    sched::RoundRobinGenerator gen(n);
    state.ResumeTiming();
    sim.run(gen, 50'000);
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_DetectorSteps)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({6, 3})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "fig2_detector");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_convergence_table(runner, json);
  print_bound_sensitivity(runner, json);
  print_gst_series(runner, json);
  print_largen_membership(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
