// EXP-T26 — Theorem 26: (k,k,n)-agreement is solvable in S^k_{n,n} but
// not in S^{k+1}_{n,n}.
//
// Part 1 (possibility) is executed directly. Part 2 (impossibility) is
// proved in the paper by BG simulation; we verify the construction's
// two load-bearing claims on real executions:
//   (i)  a crashed simulator blocks at most one simulated thread
//        (so <= m-1 = k simulated crashes), and
//   (ii) the simulated schedule keeps every (k+1)-set timely w.r.t.
//        all n simulated processes — i.e. it lies in S^{k+1}_{n,n} —
//        while no k-set stays timely (measured bounds).
// Plus the direct evidence: the k-subset starver (a schedule of
// S^{k+1}_{n,n}) defeats the Figure 2 detector's k-anti-Omega property.
// Each series' rows are independent runs sharded across the persistent
// ExperimentRunner pool (--threads / --shard).
#include <benchmark/benchmark.h>

#include <iostream>
#include <limits>
#include <memory>

#include "src/bg/bg_sim.h"
#include "src/bg/threads.h"
#include "src/core/engine.h"
#include "src/core/runner.h"
#include "src/core/solvability.h"
#include "src/core/sweep_cli.h"
#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_part1_possibility(core::ExperimentRunner& runner,
                             core::JsonSink& json) {
  struct Row {
    int k, n;
  };
  const Row rows[] = {{1, 4}, {2, 5}, {3, 6}};
  const std::size_t count = std::size(rows);
  const std::size_t first = runner.shard_range(count).first;

  core::WallTimer timer;
  const auto reports = runner.map<core::RunReport>(
      count, [&](std::size_t idx) {
        const Row& row = rows[idx];
        core::RunConfig cfg;
        cfg.spec = {row.k, row.k, row.n};
        cfg.system = {row.k, row.n, row.n};  // S^k_{n,n}
        cfg.seed = 11;
        return core::run_agreement(cfg);
      });
  const double wall = timer.seconds();

  TextTable table({"(k,k,n)", "system", "success", "distinct", "steps"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Row& row = rows[first + i];
    const core::AgreementSpec spec{row.k, row.k, row.n};
    const core::SystemSpec system{row.k, row.n, row.n};
    table.row()
        .cell(spec.to_string())
        .cell(system.to_string())
        .cell(reports[i].success ? "yes" : "NO")
        .cell(reports[i].distinct_decisions)
        .cell(reports[i].steps_executed);
  }
  std::cout << "EXP-T26 part 1: (k,k,n)-agreement solvable in S^k_{n,n}\n"
            << table.render() << "\n";
  json.section("possibility", reports.size(), wall);
}

void print_bg_properties(core::ExperimentRunner& runner,
                         core::JsonSink& json) {
  struct Row {
    int m, n;
    bool crash;
  };
  const Row rows[] = {{2, 4, false}, {3, 5, false}, {3, 5, true},
                      {4, 6, true}};
  const std::size_t count = std::size(rows);
  const std::size_t first = runner.shard_range(count).first;

  struct BgFacts {
    std::size_t blocked = 0;
    std::int64_t schedule_steps = 0;
    std::int64_t worst_kp1 = 0;
    std::int64_t best_k = 0;
  };

  core::WallTimer timer;
  const auto facts = runner.map<BgFacts>(
      count, [&](std::size_t idx) {
        const Row& row = rows[idx];
        shm::SimMemory mem;
        bg::BGSimulation sim_obj(
            mem, bg::BGSimulation::Params{row.m, row.n, 48},
            [](int u) { return std::make_unique<bg::ForeverThread>(u); });
        shm::Simulator sim(mem, row.m);
        for (Pid i = 0; i < row.m; ++i) {
          sim.process(i).add_task(sim_obj.run(i), "bg");
        }
        if (row.crash) {
          sim.use_crash_plan(
              sched::CrashPlan::at(row.m, ProcSet::of(row.m - 1), 57));
        }
        sched::RoundRobinGenerator gen(row.m);
        sim.run(gen, 2'000'000);

        const sched::Schedule& simulated = sim_obj.simulated_schedule();
        const int k = row.m - 1;
        BgFacts out;
        out.blocked = sim_obj.blocked_threads().size();
        out.schedule_steps = simulated.size();
        for (const ProcSet s : k_subsets(row.n, k + 1)) {
          out.worst_kp1 = std::max(
              out.worst_kp1,
              sched::min_timeliness_bound(simulated, s,
                                          ProcSet::universe(row.n)));
        }
        out.best_k = std::numeric_limits<std::int64_t>::max();
        for (const ProcSet s : k_subsets(row.n, k)) {
          out.best_k = std::min(
              out.best_k,
              sched::min_timeliness_bound(simulated, s,
                                          ProcSet::universe(row.n)));
        }
        return out;
      });
  const double wall = timer.seconds();

  TextTable table({"m (simulators)", "n (threads)", "crashed sims",
                   "blocked threads", "sim schedule steps",
                   "max bound (k+1)-sets vs all",
                   "min bound k-sets vs all"});
  for (std::size_t i = 0; i < facts.size(); ++i) {
    const Row& row = rows[first + i];
    table.row()
        .cell(row.m)
        .cell(row.n)
        .cell(row.crash ? 1 : 0)
        .cell(facts[i].blocked)
        .cell(facts[i].schedule_steps)
        .cell(facts[i].worst_kp1)
        .cell(facts[i].best_k);
  }
  std::cout
      << "EXP-T26 part 2a: BG simulation schedule-mapping properties\n"
      << "(property (i): blocked <= crashed sims; property (ii): every\n"
      << " (k+1)-set bound small = simulated schedule in S^{k+1}_{n,n})\n"
      << table.render() << "\n";
  json.section("bg_properties", facts.size(), wall);
}

void print_detector_defeat(core::ExperimentRunner& runner,
                           core::JsonSink& json) {
  struct Row {
    int k, n;
  };
  const Row rows[] = {{1, 4}, {2, 5}, {3, 6}};
  const std::size_t count = std::size(rows);
  const std::size_t first = runner.shard_range(count).first;

  core::WallTimer timer;
  const auto reports = runner.map<core::RunReport>(
      count, [&](std::size_t idx) {
        const Row& row = rows[idx];
        core::RunConfig cfg;
        cfg.spec = {row.k, row.k, row.n};
        cfg.system = {row.k + 1, row.n, row.n};
        cfg.family = core::ScheduleFamily::kKSubsetStarver;
        cfg.run_full_budget = true;
        cfg.max_steps = 1'200'000;
        return core::run_agreement(cfg);
      });
  const double wall = timer.seconds();

  TextTable table({"(k,k,n) detector", "family", "abstract property",
                   "winnerset changes"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Row& row = rows[first + i];
    const core::AgreementSpec spec{row.k, row.k, row.n};
    table.row()
        .cell(spec.to_string())
        .cell("k-subset starver in S^{k+1}_{n,n}")
        .cell(reports[i].detector.abstract_ok ? "HOLDS (unexpected)"
                                              : "defeated")
        .cell(reports[i].detector.total_winnerset_changes);
  }
  std::cout << "EXP-T26 part 2b: a S^{k+1}_{n,n} schedule defeats the "
               "k-anti-Omega detector\n"
            << table.render() << "\n";
  json.section("detector_defeat", reports.size(), wall);
}

void BM_BGSimulationThroughput(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    shm::SimMemory mem;
    bg::BGSimulation sim_obj(
        mem, bg::BGSimulation::Params{m, n, 16},
        [](int u) { return std::make_unique<bg::ForeverThread>(u); });
    shm::Simulator sim(mem, m);
    for (Pid i = 0; i < m; ++i) {
      sim.process(i).add_task(sim_obj.run(i), "bg");
    }
    sched::RoundRobinGenerator gen(m);
    state.ResumeTiming();
    sim.run(gen, 200'000);
    benchmark::DoNotOptimize(sim_obj.simulated_schedule().size());
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_BGSimulationThroughput)
    ->Args({2, 4})
    ->Args({3, 5})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "thm26_separation");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_part1_possibility(runner, json);
  print_bg_properties(runner, json);
  print_detector_defeat(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
