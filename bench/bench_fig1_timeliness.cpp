// EXP-F1 — Figure 1 reproduction.
//
// The paper's Figure 1 exhibits S = [(p1 q)^i (p2 q)^i]_{i>=1} and
// claims that neither {p1} nor {p2} is timely w.r.t. {q}, while the
// set {p1, p2} — viewed as one virtual process — is. The table prints
// the minimal timeliness bound of each candidate on growing prefixes:
// the singleton bounds diverge linearly with the phase index, the
// union's bound is the constant 2.
//
// The growing-prefix series is computed by incremental BoundTrackers
// (one O(len) pass per candidate pair). EXP-F1b extends the series to
// 64 phases and times the retired per-cut rescan
// (min_timeliness_bound_reference, the pre-word-packed analyzer) on
// the same grid: the bench cross-checks both series bit-for-bit and
// records the measured speedup as annotations on the figure1 section
// of BENCH_fig1_timeliness.json (series_wall_seconds,
// rescan_wall_seconds, speedup_vs_rescan, rescan_match).
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/experiments.h"
#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/core/sweep_cli.h"
#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_figure1_table(core::ExperimentRunner& runner,
                         core::JsonSink& json) {
  const std::int64_t phases = 16;
  core::WallTimer timer;
  const auto rows = core::figure1_rows(phases, runner);
  const double wall = timer.seconds();

  TextTable table({"phase i", "prefix steps", "bound {p1} vs {q}",
                   "bound {p2} vs {q}", "bound {p1,p2} vs {q}"});
  for (const auto& row : rows) {
    table.row()
        .cell(row.phase)
        .cell(row.prefix_len)
        .cell(row.bound_p1)
        .cell(row.bound_p2)
        .cell(row.bound_union);
  }
  std::cout << "EXP-F1: Figure 1, S = [(p1 q)^i (p2 q)^i]\n"
            << "Claim: singleton bounds diverge; the union is timely "
               "with bound 2.\n"
            << table.render() << "\n";
  json.section("figure1", rows.size(), wall);
}

void print_series_speedup(core::ExperimentRunner& runner,
                          core::JsonSink& json) {
  // EXP-F1b: the same series at 64 phases (~8.3k steps). Incremental
  // trackers pay O(len) once; the retired analyzer rescans every
  // prefix, O(len^2) across the cuts.
  const std::int64_t phases = 64;
  core::WallTimer timer;
  const auto rows = core::figure1_rows(phases, runner);
  const double wall = timer.seconds();

  // Like-for-like legacy run: generate the same schedule and rescan
  // every prefix of the full series (both timed walls cover schedule
  // generation plus all `phases` cuts, regardless of --shard).
  core::WallTimer rescan_timer;
  sched::Figure1Generator gen(3, 0, 1, 2);
  const std::int64_t total =
      sched::Figure1Generator::steps_through_phase(phases);
  const sched::Schedule s = sched::generate(gen, total);
  struct RefRow {
    std::int64_t p1, p2, both;
  };
  std::vector<RefRow> ref;
  ref.reserve(static_cast<std::size_t>(phases));
  for (std::int64_t phase = 1; phase <= phases; ++phase) {
    const std::int64_t cut =
        sched::Figure1Generator::steps_through_phase(phase);
    ref.push_back(
        {sched::min_timeliness_bound_reference(s, ProcSet::of(0),
                                               ProcSet::of(2), 0, cut),
         sched::min_timeliness_bound_reference(s, ProcSet::of(1),
                                               ProcSet::of(2), 0, cut),
         sched::min_timeliness_bound_reference(s, ProcSet::of({0, 1}),
                                               ProcSet::of(2), 0, cut)});
  }
  const double rescan_wall = rescan_timer.seconds();
  const double speedup = wall > 0.0 ? rescan_wall / wall : 0.0;

  bool match = true;
  const std::size_t first =
      runner.shard_range(static_cast<std::size_t>(phases)).first;
  for (std::size_t r = 0; r < rows.size(); ++r) {  // this shard's slice
    const RefRow& expected = ref[first + r];
    match &= rows[r].bound_p1 == expected.p1;
    match &= rows[r].bound_p2 == expected.p2;
    match &= rows[r].bound_union == expected.both;
  }

  std::cout << "EXP-F1b: " << phases << "-phase series ("
            << total << " steps), incremental trackers vs per-prefix "
               "rescan\n"
            << "  incremental: " << wall << " s   rescan: " << rescan_wall
            << " s   speedup: " << speedup << "x   bounds "
            << (match ? "bit-identical" : "MISMATCH") << "\n\n";
  // Recorded as annotations on the figure1 section: the rescan is a
  // deliberately-slow legacy cross-check, not a grid of its own.
  // series_phases and rescan_match are run invariants — every shard
  // (and the unsharded run) reports the same value, so the shard
  // merge must keep them, not sum them. The wall/speedup annotations
  // are timing keys and never merge.
  json.annotate("series_phases", static_cast<double>(phases),
                core::MergeRule::kSame);
  json.annotate("series_wall_seconds", wall);
  json.annotate("rescan_wall_seconds", rescan_wall);
  json.annotate("speedup_vs_rescan", speedup);
  json.annotate("rescan_match", match ? 1.0 : 0.0,
                core::MergeRule::kSame);
}

void print_family_sweep(core::ExperimentRunner& runner,
                        core::JsonSink& json) {
  // EXP-F1c: the Figure 1 setting (n = 3) under the randomized
  // adversary families, `--repeat` seeds per point. The grid section
  // ("adversary_families") carries the multi-seed dispersion keys
  // (steps_mean/stddev, witness_bound_mean/stddev, success_rate and
  // their ci_* 95% intervals) in BENCH_fig1_timeliness.json.
  core::SweepGrid grid;
  core::RunConfig proto;
  proto.max_steps = 200'000;
  grid.add_spec({1, 1, 3})
      .add_family(core::ScheduleFamily::kEnforcedRandom);
  for (const auto family : core::randomized_families()) {
    grid.add_family(family);
  }
  // One bound only: the enforced bound matters to the friendly family
  // alone (the randomized adversaries ignore it), so a bound axis
  // would just duplicate the randomized rows under a misleading label.
  grid.add_bound(2)
      .repeats(runner.options().repeat)
      .base_seed(29)
      .prototype(proto);

  core::TableSink table;
  core::AggregateSink agg;
  runner.run(grid, "adversary_families", {&table, &agg, &json});
  const core::SweepAggregate& a = agg.aggregate();
  std::cout << "EXP-F1c: (1,1,3)-agreement vs the adversary families "
               "(repeat=" << runner.options().repeat << ")\n"
            << table.render();
  if (!a.witness_bound.empty()) {
    std::cout << "  witness bound mean " << a.witness_bound.mean()
              << " +/- " << ci95_halfwidth(a.witness_bound)
              << " (95% CI over " << a.cells << " cells)\n";
  }
  std::cout << "\n";
}

void BM_Figure1Generate(benchmark::State& state) {
  const std::int64_t steps = state.range(0);
  for (auto _ : state) {
    sched::Figure1Generator gen(3, 0, 1, 2);
    benchmark::DoNotOptimize(sched::generate(gen, steps));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_Figure1Generate)->Arg(1 << 12)->Arg(1 << 16);

void BM_MinTimelinessBound(benchmark::State& state) {
  const std::int64_t steps = state.range(0);
  sched::Figure1Generator gen(3, 0, 1, 2);
  const auto schedule = sched::generate(gen, steps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::min_timeliness_bound(
        schedule, ProcSet::of({0, 1}), ProcSet::of(2)));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_MinTimelinessBound)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_MinTimelinessBoundReference(benchmark::State& state) {
  const std::int64_t steps = state.range(0);
  sched::Figure1Generator gen(3, 0, 1, 2);
  const auto schedule = sched::generate(gen, steps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::min_timeliness_bound_reference(
        schedule, ProcSet::of({0, 1}), ProcSet::of(2)));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_MinTimelinessBoundReference)
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

void BM_BoundTrackerExtend(benchmark::State& state) {
  // Cost of tracking the bound across growing prefixes: the whole
  // series in one pass, amortized O(1) per step.
  const std::int64_t steps = state.range(0);
  sched::Figure1Generator gen(3, 0, 1, 2);
  const auto schedule = sched::generate(gen, steps);
  for (auto _ : state) {
    sched::BoundTracker tracker(ProcSet::of({0, 1}), ProcSet::of(2));
    for (std::int64_t cut = 0; cut < steps; cut += 1024) {
      tracker.extend(schedule, cut);
    }
    tracker.extend(schedule);
    benchmark::DoNotOptimize(tracker.bound());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_BoundTrackerExtend)->Arg(1 << 16)->Arg(1 << 20);

void BM_SystemMembershipBestPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sched::UniformRandomGenerator gen(n, 42);
  const auto schedule = sched::generate(gen, 4'000);
  const sched::SystemMembership membership(schedule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(membership.best_pair(2, n - 1));
  }
}
BENCHMARK(BM_SystemMembershipBestPair)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16);

void BM_RankedPairScanCensus(benchmark::State& state) {
  // Exhaustive membership census at large n: C(n,2) x C(n,n-1) pairs
  // with cap pruning over one shared packed prefix.
  const int n = static_cast<int>(state.range(0));
  sched::UniformRandomGenerator gen(n, 42);
  const auto schedule = sched::generate(gen, 20'000);
  const sched::PackedSchedule packed(schedule);
  const sched::RankedPairScan scan(packed, 2, n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan.count_members(3));
  }
}
BENCHMARK(BM_RankedPairScanCensus)->Arg(16)->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "fig1_timeliness");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_figure1_table(runner, json);
  print_series_speedup(runner, json);
  print_family_sweep(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
