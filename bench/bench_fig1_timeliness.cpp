// EXP-F1 — Figure 1 reproduction.
//
// The paper's Figure 1 exhibits S = [(p1 q)^i (p2 q)^i]_{i>=1} and
// claims that neither {p1} nor {p2} is timely w.r.t. {q}, while the
// set {p1, p2} — viewed as one virtual process — is. The table prints
// the minimal timeliness bound of each candidate on growing prefixes:
// the singleton bounds diverge linearly with the phase index, the
// union's bound is the constant 2. The per-prefix bound scans shard
// across the persistent ExperimentRunner pool (--threads / --shard).
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/experiments.h"
#include "src/core/sweep_cli.h"
#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_figure1_table(core::ExperimentRunner& runner,
                         core::JsonSink& json) {
  const std::int64_t phases = 16;
  core::WallTimer timer;
  const auto rows = core::figure1_rows(phases, runner);
  const double wall = timer.seconds();

  TextTable table({"phase i", "prefix steps", "bound {p1} vs {q}",
                   "bound {p2} vs {q}", "bound {p1,p2} vs {q}"});
  for (const auto& row : rows) {
    table.row()
        .cell(row.phase)
        .cell(row.prefix_len)
        .cell(row.bound_p1)
        .cell(row.bound_p2)
        .cell(row.bound_union);
  }
  std::cout << "EXP-F1: Figure 1, S = [(p1 q)^i (p2 q)^i]\n"
            << "Claim: singleton bounds diverge; the union is timely "
               "with bound 2.\n"
            << table.render() << "\n";
  json.section("figure1", rows.size(), wall);
}

void BM_Figure1Generate(benchmark::State& state) {
  const std::int64_t steps = state.range(0);
  for (auto _ : state) {
    sched::Figure1Generator gen(3, 0, 1, 2);
    benchmark::DoNotOptimize(sched::generate(gen, steps));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_Figure1Generate)->Arg(1 << 12)->Arg(1 << 16);

void BM_MinTimelinessBound(benchmark::State& state) {
  const std::int64_t steps = state.range(0);
  sched::Figure1Generator gen(3, 0, 1, 2);
  const auto schedule = sched::generate(gen, steps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::min_timeliness_bound(
        schedule, ProcSet::of({0, 1}), ProcSet::of(2)));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_MinTimelinessBound)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SystemMembershipBestPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sched::UniformRandomGenerator gen(n, 42);
  const auto schedule = sched::generate(gen, 4'000);
  const sched::SystemMembership membership(schedule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(membership.best_pair(2, n - 1));
  }
}
BENCHMARK(BM_SystemMembershipBestPair)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "fig1_timeliness");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_figure1_table(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
