// EXP-T24 — Theorem 24 / Corollary 25: (t, k, n)-agreement is solvable
// in S^k_{t+1,n}.
//
// Tables: outcome + decision latency (steps) across (n, k, t) and crash
// patterns under the friendly family, a latency-vs-timeliness-bound
// series, and a spec × family × seed SweepGrid aggregated into the
// success-rate matrix. Everything runs through one persistent
// core::ExperimentRunner (--threads / --repeat / --shard / --json).
// Microbenchmarks time whole engine runs.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/engine.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/solvability.h"
#include "src/core/sweep.h"
#include "src/core/sweep_cli.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_agreement_table(core::ExperimentRunner& runner,
                           core::JsonSink& json) {
  struct Row {
    int t, k, n, crashes;
  };
  const Row rows[] = {{1, 1, 3, 0}, {1, 1, 3, 1}, {2, 1, 4, 2},
                      {2, 2, 4, 1}, {2, 2, 5, 2}, {3, 2, 5, 3},
                      {3, 1, 5, 1}, {3, 3, 6, 3}, {4, 2, 6, 4},
                      {4, 2, 7, 2}, {2, 3, 5, 2}, {1, 2, 4, 1}};
  const std::size_t count = std::size(rows);
  const std::size_t first = runner.shard_range(count).first;

  core::WallTimer timer;
  const auto reports = runner.map<core::RunReport>(
      count, [&](std::size_t idx) {
        const Row& row = rows[idx];
        core::RunConfig cfg;
        cfg.spec = {row.t, row.k, row.n};
        cfg.system = core::matching_system(cfg.spec);
        cfg.seed = 17;
        cfg.max_steps = 4'000'000;
        if (row.crashes > 0) {
          auto plan = sched::CrashPlan::none(row.n);
          for (int c = 0; c < row.crashes; ++c) {
            plan.set_crash(row.n - 1 - c, 5'000 * (c + 1));
          }
          cfg.crashes = plan;
        }
        return core::run_agreement(cfg);
      });
  const double wall = timer.seconds();

  TextTable table({"(t,k,n)", "system", "crashes", "success", "distinct",
                   "steps to all-decided", "witness bound"});
  std::size_t successes = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Row& row = rows[first + i];
    const core::RunReport& report = reports[i];
    const core::AgreementSpec spec{row.t, row.k, row.n};
    if (report.success) ++successes;
    table.row()
        .cell(spec.to_string())
        .cell(core::matching_system(spec).to_string())
        .cell(row.crashes)
        .cell(report.success ? "yes" : "NO")
        .cell(report.distinct_decisions)
        .cell(report.steps_executed)
        .cell(report.witness_bound);
  }
  std::cout << "EXP-T24: (t,k,n)-agreement in the matching system "
               "S^k_{t+1,n} (friendly family)\n"
            << table.render() << "\n";
  json.section("agreement_table", reports.size(), wall,
               {{"successes", static_cast<double>(successes)}});
}

void print_bound_series(core::ExperimentRunner& runner,
                        core::JsonSink& json) {
  const std::int64_t bounds[] = {2, 3, 4, 8, 16, 32, 64};
  const std::size_t count = std::size(bounds);
  const std::size_t first = runner.shard_range(count).first;

  core::WallTimer timer;
  const auto reports = runner.map<core::RunReport>(
      count, [&](std::size_t idx) {
        core::RunConfig cfg;
        cfg.spec = {2, 2, 5};
        cfg.system = core::matching_system(cfg.spec);
        cfg.timeliness_bound = bounds[idx];
        cfg.seed = 23;
        return core::run_agreement(cfg);
      });
  const double wall = timer.seconds();

  TextTable table({"enforced bound", "steps to all-decided", "success"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    table.row()
        .cell(bounds[first + i])
        .cell(reports[i].steps_executed)
        .cell(reports[i].success ? "yes" : "NO");
  }
  std::cout << "EXP-T24b: decision latency vs enforced timeliness bound "
               "((2,2,5)-agreement in S^2_{3,5})\n"
            << table.render() << "\n";
  json.section("bound_series", reports.size(), wall);
}

void print_seed_sweep(core::ExperimentRunner& runner,
                      core::JsonSink& json) {
  // EXP-T24c: the SweepGrid proper — specs × family × `--repeat` seeds
  // in the matching system, folded into the success-rate matrix.
  core::SweepGrid grid;
  grid.add_spec({1, 1, 3})
      .add_spec({2, 2, 5})
      .add_spec({3, 2, 5})
      .add_family(core::ScheduleFamily::kEnforcedRandom)
      .repeats(runner.options().repeat)
      .base_seed(17);
  core::RunConfig proto;
  proto.max_steps = 2'000'000;
  grid.prototype(proto);

  core::TableSink table;
  core::AggregateSink agg;
  runner.run(grid, "seed_sweep", {&table, &agg, &json});
  std::cout << "EXP-T24c: friendly-family seed sweep (repeat="
            << runner.options().repeat
            << ", threads=" << runner.pool().threads() << ", "
            << agg.aggregate().cells << " cells, "
            << agg.aggregate().runs_per_second << " runs/sec)\n"
            << table.render() << "\n";
}

void BM_AgreementRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int t = static_cast<int>(state.range(2));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {t, k, n};
    cfg.system = core::matching_system(cfg.spec);
    cfg.seed = ++seed;
    const auto report = core::run_agreement(cfg);
    benchmark::DoNotOptimize(report.success);
  }
}
BENCHMARK(BM_AgreementRun)
    ->Args({3, 1, 1})
    ->Args({4, 2, 2})
    ->Args({5, 2, 3})
    ->Args({6, 3, 3})
    ->Unit(benchmark::kMillisecond);

void BM_TrivialRegime(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 100;
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {1, 2, n};  // k > t
    cfg.system = {n, n, n};
    cfg.seed = ++seed;
    const auto report = core::run_agreement(cfg);
    benchmark::DoNotOptimize(report.success);
  }
}
BENCHMARK(BM_TrivialRegime)->Arg(4)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "thm24_agreement");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_agreement_table(runner, json);
  print_bound_series(runner, json);
  print_seed_sweep(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
