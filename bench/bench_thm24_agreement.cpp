// EXP-T24 — Theorem 24 / Corollary 25: (t, k, n)-agreement is solvable
// in S^k_{t+1,n}.
//
// Tables: outcome + decision latency (steps) across (n, k, t) and crash
// patterns under the friendly family, a latency-vs-timeliness-bound
// series, and the trivial k > t regime. Microbenchmarks time whole
// engine runs.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/engine.h"
#include "src/core/solvability.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_agreement_table() {
  TextTable table({"(t,k,n)", "system", "crashes", "success", "distinct",
                   "steps to all-decided", "witness bound"});
  struct Row {
    int t, k, n, crashes;
  };
  const Row rows[] = {{1, 1, 3, 0}, {1, 1, 3, 1}, {2, 1, 4, 2},
                      {2, 2, 4, 1}, {2, 2, 5, 2}, {3, 2, 5, 3},
                      {3, 1, 5, 1}, {3, 3, 6, 3}, {4, 2, 6, 4},
                      {4, 2, 7, 2}, {2, 3, 5, 2}, {1, 2, 4, 1}};
  for (const auto& row : rows) {
    core::RunConfig cfg;
    cfg.spec = {row.t, row.k, row.n};
    cfg.system = core::matching_system(cfg.spec);
    cfg.seed = 17;
    cfg.max_steps = 4'000'000;
    if (row.crashes > 0) {
      auto plan = sched::CrashPlan::none(row.n);
      for (int c = 0; c < row.crashes; ++c) {
        plan.set_crash(row.n - 1 - c, 5'000 * (c + 1));
      }
      cfg.crashes = plan;
    }
    const auto report = core::run_agreement(cfg);
    table.row()
        .cell(cfg.spec.to_string())
        .cell(cfg.system.to_string())
        .cell(row.crashes)
        .cell(report.success ? "yes" : "NO")
        .cell(report.distinct_decisions)
        .cell(report.steps_executed)
        .cell(report.witness_bound);
  }
  std::cout << "EXP-T24: (t,k,n)-agreement in the matching system "
               "S^k_{t+1,n} (friendly family)\n"
            << table.render() << "\n";
}

void print_bound_series() {
  TextTable table({"enforced bound", "steps to all-decided", "success"});
  for (const std::int64_t bound : {2, 3, 4, 8, 16, 32, 64}) {
    core::RunConfig cfg;
    cfg.spec = {2, 2, 5};
    cfg.system = core::matching_system(cfg.spec);
    cfg.timeliness_bound = bound;
    cfg.seed = 23;
    const auto report = core::run_agreement(cfg);
    table.row()
        .cell(bound)
        .cell(report.steps_executed)
        .cell(report.success ? "yes" : "NO");
  }
  std::cout << "EXP-T24b: decision latency vs enforced timeliness bound "
               "((2,2,5)-agreement in S^2_{3,5})\n"
            << table.render() << "\n";
}

void BM_AgreementRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int t = static_cast<int>(state.range(2));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {t, k, n};
    cfg.system = core::matching_system(cfg.spec);
    cfg.seed = ++seed;
    const auto report = core::run_agreement(cfg);
    benchmark::DoNotOptimize(report.success);
  }
}
BENCHMARK(BM_AgreementRun)
    ->Args({3, 1, 1})
    ->Args({4, 2, 2})
    ->Args({5, 2, 3})
    ->Args({6, 3, 3})
    ->Unit(benchmark::kMillisecond);

void BM_TrivialRegime(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 100;
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {1, 2, n};  // k > t
    cfg.system = {n, n, n};
    cfg.seed = ++seed;
    const auto report = core::run_agreement(cfg);
    benchmark::DoNotOptimize(report.success);
  }
}
BENCHMARK(BM_TrivialRegime)->Arg(4)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_agreement_table();
  print_bound_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
