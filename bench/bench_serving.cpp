// EXP-SERVE — agreement-as-a-service. Closed-loop mode (default):
// a seeded LoadGen stream is admitted through the bounded queue,
// batched, and every batch is decided by one enforced-schedule
// MultiShotAgreement pass; all aggregate stats (latency percentiles,
// admission counts, decisions) are virtual-tick facts, bit-identical
// at any --threads and across --shard=K/N unions. Open-loop mode
// (--qps=N): wall-clock pacing at a target QPS for --duration seconds;
// every fact it prints or records is a timing key.
//
// Serving flags (stripped before the shared runner flags):
//   --requests=N    closed-loop stream length (default 1e6)
//   --batch=B       max requests per agreement batch
//   --queue-cap=N   bounded admission queue depth
//   --qps=N         also run open loop at N requests/sec
//   --duration=N    open-loop run length in seconds
//
// Deterministic facts print on "EXP-SERVE:" lines; wall-clock facts
// are isolated on lines starting "wall:" so determinism diffs can
// `grep -v '^wall'`.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>

#include "src/core/loadgen.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/service.h"
#include "src/core/sweep_cli.h"

namespace {

using namespace setlib;

core::ServiceConfig g_config;  // NOLINT: CLI-configured before main runs
long g_qps = 0;
long g_duration_seconds = 2;

void strip_serving_flags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    long requests = 0;
    int batch = 0;
    long queue_cap = 0;
    if (core::consume_long_flag(arg, "--requests=", &requests)) {
      g_config.requests = requests;
      continue;
    }
    if (core::consume_int_flag(arg, "--batch=", &batch)) {
      g_config.batch = batch;
      continue;
    }
    if (core::consume_long_flag(arg, "--queue-cap=", &queue_cap)) {
      g_config.queue_cap = queue_cap;
      continue;
    }
    if (core::consume_long_flag(arg, "--qps=", &g_qps)) continue;
    if (core::consume_long_flag(arg, "--duration=", &g_duration_seconds)) {
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

void run_serving(core::ExperimentRunner& runner, core::JsonSink& json) {
  const core::ServiceHarness harness(g_config);
  const core::ClosedLoopReport report =
      harness.run_closed_loop(runner, {}, &json);
  const core::AdmissionPlan& plan = report.plan;

  std::cout << "EXP-SERVE: closed loop requests=" << plan.offered
            << " accepted=" << plan.accepted << " shed=" << plan.shed
            << " batches=" << plan.batches.size()
            << " batch_max=" << g_config.batch
            << " queue_cap=" << g_config.queue_cap << "\n";
  std::cout << "EXP-SERVE: latency_ticks p50=" << plan.slo.p50
            << " p99=" << plan.slo.p99 << " p999=" << plan.slo.p999
            << " max=" << plan.slo.max
            << " queue_depth_max=" << plan.queue_depth_max << "\n";
  std::cout << "EXP-SERVE: slo threshold_ticks="
            << g_config.slo_latency_ticks
            << " target=" << g_config.slo_target
            << " violations=" << plan.slo.violations
            << " error_budget_burn=" << plan.slo.error_budget_burn
            << "\n";
  std::cout << "EXP-SERVE: shard=" << runner.options().shard.to_string()
            << " shard_batches=" << report.batches_run
            << " shard_requests=" << report.shard_requests
            << " decided_ok=" << report.shard_decided_ok << "\n";
  std::cout << "wall: closed loop seconds=" << report.section.wall_seconds
            << " batches_per_sec=" << report.section.runs_per_second
            << " threads=" << runner.pool().threads() << "\n";

  if (g_qps > 0) {
    const core::OpenLoopReport open = harness.run_open_loop(
        runner, g_qps, std::chrono::seconds(g_duration_seconds), &json);
    std::cout << "wall: open loop qps_target=" << open.qps_target
              << " qps_achieved=" << open.qps_achieved
              << " offered=" << open.offered << " served=" << open.served
              << " shed=" << open.shed << " unserved=" << open.unserved
              << "\n";
    std::cout << "wall: open loop latency_us p50=" << open.slo.p50
              << " p99=" << open.slo.p99 << " p999=" << open.slo.p999
              << " violations=" << open.slo.violations
              << " error_budget_burn=" << open.slo.error_budget_burn
              << "\n";
  }
}

void BM_LoadGenArrivals(benchmark::State& state) {
  const std::int64_t requests = state.range(0);
  const core::LoadGen gen(core::LoadGenConfig{requests, 42, 8});
  for (auto _ : state) {
    const auto arrivals = gen.arrivals();
    benchmark::DoNotOptimize(arrivals.data());
  }
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_LoadGenArrivals)->Arg(100'000)->Unit(
    benchmark::kMillisecond);

void BM_AdmissionPlan(benchmark::State& state) {
  core::ServiceConfig config;
  config.requests = state.range(0);
  const core::ServiceHarness harness(config);
  for (auto _ : state) {
    const auto plan = harness.plan();
    benchmark::DoNotOptimize(plan.batches.data());
  }
  state.SetItemsProcessed(state.iterations() * config.requests);
}
BENCHMARK(BM_AdmissionPlan)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_ServingBatch(benchmark::State& state) {
  // One enforced-schedule agreement pass per iteration: the per-batch
  // decision cost the admission plan's service model stands in for.
  core::ServiceConfig config;
  config.requests = 4096;
  config.batch = static_cast<int>(state.range(0));
  const core::ServiceHarness harness(config);
  const core::AdmissionPlan plan = harness.plan();
  std::int64_t slots = 0;
  std::size_t index = 0;
  for (auto _ : state) {
    const auto outcome =
        harness.run_batch(plan, index++ % plan.batches.size());
    slots += static_cast<std::int64_t>(outcome.decisions.size());
    benchmark::DoNotOptimize(outcome.steps);
  }
  state.SetItemsProcessed(slots);
}
BENCHMARK(BM_ServingBatch)->Arg(1)->Arg(64)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  strip_serving_flags(&argc, argv);
  const auto options =
      setlib::core::parse_runner_options(&argc, argv, "serving");
  setlib::core::ExperimentRunner runner(options);
  setlib::core::JsonSink json = runner.json_sink();
  run_serving(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
