// EXP-SUB2 — agreement-stack microbenchmarks: commit-adopt, safe
// agreement, Paxos (solo-leader decision latency in steps and in
// time), and the trivial algorithm. A full-stack SweepGrid section
// (spec × family × --repeat seeds) runs through the persistent
// core::ExperimentRunner.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "src/agreement/commit_adopt.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/sweep.h"
#include "src/core/sweep_cli.h"
#include "src/agreement/multishot.h"
#include "src/agreement/paxos.h"
#include "src/agreement/trivial.h"
#include "src/fd/kantiomega.h"
#include "src/bg/safe_agreement.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace {

using namespace setlib;

void BM_CommitAdoptRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    shm::SimMemory mem;
    agreement::CommitAdopt ca(mem, n, "ca");
    shm::Simulator sim(mem, n);
    std::vector<agreement::CommitAdopt::Outcome> outs(n);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(ca.propose(p, p % 2, &outs[p]), "ca");
    }
    sched::RoundRobinGenerator gen(n);
    sim.run(gen, n * (2 + 2 * n));
    benchmark::DoNotOptimize(outs[0].done);
  }
}
BENCHMARK(BM_CommitAdoptRound)->Arg(3)->Arg(8)->Arg(16);

void BM_PaxosSoloDecision(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    shm::SimMemory mem;
    agreement::PaxosConsensus paxos(mem, n, "px");
    shm::Simulator sim(mem, n);
    std::vector<agreement::PaxosConsensus::Status> statuses(n);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(
          paxos.run(p, 100 + p, [](Pid) { return 0; }, &statuses[p]),
          "px");
    }
    sched::RoundRobinGenerator gen(n);
    sim.run_until(gen, 100'000, [&] {
      for (const auto& s : statuses) {
        if (!s.decided) return false;
      }
      return true;
    });
    benchmark::DoNotOptimize(statuses[0].value);
  }
}
BENCHMARK(BM_PaxosSoloDecision)->Arg(3)->Arg(8)->Arg(16);

void BM_PaxosContendedDecision(benchmark::State& state) {
  // All processes believe themselves leader: dueling ballots under a
  // fair random schedule until the first decision propagates.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    shm::SimMemory mem;
    agreement::PaxosConsensus paxos(mem, n, "px");
    shm::Simulator sim(mem, n);
    std::vector<agreement::PaxosConsensus::Status> statuses(n);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(
          paxos.run(p, 100 + p, [](Pid self) { return self; },
                    &statuses[p]),
          "px");
    }
    sched::UniformRandomGenerator gen(n, ++seed);
    sim.run_until(gen, 3'000'000, [&] {
      for (const auto& s : statuses) {
        if (s.decided) return true;
      }
      return false;
    });
    benchmark::DoNotOptimize(statuses[0].ballots_started);
  }
}
BENCHMARK(BM_PaxosContendedDecision)->Arg(2)->Arg(4)->Unit(
    benchmark::kMicrosecond);

void BM_SafeAgreementRound(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    shm::SimMemory mem;
    bg::SafeAgreement sa(mem, m, "sa");
    shm::Simulator sim(mem, m);
    std::vector<bg::SafeAgreement::Outcome> outs(m);
    std::vector<char> done(m, 0);
    for (Pid i = 0; i < m; ++i) {
      auto task = [](bg::SafeAgreement* obj, Pid me,
                     bg::SafeAgreement::Outcome* out,
                     char* flag) -> shm::Prog {
        SETLIB_CO_RUN(obj->propose(me, shm::Value::of(me)));
        for (;;) {
          bool blocked = false;
          SETLIB_CO_RUN(obj->try_resolve(me, out, &blocked));
          if (out->decided) {
            *flag = 1;
            co_return;
          }
        }
      };
      sim.process(i).add_task(task(&sa, i, &outs[i], &done[i]), "sa");
    }
    sched::RoundRobinGenerator gen(m);
    sim.run_until(gen, 100'000, [&] {
      for (const char f : done) {
        if (!f) return false;
      }
      return true;
    });
    benchmark::DoNotOptimize(outs[0].decided);
  }
}
BENCHMARK(BM_SafeAgreementRound)->Arg(2)->Arg(4)->Arg(8);

void BM_MultiShotLogThroughput(benchmark::State& state) {
  // Slots decided per second through the full detector + multi-Paxos
  // stack (k = 1 replicated log).
  const int n = 4, k = 1, t = 2;
  const int slots = static_cast<int>(state.range(0));
  for (auto _ : state) {
    shm::SimMemory mem;
    fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
    agreement::MultiShotAgreement log(
        mem, agreement::MultiShotAgreement::Params{n, k, t, slots},
        &detector);
    shm::Simulator sim(mem, n);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(detector.run(p), "fd");
      std::vector<std::int64_t> commands(static_cast<std::size_t>(slots),
                                         100 + p);
      log.install(sim.process(p), p, std::move(commands));
    }
    sched::RoundRobinGenerator gen(n);
    sim.run_until(gen, 20'000'000,
                  [&] { return log.all_decided(ProcSet::universe(n)); });
    benchmark::DoNotOptimize(log.decided_prefix(0));
  }
  state.SetItemsProcessed(state.iterations() * slots);
}
BENCHMARK(BM_MultiShotLogThroughput)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_TrivialAgreement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 3;
  for (auto _ : state) {
    shm::SimMemory mem;
    agreement::TrivialAgreement algo(mem, n, t);
    shm::Simulator sim(mem, n);
    std::vector<agreement::TrivialAgreement::Outcome> outs(n);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(algo.run(p, 100 + p, &outs[p]), "trivial");
    }
    sched::RoundRobinGenerator gen(n);
    sim.run_until(gen, 200'000, [&] {
      for (const auto& o : outs) {
        if (!o.decided) return false;
      }
      return true;
    });
    benchmark::DoNotOptimize(outs[0].value);
  }
}
BENCHMARK(BM_TrivialAgreement)->Arg(3)->Arg(9)->Arg(18);

void print_stack_sweep(core::ExperimentRunner& runner,
                       core::JsonSink& json) {
  // EXP-SUB2b: the whole detector + Paxos stack as a SweepGrid — specs
  // × both frontier families × `--repeat` index-derived seeds.
  core::SweepGrid grid;
  grid.add_spec({2, 2, 5})
      .add_spec({3, 2, 5})
      .add_family(core::ScheduleFamily::kEnforcedRandom)
      .add_family(core::ScheduleFamily::kRotisserie)
      .repeats(runner.options().repeat)
      .base_seed(7);
  core::RunConfig proto;
  proto.max_steps = 900'000;
  proto.run_full_budget = false;
  grid.prototype(proto);

  core::TableSink table;
  core::AggregateSink agg;
  runner.run(grid, "stack_sweep", {&table, &agg, &json});
  std::cout << "EXP-SUB2b: full-stack sweep (repeat="
            << runner.options().repeat
            << ", threads=" << runner.pool().threads() << ", "
            << agg.aggregate().cells << " cells, "
            << agg.aggregate().runs_per_second << " runs/sec)\n"
            << table.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      setlib::core::parse_runner_options(&argc, argv, "agreement_stack");
  setlib::core::ExperimentRunner runner(options);
  setlib::core::JsonSink json = runner.json_sink();
  print_stack_sweep(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
