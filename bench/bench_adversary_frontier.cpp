// EXP-ADV — the adversary-family frontier.
//
// The paper quantifies timeliness over every schedule the adversary
// can produce, so each randomized family (src/sched/families.h) is an
// experiment in its own right: which (i, j) pairs still admit a
// timely pair — i.e. for which systems S^i_{j,n} does the family keep
// producing member schedules — and how does the full agreement stack
// fare against it?
//
// Two sections, both shard-aware through the ExperimentRunner:
//
//   - family_grid: run_agreement for (2,2,5)-agreement in its matching
//     system against the friendly baseline, every randomized family,
//     and every reactive adversary (src/sched/reactive.h), `--repeat`
//     seeds per family. The grid section carries the multi-seed
//     dispersion keys (ci_* 95% intervals) in
//     BENCH_adversary_frontier.json.
//
//   - frontier_map: for every registry family plus every reactive
//     adversary (driven closed-loop via generate_observed) and every
//     1 <= i <= j <= n, generate a seeded schedule and find the best
//     achievable (|P| = i, |Q| = j) bound with the packed
//     RankedPairScan; a cell is a member when the bound stays within
//     the cap. Every cell
//     also re-checks its best pair against
//     min_timeliness_bound_reference, so the packed analyzer is
//     differentially pinned on every family's schedules; mismatches
//     are counted (and summed across shards) in the JSON.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/solvability.h"
#include "src/core/sweep.h"
#include "src/core/sweep_cli.h"
#include "src/sched/analyzer.h"
#include "src/sched/families.h"
#include "src/sched/reactive.h"
#include "src/util/arena.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void print_family_grid(core::ExperimentRunner& runner,
                       core::JsonSink& json) {
  core::SweepGrid grid;
  core::RunConfig proto;
  proto.max_steps = 250'000;
  grid.add_spec({2, 2, 5})
      .add_family(core::ScheduleFamily::kEnforcedRandom);
  for (const auto family : core::randomized_families()) {
    grid.add_family(family);
  }
  for (const auto family : core::reactive_families()) {
    grid.add_family(family);
  }
  grid.add_bound(3)
      .repeats(runner.options().repeat)
      .base_seed(47)
      .prototype(proto);

  core::TableSink table;
  core::AggregateSink agg;
  runner.run(grid, "family_grid", {&table, &agg, &json});
  const core::SweepAggregate& a = agg.aggregate();
  std::cout << "EXP-ADV: (2,2,5)-agreement in S^2_{3,5} vs the "
               "adversary families (repeat="
            << runner.options().repeat
            << ", threads=" << runner.pool().threads() << ")\n"
            << table.render();
  if (!a.steps.empty()) {
    std::cout << "  steps mean " << a.steps.mean() << " +/- "
              << ci95_halfwidth(a.steps) << ", witness bound mean "
              << a.witness_bound.mean() << " +/- "
              << ci95_halfwidth(a.witness_bound) << " (95% CI over "
              << a.cells << " cells)\n";
  }
  std::cout << "\n";
}

struct FrontierCell {
  std::size_t family = 0;  // index into the combined adversary list
  int i = 0;
  int j = 0;
  std::int64_t best_bound = 0;
  bool member = false;          // best_bound <= kBoundCap
  bool reference_match = true;  // packed == reference on the best pair
};

constexpr int kFrontierN = 5;
constexpr std::int64_t kFrontierLen = 20'000;
constexpr std::int64_t kBoundCap = 4;
constexpr std::uint64_t kFrontierSeed = 77;

/// JSON annotation token for a family ("crash-prone" -> "crash_prone").
std::string family_key(const std::string& name) {
  std::string key = name;
  std::replace(key.begin(), key.end(), '-', '_');
  return key;
}

void print_frontier_map(core::ExperimentRunner& runner,
                        core::JsonSink& json) {
  // Combined adversary axis: the oblivious registry first, then the
  // reactive adversaries (reactive.h) driven in pure-generation mode
  // through generate_observed — the frontier quantifies over both.
  const auto& families = sched::schedule_families();
  const auto& reactives = sched::reactive_adversaries();
  std::vector<std::string> names;
  for (const auto& info : families) names.emplace_back(info.name);
  for (const auto& info : reactives) names.emplace_back(info.name);
  // Flat cell space: adversary-major, then (i, j) in row-major order.
  std::vector<std::pair<int, int>> pairs;
  for (int i = 1; i <= kFrontierN; ++i) {
    for (int j = i; j <= kFrontierN; ++j) pairs.emplace_back(i, j);
  }
  const std::size_t count = names.size() * pairs.size();

  core::WallTimer timer;
  const auto cells = runner.map<FrontierCell>(count, [&](std::size_t idx) {
    FrontierCell cell;
    cell.family = idx / pairs.size();
    cell.i = pairs[idx % pairs.size()].first;
    cell.j = pairs[idx % pairs.size()].second;
    const std::uint64_t seed =
        core::derive_cell_seed(kFrontierSeed, idx);
    sched::Schedule s(kFrontierN);
    if (cell.family < families.size()) {
      sched::FamilyParams params;
      params.n = kFrontierN;
      params.scale = 64;
      params.crash_count = 2;
      params.crash_horizon = kFrontierLen / 2;
      params.gst = kFrontierLen / 4;
      auto gen =
          sched::make_family(families[cell.family].kind, params, seed);
      s = sched::generate(*gen, kFrontierLen);
    } else {
      sched::ReactiveParams params;
      params.n = kFrontierN;
      params.stretch = 64;
      params.crash_budget = 2;
      // Aim the silencing at the cell: to starve an |P| = i set, at
      // least n - i + 1 victims guarantee some P member stays silent.
      params.victims =
          std::clamp(kFrontierN - cell.i + 1, 1, kFrontierN - 1);
      auto gen = sched::make_reactive(
          reactives[cell.family - families.size()].kind, params, seed);
      s = sched::generate_observed(*gen, kFrontierLen);
    }
    // Pack and scan on this worker's pool arena: the frame rewinds the
    // cell's footprint on exit, so long frontier maps stay within the
    // arena reserve instead of churning the heap per cell.
    util::ArenaAllocator& arena = runner.worker_arena();
    const util::FrameScope frame(arena);
    const sched::PackedSchedule packed(s, arena);
    const sched::TimelyPair best =
        sched::RankedPairScan(packed, cell.i, cell.j, &arena).best_pair();
    cell.best_bound = best.bound;
    cell.member = best.bound <= kBoundCap;
    cell.reference_match =
        sched::min_timeliness_bound_reference(
            s, best.timely_set, best.observed_set) == best.bound;
    return cell;
  });
  const double wall = timer.seconds();

  // Built by append: `const char* + std::string&&` chains trip the
  // GCC 12 -Wrestrict false positive (PR105651, see core/spec.h).
  std::string member_header = "member (cap ";
  member_header.append(std::to_string(kBoundCap)).append(")");
  TextTable table({"family", "(i,j)", "best bound", member_header});
  std::vector<double> members(names.size(), 0.0);
  double mismatches = 0.0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const FrontierCell& cell = cells[c];
    std::string pair_label = "(";
    pair_label.append(std::to_string(cell.i))
        .append(",")
        .append(std::to_string(cell.j))
        .append(")");
    table.row()
        .cell(names[cell.family])
        .cell(pair_label)
        .cell(cell.best_bound)
        .cell(cell.member ? "yes" : "no");
    members[cell.family] += cell.member ? 1.0 : 0.0;
    mismatches += cell.reference_match ? 0.0 : 1.0;
  }
  std::cout << "EXP-ADVb: which (i,j) bounds does each family keep? "
               "(n=" << kFrontierN << ", " << kFrontierLen
            << "-step prefixes, best pair per cell)\n"
            << table.render()
            << "  packed-vs-reference mismatches: " << mismatches
            << "\n\n";

  json.section("frontier_map", cells.size(), wall);
  for (std::size_t f = 0; f < names.size(); ++f) {
    json.annotate("members_" + family_key(names[f]), members[f]);
  }
  json.annotate("reference_mismatches", mismatches);
}

void BM_FamilyGenerate(benchmark::State& state) {
  const auto& families = sched::schedule_families();
  const sched::FamilyInfo& info =
      families[static_cast<std::size_t>(state.range(0))];
  sched::FamilyParams params;
  params.n = 16;
  params.crash_count = 4;
  for (auto _ : state) {
    auto gen = sched::make_family(info.kind, params, 42);
    benchmark::DoNotOptimize(sched::generate(*gen, 1 << 14));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
  state.SetLabel(info.name);
}
BENCHMARK(BM_FamilyGenerate)->DenseRange(0, 5);

void BM_ReactiveGenerate(benchmark::State& state) {
  const auto& reactives = sched::reactive_adversaries();
  const sched::ReactiveInfo& info =
      reactives[static_cast<std::size_t>(state.range(0))];
  sched::ReactiveParams params;
  params.n = 16;
  params.crash_budget = 4;
  for (auto _ : state) {
    auto gen = sched::make_reactive(info.kind, params, 42);
    benchmark::DoNotOptimize(sched::generate_observed(*gen, 1 << 14));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
  state.SetLabel(info.name);
}
BENCHMARK(BM_ReactiveGenerate)->DenseRange(0, 2);

void BM_FrontierCellScan(benchmark::State& state) {
  sched::FamilyParams params;
  params.n = kFrontierN;
  params.crash_count = 2;
  params.crash_horizon = kFrontierLen / 2;
  auto gen =
      sched::make_family(sched::FamilyKind::kBursty, params, 42);
  const sched::Schedule s = sched::generate(*gen, kFrontierLen);
  const sched::PackedSchedule packed(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::RankedPairScan(packed, 2, 4).best_pair());
  }
}
BENCHMARK(BM_FrontierCellScan)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "adversary_frontier");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_family_grid(runner, json);
  print_frontier_map(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
