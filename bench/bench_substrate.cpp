// EXP-SUB1 — substrate microbenchmarks: registers, coroutine step
// dispatch, subset ranking, schedule generation and analysis, and the
// threaded register implementation. A schedule-analysis sweep section
// (generator family × length grid) runs through the persistent
// ExperimentRunner pool (--threads / --shard / --json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "src/core/runner.h"
#include "src/core/sweep.h"
#include "src/core/sweep_cli.h"
#include "src/runtime/rt_memory.h"
#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/sched/simd.h"
#include "src/shm/memory.h"
#include "src/shm/process.h"
#include "src/shm/program.h"
#include "src/shm/simulator.h"
#include "src/shm/snapshot.h"
#include "src/util/arena.h"
#include "src/util/procset.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

void BM_SimMemoryReadWrite(benchmark::State& state) {
  shm::SimMemory mem;
  const auto reg = mem.alloc("r");
  mem.write(reg, shm::Value::of(1, 2, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.read(reg));
    mem.write(reg, shm::Value::of(4, 5, 6));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SimMemoryReadWrite);

void BM_RtMemoryReadWrite(benchmark::State& state) {
  runtime::RtMemory mem;
  const auto reg = mem.alloc("r");
  mem.write(reg, shm::Value::of(1, 2, 3));
  mem.freeze();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.read(reg));
    mem.write(reg, shm::Value::of(4, 5, 6));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_RtMemoryReadWrite);

shm::Prog spin_reader(shm::RegisterId reg) {
  for (;;) {
    benchmark::DoNotOptimize(co_await shm::read(reg));
  }
}

void BM_CoroutineStepDispatch(benchmark::State& state) {
  shm::SimMemory mem;
  const auto reg = mem.alloc("r");
  shm::ProcessRuntime proc(0);
  proc.add_task(spin_reader(reg), "spin");
  for (auto _ : state) {
    proc.step(mem);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoroutineStepDispatch);

void BM_SubsetRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = n / 2;
  SubsetRanker ranker(n, k);
  std::int64_t r = 0;
  for (auto _ : state) {
    const ProcSet s = ranker.unrank(r % ranker.count());
    benchmark::DoNotOptimize(ranker.rank(s));
    ++r;
  }
}
BENCHMARK(BM_SubsetRank)->Arg(8)->Arg(12)->Arg(16);

void BM_GeneratorThroughput(benchmark::State& state) {
  sched::UniformRandomGenerator gen(8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneratorThroughput);

void BM_EnforcedGeneratorThroughput(benchmark::State& state) {
  auto base = std::make_unique<sched::UniformRandomGenerator>(8, 5);
  auto gen = sched::EnforcedGenerator::single(
      std::move(base), sched::TimelinessConstraint(
                           ProcSet::range(0, 2), ProcSet::range(0, 5), 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen->next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnforcedGeneratorThroughput);

shm::Prog snapshot_loop(shm::AtomicSnapshot* snap, Pid p) {
  for (std::int64_t r = 1;; ++r) {
    SETLIB_CO_RUN(snap->update(p, r));
    std::vector<std::int64_t> out;
    SETLIB_CO_RUN(snap->scan(p, &out));
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_AtomicSnapshotSteps(benchmark::State& state) {
  // Simulator steps/sec with every process doing update+scan loops.
  const int n = static_cast<int>(state.range(0));
  shm::SimMemory mem;
  shm::AtomicSnapshot snap(mem, n, "snap");
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(snapshot_loop(&snap, p), "snap");
  }
  sched::RoundRobinGenerator gen(n);
  for (auto _ : state) {
    sim.run(gen, 10'000);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_AtomicSnapshotSteps)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_AnalyzerScan(benchmark::State& state) {
  const std::int64_t len = state.range(0);
  sched::UniformRandomGenerator gen(8, 9);
  const auto schedule = sched::generate(gen, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::min_timeliness_bound(
        schedule, ProcSet::range(0, 2), ProcSet::range(2, 8)));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_AnalyzerScan)->Arg(1 << 14)->Arg(1 << 18);

void BM_PackSchedule(benchmark::State& state) {
  // repack() into a recycled instance on an arena: the pack-once
  // pipeline's per-run packing cost, with the arena counters exported
  // per op — 0 allocs/op is the steady-state claim.
  const std::int64_t len = state.range(0);
  sched::UniformRandomGenerator gen(8, 9);
  const auto schedule = sched::generate(gen, len);
  util::ArenaAllocator arena;
  const std::int64_t allocs_before = arena.allocs();
  const std::int64_t bytes_before = arena.bytes();
  for (auto _ : state) {
    const util::FrameScope frame(arena);
    sched::PackedSchedule packed(schedule, arena);
    benchmark::DoNotOptimize(packed.column(0));
  }
  const auto ops = static_cast<double>(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(state.iterations())));
  state.counters["allocs_per_op"] =
      static_cast<double>(arena.allocs() - allocs_before) / ops;
  state.counters["bytes_per_op"] =
      static_cast<double>(arena.bytes() - bytes_before) / ops;
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_PackSchedule)->Arg(1 << 14)->Arg(1 << 18);

void run_ranked_pair_scan(benchmark::State& state,
                          const sched::simd::Kernels* force) {
  // Full (i=2, j=6) census over a packed n=8 prefix, scratch on an
  // arena. The SIMD/Scalar pair differ only in the kernel table, so
  // their ratio is the vectorization win on this host.
  const std::int64_t len = state.range(0);
  sched::simd::set_kernels_for_testing(force);
  sched::UniformRandomGenerator gen(8, 9);
  const auto schedule = sched::generate(gen, len);
  const sched::PackedSchedule packed(schedule);
  util::ArenaAllocator arena;
  const std::int64_t allocs_before = arena.allocs();
  std::int64_t pairs = 0;
  for (auto _ : state) {
    const sched::RankedPairScan scan(packed, 2, 6, &arena);
    const auto count = scan.count_members(3);
    benchmark::DoNotOptimize(count.members);
    pairs = count.pairs;
  }
  sched::simd::set_kernels_for_testing(nullptr);
  const auto ops = static_cast<double>(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(state.iterations())));
  state.counters["allocs_per_op"] =
      static_cast<double>(arena.allocs() - allocs_before) / ops;
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(state.iterations() * pairs);
}

void BM_RankedPairScanSIMD(benchmark::State& state) {
  run_ranked_pair_scan(state, nullptr);  // dispatched best-for-host
}
BENCHMARK(BM_RankedPairScanSIMD)->Arg(1 << 12)->Arg(1 << 14);

void BM_RankedPairScanScalar(benchmark::State& state) {
  run_ranked_pair_scan(state, &sched::simd::scalar_kernels());
}
BENCHMARK(BM_RankedPairScanScalar)->Arg(1 << 12)->Arg(1 << 14);

void print_analysis_sweep(core::ExperimentRunner& runner,
                          core::JsonSink& json) {
  // EXP-SUB1b: generate-and-analyze grid — generator family × schedule
  // length, each cell measuring the min timeliness bound of the first
  // 2 processes w.r.t. the rest on a fresh seeded schedule.
  const int n = 8;
  const std::int64_t lengths[] = {1 << 12, 1 << 14, 1 << 16};
  constexpr std::size_t kFamilies = 2;  // uniform, round-robin
  const std::size_t cells = std::size(lengths) * kFamilies;
  const std::size_t first = runner.shard_range(cells).first;

  core::WallTimer timer;
  const auto bounds = runner.map<std::int64_t>(
      cells, [&](std::size_t idx) {
        const std::int64_t len = lengths[idx / kFamilies];
        const bool uniform = idx % kFamilies == 0;
        const sched::Schedule schedule = [&] {
          if (uniform) {
            sched::UniformRandomGenerator gen(
                n, core::derive_cell_seed(9, idx));
            return sched::generate(gen, len);
          }
          sched::RoundRobinGenerator gen(n);
          return sched::generate(gen, len);
        }();
        return sched::min_timeliness_bound(
            schedule, ProcSet::range(0, 2), ProcSet::range(2, n));
      });
  const double wall = timer.seconds();

  TextTable table({"generator", "length", "bound {0,1} vs rest"});
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::size_t idx = first + i;
    table.row()
        .cell(idx % kFamilies == 0 ? "uniform" : "round-robin")
        .cell(lengths[idx / kFamilies])
        .cell(bounds[i]);
  }
  std::cout << "EXP-SUB1b: schedule generate+analyze sweep (n=" << n
            << ", threads=" << runner.pool().threads() << ")\n"
            << table.render() << "\n";
  json.section("analysis_sweep", bounds.size(), wall);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      setlib::core::parse_runner_options(&argc, argv, "substrate");
  setlib::core::ExperimentRunner runner(options);
  setlib::core::JsonSink json = runner.json_sink();
  print_analysis_sweep(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
