// EXP-T27 — the paper's main result as a table.
//
// For each (t, k, n), every system S^i_{j,n} is run against an
// adversarial schedule family that provably lies in it, and the
// observable frontier — does the Figure 2 algorithm still implement
// t-resilient k-anti-Omega? — is compared against the Theorem 27
// predicate: solvable iff i <= k and j - i >= t + 1 - k.
//
// The (i, j) cells of every matrix run through one persistent
// core::ExperimentRunner; `--threads=N` shards them across the
// work-stealing pool with bit-identical cell results at any N,
// `--shard=K/N` slices the cell space across processes, and `--json`
// records the per-matrix trajectory (cells/wall/throughput plus
// per-cell rows) in BENCH_thm27_matrix.json. Each cell's reported
// witness_bound is measured on the executed schedule by the
// word-packed analyzer (sched::min_timeliness_bound).
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/experiments.h"
#include "src/core/sweep_cli.h"

namespace {

using namespace setlib;

void print_matrices(core::ExperimentRunner& runner,
                    core::JsonSink& json) {
  struct Spec {
    int t, k, n;
  };
  const Spec specs[] = {{2, 1, 4}, {2, 2, 5}, {3, 2, 5}, {3, 1, 5},
                        {3, 3, 6}};
  int mismatches = 0;
  int cells = 0;
  for (const auto& spec : specs) {
    core::MatrixConfig cfg;
    cfg.spec = {spec.t, spec.k, spec.n};
    cfg.max_steps = 900'000;
    const auto matrix = core::thm27_matrix(cfg, runner, {&json});
    std::cout << core::render_matrix(cfg.spec, matrix) << "\n";
    int spec_mismatches = 0;
    for (const auto& cell : matrix) {
      ++cells;
      if (!cell.matches) {
        ++mismatches;
        ++spec_mismatches;
      }
    }
    json.annotate("mismatches", static_cast<double>(spec_mismatches));
  }
  std::cout << "EXP-T27 summary: " << cells - mismatches << "/" << cells
            << " cells match the Theorem 27 frontier (threads="
            << runner.pool().threads() << ")\n\n";
}

void BM_MatrixCellSolvable(benchmark::State& state) {
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {2, 2, 5};
    cfg.system = {2, 3, 5};
    cfg.family = core::ScheduleFamily::kRotisserie;
    cfg.max_steps = 600'000;
    benchmark::DoNotOptimize(core::run_agreement(cfg).success);
  }
}
BENCHMARK(BM_MatrixCellSolvable)->Unit(benchmark::kMillisecond);

void BM_MatrixCellUnsolvable(benchmark::State& state) {
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {2, 1, 4};
    cfg.system = {1, 2, 4};
    cfg.family = core::ScheduleFamily::kRotisserie;
    cfg.run_full_budget = true;
    cfg.max_steps = 600'000;
    benchmark::DoNotOptimize(
        core::run_agreement(cfg).detector.abstract_ok);
  }
}
BENCHMARK(BM_MatrixCellUnsolvable)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "thm27_matrix");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_matrices(runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
