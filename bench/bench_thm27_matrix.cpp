// EXP-T27 — the paper's main result as a table.
//
// For each (t, k, n), every system S^i_{j,n} is run against an
// adversarial schedule family that provably lies in it, and the
// observable frontier — does the Figure 2 algorithm still implement
// t-resilient k-anti-Omega? — is compared against the Theorem 27
// predicate: solvable iff i <= k and j - i >= t + 1 - k.
//
// The (i, j) cells of every matrix run through core::ParallelSweep;
// `--threads=N` shards them across the work-stealing pool with
// bit-identical cell results at any N, and `--json` records the
// cells/wall/throughput trajectory in BENCH_thm27_matrix.json.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/experiments.h"
#include "src/core/sweep_cli.h"

namespace {

using namespace setlib;

void print_matrices(const core::BenchOptions& options,
                    core::BenchJson& json) {
  struct Spec {
    int t, k, n;
  };
  const Spec specs[] = {{2, 1, 4}, {2, 2, 5}, {3, 2, 5}, {3, 1, 5},
                        {3, 3, 6}};
  int mismatches = 0;
  int cells = 0;
  for (const auto& spec : specs) {
    core::MatrixConfig cfg;
    cfg.spec = {spec.t, spec.k, spec.n};
    cfg.max_steps = 900'000;
    cfg.threads = options.threads;
    core::WallTimer timer;
    const auto matrix = core::thm27_matrix(cfg);
    const double wall = timer.seconds();
    std::cout << core::render_matrix(cfg.spec, matrix) << "\n";
    int spec_mismatches = 0;
    for (const auto& cell : matrix) {
      ++cells;
      if (!cell.matches) {
        ++mismatches;
        ++spec_mismatches;
      }
    }
    json.section("matrix_" + cfg.spec.to_string(), matrix.size(), wall,
                 {{"mismatches", static_cast<double>(spec_mismatches)}});
  }
  std::cout << "EXP-T27 summary: " << cells - mismatches << "/" << cells
            << " cells match the Theorem 27 frontier (threads="
            << options.threads << ")\n\n";
}

void BM_MatrixCellSolvable(benchmark::State& state) {
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {2, 2, 5};
    cfg.system = {2, 3, 5};
    cfg.family = core::ScheduleFamily::kRotisserie;
    cfg.max_steps = 600'000;
    benchmark::DoNotOptimize(core::run_agreement(cfg).success);
  }
}
BENCHMARK(BM_MatrixCellSolvable)->Unit(benchmark::kMillisecond);

void BM_MatrixCellUnsolvable(benchmark::State& state) {
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {2, 1, 4};
    cfg.system = {1, 2, 4};
    cfg.family = core::ScheduleFamily::kRotisserie;
    cfg.run_full_budget = true;
    cfg.max_steps = 600'000;
    benchmark::DoNotOptimize(
        core::run_agreement(cfg).detector.abstract_ok);
  }
}
BENCHMARK(BM_MatrixCellUnsolvable)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_bench_options(&argc, argv, "thm27_matrix");
  core::BenchJson json(options);
  print_matrices(options, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
