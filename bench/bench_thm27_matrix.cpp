// EXP-T27 — the paper's main result as a table.
//
// For each (t, k, n), every system S^i_{j,n} is run against an
// adversarial schedule family that provably lies in it, and the
// observable frontier — does the Figure 2 algorithm still implement
// t-resilient k-anti-Omega? — is compared against the Theorem 27
// predicate: solvable iff i <= k and j - i >= t + 1 - k.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/experiments.h"

namespace {

using namespace setlib;

void print_matrices() {
  struct Spec {
    int t, k, n;
  };
  const Spec specs[] = {{2, 1, 4}, {2, 2, 5}, {3, 2, 5}, {3, 1, 5},
                        {3, 3, 6}};
  int mismatches = 0;
  int cells = 0;
  for (const auto& spec : specs) {
    core::MatrixConfig cfg;
    cfg.spec = {spec.t, spec.k, spec.n};
    cfg.max_steps = 900'000;
    const auto matrix = core::thm27_matrix(cfg);
    std::cout << core::render_matrix(cfg.spec, matrix) << "\n";
    for (const auto& cell : matrix) {
      ++cells;
      if (!cell.matches) ++mismatches;
    }
  }
  std::cout << "EXP-T27 summary: " << cells - mismatches << "/" << cells
            << " cells match the Theorem 27 frontier\n\n";
}

void BM_MatrixCellSolvable(benchmark::State& state) {
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {2, 2, 5};
    cfg.system = {2, 3, 5};
    cfg.family = core::ScheduleFamily::kRotisserie;
    cfg.max_steps = 600'000;
    benchmark::DoNotOptimize(core::run_agreement(cfg).success);
  }
}
BENCHMARK(BM_MatrixCellSolvable)->Unit(benchmark::kMillisecond);

void BM_MatrixCellUnsolvable(benchmark::State& state) {
  for (auto _ : state) {
    core::RunConfig cfg;
    cfg.spec = {2, 1, 4};
    cfg.system = {1, 2, 4};
    cfg.family = core::ScheduleFamily::kRotisserie;
    cfg.run_full_budget = true;
    cfg.max_steps = 600'000;
    benchmark::DoNotOptimize(
        core::run_agreement(cfg).detector.abstract_ok);
  }
}
BENCHMARK(BM_MatrixCellUnsolvable)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matrices();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
