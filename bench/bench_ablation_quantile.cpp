// EXP-ABL — ablation of the Figure 2 accusation quantile.
//
// The algorithm aggregates Counter[A, *] with the (t+1)-st smallest
// entry. This bench shows the choice is tight from both sides, on two
// schedules that are both legitimately in S^k_{t+1,n}:
//   scenario CRASH: t processes crash at step 0 (their counter entries
//     freeze at 0), rest round-robin. Quantiles <= t trust the dead:
//     they stabilize on the fully-crashed rank-0 set.
//   scenario ROTISSERIE: t+1-k processes crash at step 0 and the live
//     processes rotate solo in growing bursts: each live k-set has
//     exactly t+1 freezable entries, so quantiles >= t+2 never settle.
// The (quantile, scenario) grid shards across the persistent
// ExperimentRunner pool (--threads / --shard).
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/runner.h"
#include "src/core/sweep_cli.h"
#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/table.h"

namespace {

using namespace setlib;

struct Outcome {
  bool property = false;
  bool stabilized = false;
  std::string winnerset;
  std::int64_t changes = 0;
};

Outcome run_scenario(int n, int k, int t, int quantile, bool rotisserie) {
  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  const int gap = rotisserie ? t + 1 - k : t;
  const ProcSet crashed = rotisserie ? ProcSet::range(n - gap, n)
                                     : ProcSet::range(0, t);
  const ProcSet correct = crashed.complement(n);
  if (!crashed.empty()) {
    sim.use_crash_plan(sched::CrashPlan::at(n, crashed, 0));
  }
  fd::KAntiOmega detector(mem,
                          fd::KAntiOmega::Params{n, k, t, 1, quantile});
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
  }
  if (rotisserie) {
    sched::RotatingStarverGenerator gen(n, correct, ProcSet(), 600);
    sim.run(gen, 1'400'000);
  } else {
    sched::RoundRobinGenerator gen(n);
    sim.run_until(gen, 900'000,
                  [&] { return detector.stabilized(correct, 8); });
  }
  const auto check = fd::check_kantiomega(detector, correct, 6);
  std::int64_t changes = 0;
  for (Pid p : correct.to_vector()) {
    changes += detector.view(p).winnerset_changes;
  }
  return {check.abstract_ok, check.stabilized,
          check.stabilized ? check.winnerset.to_string() : "-", changes};
}

void print_ablation(int n, int k, int t,
                    core::ExperimentRunner& runner,
                    core::JsonSink& json) {
  // Grid: one sweep item per quantile (1..n), each running both the
  // CRASH and ROTISSERIE scenarios. Sharding at quantile granularity
  // keeps every table row whole — a row's scenario pair is never
  // split across shards, so the union of shard outputs is exactly the
  // unsharded table.
  struct PairOutcome {
    Outcome crash;
    Outcome rotisserie;
  };
  const std::size_t quantiles = static_cast<std::size_t>(n);
  const std::size_t first = runner.shard_range(quantiles).first;
  core::WallTimer timer;
  const auto outcomes = runner.map<PairOutcome>(
      quantiles, [&](std::size_t idx) {
        const int quantile = static_cast<int>(idx) + 1;
        return PairOutcome{run_scenario(n, k, t, quantile, false),
                           run_scenario(n, k, t, quantile, true)};
      });
  const double wall = timer.seconds();

  TextTable table({"quantile", "CRASH: property", "CRASH: winnerset",
                   "ROTISSERIE: property", "ROTISSERIE: ws changes",
                   "verdict"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const int quantile = static_cast<int>(first + i) + 1;
    const Outcome& crash = outcomes[i].crash;
    const Outcome& rot = outcomes[i].rotisserie;
    const bool both = crash.property && rot.property;
    std::string label = std::to_string(quantile);
    if (quantile == t + 1) label += " (paper)";
    table.row()
        .cell(label)
        .cell(crash.property ? "ok" : "FAIL")
        .cell(crash.winnerset)
        .cell(rot.property ? "ok" : "FAIL")
        .cell(rot.changes)
        .cell(both ? "works" : "broken");
  }
  std::cout << "EXP-ABL: accusation quantile ablation, n=" << n
            << " k=" << k << " t=" << t
            << " (paper uses the (t+1)-st smallest = " << t + 1 << ")\n"
            << table.render() << "\n";
  std::string section = "ablation_n" + std::to_string(n) + "k" +
                        std::to_string(k) + "t" + std::to_string(t);
  json.section(section, outcomes.size() * 2, wall);
}

void BM_AblationScenario(benchmark::State& state) {
  const int quantile = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_scenario(5, 2, 2, quantile, true));
  }
}
BENCHMARK(BM_AblationScenario)->Arg(1)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      core::parse_runner_options(&argc, argv, "ablation_quantile");
  core::ExperimentRunner runner(options);
  core::JsonSink json = runner.json_sink();
  print_ablation(5, 2, 2, runner, json);
  print_ablation(6, 2, 3, runner, json);
  json.write_if_requested();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
