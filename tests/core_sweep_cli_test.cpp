// The shared bench CLI: strict integer parsing. Overflowing values
// must be rejected (strtol saturates with errno=ERANGE, which used to
// pass silently as LONG_MAX), long->int narrowing must not wrap, and
// malformed values fail with a message naming the flag.
#include "src/core/sweep_cli.h"

#include <gtest/gtest.h>

#include <climits>
#include <string>
#include <vector>

#include "src/util/assert.h"

namespace setlib::core {
namespace {

RunnerOptions parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "prog";
  argv.push_back(prog.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());
  return parse_runner_options(&argc, argv.data(), "cli_test");
}

TEST(SweepCliTest, ParsesAndStripsTheSharedFlags) {
  const RunnerOptions options =
      parse({"--threads=4", "--repeat=3", "--shard=1/3", "--grain=16",
             "--json=out.json"});
  EXPECT_EQ(options.threads, 4);
  EXPECT_EQ(options.repeat, 3);
  EXPECT_EQ(options.shard.k, 1u);
  EXPECT_EQ(options.shard.n, 3u);
  EXPECT_EQ(options.grain, 16u);
  EXPECT_TRUE(options.json);
  EXPECT_EQ(options.json_path, "out.json");
}

TEST(SweepCliTest, UnrecognizedArgsSurviveInOrder) {
  std::vector<std::string> args = {"--benchmark_list_tests",
                                   "--threads=2", "positional"};
  std::vector<char*> argv;
  std::string prog = "prog";
  argv.push_back(prog.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());
  parse_runner_options(&argc, argv.data(), "cli_test");
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--benchmark_list_tests");
  EXPECT_STREQ(argv[2], "positional");
}

TEST(SweepCliTest, OverflowingLongIsRejectedNotSaturated) {
  // 20 nines saturate strtol to LONG_MAX with errno=ERANGE; the old
  // parser accepted that as a value.
  EXPECT_THROW(parse({"--grain=99999999999999999999"}),
               ContractViolation);
}

TEST(SweepCliTest, HugeIntFlagDoesNotWrap) {
  // Fits in long, not in int: must be an error, not a wrapped int.
  EXPECT_THROW(parse({"--threads=99999999999"}), ContractViolation);
  EXPECT_THROW(parse({"--repeat=2147483648"}), ContractViolation);
  // INT_MAX itself still parses.
  const RunnerOptions options = parse({"--threads=2147483647"});
  EXPECT_EQ(options.threads, INT_MAX);
}

TEST(SweepCliTest, TrailingGarbageAndEmptyValuesAreRejected) {
  EXPECT_THROW(parse({"--threads=8x"}), ContractViolation);
  EXPECT_THROW(parse({"--threads="}), ContractViolation);
  EXPECT_THROW(parse({"--grain=x"}), ContractViolation);
  EXPECT_THROW(parse({"--json="}), ContractViolation);
}

TEST(SweepCliTest, ShardFlagValidatesItsShape) {
  EXPECT_THROW(parse({"--shard=3/3"}), ContractViolation);
  EXPECT_THROW(parse({"--shard=-1/3"}), ContractViolation);
  EXPECT_THROW(parse({"--shard=1"}), ContractViolation);
  EXPECT_THROW(parse({"--shard=1/"}), ContractViolation);
  EXPECT_THROW(parse({"--shard=99999999999999999999/3"}),
               ContractViolation);
}

TEST(SweepCliTest, CellsFlagParsesLeases) {
  // Bare LO..HI rides on the default virtual span.
  RunnerOptions options = parse({"--cells=1024..4096"});
  EXPECT_TRUE(options.shard.leased);
  EXPECT_EQ(options.shard.lo, 1024u);
  EXPECT_EQ(options.shard.hi, 4096u);
  EXPECT_EQ(options.shard.span, ShardSpec::kLeaseSpan);
  EXPECT_EQ(options.shard.to_string(), "1024..4096/1048576");
  EXPECT_FALSE(options.shard.whole());
  // An explicit span travels after the slash.
  options = parse({"--cells=2..6/8"});
  EXPECT_TRUE(options.shard.leased);
  EXPECT_EQ(options.shard.lo, 2u);
  EXPECT_EQ(options.shard.hi, 6u);
  EXPECT_EQ(options.shard.span, 8u);
  // [total*lo/span, total*hi/span): the floor arithmetic that makes
  // tilings of the virtual span tile every real space.
  const auto [begin, end] = options.shard.range(10);
  EXPECT_EQ(begin, 2u);
  EXPECT_EQ(end, 7u);
  // The whole span is the unsharded run.
  EXPECT_TRUE(parse({"--cells=0..8/8"}).shard.whole());
}

TEST(SweepCliTest, CellsFlagValidatesItsShape) {
  EXPECT_THROW(parse({"--cells=5"}), ContractViolation);
  EXPECT_THROW(parse({"--cells=5..4"}), ContractViolation);
  EXPECT_THROW(parse({"--cells=0..9/8"}), ContractViolation);
  EXPECT_THROW(parse({"--cells=-1..4"}), ContractViolation);
  EXPECT_THROW(parse({"--cells=0..4/0"}), ContractViolation);
  EXPECT_THROW(parse({"--cells=0..4x"}), ContractViolation);
  EXPECT_THROW(parse({"--cells=..4"}), ContractViolation);
  EXPECT_THROW(parse({"--cells=0../8"}), ContractViolation);
}

TEST(SweepCliTest, ShardAndCellsAreMutuallyExclusive) {
  EXPECT_THROW(parse({"--shard=0/2", "--cells=0..8/8"}),
               ContractViolation);
  EXPECT_THROW(parse({"--cells=0..8/8", "--shard=0/2"}),
               ContractViolation);
}

TEST(SweepCliTest, DoubleValuesParseStrictly) {
  EXPECT_DOUBLE_EQ(parse_double_value("2.5", "--f="), 2.5);
  EXPECT_DOUBLE_EQ(parse_double_value("4", "--f="), 4.0);
  EXPECT_THROW(parse_double_value("", "--f="), ContractViolation);
  EXPECT_THROW(parse_double_value("2.5x", "--f="), ContractViolation);
  EXPECT_THROW(parse_double_value("nan", "--f="), ContractViolation);
  EXPECT_THROW(parse_double_value("1e999", "--f="), ContractViolation);
  double out = 0.0;
  EXPECT_TRUE(consume_double_flag("--f=1.5", "--f=", &out));
  EXPECT_DOUBLE_EQ(out, 1.5);
  EXPECT_FALSE(consume_double_flag("--g=1.5", "--f=", &out));
}

TEST(SweepCliTest, NegativeCountsAreRejected) {
  EXPECT_THROW(parse({"--threads=-1"}), ContractViolation);
  EXPECT_THROW(parse({"--repeat=0"}), ContractViolation);
  EXPECT_THROW(parse({"--grain=-5"}), ContractViolation);
}

TEST(SweepCliTest, ParseValueHelpersNameTheFlag) {
  try {
    parse_int_value("99999999999", "--workers=");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--workers="),
              std::string::npos);
  }
  EXPECT_EQ(parse_int_value("12", "--workers="), 12);
  EXPECT_EQ(parse_long_value("-3", "--x="), -3);
}

}  // namespace
}  // namespace setlib::core
