// The JSON document model behind the shard merger: strict parsing,
// literal-preserving round trips, and the emission helpers every
// JSON writer in the repo shares.
#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace setlib {
namespace {

TEST(JsonNumberTest, NonFiniteRendersAsNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(42.0), "42");
}

TEST(JsonQuoteTest, EscapesEverythingAParserNeeds) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(json_quote(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonQuoteTest, QuotedStringsRoundTripThroughTheParser) {
  const std::string nasty = "we\"ird\\name\nwith\tcontrol\x02 bytes";
  const JsonValue parsed = JsonValue::parse(json_quote(nasty));
  EXPECT_EQ(parsed.as_string(), nasty);
}

TEST(JsonParseTest, NumbersKeepTheirSourceLiteral) {
  EXPECT_EQ(JsonValue::parse("1e3").number_text(), "1e3");
  EXPECT_EQ(JsonValue::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(JsonValue::parse("0.50").number_text(), "0.50");
  EXPECT_EQ(JsonValue::parse("-7").as_int(), -7);
  // Equality is literal equality: merged documents must reproduce the
  // source rendering, not a numerically equal one.
  EXPECT_FALSE(JsonValue::parse("1e3") == JsonValue::parse("1000"));
  EXPECT_TRUE(JsonValue::parse("1e3") == JsonValue::parse("1e3"));
}

TEST(JsonParseTest, DocumentRoundTripsByteForByte) {
  const std::string doc =
      R"({"bench": "x", "cells": 12, "wall": 0.0625, "rows": )"
      R"([{"i": 0, "ok": 1}, {"i": 1, "ok": 0}], "tags": )"
      R"(["a", "b"], "none": null, "flag": true})";
  EXPECT_EQ(JsonValue::parse(doc).dump(), doc);
}

TEST(JsonParseTest, StrictnessRejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1,}"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1, 2"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("nan"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("inf"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("01"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("1 2"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"bad\\escape\""), JsonParseError);
}

TEST(JsonParseTest, UnicodeEscapesDecode) {
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(JsonObjectTest, DuplicateKeysKeepTheLastValue) {
  const JsonValue doc = JsonValue::parse(R"({"a": 1, "b": 2, "a": 3})");
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.at("a").as_int(), 3);
  EXPECT_EQ(doc.members()[0].first, "a");  // original position kept
}

TEST(JsonObjectTest, FindAtAndSet) {
  JsonValue doc = JsonValue::object();
  doc.set("k", JsonValue::of(std::int64_t{5}));
  EXPECT_EQ(doc.at("k").as_int(), 5);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), JsonParseError);
  doc.set("k", JsonValue::of("now a string"));
  EXPECT_EQ(doc.at("k").as_string(), "now a string");
  EXPECT_EQ(doc.members().size(), 1u);
}

TEST(JsonValueTest, OfDoubleMatchesJsonNumberRendering) {
  EXPECT_EQ(JsonValue::of(0.5).number_text(), json_number(0.5));
  EXPECT_TRUE(
      JsonValue::of(std::numeric_limits<double>::quiet_NaN()).is_null());
}

TEST(JsonValueTest, AsIntRejectsNonIntegralNumbers) {
  EXPECT_THROW(JsonValue::parse("1.5").as_int(), JsonParseError);
  EXPECT_EQ(JsonValue::parse("1e3").as_int(), 1000);
}

TEST(JsonValueTest, PrettyDumpParsesBack) {
  const JsonValue doc = JsonValue::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {}, "e": []})");
  const JsonValue reparsed = JsonValue::parse(doc.dump(2));
  EXPECT_TRUE(doc == reparsed);
}

}  // namespace
}  // namespace setlib
