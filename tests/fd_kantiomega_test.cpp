// Tests for the Figure 2 algorithm: structural checks, the lemma-level
// behaviours of the proof (counter freezing/divergence), and the
// detector property across a (n, k, t) x seed sweep.
#include "src/fd/kantiomega.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/fd/property.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/assert.h"

namespace setlib::fd {
namespace {

struct Rig {
  shm::SimMemory mem;
  std::unique_ptr<shm::Simulator> sim;
  std::unique_ptr<KAntiOmega> detector;

  Rig(int n, int k, int t) {
    detector = std::make_unique<KAntiOmega>(
        mem, KAntiOmega::Params{n, k, t, 1});
    sim = std::make_unique<shm::Simulator>(mem, n);
    for (Pid p = 0; p < n; ++p) {
      sim->process(p).add_task(detector->run(p), "fd");
    }
  }
};

TEST(KAntiOmegaTest, ValidatesParams) {
  shm::SimMemory mem;
  EXPECT_THROW(KAntiOmega(mem, {4, 0, 2, 1}), ContractViolation);
  EXPECT_THROW(KAntiOmega(mem, {4, 4, 2, 1}), ContractViolation);
  EXPECT_THROW(KAntiOmega(mem, {4, 2, 0, 1}), ContractViolation);
  EXPECT_THROW(KAntiOmega(mem, {4, 2, 4, 1}), ContractViolation);
  EXPECT_THROW(KAntiOmega(mem, {1, 1, 1, 1}), ContractViolation);
}

TEST(KAntiOmegaTest, RegisterLayout) {
  shm::SimMemory mem;
  KAntiOmega det(mem, {4, 2, 2, 1});
  // Heartbeat[4] + Counter[C(4,2)=6][4] = 4 + 24 registers.
  EXPECT_EQ(mem.register_count(), 4 + 6 * 4);
  EXPECT_EQ(mem.name(det.heartbeat_reg(0)), "Heartbeat[0]");
  EXPECT_EQ(det.counter_reg(1, 0), det.counter_reg(0, 0) + 4);
}

TEST(KAntiOmegaTest, OutputSizesAlwaysValid) {
  Rig rig(5, 2, 3);
  sched::RoundRobinGenerator gen(5);
  rig.sim->run(gen, 20'000);
  for (Pid p = 0; p < 5; ++p) {
    EXPECT_EQ(rig.detector->view(p).winnerset.size(), 2);
    EXPECT_EQ(rig.detector->view(p).fd_output.size(), 3);
    EXPECT_EQ(rig.detector->view(p).winnerset &
                  rig.detector->view(p).fd_output,
              ProcSet());
  }
}

TEST(KAntiOmegaTest, StabilizesUnderRoundRobin) {
  Rig rig(4, 1, 2);
  sched::RoundRobinGenerator gen(4);
  const ProcSet all = ProcSet::universe(4);
  rig.sim->run_until(gen, 500'000,
                     [&] { return rig.detector->stabilized(all, 8); });
  EXPECT_TRUE(rig.detector->stabilized(all, 8));
  const auto check = check_kantiomega(*rig.detector, all, 8);
  EXPECT_TRUE(check.ok) << check.detail;
  EXPECT_TRUE(check.abstract_ok);
}

TEST(KAntiOmegaTest, CrashedWinnersetIsAbandoned) {
  // Crash processes 0..k-1 (the initial rank-0 winnerset). Lemma 12/17:
  // its counters diverge, so the winnerset must move to live processes.
  const int n = 5, k = 2, t = 2;
  Rig rig(n, k, t);
  rig.sim->use_crash_plan(
      sched::CrashPlan::at(n, ProcSet::range(0, k), 0));
  sched::RoundRobinGenerator gen(n);
  const ProcSet correct = ProcSet::range(k, n);
  rig.sim->run_until(gen, 800'000,
                     [&] { return rig.detector->stabilized(correct, 8); });
  const auto check = check_kantiomega(*rig.detector, correct, 8);
  ASSERT_TRUE(check.stabilized) << check.detail;
  // Lemma 20 guarantees a correct member, not a fully-live winnerset: a
  // set mixing one crashed and one live process freezes too (the live
  // member's heartbeats reset its timers everywhere).
  EXPECT_TRUE(check.has_correct_winner) << check.detail;
  // The fully-crashed rank-0 set {0,1} must have been abandoned.
  EXPECT_NE(check.winnerset, ProcSet::range(0, k)) << check.detail;
}

TEST(KAntiOmegaTest, Lemma12CrashedSetCountersDiverge) {
  // If every process of a set A crashes, every correct process's
  // Counter[A, b] grows without bound.
  const int n = 4, k = 1, t = 2;
  Rig rig(n, k, t);
  rig.sim->use_crash_plan(sched::CrashPlan::at(n, ProcSet::of(3), 0));
  sched::RoundRobinGenerator gen(n);

  const std::int64_t rank3 = rig.detector->ranker().rank(ProcSet::of(3));
  rig.sim->run(gen, 100'000);
  std::vector<std::int64_t> mid;
  for (Pid b = 0; b < 3; ++b) {
    mid.push_back(rig.mem.peek(rig.detector->counter_reg(rank3, b))
                      .as_int_or(0));
  }
  rig.sim->run(gen, 400'000);
  for (Pid b = 0; b < 3; ++b) {
    const auto now =
        rig.mem.peek(rig.detector->counter_reg(rank3, b)).as_int_or(0);
    EXPECT_GT(now, mid[static_cast<std::size_t>(b)]) << "accuser " << b;
  }
}

TEST(KAntiOmegaTest, Lemma11TimelySetCountersFreeze) {
  // Under round-robin everyone is timely: after the adaptive timeouts
  // settle, counters stop changing (compare two late snapshots).
  const int n = 4, k = 2, t = 2;
  Rig rig(n, k, t);
  sched::RoundRobinGenerator gen(n);
  rig.sim->run(gen, 400'000);
  std::vector<std::int64_t> snap;
  const std::int64_t sets = rig.detector->ranker().count();
  for (std::int64_t a = 0; a < sets; ++a) {
    for (Pid q = 0; q < n; ++q) {
      snap.push_back(
          rig.mem.peek(rig.detector->counter_reg(a, q)).as_int_or(0));
    }
  }
  rig.sim->run(gen, 400'000);
  std::size_t idx = 0;
  for (std::int64_t a = 0; a < sets; ++a) {
    for (Pid q = 0; q < n; ++q, ++idx) {
      EXPECT_EQ(
          rig.mem.peek(rig.detector->counter_reg(a, q)).as_int_or(0),
          snap[idx])
          << "Counter[" << a << "," << q << "] kept growing";
    }
  }
}

TEST(KAntiOmegaTest, HeartbeatsAreMonotone) {
  Rig rig(3, 1, 1);
  sched::RoundRobinGenerator gen(3);
  std::int64_t prev = 0;
  for (int rounds = 0; rounds < 50; ++rounds) {
    rig.sim->run(gen, 3'000);
    const auto hb = rig.mem.peek(rig.detector->heartbeat_reg(0)).as_int_or(0);
    EXPECT_GE(hb, prev);
    prev = hb;
  }
  EXPECT_GT(prev, 0);
}

TEST(KAntiOmegaTest, TrustedCandidatesSubsetOfWinnerset) {
  Rig rig(4, 2, 2);
  sched::RoundRobinGenerator gen(4);
  const ProcSet all = ProcSet::universe(4);
  rig.sim->run_until(gen, 500'000,
                     [&] { return rig.detector->stabilized(all, 6); });
  ASSERT_TRUE(rig.detector->stabilized(all, 6));
  const ProcSet trusted = rig.detector->trusted_candidates(all, 6);
  EXPECT_EQ(trusted, rig.detector->common_winnerset(all));
}

struct SweepParams {
  int n;
  int k;
  int t;
  int crashes;
  std::uint64_t seed;
};

class KAntiOmegaSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(KAntiOmegaSweep, PropertyHoldsInMatchingSystem) {
  const auto [n, k, t, crashes, seed] = GetParam();
  ASSERT_LE(crashes, t);
  shm::SimMemory mem;
  KAntiOmega detector(mem, KAntiOmega::Params{n, k, t, 1});
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
  }
  // Crash the tail mid-run; enforce P = first k timely w.r.t. Q =
  // first t+1 at bound 3 over uniform noise: a schedule of S^k_{t+1,n}.
  const sched::CrashPlan plan =
      crashes > 0
          ? sched::CrashPlan::at(n, ProcSet::range(n - crashes, n), 50'000)
          : sched::CrashPlan::none(n);
  sim.use_crash_plan(plan);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, seed);
  std::vector<sched::TimelinessConstraint> constraints{
      sched::TimelinessConstraint(ProcSet::range(0, k),
                                  ProcSet::range(0, std::min(t + 1, n)),
                                  3)};
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               plan);
  const ProcSet correct = plan.faulty().complement(n);
  sim.run_until(gen, 1'500'000,
                [&] { return detector.stabilized(correct, 6); });
  const auto check = check_kantiomega(detector, correct, 6);
  EXPECT_TRUE(check.ok) << "n=" << n << " k=" << k << " t=" << t
                        << " crashes=" << crashes << " seed=" << seed
                        << " :: " << check.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KAntiOmegaSweep,
    ::testing::Values(SweepParams{3, 1, 1, 0, 1}, SweepParams{3, 1, 1, 1, 2},
                      SweepParams{4, 1, 2, 0, 3}, SweepParams{4, 1, 2, 2, 4},
                      SweepParams{4, 2, 2, 1, 5}, SweepParams{5, 2, 3, 0, 6},
                      SweepParams{5, 2, 3, 3, 7}, SweepParams{5, 1, 1, 1, 8},
                      SweepParams{6, 3, 3, 2, 9},
                      SweepParams{6, 2, 4, 4, 10}));

}  // namespace
}  // namespace setlib::fd
