// Shared-memory Paxos: unconditional safety (agreement, validity) under
// adversarial leader oracles and schedules; termination under a stable
// unique leader; decision propagation through the D register.
#include "src/agreement/paxos.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/rng.h"

namespace setlib::agreement {
namespace {

struct Rig {
  shm::SimMemory mem;
  std::unique_ptr<PaxosConsensus> paxos;
  std::unique_ptr<shm::Simulator> sim;
  std::vector<PaxosConsensus::Status> statuses;

  Rig(int n, const std::vector<std::int64_t>& proposals,
      PaxosConsensus::LeaderFn leader) {
    paxos = std::make_unique<PaxosConsensus>(mem, n, "px");
    sim = std::make_unique<shm::Simulator>(mem, n);
    statuses.resize(static_cast<std::size_t>(n));
    for (Pid p = 0; p < n; ++p) {
      sim->process(p).add_task(
          paxos->run(p, proposals[static_cast<std::size_t>(p)], leader,
                     &statuses[static_cast<std::size_t>(p)]),
          "px");
    }
  }

  std::set<std::int64_t> decided_values() const {
    std::set<std::int64_t> v;
    for (const auto& s : statuses) {
      if (s.decided) v.insert(s.value);
    }
    return v;
  }
};

TEST(PaxosTest, StableLeaderDecides) {
  const int n = 4;
  Rig rig(n, {10, 11, 12, 13}, [](Pid) { return 2; });
  sched::RoundRobinGenerator gen(n);
  rig.sim->run_until(gen, 200'000, [&] {
    for (const auto& s : rig.statuses) {
      if (!s.decided) return false;
    }
    return true;
  });
  for (const auto& s : rig.statuses) {
    ASSERT_TRUE(s.decided);
    EXPECT_EQ(s.value, 12);  // the leader's own proposal wins unopposed
  }
}

TEST(PaxosTest, SoloLeaderNeedsFewSteps) {
  const int n = 3;
  Rig rig(n, {5, 6, 7}, [](Pid) { return 0; });
  // Leader alone: 1 D-read + phase1 (1 write + 2 reads) + phase2
  // (1 write + 2 reads) + D write + D read = 9 ops.
  for (int step = 0; step < 9; ++step) rig.sim->step_once(0);
  EXPECT_TRUE(rig.statuses[0].decided);
  EXPECT_EQ(rig.statuses[0].value, 5);
}

TEST(PaxosTest, DecisionPropagatesToNonLeaders) {
  const int n = 3;
  Rig rig(n, {5, 6, 7}, [](Pid) { return 0; });
  for (int step = 0; step < 9; ++step) rig.sim->step_once(0);
  ASSERT_TRUE(rig.statuses[0].decided);
  // Non-leaders poll D: two ops each suffice (loop read).
  for (int step = 0; step < 4; ++step) {
    rig.sim->step_once(1);
    rig.sim->step_once(2);
  }
  EXPECT_TRUE(rig.statuses[1].decided);
  EXPECT_TRUE(rig.statuses[2].decided);
  EXPECT_EQ(rig.statuses[1].value, 5);
  EXPECT_EQ(rig.statuses[2].value, 5);
}

TEST(PaxosTest, LeaderCrashBlocksButNeverViolates) {
  const int n = 3;
  Rig rig(n, {5, 6, 7}, [](Pid) { return 0; });
  rig.sim->use_crash_plan(sched::CrashPlan::at(n, ProcSet::of(0), 4));
  sched::RoundRobinGenerator gen(n);
  rig.sim->run(gen, 50'000);
  // Leader crashed mid-ballot: nobody decides, nobody mis-decides.
  EXPECT_TRUE(rig.decided_values().empty());
}

class PaxosAdversarialSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PaxosAdversarialSweep, SafetyUnderChaoticLeadersAndSchedules) {
  // Leader oracle: every process believes a pseudo-randomly changing
  // leader (frequently itself). Schedules: seeded uniform. Safety must
  // hold regardless; we assert at most one decided value and validity.
  const int n = 5;
  const std::vector<std::int64_t> proposals{100, 101, 102, 103, 104};
  auto chaos = std::make_shared<Rng>(GetParam() * 7919 + 1);
  auto leader = [chaos](Pid self) -> Pid {
    // Half the time: self (dueling proposers); otherwise random.
    return chaos->next_bool(0.5)
               ? self
               : static_cast<Pid>(chaos->next_below(5));
  };
  Rig rig(n, proposals, leader);
  sched::UniformRandomGenerator gen(n, GetParam());
  rig.sim->run(gen, 150'000);

  const auto values = rig.decided_values();
  EXPECT_LE(values.size(), 1u) << "agreement violated";
  for (const auto v : values) {
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 104);
  }
  // The shared decision register never contradicts local decisions.
  const shm::Value d = rig.mem.peek(rig.paxos->decision_reg());
  if (!values.empty()) {
    ASSERT_FALSE(d.is_nil());
    EXPECT_EQ(d.at(0), *values.begin());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosAdversarialSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(PaxosTest, DuelingLeadersEventuallyDecideUnderFairness) {
  // Two permanent self-leaders duel; ballots strictly increase, and
  // under a fair schedule one eventually lands both phases. This is
  // not guaranteed by theory for adversarial schedules but holds with
  // overwhelming probability under fair random ones (regression guard
  // against livelock bugs in ballot selection).
  const int n = 2;
  Rig rig(n, {1, 2}, [](Pid self) { return self; });
  sched::UniformRandomGenerator gen(n, 33);
  rig.sim->run_until(gen, 2'000'000, [&] {
    return rig.statuses[0].decided && rig.statuses[1].decided;
  });
  EXPECT_EQ(rig.decided_values().size(), 1u);
}

TEST(PaxosTest, BallotsAreProcessDisjoint) {
  const int n = 3;
  Rig rig(n, {1, 2, 3}, [](Pid self) { return self; });
  sched::UniformRandomGenerator gen(n, 5);
  rig.sim->run(gen, 20'000);
  // Inspect blocks: any published mbal must be congruent to its owner.
  for (Pid q = 0; q < n; ++q) {
    const shm::Value blk = rig.mem.peek(rig.paxos->block_reg(q));
    if (blk.is_nil()) continue;
    EXPECT_EQ(blk.at(0) % n, q) << "mbal " << blk.at(0);
  }
}

}  // namespace
}  // namespace setlib::agreement
