// Omega / anti-Omega readings of the k-anti-Omega detector (the
// paper's footnote 2 identifications).
#include "src/fd/leader.h"

#include <gtest/gtest.h>

#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/util/assert.h"

namespace setlib::fd {
namespace {

TEST(LeaderViewTest, RequiresConsensusDetector) {
  shm::SimMemory mem;
  KAntiOmega det(mem, {4, 2, 2, 1});
  EXPECT_THROW(LeaderView{&det}, ContractViolation);
  EXPECT_THROW(LeaderView{nullptr}, ContractViolation);
}

TEST(LeaderViewTest, ElectsStableCorrectLeader) {
  const int n = 4;
  shm::SimMemory mem;
  KAntiOmega det(mem, {n, 1, n - 1, 1});
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) sim.process(p).add_task(det.run(p), "fd");
  sched::RoundRobinGenerator gen(n);
  const ProcSet all = ProcSet::universe(n);
  sim.run_until(gen, 600'000, [&] { return det.stabilized(all, 8); });
  const auto check = check_omega(det, all, 8);
  ASSERT_TRUE(check.ok) << check.detail;
  EXPECT_TRUE(check.unanimous);
  LeaderView view(&det);
  for (Pid p = 0; p < n; ++p) {
    EXPECT_EQ(view.leader_of(p), check.leader);
  }
}

TEST(LeaderViewTest, ReelectsAfterLeaderCrash) {
  const int n = 4;
  shm::SimMemory mem;
  KAntiOmega det(mem, {n, 1, n - 1, 1});
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) sim.process(p).add_task(det.run(p), "fd");
  sched::RoundRobinGenerator gen(n);
  const ProcSet all = ProcSet::universe(n);
  sim.run_until(gen, 600'000, [&] { return det.stabilized(all, 8); });
  LeaderView view(&det);
  const Pid old_leader = view.leader_of(0);

  sim.crash(old_leader);
  const ProcSet correct = all.without(old_leader);
  // Wait for RE-stabilization onto a live leader: right after the
  // crash the stale winnerset {old_leader} still looks quiescent.
  sim.run_until(gen, 1'500'000, [&] {
    return det.stabilized(correct, 8) &&
           det.common_winnerset(correct).intersects(correct);
  });
  const auto check = check_omega(det, correct, 8);
  ASSERT_TRUE(check.ok) << check.detail;
  EXPECT_NE(check.leader, old_leader);
  EXPECT_TRUE(correct.contains(check.leader));
}

TEST(AntiOmegaTest, OutputsSingleExcludedProcess) {
  const int n = 4;
  shm::SimMemory mem;
  KAntiOmega det(mem, {n, n - 1, n - 1, 1});  // anti-Omega
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) sim.process(p).add_task(det.run(p), "fd");
  sched::RoundRobinGenerator gen(n);
  const ProcSet all = ProcSet::universe(n);
  sim.run_until(gen, 600'000, [&] { return det.stabilized(all, 8); });
  ASSERT_TRUE(det.stabilized(all, 8));
  // All correct processes eventually agree on whom to exclude, and the
  // excluded process is outside the (correct-containing) winnerset.
  const Pid excluded = anti_omega_output(det, 0);
  for (Pid p = 1; p < n; ++p) {
    EXPECT_EQ(anti_omega_output(det, p), excluded);
  }
  EXPECT_FALSE(det.common_winnerset(all).contains(excluded));
}

TEST(AntiOmegaTest, RequiresSetConsensusDetector) {
  shm::SimMemory mem;
  KAntiOmega det(mem, {4, 1, 3, 1});
  EXPECT_THROW(anti_omega_output(det, 0), ContractViolation);
}

}  // namespace
}  // namespace setlib::fd
