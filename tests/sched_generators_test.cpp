#include "src/sched/generators.h"

#include <gtest/gtest.h>

#include "src/sched/analyzer.h"
#include "src/util/assert.h"

namespace setlib::sched {
namespace {

TEST(RoundRobinTest, CyclesInOrder) {
  RoundRobinGenerator gen(3);
  const Schedule s = generate(gen, 7);
  const std::vector<Pid> expect{0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(s.steps(), expect);
}

TEST(UniformRandomTest, FairOverLongRuns) {
  UniformRandomGenerator gen(4, 99);
  const Schedule s = generate(gen, 40'000);
  for (Pid p = 0; p < 4; ++p) {
    EXPECT_NEAR(s.count(p), 10'000, 2'000) << "pid " << p;
  }
}

TEST(UniformRandomTest, SeedDeterminism) {
  UniformRandomGenerator a(5, 1), b(5, 1), c(5, 2);
  bool differ = false;
  for (int i = 0; i < 200; ++i) {
    const Pid pa = a.next();
    EXPECT_EQ(pa, b.next());
    if (pa != c.next()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(WeightedRandomTest, RespectsWeights) {
  WeightedRandomGenerator gen({1.0, 0.0, 9.0}, 5);
  const Schedule s = generate(gen, 20'000);
  EXPECT_EQ(s.count(1), 0);
  EXPECT_GT(s.count(2), 5 * s.count(0));
}

TEST(Figure1Test, ExactPrefixStructure) {
  // Phase 1: (p1 q)(p2 q); phase 2: (p1 q)^2 (p2 q)^2; ...
  Figure1Generator gen(3, 0, 1, 2);
  const Schedule s = generate(gen, 12);
  const std::vector<Pid> expect{0, 2, 1, 2,              // i = 1
                                0, 2, 0, 2, 1, 2, 1, 2}; // i = 2
  EXPECT_EQ(s.steps(), expect);
}

TEST(Figure1Test, StepsThroughPhaseFormula) {
  EXPECT_EQ(Figure1Generator::steps_through_phase(0), 0);
  EXPECT_EQ(Figure1Generator::steps_through_phase(1), 4);
  EXPECT_EQ(Figure1Generator::steps_through_phase(2), 12);
  EXPECT_EQ(Figure1Generator::steps_through_phase(3), 24);
  // Cross-check: generating through phase i emits exactly that many
  // steps before the next phase's first step.
  Figure1Generator gen(3, 0, 1, 2);
  const Schedule s = generate(gen, 25);
  EXPECT_EQ(s[24], 0);  // phase 4 starts with p1
}

TEST(Figure1Test, ValidatesDistinctPids) {
  EXPECT_THROW((Figure1Generator(3, 0, 0, 2)), ContractViolation);
  EXPECT_THROW((Figure1Generator(2, 0, 1, 2)), ContractViolation);
}

TEST(RotatingStarverTest, PhaseStructure) {
  // Rotors {0,1}, background {2}: phase 1 = [0 2], phase 2 = [1 2][1 2].
  RotatingStarverGenerator gen(3, ProcSet::of({0, 1}), ProcSet::of({2}), 1);
  const Schedule s = generate(gen, 6);
  const std::vector<Pid> expect{0, 2, 1, 2, 1, 2};
  EXPECT_EQ(s.steps(), expect);
}

TEST(RotatingStarverTest, RotorSetTimelyButMembersStarved) {
  const ProcSet rotors = ProcSet::of({0, 1, 2});
  const ProcSet background = ProcSet::of({3});
  RotatingStarverGenerator gen(4, rotors, background, 4);
  const Schedule s = generate(gen, 4'000);
  // The rotor set as one virtual process is timely w.r.t. background.
  EXPECT_LE(min_timeliness_bound(s, rotors, background), 2);
  // Each individual rotor is starved for long stretches.
  for (Pid r : rotors.to_vector()) {
    EXPECT_GT(min_timeliness_bound(s, ProcSet::of(r), background), 20)
        << "rotor " << r;
  }
}

TEST(RotatingStarverTest, EmptyBackgroundEmitsRotorsSolo) {
  RotatingStarverGenerator gen(3, ProcSet::of({0, 1, 2}), ProcSet(), 2);
  const Schedule s = generate(gen, 2 + 4 + 6);
  // Phase 1: rotor 0 twice; phase 2: rotor 1 four times; phase 3:
  // rotor 2 six times.
  EXPECT_EQ(s.count(0, 0, 2), 2);
  EXPECT_EQ(s.count(1, 2, 6), 4);
  EXPECT_EQ(s.count(2, 6, 12), 6);
}

TEST(KSubsetStarverTest, AtMostKStarvedPerPhase) {
  const int n = 5, k = 2;
  KSubsetStarverGenerator gen(n, ProcSet::universe(n), k, 3);
  // Phase m has length 3m; walk phases and check the silent set size.
  std::int64_t offset = 0;
  const Schedule s = generate(gen, 3 * (1 + 2 + 3 + 4 + 5 + 6));
  for (std::int64_t m = 1; m <= 6; ++m) {
    const std::int64_t len = 3 * m;
    ProcSet appearing;
    for (std::int64_t idx = offset; idx < offset + len; ++idx) {
      appearing = appearing.with(s[idx]);
    }
    EXPECT_GE(appearing.size(), n - k) << "phase " << m;
    offset += len;
  }
}

TEST(KSubsetStarverTest, EveryKSubsetEventuallyStarved) {
  const int n = 4, k = 1;
  KSubsetStarverGenerator gen(n, ProcSet::universe(n), k, 8);
  const Schedule s = generate(gen, 4'000);
  // Every singleton is starved in some growing phase: its bound w.r.t.
  // the rest diverges.
  for (Pid p = 0; p < n; ++p) {
    EXPECT_GT(min_timeliness_bound(s, ProcSet::of(p),
                                   ProcSet::of(p).complement(n)),
              12);
  }
  // ... while every (k+1)-subset remains timely w.r.t. everyone.
  for (const ProcSet pair : k_subsets(n, k + 1)) {
    EXPECT_LE(min_timeliness_bound(s, pair, ProcSet::universe(n)), 2 * n)
        << pair.to_string();
  }
}

TEST(KSubsetStarverTest, RequiresActiveRemainder) {
  EXPECT_THROW(
      (KSubsetStarverGenerator(3, ProcSet::universe(3), 3, 1)),
      ContractViolation);
}

TEST(CrashPlanTest, Accessors) {
  CrashPlan plan(4);
  EXPECT_EQ(plan.faulty(), ProcSet());
  plan.set_crash(2, 100);
  EXPECT_TRUE(plan.crashed_by(2, 100));
  EXPECT_FALSE(plan.crashed_by(2, 99));
  EXPECT_EQ(plan.faulty(), ProcSet::of({2}));
  EXPECT_EQ(plan.correct(), ProcSet::of({0, 1, 3}));
  EXPECT_EQ(plan.alive_at(99), ProcSet::universe(4));
  EXPECT_EQ(plan.alive_at(100), ProcSet::of({0, 1, 3}));
}

TEST(CrashPlanTest, AtFactory) {
  const CrashPlan plan = CrashPlan::at(5, ProcSet::of({3, 4}), 7);
  EXPECT_EQ(plan.faulty(), ProcSet::of({3, 4}));
  EXPECT_EQ(plan.crash_step(3), 7);
  EXPECT_EQ(plan.crash_step(0), CrashPlan::kNever);
}

TEST(CrashFilterTest, SuppressesCrashedSteps) {
  auto base = std::make_unique<RoundRobinGenerator>(3);
  CrashFilterGenerator gen(std::move(base), CrashPlan::at(3, ProcSet::of({1}), 2));
  const Schedule s = generate(gen, 8);
  // Steps 0,1 may include pid 1; from emitted index 2 on, never.
  for (std::int64_t idx = 2; idx < s.size(); ++idx) {
    EXPECT_NE(s[idx], 1) << "at " << idx;
  }
  EXPECT_GT(s.count(0), 0);
  EXPECT_GT(s.count(2), 0);
}

}  // namespace
}  // namespace setlib::sched
