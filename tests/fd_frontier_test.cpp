// The theory-frontier tests: detector behaviour on the adversarial
// schedule families tracks Theorem 27's solvability condition exactly.
//
// Family A (gap rotisserie, i <= k cells): j - i processes crash at
// step 0; the live processes take turns stepping solo in growing
// bursts. Counter[A, *] has (j-i) + k frozen entries for a fully-live
// k-set A (the crashed zeros plus A's own members), so accusation[A]
// freezes iff (j-i) + k >= t+1 — Theorem 27's j - i >= t+1-k.
//
// Family B (k-subset starver, i > k cells): no crashes; starvation
// rotates over every k-subset with growing phases. Every k-set's
// accusation diverges (n - k >= n - t divergent entries), so no
// winnerset can ever settle and the abstract property fails.
#include <gtest/gtest.h>

#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::fd {
namespace {

struct FrontierParams {
  int n;
  int k;
  int t;
  int gap;  // j - i
  bool expect_stable;
};

class GapRotisserieFrontier
    : public ::testing::TestWithParam<FrontierParams> {};

TEST_P(GapRotisserieFrontier, StabilizationMatchesTheorem27) {
  const auto [n, k, t, gap, expect_stable] = GetParam();
  ASSERT_EQ(expect_stable, gap >= t + 1 - k) << "bad test vector";

  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  const ProcSet crashed = ProcSet::range(n - gap, n);
  const ProcSet live = crashed.complement(n);
  if (gap > 0) {
    sim.use_crash_plan(sched::CrashPlan::at(n, crashed, 0));
  }
  KAntiOmega detector(mem, KAntiOmega::Params{n, k, t, 1});
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
  }
  sched::RotatingStarverGenerator gen(n, live, ProcSet(), 600);
  sim.run(gen, 1'200'000);

  const auto check = check_kantiomega(detector, live, 4);
  EXPECT_EQ(check.stabilized, expect_stable) << check.detail;
  EXPECT_EQ(check.abstract_ok, expect_stable) << check.detail;
  if (expect_stable) {
    // Lemma 20: the stabilized winnerset contains a correct process —
    // here it is even fully live (crashed-containing sets stay accused).
    EXPECT_TRUE(check.winnerset.subset_of(live)) << check.detail;
  }

  // Witness cross-check: the executed schedule is in S^i_{j,n} for
  // i = 1, j = 1 + gap via (first live pid, itself + crashed), bound 1.
  const Pid p0 = live.min();
  EXPECT_EQ(sched::min_timeliness_bound(sim.executed(), ProcSet::of(p0),
                                        ProcSet::of(p0) | crashed),
            1);
}

INSTANTIATE_TEST_SUITE_P(
    Frontier, GapRotisserieFrontier,
    ::testing::Values(
        // (t=2, k=1, n=4): frontier at gap >= 2.
        FrontierParams{4, 1, 2, 0, false}, FrontierParams{4, 1, 2, 1, false},
        FrontierParams{4, 1, 2, 2, true},
        // (t=2, k=2, n=5): frontier at gap >= 1.
        FrontierParams{5, 2, 2, 0, false}, FrontierParams{5, 2, 2, 1, true},
        FrontierParams{5, 2, 2, 2, true},
        // (t=3, k=2, n=6): frontier at gap >= 2.
        FrontierParams{6, 2, 3, 1, false}, FrontierParams{6, 2, 3, 2, true},
        // (t=3, k=1, n=5): frontier at gap >= 3.
        FrontierParams{5, 1, 3, 2, false}, FrontierParams{5, 1, 3, 3, true}));

struct StarverParams {
  int n;
  int k;
  int t;
};

class KSubsetStarverFrontier
    : public ::testing::TestWithParam<StarverParams> {};

TEST_P(KSubsetStarverFrontier, DefeatsAbstractProperty) {
  const auto [n, k, t] = GetParam();
  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  KAntiOmega detector(mem, KAntiOmega::Params{n, k, t, 1});
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
  }
  sched::KSubsetStarverGenerator gen(n, ProcSet::universe(n), k, 600);
  sim.run(gen, 1'200'000);

  const ProcSet all = ProcSet::universe(n);
  const auto check = check_kantiomega(detector, all, 4);
  EXPECT_FALSE(check.stabilized) << check.detail;
  EXPECT_FALSE(check.abstract_ok) << check.detail;

  // Winnersets keep churning: some process saw many switches.
  std::int64_t total_changes = 0;
  for (Pid p = 0; p < n; ++p) {
    total_changes += detector.view(p).winnerset_changes;
  }
  EXPECT_GT(total_changes, 10);

  // The schedule is nonetheless in S^{k+1}_{n,n}: every (k+1)-set is
  // timely w.r.t. everyone (verified on the executed schedule for the
  // first few (k+1)-sets).
  int checked = 0;
  for (const ProcSet s : k_subsets(n, k + 1)) {
    EXPECT_LE(sched::min_timeliness_bound(sim.executed(), s, all), 2 * n)
        << s.to_string();
    if (++checked >= 5) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Oscillation, KSubsetStarverFrontier,
                         ::testing::Values(StarverParams{4, 1, 2},
                                           StarverParams{5, 2, 2},
                                           StarverParams{5, 1, 3},
                                           StarverParams{6, 2, 3}));

}  // namespace
}  // namespace setlib::fd
