// runtime::Subprocess: capture, exit/signal reporting, timeout kill,
// and exec-failure surfacing.
#include "src/runtime/subprocess.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

namespace setlib::runtime {
namespace {

SubprocessResult sh(const std::string& script,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(0)) {
  Subprocess::Options options;
  options.timeout = timeout;
  return Subprocess::run({"/bin/sh", "-c", script}, options);
}

TEST(SubprocessTest, CapturesStdoutStderrAndExitCode) {
  const SubprocessResult result = sh("echo out; echo err >&2; exit 3");
  EXPECT_TRUE(result.started);
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 3);
  EXPECT_EQ(result.out, "out\n");
  EXPECT_EQ(result.err, "err\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.describe(), "exit 3");
}

TEST(SubprocessTest, SuccessIsOk) {
  const SubprocessResult result = sh("exit 0");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.describe(), "exit 0");
}

TEST(SubprocessTest, SignalDeathIsReported) {
  const SubprocessResult result = sh("kill -9 $$");
  EXPECT_TRUE(result.started);
  EXPECT_FALSE(result.exited);
  EXPECT_EQ(result.term_signal, 9);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.describe(), "killed by signal 9");
}

TEST(SubprocessTest, TimeoutKillsTheChildQuickly) {
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult result =
      sh("sleep 30", std::chrono::milliseconds(200));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.ok());
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_NE(result.describe().find("timed out"), std::string::npos);
}

TEST(SubprocessTest, TimeoutFiresEvenAfterTheChildClosedItsPipes) {
  // A child that redirects its std fds releases the pipes (EOF)
  // while still running; the deadline must keep applying through the
  // reap phase or run() would block forever on waitpid.
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult result =
      sh("exec >/dev/null 2>&1; sleep 30",
         std::chrono::milliseconds(300));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.ok());
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(SubprocessTest, ExitedChildWithLingeringGrandchildDoesNotHang) {
  // The background sleep inherits the pipe write ends, so EOF never
  // comes while it lives; reaping the exited child must bound the
  // drain instead of waiting out the grandchild (30 s).
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult result = sh("sleep 30 & echo done");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.out, "done\n");
  EXPECT_LT(elapsed, std::chrono::seconds(15));
}

TEST(SubprocessTest, ExecFailureSurfacesAsExit127) {
  const SubprocessResult result =
      Subprocess::run({"/nonexistent/binary/for/sure"});
  EXPECT_TRUE(result.started);
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 127);
  EXPECT_NE(result.err.find("exec failed"), std::string::npos);
}

TEST(SubprocessTest, LargeOutputDoesNotDeadlockThePipes) {
  // Well past the pipe buffer on both streams at once: the poll loop
  // must keep draining or the child blocks forever on write().
  const SubprocessResult result = sh(
      "i=0; while [ $i -lt 2000 ]; do "
      "printf '%0100d\\n' $i; printf '%0100d\\n' $i >&2; "
      "i=$((i+1)); done");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.out.size(), 2000u * 101u);
  EXPECT_EQ(result.err.size(), 2000u * 101u);
}

}  // namespace
}  // namespace setlib::runtime
