// The SIMD kernel layer's bit-identity contract (src/sched/simd.h):
// every kernel table — AVX2/NEON when the host has them, the portable
// scalar fallback always — must produce identical bits for or_into,
// identical WalkState for completed window walks, and identical prune
// outcomes. Pinned three ways: direct kernel differentials over random
// word arrays (vector tails and chunk boundaries included), a
// 1000-schedule randomized differential of the packed bound paths
// against min_timeliness_bound_reference over random [from, to)
// windows, and whole-scan equality of RankedPairScan under the active
// vs forced-scalar tables (the in-process form of the CI job that
// reruns the suite with SETLIB_FORCE_SCALAR=1).
#include "src/sched/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/sched/schedule.h"
#include "src/util/arena.h"
#include "src/util/rng.h"

namespace setlib::sched {
namespace {

/// Pins the scalar table for a scope; restores the dispatched default
/// on exit.
class ForceScalarGuard {
 public:
  ForceScalarGuard() {
    simd::set_kernels_for_testing(&simd::scalar_kernels());
  }
  ~ForceScalarGuard() { simd::set_kernels_for_testing(nullptr); }
  ForceScalarGuard(const ForceScalarGuard&) = delete;
  ForceScalarGuard& operator=(const ForceScalarGuard&) = delete;
};

std::vector<std::uint64_t> random_words(Rng& rng, std::int64_t count,
                                        int p_density_shift) {
  // AND-ing k draws thins the bit density by 2^-k: window walks behave
  // very differently on sparse vs dense P words, so both get coverage.
  std::vector<std::uint64_t> out(static_cast<std::size_t>(count));
  for (auto& w : out) {
    w = std::numeric_limits<std::uint64_t>::max();
    for (int k = 0; k <= p_density_shift; ++k) w &= rng.next_u64();
  }
  return out;
}

TEST(SimdKernelTest, OrIntoMatchesScalarOnAllLengths) {
  const simd::Kernels& active = simd::active_kernels();
  const simd::Kernels& scalar = simd::scalar_kernels();
  Rng rng(2024);
  // Lengths straddle every vector width and tail shape.
  for (const std::int64_t words :
       {std::int64_t{1}, std::int64_t{2}, std::int64_t{3}, std::int64_t{4},
        std::int64_t{5}, std::int64_t{7}, std::int64_t{8}, std::int64_t{63},
        std::int64_t{64}, std::int64_t{65}, std::int64_t{130}}) {
    const auto src = random_words(rng, words, 0);
    auto a = random_words(rng, words, 0);
    auto b = a;
    active.or_into(a.data(), src.data(), words);
    scalar.or_into(b.data(), src.data(), words);
    EXPECT_EQ(a, b) << active.name << " vs scalar, words=" << words;
  }
}

TEST(SimdKernelTest, WindowWalkMatchesScalarBitForBit) {
  const simd::Kernels& active = simd::active_kernels();
  const simd::Kernels& scalar = simd::scalar_kernels();
  Rng rng(4096);
  for (int trial = 0; trial < 500; ++trial) {
    const std::int64_t words = 1 + static_cast<std::int64_t>(
                                       rng.next_in(0, 129));
    // Sparse P-words are the all-zero fast path's home turf; dense
    // ones exercise the per-word split loop.
    const int density = static_cast<int>(rng.next_in(0, 6));
    const auto p = random_words(rng, words, density);
    const auto q = random_words(rng, words, 1);
    simd::WalkState sa;
    simd::WalkState sb;
    const std::int64_t no_prune = std::numeric_limits<std::int64_t>::max();
    const bool pa =
        active.window_walk(p.data(), q.data(), words, no_prune, &sa);
    const bool pb =
        scalar.window_walk(p.data(), q.data(), words, no_prune, &sb);
    EXPECT_FALSE(pa);
    EXPECT_FALSE(pb);
    EXPECT_EQ(sa.max_q, sb.max_q) << "trial " << trial;
    EXPECT_EQ(sa.current, sb.current) << "trial " << trial;
  }
}

TEST(SimdKernelTest, PruneOutcomeIsImplementationIndependent) {
  // max_q is monotone, so whether a walk ever reaches prune_q is a
  // property of the input, not of the check granularity: the pruned
  // flag must agree even though a pruned walk's state is unspecified.
  const simd::Kernels& active = simd::active_kernels();
  const simd::Kernels& scalar = simd::scalar_kernels();
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    const std::int64_t words =
        1 + static_cast<std::int64_t>(rng.next_in(0, 100));
    const auto p = random_words(rng, words, 3);
    const auto q = random_words(rng, words, 1);
    const std::int64_t prune_q =
        static_cast<std::int64_t>(rng.next_in(1, 200));
    simd::WalkState sa;
    simd::WalkState sb;
    const bool pa =
        active.window_walk(p.data(), q.data(), words, prune_q, &sa);
    const bool pb =
        scalar.window_walk(p.data(), q.data(), words, prune_q, &sb);
    EXPECT_EQ(pa, pb) << "trial " << trial << " prune_q=" << prune_q;
    if (!pa) {
      EXPECT_EQ(sa.max_q, sb.max_q);
      EXPECT_EQ(sa.current, sb.current);
    }
  }
}

TEST(SimdDifferentialTest, ThousandRandomSchedulesMatchTheReference) {
  // The randomized differential: packed bound == reference bound on
  // 1000 random (schedule, P, Q, [from, to)) instances, under the
  // active table AND the forced-scalar table.
  Rng rng(20260808);
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_in(0, 4));  // 2..6
    const std::int64_t len =
        1 + static_cast<std::int64_t>(rng.next_in(0, 1999));
    UniformRandomGenerator gen(n, rng.next_u64());
    const Schedule s = generate(gen, len);
    const ProcSet p(rng.next_in(1, (1u << n) - 1));
    const ProcSet q(rng.next_in(1, (1u << n) - 1));
    const std::int64_t from =
        static_cast<std::int64_t>(rng.next_in(0, static_cast<std::uint64_t>(len)));
    const std::int64_t to =
        from + static_cast<std::int64_t>(
                   rng.next_in(0, static_cast<std::uint64_t>(len - from)));
    const std::int64_t reference =
        min_timeliness_bound_reference(s, p, q, from, to);
    EXPECT_EQ(min_timeliness_bound(s, p, q, from, to), reference)
        << "trial " << trial;
    const ForceScalarGuard force_scalar;
    EXPECT_EQ(min_timeliness_bound(s, p, q, from, to), reference)
        << "trial " << trial << " (forced scalar)";
  }
}

/// Reference best bound: the executable-spec analyzer over every
/// (|P| = i, |Q| = j) pair, mirroring RankedPairScan's pair space.
std::int64_t reference_best_bound(const Schedule& s, int i, int j) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const ProcSet p : k_subsets(s.n(), i)) {
    for (const ProcSet q : k_subsets(s.n(), j)) {
      best = std::min(best, min_timeliness_bound_reference(s, p, q));
    }
  }
  return best;
}

TEST(SimdDifferentialTest, RankedScanAgreesAcrossTablesAndReference) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_in(0, 2));  // 3..5
    const std::int64_t len =
        64 + static_cast<std::int64_t>(rng.next_in(0, 4999));
    const int i = 1 + static_cast<int>(rng.next_in(0, static_cast<std::uint64_t>(n - 2)));
    const int j =
        i + 1 + static_cast<int>(rng.next_in(0, static_cast<std::uint64_t>(n - i - 1)));
    UniformRandomGenerator gen(n, rng.next_u64());
    const Schedule s = generate(gen, len);
    const PackedSchedule packed(s);

    const TimelyPair vec = RankedPairScan(packed, i, j).best_pair();
    TimelyPair sca;
    {
      const ForceScalarGuard force_scalar;
      sca = RankedPairScan(packed, i, j).best_pair();
    }
    EXPECT_EQ(vec.bound, sca.bound) << "trial " << trial;
    EXPECT_EQ(vec.timely_set.mask(), sca.timely_set.mask());
    EXPECT_EQ(vec.observed_set.mask(), sca.observed_set.mask());
    EXPECT_EQ(vec.bound, reference_best_bound(s, i, j))
        << "trial " << trial;
    EXPECT_EQ(min_timeliness_bound_reference(s, vec.timely_set,
                                             vec.observed_set),
              vec.bound);
  }
}

TEST(SimdDifferentialTest, ArenaBackedScanMatchesHeapBackedScan) {
  Rng rng(5150);
  util::ArenaAllocator arena;
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 4;
    const std::int64_t len =
        64 + static_cast<std::int64_t>(rng.next_in(0, 9999));
    UniformRandomGenerator gen(n, rng.next_u64());
    const Schedule s = generate(gen, len);
    const util::FrameScope frame(arena);
    const PackedSchedule packed(s, arena);
    const PackedSchedule heap_packed(s);
    const std::int64_t cap = 1 + static_cast<std::int64_t>(rng.next_in(0, 6));
    const auto with_arena =
        RankedPairScan(packed, 2, 3, &arena).count_members(cap);
    const auto on_heap = RankedPairScan(heap_packed, 2, 3).count_members(cap);
    EXPECT_EQ(with_arena.pairs, on_heap.pairs) << "trial " << trial;
    EXPECT_EQ(with_arena.members, on_heap.members) << "trial " << trial;
    EXPECT_EQ(with_arena.first.has_value(), on_heap.first.has_value());
    if (with_arena.first && on_heap.first) {
      EXPECT_EQ(with_arena.first->bound, on_heap.first->bound);
      EXPECT_EQ(with_arena.first->timely_set.mask(),
                on_heap.first->timely_set.mask());
    }
  }
}

TEST(SimdDifferentialTest, RepackMatchesFreshPack) {
  Rng rng(31337);
  PackedSchedule scratch;
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_in(0, 4));
    const std::int64_t len =
        1 + static_cast<std::int64_t>(rng.next_in(0, 2999));
    UniformRandomGenerator gen(n, rng.next_u64());
    const Schedule s = generate(gen, len);
    scratch.repack(s);  // recycled storage, shrinking and growing
    const PackedSchedule fresh(s);
    ASSERT_EQ(scratch.n(), fresh.n());
    ASSERT_EQ(scratch.size(), fresh.size());
    ASSERT_EQ(scratch.words(), fresh.words());
    for (Pid p = 0; p < n; ++p) {
      for (std::int64_t w = 0; w < fresh.words(); ++w) {
        ASSERT_EQ(scratch.column(p)[w], fresh.column(p)[w])
            << "trial " << trial << " p=" << p << " w=" << w;
      }
    }
  }
}

TEST(SimdDifferentialTest, LargeNCensusSmoke) {
  // n = 28 membership census: C(28,2) * C(28,27) = 10584 pairs over a
  // packed prefix — the large-n shape the fig2 bench sweeps, kept
  // small here. Active and forced-scalar tables must agree exactly.
  const int n = 28;
  UniformRandomGenerator gen(n, 11);
  const Schedule s = generate(gen, 4096);
  const PackedSchedule packed(s);
  const RankedPairScan scan(packed, 2, n - 1);
  ASSERT_EQ(scan.p_count(), 378);
  ASSERT_EQ(scan.q_count(), 28);
  const auto vec = scan.count_members(3);
  EXPECT_EQ(vec.pairs, 378 * 28);
  const ForceScalarGuard force_scalar;
  const auto sca = scan.count_members(3);
  EXPECT_EQ(vec.pairs, sca.pairs);
  EXPECT_EQ(vec.members, sca.members);
}

}  // namespace
}  // namespace setlib::sched
