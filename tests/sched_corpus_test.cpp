// The checked-in regression corpus (tests/corpus/): every entry the
// schedule fuzzer ever found replays from its recorded step stream
// alone — the hash matches, the packed analyzer reproduces the
// recorded bound, and the exhaustive reference analyzer agrees — so
// any analyzer drift trips here before it ships. The corpus directory
// is baked in as SETLIB_CORPUS_DIR by CMake.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/fuzz.h"
#include "src/sched/schedule.h"
#include "src/util/json.h"

namespace setlib::core {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& item : fs::directory_iterator(SETLIB_CORPUS_DIR)) {
    if (item.path().extension() == ".json") files.push_back(item.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

CorpusEntry load(const fs::path& file) {
  std::ifstream in(file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_corpus_entry(JsonValue::parse(buffer.str()));
}

TEST(SchedCorpusTest, CorpusIsPopulated) {
  // The fuzzer found (at least) these regressions once; an emptied
  // directory means the suite silently stopped guarding them.
  EXPECT_GE(corpus_files().size(), 5u);
}

TEST(SchedCorpusTest, FileNamesPinTheHashAndCell) {
  // "<hash16>-i<I>j<J>.json": the name alone identifies the replay
  // (one minimized schedule can regress several cells).
  for (const fs::path& file : corpus_files()) {
    const CorpusEntry entry = load(file);
    const std::string expected = sched::hash_hex(entry.hash) + "-i" +
                                 std::to_string(entry.i) + "j" +
                                 std::to_string(entry.j);
    EXPECT_EQ(file.stem().string(), expected);
  }
}

TEST(SchedCorpusTest, EveryEntryReplaysFromItsHash) {
  for (const fs::path& file : corpus_files()) {
    const CorpusEntry entry = load(file);
    const CorpusVerdict verdict = verify_corpus_entry(entry);
    EXPECT_TRUE(verdict.ok)
        << file.filename().string() << ": " << verdict.detail;
    // Every entry is a genuine regression: it beat the best bound the
    // family registry baseline knew for its cell when it was found.
    EXPECT_GT(entry.bound, entry.baseline_bound)
        << file.filename().string();
  }
}

TEST(SchedCorpusTest, RejectsDegenerateCellCoordinates) {
  // The fuzzer's cell space is strictly i < j (the i == j pair is
  // trivially bound 1), and n is capped by the exhaustive reference
  // verification — a hand-edited or corrupted entry outside either
  // range must fail coordinate validation, not reach the analyzers.
  CorpusEntry entry;
  entry.n = 3;
  entry.schedule = sched::Schedule(3, {0, 1, 2});
  entry.hash = sched::schedule_hash(entry.schedule);
  entry.bound = 1;

  entry.i = 2;
  entry.j = 2;
  EXPECT_EQ(verify_corpus_entry(entry).detail,
            "malformed cell coordinates");

  entry.i = 1;
  entry.j = 2;
  entry.n = kMaxFuzzN + 1;
  EXPECT_EQ(verify_corpus_entry(entry).detail,
            "malformed cell coordinates");
}

}  // namespace
}  // namespace setlib::core
