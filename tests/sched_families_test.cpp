// The randomized adversary-family registry: every family is a
// deterministic function of (params, seed), produces in-range pids
// with its advertised shape (solo bursts, geometric starvation,
// permanent crashes, GST switch), and — via the 1000-schedule
// differential harness — the word-packed analyzer stays bit-identical
// to min_timeliness_bound_reference on every family's schedules.
#include "src/sched/families.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/sched/analyzer.h"
#include "src/util/rng.h"

namespace setlib::sched {
namespace {

FamilyParams params_for(int n, std::int64_t len) {
  FamilyParams p;
  p.n = n;
  p.scale = 64;
  p.crash_count = std::min(2, n - 1);
  p.crash_horizon = std::max<std::int64_t>(1, len / 2);
  p.gst = std::max<std::int64_t>(1, len / 4);
  return p;
}

TEST(FamilyRegistryTest, NamesAreUniqueAndResolvable) {
  const auto& families = schedule_families();
  ASSERT_EQ(families.size(), 6u);
  std::vector<std::string> names;
  for (const FamilyInfo& info : families) {
    names.emplace_back(info.name);
    const FamilyInfo* found = find_family(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->kind, info.kind);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_EQ(find_family("no-such-family"), nullptr);
}

TEST(FamilyRegistryTest, SameParamsAndSeedReproduceTheSchedule) {
  const FamilyParams p = params_for(6, 4'000);
  for (const FamilyInfo& info : schedule_families()) {
    auto a = make_family(info.kind, p, 1234);
    auto b = make_family(info.kind, p, 1234);
    const Schedule sa = generate(*a, 4'000);
    const Schedule sb = generate(*b, 4'000);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::int64_t t = 0; t < sa.size(); ++t) {
      ASSERT_EQ(sa[t], sb[t]) << info.name << " diverges at step " << t;
    }
    // And a different seed actually changes the schedule (round-robin
    // tails excluded: compare the seeded prefix only).
    auto c = make_family(info.kind, p, 99);
    const Schedule sc = generate(*c, 4'000);
    bool differs = false;
    for (std::int64_t t = 0; t < std::min<std::int64_t>(sa.size(), p.gst);
         ++t) {
      if (sa[t] != sc[t]) {
        differs = true;
        break;
      }
    }
    EXPECT_TRUE(differs) << info.name << " ignores its seed";
  }
}

TEST(FamilyRegistryTest, EveryStepIsInRange) {
  Rng rng(7);
  for (const FamilyInfo& info : schedule_families()) {
    for (int trial = 0; trial < 6; ++trial) {
      const int n = 2 + static_cast<int>(rng.next_below(10));
      const Schedule s =
          generate(*make_family(info.kind, params_for(n, 1'000),
                                rng.next_u64()),
                   1'000);
      for (std::int64_t t = 0; t < s.size(); ++t) {
        ASSERT_GE(s[t], 0) << info.name;
        ASSERT_LT(s[t], n) << info.name;
      }
    }
  }
}

TEST(BurstyFamilyTest, ProducesLongSoloRuns) {
  const FamilyParams p = params_for(8, 4'000);
  const Schedule s =
      generate(*make_family(FamilyKind::kBursty, p, 5), 4'000);
  std::int64_t longest = 0;
  std::int64_t run = 0;
  for (std::int64_t t = 0; t < s.size(); ++t) {
    run = (t > 0 && s[t] == s[t - 1]) ? run + 1 : 1;
    longest = std::max(longest, run);
  }
  // Bursts are uniform in [1, 2 * scale]; over ~60 bursts one of at
  // least scale/2 = 32 steps is a near-certainty.
  EXPECT_GE(longest, p.scale / 2);
}

TEST(StarvationFamilyTest, SilencesAVictimForLongStretches) {
  const int n = 5;
  const FamilyParams p = params_for(n, 8'000);
  const Schedule s =
      generate(*make_family(FamilyKind::kStarvation, p, 11), 8'000);
  // Some process must be absent for at least one full mean stretch.
  std::int64_t longest_gap = 0;
  for (Pid victim = 0; victim < n; ++victim) {
    std::int64_t gap = 0;
    for (std::int64_t t = 0; t < s.size(); ++t) {
      gap = s[t] == victim ? 0 : gap + 1;
      longest_gap = std::max(longest_gap, gap);
    }
  }
  EXPECT_GE(longest_gap, p.scale);
  // But nobody is silenced forever: the recovery pass keeps every
  // process stepping.
  for (Pid q = 0; q < n; ++q) EXPECT_GT(s.count(q), 0) << q;
}

TEST(CrashProneFamilyTest, CrashedProcessesNeverStepPastTheirStep) {
  const FamilyParams p = params_for(6, 6'000);
  const std::uint64_t seed = 21;
  // make_family embeds exactly crash_prone_plan(params, seed), so the
  // plan can be rebuilt independently and cross-checked.
  const CrashPlan plan = crash_prone_plan(p, seed);
  EXPECT_EQ(plan.faulty().size(), p.crash_count);
  const Schedule s =
      generate(*make_family(FamilyKind::kCrashProne, p, seed), 6'000);
  for (std::int64_t t = 0; t < s.size(); ++t) {
    EXPECT_FALSE(plan.crashed_by(s[t], t))
        << "crashed pid " << s[t] << " stepped at " << t;
  }
  // The crashes really happen inside the horizon, so the tail of the
  // run is crash-free by construction.
  for (Pid q : plan.faulty().to_vector()) {
    EXPECT_LT(plan.crash_step(q), p.crash_horizon);
  }
}

TEST(GstFamilyTest, BecomesRoundRobinAfterTheSwitch) {
  const int n = 4;
  FamilyParams p = params_for(n, 4'000);
  p.gst = 1'000;
  const Schedule s =
      generate(*make_family(FamilyKind::kGst, p, 31), 4'000);
  for (std::int64_t t = p.gst; t < s.size(); ++t) {
    ASSERT_EQ(s[t], static_cast<Pid>((t - p.gst) % n))
        << "not round-robin at step " << t;
  }
}

TEST(FamilyDifferentialTest, PackedBoundsBitIdenticalOn1000Schedules) {
  // The 1000-schedule differential harness (PR 3's acceptance shape)
  // over the family registry: every family's schedules pin the packed
  // analyzer against the reference scan, full prefixes and random
  // [from, to) windows alike.
  Rng rng(2026);
  const auto& families = schedule_families();
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(23));  // up to 24
    std::int64_t len = rng.next_in(0, 400);
    if (trial % 7 == 0) len = 64 * rng.next_in(0, 4);   // word-aligned
    if (trial % 11 == 0) len = 63 + rng.next_in(0, 3);  // straddling
    FamilyParams p;
    p.n = n;
    p.scale = 1 + rng.next_in(0, 64);
    p.crash_count = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    p.crash_horizon = std::max<std::int64_t>(1, len / 2);
    p.gst = rng.next_in(0, len + 1);
    const FamilyInfo& info =
        families[rng.next_below(families.size())];
    const Schedule s =
        generate(*make_family(info.kind, p, rng.next_u64()), len);

    ProcSet p_set;
    ProcSet q_set;
    for (Pid pid = 0; pid < n; ++pid) {
      if (rng.next_bool(0.4)) p_set = p_set.with(pid);
      if (rng.next_bool(0.4)) q_set = q_set.with(pid);
    }
    EXPECT_EQ(min_timeliness_bound(s, p_set, q_set),
              min_timeliness_bound_reference(s, p_set, q_set))
        << info.name << " n=" << n << " len=" << len;
    if (len > 0) {
      const std::int64_t from = rng.next_in(0, len);
      const std::int64_t to = rng.next_in(from, len);
      EXPECT_EQ(min_timeliness_bound(s, p_set, q_set, from, to),
                min_timeliness_bound_reference(s, p_set, q_set, from, to))
          << info.name << " n=" << n << " len=" << len << " ["
          << from << "," << to << ")";
    }
  }
}

}  // namespace
}  // namespace setlib::sched
