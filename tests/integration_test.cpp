// End-to-end narratives: the paper's separation story executed across
// the whole stack, and cross-cutting consistency checks between the
// engine, the analyzer, and the predicate.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/experiments.h"
#include "src/core/solvability.h"

namespace setlib::core {
namespace {

// The headline narrative (abstract + Section 1): S^k_{t+1,n} is
// synchronous enough for (t,k,n)-agreement but not for the two
// incrementally stronger problems. We execute all three against the
// *same* schedule family parameterization of that system.
TEST(SeparationStory, SkTplus1SeparatesThreeProblems) {
  const int t = 2, k = 2, n = 5;
  const SystemSpec sys = matching_system({t, k, n});  // S^2_{3,5}

  // 1. (t, k, n) in S^k_{t+1,n}: solvable, and the run succeeds.
  {
    RunConfig cfg;
    cfg.spec = {t, k, n};
    cfg.system = sys;
    cfg.family = ScheduleFamily::kRotisserie;
    ASSERT_TRUE(solvable(cfg.spec, sys));
    const auto report = run_agreement(cfg);
    EXPECT_TRUE(report.success) << report.detail;
  }

  // 2. (t+1, k, n) in the same system: the predicate says unsolvable,
  // and the same adversarial family (now with the larger t' = t+1
  // tolerated crash count but an unchanged gap) defeats the detector.
  {
    RunConfig cfg;
    cfg.spec = {t + 1, k, n};
    cfg.system = sys;
    cfg.family = ScheduleFamily::kRotisserie;
    cfg.run_full_budget = true;
    ASSERT_FALSE(solvable(cfg.spec, sys));
    const auto report = run_agreement(cfg);
    EXPECT_FALSE(report.detector.abstract_ok) << report.detail;
  }

  // 3. (t, k-1, n) in the same system: i = k > k-1, so the k-subset
  // starver family applies and defeats the (k-1)-anti-Omega detector.
  {
    RunConfig cfg;
    cfg.spec = {t, k - 1, n};
    cfg.system = sys;
    cfg.family = ScheduleFamily::kKSubsetStarver;
    cfg.run_full_budget = true;
    ASSERT_FALSE(solvable(cfg.spec, sys));
    const auto report = run_agreement(cfg);
    EXPECT_FALSE(report.detector.abstract_ok) << report.detail;
  }
}

TEST(ConsistencyTest, EngineWitnessAgreesWithConfiguredSystem) {
  // Whatever family the engine picks, the measured witness bound on
  // the executed schedule must certify membership in S^i_{j,n}:
  // |P| = i, |Q| = j, and the bound is finite and small.
  for (const auto family :
       {ScheduleFamily::kEnforcedRandom, ScheduleFamily::kRotisserie}) {
    RunConfig cfg;
    cfg.spec = {2, 2, 5};
    cfg.system = {2, 3, 5};
    cfg.family = family;
    cfg.max_steps = 400'000;
    const auto report = run_agreement(cfg);
    EXPECT_EQ(report.timely_set.size(), cfg.system.i);
    EXPECT_EQ(report.observed_set.size(), cfg.system.j);
    EXPECT_LE(report.witness_bound,
              family == ScheduleFamily::kEnforcedRandom
                  ? cfg.timeliness_bound
                  : 1);
  }
}

TEST(ConsistencyTest, SolvableCellsAlsoSolveUnderContainment) {
  // Observation 7 executed: if the engine solves (t,k,n) in S^i_j,
  // it also solves it in S^{i-1}_j and S^i_{j+1} (weaker systems).
  const AgreementSpec spec{2, 2, 5};
  const std::vector<SystemSpec> systems{
      {2, 3, 5}, {1, 3, 5}, {2, 4, 5}, {1, 5, 5}};
  for (const auto& sys : systems) {
    ASSERT_TRUE(solvable(spec, sys)) << sys.to_string();
    RunConfig cfg;
    cfg.spec = spec;
    cfg.system = sys;
    cfg.seed = 21;
    const auto report = run_agreement(cfg);
    EXPECT_TRUE(report.success) << sys.to_string() << ": " << report.detail;
  }
}

TEST(ConsistencyTest, BinaryProposalsRespectValidity) {
  // Binary agreement variant: proposals in {0, 1}; decisions must be
  // binary too (validity) and within k distinct values.
  RunConfig cfg;
  cfg.spec = {2, 2, 5};
  cfg.system = matching_system(cfg.spec);
  cfg.proposals = {0, 1, 0, 1, 1};
  const auto report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  for (const auto& d : report.decisions) {
    if (d.has_value()) {
      EXPECT_TRUE(*d == 0 || *d == 1);
    }
  }
}

TEST(ConsistencyTest, SeedsProduceIdenticalRuns) {
  // Full determinism: identical configs yield identical reports.
  RunConfig cfg;
  cfg.spec = {2, 1, 4};
  cfg.system = matching_system(cfg.spec);
  cfg.seed = 77;
  const auto a = run_agreement(cfg);
  const auto b = run_agreement(cfg);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
  EXPECT_EQ(a.distinct_decisions, b.distinct_decisions);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.witness_bound, b.witness_bound);
}

}  // namespace
}  // namespace setlib::core
