// Ablation of Figure 2's accusation quantile (the (t+1)-st smallest
// entry of Counter[A, *]). The choice is tight on both sides:
//   - quantile <= t: t processes crashed from step 0 leave t
//     frozen-at-zero entries in EVERY set's counter row, so every
//     accusation sticks at 0 and the winnerset stays at the rank-0 set
//     even if it is fully crashed — the detector property fails.
//   - quantile >= t+2: on the gap-rotisserie schedule with gap =
//     t+1-k (the frontier gap, which IS in S^k_{t+1,n}), a live k-set
//     has exactly gap + k = t+1 frozen entries, one short of the t+2
//     needed, so every accusation diverges and nothing stabilizes —
//     the detector property fails.
//   - quantile = t+1 (the paper's choice): works in both scenarios.
#include <gtest/gtest.h>

#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::fd {
namespace {

struct AblationOutcome {
  bool abstract_ok;
  bool stabilized;
  ProcSet winnerset_if_stable;
  ProcSet trusted;
};

// Scenario A: t immediate crashes (the zeros attack), round-robin rest.
AblationOutcome run_crash_scenario(int n, int k, int t, int quantile) {
  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  const ProcSet crashed = ProcSet::range(0, t);  // includes rank-0 sets
  sim.use_crash_plan(sched::CrashPlan::at(n, crashed, 0));
  KAntiOmega detector(mem, KAntiOmega::Params{n, k, t, 1, quantile});
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
  }
  sched::RoundRobinGenerator gen(n);
  const ProcSet correct = crashed.complement(n);
  sim.run_until(gen, 900'000,
                [&] { return detector.stabilized(correct, 8); });
  const auto check = check_kantiomega(detector, correct, 8);
  return {check.abstract_ok, check.stabilized, check.winnerset,
          check.trusted};
}

// Scenario B: gap-rotisserie with the frontier gap t+1-k (a schedule
// of S^k_{t+1,n} with exactly t+1 freezable counter entries per live
// k-set: gap crashed zeros + k own members).
AblationOutcome run_rotisserie_scenario(int n, int k, int t,
                                        int quantile) {
  const int gap = t + 1 - k;
  shm::SimMemory mem;
  shm::Simulator sim(mem, n);
  const ProcSet crashed = ProcSet::range(n - gap, n);
  const ProcSet live = crashed.complement(n);
  sim.use_crash_plan(sched::CrashPlan::at(n, crashed, 0));
  KAntiOmega detector(mem, KAntiOmega::Params{n, k, t, 1, quantile});
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
  }
  sched::RotatingStarverGenerator gen(n, live, ProcSet(), 600);
  sim.run(gen, 1'200'000);
  const auto check = check_kantiomega(detector, live, 4);
  return {check.abstract_ok, check.stabilized, check.winnerset,
          check.trusted};
}

TEST(QuantileAblation, PaperChoiceSurvivesBothScenarios) {
  // (n=5, k=2, t=2), quantile t+1 = 3 (also the default).
  const auto a = run_crash_scenario(5, 2, 2, 3);
  EXPECT_TRUE(a.abstract_ok);
  EXPECT_TRUE(a.stabilized);
  EXPECT_TRUE(a.winnerset_if_stable.intersects(ProcSet::range(2, 5)));

  const auto b = run_rotisserie_scenario(5, 2, 2, 3);
  EXPECT_TRUE(b.abstract_ok);
}

TEST(QuantileAblation, DefaultEqualsPaperChoice) {
  const auto def = run_crash_scenario(5, 2, 2, 0);   // 0 -> t+1
  const auto paper = run_crash_scenario(5, 2, 2, 3);
  EXPECT_EQ(def.abstract_ok, paper.abstract_ok);
  EXPECT_EQ(def.winnerset_if_stable, paper.winnerset_if_stable);
}

TEST(QuantileAblation, TooSmallQuantileTrustsTheDead) {
  // quantile = 1 (min) and quantile = t: the t frozen zeros from the
  // crashed processes pin every accusation at 0; the winnerset stays at
  // the rank-0 set, which is fully crashed here.
  for (const int quantile : {1, 2}) {  // t = 2
    const auto out = run_crash_scenario(5, 2, 2, quantile);
    EXPECT_FALSE(out.abstract_ok) << "quantile " << quantile;
    // It stabilizes — on the dead set {0,1}: stable but wrong.
    EXPECT_TRUE(out.stabilized) << "quantile " << quantile;
    EXPECT_EQ(out.winnerset_if_stable, ProcSet::of({0, 1}))
        << "quantile " << quantile;
  }
}

TEST(QuantileAblation, TooLargeQuantileNeverSettles) {
  // quantile = t+2: on the frontier-gap rotisserie, live k-sets have
  // only t+1 frozen entries; the (t+2)-nd smallest keeps growing for
  // every set.
  const auto out = run_rotisserie_scenario(5, 2, 2, 4);
  EXPECT_FALSE(out.abstract_ok);
  EXPECT_FALSE(out.stabilized);
}

TEST(QuantileAblation, BoundaryIsExact) {
  // Directly adjacent quantiles on both scenarios, (n=6, k=2, t=3).
  EXPECT_FALSE(run_crash_scenario(6, 2, 3, 3).abstract_ok);      // = t
  EXPECT_TRUE(run_crash_scenario(6, 2, 3, 4).abstract_ok);       // = t+1
  EXPECT_TRUE(run_rotisserie_scenario(6, 2, 3, 4).abstract_ok);  // = t+1
  EXPECT_FALSE(run_rotisserie_scenario(6, 2, 3, 5).abstract_ok); // = t+2
}

TEST(QuantileAblation, ValidatesRange) {
  shm::SimMemory mem;
  EXPECT_THROW(KAntiOmega(mem, {4, 1, 2, 1, 5}), ContractViolation);
  EXPECT_THROW(KAntiOmega(mem, {4, 1, 2, 1, -1}), ContractViolation);
}

}  // namespace
}  // namespace setlib::fd
