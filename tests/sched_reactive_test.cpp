// Execution-reactive adversaries (src/sched/reactive.h): the registry
// resolves, generation is a pure function of (observations, seed),
// every emitted pid is alive and in range, the window-stretcher's
// silent stretches really grow past its base stretch, the
// budget-crasher never exceeds its budget nor steps a crashed process,
// and — mirroring sched_families_test — a 1000-schedule differential
// pins the packed analyzer against the reference scan on reactive
// schedules.
#include "src/sched/reactive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/sched/analyzer.h"
#include "src/sched/observations.h"
#include "src/util/rng.h"

namespace setlib::sched {
namespace {

ReactiveParams params_for(int n) {
  ReactiveParams p;
  p.n = n;
  p.stretch = 32;
  p.crash_budget = std::min(2, n - 1);
  return p;
}

TEST(ReactiveRegistryTest, NamesAreUniqueAndResolvable) {
  const auto& kinds = reactive_adversaries();
  ASSERT_EQ(kinds.size(), 3u);
  std::vector<std::string> names;
  for (const ReactiveInfo& info : kinds) {
    names.emplace_back(info.name);
    const ReactiveInfo* found = find_reactive(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->kind, info.kind);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_EQ(find_reactive("no-such-adversary"), nullptr);
}

TEST(ReactiveRegistryTest, SameParamsAndSeedReproduceTheSchedule) {
  // victims = 2 keeps the epoch pools larger than one process, so the
  // seed actually steers the emissions for every kind.
  ReactiveParams p = params_for(6);
  p.victims = 2;
  for (const ReactiveInfo& info : reactive_adversaries()) {
    auto a = make_reactive(info.kind, p, 1234);
    auto b = make_reactive(info.kind, p, 1234);
    const Schedule sa = generate_observed(*a, 4'000);
    const Schedule sb = generate_observed(*b, 4'000);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::int64_t t = 0; t < sa.size(); ++t) {
      ASSERT_EQ(sa[t], sb[t]) << info.name << " diverges at step " << t;
    }
    auto c = make_reactive(info.kind, p, 99);
    const Schedule sc = generate_observed(*c, 4'000);
    bool differs = false;
    for (std::int64_t t = 0; t < sa.size(); ++t) {
      if (sa[t] != sc[t]) {
        differs = true;
        break;
      }
    }
    EXPECT_TRUE(differs) << info.name << " ignores its seed";
  }
}

TEST(ReactiveRegistryTest, EveryStepIsInRangeAndEverybodySteps) {
  Rng rng(7);
  for (const ReactiveInfo& info : reactive_adversaries()) {
    for (int trial = 0; trial < 6; ++trial) {
      const int n = 2 + static_cast<int>(rng.next_below(10));
      auto gen = make_reactive(info.kind, params_for(n), rng.next_u64());
      const Schedule s = generate_observed(*gen, 4'000);
      for (std::int64_t t = 0; t < s.size(); ++t) {
        ASSERT_GE(s[t], 0) << info.name;
        ASSERT_LT(s[t], n) << info.name;
      }
      // Liveness: every non-crashed process keeps stepping (release
      // passes / round-robin releases / uniform draws reach everyone).
      const ProcSet crashed = gen->crashes_requested();
      for (Pid q = 0; q < n; ++q) {
        if (!crashed.contains(q)) {
          EXPECT_GT(s.count(q), 0) << info.name << " starves pid " << q;
        }
      }
    }
  }
}

TEST(WindowStretcherTest, SilentStretchesGrowPastTheBaseStretch) {
  const int n = 5;
  ReactiveParams p = params_for(n);
  auto gen = make_reactive(ReactiveKind::kWindowStretcher, p, 11);
  const Schedule s = generate_observed(*gen, 8'000);
  // Every epoch silences its victims for stretch + max_silence steps,
  // and max_silence only grows — so some process must show a gap well
  // beyond the base stretch (the reactive-growth signature).
  std::int64_t longest_gap = 0;
  for (Pid victim = 0; victim < n; ++victim) {
    std::int64_t gap = 0;
    for (std::int64_t t = 0; t < s.size(); ++t) {
      gap = s[t] == victim ? 0 : gap + 1;
      longest_gap = std::max(longest_gap, gap);
    }
  }
  EXPECT_GE(longest_gap, 2 * p.stretch);
}

TEST(BudgetCrasherTest, StaysWithinBudgetAndNeverStepsTheCrashed) {
  const int n = 6;
  ReactiveParams p = params_for(n);
  p.crash_budget = 3;
  auto gen = make_reactive(ReactiveKind::kBudgetCrasher, p, 21);
  // Drive the closed loop by hand so the crash set can be sampled
  // before every pull: once a process is in crashes_requested it must
  // never be emitted again.
  for (std::int64_t t = 0; t < 6'000; ++t) {
    const ProcSet crashed_before = gen->crashes_requested();
    const Pid stepped = gen->next();
    ASSERT_FALSE(crashed_before.contains(stepped))
        << "crashed pid " << stepped << " stepped at " << t;
    gen->feed_ptr()->record_step(stepped);
  }
  const ProcSet crashed = gen->crashes_requested();
  EXPECT_LE(crashed.size(), p.crash_budget);
  EXPECT_LT(crashed.size(), n);  // somebody always survives
  // The seeded checkpoints fire well inside 6000 steps, so the budget
  // is actually spent even with no published progress.
  EXPECT_GT(crashed.size(), 0);
}

TEST(DecisionChaserTest, ChasesThePublishedFrontier) {
  const int n = 4;
  auto feed = std::make_shared<ObservationFeed>(n);
  ReactiveParams p = params_for(n);
  p.stretch = 64;
  auto gen =
      make_reactive(ReactiveKind::kDecisionChaser, p, 5, feed);
  // Publish pid 2 as far ahead of everyone: outside the round-robin
  // release steps it must never be scheduled.
  feed->publish_progress(2, 1'000'000);
  std::int64_t chased_steps = 0;
  for (std::int64_t t = 0; t < 1'000; ++t) {
    const Pid stepped = gen->next();
    feed->record_step(stepped);
    if (stepped == 2) ++chased_steps;
  }
  // Only the every-`stretch` liveness release can reach pid 2 (1000 /
  // 64 rotations over 4 alive pids => a handful of steps at most).
  EXPECT_LE(chased_steps, 1'000 / p.stretch);
  EXPECT_GT(chased_steps, 0);  // but it is never starved forever
}

TEST(ObservationFeedTest, TracksSilencesWindowsAndCrashes) {
  ObservationFeed feed(3);
  EXPECT_EQ(feed.total_steps(), 0);
  EXPECT_EQ(feed.silence_of(0), 0);
  feed.record_step(0);
  feed.record_step(0);
  feed.record_step(1);
  EXPECT_EQ(feed.total_steps(), 3);
  EXPECT_EQ(feed.steps_of(0), 2);
  EXPECT_EQ(feed.silence_of(0), 1);  // one step since pid 0's last
  EXPECT_EQ(feed.silence_of(1), 0);
  EXPECT_EQ(feed.silence_of(2), 3);  // never stepped
  // window_age of a set = the youngest member silence (a P-free window
  // is open only while every member is silent).
  EXPECT_EQ(feed.window_age(ProcSet::of({0, 2})), 1);
  EXPECT_EQ(feed.window_age(ProcSet::of({2})), 3);
  EXPECT_EQ(feed.max_silence(), 3);
  feed.record_crash(2);
  feed.record_crash(2);  // idempotent
  EXPECT_EQ(feed.crashed(), ProcSet::of({2}));
  feed.publish_decided(1);
  EXPECT_TRUE(feed.decided(1));
  EXPECT_EQ(feed.decided_set(), ProcSet::of({1}));
  feed.publish_progress(0, 7);
  EXPECT_TRUE(feed.has_progress(0));
  EXPECT_EQ(feed.progress_of(0), 7);
  EXPECT_FALSE(feed.has_progress(1));
  EXPECT_EQ(feed.progress_of(1), feed.steps_of(1));  // proxy
}

TEST(ReactiveDifferentialTest, PackedBoundsBitIdenticalOn1000Schedules) {
  // The 1000-schedule differential harness over the reactive
  // adversaries: pure-generation (generate_observed) schedules pin the
  // packed analyzer against the reference scan, full prefixes and
  // random [from, to) windows alike.
  Rng rng(2027);
  const auto& kinds = reactive_adversaries();
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(23));  // up to 24
    std::int64_t len = rng.next_in(0, 400);
    if (trial % 7 == 0) len = 64 * rng.next_in(0, 4);   // word-aligned
    if (trial % 11 == 0) len = 63 + rng.next_in(0, 3);  // straddling
    ReactiveParams p;
    p.n = n;
    p.stretch = 1 + rng.next_in(0, 64);
    p.victims = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    p.crash_budget = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    p.decide_threshold = rng.next_in(0, 64);
    const ReactiveInfo& info = kinds[rng.next_below(kinds.size())];
    auto gen = make_reactive(info.kind, p, rng.next_u64());
    const Schedule s = generate_observed(*gen, len);

    ProcSet p_set;
    ProcSet q_set;
    for (Pid pid = 0; pid < n; ++pid) {
      if (rng.next_bool(0.4)) p_set = p_set.with(pid);
      if (rng.next_bool(0.4)) q_set = q_set.with(pid);
    }
    EXPECT_EQ(min_timeliness_bound(s, p_set, q_set),
              min_timeliness_bound_reference(s, p_set, q_set))
        << info.name << " n=" << n << " len=" << len;
    if (len > 0) {
      const std::int64_t from = rng.next_in(0, len);
      const std::int64_t to = rng.next_in(from, len);
      EXPECT_EQ(min_timeliness_bound(s, p_set, q_set, from, to),
                min_timeliness_bound_reference(s, p_set, q_set, from, to))
          << info.name << " n=" << n << " len=" << len << " ["
          << from << "," << to << ")";
    }
  }
}

}  // namespace
}  // namespace setlib::sched
