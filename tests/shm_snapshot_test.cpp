// Atomic snapshot: sequential semantics, wait-freedom (step bound),
// and the atomicity property (with coordinatewise-monotone updates,
// all scans anywhere must be pairwise comparable — a total order of
// snapshots exists iff the object linearizes).
#include "src/shm/snapshot.h"

#include <gtest/gtest.h>

#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::shm {
namespace {

TEST(AtomicSnapshotTest, SequentialUpdateThenScan) {
  SimMemory mem;
  AtomicSnapshot snap(mem, 3, "snap", -1);
  Simulator sim(mem, 3);
  std::vector<std::int64_t> out;
  sim.process(0).add_task(snap.update(0, 10), "u");
  sched::RoundRobinGenerator rr0(3);
  sim.run(rr0, 100);
  sim.process(1).add_task(snap.update(1, 20), "u");
  sim.run(rr0, 100);
  sim.process(2).add_task(snap.scan(2, &out), "s");
  sim.run(rr0, 100);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 20);
  EXPECT_EQ(out[2], -1);  // never updated: initial value
}

Prog updater_loop(AtomicSnapshot* snap, Pid p, int rounds) {
  for (int r = 1; r <= rounds; ++r) {
    SETLIB_CO_RUN(snap->update(p, r));
  }
}

Prog scanner_loop(AtomicSnapshot* snap, Pid p, int rounds,
                  std::vector<std::vector<std::int64_t>>* results) {
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::int64_t> out;
    SETLIB_CO_RUN(snap->scan(p, &out));
    results->push_back(out);
  }
}

bool comparable(const std::vector<std::int64_t>& a,
                const std::vector<std::int64_t>& b) {
  bool a_le_b = true, b_le_a = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) a_le_b = false;
    if (b[i] > a[i]) b_le_a = false;
  }
  return a_le_b || b_le_a;
}

class SnapshotAtomicitySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotAtomicitySweep, AllScansPairwiseComparable) {
  // Every process updates its component with an increasing counter and
  // scans in between. Because every component is monotone, any two
  // ATOMIC snapshots are comparable; incomparable scans would prove a
  // linearization failure.
  const int n = 4;
  SimMemory mem;
  AtomicSnapshot snap(mem, n, "snap", 0);
  Simulator sim(mem, n);
  std::vector<std::vector<std::vector<std::int64_t>>> results(n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(updater_loop(&snap, p, 30), "u");
    sim.process(p).add_task(scanner_loop(&snap, p, 30, &results[p]), "s");
  }
  sched::UniformRandomGenerator gen(n, GetParam());
  sim.run(gen, 600'000);

  std::vector<std::vector<std::int64_t>> all;
  for (const auto& per_proc : results) {
    for (const auto& s : per_proc) all.push_back(s);
  }
  ASSERT_GT(all.size(), 20u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      ASSERT_TRUE(comparable(all[i], all[j]))
          << "incomparable snapshots found (seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotAtomicitySweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

TEST(AtomicSnapshotTest, ScanIsWaitFreeBounded) {
  // A scan completes within (n + 2) double collects even under
  // continuous interference: drive one scanner while all others
  // update nonstop, and count the scanner's own steps.
  const int n = 4;
  SimMemory mem;
  AtomicSnapshot snap(mem, n, "snap", 0);
  Simulator sim(mem, n);
  std::vector<std::int64_t> out;
  sim.process(0).add_task(snap.scan(0, &out), "s");
  for (Pid p = 1; p < n; ++p) {
    sim.process(p).add_task(updater_loop(&snap, p, 1'000'000), "u");
  }
  // Adversarial-ish schedule: scanner gets 1 step per 7 updater steps.
  sched::WeightedRandomGenerator gen({1.0, 2.3, 2.3, 2.4}, 3);
  sim.run_until(gen, 400'000, [&] { return !out.empty(); },
                /*check_every=*/1);
  ASSERT_FALSE(out.empty());
  // Steps of the scanner: at most (n+2) * 2n reads + slack.
  EXPECT_LE(sim.process(0).ops_executed(), (n + 2) * 2 * n + 4);
}

TEST(AtomicSnapshotTest, UpdateEmbedsCoherentView) {
  // After a lone updater runs, its segment's embedded view must agree
  // with the state its scan saw.
  const int n = 3;
  SimMemory mem;
  AtomicSnapshot snap(mem, n, "snap", 7);
  Simulator sim(mem, n);
  sim.process(1).add_task(snap.update(1, 99), "u");
  sched::RoundRobinGenerator gen(n);
  sim.run(gen, 200);
  const Value seg = mem.peek(snap.segment_reg(1));
  ASSERT_GE(seg.size(), static_cast<std::size_t>(2 + n));
  EXPECT_EQ(seg.at(0), 1);   // seq
  EXPECT_EQ(seg.at(1), 99);  // value
  EXPECT_EQ(seg.at(2), 7);   // view: initials everywhere
  EXPECT_EQ(seg.at(3), 7);
  EXPECT_EQ(seg.at(4), 7);
}

}  // namespace
}  // namespace setlib::shm
