// ThreadedExecutor edge cases: crash boundaries, op budgets, wall-clock
// expiry, halted processes, and the pacer's schedule recording under
// concurrency.
#include <gtest/gtest.h>

#include <atomic>

#include "src/runtime/executor.h"
#include "src/runtime/pacer.h"
#include "src/runtime/rt_memory.h"
#include "src/sched/analyzer.h"
#include "src/shm/program.h"

namespace setlib::runtime {
namespace {

shm::Prog spin(shm::RegisterId reg) {
  for (std::int64_t v = 1;; ++v) {
    co_await shm::write(reg, shm::Value::of(v));
  }
}

shm::Prog finite(shm::RegisterId reg, int ops) {
  for (int i = 0; i < ops; ++i) {
    co_await shm::write(reg, shm::Value::of(i + 1));
  }
}

TEST(ExecutorTest, WallClockExpiryEndsRun) {
  RtMemory mem;
  const auto r0 = mem.alloc("r0");
  const auto r1 = mem.alloc("r1");
  ThreadedExecutor exec(mem, 2);
  exec.process(0).add_task(spin(r0), "spin");
  exec.process(1).add_task(spin(r1), "spin");
  Pacer pacer(2, {}, /*record_schedule=*/false);
  ThreadedExecutor::Options options;
  options.max_wall = std::chrono::milliseconds(50);
  const auto stats = exec.run(pacer, options);
  EXPECT_TRUE(stats.wall_expired);
  EXPECT_FALSE(stats.all_done);
  EXPECT_GT(stats.total_ops, 0);
}

TEST(ExecutorTest, CrashAfterZeroOpsMeansNoSteps) {
  RtMemory mem;
  const auto r0 = mem.alloc("r0");
  const auto r1 = mem.alloc("r1");
  ThreadedExecutor exec(mem, 2);
  exec.process(0).add_task(finite(r0, 5), "fin");
  exec.process(1).add_task(spin(r1), "spin");
  exec.crash_after(1, 0);
  Pacer pacer(2, {}, /*record_schedule=*/true);
  ThreadedExecutor::Options options;
  options.max_wall = std::chrono::milliseconds(2'000);
  const auto stats = exec.run(pacer, options);
  EXPECT_TRUE(stats.all_done);  // process 0 halted; 1 crashed
  EXPECT_EQ(exec.crashed(), ProcSet::of(1));
  EXPECT_TRUE(mem.read(r1).is_nil());  // 1 never wrote
  // The recorded schedule contains no step of process 1.
  EXPECT_EQ(pacer.recorded_schedule().count(1), 0);
}

TEST(ExecutorTest, HaltedProcessCountsAsDone) {
  RtMemory mem;
  const auto r = mem.alloc("r");
  ThreadedExecutor exec(mem, 1);
  exec.process(0).add_task(finite(r, 10), "fin");
  Pacer pacer(1, {}, false);
  ThreadedExecutor::Options options;
  options.max_wall = std::chrono::milliseconds(2'000);
  const auto stats = exec.run(pacer, options);
  EXPECT_TRUE(stats.all_done);
  EXPECT_EQ(mem.read(r).as_int_or(0), 10);
}

TEST(ExecutorTest, LocalDonePredicateEvaluatedByOwnThread) {
  RtMemory mem;
  const auto r0 = mem.alloc("r0");
  const auto r1 = mem.alloc("r1");
  ThreadedExecutor exec(mem, 2);
  exec.process(0).add_task(spin(r0), "spin");
  exec.process(1).add_task(spin(r1), "spin");
  std::atomic<int> calls{0};
  Pacer pacer(2, {}, false);
  ThreadedExecutor::Options options;
  options.max_wall = std::chrono::milliseconds(3'000);
  options.poll_every = 8;
  options.local_done = [&](Pid p) {
    calls.fetch_add(1);
    (void)p;
    return true;  // everyone is immediately "done"
  };
  const auto stats = exec.run(pacer, options);
  EXPECT_TRUE(stats.all_done);
  EXPECT_FALSE(stats.wall_expired);
  EXPECT_GE(calls.load(), 2);
}

TEST(ExecutorTest, MaxOpsExitEndsRunWithoutWaitingForMaxWall) {
  // Regression: a process that leaves its loop via the op budget is
  // neither done nor crashed, and the monitor used to spin until
  // max_wall (10 s default) even though every thread had returned.
  // With exited-thread tracking the run must end in milliseconds.
  RtMemory mem;
  const auto r0 = mem.alloc("r0");
  const auto r1 = mem.alloc("r1");
  ThreadedExecutor exec(mem, 2);
  exec.process(0).add_task(spin(r0), "spin");
  exec.process(1).add_task(spin(r1), "spin");
  Pacer pacer(2, {}, false);
  ThreadedExecutor::Options options;
  options.max_ops_per_process = 200;
  options.max_wall = std::chrono::milliseconds(10'000);
  const auto stats = exec.run(pacer, options);
  EXPECT_FALSE(stats.all_done);  // budget exit is not "done"
  EXPECT_FALSE(stats.wall_expired);
  EXPECT_EQ(stats.total_ops, 400);
  // Well under max_wall: milliseconds, not 10 s (generous CI margin).
  EXPECT_LT(stats.elapsed, std::chrono::milliseconds(2'000));
}

TEST(ExecutorTest, MaxOpsBudgetStopsThreads) {
  RtMemory mem;
  const auto r = mem.alloc("r");
  ThreadedExecutor exec(mem, 1);
  exec.process(0).add_task(spin(r), "spin");
  Pacer pacer(1, {}, false);
  ThreadedExecutor::Options options;
  options.max_ops_per_process = 1'000;
  options.max_wall = std::chrono::milliseconds(5'000);
  const auto stats = exec.run(pacer, options);
  EXPECT_LE(stats.total_ops, 1'000);
  EXPECT_EQ(mem.read(r).as_int_or(0), 1'000);
}

TEST(ExecutorTest, PendingCrashKeepsTheRunAliveUntilItFires) {
  // Everyone reports done immediately, but process 1 has a crash
  // scheduled after 500 ops. The old monitor would end the run at the
  // first poll (all done), racing the crash out of existence; now the
  // run must not settle until the crash has fired.
  RtMemory mem;
  const auto r0 = mem.alloc("r0");
  const auto r1 = mem.alloc("r1");
  ThreadedExecutor exec(mem, 2);
  exec.process(0).add_task(spin(r0), "spin");
  exec.process(1).add_task(spin(r1), "spin");
  exec.crash_after(1, 500);
  Pacer pacer(2, {}, /*record_schedule=*/true);
  ThreadedExecutor::Options options;
  options.max_wall = std::chrono::milliseconds(5'000);
  options.poll_every = 8;
  options.local_done = [](Pid) { return true; };
  const auto stats = exec.run(pacer, options);
  EXPECT_TRUE(stats.all_done);
  EXPECT_FALSE(stats.wall_expired);
  EXPECT_EQ(exec.crashed(), ProcSet::of(1));
  // The crash fired after exactly 500 ops of process 1.
  EXPECT_EQ(pacer.recorded_schedule().count(1), 500);
}

TEST(ExecutorTest, PacerScheduleSatisfiesConstraintUnderThreads) {
  // Two spinning threads under a tight constraint: the recorded
  // schedule must satisfy it even though the OS interleaving is wild.
  RtMemory mem;
  const auto r0 = mem.alloc("r0");
  const auto r1 = mem.alloc("r1");
  ThreadedExecutor exec(mem, 2);
  exec.process(0).add_task(spin(r0), "spin");
  exec.process(1).add_task(spin(r1), "spin");
  Pacer pacer(2,
              {sched::TimelinessConstraint(ProcSet::of(0), ProcSet::of(1),
                                           2)},
              /*record_schedule=*/true);
  ThreadedExecutor::Options options;
  options.max_wall = std::chrono::milliseconds(80);
  exec.run(pacer, options);
  const auto schedule = pacer.recorded_schedule();
  ASSERT_GT(schedule.size(), 100);
  EXPECT_LE(sched::min_timeliness_bound(schedule, ProcSet::of(0),
                                        ProcSet::of(1)),
            2);
}

}  // namespace
}  // namespace setlib::runtime
