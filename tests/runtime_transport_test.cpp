// runtime::Transport: the orchestration subsystem's launch seam.
// LocalExecTransport must behave exactly like runtime::Subprocess
// (plus env plumbing); ChaosKillTransport must murder exactly the
// launch it was told to and pass everything else through — the fault
// injection the lease-protocol chaos tests build on.
#include "src/runtime/transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

namespace setlib::runtime {
namespace {

TEST(LocalExecTransportTest, RunsArgvAndCapturesOutput) {
  LocalExecTransport transport;
  TransportCommand command;
  command.argv = {"/bin/sh", "-c", "echo out; echo err >&2; exit 4"};
  const SubprocessResult result = transport.run(command);
  EXPECT_TRUE(result.started);
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.exit_code, 4);
  EXPECT_EQ(result.out, "out\n");
  EXPECT_EQ(result.err, "err\n");
  EXPECT_EQ(transport.describe(), "local");
}

TEST(LocalExecTransportTest, ExtraEnvEntriesReachTheWorker) {
  LocalExecTransport transport;
  TransportCommand command;
  command.argv = {"/bin/sh", "-c", "echo \"lease=$SETLIB_LEASE\""};
  command.env = {"SETLIB_LEASE=42"};
  const SubprocessResult result = transport.run(command);
  ASSERT_TRUE(result.ok()) << result.describe();
  EXPECT_EQ(result.out, "lease=42\n");
  // The inherited environment still travels alongside the extras.
  TransportCommand inherit;
  inherit.argv = {"/bin/sh", "-c", "test -n \"$PATH\""};
  inherit.env = {"SETLIB_LEASE=42"};
  EXPECT_TRUE(transport.run(inherit).ok());
}

TEST(LocalExecTransportTest, TimeoutKillsTheWorker) {
  LocalExecTransport transport;
  TransportCommand command;
  command.argv = {"/bin/sh", "-c", "sleep 60"};
  command.timeout = std::chrono::milliseconds(200);
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult result = transport.run(command);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.ok());
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(ChaosKillTransportTest, KillsExactlyTheNthLaunch) {
  LocalExecTransport local;
  ChaosKillTransport chaos(local, 2, std::chrono::milliseconds(0));
  TransportCommand command;
  // Long enough that the delay-0 kill always lands first.
  command.argv = {"/bin/sh", "-c", "sleep 2; echo survived"};
  command.timeout = std::chrono::seconds(30);

  TransportCommand quick;
  quick.argv = {"/bin/sh", "-c", "echo ok"};

  // Launch 1 passes through untouched.
  EXPECT_TRUE(chaos.run(quick).ok());
  EXPECT_EQ(chaos.kills(), 0);
  // Launch 2 is sabotaged: the worker dies by SIGKILL, surfaced as
  // the killer shell's exit 137 (128 + 9).
  const SubprocessResult killed = chaos.run(command);
  EXPECT_EQ(chaos.kills(), 1);
  EXPECT_FALSE(killed.ok());
  EXPECT_TRUE(killed.exited);
  EXPECT_EQ(killed.exit_code, 137);
  EXPECT_EQ(killed.out.find("survived"), std::string::npos);
  // Launch 3 passes through again.
  EXPECT_TRUE(chaos.run(quick).ok());
  EXPECT_EQ(chaos.kills(), 1);
  EXPECT_EQ(chaos.describe(), "local+chaos-kill");
}

TEST(ChaosKillTransportTest, DisabledDecoratorIsTransparent) {
  LocalExecTransport local;
  ChaosKillTransport chaos(local, 0, std::chrono::milliseconds(0));
  TransportCommand command;
  command.argv = {"/bin/sh", "-c", "echo ok"};
  for (int i = 0; i < 3; ++i) {
    const SubprocessResult result = chaos.run(command);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.out, "ok\n");
  }
  EXPECT_EQ(chaos.kills(), 0);
}

}  // namespace
}  // namespace setlib::runtime
