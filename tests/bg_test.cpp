// Safe agreement and the BG simulation substrate: agreement/validity,
// unsafe-zone blocking (the defining trade-off), simulation determinism
// across simulators, and the Theorem 26 schedule-mapping properties
// (i) at most m-1 simulated crashes and (ii) the simulated schedule's
// timeliness shape.
#include <gtest/gtest.h>

#include <memory>

#include "src/bg/bg_sim.h"
#include "src/bg/safe_agreement.h"
#include "src/bg/threads.h"
#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::bg {
namespace {

// Drive propose-then-resolve as a single task per participant.
shm::Prog propose_and_resolve(SafeAgreement* sa, Pid i, std::int64_t v,
                              SafeAgreement::Outcome* out) {
  SETLIB_CO_RUN(sa->propose(i, shm::Value::of(v)));
  for (;;) {
    bool blocked = false;
    SETLIB_CO_RUN(sa->try_resolve(i, out, &blocked));
    if (out->decided) co_return;
  }
}

TEST(SafeAgreementTest, SoloProposerDecidesOwnValue) {
  shm::SimMemory mem;
  SafeAgreement sa(mem, 3, "sa");
  SafeAgreement::Outcome out;
  shm::Simulator sim(mem, 3);
  sim.process(0).add_task(propose_and_resolve(&sa, 0, 42, &out), "sa");
  sched::RoundRobinGenerator gen(3);
  sim.run(gen, 1'000);
  ASSERT_TRUE(out.decided);
  EXPECT_EQ(out.value, shm::Value::of(42));
}

class SafeAgreementSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafeAgreementSweep, AgreementAndValidityUnderRandomSchedules) {
  const int m = 4;
  shm::SimMemory mem;
  SafeAgreement sa(mem, m, "sa");
  std::vector<SafeAgreement::Outcome> outs(m);
  shm::Simulator sim(mem, m);
  for (Pid i = 0; i < m; ++i) {
    sim.process(i).add_task(propose_and_resolve(&sa, i, 10 + i, &outs[i]),
                            "sa");
  }
  sched::UniformRandomGenerator gen(m, GetParam());
  sim.run(gen, 100'000);
  for (Pid i = 0; i < m; ++i) {
    ASSERT_TRUE(outs[i].decided) << "participant " << i;
    EXPECT_EQ(outs[i].value, outs[0].value);
    const std::int64_t v = outs[i].value.at(0);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 10 + m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafeAgreementSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(SafeAgreementTest, CrashInUnsafeZoneBlocksResolution) {
  const int m = 3;
  shm::SimMemory mem;
  SafeAgreement sa(mem, m, "sa");
  std::vector<SafeAgreement::Outcome> outs(m);
  shm::Simulator sim(mem, m);
  for (Pid i = 0; i < m; ++i) {
    sim.process(i).add_task(propose_and_resolve(&sa, i, 10 + i, &outs[i]),
                            "sa");
  }
  // Participant 0's first step is the level-1 write; crash right after:
  // it stays in the unsafe zone forever.
  sim.use_crash_plan(sched::CrashPlan::at(m, ProcSet::of(0), 1));
  sched::RoundRobinGenerator gen(m);
  sim.run(gen, 60'000);
  EXPECT_FALSE(outs[1].decided);
  EXPECT_FALSE(outs[2].decided);
}

TEST(SafeAgreementTest, CrashOutsideUnsafeZoneHarmless) {
  const int m = 3;
  shm::SimMemory mem;
  SafeAgreement sa(mem, m, "sa");
  std::vector<SafeAgreement::Outcome> outs(m);
  shm::Simulator sim(mem, m);
  for (Pid i = 0; i < m; ++i) {
    sim.process(i).add_task(propose_and_resolve(&sa, i, 10 + i, &outs[i]),
                            "sa");
  }
  // Let participant 0 fully finish its propose (enter AND leave the
  // unsafe zone) before crashing it.
  for (int s = 0; s < 2 + 2 * 2 * m + 10; ++s) sim.step_once(0);
  sim.crash(0);
  sched::RoundRobinGenerator gen(m);
  sim.run(gen, 60'000);
  EXPECT_TRUE(outs[1].decided);
  EXPECT_TRUE(outs[2].decided);
  EXPECT_EQ(outs[1].value, outs[2].value);
}

struct BgRig {
  shm::SimMemory mem;
  std::unique_ptr<BGSimulation> bg;
  std::unique_ptr<shm::Simulator> sim;

  BgRig(int m, int n, int horizon, ThreadFactory factory) {
    bg = std::make_unique<BGSimulation>(
        mem, BGSimulation::Params{m, n, horizon}, std::move(factory));
    sim = std::make_unique<shm::Simulator>(mem, m);
    for (Pid i = 0; i < m; ++i) {
      sim->process(i).add_task(bg->run(i), "bg");
    }
  }
};

TEST(BGSimulationTest, AllThreadsCompleteWithoutCrashes) {
  const int m = 3, n = 5, horizon = 6;
  BgRig rig(m, n, horizon, [](int u) {
    return std::make_unique<MinInputThread>(100 + u, 4);
  });
  sched::RoundRobinGenerator gen(m);
  rig.sim->run_until(gen, 3'000'000, [&] {
    for (int s = 0; s < m; ++s) {
      for (int u = 0; u < n; ++u) {
        if (!rig.bg->thread_decision(s, u).has_value()) return false;
      }
    }
    return true;
  });
  // Determinism across simulators: every simulator computed the same
  // decision for every thread.
  for (int u = 0; u < n; ++u) {
    const auto d0 = rig.bg->thread_decision(0, u);
    ASSERT_TRUE(d0.has_value()) << "thread " << u;
    for (int s = 1; s < m; ++s) {
      const auto ds = rig.bg->thread_decision(s, u);
      ASSERT_TRUE(ds.has_value()) << "sim " << s << " thread " << u;
      EXPECT_EQ(*ds, *d0);
    }
    // Validity: a MinInputThread decision is one of the inputs.
    EXPECT_GE(*d0, 100);
    EXPECT_LT(*d0, 100 + n);
  }
  EXPECT_EQ(rig.bg->blocked_threads(), ProcSet());
}

TEST(BGSimulationTest, PropertyOneCrashBlocksAtMostOneThread) {
  const int m = 3, n = 4, horizon = 32;
  BgRig rig(m, n, horizon, [](int u) {
    return std::make_unique<ForeverThread>(10 * u);
  });
  // Crash simulator 2 early, with decent odds of being mid-unsafe-zone.
  rig.sim->use_crash_plan(sched::CrashPlan::at(m, ProcSet::of(2), 57));
  sched::RoundRobinGenerator gen(m);
  rig.sim->run(gen, 1'500'000);
  // At most one simulated thread is blocked (m - 1 = 2 crashes allowed
  // by BG, but one crashed simulator occupies at most one unsafe zone).
  EXPECT_LE(rig.bg->blocked_threads().size(), 1);
  // The other threads made progress from every live simulator's view.
  for (int u = 0; u < n; ++u) {
    if (rig.bg->blocked_threads().contains(u)) continue;
    EXPECT_GT(rig.bg->steps_of(0, u), 3) << "thread " << u;
  }
}

TEST(BGSimulationTest, PropertyTwoSimulatedScheduleShape) {
  // With m simulators round-robin over n forever-threads and no
  // crashes, the simulated schedule keeps every thread timely: in
  // particular every (m)-subset — and a fortiori every (k+1)-subset
  // for k + 1 <= m — is timely w.r.t. the set of all n threads.
  const int m = 3, n = 5, horizon = 64;
  BgRig rig(m, n, horizon, [](int u) {
    return std::make_unique<ForeverThread>(u);
  });
  sched::RoundRobinGenerator gen(m);
  rig.sim->run(gen, 2'000'000);
  const sched::Schedule& simulated = rig.bg->simulated_schedule();
  ASSERT_GT(simulated.size(), 5 * n);
  for (const ProcSet s : k_subsets(n, m)) {
    EXPECT_LE(sched::min_timeliness_bound(simulated, s,
                                          ProcSet::universe(n)),
              2 * n)
        << s.to_string();
  }
  // Each thread appears with near-equal frequency (round-robin shape).
  for (int u = 0; u < n; ++u) {
    EXPECT_NEAR(static_cast<double>(simulated.count(u)),
                static_cast<double>(simulated.size()) / n,
                static_cast<double>(simulated.size()) / n * 0.25);
  }
}

TEST(BGSimulationTest, DecisionsValidWithSimulatorCrash) {
  const int m = 3, n = 4, horizon = 8;
  BgRig rig(m, n, horizon, [](int u) {
    return std::make_unique<MinInputThread>(7 * (u + 1), 5);
  });
  rig.sim->use_crash_plan(sched::CrashPlan::at(m, ProcSet::of(1), 95));
  sched::RoundRobinGenerator gen(m);
  rig.sim->run(gen, 2'000'000);
  // Live simulators agree on every thread decision they both computed.
  for (int u = 0; u < n; ++u) {
    const auto d0 = rig.bg->thread_decision(0, u);
    const auto d2 = rig.bg->thread_decision(2, u);
    if (d0.has_value() && d2.has_value()) {
      EXPECT_EQ(*d0, *d2) << "thread " << u;
    }
    if (d0.has_value()) {
      EXPECT_EQ(*d0 % 7, 0) << "validity: decision is some input";
    }
  }
}

}  // namespace
}  // namespace setlib::bg
