// The ExperimentRunner: shard determinism (the concatenation of the
// k/N shard runs equals the 1-shard run cell-for-cell), persistent
// pool reuse (no thread respawn across sequential run() calls), grain
// batching, and the report sinks.
#include "src/core/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/runtime/executor.h"
#include "src/util/assert.h"
#include "src/util/json.h"

namespace setlib::core {
namespace {

SweepGrid shard_grid() {
  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 150'000;
  grid.add_spec({1, 1, 3})
      .add_spec({2, 2, 4})
      .add_family(ScheduleFamily::kEnforcedRandom)
      .add_bound(2)
      .add_bound(3)
      .repeats(3)
      .base_seed(41)
      .prototype(proto);
  return grid;  // 2 specs x 1 family x 2 bounds x 3 repeats = 12 cells
}

ExperimentRunner make_runner(int threads, ShardSpec shard = {},
                             std::size_t grain = 0) {
  RunnerOptions options;
  options.threads = threads;
  options.shard = shard;
  options.grain = grain;
  return ExperimentRunner(options);
}

TEST(ShardSpecTest, RangesPartitionTheIndexSpace) {
  for (const std::size_t total : {0u, 1u, 7u, 10u, 12u, 101u}) {
    for (const std::size_t n : {1u, 2u, 3u, 4u, 7u}) {
      std::size_t covered = 0;
      std::size_t previous_end = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const auto [begin, end] = ShardSpec{k, n}.range(total);
        EXPECT_EQ(begin, previous_end);  // contiguous, in order
        EXPECT_LE(begin, end);
        covered += end - begin;
        previous_end = end;
      }
      EXPECT_EQ(previous_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(RunnerShardTest, ShardUnionEqualsUnshardedRunCellForCell) {
  const SweepGrid grid = shard_grid();

  ExperimentRunner full_runner = make_runner(4);
  CollectSink full;
  full_runner.run(grid, "full", {&full});
  ASSERT_EQ(full.cells().size(), 12u);

  std::vector<SweepCell> union_cells;
  std::vector<RunReport> union_reports;
  const std::size_t shards = 4;
  for (std::size_t k = 0; k < shards; ++k) {
    ExperimentRunner shard_runner = make_runner(2, ShardSpec{k, shards});
    CollectSink part;
    shard_runner.run(grid, "part", {&part});
    union_cells.insert(union_cells.end(), part.cells().begin(),
                       part.cells().end());
    union_reports.insert(union_reports.end(), part.reports().begin(),
                         part.reports().end());
  }

  ASSERT_EQ(union_cells.size(), full.cells().size());
  for (std::size_t i = 0; i < union_cells.size(); ++i) {
    EXPECT_EQ(union_cells[i].index, full.cells()[i].index);
    EXPECT_EQ(union_cells[i].config.seed, full.cells()[i].config.seed);
    EXPECT_EQ(union_reports[i].success, full.reports()[i].success);
    EXPECT_EQ(union_reports[i].steps_executed,
              full.reports()[i].steps_executed);
    EXPECT_EQ(union_reports[i].witness_bound,
              full.reports()[i].witness_bound);
    EXPECT_EQ(union_reports[i].distinct_decisions,
              full.reports()[i].distinct_decisions);
    EXPECT_EQ(union_reports[i].detail, full.reports()[i].detail);
  }
}

TEST(RunnerShardTest, RandomizedFamiliesBitIdenticalAcrossThreadsAndShards) {
  // The new adversary families ride the same determinism contract as
  // the paper constructions: per-cell seeds are index-pure, so a
  // family sweep is bit-identical at 1 vs. 8 threads and the K/3
  // shard runs concatenate to the unsharded run.
  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 120'000;
  grid.add_spec({2, 1, 4});
  for (const auto family : randomized_families()) {
    grid.add_family(family);
  }
  grid.add_bound(3).repeats(2).base_seed(99).prototype(proto);
  // 1 spec x 4 families x 1 bound x 2 repeats = 8 cells.

  ExperimentRunner serial = make_runner(1);
  CollectSink one;
  serial.run(grid, "one", {&one});
  ASSERT_EQ(one.reports().size(), 8u);

  ExperimentRunner wide = make_runner(8);
  CollectSink eight;
  wide.run(grid, "eight", {&eight});

  std::vector<RunReport> union_reports;
  for (std::size_t k = 0; k < 3; ++k) {
    ExperimentRunner shard_runner = make_runner(2, ShardSpec{k, 3});
    CollectSink part;
    shard_runner.run(grid, "part", {&part});
    union_reports.insert(union_reports.end(), part.reports().begin(),
                         part.reports().end());
  }

  ASSERT_EQ(eight.reports().size(), one.reports().size());
  ASSERT_EQ(union_reports.size(), one.reports().size());
  for (std::size_t i = 0; i < one.reports().size(); ++i) {
    EXPECT_EQ(eight.reports()[i].detail, one.reports()[i].detail) << i;
    EXPECT_EQ(union_reports[i].detail, one.reports()[i].detail) << i;
    EXPECT_EQ(eight.reports()[i].witness_bound,
              one.reports()[i].witness_bound);
    EXPECT_EQ(union_reports[i].witness_bound,
              one.reports()[i].witness_bound);
    EXPECT_EQ(union_reports[i].faulty, one.reports()[i].faulty) << i;
  }
}

TEST(RunnerShardTest, ReactiveFamiliesBitIdenticalAcrossThreadsAndShards) {
  // The execution-reactive adversaries (sched/reactive.h) close a
  // feedback loop through the Simulator, but their reactions are a
  // pure function of (observations, seed) — so the same grid is
  // bit-identical at 1 vs. 8 threads and across a 3-shard union,
  // including the per-cell schedule hashes.
  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 60'000;
  grid.add_spec({2, 2, 5});
  for (const auto family : reactive_families()) {
    grid.add_family(family);
  }
  grid.add_bound(3).repeats(2).base_seed(2026).prototype(proto);
  // 1 spec x 3 reactive families x 1 bound x 2 repeats = 6 cells.

  ExperimentRunner serial = make_runner(1);
  CollectSink one;
  serial.run(grid, "one", {&one});
  ASSERT_EQ(one.reports().size(), 6u);

  ExperimentRunner wide = make_runner(8);
  CollectSink eight;
  wide.run(grid, "eight", {&eight});

  std::vector<RunReport> union_reports;
  for (std::size_t k = 0; k < 3; ++k) {
    ExperimentRunner shard_runner = make_runner(2, ShardSpec{k, 3});
    CollectSink part;
    shard_runner.run(grid, "part", {&part});
    union_reports.insert(union_reports.end(), part.reports().begin(),
                         part.reports().end());
  }

  ASSERT_EQ(eight.reports().size(), one.reports().size());
  ASSERT_EQ(union_reports.size(), one.reports().size());
  for (std::size_t i = 0; i < one.reports().size(); ++i) {
    EXPECT_EQ(eight.reports()[i].detail, one.reports()[i].detail) << i;
    EXPECT_EQ(union_reports[i].detail, one.reports()[i].detail) << i;
    EXPECT_EQ(eight.reports()[i].witness_bound,
              one.reports()[i].witness_bound);
    EXPECT_EQ(union_reports[i].witness_bound,
              one.reports()[i].witness_bound);
    EXPECT_EQ(union_reports[i].faulty, one.reports()[i].faulty) << i;
    // The replay hash pins the executed step stream itself, the
    // strongest bit-identity statement a cell can make.
    EXPECT_NE(one.reports()[i].schedule_hash, 0u) << i;
    EXPECT_EQ(eight.reports()[i].schedule_hash,
              one.reports()[i].schedule_hash)
        << i;
    EXPECT_EQ(union_reports[i].schedule_hash,
              one.reports()[i].schedule_hash)
        << i;
  }
}

TEST(RunnerShardTest, ShardedMapSlicesConcatenateToUnshardedMap) {
  const std::size_t n = 23;
  ExperimentRunner full_runner = make_runner(3);
  const auto full = full_runner.map<std::size_t>(
      n, [](std::size_t i) { return i * i + 1; });
  ASSERT_EQ(full.size(), n);

  std::vector<std::size_t> joined;
  for (std::size_t k = 0; k < 3; ++k) {
    ExperimentRunner shard_runner = make_runner(2, ShardSpec{k, 3});
    const auto part = shard_runner.map<std::size_t>(
        n, [](std::size_t i) { return i * i + 1; });
    joined.insert(joined.end(), part.begin(), part.end());
  }
  EXPECT_EQ(joined, full);
}

TEST(RunnerShardTest, EmptyShardIsLegal) {
  // More shards than cells: the tail shards are empty slices.
  ExperimentRunner runner = make_runner(2, ShardSpec{6, 8});
  SweepGrid grid;
  grid.add_spec({1, 1, 3});  // one cell
  CollectSink part;
  const SectionStats stats = runner.run(grid, "empty-shard", {&part});
  EXPECT_EQ(stats.cells, 0u);
  EXPECT_EQ(stats.grid_cells, 1u);
  EXPECT_TRUE(part.cells().empty());
}

TEST(RunnerPoolTest, SequentialRunsReuseTheSameWorkerThreads) {
  ExperimentRunner runner = make_runner(4);
  const std::int64_t spawned_at_start = runner.pool().threads_spawned();
  EXPECT_EQ(spawned_at_start, 3);  // submitter + 3 persistent workers

  const SweepGrid grid = shard_grid();
  CollectSink first_run, second_run;
  runner.run(grid, "first", {&first_run});
  const std::int64_t jobs_after_first = runner.pool().jobs_completed();
  runner.run(grid, "second", {&second_run});

  // Persistent pool: both sweep sections executed, yet the spawn
  // counter never moved — the same workers served both jobs.
  EXPECT_EQ(runner.pool().threads_spawned(), spawned_at_start);
  EXPECT_GT(runner.pool().jobs_completed(), jobs_after_first);

  // And reuse does not perturb results.
  ASSERT_EQ(first_run.reports().size(), second_run.reports().size());
  for (std::size_t i = 0; i < first_run.reports().size(); ++i) {
    EXPECT_EQ(first_run.reports()[i].steps_executed,
              second_run.reports()[i].steps_executed);
    EXPECT_EQ(first_run.reports()[i].detail,
              second_run.reports()[i].detail);
  }
}

TEST(RunnerPoolTest, GrainBatchingCoversEveryIndexExactlyOnce) {
  for (const std::size_t grain : {1u, 4u, 16u, 64u, 1000u}) {
    runtime::WorkStealingPool pool(4);
    std::vector<std::atomic<int>> hits(137);
    for (auto& h : hits) h.store(0);
    pool.for_each(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
        grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(RunnerPoolTest, GrainKnobAppliesThroughRunnerOptions) {
  ExperimentRunner runner = make_runner(4, ShardSpec{}, 8);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  runner.run(hits.size(), "grained", [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunnerPoolTest, ExceptionContractHoldsUnderGrainBatching) {
  runtime::WorkStealingPool pool(4);
  std::vector<std::atomic<int>> hits(96);
  for (auto& h : hits) h.store(0);
  try {
    pool.for_each(
        hits.size(),
        [&](std::size_t i) {
          hits[i].fetch_add(1);
          if (i == 11 || i == 70) {
            throw std::runtime_error("cell " + std::to_string(i));
          }
        },
        8);
    FAIL() << "expected the pool to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 11");
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(JsonSinkTest, SinksSurviveAThrowingSweepSection) {
  RunnerOptions options;
  options.name = "throwing";
  options.threads = 4;
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();

  SweepGrid bait;
  bait.add_spec({1, 1, 3}).repeats(2).per_cell([](SweepCell& cell) {
    if (cell.index == 1) cell.config.max_steps = -1;  // contract bait
  });
  EXPECT_THROW(runner.run(bait, "bait", {&json}), ContractViolation);

  // The failed section was closed (empty), so the sink is reusable.
  SweepGrid good;
  RunConfig proto;
  proto.max_steps = 150'000;
  good.add_spec({1, 1, 3}).prototype(proto);
  runner.run(good, "good", {&json});
  const std::string doc = json.render();
  EXPECT_NE(doc.find("\"name\": \"bait\", \"cells\": 0"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"good\", \"cells\": 1"),
            std::string::npos);
}

TEST(JsonSinkTest, GridSectionsRecordRowsAndPercentiles) {
  RunnerOptions options;
  options.name = "runner_test";
  options.threads = 2;
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();

  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 150'000;
  grid.add_spec({1, 1, 3}).repeats(2).base_seed(5).prototype(proto);
  runner.run(grid, "grid_section", {&json});
  json.section("hand_fed", 3, 0.5, {{"successes", 3.0}});
  json.annotate("mismatches", 0.0);

  const std::string doc = json.render();
  EXPECT_NE(doc.find("\"bench\": \"runner_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"shard\": \"0/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"grid_section\""), std::string::npos);
  EXPECT_NE(doc.find("\"rows\": [{\"index\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"steps_p50\""), std::string::npos);
  EXPECT_NE(doc.find("\"cell_seconds_p90\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"hand_fed\""), std::string::npos);
  EXPECT_NE(doc.find("\"mismatches\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"total_cells\": 5"), std::string::npos);
}

TEST(JsonSinkTest, GridRowsCarryTheScheduleHash) {
  RunnerOptions options;
  options.name = "hash_rows";
  options.threads = 2;
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();

  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 60'000;
  grid.add_spec({2, 2, 5})
      .add_family(ScheduleFamily::kWindowStretcher)
      .add_bound(3)
      .repeats(2)
      .base_seed(12)
      .prototype(proto);
  runner.run(grid, "grid_section", {&json});

  // Every row records the executed stream's replay hash as a 16-hex
  // string (never a JSON number: doubles corrupt 64-bit values), and
  // a real run never hashes to zero.
  const JsonValue doc = JsonValue::parse(json.render());
  const JsonValue& rows = doc.at("sections").items().at(0).at("rows");
  ASSERT_EQ(rows.items().size(), 2u);
  for (const JsonValue& row : rows.items()) {
    const std::string hash = row.at("schedule_hash").as_string();
    ASSERT_EQ(hash.size(), 16u);
    EXPECT_NE(hash, "0000000000000000");
    for (const char c : hash) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
    }
  }
}

TEST(JsonSinkTest, ReactiveLeaseDocsMergeToTheUnshardedDocument) {
  // The elastic orchestrator's merge invariant, over a reactive-family
  // grid: any lease tiling of the virtual span (here an uneven N=3
  // split, completed out of order) merges bit-identically — modulo
  // timing keys — to the unsharded document, schedule_hash rows
  // included (the hash is a row fact, not a summed or timing key).
  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 60'000;
  grid.add_spec({2, 2, 5});
  for (const auto family : reactive_families()) {
    grid.add_family(family);
  }
  grid.add_bound(3).repeats(2).base_seed(7).prototype(proto);

  const auto doc = [&grid](ShardSpec shard) {
    RunnerOptions options;
    options.name = "reactive_lease";
    options.threads = 2;
    options.shard = shard;
    ExperimentRunner runner(options);
    JsonSink json = runner.json_sink();
    runner.run(grid, "grid_section", {&json});
    return JsonValue::parse(json.render());
  };
  const auto lease = [](std::size_t lo, std::size_t hi) {
    ShardSpec shard;
    shard.leased = true;
    shard.lo = lo;
    shard.hi = hi;
    shard.span = ShardSpec::kLeaseSpan;
    return shard;
  };

  const JsonValue full = doc(ShardSpec{});
  std::vector<JsonValue> leases;
  leases.push_back(doc(lease(600'000, ShardSpec::kLeaseSpan)));
  leases.push_back(doc(lease(0, 250'000)));
  leases.push_back(doc(lease(250'000, 600'000)));
  const JsonValue merged = merge_shard_docs(leases);
  EXPECT_EQ(canonical_json(strip_timing_keys(merged)),
            canonical_json(strip_timing_keys(full)));
  EXPECT_NE(merged.dump().find("\"schedule_hash\""), std::string::npos);
}

TEST(JsonSinkTest, ShardRowsCarryGlobalIndices) {
  RunnerOptions options;
  options.name = "shard_rows";
  options.threads = 1;
  options.shard = {1, 2};  // second half
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();

  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 150'000;
  grid.add_spec({1, 1, 3}).repeats(4).base_seed(5).prototype(proto);
  runner.run(grid, "grid_section", {&json});

  const std::string doc = json.render();
  // Shard 1/2 of 4 cells covers global indices 2 and 3.
  EXPECT_NE(doc.find("\"rows\": [{\"index\": 2"), std::string::npos);
  EXPECT_NE(doc.find("{\"index\": 3"), std::string::npos);
  EXPECT_EQ(doc.find("{\"index\": 0"), std::string::npos);
}

}  // namespace
}  // namespace setlib::core
