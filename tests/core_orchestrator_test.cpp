// core::orchestrate: the multi-process shard driver. Fake "bench"
// shell scripts stand in for the real binaries so the tests can
// exercise the failure paths cheaply: a healthy fleet merges, a child
// killed mid-run is retried (and the retry recorded), a permanently
// failing shard is reported with its stderr — never silently dropped
// — and a hung child is timed out.
#include "src/core/orchestrator.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/util/json.h"

namespace setlib::core {
namespace {

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("orch_test_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes an executable /bin/sh script and returns its path.
  std::string write_script(const std::string& name,
                           const std::string& body) {
    const std::filesystem::path path = dir_ / name;
    {
      std::ofstream file(path);
      file << "#!/bin/sh\n" << body;
    }
    ::chmod(path.c_str(), 0755);
    return path.string();
  }

  /// Script prologue: extracts --shard=K/N and --json=PATH (the
  /// orchestrator appends them after the forwarded args) into
  /// $shard, $k, $out.
  std::string parse_args() const {
    return R"(for a in "$@"; do
  case "$a" in
    --shard=*) shard=${a#--shard=} ;;
    --json=*) out=${a#--json=} ;;
  esac
done
k=${shard%/*}
)";
  }

  /// Script epilogue: writes a minimal valid shard document with
  /// k+1 cells in its one hand-fed section.
  std::string write_doc() const {
    return R"(cells=$((k+1))
cat > "$out" <<EOF
{"bench": "fake", "threads": 1, "repeat": 1, "shard": "$shard",
 "sections": [{"name": "s", "cells": $cells, "wall_seconds": 0.5,
               "runs_per_sec": 0}],
 "total_cells": $cells, "total_wall_seconds": 0.5, "runs_per_sec": 0}
EOF
)";
  }

  OrchestratorOptions base_options(const std::string& bench) const {
    OrchestratorOptions options;
    options.bench = bench;
    options.shards = 3;
    options.workers = 2;
    options.retries = 0;
    options.timeout = std::chrono::seconds(60);
    options.shard_dir = (dir_ / "shards").string();
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(OrchestratorTest, HealthyFleetMergesAndShardsOutliveTheMerge) {
  const std::string bench =
      write_script("happy.sh", parse_args() + write_doc());
  OrchestratorOptions options = base_options(bench);
  options.bench_args = {"--ignored-extra-arg"};
  const OrchestrationResult result = orchestrate(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  for (const ShardRun& shard : result.shards) {
    EXPECT_EQ(shard.attempts, 1);
    EXPECT_TRUE(shard.ok);
  }
  // cells 1 + 2 + 3 across the shards.
  EXPECT_EQ(result.merged.at("total_cells").as_int(), 6);
  EXPECT_EQ(result.merged.at("shard").as_string(), "0/1");
  // orchestrate() never deletes the shard documents — they are the
  // run's only output until the caller persists the merged doc.
  // Cleanup is the explicit remove_shard_documents step.
  for (const ShardRun& shard : result.shards) {
    EXPECT_TRUE(std::filesystem::exists(shard.json_path));
  }
  remove_shard_documents(options, result);
  EXPECT_FALSE(std::filesystem::exists(options.shard_dir));
}

TEST_F(OrchestratorTest, KilledChildIsRetriedNotDropped) {
  // First attempt of every shard dies on SIGKILL; the retry succeeds.
  const std::string bench = write_script(
      "flaky.sh",
      parse_args() + "marker=\"" + dir_.string() +
          "/died_$k\"\n"
          "if [ ! -e \"$marker\" ]; then : > \"$marker\"; kill -9 $$; fi\n" +
          write_doc());
  OrchestratorOptions options = base_options(bench);
  options.retries = 1;
  const OrchestrationResult result = orchestrate(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  for (const ShardRun& shard : result.shards) {
    EXPECT_EQ(shard.attempts, 2);  // the crash is recorded, then retried
    EXPECT_TRUE(shard.ok);
  }
  EXPECT_EQ(result.merged.at("total_cells").as_int(), 6);
}

TEST_F(OrchestratorTest, PermanentFailureIsReportedWithStderr) {
  const std::string bench =
      write_script("broken.sh", "echo boom >&2\nexit 3\n");
  OrchestratorOptions options = base_options(bench);
  options.retries = 1;
  const OrchestrationResult result = orchestrate(options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.merged.is_null());  // no silently incomplete merge
  for (const ShardRun& shard : result.shards) {
    EXPECT_FALSE(shard.ok);
    EXPECT_EQ(shard.attempts, 2);
    EXPECT_EQ(shard.error, "exit 3");
    EXPECT_NE(shard.last.err.find("boom"), std::string::npos);
  }
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("FAILED"), std::string::npos);
  EXPECT_NE(summary.find("boom"), std::string::npos);
}

TEST_F(OrchestratorTest, SilentWorkerWithoutDocumentIsAFailure) {
  const std::string bench = write_script("silent.sh", "exit 0\n");
  const OrchestrationResult result = orchestrate(base_options(bench));
  EXPECT_FALSE(result.ok());
  for (const ShardRun& shard : result.shards) {
    EXPECT_FALSE(shard.ok);
    EXPECT_NE(shard.error.find("wrote no"), std::string::npos);
  }
}

TEST_F(OrchestratorTest, UnparsableDocumentIsAFailure) {
  const std::string bench = write_script(
      "garbage.sh", parse_args() + "echo 'not json' > \"$out\"\n");
  const OrchestrationResult result = orchestrate(base_options(bench));
  EXPECT_FALSE(result.ok());
  for (const ShardRun& shard : result.shards) {
    EXPECT_NE(shard.error.find("unparsable"), std::string::npos);
  }
}

TEST_F(OrchestratorTest, HungChildIsTimedOut) {
  const std::string bench = write_script("hang.sh", "sleep 60\n");
  OrchestratorOptions options = base_options(bench);
  options.timeout = std::chrono::milliseconds(300);
  const auto start = std::chrono::steady_clock::now();
  const OrchestrationResult result = orchestrate(options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(result.ok());
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  for (const ShardRun& shard : result.shards) {
    EXPECT_TRUE(shard.last.timed_out);
    EXPECT_NE(shard.error.find("timed out"), std::string::npos);
  }
}

TEST_F(OrchestratorTest, KeepShardsPreservesTheShardDocuments) {
  const std::string bench =
      write_script("happy.sh", parse_args() + write_doc());
  OrchestratorOptions options = base_options(bench);
  options.keep_shards = true;
  const OrchestrationResult result = orchestrate(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  for (int k = 0; k < options.shards; ++k) {
    EXPECT_TRUE(std::filesystem::exists(
        options.shard_dir + "/shard_" + std::to_string(k) + ".json"));
  }
}

}  // namespace
}  // namespace setlib::core
