// core::orchestrate and core::orchestrate_elastic: the multi-process
// drivers. Fake "bench" shell scripts stand in for the real binaries
// so the tests can exercise the failure paths cheaply: a healthy
// fleet merges, a child killed mid-run is retried (static) or its
// lease resharded (elastic), a permanently failing worker is reported
// with its stderr — never silently dropped — and a hung child is
// timed out. The elastic chaos tests SIGKILL random workers and
// assert the merged document stays bit-identical to the unsharded
// reference anyway.
#include "src/core/orchestrator.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/report.h"
#include "src/runtime/transport.h"
#include "src/util/json.h"

namespace setlib::core {
namespace {

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("orch_test_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes an executable /bin/sh script and returns its path.
  std::string write_script(const std::string& name,
                           const std::string& body) {
    const std::filesystem::path path = dir_ / name;
    {
      std::ofstream file(path);
      file << "#!/bin/sh\n" << body;
    }
    ::chmod(path.c_str(), 0755);
    return path.string();
  }

  /// Script prologue: extracts --shard=K/N and --json=PATH (the
  /// orchestrator appends them after the forwarded args) into
  /// $shard, $k, $out.
  std::string parse_args() const {
    return R"(for a in "$@"; do
  case "$a" in
    --shard=*) shard=${a#--shard=} ;;
    --json=*) out=${a#--json=} ;;
  esac
done
k=${shard%/*}
)";
  }

  /// Script epilogue: writes a minimal valid shard document with
  /// k+1 cells in its one hand-fed section.
  std::string write_doc() const {
    return R"(cells=$((k+1))
cat > "$out" <<EOF
{"bench": "fake", "threads": 1, "repeat": 1, "shard": "$shard",
 "sections": [{"name": "s", "cells": $cells, "wall_seconds": 0.5,
               "runs_per_sec": 0}],
 "total_cells": $cells, "total_wall_seconds": 0.5, "runs_per_sec": 0}
EOF
)";
  }

  OrchestratorOptions base_options(const std::string& bench) const {
    OrchestratorOptions options;
    options.bench = bench;
    options.shards = 3;
    options.workers = 2;
    options.retries = 0;
    options.timeout = std::chrono::seconds(60);
    options.shard_dir = (dir_ / "shards").string();
    options.backoff.base = std::chrono::milliseconds(1);
    return options;
  }

  /// Script prologue for elastic workers: extracts --cells=LO..HI and
  /// --json=PATH into $lease, $lo, $hi, $out.
  std::string parse_cells() const {
    return R"(for a in "$@"; do
  case "$a" in
    --cells=*) lease=${a#--cells=} ;;
    --json=*) out=${a#--json=} ;;
  esac
done
lo=${lease%%..*}
hi=${lease##*..}
)";
  }

  /// Script epilogue: maps the virtual lease onto a 32-cell space with
  /// the same floor arithmetic ShardSpec::range uses, and writes the
  /// lease document for that slice. Cells across a tiling of the
  /// virtual span always sum to 32.
  std::string write_lease_doc() const {
    return R"(T=32
SPAN=1048576
rlo=$((T*lo/SPAN))
rhi=$((T*hi/SPAN))
cells=$((rhi-rlo))
cat > "$out" <<EOF
{"bench": "fake", "threads": 1, "repeat": 1, "shard": "$lease/$SPAN",
 "sections": [{"name": "s", "cells": $cells, "wall_seconds": 0.5,
               "runs_per_sec": 0}],
 "total_cells": $cells, "total_wall_seconds": 0.5, "runs_per_sec": 0}
EOF
)";
  }

  ElasticOrchestratorOptions elastic_options(
      const std::string& bench) const {
    ElasticOrchestratorOptions options;
    options.bench = bench;
    options.workers = 2;
    options.ranges = 4;
    options.lease_timeout = std::chrono::seconds(60);
    options.shard_dir = (dir_ / "leases").string();
    options.backoff.base = std::chrono::milliseconds(1);
    return options;
  }

  /// The unsharded reference: one whole-span run of the fake bench,
  /// normalized through the same merge the orchestrator uses.
  JsonValue reference_doc(const std::string& bench) {
    runtime::LocalExecTransport local;
    runtime::TransportCommand command;
    const std::string path = (dir_ / "reference.json").string();
    command.argv = {bench, "--cells=0..1048576", "--json=" + path};
    const runtime::SubprocessResult result = local.run(command);
    EXPECT_TRUE(result.ok()) << result.describe();
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return merge_shard_docs({JsonValue::parse(buffer.str())});
  }

  /// Bit-identical modulo timing keys — the determinism contract.
  static void expect_merge_matches(const JsonValue& merged,
                                   const JsonValue& reference) {
    EXPECT_EQ(canonical_json(strip_timing_keys(merged)),
              canonical_json(strip_timing_keys(reference)));
  }

  std::filesystem::path dir_;
};

TEST_F(OrchestratorTest, HealthyFleetMergesAndShardsOutliveTheMerge) {
  const std::string bench =
      write_script("happy.sh", parse_args() + write_doc());
  OrchestratorOptions options = base_options(bench);
  options.bench_args = {"--ignored-extra-arg"};
  const OrchestrationResult result = orchestrate(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  for (const ShardRun& shard : result.shards) {
    EXPECT_EQ(shard.attempts, 1);
    EXPECT_TRUE(shard.ok);
  }
  // cells 1 + 2 + 3 across the shards.
  EXPECT_EQ(result.merged.at("total_cells").as_int(), 6);
  EXPECT_EQ(result.merged.at("shard").as_string(), "0/1");
  // orchestrate() never deletes the shard documents — they are the
  // run's only output until the caller persists the merged doc.
  // Cleanup is the explicit remove_shard_documents step.
  for (const ShardRun& shard : result.shards) {
    EXPECT_TRUE(std::filesystem::exists(shard.json_path));
  }
  remove_shard_documents(options, result);
  EXPECT_FALSE(std::filesystem::exists(options.shard_dir));
}

TEST_F(OrchestratorTest, KilledChildIsRetriedNotDropped) {
  // First attempt of every shard dies on SIGKILL; the retry succeeds.
  const std::string bench = write_script(
      "flaky.sh",
      parse_args() + "marker=\"" + dir_.string() +
          "/died_$k\"\n"
          "if [ ! -e \"$marker\" ]; then : > \"$marker\"; kill -9 $$; fi\n" +
          write_doc());
  OrchestratorOptions options = base_options(bench);
  options.retries = 1;
  const OrchestrationResult result = orchestrate(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  for (const ShardRun& shard : result.shards) {
    EXPECT_EQ(shard.attempts, 2);  // the crash is recorded, then retried
    EXPECT_TRUE(shard.ok);
  }
  EXPECT_EQ(result.merged.at("total_cells").as_int(), 6);
}

TEST_F(OrchestratorTest, PermanentFailureIsReportedWithStderr) {
  const std::string bench =
      write_script("broken.sh", "echo boom >&2\nexit 3\n");
  OrchestratorOptions options = base_options(bench);
  options.retries = 1;
  const OrchestrationResult result = orchestrate(options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.merged.is_null());  // no silently incomplete merge
  for (const ShardRun& shard : result.shards) {
    EXPECT_FALSE(shard.ok);
    EXPECT_EQ(shard.attempts, 2);
    // The failure report names the losing attempt.
    EXPECT_EQ(shard.error, "attempt 2/2: exit 3");
    EXPECT_NE(shard.last.err.find("boom"), std::string::npos);
  }
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("FAILED"), std::string::npos);
  EXPECT_NE(summary.find("boom"), std::string::npos);
}

TEST_F(OrchestratorTest, SilentWorkerWithoutDocumentIsAFailure) {
  const std::string bench = write_script("silent.sh", "exit 0\n");
  const OrchestrationResult result = orchestrate(base_options(bench));
  EXPECT_FALSE(result.ok());
  for (const ShardRun& shard : result.shards) {
    EXPECT_FALSE(shard.ok);
    EXPECT_NE(shard.error.find("wrote no"), std::string::npos);
  }
}

TEST_F(OrchestratorTest, UnparsableDocumentIsAFailure) {
  const std::string bench = write_script(
      "garbage.sh", parse_args() + "echo 'not json' > \"$out\"\n");
  const OrchestrationResult result = orchestrate(base_options(bench));
  EXPECT_FALSE(result.ok());
  for (const ShardRun& shard : result.shards) {
    EXPECT_NE(shard.error.find("unparsable"), std::string::npos);
  }
}

TEST_F(OrchestratorTest, HungChildIsTimedOut) {
  const std::string bench = write_script("hang.sh", "sleep 60\n");
  OrchestratorOptions options = base_options(bench);
  options.timeout = std::chrono::milliseconds(300);
  const auto start = std::chrono::steady_clock::now();
  const OrchestrationResult result = orchestrate(options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(result.ok());
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  for (const ShardRun& shard : result.shards) {
    EXPECT_TRUE(shard.last.timed_out);
    EXPECT_NE(shard.error.find("timed out"), std::string::npos);
  }
}

TEST_F(OrchestratorTest, BackoffDelayIsDeterministicAndBounded) {
  BackoffOptions options;
  options.base = std::chrono::milliseconds(200);
  options.cap = std::chrono::milliseconds(5'000);
  // Pure function of (seed, stream, attempt).
  EXPECT_EQ(backoff_delay(options, 3, 2), backoff_delay(options, 3, 2));
  // The first try never waits.
  EXPECT_EQ(backoff_delay(options, 0, 0).count(), 0);
  // Attempt 1: jittered [base/2, base].
  const auto first = backoff_delay(options, 1, 1);
  EXPECT_GE(first.count(), 100);
  EXPECT_LE(first.count(), 200);
  // Attempt 2 doubles the nominal delay: [base, 2*base].
  const auto second = backoff_delay(options, 1, 2);
  EXPECT_GE(second.count(), 200);
  EXPECT_LE(second.count(), 400);
  // Deep attempts saturate at the cap.
  EXPECT_LE(backoff_delay(options, 1, 40).count(), 5'000);
  EXPECT_GE(backoff_delay(options, 1, 40).count(), 2'500);
  // Streams de-synchronize: different shards draw different jitter.
  BackoffOptions wide;
  wide.base = std::chrono::milliseconds(1 << 20);
  wide.cap = std::chrono::milliseconds(1 << 30);
  EXPECT_NE(backoff_delay(wide, 0, 1), backoff_delay(wide, 1, 1));
  // Disabled backoff (base 0) never sleeps.
  BackoffOptions off;
  off.base = std::chrono::milliseconds(0);
  EXPECT_EQ(backoff_delay(off, 1, 5).count(), 0);
}

TEST_F(OrchestratorTest, KeepShardsPreservesTheShardDocuments) {
  const std::string bench =
      write_script("happy.sh", parse_args() + write_doc());
  OrchestratorOptions options = base_options(bench);
  options.keep_shards = true;
  const OrchestrationResult result = orchestrate(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  for (int k = 0; k < options.shards; ++k) {
    EXPECT_TRUE(std::filesystem::exists(
        options.shard_dir + "/shard_" + std::to_string(k) + ".json"));
  }
}

// ---------------------------------------------------------------------
// The elastic work-queue orchestrator.

TEST_F(OrchestratorTest, ElasticHealthyFleetMergesBitIdentical) {
  const std::string bench =
      write_script("happy.sh", parse_cells() + write_lease_doc());
  ElasticOrchestratorOptions options = elastic_options(bench);
  const ElasticResult result = orchestrate_elastic(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.queue.leases_issued, 4u);
  EXPECT_EQ(result.queue.leases_completed, 4u);
  EXPECT_EQ(result.queue.leases_failed, 0u);
  EXPECT_EQ(result.merged.at("total_cells").as_int(), 32);
  EXPECT_EQ(result.merged.at("shard").as_string(), "0/1");
  // The scheduler's accounting rides in the merged document, under a
  // timing key.
  const JsonValue& orch = result.merged.at("orchestration");
  EXPECT_EQ(orch.at("leases_completed").as_int(), 4);
  EXPECT_EQ(orch.at("transport").as_string(), "local");
  EXPECT_TRUE(is_timing_key("orchestration"));
  expect_merge_matches(result.merged, reference_doc(bench));
  // Lease documents outlive the merge until explicitly removed.
  for (const LeaseRun& run : result.leases) {
    EXPECT_TRUE(std::filesystem::exists(run.json_path));
  }
  remove_lease_documents(options, result);
  EXPECT_FALSE(std::filesystem::exists(options.shard_dir));
}

TEST_F(OrchestratorTest, ElasticRandomKillsReshardAndMergeBitIdentical) {
  // The first three invocations each grab a kill token (mkdir is the
  // atomic test-and-set) and SIGKILL themselves mid-run; the reshards
  // redistribute their leases across the survivors.
  const std::string bench = write_script(
      "chaos.sh",
      parse_cells() + "for n in 1 2 3; do\n  if mkdir \"" +
          dir_.string() +
          "/kill_$n\" 2>/dev/null; then kill -9 $$; fi\ndone\n" +
          write_lease_doc());
  ElasticOrchestratorOptions options = elastic_options(bench);
  options.workers = 3;
  options.ranges = 6;
  const ElasticResult result = orchestrate_elastic(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.queue.leases_failed, 3u);
  EXPECT_GE(result.queue.leases_resharded, 1u);
  EXPECT_EQ(result.merged.at("total_cells").as_int(), 32);
  // All kill tokens are spent, so the reference run is clean.
  expect_merge_matches(result.merged, reference_doc(bench));
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("signal 9"), std::string::npos);
}

TEST_F(OrchestratorTest, ElasticChaosTransportKillForcesReshard) {
  // The transport decorator murders the first launch as it starts;
  // the sleep keeps the victim alive long enough to be caught.
  const std::string bench = write_script(
      "slow_start.sh", parse_cells() + "sleep 0.2\n" + write_lease_doc());
  ElasticOrchestratorOptions options = elastic_options(bench);
  runtime::LocalExecTransport local;
  runtime::ChaosKillTransport chaos(local, 1,
                                    std::chrono::milliseconds(0));
  options.transport = &chaos;
  const ElasticResult result = orchestrate_elastic(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(chaos.kills(), 1);
  EXPECT_GE(result.queue.leases_failed, 1u);
  EXPECT_GE(result.queue.leases_resharded, 1u);
  EXPECT_EQ(result.merged.at("orchestration").at("transport").as_string(),
            "local+chaos-kill");
  expect_merge_matches(result.merged, reference_doc(bench));
}

TEST_F(OrchestratorTest, ElasticStragglerIsSupersededAndDiscarded) {
  // The first invocation grabs the "slow" token and sleeps; everyone
  // else is instant. The idle worker supersedes the straggler, whose
  // own (eventually successful) completion must be discarded — not
  // double-counted.
  const std::string bench = write_script(
      "straggler.sh",
      parse_cells() + "if mkdir \"" + dir_.string() +
          "/slow\" 2>/dev/null; then sleep 1; fi\n" + write_lease_doc());
  ElasticOrchestratorOptions options = elastic_options(bench);
  options.ranges = 2;
  options.straggler_factor = 2.0;
  options.straggler_min = std::chrono::milliseconds(50);
  const ElasticResult result = orchestrate_elastic(options);
  ASSERT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.queue.leases_superseded, 1u);
  EXPECT_GE(result.queue.leases_resharded, 1u);
  EXPECT_EQ(result.queue.completions_discarded, 1u);
  // A straggler is slow, not broken: no failure budget spent.
  EXPECT_EQ(result.queue.failures_spent, 0u);
  EXPECT_EQ(result.merged.at("total_cells").as_int(), 32);
  expect_merge_matches(result.merged, reference_doc(bench));
}

TEST_F(OrchestratorTest, ElasticFailureBudgetAbortsThePoisonedRun) {
  const std::string bench =
      write_script("broken.sh", "echo doomed >&2\nexit 3\n");
  ElasticOrchestratorOptions options = elastic_options(bench);
  options.failure_budget = 2;
  const ElasticResult result = orchestrate_elastic(options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.merged.is_null());  // never silently incomplete
  EXPECT_NE(result.queue.abort_reason.find("failure budget"),
            std::string::npos);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("ABORTED"), std::string::npos);
  EXPECT_NE(summary.find("doomed"), std::string::npos);
}

}  // namespace
}  // namespace setlib::core
