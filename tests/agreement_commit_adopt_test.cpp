#include "src/agreement/commit_adopt.h"

#include <gtest/gtest.h>

#include <optional>

#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::agreement {
namespace {

struct Rig {
  shm::SimMemory mem;
  std::unique_ptr<CommitAdopt> ca;
  std::unique_ptr<shm::Simulator> sim;
  std::vector<CommitAdopt::Outcome> outs;

  Rig(int n, const std::vector<std::int64_t>& proposals) {
    ca = std::make_unique<CommitAdopt>(mem, n, "ca");
    sim = std::make_unique<shm::Simulator>(mem, n);
    outs.resize(static_cast<std::size_t>(n));
    for (Pid p = 0; p < n; ++p) {
      sim->process(p).add_task(
          ca->propose(p, proposals[static_cast<std::size_t>(p)],
                      &outs[static_cast<std::size_t>(p)]),
          "ca");
    }
  }

  bool all_done() const {
    for (const auto& o : outs) {
      if (!o.done) return false;
    }
    return true;
  }
};

TEST(CommitAdoptTest, UnanimousProposalsCommit) {
  Rig rig(4, {7, 7, 7, 7});
  sched::RoundRobinGenerator gen(4);
  rig.sim->run(gen, 10'000);
  ASSERT_TRUE(rig.all_done());
  for (const auto& o : rig.outs) {
    EXPECT_TRUE(o.committed);
    EXPECT_EQ(o.value, 7);
  }
}

TEST(CommitAdoptTest, WaitFreeOpCount) {
  // propose is 2 writes + 2n reads per process: a strict bound on the
  // steps each process needs.
  const int n = 5;
  Rig rig(n, {1, 1, 1, 1, 1});
  sched::RoundRobinGenerator gen(n);
  rig.sim->run(gen, n * (2 + 2 * n));
  EXPECT_TRUE(rig.all_done());
}

TEST(CommitAdoptTest, SoloProposerCommitsOwnValue) {
  Rig rig(3, {9, 5, 5});
  // Only process 0 runs: it sees only its own value and must commit it.
  for (int s = 0; s < 2 + 6; ++s) rig.sim->step_once(0);
  ASSERT_TRUE(rig.outs[0].done);
  EXPECT_TRUE(rig.outs[0].committed);
  EXPECT_EQ(rig.outs[0].value, 9);
}

class CommitAdoptSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommitAdoptSweep, AgreementUnderRandomSchedules) {
  // Key property: if anyone commits w, every completed propose returned
  // w (commit or adopt); and every returned value is some proposal.
  const int n = 5;
  const std::vector<std::int64_t> proposals{10, 20, 20, 30, 40};
  Rig rig(n, proposals);
  sched::UniformRandomGenerator gen(n, GetParam());
  rig.sim->run(gen, 50'000);
  ASSERT_TRUE(rig.all_done());

  std::optional<std::int64_t> committed;
  for (const auto& o : rig.outs) {
    EXPECT_NE(std::find(proposals.begin(), proposals.end(), o.value),
              proposals.end())
        << "validity violated: " << o.value;
    if (o.committed) {
      if (committed.has_value()) {
        EXPECT_EQ(*committed, o.value) << "two different commits";
      }
      committed = o.value;
    }
  }
  if (committed.has_value()) {
    for (const auto& o : rig.outs) {
      EXPECT_EQ(o.value, *committed)
          << "adopted value differs from the committed one";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommitAdoptSweep,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(CommitAdoptTest, PartialParticipationIsSafe) {
  // Processes 3 and 4 never run; the others still return, and the
  // commit/adopt properties hold among them.
  const int n = 5;
  Rig rig(n, {1, 2, 3, 4, 5});
  sched::WeightedRandomGenerator gen({1, 1, 1, 0, 0}, 17);
  rig.sim->run(gen, 30'000);
  for (Pid p = 0; p < 3; ++p) EXPECT_TRUE(rig.outs[p].done);
  for (Pid p = 3; p < 5; ++p) EXPECT_FALSE(rig.outs[p].done);
}

}  // namespace
}  // namespace setlib::agreement
