// The serving harness determinism contract: closed-loop aggregate
// stats are bit-identical at any thread count and across shard merges,
// backpressure sheds exactly what the bounded queue cannot hold,
// batching never changes what gets decided (B=1 and B=64 produce the
// same request -> decision map), and the SLO percentile math matches a
// reference nearest-rank sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/core/loadgen.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/service.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace setlib::core {
namespace {

ServiceConfig small_config() {
  ServiceConfig config;
  config.requests = 2000;
  config.seed = 11;
  return config;
}

/// Runs the closed loop under the given runner options and returns the
/// (report, rendered JSON document) pair.
std::pair<ClosedLoopReport, JsonValue> serve(const ServiceConfig& config,
                                             RunnerOptions options) {
  options.name = "serving_test";
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();
  const ServiceHarness harness(config);
  ClosedLoopReport report = harness.run_closed_loop(runner, {}, &json);
  return {std::move(report), JsonValue::parse(json.render())};
}

/// Canonical form for determinism diffs: timing keys stripped, the
/// document-level thread count (the one legitimately varying field)
/// neutralized.
std::string comparable(JsonValue doc) {
  doc.set("threads", JsonValue::of(std::int64_t{0}));
  return canonical_json(strip_timing_keys(doc));
}

TEST(ServiceHarnessTest, ClosedLoopStatsAreThreadCountInvariant) {
  const ServiceConfig config = small_config();
  RunnerOptions one;
  one.threads = 1;
  RunnerOptions eight;
  eight.threads = 8;
  const auto [report1, doc1] = serve(config, one);
  const auto [report8, doc8] = serve(config, eight);

  EXPECT_EQ(comparable(doc1), comparable(doc8));
  EXPECT_EQ(report1.decisions, report8.decisions);
  EXPECT_EQ(report1.shard_requests, report8.shard_requests);
  EXPECT_EQ(report1.shard_decided_ok, report8.shard_decided_ok);
  EXPECT_EQ(report1.plan.slo.p99, report8.plan.slo.p99);
  EXPECT_GT(report1.shard_requests, 0);
}

TEST(ServiceHarnessTest, ShardMergeReproducesTheUnshardedDocument) {
  const ServiceConfig config = small_config();
  RunnerOptions full_options;
  full_options.threads = 2;
  const auto [full_report, full_doc] = serve(config, full_options);

  std::vector<JsonValue> shard_docs;
  std::vector<std::pair<std::int64_t, std::int64_t>> shard_decisions;
  std::int64_t shard_requests = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    RunnerOptions options;
    options.threads = 2;
    options.shard = {k, 3};
    auto [report, doc] = serve(config, options);
    shard_docs.push_back(std::move(doc));
    shard_decisions.insert(shard_decisions.end(),
                           report.decisions.begin(),
                           report.decisions.end());
    shard_requests += report.shard_requests;
  }

  const JsonValue merged = merge_shard_docs(shard_docs);
  EXPECT_EQ(comparable(merged), comparable(full_doc));
  // Shards are contiguous slices of the batch space, so concatenating
  // their decision streams reproduces the unsharded stream.
  EXPECT_EQ(shard_decisions, full_report.decisions);
  EXPECT_EQ(shard_requests, full_report.shard_requests);
}

TEST(ServiceHarnessTest, TinyQueueCapShedsAndAccountsEveryRequest) {
  ServiceConfig config;
  config.requests = 100;
  config.queue_cap = 4;
  config.mean_interarrival_ticks = 0;  // everything arrives at tick 0
  const ServiceHarness harness(config);
  const AdmissionPlan plan = harness.plan();

  EXPECT_EQ(plan.offered, 100);
  EXPECT_EQ(plan.accepted + plan.shed, plan.offered);
  EXPECT_EQ(plan.accepted, 4);  // the queue never exceeds its cap
  EXPECT_EQ(plan.shed, 96);
  EXPECT_LE(plan.queue_depth_max, config.queue_cap);
  EXPECT_EQ(static_cast<std::int64_t>(plan.latency_ticks.size()),
            plan.accepted);
  EXPECT_EQ(static_cast<std::int64_t>(plan.admitted.size()),
            plan.accepted);
}

TEST(ServiceHarnessTest, GenerousQueueShedsNothing) {
  const ServiceConfig config = small_config();
  const ServiceHarness harness(config);
  const AdmissionPlan plan = harness.plan();
  EXPECT_EQ(plan.shed, 0);
  EXPECT_EQ(plan.accepted, config.requests);
  std::int64_t covered = 0;
  for (const AdmissionPlan::Batch& batch : plan.batches) {
    EXPECT_GE(batch.size, 1);
    EXPECT_LE(batch.size, config.batch);
    EXPECT_EQ(batch.first_admitted, static_cast<std::size_t>(covered));
    covered += batch.size;
  }
  EXPECT_EQ(covered, plan.accepted);
}

TEST(ServiceHarnessTest, BatchingDoesNotChangeDecisions) {
  ServiceConfig narrow = small_config();
  narrow.requests = 400;
  narrow.batch = 1;
  ServiceConfig wide = narrow;
  wide.batch = 64;

  RunnerOptions options;
  options.threads = 2;
  const auto [narrow_report, narrow_doc] = serve(narrow, options);
  const auto [wide_report, wide_doc] = serve(wide, options);

  // Nothing shed in either run, so both decide the same request set.
  ASSERT_EQ(narrow_report.plan.shed, 0);
  ASSERT_EQ(wide_report.plan.shed, 0);

  auto by_id = [](std::vector<std::pair<std::int64_t, std::int64_t>> d) {
    std::sort(d.begin(), d.end());
    return d;
  };
  EXPECT_EQ(by_id(narrow_report.decisions), by_id(wide_report.decisions));

  // And every decision is the client's own command: validity pins the
  // outcome because every replica proposes the request's command.
  const LoadGen gen(
      LoadGenConfig{narrow.requests, narrow.seed,
                    narrow.mean_interarrival_ticks});
  for (const auto& [id, decided] : wide_report.decisions) {
    EXPECT_EQ(decided, gen.command(id)) << "request " << id;
  }
  EXPECT_EQ(wide_report.shard_decided_ok, narrow.requests);
}

TEST(SloReportTest, PercentilesMatchAReferenceNearestRankSort) {
  Rng rng(99);
  std::vector<std::int64_t> latencies;
  for (int i = 0; i < 1237; ++i) latencies.push_back(rng.next_in(0, 5000));

  std::vector<std::int64_t> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const auto reference = [&](double q) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
    return static_cast<double>(
        sorted[std::clamp<std::size_t>(rank, 1, sorted.size()) - 1]);
  };

  EXPECT_EQ(latency_percentile(latencies, 50.0), reference(50.0));
  EXPECT_EQ(latency_percentile(latencies, 99.0), reference(99.0));
  EXPECT_EQ(latency_percentile(latencies, 99.9), reference(99.9));
  EXPECT_EQ(latency_percentile(latencies, 100.0),
            static_cast<double>(sorted.back()));
  EXPECT_EQ(latency_percentile(latencies, 0.0),
            static_cast<double>(sorted.front()));

  const SloReport slo = compute_slo(latencies, 2500, 0.9);
  EXPECT_EQ(slo.samples, 1237);
  EXPECT_EQ(slo.p50, reference(50.0));
  EXPECT_EQ(slo.p99, reference(99.0));
  EXPECT_EQ(slo.p999, reference(99.9));
  EXPECT_EQ(slo.max, static_cast<double>(sorted.back()));
  std::int64_t violations = 0;
  for (const std::int64_t latency : latencies) {
    if (latency > 2500) ++violations;
  }
  EXPECT_EQ(slo.violations, violations);
  EXPECT_DOUBLE_EQ(slo.violation_rate,
                   static_cast<double>(violations) / 1237.0);
  EXPECT_DOUBLE_EQ(slo.error_budget_burn, slo.violation_rate / 0.1);
}

TEST(SloReportTest, EmptySampleSetIsNullNotCrash) {
  const SloReport slo = compute_slo({}, 100, 0.999);
  EXPECT_EQ(slo.samples, 0);
  EXPECT_TRUE(std::isnan(slo.p50));
  EXPECT_TRUE(std::isnan(slo.max));
  EXPECT_EQ(slo.violations, 0);
  EXPECT_EQ(slo.error_budget_burn, 0.0);
}

TEST(LoadGenTest, StreamIsDeterministicAndCausallyOrdered) {
  const LoadGenConfig config{500, 77, 8};
  const LoadGen gen(config);
  const std::vector<Request> a = gen.arrivals();
  const std::vector<Request> b = gen.arrivals();
  ASSERT_EQ(a.size(), 500u);
  std::int64_t last = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    EXPECT_EQ(a[i].command, b[i].command);
    EXPECT_EQ(a[i].arrival_tick, b[i].arrival_tick);
    EXPECT_GE(a[i].arrival_tick, last);
    last = a[i].arrival_tick;
    // command(id) is stateless: it matches the materialized stream.
    EXPECT_EQ(gen.command(a[i].id), a[i].command);
  }
}

TEST(ServiceConfigTest, ValidateRejectsNonsense) {
  ServiceConfig config = small_config();
  config.batch = 0;
  EXPECT_ANY_THROW(config.validate());
  config = small_config();
  config.queue_cap = 0;
  EXPECT_ANY_THROW(config.validate());
  config = small_config();
  config.slo_target = 1.0;
  EXPECT_ANY_THROW(config.validate());
  config = small_config();
  config.spec = {1, 2, 4};  // k > t: no detector path to serve with
  EXPECT_ANY_THROW(config.validate());
}

}  // namespace
}  // namespace setlib::core
