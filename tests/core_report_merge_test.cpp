// The shard-document merge behind the multi-process orchestrator:
// merging the N --shard=K/N JSON documents must reproduce the
// unsharded document bit-identically modulo timing keys, for grid and
// hand-fed sections alike; inconsistent inputs must throw MergeError,
// never produce a silently incomplete document. Also pins the
// JsonSink emission contract the merge depends on (escaping,
// non-finite -> null, schema-consistent percentile keys).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/sweep.h"
#include "src/util/json.h"

namespace setlib::core {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 150'000;
  grid.add_spec({1, 1, 3})
      .add_bound(2)
      .add_bound(3)
      .repeats(3)
      .base_seed(17)
      .prototype(proto);
  return grid;  // 6 cells
}

/// Renders the document a bench invoked with --shard=k/n would write:
/// one grid section plus one hand-fed section with a summed and an
/// invariant annotation.
JsonValue bench_doc(std::size_t k, std::size_t n) {
  RunnerOptions options;
  options.name = "merge_test";
  options.threads = 2;
  options.shard = {k, n};
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();

  runner.run(small_grid(), "grid_section", {&json});

  const auto [begin, end] = runner.shard_range(10);
  json.section("hand_fed", end - begin, 0.25,
               {{"successes", static_cast<double>(end - begin)}});
  json.annotate("mismatches", k == 0 ? 1.0 : 0.0);  // shard-local count
  json.annotate("invariant_fact", 7.0, MergeRule::kSame);
  return JsonValue::parse(json.render());
}

/// The same bench document for a --cells=LO..HI[/SPAN] lease worker.
JsonValue bench_lease_doc(std::size_t lo, std::size_t hi,
                          std::size_t span = ShardSpec::kLeaseSpan) {
  RunnerOptions options;
  options.name = "merge_test";
  options.threads = 2;
  options.shard.leased = true;
  options.shard.lo = lo;
  options.shard.hi = hi;
  options.shard.span = span;
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();

  runner.run(small_grid(), "grid_section", {&json});

  const auto [begin, end] = runner.shard_range(10);
  json.section("hand_fed", end - begin, 0.25,
               {{"successes", static_cast<double>(end - begin)}});
  json.annotate("mismatches",
                lo == 0 ? 1.0 : 0.0);  // lease-local count
  json.annotate("invariant_fact", 7.0, MergeRule::kSame);
  return JsonValue::parse(json.render());
}

std::string comparable(const JsonValue& doc) {
  return canonical_json(strip_timing_keys(doc));
}

TEST(MergeShardDocsTest, OneTwoAndThreeWayMergesMatchTheUnshardedDoc) {
  const JsonValue full = bench_doc(0, 1);
  for (const std::size_t n : {1u, 2u, 3u}) {
    std::vector<JsonValue> shards;
    for (std::size_t k = 0; k < n; ++k) shards.push_back(bench_doc(k, n));
    const JsonValue merged = merge_shard_docs(shards);
    EXPECT_EQ(comparable(merged), comparable(full))
        << "merge of " << n << " shards diverged";
    EXPECT_EQ(merged.at("shard").as_string(), "0/1");
  }
}

TEST(MergeShardDocsTest, ShardInputOrderDoesNotMatter) {
  const JsonValue full = bench_doc(0, 1);
  std::vector<JsonValue> shards;
  for (const std::size_t k : {2u, 0u, 1u}) {
    shards.push_back(bench_doc(k, 3));
  }
  EXPECT_EQ(comparable(merge_shard_docs(shards)), comparable(full));
}

TEST(MergeShardDocsTest, EmptyShardsMergeCleanly) {
  // 6 cells over 8 shards: several shards run zero cells, yet their
  // sections must carry the same keys and the merge must still equal
  // the unsharded run.
  const JsonValue full = bench_doc(0, 1);
  std::vector<JsonValue> shards;
  for (std::size_t k = 0; k < 8; ++k) shards.push_back(bench_doc(k, 8));
  EXPECT_EQ(comparable(merge_shard_docs(shards)), comparable(full));
}

TEST(MergeShardDocsTest, CiKeysAreRecomputedFromTheUnionRows) {
  // The multi-seed dispersion keys are rows-derived grid stats: the
  // merge must recompute them from the union (matching the unsharded
  // values bitwise), never sum them like plain annotations or drop
  // them like timing keys.
  const JsonValue full = bench_doc(0, 1);
  std::vector<JsonValue> shards;
  for (std::size_t k = 0; k < 3; ++k) shards.push_back(bench_doc(k, 3));
  const JsonValue merged = merge_shard_docs(shards);
  const JsonValue& got = merged.at("sections").items().at(0);
  const JsonValue& want = full.at("sections").items().at(0);
  for (const char* key :
       {"steps_mean", "steps_stddev", "ci_steps_low", "ci_steps_high",
        "witness_bound_mean", "witness_bound_stddev",
        "ci_witness_bound_low", "ci_witness_bound_high", "success_rate",
        "ci_success_low", "ci_success_high"}) {
    ASSERT_NE(got.find(key), nullptr) << key;
    ASSERT_TRUE(got.at(key).is_number()) << key;
    // Rendered-literal equality: the unsharded document's value went
    // through json_number formatting; the merged value must emit the
    // identical literal (that is the bit-identity the orchestrator's
    // canonical diff checks).
    EXPECT_EQ(got.at(key).dump(), want.at(key).dump()) << key;
  }
  // The grid varies bounds and seeds, so the witness-bound interval
  // has real width.
  EXPECT_LT(got.at("ci_witness_bound_low").as_double(),
            got.at("ci_witness_bound_high").as_double());

  // The per-point breakdown: 6 cells at repeat factor 3 = 2 grid
  // points, each recomputed from the union rows (rendered-literal
  // identical to the unsharded run's array).
  EXPECT_EQ(got.at("repeat_factor").as_int(), 3);
  ASSERT_EQ(got.at("point_stats").items().size(), 2u);
  EXPECT_EQ(got.at("point_stats").dump(), want.at("point_stats").dump());
  for (const JsonValue& point : got.at("point_stats").items()) {
    EXPECT_EQ(point.at("cells").as_int(), 3);
    ASSERT_NE(point.find("ci_steps_low"), nullptr);
    ASSERT_NE(point.find("success_rate"), nullptr);
  }
}

TEST(MergeShardDocsTest, MissingShardIsAnErrorNotASilentDrop) {
  std::vector<JsonValue> shards;
  shards.push_back(bench_doc(0, 3));
  shards.push_back(bench_doc(2, 3));  // shard 1/3 never arrives
  EXPECT_THROW(merge_shard_docs(shards), MergeError);
}

TEST(MergeShardDocsTest, DuplicateShardIsAnError) {
  std::vector<JsonValue> shards;
  shards.push_back(bench_doc(0, 2));
  shards.push_back(bench_doc(0, 2));
  EXPECT_THROW(merge_shard_docs(shards), MergeError);
}

TEST(MergeShardDocsTest, DivergingConfigIsAnError) {
  JsonValue a = bench_doc(0, 2);
  const JsonValue b = bench_doc(1, 2);
  a.set("bench", JsonValue::of("other_bench"));
  EXPECT_THROW(merge_shard_docs({a, b}), MergeError);
}

TEST(MergeShardDocsTest, DisagreeingInvariantKeyIsAnError) {
  const std::string shard0 =
      R"({"bench": "b", "threads": 1, "repeat": 1, "shard": "0/2",
          "sections": [{"name": "s", "cells": 1, "wall_seconds": 0,
                        "runs_per_sec": 0, "same_keys": ["inv"],
                        "inv": 7}],
          "total_cells": 1, "total_wall_seconds": 0, "runs_per_sec": 0})";
  const std::string shard1 =
      R"({"bench": "b", "threads": 1, "repeat": 1, "shard": "1/2",
          "sections": [{"name": "s", "cells": 1, "wall_seconds": 0,
                        "runs_per_sec": 0, "same_keys": ["inv"],
                        "inv": 8}],
          "total_cells": 1, "total_wall_seconds": 0, "runs_per_sec": 0})";
  try {
    merge_shard_docs({JsonValue::parse(shard0), JsonValue::parse(shard1)});
    FAIL() << "expected MergeError";
  } catch (const MergeError& e) {
    // The message names the key and renders both literals: "a key
    // disagreed" alone is not actionable.
    EXPECT_STREQ(e.what(),
                 "section \"s\": shards disagree on invariant key "
                 "\"inv\": 7 vs 8");
  }
}

TEST(MergeShardDocsTest, EmptyInputIsAnError) {
  EXPECT_THROW(merge_shard_docs({}), MergeError);
}

TEST(MergeShardDocsTest, MalformedShardFieldIsAnError) {
  // stoul-style parsing would read "1e1" as 1 and defeat the
  // missing/duplicate-shard detection.
  const JsonValue b = bench_doc(1, 2);
  for (const char* bad : {"1e1/2", "0 /2", "+0/2", "0/2x", "/2", "0/"}) {
    JsonValue a = bench_doc(0, 2);
    a.set("shard", JsonValue::of(bad));
    EXPECT_THROW(merge_shard_docs({a, b}), MergeError) << bad;
  }
}

TEST(MergeShardDocsTest, LeaseDocsMergeBitIdenticalToTheUnshardedDoc) {
  // Any set of lease documents whose ranges tile the virtual span —
  // any count, uneven widths, shuffled completion order — merges to
  // the unsharded document, and to the same document the static K/N
  // merge produces.
  const JsonValue full = bench_doc(0, 1);
  const std::size_t span = ShardSpec::kLeaseSpan;

  // A single whole-span lease is the unsharded run.
  EXPECT_EQ(comparable(merge_shard_docs({bench_lease_doc(0, span)})),
            comparable(full));

  // An uneven three-way tiling, given out of order (as an elastic run
  // with resharding would produce).
  std::vector<JsonValue> leases;
  leases.push_back(bench_lease_doc(700'000, span));
  leases.push_back(bench_lease_doc(0, 100'000));
  leases.push_back(bench_lease_doc(100'000, 700'000));
  const JsonValue merged = merge_shard_docs(leases);
  EXPECT_EQ(comparable(merged), comparable(full));
  EXPECT_EQ(merged.at("shard").as_string(), "0/1");

  // --shard=K/N is exactly lease {K, K+1, N}.
  std::vector<JsonValue> as_leases;
  std::vector<JsonValue> as_shards;
  for (std::size_t k = 0; k < 3; ++k) {
    as_leases.push_back(bench_lease_doc(k, k + 1, 3));
    as_shards.push_back(bench_doc(k, 3));
  }
  EXPECT_EQ(comparable(merge_shard_docs(as_leases)),
            comparable(merge_shard_docs(as_shards)));
}

TEST(MergeShardDocsTest, LeaseTilingViolationsAreErrors) {
  const std::size_t span = ShardSpec::kLeaseSpan;
  auto lease = [](std::size_t lo, std::size_t hi) {
    return bench_lease_doc(lo, hi);
  };
  // A gap means a lost lease...
  EXPECT_THROW(merge_shard_docs({lease(0, 1'000), lease(2'000, span)}),
               MergeError);
  // ...an overlap a double-counted one...
  EXPECT_THROW(
      merge_shard_docs({lease(0, 600'000), lease(500'000, span)}),
      MergeError);
  // ...and a tiling must start at 0 and reach the span.
  EXPECT_THROW(merge_shard_docs({lease(0, 1'000)}), MergeError);
  EXPECT_THROW(merge_shard_docs({lease(1'000, span)}), MergeError);
  // Documents must agree on the span.
  EXPECT_THROW(merge_shard_docs({bench_lease_doc(0, 512, 1'024),
                                 bench_lease_doc(512, 2'048, 2'048)}),
               MergeError);
  // An empty lease range is malformed, not a harmless no-op.
  EXPECT_THROW(
      merge_shard_docs({bench_lease_doc(0, 5), bench_lease_doc(5, 5),
                        bench_lease_doc(5, span)}),
      MergeError);
  // Lease and static documents never mix, in either order.
  EXPECT_THROW(merge_shard_docs({lease(0, span), bench_doc(0, 2)}),
               MergeError);
  EXPECT_THROW(merge_shard_docs({bench_doc(0, 2), lease(0, span)}),
               MergeError);
}

TEST(JsonSinkContractTest, EveryRenderedDocumentParsesStrictly) {
  // Hostile names and non-finite values: the emission contract says
  // the document still round-trips through a strict parser.
  JsonSink::Config config;
  config.name = "we\"ird\nbench\\name";
  config.path = "unused.json";
  config.enabled = false;
  JsonSink sink(config);
  sink.section("se\"ct\tion", 2, 0.5);
  sink.annotate("nan_fact", std::numeric_limits<double>::quiet_NaN());
  sink.annotate("inf_fact", std::numeric_limits<double>::infinity());
  sink.annotate("plain_fact", 3.5);

  const JsonValue doc = JsonValue::parse(sink.render());
  EXPECT_EQ(doc.at("bench").as_string(), "we\"ird\nbench\\name");
  const JsonValue& section = doc.at("sections").items().at(0);
  EXPECT_EQ(section.at("name").as_string(), "se\"ct\tion");
  EXPECT_TRUE(section.at("nan_fact").is_null());
  EXPECT_TRUE(section.at("inf_fact").is_null());
  EXPECT_EQ(section.at("plain_fact").as_double(), 3.5);
}

TEST(JsonSinkContractTest, EmptyShardGridSectionsKeepThePercentileKeys) {
  // Shard 6/8 of a 1-cell grid runs nothing; its grid section must
  // still be schema-identical to a populated one (percentile keys
  // present, null).
  RunnerOptions options;
  options.name = "empty_shard";
  options.threads = 1;
  options.shard = {6, 8};
  ExperimentRunner runner(options);
  JsonSink json = runner.json_sink();
  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 150'000;
  grid.add_spec({1, 1, 3}).prototype(proto);
  runner.run(grid, "grid_section", {&json});

  const JsonValue doc = JsonValue::parse(json.render());
  const JsonValue& section = doc.at("sections").items().at(0);
  EXPECT_EQ(section.at("cells").as_int(), 0);
  for (const char* key :
       {"steps_p50", "steps_p90", "steps_p99", "witness_bound_p90",
        "cell_seconds_p50", "cell_seconds_p90", "cell_seconds_p99",
        "steps_mean", "steps_stddev", "ci_steps_low", "ci_steps_high",
        "witness_bound_mean", "witness_bound_stddev",
        "ci_witness_bound_low", "ci_witness_bound_high", "success_rate",
        "ci_success_low", "ci_success_high"}) {
    ASSERT_NE(section.find(key), nullptr) << key;
    EXPECT_TRUE(section.at(key).is_null()) << key;
  }
  EXPECT_EQ(section.at("rows").items().size(), 0u);
  EXPECT_EQ(section.at("point_stats").items().size(), 0u);
  EXPECT_EQ(section.at("repeat_factor").as_int(), 1);
}

TEST(TimingKeyTest, TheRuleMatchesTheDocumentedKeys) {
  for (const char* key :
       {"wall_seconds", "total_wall_seconds", "runs_per_sec",
        "cell_seconds_p50", "series_wall_seconds",
        "rescan_wall_seconds", "speedup_vs_rescan"}) {
    EXPECT_TRUE(is_timing_key(key)) << key;
  }
  // The dispersion keys must never pattern-match as timing keys — a
  // timing match would drop them from merged documents instead of
  // recomputing them.
  for (const char* key :
       {"cells", "successes", "steps_p50", "series_phases",
        "rescan_match", "bench", "steps_mean", "steps_stddev",
        "witness_bound_mean", "witness_bound_stddev", "success_rate",
        "ci_steps_low", "ci_steps_high", "ci_witness_bound_low",
        "ci_witness_bound_high", "ci_success_low", "ci_success_high"}) {
    EXPECT_FALSE(is_timing_key(key)) << key;
  }
}

TEST(CanonicalJsonTest, KeyOrderDoesNotAffectTheCanonicalForm) {
  const JsonValue a = JsonValue::parse(R"({"b": 1, "a": [{"y": 2, "x": 3}]})");
  const JsonValue b = JsonValue::parse(R"({"a": [{"x": 3, "y": 2}], "b": 1})");
  EXPECT_EQ(canonical_json(a), canonical_json(b));
}

}  // namespace
}  // namespace setlib::core
