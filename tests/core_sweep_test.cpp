// The sweep grid and its execution through the ExperimentRunner: grid
// enumeration, seed derivation, memoized points, thread-count
// determinism, and the exception contract.
#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/core/experiments.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/solvability.h"
#include "src/runtime/executor.h"
#include "src/util/assert.h"

namespace setlib::core {
namespace {

SweepGrid small_grid(int repeats) {
  SweepGrid grid;
  RunConfig proto;
  proto.max_steps = 200'000;
  grid.add_spec({1, 1, 3})
      .add_spec({2, 2, 4})
      .add_family(ScheduleFamily::kEnforcedRandom)
      .add_bound(2)
      .add_bound(4)
      .repeats(repeats)
      .base_seed(99)
      .prototype(proto);
  return grid;
}

ExperimentRunner make_runner(int threads) {
  RunnerOptions options;
  options.threads = threads;
  return ExperimentRunner(options);
}

TEST(SweepGridTest, SizeIsCartesianProduct) {
  const SweepGrid grid = small_grid(3);
  // 2 specs (matching system) x 1 family x 2 bounds x 3 repeats.
  EXPECT_EQ(grid.size(), 12u);
}

TEST(SweepGridTest, EmptyGridIsLegal) {
  SweepGrid grid;  // no specs
  EXPECT_EQ(grid.size(), 0u);
  ExperimentRunner runner = make_runner(4);
  CollectSink collected;
  TableSink table;
  const SectionStats stats =
      runner.run(grid, "empty", {&collected, &table});
  EXPECT_TRUE(collected.cells().empty());
  EXPECT_TRUE(collected.reports().empty());
  EXPECT_EQ(stats.cells, 0u);
  EXPECT_FALSE(table.render().empty());  // header only
}

TEST(SweepGridTest, SingleCellGrid) {
  SweepGrid grid;
  grid.add_spec({1, 1, 3});
  EXPECT_EQ(grid.size(), 1u);
  const SweepCell cell = grid.cell(0);
  EXPECT_EQ(cell.index, 0u);
  EXPECT_EQ(cell.repeat, 0);
  EXPECT_EQ(cell.config.system.i, 1);      // matching system S^1_{2,3}
  EXPECT_EQ(cell.config.system.j, 2);

  ExperimentRunner runner = make_runner(1);
  CollectSink collected;
  AggregateSink agg;
  runner.run(grid, "single", {&collected, &agg});
  ASSERT_EQ(collected.reports().size(), 1u);
  EXPECT_TRUE(collected.reports()[0].success)
      << collected.reports()[0].detail;
  EXPECT_EQ(agg.aggregate().cells, 1u);
  EXPECT_EQ(agg.aggregate().successes, 1u);
}

TEST(SweepGridTest, CellSeedsAreIndexPureAndDistinct) {
  const SweepGrid grid = small_grid(2);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const SweepCell cell = grid.cell(i);
    EXPECT_EQ(cell.index, i);
    EXPECT_EQ(cell.config.seed, derive_cell_seed(99, i));
    // Materializing the same cell twice is identical (pure function).
    EXPECT_EQ(grid.cell(i).config.seed, cell.config.seed);
    seeds.push_back(cell.config.seed);
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(SweepGridTest, FullMatrixAxisEnumeratesUpperTriangle) {
  SweepGrid grid;
  grid.add_spec({2, 1, 4}).system_axis(SystemAxis::kFullMatrix);
  EXPECT_EQ(grid.size(), 10u);  // n(n+1)/2 for n = 4
  int previous_i = 1;
  for (std::size_t idx = 0; idx < grid.size(); ++idx) {
    const SweepCell cell = grid.cell(idx);
    EXPECT_LE(cell.config.system.i, cell.config.system.j);
    EXPECT_GE(cell.config.system.i, previous_i);
    previous_i = cell.config.system.i;
  }
}

TEST(SweepGridTest, MemoizedPointsSurviveBuilderMutation) {
  // The point cache must invalidate when the axis product changes:
  // cell(0) both before and after a mutating builder call has to see
  // the up-to-date product.
  SweepGrid grid;
  grid.add_spec({2, 1, 4});
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.cell(0).config.system.i, 1);  // matching system

  grid.system_axis(SystemAxis::kFullMatrix);
  EXPECT_EQ(grid.size(), 10u);

  grid.add_spec({2, 2, 5}).system_axis(SystemAxis::kMatching);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.cell(1).config.spec.n, 5);
}

TEST(SweepGridTest, PerCellHookSeesMaterializedCell) {
  SweepGrid grid;
  grid.add_spec({2, 1, 4})
      .system_axis(SystemAxis::kFullMatrix)
      .per_cell([](SweepCell& cell) {
        cell.config.family = cell.config.system.i > 1
                                 ? ScheduleFamily::kKSubsetStarver
                                 : ScheduleFamily::kRotisserie;
      });
  EXPECT_EQ(grid.cell(0).config.family, ScheduleFamily::kRotisserie);
  EXPECT_EQ(grid.cell(grid.size() - 1).config.family,
            ScheduleFamily::kKSubsetStarver);
}

TEST(ExperimentRunnerTest, AggregatesAreIdenticalAcrossThreadCounts) {
  const SweepGrid grid = small_grid(2);

  ExperimentRunner serial_runner = make_runner(1);
  ExperimentRunner parallel_runner = make_runner(8);
  CollectSink serial, parallel;
  AggregateSink serial_agg, parallel_agg;
  TableSink serial_table, parallel_table;
  serial_runner.run(grid, "sweep", {&serial, &serial_agg, &serial_table});
  parallel_runner.run(grid, "sweep",
                      {&parallel, &parallel_agg, &parallel_table});

  ASSERT_EQ(serial.reports().size(), parallel.reports().size());
  for (std::size_t i = 0; i < serial.reports().size(); ++i) {
    EXPECT_EQ(serial.cells()[i].config.seed,
              parallel.cells()[i].config.seed);
    EXPECT_EQ(serial.reports()[i].success, parallel.reports()[i].success);
    EXPECT_EQ(serial.reports()[i].steps_executed,
              parallel.reports()[i].steps_executed);
    EXPECT_EQ(serial.reports()[i].distinct_decisions,
              parallel.reports()[i].distinct_decisions);
    EXPECT_EQ(serial.reports()[i].witness_bound,
              parallel.reports()[i].witness_bound);
    EXPECT_EQ(serial.reports()[i].detail, parallel.reports()[i].detail);
  }
  EXPECT_EQ(serial_agg.aggregate().successes,
            parallel_agg.aggregate().successes);
  EXPECT_EQ(serial_agg.aggregate().steps.mean(),
            parallel_agg.aggregate().steps.mean());
  EXPECT_EQ(serial_agg.aggregate().witness_bound.percentile(90.0),
            parallel_agg.aggregate().witness_bound.percentile(90.0));
  // The rendered table (the bench-facing artifact) is bit-identical.
  EXPECT_EQ(serial_table.render(), parallel_table.render());
}

TEST(ExperimentRunnerTest, Thm27MatrixIsThreadCountInvariant) {
  MatrixConfig cfg;
  cfg.spec = {2, 1, 4};
  cfg.max_steps = 300'000;
  ExperimentRunner serial_runner = make_runner(1);
  ExperimentRunner parallel_runner = make_runner(8);
  const auto serial = thm27_matrix(cfg, serial_runner);
  const auto parallel = thm27_matrix(cfg, parallel_runner);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].i, parallel[i].i);
    EXPECT_EQ(serial[i].j, parallel[i].j);
    EXPECT_EQ(serial[i].matches, parallel[i].matches);
    EXPECT_EQ(serial[i].detail, parallel[i].detail);
  }
}

TEST(ExperimentRunnerTest, MapCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 3, 8}) {
    ExperimentRunner runner = make_runner(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    runner.run(hits.size(), "cover", [&](std::size_t i) {
      hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ExperimentRunnerTest, LowestIndexExceptionPropagates) {
  ExperimentRunner runner = make_runner(8);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  try {
    runner.run(hits.size(), "throwing", [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 7) throw std::runtime_error("cell 7");
      if (i == 40) throw std::runtime_error("cell 40");
    });
    FAIL() << "expected the sweep to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 7");
  }
  // A failing cell aborts neither its siblings nor the sweep drain.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExperimentRunnerTest, FailingCellPropagatesFromGridRun) {
  SweepGrid grid;
  grid.add_spec({1, 1, 3}).repeats(2).per_cell([](SweepCell& cell) {
    if (cell.index == 1) cell.config.max_steps = -1;  // contract bait
  });
  ExperimentRunner runner = make_runner(4);
  EXPECT_THROW(runner.run(grid, "bait", {}), ContractViolation);
}

TEST(WorkStealingPoolTest, HardwareConcurrencyFallback) {
  runtime::WorkStealingPool pool(0);
  EXPECT_GE(pool.threads(), 1);
}

TEST(WorkStealingPoolTest, MoreThreadsThanWork) {
  runtime::WorkStealingPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.for_each(hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealingPoolTest, ZeroTasksIsANoop) {
  runtime::WorkStealingPool pool(4);
  pool.for_each(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(SweepSeedTest, DeriveCellSeedMixes) {
  EXPECT_NE(derive_cell_seed(1, 0), derive_cell_seed(1, 1));
  EXPECT_NE(derive_cell_seed(1, 0), derive_cell_seed(2, 0));
  EXPECT_EQ(derive_cell_seed(42, 7), derive_cell_seed(42, 7));
}

TEST(SweepFamilyTest, FamilyNames) {
  EXPECT_STREQ(family_name(ScheduleFamily::kEnforcedRandom), "friendly");
  EXPECT_STREQ(family_name(ScheduleFamily::kRotisserie), "rotisserie");
  EXPECT_STREQ(family_name(ScheduleFamily::kKSubsetStarver),
               "k-subset starver");
  EXPECT_STREQ(family_name(ScheduleFamily::kBursty), "bursty");
  EXPECT_STREQ(family_name(ScheduleFamily::kStarvation), "starvation");
  EXPECT_STREQ(family_name(ScheduleFamily::kCrashProne), "crash-prone");
  EXPECT_STREQ(family_name(ScheduleFamily::kGst), "gst");
}

TEST(SweepFamilyTest, RandomizedFamiliesListMatchesTheRegistryOrder) {
  const auto& families = randomized_families();
  ASSERT_EQ(families.size(), 4u);
  EXPECT_EQ(families[0], ScheduleFamily::kBursty);
  EXPECT_EQ(families[1], ScheduleFamily::kStarvation);
  EXPECT_EQ(families[2], ScheduleFamily::kCrashProne);
  EXPECT_EQ(families[3], ScheduleFamily::kGst);
}

}  // namespace
}  // namespace setlib::core
