#include "src/sched/analyzer.h"

#include <gtest/gtest.h>

#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/util/assert.h"
#include "src/util/rng.h"

namespace setlib::sched {
namespace {

TEST(MinBoundTest, HandComputedExamples) {
  // Schedule: q q p q q q p  (p = 0, q = 1)
  const Schedule s(2, {1, 1, 0, 1, 1, 1, 0});
  // Largest P-free window has 3 q-steps -> bound 4.
  EXPECT_EQ(min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(1)), 4);
  // Bound from suffix index 3: window q q q -> 4 as well.
  EXPECT_EQ(min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(1), 3, 7),
            4);
  // Restricted to [0,3): q q p -> bound 3.
  EXPECT_EQ(min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(1), 0, 3),
            3);
}

TEST(MinBoundTest, SelfTimelinessIsOne) {
  // Observation 5's engine: any set is timely w.r.t. itself with bound 1.
  UniformRandomGenerator gen(5, 3);
  const Schedule s = generate(gen, 5'000);
  for (int size = 1; size <= 3; ++size) {
    for (const ProcSet p : k_subsets(5, size)) {
      EXPECT_EQ(min_timeliness_bound(s, p, p), 1) << p.to_string();
    }
  }
}

TEST(MinBoundTest, SilentObserverGivesBoundOne) {
  const Schedule s(3, {0, 1, 0, 1});
  // q = {2} never steps: vacuously timely.
  EXPECT_EQ(min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(2)), 1);
}

TEST(MinBoundTest, PNeverSteppingDiverges) {
  const Schedule s(2, std::vector<Pid>(100, 1));
  EXPECT_EQ(min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(1)), 101);
}

TEST(IsTimelyTest, ThresholdSemantics) {
  const Schedule s(2, {1, 1, 0, 1, 1, 0});
  EXPECT_TRUE(is_timely(s, ProcSet::of(0), ProcSet::of(1), 3));
  EXPECT_FALSE(is_timely(s, ProcSet::of(0), ProcSet::of(1), 2));
  EXPECT_THROW(is_timely(s, ProcSet::of(0), ProcSet::of(1), 0),
               ContractViolation);
}

TEST(BoundSeriesTest, MatchesPerPrefixBounds) {
  Figure1Generator gen(3, 0, 1, 2);
  const Schedule s = generate(gen, Figure1Generator::steps_through_phase(6));
  std::vector<std::int64_t> cuts;
  for (std::int64_t i = 1; i <= 6; ++i) {
    cuts.push_back(Figure1Generator::steps_through_phase(i));
  }
  const auto series = bound_series(s, ProcSet::of(0), ProcSet::of(2), cuts);
  ASSERT_EQ(series.size(), 6u);
  for (std::size_t idx = 0; idx < series.size(); ++idx) {
    EXPECT_EQ(series[idx],
              min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(2), 0,
                                   cuts[idx]));
  }
  // Divergence: the bound grows with the phase (p1 starved during the
  // growing (p2 q)^i half-phases).
  EXPECT_LT(series[0], series[5]);
}

TEST(Figure1ClaimTest, PaperExampleBounds) {
  // The paper's Figure 1 claims, on S = [(p1 q)^i (p2 q)^i]:
  //  - {p1} and {p2} are not timely w.r.t. {q} (bounds diverge), and
  //  - {p1, p2} is timely w.r.t. {q} with a small constant bound.
  Figure1Generator gen(3, 0, 1, 2);
  const Schedule s =
      generate(gen, Figure1Generator::steps_through_phase(40));
  const std::int64_t b1 =
      min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(2));
  const std::int64_t b2 =
      min_timeliness_bound(s, ProcSet::of(1), ProcSet::of(2));
  const std::int64_t bu =
      min_timeliness_bound(s, ProcSet::of({0, 1}), ProcSet::of(2));
  EXPECT_GE(b1, 40);  // starved through the whole (p2 q)^40 half
  EXPECT_GE(b2, 40);
  EXPECT_EQ(bu, 2);
}

TEST(SystemMembershipTest, BoundForMatchesDirectAnalyzer) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    UniformRandomGenerator gen(5, rng.next_u64());
    const Schedule s = generate(gen, 500);
    const SystemMembership membership(s);
    for (const ProcSet p : k_subsets(5, 2)) {
      for (const ProcSet q : k_subsets(5, 3)) {
        EXPECT_EQ(membership.bound_for(p, q),
                  min_timeliness_bound(s, p, q))
            << p.to_string() << " vs " << q.to_string();
      }
    }
  }
}

TEST(SystemMembershipTest, BestPairFindsEnforcedWitness) {
  // Enforce {0,1} timely w.r.t. {2,3,4} at bound 3 over random noise;
  // the analyzer's best (2,3)-pair must be at most that bound.
  auto base = std::make_unique<UniformRandomGenerator>(5, 77);
  auto gen = EnforcedGenerator::single(
      std::move(base),
      TimelinessConstraint(ProcSet::of({0, 1}), ProcSet::of({2, 3, 4}), 3));
  const Schedule s = generate(*gen, 20'000);
  const SystemMembership membership(s);
  const TimelyPair best = membership.best_pair(2, 3);
  EXPECT_LE(best.bound, 3);
}

TEST(SystemMembershipTest, FindWitnessEarlyExit) {
  RoundRobinGenerator gen(4);
  const Schedule s = generate(gen, 400);
  const SystemMembership membership(s);
  // Round-robin: every singleton is timely w.r.t. everything with
  // bound <= n.
  const auto witness = membership.find_witness(1, 4, 4);
  ASSERT_TRUE(witness.has_value());
  EXPECT_LE(witness->bound, 4);
  // A starved process never qualifies as the timely side of a pair with
  // an active observer (only the degenerate P == Q witness remains —
  // Observation 5's asynchrony witness).
  const Schedule starved(2, std::vector<Pid>(64, 1));
  const SystemMembership sm2(starved);
  EXPECT_EQ(sm2.bound_for(ProcSet::of(0), ProcSet::of(1)), 65);
  const auto degenerate = sm2.find_witness(1, 1, 2);
  ASSERT_TRUE(degenerate.has_value());
  EXPECT_EQ(degenerate->timely_set, degenerate->observed_set);
}

TEST(SystemMembershipTest, ObservationFiveAsynchronyWitness) {
  // In any schedule, i == j membership holds with bound 1 (P = Q).
  UniformRandomGenerator gen(4, 123);
  const Schedule s = generate(gen, 2'000);
  const SystemMembership membership(s);
  for (int i = 1; i <= 4; ++i) {
    const auto witness = membership.find_witness(i, i, 1);
    ASSERT_TRUE(witness.has_value()) << "i=" << i;
    EXPECT_EQ(witness->bound, 1);
  }
}

class EnforcerParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::int64_t,
                                                 std::uint64_t>> {};

TEST_P(EnforcerParamTest, ConstraintHoldsOnExecutedSchedule) {
  const auto [i, j, bound, seed] = GetParam();
  const int n = 6;
  const ProcSet p = ProcSet::range(0, i);
  const ProcSet q = ProcSet::range(0, j);
  auto base = std::make_unique<UniformRandomGenerator>(n, seed);
  auto gen = EnforcedGenerator::single(std::move(base),
                                       TimelinessConstraint(p, q, bound));
  const Schedule s = generate(*gen, 30'000);
  EXPECT_LE(min_timeliness_bound(s, p, q), bound);
  EXPECT_EQ(gen->dropped_constraints(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnforcerParamTest,
    ::testing::Combine(::testing::Values(1, 2, 3),     // i
                       ::testing::Values(3, 5, 6),     // j
                       ::testing::Values(2, 3, 8),     // bound
                       ::testing::Values(1u, 42u)));   // seed

TEST(EnforcerTest, CountsSubstitutions) {
  // Base heavily biased toward pid 2 in Q \ P: the enforcer must
  // substitute P steps regularly.
  auto base = std::make_unique<WeightedRandomGenerator>(
      std::vector<double>{0.01, 1.0, 1.0}, 5);
  auto gen = EnforcedGenerator::single(
      std::move(base),
      TimelinessConstraint(ProcSet::of(0), ProcSet::of({1, 2}), 2));
  const Schedule s = generate(*gen, 5'000);
  EXPECT_LE(min_timeliness_bound(s, ProcSet::of(0), ProcSet::of({1, 2})),
            2);
  EXPECT_GT(gen->substitutions(), 1'000);
}

TEST(EnforcerTest, DropsConstraintWhenTimelySetCrashes) {
  auto base = std::make_unique<UniformRandomGenerator>(3, 9);
  std::vector<TimelinessConstraint> constraints{
      TimelinessConstraint(ProcSet::of(0), ProcSet::of({1, 2}), 2)};
  EnforcedGenerator gen(std::move(base), std::move(constraints),
                        CrashPlan::at(3, ProcSet::of(0), 100));
  const Schedule s = generate(gen, 5'000);
  EXPECT_GT(gen.dropped_constraints(), 0);
  // After the crash no pid-0 steps appear.
  EXPECT_EQ(s.count(0, 200, s.size()), 0);
}

TEST(EnforcerTest, MultipleConstraintsBestEffort) {
  auto base = std::make_unique<UniformRandomGenerator>(6, 31);
  std::vector<TimelinessConstraint> constraints{
      TimelinessConstraint(ProcSet::of(0), ProcSet::of({2, 3}), 4),
      TimelinessConstraint(ProcSet::of(1), ProcSet::of({4, 5}), 4)};
  EnforcedGenerator gen(std::move(base), std::move(constraints),
                        CrashPlan::none(6));
  const Schedule s = generate(gen, 30'000);
  EXPECT_LE(min_timeliness_bound(s, ProcSet::of(0), ProcSet::of({2, 3})), 4);
  EXPECT_LE(min_timeliness_bound(s, ProcSet::of(1), ProcSet::of({4, 5})), 4);
}

}  // namespace
}  // namespace setlib::sched
