// The run engine and the experiment drivers, including the headline
// Theorem 27 matrix property: predicted frontier == observed frontier.
#include "src/core/engine.h"

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "src/core/solvability.h"

namespace setlib::core {
namespace {

TEST(EngineTest, FriendlySolvableRunSucceeds) {
  RunConfig cfg;
  cfg.spec = {2, 2, 5};
  cfg.system = matching_system(cfg.spec);
  cfg.seed = 3;
  const RunReport report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_LE(report.distinct_decisions, 2);
  EXPECT_LE(report.witness_bound, cfg.timeliness_bound);
  EXPECT_EQ(report.algorithm, "kanti-omega+paxos");
}

TEST(EngineTest, TrivialRegimeUsesTrivialAlgorithm) {
  RunConfig cfg;
  cfg.spec = {1, 2, 4};  // k > t
  cfg.system = {4, 4, 4};  // even fully asynchronous
  const RunReport report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_EQ(report.algorithm, "trivial");
  EXPECT_FALSE(report.detector.used);
}

TEST(EngineTest, FriendlyWithCrashes) {
  RunConfig cfg;
  cfg.spec = {2, 1, 4};
  cfg.system = matching_system(cfg.spec);  // S^1_{3,4}
  cfg.seed = 9;
  cfg.run_full_budget = true;  // let the planned crashes actually occur
  cfg.max_steps = 300'000;
  auto plan = sched::CrashPlan::none(4);
  plan.set_crash(3, 10'000);
  plan.set_crash(2, 40'000);
  cfg.crashes = plan;
  const RunReport report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_EQ(report.faulty, ProcSet::of({2, 3}));
  // Crashed processes may or may not have decided before crashing; the
  // correct ones must all agree on one value (k = 1).
  EXPECT_EQ(report.distinct_decisions, 1);
}

TEST(EngineTest, RotisserieSolvableSideSucceeds) {
  RunConfig cfg;
  cfg.spec = {2, 2, 5};
  cfg.system = {2, 3, 5};  // gap 1 >= t+1-k = 1
  cfg.family = ScheduleFamily::kRotisserie;
  const RunReport report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_EQ(report.witness_bound, 1);  // crashed-only observers
  EXPECT_EQ(report.faulty.size(), 1);
}

TEST(EngineTest, RotisserieUnsolvableSideDefeatsDetector) {
  RunConfig cfg;
  cfg.spec = {2, 1, 4};
  cfg.system = {1, 2, 4};  // gap 1 < t+1-k = 2
  cfg.family = ScheduleFamily::kRotisserie;
  cfg.run_full_budget = true;
  const RunReport report = run_agreement(cfg);
  EXPECT_FALSE(report.detector.abstract_ok) << report.detail;
  EXPECT_FALSE(report.detector.stabilized);
}

TEST(EngineTest, StarverFamilyDefeatsDetector) {
  RunConfig cfg;
  cfg.spec = {2, 2, 5};
  cfg.system = {3, 4, 5};  // i > k
  cfg.family = ScheduleFamily::kKSubsetStarver;
  cfg.run_full_budget = true;
  const RunReport report = run_agreement(cfg);
  EXPECT_FALSE(report.detector.abstract_ok) << report.detail;
  EXPECT_EQ(report.faulty, ProcSet());
}

TEST(EngineTest, ReportDecisionsShapeIsConsistent) {
  RunConfig cfg;
  cfg.spec = {1, 1, 3};
  cfg.system = matching_system(cfg.spec);
  const RunReport report = run_agreement(cfg);
  ASSERT_EQ(report.decisions.size(), 3u);
  int decided = 0;
  for (const auto& d : report.decisions) {
    if (d.has_value()) ++decided;
  }
  EXPECT_GE(decided, 3 - cfg.spec.t);
  EXPECT_EQ(report.timely_set.size(), 1);
  EXPECT_EQ(report.observed_set.size(), 2);
}

TEST(ExperimentsTest, Figure1RowsMatchPaperClaims) {
  const auto rows = figure1_rows(12);
  ASSERT_EQ(rows.size(), 12u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.bound_union, 2) << "phase " << row.phase;
    EXPECT_EQ(row.prefix_len, 2 * row.phase * (row.phase + 1));
  }
  // Divergence of the individual bounds with the phase index: the
  // bound after phase i reflects the i-long starvation stretches.
  EXPECT_GE(rows[11].bound_p1, rows[3].bound_p1 + 6);
  EXPECT_GE(rows[11].bound_p2, rows[3].bound_p2 + 6);
  EXPECT_GE(rows[11].bound_p1, 12);
}

TEST(ExperimentsTest, DetectorConvergenceFriendly) {
  DetectorRunConfig cfg;
  cfg.n = 4;
  cfg.k = 1;
  cfg.t = 2;
  cfg.seed = 5;
  const auto result = run_detector_convergence(cfg);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(result.property_ok);
  EXPECT_EQ(result.winnerset.size(), 1);
  EXPECT_GT(result.max_iterations, 0);
  EXPECT_EQ(result.ops_per_iteration, 4 * 4 + 1 + 4 + 4);
}

TEST(ExperimentsTest, DetectorConvergenceWithCrashes) {
  DetectorRunConfig cfg;
  cfg.n = 5;
  cfg.k = 2;
  cfg.t = 2;
  cfg.crash_count = 2;
  cfg.crash_step = 30'000;
  cfg.seed = 8;
  cfg.max_steps = 1'500'000;
  const auto result = run_detector_convergence(cfg);
  EXPECT_TRUE(result.property_ok);
}

class MatrixSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatrixSweep, FrontierMatchesEverywhere) {
  const auto [t, k, n] = GetParam();
  MatrixConfig cfg;
  cfg.spec = {t, k, n};
  cfg.max_steps = 700'000;
  cfg.rotisserie_growth = 512;
  const auto cells = thm27_matrix(cfg);
  EXPECT_EQ(cells.size(),
            static_cast<std::size_t>(n * (n + 1) / 2));
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.matches)
        << "(t,k,n)=(" << t << "," << k << "," << n << ") cell (i,j)=("
        << cell.i << "," << cell.j << ") family=" << cell.family
        << " predicted="
        << (cell.predicted_solvable ? "solvable" : "unsolvable")
        << " detector=" << (cell.detector_property ? "holds" : "defeated")
        << " :: " << cell.detail;
  }
  const std::string rendered = render_matrix(cfg.spec, cells);
  EXPECT_NE(rendered.find("MATCH"), std::string::npos);
  EXPECT_EQ(rendered.find("MISMATCH"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Grid, MatrixSweep,
                         ::testing::Values(std::tuple{2, 1, 4},
                                           std::tuple{2, 2, 5},
                                           std::tuple{3, 2, 5}));

}  // namespace
}  // namespace setlib::core
