// Multi-shot agreement: per-slot k-agreement/validity, replicated-log
// consistency for k = 1, progress with crashes, and detector sharing
// across slots.
#include "src/agreement/multishot.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/fd/kantiomega.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::agreement {
namespace {

struct Rig {
  shm::SimMemory mem;
  std::unique_ptr<fd::KAntiOmega> detector;
  std::unique_ptr<MultiShotAgreement> ms;
  std::unique_ptr<shm::Simulator> sim;

  Rig(int n, int k, int t, int slots) {
    detector = std::make_unique<fd::KAntiOmega>(
        mem, fd::KAntiOmega::Params{n, k, t, 1});
    ms = std::make_unique<MultiShotAgreement>(
        mem, MultiShotAgreement::Params{n, k, t, slots}, detector.get());
    sim = std::make_unique<shm::Simulator>(mem, n);
    for (Pid p = 0; p < n; ++p) {
      sim->process(p).add_task(detector->run(p), "fd");
      std::vector<std::int64_t> commands;
      for (int s = 0; s < slots; ++s) {
        commands.push_back(1000 * (p + 1) + s);
      }
      ms->install(sim->process(p), p, std::move(commands));
    }
  }
};

TEST(MultiShotTest, ReplicatedLogForConsensus) {
  const int n = 4, k = 1, t = 2, slots = 6;
  Rig rig(n, k, t, slots);
  sched::RoundRobinGenerator gen(n);
  rig.sim->run_until(gen, 3'000'000, [&] {
    return rig.ms->all_decided(ProcSet::universe(n));
  });
  ASSERT_TRUE(rig.ms->all_decided(ProcSet::universe(n)));
  // k = 1: one value per slot, identical logs at all processes.
  for (int s = 0; s < slots; ++s) {
    const auto values = rig.ms->slot_values(s, ProcSet::universe(n));
    ASSERT_EQ(values.size(), 1u) << "slot " << s;
    // Validity: some process's command for this exact slot.
    EXPECT_EQ(values[0] % 1000, s);
  }
}

TEST(MultiShotTest, KForkingLogStaysWithinK) {
  const int n = 5, k = 2, t = 2, slots = 4;
  Rig rig(n, k, t, slots);
  sched::UniformRandomGenerator gen(n, 7);
  rig.sim->run_until(gen, 4'000'000, [&] {
    return rig.ms->all_decided(ProcSet::universe(n));
  });
  ASSERT_TRUE(rig.ms->all_decided(ProcSet::universe(n)));
  for (int s = 0; s < slots; ++s) {
    const auto values = rig.ms->slot_values(s, ProcSet::universe(n));
    EXPECT_GE(values.size(), 1u);
    EXPECT_LE(values.size(), static_cast<std::size_t>(k)) << "slot " << s;
    for (const auto v : values) EXPECT_EQ(v % 1000, s);
  }
}

TEST(MultiShotTest, ProgressWithCrashes) {
  const int n = 5, k = 2, t = 2, slots = 4;
  Rig rig(n, k, t, slots);
  const auto plan = sched::CrashPlan::at(n, ProcSet::of({3, 4}), 60'000);
  rig.sim->use_crash_plan(plan);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, 13);
  std::vector<sched::TimelinessConstraint> constraints{
      sched::TimelinessConstraint(ProcSet::range(0, k),
                                  ProcSet::range(0, t + 1), 3)};
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               plan);
  const ProcSet correct = plan.faulty().complement(n);
  rig.sim->run_until(gen, 6'000'000,
                     [&] { return rig.ms->all_decided(correct); });
  ASSERT_TRUE(rig.ms->all_decided(correct));
  for (int s = 0; s < slots; ++s) {
    EXPECT_LE(rig.ms->slot_values(s, correct).size(),
              static_cast<std::size_t>(k));
  }
}

TEST(MultiShotTest, PrefixGrowsInOrder) {
  const int n = 3, k = 1, t = 1, slots = 5;
  Rig rig(n, k, t, slots);
  sched::RoundRobinGenerator gen(n);
  int last_prefix = 0;
  for (int rounds = 0; rounds < 60; ++rounds) {
    rig.sim->run(gen, 2'000);
    const int prefix = rig.ms->decided_prefix(0);
    EXPECT_GE(prefix, last_prefix);  // prefix only grows
    // Slots decide strictly in order: nothing beyond the prefix.
    for (int s = prefix; s < slots; ++s) {
      EXPECT_FALSE(rig.ms->log_at(0, s).has_value());
    }
    last_prefix = prefix;
  }
  EXPECT_EQ(last_prefix, slots);
}

TEST(MultiShotTest, ValidatesParams) {
  shm::SimMemory mem;
  fd::KAntiOmega det(mem, {4, 1, 2, 1});
  EXPECT_THROW(MultiShotAgreement(
                   mem, MultiShotAgreement::Params{4, 1, 2, 0}, &det),
               ContractViolation);
  EXPECT_THROW(MultiShotAgreement(
                   mem, MultiShotAgreement::Params{4, 2, 2, 3}, &det),
               ContractViolation);  // k mismatch with detector
}

}  // namespace
}  // namespace setlib::agreement
