// core::WorkQueue: the lease scheduler behind the elastic
// orchestrator. An injectable clock drives the expiry and straggler
// machinery deterministically — no wall-clock sleeps. The invariant
// every test circles back to: accepted completions tile the virtual
// span exactly once, whatever failed, expired, or was superseded on
// the way.
#include "src/core/workqueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace setlib::core {
namespace {

using std::chrono::milliseconds;
using time_point = std::chrono::steady_clock::time_point;

/// Test options with a hand-cranked clock.
struct Fixture {
  time_point now{};  // epoch; advanced by hand
  WorkQueueOptions options;

  Fixture() {
    options.span = 64;
    options.ranges = 4;
    options.workers = 2;
    options.lease_timeout = milliseconds(1000);
    options.straggler_factor = 0.0;  // opt in per test
    options.straggler_min = milliseconds(1);
    options.clock = [this] { return now; };
  }
};

/// Sorted (lo, hi) list of the given leases.
std::vector<std::pair<std::size_t, std::size_t>> ranges_of(
    const std::vector<Lease>& leases) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const Lease& lease : leases) out.emplace_back(lease.lo, lease.hi);
  std::sort(out.begin(), out.end());
  return out;
}

/// True when the sorted ranges tile [0, span) exactly.
bool tiles(const std::vector<std::pair<std::size_t, std::size_t>>& rs,
           std::size_t span) {
  std::size_t expect = 0;
  for (const auto& [lo, hi] : rs) {
    if (lo != expect || hi <= lo) return false;
    expect = hi;
  }
  return expect == span;
}

TEST(WorkQueueTest, InitialRangesTileTheSpanAndDrainLowFirst) {
  Fixture fx;
  WorkQueue queue(fx.options);
  std::vector<Lease> leases;
  for (int i = 0; i < 4; ++i) {
    auto lease = queue.acquire(0);
    ASSERT_TRUE(lease.has_value());
    // Low ranges lease first.
    if (!leases.empty()) {
      EXPECT_GT(lease->lo, leases.back().lo);
    }
    leases.push_back(*lease);
  }
  EXPECT_TRUE(tiles(ranges_of(leases), 64));
  for (const Lease& lease : leases) {
    EXPECT_TRUE(queue.complete(lease.id));
  }
  EXPECT_TRUE(queue.done());
  EXPECT_FALSE(queue.acquire(0).has_value());
  const WorkQueueReport report = queue.report();
  EXPECT_EQ(report.leases_issued, 4u);
  EXPECT_EQ(report.leases_completed, 4u);
  EXPECT_EQ(report.leases_resharded, 0u);
  EXPECT_TRUE(report.events.empty());
}

TEST(WorkQueueTest, AutoRangeCountScalesWithWorkersAndCapsAtSpan) {
  Fixture fx;
  fx.options.ranges = 0;
  fx.options.workers = 3;
  WorkQueue queue(fx.options);  // span 64 > 24 ranges
  EXPECT_EQ(queue.report().initial_ranges, 24u);

  Fixture tiny;
  tiny.options.span = 5;
  tiny.options.ranges = 0;
  WorkQueue small(tiny.options);
  EXPECT_EQ(small.report().initial_ranges, 5u);
}

TEST(WorkQueueTest, FailedLeaseIsSplitRequeuedAndBudgeted) {
  Fixture fx;
  fx.options.ranges = 1;  // one wide range so the split is visible
  WorkQueue queue(fx.options);
  auto lease = queue.acquire(0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->lo, 0u);
  EXPECT_EQ(lease->hi, 64u);
  queue.fail(lease->id, "exit 137");

  // The range came back as two halves; completing them finishes.
  std::vector<Lease> halves;
  for (int i = 0; i < 2; ++i) {
    auto half = queue.acquire(1);
    ASSERT_TRUE(half.has_value());
    halves.push_back(*half);
  }
  EXPECT_TRUE(tiles(ranges_of(halves), 64));
  for (const Lease& half : halves) EXPECT_TRUE(queue.complete(half.id));
  EXPECT_TRUE(queue.done());

  const WorkQueueReport report = queue.report();
  EXPECT_EQ(report.leases_failed, 1u);
  EXPECT_EQ(report.leases_resharded, 1u);
  EXPECT_EQ(report.failures_spent, 1u);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].kind, LeaseEvent::Kind::kFailed);
  EXPECT_EQ(report.events[0].detail, "exit 137");
  EXPECT_TRUE(report.events[0].split);
}

TEST(WorkQueueTest, ExpiredLeaseIsRequeuedAndLateCompletionDiscarded) {
  Fixture fx;
  fx.options.ranges = 2;
  WorkQueue queue(fx.options);
  auto doomed = queue.acquire(0);
  ASSERT_TRUE(doomed.has_value());

  // Past the deadline, the next acquire sweeps the lease back in.
  fx.now += milliseconds(1500);
  std::vector<Lease> rest;
  for (;;) {
    auto lease = queue.acquire(1);
    ASSERT_TRUE(lease.has_value());
    rest.push_back(*lease);
    EXPECT_TRUE(queue.complete(lease->id));
    if (queue.done()) break;
  }
  // The dead worker's late result must not double-count its range.
  EXPECT_FALSE(queue.complete(doomed->id));

  const WorkQueueReport report = queue.report();
  EXPECT_EQ(report.leases_expired, 1u);
  EXPECT_GE(report.leases_resharded, 1u);
  EXPECT_EQ(report.completions_discarded, 1u);
  EXPECT_TRUE(queue.done());
}

TEST(WorkQueueTest, FailureBudgetExhaustionAborts) {
  Fixture fx;
  fx.options.ranges = 1;
  fx.options.failure_budget = 2;
  WorkQueue queue(fx.options);
  for (int i = 0; i < 3; ++i) {
    auto lease = queue.acquire(0);
    ASSERT_TRUE(lease.has_value()) << "failure " << i;
    queue.fail(lease->id, "exit 1");
  }
  EXPECT_TRUE(queue.aborted());
  EXPECT_FALSE(queue.done());
  EXPECT_FALSE(queue.acquire(0).has_value());
  const WorkQueueReport report = queue.report();
  EXPECT_EQ(report.failures_spent, 3u);
  EXPECT_NE(report.abort_reason.find("failure budget"),
            std::string::npos);
  EXPECT_NE(report.abort_reason.find("exit 1"), std::string::npos);
}

TEST(WorkQueueTest, StragglerIsSupersededOnlyWithBaselineAndIdleWorker) {
  Fixture fx;
  fx.options.ranges = 2;
  fx.options.straggler_factor = 2.0;
  fx.options.straggler_min = milliseconds(10);
  WorkQueue queue(fx.options);

  auto slow = queue.acquire(0);  // [0, 32)
  ASSERT_TRUE(slow.has_value());
  auto fast = queue.acquire(1);  // [32, 64)
  ASSERT_TRUE(fast.has_value());
  fx.now += milliseconds(20);
  EXPECT_TRUE(queue.complete(fast->id));  // baseline: 20 ms

  // Idle worker 1 asks again. The straggler is 20 ms old; the
  // threshold is max(10 ms, 2 x 20 ms) = 40 ms — not yet a straggler,
  // so worker 1 waits... until the lease ages past it.
  fx.now += milliseconds(50);  // age 70 ms > 40 ms
  auto replacement = queue.acquire(1);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_EQ(replacement->lo, 0u);  // a half of the superseded range

  // The straggler's own completion is now worthless.
  EXPECT_FALSE(queue.complete(slow->id));

  std::vector<Lease> done{*replacement};
  EXPECT_TRUE(queue.complete(replacement->id));
  while (!queue.done()) {
    auto lease = queue.acquire(0);
    ASSERT_TRUE(lease.has_value());
    done.push_back(*lease);
    EXPECT_TRUE(queue.complete(lease->id));
  }

  const WorkQueueReport report = queue.report();
  EXPECT_EQ(report.leases_superseded, 1u);
  EXPECT_GE(report.leases_resharded, 1u);
  EXPECT_EQ(report.completions_discarded, 1u);
  // Supersession is not a failure: the budget is untouched.
  EXPECT_EQ(report.failures_spent, 0u);
  ASSERT_FALSE(report.events.empty());
  EXPECT_EQ(report.events[0].kind, LeaseEvent::Kind::kSuperseded);
}

TEST(WorkQueueTest, NoStragglerWithoutACompletedBaseline) {
  Fixture fx;
  fx.options.ranges = 1;
  fx.options.straggler_factor = 1.0;
  fx.options.straggler_min = milliseconds(1);
  fx.options.lease_timeout = milliseconds(60'000);
  WorkQueue queue(fx.options);
  auto lease = queue.acquire(0);
  ASSERT_TRUE(lease.has_value());
  fx.now += milliseconds(10'000);
  // Nothing has ever completed: "visibly lags" has no meaning, so the
  // only thing the queue may do here is keep waiting (bounded poll).
  // We can't call acquire (it would block), but completing still works
  // and proves the lease was not superseded meanwhile.
  EXPECT_TRUE(queue.complete(lease->id));
  EXPECT_TRUE(queue.done());
  EXPECT_EQ(queue.report().leases_superseded, 0u);
}

TEST(WorkQueueTest, WidthOneRangeRequeuesWithoutSplitting) {
  Fixture fx;
  fx.options.span = 1;
  fx.options.ranges = 1;
  WorkQueue queue(fx.options);
  auto lease = queue.acquire(0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->width(), 1u);
  queue.fail(lease->id, "exit 1");
  auto retry = queue.acquire(0);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->lo, 0u);
  EXPECT_EQ(retry->hi, 1u);
  EXPECT_TRUE(queue.complete(retry->id));
  EXPECT_TRUE(queue.done());
  const WorkQueueReport report = queue.report();
  EXPECT_EQ(report.leases_resharded, 0u);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_FALSE(report.events[0].split);
}

TEST(WorkQueueTest, LeaseShardMatchesTheCellsFlagSemantics) {
  Lease lease;
  lease.lo = 16;
  lease.hi = 32;
  const ShardSpec spec = lease.shard(64);
  EXPECT_TRUE(spec.leased);
  EXPECT_EQ(spec.to_string(), "16..32/64");
  // [total*lo/span, total*hi/span) of a 128-cell space.
  const auto [begin, end] = spec.range(128);
  EXPECT_EQ(begin, 32u);
  EXPECT_EQ(end, 64u);
  EXPECT_FALSE(spec.whole());
  Lease whole;
  whole.lo = 0;
  whole.hi = 64;
  EXPECT_TRUE(whole.shard(64).whole());
}

TEST(WorkQueueTest, ReportRendersItsAccountingAsJson) {
  Fixture fx;
  fx.options.ranges = 1;
  WorkQueue queue(fx.options);
  auto lease = queue.acquire(7);
  ASSERT_TRUE(lease.has_value());
  queue.fail(lease->id, "killed by signal 9");
  const JsonValue json = queue.report().to_json();
  EXPECT_EQ(json.at("span").as_int(), 64);
  EXPECT_EQ(json.at("leases_issued").as_int(), 1);
  EXPECT_EQ(json.at("leases_failed").as_int(), 1);
  EXPECT_EQ(json.at("leases_resharded").as_int(), 1);
  const auto& events = json.at("events").items();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("kind").as_string(), "failed");
  EXPECT_EQ(events[0].at("worker").as_int(), 7);
  EXPECT_EQ(events[0].at("detail").as_string(), "killed by signal 9");
}

}  // namespace
}  // namespace setlib::core
