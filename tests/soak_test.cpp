// Randomized soak sweeps: wide (t, k, n) x seed x crash-pattern grids
// through the full engine, boundary instances (wait-free t = n-1, set
// agreement k = n-1, minimal n = 2), and randomized crash timing.
// These are the "many seeds, no surprises" guards on top of the
// targeted unit/property tests.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/solvability.h"
#include "src/util/rng.h"

namespace setlib::core {
namespace {

class EngineSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineSoak, RandomSolvableConfigsAlwaysSucceed) {
  // Draw random valid (t, k, n) with k <= t, a random system on the
  // solvable side of the frontier, random crash pattern within t, and
  // run the full stack.
  Rng rng(GetParam() * 2654435761u + 17);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = static_cast<int>(rng.next_in(3, 6));
    const int t = static_cast<int>(rng.next_in(1, n - 1));
    const int k = static_cast<int>(rng.next_in(1, t));
    // Solvable region: i <= k, j >= i + (t+1-k).
    const int i = static_cast<int>(rng.next_in(1, k));
    const int j_min = i + (t + 1 - k);
    if (j_min > n) continue;  // no solvable cell at this i
    const int j = static_cast<int>(rng.next_in(j_min, n));

    RunConfig cfg;
    cfg.spec = {t, k, n};
    cfg.system = {i, j, n};
    ASSERT_TRUE(solvable(cfg.spec, cfg.system));
    cfg.seed = rng.next_u64();
    cfg.max_steps = 3'000'000;

    // Random crashes among processes outside the witness timely set,
    // at random times.
    const int max_crash = std::min(t, n - i);
    const int crashes = static_cast<int>(rng.next_in(0, max_crash));
    if (crashes > 0) {
      auto plan = sched::CrashPlan::none(n);
      for (int c = 0; c < crashes; ++c) {
        plan.set_crash(n - 1 - c, rng.next_in(0, 60'000));
      }
      cfg.crashes = plan;
    }

    const auto report = run_agreement(cfg);
    EXPECT_TRUE(report.success)
        << "t=" << t << " k=" << k << " n=" << n << " i=" << i
        << " j=" << j << " crashes=" << crashes << " seed=" << cfg.seed
        << " :: " << report.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSoak,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(BoundaryInstances, WaitFreeConsensusNeedsAlmostAllObserved) {
  // t = n-1 (wait-free), k = 1: the matching system is S^1_{n,n}.
  RunConfig cfg;
  cfg.spec = {3, 1, 4};
  cfg.system = matching_system(cfg.spec);
  EXPECT_EQ(cfg.system.j, 4);
  const auto report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
}

TEST(BoundaryInstances, WaitFreeSetAgreement) {
  // t = n-1, k = n-1 (wait-free set agreement): matching system
  // S^{n-1}_{n,n} — barely more than asynchrony.
  RunConfig cfg;
  cfg.spec = {4, 4, 5};
  cfg.system = matching_system(cfg.spec);
  EXPECT_EQ(cfg.system.i, 4);
  EXPECT_EQ(cfg.system.j, 5);
  const auto report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_LE(report.distinct_decisions, 4);
}

TEST(BoundaryInstances, MinimalSystemTwoProcesses) {
  // n = 2, t = 1, k = 1: S^1_{2,2}; also the FLP-minimal instance.
  RunConfig cfg;
  cfg.spec = {1, 1, 2};
  cfg.system = matching_system(cfg.spec);
  const auto report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;

  // And with one crash (the other process must still decide).
  auto plan = sched::CrashPlan::none(2);
  plan.set_crash(1, 3'000);
  cfg.crashes = plan;
  cfg.run_full_budget = false;
  const auto report2 = run_agreement(cfg);
  EXPECT_TRUE(report2.success) << report2.detail;
}

TEST(BoundaryInstances, WaitFreeWithAllToleratedCrashes) {
  // t = n-1 and exactly t processes crash: only one survivor, which
  // must still decide (its own value, by validity).
  RunConfig cfg;
  cfg.spec = {3, 2, 4};
  cfg.system = matching_system(cfg.spec);
  cfg.run_full_budget = true;
  cfg.max_steps = 1'000'000;
  auto plan = sched::CrashPlan::none(4);
  plan.set_crash(1, 20'000);
  plan.set_crash(2, 30'000);
  plan.set_crash(3, 40'000);
  cfg.crashes = plan;
  const auto report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  ASSERT_TRUE(report.decisions[0].has_value());
}

TEST(BoundaryInstances, TrivialRegimeExactBoundary) {
  // k = t + 1 is the first trivially solvable k; k = t is not trivial.
  RunConfig cfg;
  cfg.spec = {2, 3, 5};
  cfg.system = {5, 5, 5};  // pure asynchrony
  ASSERT_TRUE(solvable(cfg.spec, cfg.system));
  const auto report = run_agreement(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_EQ(report.algorithm, "trivial");
  EXPECT_LE(report.distinct_decisions, 3);

  ASSERT_FALSE(solvable({2, 2, 5}, {5, 5, 5}));
}

class CrashTimingSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CrashTimingSweep, CrashAtAnyPhaseIsTolerated) {
  // The same config with the crash time swept from "before the first
  // step" to "after everyone decided".
  RunConfig cfg;
  cfg.spec = {2, 1, 4};
  cfg.system = matching_system(cfg.spec);
  cfg.seed = 5;
  cfg.run_full_budget = true;
  cfg.max_steps = 400'000;
  auto plan = sched::CrashPlan::none(4);
  plan.set_crash(3, GetParam());
  plan.set_crash(2, GetParam() * 2);
  cfg.crashes = plan;
  const auto report = run_agreement(cfg);
  EXPECT_TRUE(report.success)
      << "crash_step=" << GetParam() << " :: " << report.detail;
  EXPECT_EQ(report.distinct_decisions, 1);
}

INSTANTIATE_TEST_SUITE_P(Times, CrashTimingSweep,
                         ::testing::Values(0, 1, 7, 63, 255, 1024, 8191,
                                           65536));

class SafetySoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetySoak, SafetyHoldsEvenOnUnsolvableCells) {
  // Agreement and validity are *unconditional* (Paxos safety): even on
  // unsolvable cells under adversarial schedules, a run may fail to
  // terminate but must never produce > k distinct or invalid values.
  Rng rng(GetParam() * 40503 + 5);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = static_cast<int>(rng.next_in(3, 6));
    const int t = static_cast<int>(rng.next_in(1, n - 1));
    const int k = static_cast<int>(rng.next_in(1, t));
    // Pick an arbitrary (possibly unsolvable) cell and an adversarial
    // family that applies to it.
    const int i = static_cast<int>(rng.next_in(1, n));
    const int j = static_cast<int>(rng.next_in(i, n));

    RunConfig cfg;
    cfg.spec = {t, k, n};
    cfg.system = {i, j, n};
    cfg.seed = rng.next_u64();
    cfg.max_steps = 250'000;
    cfg.run_full_budget = true;
    if (i > k) {
      cfg.family = ScheduleFamily::kKSubsetStarver;
    } else if (j - i <= t) {
      cfg.family = ScheduleFamily::kRotisserie;
    } else {
      cfg.family = ScheduleFamily::kEnforcedRandom;
    }

    const auto report = run_agreement(cfg);
    EXPECT_TRUE(report.agreement_ok)
        << "t=" << t << " k=" << k << " n=" << n << " i=" << i
        << " j=" << j << " :: " << report.detail;
    EXPECT_TRUE(report.validity_ok) << report.detail;
    EXPECT_LE(report.distinct_decisions, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetySoak,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace setlib::core
