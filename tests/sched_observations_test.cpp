// Property tests for the paper's structural observations (Section 2).
//
// Observation 2: if P is timely w.r.t. Q and P' w.r.t. Q', then P u P'
//   is timely w.r.t. Q u Q' (quantitatively, with bound b + b' - 1).
// Observation 3: timeliness is monotone (grow P, shrink Q).
// Observation 4/5 are covered at the system level (core tests) and by
//   the self-timeliness analyzer tests.
#include <gtest/gtest.h>

#include "src/sched/analyzer.h"
#include "src/sched/generators.h"
#include "src/util/rng.h"

namespace setlib::sched {
namespace {

Schedule random_schedule(int n, std::int64_t len, std::uint64_t seed) {
  UniformRandomGenerator gen(n, seed);
  return generate(gen, len);
}

class ObservationsParamTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ObservationsParamTest, Observation2UnionBound) {
  const int n = 6;
  const Schedule s = random_schedule(n, 4'000, GetParam());
  Rng rng(GetParam() ^ 0xabcddcba);
  for (int trial = 0; trial < 20; ++trial) {
    const ProcSet p(rng.next_below(1ull << n) | 1);  // nonempty
    const ProcSet p2(rng.next_below(1ull << n) | 2);
    const ProcSet q(rng.next_below(1ull << n));
    const ProcSet q2(rng.next_below(1ull << n));
    const std::int64_t b1 = min_timeliness_bound(s, p, q);
    const std::int64_t b2 = min_timeliness_bound(s, p2, q2);
    const std::int64_t bu = min_timeliness_bound(s, p | p2, q | q2);
    // A window with (b1 + b2 - 1) steps of Q u Q' contains b1 of Q or
    // b2 of Q', hence a step of P or P'.
    EXPECT_LE(bu, b1 + b2 - 1)
        << p.to_string() << "," << q.to_string() << " / " << p2.to_string()
        << "," << q2.to_string();
  }
}

TEST_P(ObservationsParamTest, Observation3Monotonicity) {
  const int n = 6;
  const Schedule s = random_schedule(n, 4'000, GetParam() ^ 0x5555);
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 20; ++trial) {
    const ProcSet p(rng.next_below(1ull << n) | 1);
    const ProcSet q(rng.next_below(1ull << n));
    // Grow P, shrink Q: the bound can only improve (or stay equal).
    ProcSet p_big = p;
    ProcSet q_small = q;
    for (Pid x = 0; x < n; ++x) {
      if (rng.next_bool(0.3)) p_big = p_big.with(x);
      if (rng.next_bool(0.3)) q_small = q_small.without(x);
    }
    EXPECT_LE(min_timeliness_bound(s, p_big, q_small),
              min_timeliness_bound(s, p, q));
  }
}

TEST_P(ObservationsParamTest, Definition1WindowSemantics) {
  // Direct cross-check of the analyzer against a brute-force windows
  // scan: for the computed bound b, no P-free window has b Q-steps, and
  // some P-free window has b-1 (when b > 1).
  const int n = 4;
  const Schedule s = random_schedule(n, 300, GetParam() ^ 0x77);
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const ProcSet p(rng.next_below(1ull << n) | 1);
    const ProcSet q(rng.next_below(1ull << n));
    const std::int64_t b = min_timeliness_bound(s, p, q);
    std::int64_t worst = 0;
    for (std::int64_t a = 0; a < s.size(); ++a) {
      std::int64_t qc = 0;
      for (std::int64_t e = a; e < s.size(); ++e) {
        if (p.contains(s[e])) break;
        if (q.contains(s[e])) ++qc;
      }
      worst = std::max(worst, qc);
    }
    EXPECT_EQ(b, worst + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObservationsParamTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

}  // namespace
}  // namespace setlib::sched
