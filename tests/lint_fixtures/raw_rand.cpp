// Fixture: the raw-rand rule must fire on global-state RNG calls.
#include <cstdlib>
int pick() { return rand() % 6; }
void reseed() { srand(42); }
