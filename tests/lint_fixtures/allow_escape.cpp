// Fixture: the inline escape hatch suppresses every rule on its line.
#include <chrono>
auto t0() { return std::chrono::steady_clock::now(); }  // determinism: allow(feeds the wall-seconds timing key only)
