// Fixture: deterministic code plus rule names in comments and string
// literals ("rand()", std::chrono mentioned here) must stay clean.
// A comment saying rand() or time(nullptr) is not a violation.
#include <string>
std::string label() { return "uses rand() and std::random_device"; }
long runtime_total = 0;  // "runtime" contains no banned call
