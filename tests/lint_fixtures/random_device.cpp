// Fixture: the random-device rule must fire on hardware entropy.
#include <random>
unsigned seed() { return std::random_device{}(); }
