// Fixture: the unordered-iteration rule must fire on unordered
// containers (their iteration order feeds report rows).
#include <string>
#include <unordered_map>
std::unordered_map<std::string, int> counts;
