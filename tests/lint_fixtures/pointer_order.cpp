// Fixture: the pointer-order rule must fire on pointer-value
// orderings and pointer-to-integer casts.
#include <cstdint>
#include <functional>
#include <set>
std::set<int*, std::less<int*>> by_address;
std::uintptr_t key(int* p) { return reinterpret_cast<std::uintptr_t>(p); }
