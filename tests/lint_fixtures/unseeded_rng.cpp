// Fixture: the unseeded-rng rule must fire on default-constructed
// engines (and stay quiet on seeded ones).
#include <random>
std::mt19937 unseeded;
std::mt19937_64 braced{};
std::mt19937 seeded(12345);  // must NOT fire
