// Fixture: the wall-clock rule must fire on C time reads.
#include <ctime>
long stamp() { return time(nullptr) + clock(); }
