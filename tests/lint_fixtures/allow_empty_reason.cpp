// Fixture: an allow() with no reason is itself a finding.
#include <chrono>
auto t0() { return std::chrono::steady_clock::now(); }  // determinism: allow( )
