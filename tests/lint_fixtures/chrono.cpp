// Fixture: the chrono rule must fire outside the timing-key files.
#include <chrono>
auto tick() { return std::chrono::steady_clock::now(); }
